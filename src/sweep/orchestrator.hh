/**
 * @file
 * The shard supervisor: one sweep as a crash-tolerant fleet of worker
 * processes.
 *
 * orchestrateSweep() partitions the scheme list with planShards()
 * (sweep/shard.hh), spawns up to W concurrent worker processes — each
 * re-invoking the bench binary in `--shard-id i --shards K` mode, so
 * a worker is nothing but the already-proven ResilientRunner on its
 * sub-list — and supervises them to completion:
 *
 *  - Liveness, not heartbeats: a worker's shard checkpoint file is
 *    its progress signal.  The per-child deadline re-arms whenever
 *    the file grows or its mtime moves, so a slow shard is fine and a
 *    wedged one dies on schedule (SIGTERM, grace, SIGKILL — see
 *    common/subprocess.hh).
 *  - Retries resume, never restart: a crashed or killed worker left
 *    an atomic, validated partial checkpoint; its retry is launched
 *    with --resume and re-evaluates only the remainder.  Backoff is
 *    exponential per shard up to maxAttempts.
 *  - Completion is verified, not trusted: after every attempt the
 *    supervisor loads the shard's checkpoint itself — a worker that
 *    exited 0 behind a torn or stale file is retried like a crash.
 *  - Quarantine over silent loss: a shard still incomplete after
 *    maxAttempts contributes whatever schemes its checkpoint does
 *    cover; every scheme still missing becomes a structured
 *    SchemeFailure (FailureKind::Quarantine, with the last attempt's
 *    classification and stderr tail), so the merged ranking masks
 *    exactly those rows and the report says why.
 *  - One-shot faults stay one-shot: each worker re-reads
 *    CCP_FAULT_INJECT, so the injected `shard.worker_kill` /
 *    `shard.worker_hang` / `shard.torn_checkpoint` points (which fire
 *    in the worker whose shard index matches the armed value) would
 *    re-fire on every retry; the supervisor strips them from the
 *    child environment after the first attempt.  `shard.worker_fail`
 *    is deliberately *not* stripped — it is the persistent failure
 *    that exercises quarantine end to end.
 *
 * The final merge (mergeShardCheckpoints + restoreSuiteResult) yields
 * a ResilientOutcome byte-equivalent to a single-process run of the
 * same sweep wherever shards completed, and a merged full-sweep CCPC
 * checkpoint is written under the same base so a later single-process
 * `--resume` picks the fleet's work up directly.
 *
 * Counters: orch.workers_spawned, orch.worker_retries,
 * orch.workers_timeout, orch.shards_completed, orch.shards_quarantined,
 * orch.schemes_recovered.
 */

#ifndef CCP_SWEEP_ORCHESTRATOR_HH
#define CCP_SWEEP_ORCHESTRATOR_HH

#include <string>
#include <vector>

#include "obs/json.hh"
#include "obs/timer.hh"
#include "sweep/runner.hh"
#include "sweep/shard.hh"

namespace ccp::sweep {

struct OrchestratorOptions
{
    /**
     * Worker command prefix: the bench binary plus every flag the
     * workers share (--checkpoint <base>, --kernel, --threads,
     * --checkpoint-interval, ...).  The supervisor appends
     * "--shards <K> --shard-id <i> --resume" per launch.
     */
    std::vector<std::string> workerArgv;

    /** Checkpoint base the workers were given; shard files and the
     *  merged checkpoint are derived from it. */
    std::string checkpointBase;

    /** K: number of shards the scheme list is partitioned into. */
    unsigned shards = 4;
    /** W: concurrent worker processes. */
    unsigned workers = 2;

    /** Launches per shard before quarantine (>= 1). */
    unsigned maxAttempts = 3;
    /** First retry backoff; doubles per attempt. */
    double retryBackoffSec = 0.25;

    /** Per-worker liveness deadline (seconds without checkpoint
     *  progress before SIGTERM→SIGKILL); 0 = none. */
    double workerDeadlineSec = 0.0;
    /** SIGTERM → SIGKILL grace. */
    double termGraceSec = 5.0;
};

/** One shard's supervision history, for the run report. */
struct ShardRunReport
{
    unsigned shard = 0;
    unsigned attempts = 0;
    bool quarantined = false;
    std::size_t schemesTotal = 0;
    /** Schemes recovered from the shard's checkpoint at the end. */
    std::size_t schemesDone = 0;
    /** Last attempt's classification (subprocessStatusName), or
     *  "complete" / "empty-shard". */
    std::string lastStatus = "complete";
    int lastExitCode = 0;
    int lastSignal = 0;
    /** Last failing attempt's captured stderr tail (empty when the
     *  shard completed). */
    std::string stderrTail;
    std::string checkpointFile;
};

struct OrchestratorOutcome
{
    /** Merged global outcome: results/completed in scheme order,
     *  quarantined schemes as structured failures, interrupted set
     *  when a child drained on a signal the supervisor did not send. */
    ResilientOutcome outcome;
    std::vector<ShardRunReport> shardReports;
};

/** Shard reports as a JSON array for the run report. */
obs::Json
orchestratorJson(const std::vector<ShardRunReport> &reports);

/**
 * Run the full sweep as a supervised fleet of shard workers and merge
 * the result.  @p progress observes global scheme completion (ticked
 * per supervised shard).  Blocks until every shard is complete,
 * quarantined, or the run is interrupted.
 */
OrchestratorOutcome
orchestrateSweep(const OrchestratorOptions &opts,
                 const std::vector<trace::SharingTrace> &traces,
                 const std::vector<predict::SchemeSpec> &schemes,
                 predict::UpdateMode mode, SweepKernel kernel,
                 const obs::ProgressFn &progress = {});

} // namespace ccp::sweep

#endif // CCP_SWEEP_ORCHESTRATOR_HH
