/**
 * @file
 * The paper's scheme notation (section 3.5):
 *
 *   prediction-function(index)depth[update]
 *
 * e.g. "inter(pid+pc8+add6)4[direct]" or "union(dir+add14)4".  This
 * module formats SchemeSpecs into that notation and parses it back.
 */

#ifndef CCP_SWEEP_NAME_HH
#define CCP_SWEEP_NAME_HH

#include <optional>
#include <string>

#include "predict/evaluator.hh"

namespace ccp::sweep {

/** Format a scheme, optionally with the update-mode suffix. */
std::string formatScheme(const predict::SchemeSpec &scheme);
std::string formatScheme(const predict::SchemeSpec &scheme,
                         predict::UpdateMode mode);

/**
 * Parse the notation back into a scheme (and update mode, if the
 * [update] suffix is present).  @return nullopt on malformed input.
 */
struct ParsedScheme
{
    predict::SchemeSpec scheme;
    std::optional<predict::UpdateMode> mode;
};

std::optional<ParsedScheme> parseScheme(const std::string &text);

} // namespace ccp::sweep

#endif // CCP_SWEEP_NAME_HH
