#include "sweep/shard.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/registry.hh"
#include "sweep/name.hh"
#include "trace/format.hh"

namespace ccp::sweep {

ShardPlan
planShards(const std::vector<predict::SchemeSpec> &schemes,
           unsigned n_shards)
{
    ccp_assert(n_shards >= 1, "shard plan needs at least one shard");
    ShardPlan plan;
    plan.shards = n_shards;
    plan.byShard.assign(n_shards, {});
    for (std::size_t i = 0; i < schemes.size(); ++i) {
        const std::string name = formatScheme(schemes[i]);
        trace::Fnv1a h;
        h.update(name.data(), name.size());
        plan.byShard[h.digest() % n_shards].push_back(i);
    }
    return plan;
}

std::vector<predict::SchemeSpec>
shardSchemes(const std::vector<predict::SchemeSpec> &schemes,
             const ShardPlan &plan, unsigned shard)
{
    ccp_assert(shard < plan.shards, "shard index out of range");
    std::vector<predict::SchemeSpec> out;
    out.reserve(plan.byShard[shard].size());
    for (std::size_t gi : plan.byShard[shard])
        out.push_back(schemes[gi]);
    return out;
}

CheckpointKey
shardCheckpointKey(const std::vector<trace::SharingTrace> &traces,
                   const std::vector<predict::SchemeSpec> &schemes,
                   const ShardPlan &plan, unsigned shard,
                   predict::UpdateMode mode, SweepKernel kernel)
{
    return makeCheckpointKey(traces, shardSchemes(schemes, plan, shard),
                             mode, kernel);
}

ShardMerge
mergeShardCheckpoints(const std::string &base,
                      const std::vector<trace::SharingTrace> &traces,
                      const std::vector<predict::SchemeSpec> &schemes,
                      predict::UpdateMode mode, SweepKernel kernel,
                      unsigned n_shards)
{
    auto &reg = obs::StatsRegistry::current();
    const ShardPlan plan = planShards(schemes, n_shards);

    ShardMerge merge;
    merge.completed.assign(schemes.size(), 0);
    merge.shardStatus.reserve(n_shards);

    for (unsigned s = 0; s < n_shards; ++s) {
        ShardStatus status;
        status.shard = s;
        status.schemesTotal = plan.byShard[s].size();

        if (plan.byShard[s].empty()) {
            // A shard that owns nothing (K > N) is trivially complete
            // and writes no file.
            status.load = CheckpointLoad::Ok;
            merge.shardStatus.push_back(std::move(status));
            continue;
        }

        const CheckpointKey key =
            shardCheckpointKey(traces, schemes, plan, s, mode, kernel);
        status.file = checkpointFileName(base, key);

        std::vector<CheckpointEntry> entries;
        status.load = loadCheckpoint(status.file, key, entries);
        if (status.load != CheckpointLoad::Ok &&
            status.load != CheckpointLoad::Missing) {
            ++reg.counter("shard.merge_rejected");
            ccp_warn("shard ", s, ": checkpoint ", status.file,
                     " rejected (", checkpointLoadName(status.load),
                     ")");
        }

        // Remap shard-local entry indices into global scheme space.
        // The shard's sub-list preserves global order, so local index
        // j is simply byShard[s][j].
        for (auto &e : entries) {
            ccp_assert(e.schemeIndex < plan.byShard[s].size(),
                       "shard entry out of sub-list range");
            const std::size_t gi = plan.byShard[s][e.schemeIndex];
            e.schemeIndex = gi;
            merge.completed[gi] = 1;
            merge.entries.push_back(std::move(e));
            ++status.schemesDone;
        }
        reg.counter("shard.merge_schemes") += status.schemesDone;
        merge.shardStatus.push_back(std::move(status));
    }

    std::sort(merge.entries.begin(), merge.entries.end(),
              [](const CheckpointEntry &a, const CheckpointEntry &b) {
                  return a.schemeIndex < b.schemeIndex;
              });
    return merge;
}

} // namespace ccp::sweep
