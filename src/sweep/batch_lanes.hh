/**
 * @file
 * Lane-kernel contract of the SIMD/SoA sweep kernel (--kernel simd).
 *
 * The simd kernel regroups a batch's window-family schemes into *lane
 * groups* of exactly laneWidth (4) schemes sharing one (family,
 * depth) class, so all four lanes have the same entry width; the
 * group's entry count is the widest lane's (narrower lanes are padded
 * up, capped by sweep::maxLanePadBits).  Each group's predictor state
 * interleaves the lanes at
 * *entry* granularity: the word w of entry e of lane l lives at
 *
 *     groupBase + (e * laneWidth + l) * entryWords + w
 *
 * i.e. each lane's entry stays one contiguous entryWords-word block
 * (exactly the batched kernel's cache behaviour: a multi-word predict
 * or update walks one or two cache lines, not one line per word), and
 * the four lanes' blocks for the same entry index sit adjacent.  The
 * lanes' table indices usually differ per event, so a finer word-
 * interleaved layout would touch laneWidth separate cache lines per
 * entry word — measured ~30% slower than the batched kernel on the
 * standard sweep fixture, where this layout is faster.  Vector loads
 * are gathers either way; only the offset arithmetic differs.  The
 * index plans are transposed field-major (LanePlans): the per-field
 * masks and shifts of the four lanes sit in 4-wide arrays, so the
 * per-event index computation is four AND+SHIFT terms over whole
 * vectors instead of sixteen scalar ones.
 *
 * Two implementations satisfy the contract:
 *
 *  - scalarLaneKernel() (batch_lanes.cc): portable std::uint64_t
 *    arrays, compiled with the baseline flags — the runtime fallback
 *    for non-AVX2 hosts and the CCP_SIMD_DISABLE=1 override.
 *  - avx2LaneKernel() (batch_simd.cc, compiled with -mavx2 when the
 *    toolchain supports it): AVX2 intrinsics — variable 64-bit shifts
 *    for the index pipeline, 64-bit gathers for the predict loads,
 *    and a pshufb nibble-LUT popcount for the confusion tallies.
 *
 * Both are bit-identical to the batched kernel's inlined transitions
 * (batch.cc) for every event sequence: all operations are exact
 * integer arithmetic, per-lane state is disjoint, and the confusion
 * tallies are commutative sums, so regrouping schemes into lanes
 * cannot change any count (tests/differential_test.cc runs the full
 * reference/batched/simd triple to hold this).
 */

#ifndef CCP_SWEEP_BATCH_LANES_HH
#define CCP_SWEEP_BATCH_LANES_HH

#include <cstddef>
#include <cstdint>

namespace ccp::sweep::lanes {

/** Schemes per lane group: one AVX2 vector of u64 bitmaps. */
constexpr std::size_t laneWidth = 4;

/** Which inlined transition family a lane group runs. */
enum class LaneFamily : std::uint8_t
{
    Last,        ///< depth-1 window (union/inter collapse)
    Union,       ///< union window, depth >= 2
    Inter,       ///< intersection window, depth >= 2
    OverlapLast, ///< overlap-filtered last
};

/**
 * The four lanes' index plans, transposed field-major (SoA) so the
 * vector pipeline loads each field's masks/shifts as one vector.
 * Shifts are full 64-bit words (not unsigned) because the AVX2
 * variable shift consumes them as vector elements.
 */
struct LanePlans
{
    alignas(32) std::uint64_t addrMask[laneWidth];
    alignas(32) std::uint64_t addrShift[laneWidth];
    alignas(32) std::uint64_t dirMask[laneWidth];
    alignas(32) std::uint64_t dirShift[laneWidth];
    alignas(32) std::uint64_t pcMask[laneWidth];
    alignas(32) std::uint64_t pcShift[laneWidth];
    alignas(32) std::uint64_t pidMask[laneWidth];
    alignas(32) std::uint64_t pidShift[laneWidth];
};

/** One lane group: plans, geometry, state offset, and tallies. */
struct LaneGroup
{
    LanePlans plans;
    LaneFamily family = LaneFamily::Last;
    unsigned depth = 1;
    /** Words per entry (depth + 1 for windows, 3 for overlap). */
    std::size_t entryWords = 0;
    /** Word offset of this group's SoA block in the lane state. */
    std::size_t base = 0;
    /** Positions of the four lanes' schemes in the batch. */
    std::size_t schemeIdx[laneWidth] = {};
    /** Per-lane tallies: true positives and predicted-positive
     *  popcounts.  fp/fn are recovered by conservation at the end of
     *  the trace (fp = pp - tp; fn = total actual pop - tp). */
    alignas(32) std::uint64_t tp[laneWidth] = {};
    alignas(32) std::uint64_t pp[laneWidth] = {};
};

/** One decoded trace event, as the lane kernels consume it. */
struct LaneEvent
{
    std::uint64_t pid = 0;
    std::uint64_t pcw = 0; ///< pc >> 2, hoisted once per event
    std::uint64_t dir = 0;
    std::uint64_t block = 0;
    std::uint64_t prevPid = 0;
    std::uint64_t prevPcw = 0;
    std::uint64_t inval = 0;  ///< direct/forwarded update feedback
    std::uint64_t fb = 0;     ///< ordered-mode feedback
    std::uint64_t actual = 0; ///< readers, masked to the machine
    std::uint64_t mask = 0;   ///< machine-size bitmap mask
    bool hasPrev = false;
};

/**
 * One lane kernel: a mode-specialized per-event pass over all lane
 * groups.  The pass runs in two stages, mirroring the batched
 * kernel's loop: an address stage that computes every group's lane
 * indices once (into @p idx_scratch, 2 * laneWidth words per group:
 * predict indices then forwarded-update indices) and prefetches the
 * entries they name so the groups' cache misses overlap, then a step
 * stage that applies the update transition (direct/forwarded gate on
 * hasPrev; ordered updates unconditionally after predicting), the
 * predict read, and the tp/pp tallies — exactly the per-scheme order
 * of the batched kernel's dispatch loop.
 */
struct LaneKernel
{
    using RunFn = void (*)(LaneGroup *groups, std::size_t n_groups,
                           std::uint64_t *state, const LaneEvent &ev,
                           std::uint64_t *idx_scratch);
    RunFn direct = nullptr;
    RunFn forwarded = nullptr;
    RunFn ordered = nullptr;
    /** Backend tag for reports and CI assertions. */
    const char *name = "";
};

/** Words of index scratch one lane group needs (see LaneKernel). */
constexpr std::size_t laneScratchWords = 2 * laneWidth;

namespace detail {

/**
 * Per-lane scalar transitions over the lane layout, shared by the
 * portable kernel and the AVX2 kernel's store side (AVX2 has no
 * scatter, so updates are per-lane stores under both backends).
 * @p ent points at word 0 of one lane's contiguous entry, i.e.
 * state + base + (index * laneWidth + lane) * entryWords; word w is
 * simply ent[w].  Bit-identical to the inlined transitions in
 * batch.cc.
 */
inline std::uint64_t
laneWindowPredict(const std::uint64_t *ent, bool is_union)
{
    const unsigned count =
        static_cast<unsigned>(ent[0] & 0xffffffffu);
    if (count == 0)
        return 0;
    std::uint64_t acc = ent[1];
    if (is_union) {
        for (unsigned i = 1; i < count; ++i)
            acc |= ent[1 + i];
    } else {
        for (unsigned i = 1; i < count; ++i)
            acc &= ent[1 + i];
    }
    return acc;
}

inline void
laneWindowUpdate(std::uint64_t *ent, unsigned depth, std::uint64_t fb)
{
    unsigned count = static_cast<unsigned>(ent[0] & 0xffffffffu);
    unsigned pos = static_cast<unsigned>(ent[0] >> 32);
    ent[1 + pos] = fb;
    pos = (pos + 1) % depth;
    if (count < depth)
        ++count;
    ent[0] = (std::uint64_t(pos) << 32) | count;
}

inline std::uint64_t
laneLastPredict(const std::uint64_t *ent)
{
    return (ent[0] & 0xffffffffu) ? ent[1] : 0;
}

inline void
laneLastUpdate(std::uint64_t *ent, std::uint64_t fb)
{
    ent[1] = fb;
    ent[0] = 1;
}

inline std::uint64_t
laneOverlapPredict(const std::uint64_t *ent)
{
    if (static_cast<unsigned>(ent[0]) < 2)
        return 0;
    const std::uint64_t st1 = ent[1];
    return (st1 & ent[2]) ? st1 : 0;
}

inline void
laneOverlapUpdate(std::uint64_t *ent, std::uint64_t fb)
{
    ent[2] = ent[1];
    ent[1] = fb;
    if (ent[0] < 2)
        ++ent[0];
}

/** The four lanes' table indices for one access tuple. */
inline void
laneIndices(const LanePlans &p, std::uint64_t pid, std::uint64_t pcw,
            std::uint64_t dir, std::uint64_t block,
            std::uint64_t idx[laneWidth])
{
    for (std::size_t l = 0; l < laneWidth; ++l)
        idx[l] = ((block & p.addrMask[l]) << p.addrShift[l]) |
                 ((dir & p.dirMask[l]) << p.dirShift[l]) |
                 ((pcw & p.pcMask[l]) << p.pcShift[l]) |
                 ((pid & p.pidMask[l]) << p.pidShift[l]);
}

} // namespace detail

/** The portable u64-array kernel (always available). */
const LaneKernel &scalarLaneKernel();

/**
 * The AVX2 kernel, or nullptr when the build has no AVX2 translation
 * unit (toolchain without -mavx2, non-x86 target) or the CPU lacks
 * AVX2 at runtime.  Callers honour CCP_SIMD_DISABLE on top of this.
 */
const LaneKernel *avx2LaneKernel();

} // namespace ccp::sweep::lanes

#endif // CCP_SWEEP_BATCH_LANES_HH
