#include "sweep/figures.hh"

#include <sstream>

#include "sweep/parallel.hh"

namespace ccp::sweep {

using predict::FunctionKind;
using predict::IndexSpec;
using predict::UpdateMode;

namespace {

IndexSpec
make(unsigned addr_bits, bool use_dir, unsigned pc_bits, bool use_pid)
{
    IndexSpec idx;
    idx.addrBits = addr_bits;
    idx.useDir = use_dir;
    idx.pcBits = pc_bits;
    idx.usePid = use_pid;
    return idx;
}

} // namespace

std::vector<IndexSpec>
figureIndexSeries16()
{
    // The label columns of Figures 6/7, left to right
    // (addr, dir, pc, pid).
    return {
        make(0, false, 0, false),  make(16, false, 0, false),
        make(0, true, 0, false),   make(12, true, 0, false),
        make(0, false, 16, false), make(8, false, 8, false),
        make(0, true, 12, false),  make(6, true, 6, false),
        make(0, false, 0, true),   make(12, false, 0, true),
        make(0, true, 0, true),    make(8, true, 0, true),
        make(0, false, 12, true),  make(6, false, 6, true),
        make(0, true, 8, true),    make(4, true, 4, true),
    };
}

std::vector<IndexSpec>
figureIndexSeries12()
{
    // The label columns of Figure 8 (PAs, 12-bit max index).
    return {
        make(0, false, 0, false),  make(12, false, 0, false),
        make(0, true, 0, false),   make(8, true, 0, false),
        make(0, false, 12, false), make(6, false, 6, false),
        make(0, true, 8, false),   make(4, true, 4, false),
        make(0, false, 0, true),   make(8, false, 0, true),
        make(0, true, 0, true),    make(4, true, 0, true),
        make(0, false, 8, true),   make(4, false, 4, true),
        make(0, true, 4, true),    make(2, true, 2, true),
    };
}

std::string
figureLabel(const IndexSpec &index)
{
    std::ostringstream os;
    if (index.addrBits)
        os << index.addrBits;
    else
        os << '-';
    os << '/' << (index.useDir ? "Y" : "-") << '/';
    if (index.pcBits)
        os << index.pcBits;
    else
        os << '-';
    os << '/' << (index.usePid ? "Y" : "-");
    return os.str();
}

std::vector<FigurePoint>
evaluateFigure(const std::vector<trace::SharingTrace> &traces,
               const std::vector<IndexSpec> &series, FunctionKind kind,
               unsigned depth, UpdateMode mode, unsigned threads,
               SweepKernel kernel)
{
    std::vector<predict::SchemeSpec> schemes;
    schemes.reserve(series.size());
    for (const IndexSpec &idx : series)
        schemes.push_back({idx, kind, depth});

    std::vector<predict::SuiteResult> results =
        ParallelSweep(threads, kernel).evaluate(traces, schemes, mode);

    std::vector<FigurePoint> points;
    points.reserve(series.size());
    for (std::size_t i = 0; i < series.size(); ++i) {
        FigurePoint pt;
        pt.index = series[i];
        pt.label = figureLabel(series[i]);
        pt.sensitivity = results[i].avgSensitivity();
        pt.pvp = results[i].avgPvp();
        points.push_back(pt);
    }
    return points;
}

} // namespace ccp::sweep
