#include "sweep/batch.hh"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <map>
#include <tuple>

#include "common/logging.hh"
#include "obs/registry.hh"
#include "obs/timer.hh"
#include "obs/trace.hh"
#include "predict/table.hh"

namespace ccp::sweep {

using predict::Confusion;
using predict::FunctionKind;
using predict::IndexPlan;
using predict::PAsFunction;
using predict::PerceptronFunction;
using predict::SchemeSpec;
using predict::SuiteResult;
using predict::UpdateMode;

namespace {

/**
 * The window-function state transitions, inlined (bit-identical to
 * WindowFunction in predict/function.cc: word 0 packs (count,
 * next-slot), words 1..depth are the stored bitmaps).
 */
inline std::uint64_t
windowPredict(const std::uint64_t *st, bool is_union)
{
    unsigned count = static_cast<unsigned>(st[0] & 0xffffffffu);
    if (count == 0)
        return 0;
    std::uint64_t acc = st[1];
    if (is_union) {
        for (unsigned i = 1; i < count; ++i)
            acc |= st[1 + i];
    } else {
        for (unsigned i = 1; i < count; ++i)
            acc &= st[1 + i];
    }
    return acc;
}

inline void
windowUpdate(std::uint64_t *st, unsigned depth, std::uint64_t fb)
{
    unsigned count = static_cast<unsigned>(st[0] & 0xffffffffu);
    unsigned pos = static_cast<unsigned>(st[0] >> 32);
    st[1 + pos] = fb;
    pos = (pos + 1) % depth;
    if (count < depth)
        ++count;
    st[0] = (std::uint64_t(pos) << 32) | count;
}

/** Depth-1 window ("last"): the modular arithmetic collapses. */
inline std::uint64_t
lastPredict(const std::uint64_t *st)
{
    return (st[0] & 0xffffffffu) ? st[1] : 0;
}

inline void
lastUpdate(std::uint64_t *st, std::uint64_t fb)
{
    st[1] = fb;
    st[0] = 1; // count 1, next slot 0 — what windowUpdate produces
}

/** Overlap-last, inlined from OverlapLastFunction. */
inline std::uint64_t
overlapPredict(const std::uint64_t *st)
{
    if (static_cast<unsigned>(st[0]) < 2)
        return 0;
    return (st[1] & st[2]) ? st[1] : 0;
}

inline void
overlapUpdate(std::uint64_t *st, std::uint64_t fb)
{
    st[2] = st[1];
    st[1] = fb;
    if (st[0] < 2)
        ++st[0];
}

/**
 * Validated packed-state size of one table: 2^bits entries x
 * @p entry_words words.  An adversarial sweep config can push
 * indexBits high enough that the shift (or the multiply) wraps
 * size_t and silently under-allocates, so both factors are checked
 * against hard ceilings and rejected as unusable configuration
 * (ccp_fatal) before any arithmetic can overflow.
 */
std::size_t
checkedSchemeStateWords(unsigned bits, std::size_t entry_words)
{
    if (bits > predict::maxTableIndexBits)
        ccp_fatal("scheme index width ", bits,
                  " bits exceeds the table ceiling of ",
                  predict::maxTableIndexBits, " bits");
    const std::size_t entries = std::size_t(1) << bits;
    if (entry_words == 0 ||
        entries > maxSchemeStateWords / entry_words)
        ccp_fatal("scheme state of 2^", bits, " entries x ",
                  entry_words, " words exceeds the ",
                  maxSchemeStateWords, "-word ceiling");
    return entries * entry_words;
}

/** CCP_SIMD_DISABLE: set (and not "0") forces the portable lane
 *  kernel.  Read per evaluator construction, not cached, so tests can
 *  flip it with setenv in-process. */
bool
simdDisabledByEnv()
{
    const char *v = std::getenv("CCP_SIMD_DISABLE");
    return v != nullptr && v[0] != '\0' &&
           !(v[0] == '0' && v[1] == '\0');
}

const lanes::LaneKernel &
selectLaneKernel()
{
    if (!simdDisabledByEnv())
        if (const lanes::LaneKernel *k = lanes::avx2LaneKernel())
            return *k;
    return lanes::scalarLaneKernel();
}

} // namespace

const char *
simdBackendName()
{
    return selectLaneKernel().name;
}

BatchEvaluator::BatchEvaluator(std::vector<SchemeSpec> schemes,
                               unsigned n_nodes, BatchEngine engine)
    : schemes_(std::move(schemes)), nNodes_(n_nodes),
      nodeBits_(predict::nodeBitsFor(n_nodes)), engine_(engine)
{
    ccp_assert(!schemes_.empty(), "empty scheme batch");
    compiled_.reserve(schemes_.size());

    std::vector<unsigned> bits_of(schemes_.size(), 0);
    for (std::size_t i = 0; i < schemes_.size(); ++i) {
        const SchemeSpec &s = schemes_[i];
        Compiled c;
        c.plan = predict::makeIndexPlan(s.index, nodeBits_);
        c.depth = s.depth;
        switch (s.kind) {
          case FunctionKind::Union:
          case FunctionKind::Inter:
            ccp_assert(s.depth >= 1 && s.depth <= 32,
                       "bad window depth ", s.depth);
            c.op = s.depth == 1 ? Op::Last
                   : s.kind == FunctionKind::Union ? Op::Union
                                                   : Op::Inter;
            c.entryWords = s.depth + 1;
            break;
          case FunctionKind::OverlapLast:
            c.op = Op::OverlapLast;
            c.entryWords = 3;
            break;
          case FunctionKind::PAs:
            c.op = Op::PAs;
            c.pas = std::make_shared<const PAsFunction>(s.depth,
                                                        n_nodes);
            c.entryWords = c.pas->entryWords();
            break;
          case FunctionKind::Perceptron:
            c.op = Op::Perceptron;
            c.perc = std::make_shared<const PerceptronFunction>(
                s.depth, n_nodes, s.perc);
            c.entryWords = c.perc->entryWords();
            break;
        }
        bits_of[i] = s.index.indexBits(nodeBits_);
        compiled_.push_back(std::move(c));
    }

    if (engine_ == BatchEngine::Simd) {
        partitionLanes(bits_of);
    } else {
        scalarSchemes_.resize(compiled_.size());
        for (std::size_t i = 0; i < compiled_.size(); ++i)
            scalarSchemes_[i] = i;
    }

    // Slice the scalar-path state (everything, under Scalar).
    std::size_t total_words = 0;
    for (std::size_t i : scalarSchemes_) {
        Compiled &c = compiled_[i];
        c.base = total_words;
        total_words +=
            checkedSchemeStateWords(bits_of[i], c.entryWords);
    }
    state_.assign(total_words, 0);
    entryScratch_.assign(compiled_.size(), nullptr);
    updScratch_.assign(compiled_.size(), nullptr);
}

void
BatchEvaluator::partitionLanes(const std::vector<unsigned> &bits_of)
{
    laneKernel_ = &selectLaneKernel();

    // Bucket the window-family schemes by (family, depth); lanes of
    // one group may differ in index width — the group's entry count
    // is padded to the widest lane's, bounded by maxLanePadBits so a
    // narrow scheme can never inflate a group's state by more than
    // 2^maxLanePadBits.  The map key keeps group formation
    // deterministic in the scheme list alone.
    std::map<std::pair<std::uint8_t, unsigned>,
             std::vector<std::size_t>>
        classes;
    for (std::size_t i = 0; i < compiled_.size(); ++i) {
        const Compiled &c = compiled_[i];
        if (c.op == Op::PAs || c.op == Op::Perceptron ||
            c.plan.hashed()) {
            // Multi-word adaptive/perceptron entries have no u64 lane
            // to vectorize, and a hashed index plan has no mask/shift
            // transpose; all three ride the scalar path.
            scalarSchemes_.push_back(i);
            continue;
        }
        classes[{static_cast<std::uint8_t>(c.op), c.depth}]
            .push_back(i);
    }

    std::size_t lane_words = 0;
    for (auto &[key, members] : classes) {
        // Widest schemes first, original position as tie-break: a
        // greedy pass then packs each group from schemes of similar
        // width, so the padding cap prunes as few groups as possible.
        std::stable_sort(members.begin(), members.end(),
                         [&](std::size_t a, std::size_t b) {
                             return bits_of[a] > bits_of[b];
                         });
        std::size_t g0 = 0;
        while (g0 + lanes::laneWidth <= members.size()) {
            const unsigned bits_max = bits_of[members[g0]];
            const unsigned bits_min =
                bits_of[members[g0 + lanes::laneWidth - 1]];
            if (bits_max - bits_min > maxLanePadBits) {
                // The widest remaining scheme cannot form a group
                // within the padding cap; it rides the scalar path
                // and the window slides on.
                scalarSchemes_.push_back(members[g0]);
                ++g0;
                continue;
            }
            const Compiled &c0 = compiled_[members[g0]];
            lanes::LaneGroup g;
            switch (c0.op) {
              case Op::Last:
                g.family = lanes::LaneFamily::Last;
                break;
              case Op::Union:
                g.family = lanes::LaneFamily::Union;
                break;
              case Op::Inter:
                g.family = lanes::LaneFamily::Inter;
                break;
              case Op::OverlapLast:
                g.family = lanes::LaneFamily::OverlapLast;
                break;
              case Op::PAs:
              case Op::Perceptron:
                ccp_panic("scalar-only scheme in a lane class");
            }
            g.depth = c0.depth;
            g.entryWords = c0.entryWords;
            g.base = lane_words;
            for (std::size_t l = 0; l < lanes::laneWidth; ++l) {
                const std::size_t si = members[g0 + l];
                g.schemeIdx[l] = si;
                const IndexPlan &p = compiled_[si].plan;
                g.plans.addrMask[l] = p.addrMask;
                g.plans.addrShift[l] = p.addrShift;
                g.plans.dirMask[l] = p.dirMask;
                g.plans.dirShift[l] = p.dirShift;
                g.plans.pcMask[l] = p.pcMask;
                g.plans.pcShift[l] = p.pcShift;
                g.plans.pidMask[l] = p.pidMask;
                g.plans.pidShift[l] = p.pidShift;
            }
            lane_words +=
                checkedSchemeStateWords(bits_max, g.entryWords) *
                lanes::laneWidth;
            laneGroups_.push_back(g);
            g0 += lanes::laneWidth;
        }
        // A partial trailing group would waste gather lanes; the
        // leftovers ride the scalar path instead.
        for (std::size_t r = g0; r < members.size(); ++r)
            scalarSchemes_.push_back(members[r]);
    }
    laneState_.assign(lane_words, 0);
    laneIdxScratch_.assign(
        laneGroups_.size() * lanes::laneScratchWords, 0);
}

template <UpdateMode mode>
inline void
BatchEvaluator::stepScheme(Compiled &c, std::uint64_t *entry,
                           std::uint64_t *upd, bool has_prev,
                           std::uint64_t inval,
                           std::uint64_t fb_ordered, std::uint64_t mask,
                           std::uint64_t actual,
                           std::uint64_t actual_pop)
{
    std::uint64_t pred = 0;
    switch (c.op) {
      case Op::Last:
        if (mode != UpdateMode::Ordered && has_prev)
            lastUpdate(upd, inval);
        pred = lastPredict(entry);
        if (mode == UpdateMode::Ordered)
            lastUpdate(entry, fb_ordered);
        break;
      case Op::Union:
      case Op::Inter:
        if (mode != UpdateMode::Ordered && has_prev)
            windowUpdate(upd, c.depth, inval);
        pred = windowPredict(entry, c.op == Op::Union);
        if (mode == UpdateMode::Ordered)
            windowUpdate(entry, c.depth, fb_ordered);
        break;
      case Op::OverlapLast:
        if (mode != UpdateMode::Ordered && has_prev)
            overlapUpdate(upd, inval);
        pred = overlapPredict(entry);
        if (mode == UpdateMode::Ordered)
            overlapUpdate(entry, fb_ordered);
        break;
      case Op::PAs:
        // Qualified calls: no virtual dispatch in the loop.
        if (mode != UpdateMode::Ordered && has_prev)
            c.pas->PAsFunction::update(upd, SharingBitmap(inval));
        pred = c.pas->PAsFunction::predict(entry).raw();
        if (mode == UpdateMode::Ordered)
            c.pas->PAsFunction::update(entry,
                                       SharingBitmap(fb_ordered));
        break;
      case Op::Perceptron:
        if (mode != UpdateMode::Ordered && has_prev)
            c.perc->PerceptronFunction::update(upd,
                                               SharingBitmap(inval));
        pred = c.perc->PerceptronFunction::predict(entry).raw();
        if (mode == UpdateMode::Ordered)
            c.perc->PerceptronFunction::update(
                entry, SharingBitmap(fb_ordered));
        break;
    }

    // Word-wise confusion: two popcounts, no per-bit work.
    // |pred & ~actual| = |pred| - tp and |actual & ~pred| =
    // |actual| - tp, with |actual| hoisted per event.
    pred &= mask;
    const std::uint64_t tp = std::popcount(pred & actual);
    c.tp += tp;
    c.fp += std::popcount(pred) - tp;
    c.fn += actual_pop - tp;
}

template <UpdateMode mode>
void
BatchEvaluator::runTrace(const trace::SharingTrace &trace,
                         const std::vector<SharingBitmap> &ordered_fb)
{
    const std::uint64_t mask = SharingBitmap::all(nNodes_).raw();
    std::uint64_t *const state = state_.data();
    Compiled *const compiled = compiled_.data();
    const std::size_t n_schemes = compiled_.size();

    std::uint64_t **const ent = entryScratch_.data();
    std::uint64_t **const upd_ptr = updScratch_.data();

    EventSeq seq = 0;
    for (const auto &ev : trace.events()) {
        // Decode once per event, not once per (event, scheme).
        const std::uint64_t pid = ev.pid;
        const std::uint64_t pcw = ev.pc >> 2;
        const std::uint64_t dir = ev.dir;
        const std::uint64_t block = ev.block;
        const std::uint64_t inval = ev.invalidated.raw();
        const std::uint64_t actual = ev.readers.raw() & mask;
        const std::uint64_t actual_pop = std::popcount(actual);
        const bool has_prev = ev.hasPrevWriter;
        const std::uint64_t prev_pid = ev.prevWriterPid;
        const std::uint64_t prev_pcw = ev.prevWriterPc >> 2;
        const std::uint64_t fb_ordered =
            mode == UpdateMode::Ordered ? ordered_fb[seq].raw() : 0;

        // Address pass: resolve (and prefetch) every scheme's entry
        // before any is touched, so the per-scheme cache misses
        // overlap instead of serializing behind each other.  The
        // update entry is the current writer's for direct and
        // ordered, the dying version's writer's for forwarded (same
        // dir/block, different identity fields).
        for (std::size_t i = 0; i < n_schemes; ++i) {
            const Compiled &c = compiled[i];
            std::uint64_t *const slice = state + c.base;
            std::uint64_t *const entry =
                slice +
                c.plan.fromWords(pid, pcw, dir, block) * c.entryWords;
            ent[i] = entry;
            __builtin_prefetch(entry, 1);
            if (mode == UpdateMode::Forwarded) {
                std::uint64_t *upd =
                    has_prev ? slice + c.plan.fromWords(prev_pid,
                                                        prev_pcw, dir,
                                                        block) *
                                           c.entryWords
                             : entry;
                upd_ptr[i] = upd;
                __builtin_prefetch(upd, 1);
            }
        }

        for (std::size_t i = 0; i < n_schemes; ++i) {
            Compiled &c = compiled[i];
            std::uint64_t *const entry = ent[i];
            std::uint64_t *const upd =
                mode == UpdateMode::Forwarded ? upd_ptr[i] : entry;
            stepScheme<mode>(c, entry, upd, has_prev, inval,
                             fb_ordered, mask, actual, actual_pop);
        }
        ++seq;
    }
}

template <UpdateMode mode>
void
BatchEvaluator::runTraceSimd(
    const trace::SharingTrace &trace,
    const std::vector<SharingBitmap> &ordered_fb)
{
    const std::uint64_t mask = SharingBitmap::all(nNodes_).raw();
    std::uint64_t *const state = state_.data();
    std::uint64_t *const lane_state = laneState_.data();
    Compiled *const compiled = compiled_.data();
    lanes::LaneGroup *const groups = laneGroups_.data();
    const std::size_t n_groups = laneGroups_.size();

    const lanes::LaneKernel::RunFn lane_run =
        mode == UpdateMode::Direct      ? laneKernel_->direct
        : mode == UpdateMode::Forwarded ? laneKernel_->forwarded
                                        : laneKernel_->ordered;
    std::uint64_t *const lane_scratch = laneIdxScratch_.data();

    const std::size_t *const scalar_idx = scalarSchemes_.data();
    const std::size_t n_scalar = scalarSchemes_.size();
    std::uint64_t **const ent = entryScratch_.data();
    std::uint64_t **const upd_ptr = updScratch_.data();

    std::uint64_t total_actual_pop = 0;
    EventSeq seq = 0;
    for (const auto &ev : trace.events()) {
        lanes::LaneEvent le;
        le.pid = ev.pid;
        le.pcw = ev.pc >> 2;
        le.dir = ev.dir;
        le.block = ev.block;
        le.prevPid = ev.prevWriterPid;
        le.prevPcw = ev.prevWriterPc >> 2;
        le.inval = ev.invalidated.raw();
        le.fb = mode == UpdateMode::Ordered ? ordered_fb[seq].raw()
                                            : 0;
        le.actual = ev.readers.raw() & mask;
        le.mask = mask;
        le.hasPrev = ev.hasPrevWriter;
        const std::uint64_t actual_pop = std::popcount(le.actual);
        total_actual_pop += actual_pop;

        // Address pass over the leftover schemes, as in runTrace:
        // resolve (and prefetch) each entry before any is touched, so
        // their cache misses overlap — with each other and with the
        // lane kernel's own address stage, which runs right after
        // while these prefetches are still in flight.
        for (std::size_t k = 0; k < n_scalar; ++k) {
            const Compiled &c = compiled[scalar_idx[k]];
            std::uint64_t *const slice = state + c.base;
            std::uint64_t *const entry =
                slice + c.plan.fromWords(le.pid, le.pcw, le.dir,
                                         le.block) *
                            c.entryWords;
            ent[k] = entry;
            __builtin_prefetch(entry, 1);
            if (mode == UpdateMode::Forwarded) {
                std::uint64_t *upd =
                    le.hasPrev
                        ? slice + c.plan.fromWords(le.prevPid,
                                                   le.prevPcw, le.dir,
                                                   le.block) *
                                      c.entryWords
                        : entry;
                upd_ptr[k] = upd;
                __builtin_prefetch(upd, 1);
            }
        }

        if (n_groups)
            lane_run(groups, n_groups, lane_state, le, lane_scratch);

        // Leftover and PAs schemes: the scalar per-scheme body.
        for (std::size_t k = 0; k < n_scalar; ++k) {
            Compiled &c = compiled[scalar_idx[k]];
            std::uint64_t *const entry = ent[k];
            std::uint64_t *const upd =
                mode == UpdateMode::Forwarded ? upd_ptr[k] : entry;
            stepScheme<mode>(c, entry, upd, le.hasPrev, le.inval,
                             le.fb, mask, le.actual, actual_pop);
        }
        ++seq;
    }

    // Fold the lane tallies back into the per-scheme confusion
    // slots; fp and fn follow by conservation (predicted-positive
    // and actual-positive totals minus the true positives).
    for (std::size_t gi = 0; gi < n_groups; ++gi) {
        const lanes::LaneGroup &g = groups[gi];
        for (std::size_t l = 0; l < lanes::laneWidth; ++l) {
            Compiled &c = compiled[g.schemeIdx[l]];
            c.tp = g.tp[l];
            c.fp = g.pp[l] - g.tp[l];
            c.fn = total_actual_pop - g.tp[l];
        }
    }
}

std::vector<Confusion>
BatchEvaluator::evaluateTrace(const trace::SharingTrace &trace,
                              UpdateMode mode)
{
    ccp_assert(trace.nNodes() == nNodes_,
               "batch compiled for ", nNodes_, " nodes, trace has ",
               trace.nNodes());
    std::fill(state_.begin(), state_.end(), 0);
    std::fill(laneState_.begin(), laneState_.end(), 0);
    for (Compiled &c : compiled_)
        c.tp = c.fp = c.fn = 0;
    for (lanes::LaneGroup &g : laneGroups_)
        for (std::size_t l = 0; l < lanes::laneWidth; ++l)
            g.tp[l] = g.pp[l] = 0;

    std::vector<SharingBitmap> ordered_fb;
    if (mode == UpdateMode::Ordered)
        ordered_fb = predict::orderedFeedback(trace);

    const bool simd = engine_ == BatchEngine::Simd;
    CCP_TRACE_SPAN_N("batch", "batch.trace", trace.events().size());
    obs::Stopwatch watch;
    switch (mode) {
      case UpdateMode::Direct:
        simd ? runTraceSimd<UpdateMode::Direct>(trace, ordered_fb)
             : runTrace<UpdateMode::Direct>(trace, ordered_fb);
        break;
      case UpdateMode::Forwarded:
        simd ? runTraceSimd<UpdateMode::Forwarded>(trace, ordered_fb)
             : runTrace<UpdateMode::Forwarded>(trace, ordered_fb);
        break;
      case UpdateMode::Ordered:
        simd ? runTraceSimd<UpdateMode::Ordered>(trace, ordered_fb)
             : runTrace<UpdateMode::Ordered>(trace, ordered_fb);
        break;
    }
    double sec = watch.elapsedSec();

    const std::uint64_t events = trace.events().size();
    const std::uint64_t scheme_events = events * compiled_.size();
    auto &reg = obs::StatsRegistry::current();
    reg.counter("batch.trace_walks") += 1;
    reg.counter("batch.scheme_events") += scheme_events;
    reg.summary("batch.trace_seconds").add(sec);
    if (sec > 0.0 && scheme_events > 0)
        reg.summary("batch.scheme_events_per_sec")
            .add(static_cast<double>(scheme_events) / sec);

    std::vector<Confusion> confs;
    confs.reserve(compiled_.size());
    const std::uint64_t decisions = events * nNodes_;
    for (const Compiled &c : compiled_)
        confs.push_back(
            Confusion::fromPositives(c.tp, c.fp, c.fn, decisions));
    return confs;
}

std::vector<SuiteResult>
BatchEvaluator::evaluateSuite(
    const std::vector<trace::SharingTrace> &traces, UpdateMode mode)
{
    ccp_assert(!traces.empty(), "empty benchmark suite");
    std::vector<SuiteResult> results(schemes_.size());
    for (std::size_t i = 0; i < schemes_.size(); ++i) {
        results[i].scheme = schemes_[i];
        results[i].mode = mode;
    }
    for (const auto &tr : traces) {
        ccp_assert(tr.nNodes() == traces.front().nNodes(),
                   "mixed machine sizes in suite");
        std::vector<Confusion> confs = evaluateTrace(tr, mode);
        for (std::size_t i = 0; i < confs.size(); ++i) {
            results[i].pooled.merge(confs[i]);
            results[i].perTrace.push_back({tr.name(), confs[i]});
        }
    }
    return results;
}

std::size_t
schemeStateWords(const SchemeSpec &s, unsigned n_nodes)
{
    const unsigned node_bits = predict::nodeBitsFor(n_nodes);
    std::size_t entry_words =
        s.kind == FunctionKind::PAs
            ? PAsFunction(s.depth, n_nodes).entryWords()
        : s.kind == FunctionKind::Perceptron
            ? PerceptronFunction(s.depth, n_nodes, s.perc)
                  .entryWords()
        : s.kind == FunctionKind::OverlapLast ? 3
                                              : s.depth + 1;
    return checkedSchemeStateWords(s.index.indexBits(node_bits),
                                   entry_words);
}

std::vector<std::pair<std::size_t, std::size_t>>
planBatches(const std::vector<SchemeSpec> &schemes, unsigned n_nodes,
            std::size_t max_state_words, std::size_t max_schemes)
{
    std::vector<std::pair<std::size_t, std::size_t>> batches;
    std::size_t first = 0, words = 0;
    for (std::size_t i = 0; i < schemes.size(); ++i) {
        std::size_t scheme_words =
            schemeStateWords(schemes[i], n_nodes);
        bool full = i > first && (i - first >= max_schemes ||
                                  words + scheme_words >
                                      max_state_words);
        if (full) {
            batches.emplace_back(first, i);
            first = i;
            words = 0;
        }
        words += scheme_words;
    }
    if (first < schemes.size())
        batches.emplace_back(first, schemes.size());
    return batches;
}

} // namespace ccp::sweep
