#include "sweep/batch.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"
#include "obs/registry.hh"
#include "obs/timer.hh"
#include "obs/trace.hh"
#include "predict/table.hh"

namespace ccp::sweep {

using predict::Confusion;
using predict::FunctionKind;
using predict::IndexPlan;
using predict::PAsFunction;
using predict::SchemeSpec;
using predict::SuiteResult;
using predict::UpdateMode;

namespace {

/**
 * The window-function state transitions, inlined (bit-identical to
 * WindowFunction in predict/function.cc: word 0 packs (count,
 * next-slot), words 1..depth are the stored bitmaps).
 */
inline std::uint64_t
windowPredict(const std::uint64_t *st, bool is_union)
{
    unsigned count = static_cast<unsigned>(st[0] & 0xffffffffu);
    if (count == 0)
        return 0;
    std::uint64_t acc = st[1];
    if (is_union) {
        for (unsigned i = 1; i < count; ++i)
            acc |= st[1 + i];
    } else {
        for (unsigned i = 1; i < count; ++i)
            acc &= st[1 + i];
    }
    return acc;
}

inline void
windowUpdate(std::uint64_t *st, unsigned depth, std::uint64_t fb)
{
    unsigned count = static_cast<unsigned>(st[0] & 0xffffffffu);
    unsigned pos = static_cast<unsigned>(st[0] >> 32);
    st[1 + pos] = fb;
    pos = (pos + 1) % depth;
    if (count < depth)
        ++count;
    st[0] = (std::uint64_t(pos) << 32) | count;
}

/** Depth-1 window ("last"): the modular arithmetic collapses. */
inline std::uint64_t
lastPredict(const std::uint64_t *st)
{
    return (st[0] & 0xffffffffu) ? st[1] : 0;
}

inline void
lastUpdate(std::uint64_t *st, std::uint64_t fb)
{
    st[1] = fb;
    st[0] = 1; // count 1, next slot 0 — what windowUpdate produces
}

/** Overlap-last, inlined from OverlapLastFunction. */
inline std::uint64_t
overlapPredict(const std::uint64_t *st)
{
    if (static_cast<unsigned>(st[0]) < 2)
        return 0;
    return (st[1] & st[2]) ? st[1] : 0;
}

inline void
overlapUpdate(std::uint64_t *st, std::uint64_t fb)
{
    st[2] = st[1];
    st[1] = fb;
    if (st[0] < 2)
        ++st[0];
}

} // namespace

BatchEvaluator::BatchEvaluator(std::vector<SchemeSpec> schemes,
                               unsigned n_nodes)
    : schemes_(std::move(schemes)), nNodes_(n_nodes),
      nodeBits_(predict::nodeBitsFor(n_nodes))
{
    ccp_assert(!schemes_.empty(), "empty scheme batch");
    compiled_.reserve(schemes_.size());

    std::size_t total_words = 0;
    for (const SchemeSpec &s : schemes_) {
        Compiled c;
        c.plan = predict::makeIndexPlan(s.index, nodeBits_);
        c.depth = s.depth;
        switch (s.kind) {
          case FunctionKind::Union:
          case FunctionKind::Inter:
            ccp_assert(s.depth >= 1 && s.depth <= 32,
                       "bad window depth ", s.depth);
            c.op = s.depth == 1 ? Op::Last
                   : s.kind == FunctionKind::Union ? Op::Union
                                                   : Op::Inter;
            c.entryWords = s.depth + 1;
            break;
          case FunctionKind::OverlapLast:
            c.op = Op::OverlapLast;
            c.entryWords = 3;
            break;
          case FunctionKind::PAs:
            c.op = Op::PAs;
            c.pas = std::make_shared<const PAsFunction>(s.depth,
                                                        n_nodes);
            c.entryWords = c.pas->entryWords();
            break;
        }

        unsigned bits = s.index.indexBits(nodeBits_);
        ccp_assert(bits <= predict::maxTableIndexBits,
                   "index too wide: ", bits, " bits");
        c.base = total_words;
        total_words += (std::size_t(1) << bits) * c.entryWords;
        compiled_.push_back(std::move(c));
    }
    state_.assign(total_words, 0);
    entryScratch_.assign(compiled_.size(), nullptr);
    updScratch_.assign(compiled_.size(), nullptr);
}

template <UpdateMode mode>
void
BatchEvaluator::runTrace(const trace::SharingTrace &trace,
                         const std::vector<SharingBitmap> &ordered_fb)
{
    const std::uint64_t mask = SharingBitmap::all(nNodes_).raw();
    std::uint64_t *const state = state_.data();
    Compiled *const compiled = compiled_.data();
    const std::size_t n_schemes = compiled_.size();

    std::uint64_t **const ent = entryScratch_.data();
    std::uint64_t **const upd_ptr = updScratch_.data();

    EventSeq seq = 0;
    for (const auto &ev : trace.events()) {
        // Decode once per event, not once per (event, scheme).
        const std::uint64_t pid = ev.pid;
        const std::uint64_t pcw = ev.pc >> 2;
        const std::uint64_t dir = ev.dir;
        const std::uint64_t block = ev.block;
        const std::uint64_t inval = ev.invalidated.raw();
        const std::uint64_t actual = ev.readers.raw() & mask;
        const std::uint64_t actual_pop = std::popcount(actual);
        const bool has_prev = ev.hasPrevWriter;
        const std::uint64_t prev_pid = ev.prevWriterPid;
        const std::uint64_t prev_pcw = ev.prevWriterPc >> 2;
        const std::uint64_t fb_ordered =
            mode == UpdateMode::Ordered ? ordered_fb[seq].raw() : 0;

        // Address pass: resolve (and prefetch) every scheme's entry
        // before any is touched, so the per-scheme cache misses
        // overlap instead of serializing behind each other.  The
        // update entry is the current writer's for direct and
        // ordered, the dying version's writer's for forwarded (same
        // dir/block, different identity fields).
        for (std::size_t i = 0; i < n_schemes; ++i) {
            const Compiled &c = compiled[i];
            std::uint64_t *const slice = state + c.base;
            std::uint64_t *const entry =
                slice +
                c.plan.fromWords(pid, pcw, dir, block) * c.entryWords;
            ent[i] = entry;
            __builtin_prefetch(entry, 1);
            if (mode == UpdateMode::Forwarded) {
                std::uint64_t *upd =
                    has_prev ? slice + c.plan.fromWords(prev_pid,
                                                        prev_pcw, dir,
                                                        block) *
                                           c.entryWords
                             : entry;
                upd_ptr[i] = upd;
                __builtin_prefetch(upd, 1);
            }
        }

        for (std::size_t i = 0; i < n_schemes; ++i) {
            Compiled &c = compiled[i];
            std::uint64_t *const entry = ent[i];
            std::uint64_t *const upd =
                mode == UpdateMode::Forwarded ? upd_ptr[i] : entry;

            std::uint64_t pred = 0;
            switch (c.op) {
              case Op::Last:
                if (mode != UpdateMode::Ordered && has_prev)
                    lastUpdate(upd, inval);
                pred = lastPredict(entry);
                if (mode == UpdateMode::Ordered)
                    lastUpdate(entry, fb_ordered);
                break;
              case Op::Union:
              case Op::Inter:
                if (mode != UpdateMode::Ordered && has_prev)
                    windowUpdate(upd, c.depth, inval);
                pred = windowPredict(entry, c.op == Op::Union);
                if (mode == UpdateMode::Ordered)
                    windowUpdate(entry, c.depth, fb_ordered);
                break;
              case Op::OverlapLast:
                if (mode != UpdateMode::Ordered && has_prev)
                    overlapUpdate(upd, inval);
                pred = overlapPredict(entry);
                if (mode == UpdateMode::Ordered)
                    overlapUpdate(entry, fb_ordered);
                break;
              case Op::PAs:
                // Qualified calls: no virtual dispatch in the loop.
                if (mode != UpdateMode::Ordered && has_prev)
                    c.pas->PAsFunction::update(upd,
                                               SharingBitmap(inval));
                pred = c.pas->PAsFunction::predict(entry).raw();
                if (mode == UpdateMode::Ordered)
                    c.pas->PAsFunction::update(
                        entry, SharingBitmap(fb_ordered));
                break;
            }

            // Word-wise confusion: two popcounts, no per-bit work.
            // |pred & ~actual| = |pred| - tp and |actual & ~pred| =
            // |actual| - tp, with |actual| hoisted per event.
            pred &= mask;
            const std::uint64_t tp = std::popcount(pred & actual);
            c.tp += tp;
            c.fp += std::popcount(pred) - tp;
            c.fn += actual_pop - tp;
        }
        ++seq;
    }
}

std::vector<Confusion>
BatchEvaluator::evaluateTrace(const trace::SharingTrace &trace,
                              UpdateMode mode)
{
    ccp_assert(trace.nNodes() == nNodes_,
               "batch compiled for ", nNodes_, " nodes, trace has ",
               trace.nNodes());
    std::fill(state_.begin(), state_.end(), 0);
    for (Compiled &c : compiled_)
        c.tp = c.fp = c.fn = 0;

    std::vector<SharingBitmap> ordered_fb;
    if (mode == UpdateMode::Ordered)
        ordered_fb = predict::orderedFeedback(trace);

    CCP_TRACE_SPAN_N("batch", "batch.trace", trace.events().size());
    obs::Stopwatch watch;
    switch (mode) {
      case UpdateMode::Direct:
        runTrace<UpdateMode::Direct>(trace, ordered_fb);
        break;
      case UpdateMode::Forwarded:
        runTrace<UpdateMode::Forwarded>(trace, ordered_fb);
        break;
      case UpdateMode::Ordered:
        runTrace<UpdateMode::Ordered>(trace, ordered_fb);
        break;
    }
    double sec = watch.elapsedSec();

    const std::uint64_t events = trace.events().size();
    const std::uint64_t scheme_events = events * compiled_.size();
    auto &reg = obs::StatsRegistry::current();
    reg.counter("batch.trace_walks") += 1;
    reg.counter("batch.scheme_events") += scheme_events;
    reg.summary("batch.trace_seconds").add(sec);
    if (sec > 0.0 && scheme_events > 0)
        reg.summary("batch.scheme_events_per_sec")
            .add(static_cast<double>(scheme_events) / sec);

    std::vector<Confusion> confs;
    confs.reserve(compiled_.size());
    const std::uint64_t decisions = events * nNodes_;
    for (const Compiled &c : compiled_)
        confs.push_back(
            Confusion::fromPositives(c.tp, c.fp, c.fn, decisions));
    return confs;
}

std::vector<SuiteResult>
BatchEvaluator::evaluateSuite(
    const std::vector<trace::SharingTrace> &traces, UpdateMode mode)
{
    ccp_assert(!traces.empty(), "empty benchmark suite");
    std::vector<SuiteResult> results(schemes_.size());
    for (std::size_t i = 0; i < schemes_.size(); ++i) {
        results[i].scheme = schemes_[i];
        results[i].mode = mode;
    }
    for (const auto &tr : traces) {
        ccp_assert(tr.nNodes() == traces.front().nNodes(),
                   "mixed machine sizes in suite");
        std::vector<Confusion> confs = evaluateTrace(tr, mode);
        for (std::size_t i = 0; i < confs.size(); ++i) {
            results[i].pooled.merge(confs[i]);
            results[i].perTrace.push_back({tr.name(), confs[i]});
        }
    }
    return results;
}

std::size_t
schemeStateWords(const SchemeSpec &s, unsigned n_nodes)
{
    const unsigned node_bits = predict::nodeBitsFor(n_nodes);
    std::size_t entry_words =
        s.kind == FunctionKind::PAs
            ? PAsFunction(s.depth, n_nodes).entryWords()
        : s.kind == FunctionKind::OverlapLast ? 3
                                              : s.depth + 1;
    return (std::size_t(1) << s.index.indexBits(node_bits)) *
           entry_words;
}

std::vector<std::pair<std::size_t, std::size_t>>
planBatches(const std::vector<SchemeSpec> &schemes, unsigned n_nodes,
            std::size_t max_state_words, std::size_t max_schemes)
{
    std::vector<std::pair<std::size_t, std::size_t>> batches;
    std::size_t first = 0, words = 0;
    for (std::size_t i = 0; i < schemes.size(); ++i) {
        std::size_t scheme_words =
            schemeStateWords(schemes[i], n_nodes);
        bool full = i > first && (i - first >= max_schemes ||
                                  words + scheme_words >
                                      max_state_words);
        if (full) {
            batches.emplace_back(first, i);
            first = i;
            words = 0;
        }
        words += scheme_words;
    }
    if (first < schemes.size())
        batches.emplace_back(first, schemes.size());
    return batches;
}

} // namespace ccp::sweep
