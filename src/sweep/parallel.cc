#include "sweep/parallel.hh"

#include <atomic>
#include <memory>
#include <mutex>

#include "common/logging.hh"
#include "common/numa.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"
#include "sweep/batch.hh"

namespace ccp::sweep {

using predict::SchemeSpec;
using predict::SuiteResult;
using predict::UpdateMode;

const char *
sweepKernelName(SweepKernel kernel)
{
    switch (kernel) {
      case SweepKernel::Batched:
        return "batched";
      case SweepKernel::Reference:
        return "reference";
      case SweepKernel::Simd:
        return "simd";
    }
    ccp_panic("bad SweepKernel");
}

bool
parseSweepKernel(const std::string &text, SweepKernel &kernel)
{
    if (text == "batched") {
        kernel = SweepKernel::Batched;
        return true;
    }
    if (text == "reference") {
        kernel = SweepKernel::Reference;
        return true;
    }
    if (text == "simd") {
        kernel = SweepKernel::Simd;
        return true;
    }
    return false;
}

ParallelSweep::ParallelSweep(unsigned threads, SweepKernel kernel)
    : pool_(threads), kernel_(kernel)
{
    // NUMA-aware worker placement: with spawned workers on a
    // multi-node host, pin worker w to node (w-1) % nodes so shards
    // spread evenly and each worker's batch state — allocated and
    // first-touched inside its own task — stays node-local.  The
    // calling thread (worker 0) is never pinned; single-node or
    // unknown topologies install nothing.
    if (pool_.threads() > 1) {
        NumaTopology topo = numaTopology();
        if (topo.multiNode()) {
            numaNodesUsed_ = topo.nodes.size();
            auto shared =
                std::make_shared<NumaTopology>(std::move(topo));
            pool_.setWorkerStartHook([shared](unsigned worker) {
                const auto &nodes = shared->nodes;
                const NumaNode &node =
                    nodes[(worker - 1) % nodes.size()];
                if (!pinCurrentThread(node.cpus))
                    ccp_warn("NUMA pin of worker ", worker,
                             " to node ", node.id,
                             " failed; running unpinned");
            });
        }
    }
}

std::vector<SuiteResult>
ParallelSweep::evaluate(const std::vector<trace::SharingTrace> &traces,
                        const std::vector<SchemeSpec> &schemes,
                        UpdateMode mode, const obs::ProgressFn &progress)
{
    return kernel_ == SweepKernel::Reference
               ? evaluateReference(traces, schemes, mode, progress)
               : evaluateBatched(traces, schemes, mode, progress);
}

std::vector<SuiteResult>
ParallelSweep::evaluateReference(
    const std::vector<trace::SharingTrace> &traces,
    const std::vector<SchemeSpec> &schemes, UpdateMode mode,
    const obs::ProgressFn &progress)
{
    std::vector<SuiteResult> results(schemes.size());

    // One stats shard per worker.  The shards are merged below into
    // whatever registry this thread accounts into (root() outside
    // tests), in worker order, so totals match the sequential sweep
    // and merging is deterministic for a given thread count.
    std::vector<obs::StatsRegistry> shards(pool_.threads());

    obs::ProgressMeter meter(schemes.size());
    std::atomic<std::size_t> completed{0};
    std::mutex progress_mutex;

    // Chunk of 1: a scheme evaluation is milliseconds to seconds of
    // work, so per-job queue traffic is noise and fine-grained
    // stealing keeps workers busy through the expensive PAs schemes.
    pool_.forEach(
        schemes.size(),
        [&](std::size_t job, unsigned worker) {
            obs::StatsRegistry &shard = shards[worker];
            obs::ScopedRegistry route(shard);
            {
                CCP_TRACE_SPAN("sweep", "sweep.scheme");
                obs::ScopedTimer timer(shard,
                                       "sweep.scheme_eval_seconds");
                obs::Stopwatch lat;
                results[job] = evaluateSuite(traces, schemes[job], mode);
                shard.latency("sweep.scheme_latency_ns")
                    .add(std::uint64_t(lat.elapsedSec() * 1e9));
            }
            ++shard.counter("sweep.schemes_evaluated");

            std::size_t done = completed.fetch_add(1) + 1;
            if (progress) {
                // The meter's high-water mark keeps done monotonic
                // even when workers reach this lock out of order.
                std::lock_guard<std::mutex> lock(progress_mutex);
                progress(meter.tick(done));
            }
        },
        1);

    obs::StatsRegistry &parent = obs::StatsRegistry::current();
    for (const auto &shard : shards)
        parent.merge(shard);
    return results;
}

std::vector<SuiteResult>
ParallelSweep::evaluateBatched(
    const std::vector<trace::SharingTrace> &traces,
    const std::vector<SchemeSpec> &schemes, UpdateMode mode,
    const obs::ProgressFn &progress)
{
    ccp_assert(!traces.empty(), "empty benchmark suite");
    const unsigned n_nodes = traces.front().nNodes();

    // Batch boundaries depend only on the scheme list (never the
    // thread count), and every scheme's predictor state is private to
    // its batch, so results are identical to the reference kernel's
    // regardless of partitioning or worker interleaving.
    auto batches = planBatches(schemes, n_nodes);

    std::vector<SuiteResult> results(schemes.size());
    std::vector<obs::StatsRegistry> shards(pool_.threads());

    obs::ProgressMeter meter(schemes.size());
    std::atomic<std::size_t> completed{0};
    std::mutex progress_mutex;

    pool_.forEach(
        batches.size(),
        [&](std::size_t job, unsigned worker) {
            obs::StatsRegistry &shard = shards[worker];
            obs::ScopedRegistry route(shard);
            auto [first, last] = batches[job];
            {
                CCP_TRACE_SPAN_N("sweep", "sweep.batch", last - first);
                obs::ScopedTimer timer(shard,
                                       "sweep.batch_eval_seconds");
                obs::Stopwatch lat;
                BatchEvaluator batch(
                    {schemes.begin() +
                         static_cast<std::ptrdiff_t>(first),
                     schemes.begin() +
                         static_cast<std::ptrdiff_t>(last)},
                    n_nodes,
                    kernel_ == SweepKernel::Simd
                        ? BatchEngine::Simd
                        : BatchEngine::Scalar);
                auto batch_results = batch.evaluateSuite(traces, mode);
                for (std::size_t i = 0; i < batch_results.size(); ++i)
                    results[first + i] = std::move(batch_results[i]);
                shard.latency("sweep.batch_latency_ns")
                    .add(std::uint64_t(lat.elapsedSec() * 1e9));
            }
            ++shard.counter("sweep.batches_evaluated");
            shard.counter("sweep.schemes_evaluated") += last - first;

            std::size_t done =
                completed.fetch_add(last - first) + (last - first);
            if (progress) {
                std::lock_guard<std::mutex> lock(progress_mutex);
                progress(meter.tick(done));
            }
        },
        1);

    obs::StatsRegistry &parent = obs::StatsRegistry::current();
    for (const auto &shard : shards)
        parent.merge(shard);
    return results;
}

} // namespace ccp::sweep
