#include "sweep/parallel.hh"

#include <atomic>
#include <mutex>

#include "obs/registry.hh"

namespace ccp::sweep {

using predict::SchemeSpec;
using predict::SuiteResult;
using predict::UpdateMode;

std::vector<SuiteResult>
ParallelSweep::evaluate(const std::vector<trace::SharingTrace> &traces,
                        const std::vector<SchemeSpec> &schemes,
                        UpdateMode mode, const obs::ProgressFn &progress)
{
    std::vector<SuiteResult> results(schemes.size());

    // One stats shard per worker.  The shards are merged below into
    // whatever registry this thread accounts into (root() outside
    // tests), in worker order, so totals match the sequential sweep
    // and merging is deterministic for a given thread count.
    std::vector<obs::StatsRegistry> shards(pool_.threads());

    obs::ProgressMeter meter(schemes.size());
    std::atomic<std::size_t> completed{0};
    std::mutex progress_mutex;

    // Chunk of 1: a scheme evaluation is milliseconds to seconds of
    // work, so per-job queue traffic is noise and fine-grained
    // stealing keeps workers busy through the expensive PAs schemes.
    pool_.forEach(
        schemes.size(),
        [&](std::size_t job, unsigned worker) {
            obs::StatsRegistry &shard = shards[worker];
            obs::ScopedRegistry route(shard);
            {
                obs::ScopedTimer timer(shard,
                                       "sweep.scheme_eval_seconds");
                results[job] = evaluateSuite(traces, schemes[job], mode);
            }
            ++shard.counter("sweep.schemes_evaluated");

            std::size_t done = completed.fetch_add(1) + 1;
            if (progress) {
                // The meter's high-water mark keeps done monotonic
                // even when workers reach this lock out of order.
                std::lock_guard<std::mutex> lock(progress_mutex);
                progress(meter.tick(done));
            }
        },
        1);

    obs::StatsRegistry &parent = obs::StatsRegistry::current();
    for (const auto &shard : shards)
        parent.merge(shard);
    return results;
}

} // namespace ccp::sweep
