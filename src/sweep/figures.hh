/**
 * @file
 * The x-axis label series of the paper's Figures 6-8: sixteen indexing
 * combinations under a maximum index width (16 bits for the
 * union/intersection figures, 12 for PAs), evaluated for sensitivity
 * and PVP under each update mechanism.
 */

#ifndef CCP_SWEEP_FIGURES_HH
#define CCP_SWEEP_FIGURES_HH

#include <string>
#include <vector>

#include "predict/evaluator.hh"
#include "sweep/parallel.hh"
#include "trace/trace.hh"

namespace ccp::sweep {

/** One x-axis position of a figure. */
struct FigurePoint
{
    predict::IndexSpec index;
    /** Compact label like "12/Y/-/-" for addr/dir/pc/pid. */
    std::string label;
    double sensitivity = 0.0;
    double pvp = 0.0;
};

/**
 * The sixteen indexing combinations of Figures 6 and 7 (16-bit max
 * index: pid/dir four bits each when present).
 */
std::vector<predict::IndexSpec> figureIndexSeries16();

/** The sixteen combinations of Figure 8 (12-bit max index). */
std::vector<predict::IndexSpec> figureIndexSeries12();

/**
 * Evaluate one figure: the given function/depth over the label
 * series, averaging sensitivity and PVP across the suite.  The
 * series positions are evaluated on @p threads workers (0 = one per
 * hardware thread, 1 = sequential) under @p kernel; the point order
 * is the series order either way.
 */
std::vector<FigurePoint>
evaluateFigure(const std::vector<trace::SharingTrace> &traces,
               const std::vector<predict::IndexSpec> &series,
               predict::FunctionKind kind, unsigned depth,
               predict::UpdateMode mode, unsigned threads = 1,
               SweepKernel kernel = SweepKernel::Batched);

/** Render the addr/dir/pc/pid label of a series position. */
std::string figureLabel(const predict::IndexSpec &index);

} // namespace ccp::sweep

#endif // CCP_SWEEP_FIGURES_HH
