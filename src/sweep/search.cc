#include "sweep/search.hh"

#include <algorithm>
#include <numeric>
#include <string>

#include "common/logging.hh"
#include "sweep/name.hh"
#include "sweep/parallel.hh"

namespace ccp::sweep {

using predict::SchemeSpec;
using predict::SuiteResult;
using predict::UpdateMode;

namespace {

void
checkSweepInputs(const char *who,
                 const std::vector<trace::SharingTrace> &traces,
                 const std::vector<SchemeSpec> &schemes)
{
    // Fail before any evaluation: the comparator and evaluateSuite
    // both dereference traces.front(), and an empty scheme list is a
    // caller bug (a sweep of nothing), not a valid no-op.
    if (traces.empty())
        ccp_fatal(who, ": empty benchmark suite (no traces to "
                  "evaluate schemes on)");
    if (schemes.empty())
        ccp_fatal(who, ": empty scheme list (nothing to evaluate)");
}

} // namespace

std::vector<RankedScheme>
rankResults(std::vector<SuiteResult> &results, RankBy by,
            std::size_t n, unsigned n_nodes,
            const std::vector<std::uint8_t> *completed)
{
    // Precomputed sort keys: a total order (score, table size,
    // secondary metric, canonical name, input position) so the top-N
    // cut is unique on every platform and thread count, and the
    // comparator does no scheme re-formatting or size recomputation
    // per comparison.
    struct Key
    {
        double score;
        std::uint64_t sizeBits;
        double secondary;
        std::string name;
        std::size_t pos;
    };
    std::vector<Key> keys;
    keys.reserve(results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (completed && !(*completed)[i])
            continue;
        const SuiteResult &res = results[i];
        keys.push_back({by == RankBy::Pvp ? res.avgPvp()
                                          : res.avgSensitivity(),
                        res.scheme.sizeBits(n_nodes),
                        by == RankBy::Pvp ? res.avgSensitivity()
                                          : res.avgPvp(),
                        formatScheme(res.scheme), i});
    }

    auto better = [](const Key &a, const Key &b) {
        if (a.score != b.score)
            return a.score > b.score;
        if (a.sizeBits != b.sizeBits)
            return a.sizeBits < b.sizeBits;
        if (a.secondary != b.secondary)
            return a.secondary > b.secondary;
        if (a.name != b.name)
            return a.name < b.name;
        return a.pos < b.pos;
    };

    std::size_t keep = std::min(n, keys.size());
    std::partial_sort(keys.begin(), keys.begin() + keep, keys.end(),
                      better);

    std::vector<RankedScheme> ranked;
    ranked.reserve(keep);
    for (std::size_t i = 0; i < keep; ++i)
        ranked.push_back(
            {std::move(results[keys[i].pos]), keys[i].score});
    return ranked;
}

std::vector<RankedScheme>
rankSchemes(const std::vector<trace::SharingTrace> &traces,
            const std::vector<SchemeSpec> &schemes, UpdateMode mode,
            RankBy by, std::size_t n, const obs::ProgressFn &progress,
            unsigned threads, SweepKernel kernel)
{
    checkSweepInputs("rankSchemes", traces, schemes);

    std::vector<SuiteResult> results =
        ParallelSweep(threads, kernel)
            .evaluate(traces, schemes, mode, progress);
    return rankResults(results, by, n, traces.front().nNodes());
}

std::vector<SuiteResult>
evaluateSchemes(const std::vector<trace::SharingTrace> &traces,
                const std::vector<SchemeSpec> &schemes, UpdateMode mode,
                unsigned threads, SweepKernel kernel)
{
    checkSweepInputs("evaluateSchemes", traces, schemes);
    return ParallelSweep(threads, kernel)
        .evaluate(traces, schemes, mode);
}

} // namespace ccp::sweep
