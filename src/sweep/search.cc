#include "sweep/search.hh"

#include <algorithm>

#include "obs/registry.hh"

namespace ccp::sweep {

using predict::SchemeSpec;
using predict::SuiteResult;
using predict::UpdateMode;

std::vector<RankedScheme>
rankSchemes(const std::vector<trace::SharingTrace> &traces,
            const std::vector<SchemeSpec> &schemes, UpdateMode mode,
            RankBy by, std::size_t n, const obs::ProgressFn &progress)
{
    std::vector<RankedScheme> ranked;
    ranked.reserve(schemes.size());

    auto &reg = obs::StatsRegistry::root();
    obs::ProgressMeter meter(schemes.size());
    std::size_t done = 0;
    for (const SchemeSpec &scheme : schemes) {
        SuiteResult res;
        {
            obs::ScopedTimer timer(reg, "sweep.scheme_eval_seconds");
            res = evaluateSuite(traces, scheme, mode);
        }
        ++reg.counter("sweep.schemes_evaluated");
        double score = by == RankBy::Pvp ? res.avgPvp()
                                         : res.avgSensitivity();
        ranked.push_back({std::move(res), score});
        ++done;
        if (progress)
            progress(meter.tick(done));
    }

    auto better = [&](const RankedScheme &a, const RankedScheme &b) {
        if (a.score != b.score)
            return a.score > b.score;
        std::uint64_t sa = a.result.scheme.sizeBits(
            traces.front().nNodes());
        std::uint64_t sb = b.result.scheme.sizeBits(
            traces.front().nNodes());
        if (sa != sb)
            return sa < sb;
        double ta = by == RankBy::Pvp ? a.result.avgSensitivity()
                                      : a.result.avgPvp();
        double tb = by == RankBy::Pvp ? b.result.avgSensitivity()
                                      : b.result.avgPvp();
        return ta > tb;
    };

    std::size_t keep = std::min(n, ranked.size());
    std::partial_sort(ranked.begin(), ranked.begin() + keep,
                      ranked.end(), better);
    ranked.resize(keep);
    return ranked;
}

std::vector<SuiteResult>
evaluateSchemes(const std::vector<trace::SharingTrace> &traces,
                const std::vector<SchemeSpec> &schemes, UpdateMode mode)
{
    std::vector<SuiteResult> out;
    out.reserve(schemes.size());
    auto &reg = obs::StatsRegistry::root();
    for (const SchemeSpec &scheme : schemes) {
        obs::ScopedTimer timer(reg, "sweep.scheme_eval_seconds");
        out.push_back(evaluateSuite(traces, scheme, mode));
        timer.stop();
        ++reg.counter("sweep.schemes_evaluated");
    }
    return out;
}

} // namespace ccp::sweep
