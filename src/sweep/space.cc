#include "sweep/space.hh"

#include "predict/table.hh"

namespace ccp::sweep {

using predict::FunctionKind;
using predict::IndexSpec;
using predict::SchemeSpec;

std::vector<SchemeSpec>
enumerateSchemes(const SpaceSpec &spec)
{
    std::vector<SchemeSpec> out;
    const unsigned node_bits = predict::nodeBitsFor(spec.nNodes);

    std::vector<IndexSpec> indices;
    for (bool use_pid : {false, true}) {
        for (bool use_dir : {false, true}) {
            for (unsigned pc_bits : spec.pcBitsGrid) {
                for (unsigned addr_bits : spec.addrBitsGrid) {
                    IndexSpec idx;
                    idx.usePid = use_pid;
                    idx.useDir = use_dir;
                    idx.pcBits = pc_bits;
                    idx.addrBits = addr_bits;
                    if (idx.indexBits(node_bits) > spec.maxIndexBits)
                        continue;
                    indices.push_back(idx);
                }
            }
        }
    }

    auto push = [&](FunctionKind kind, unsigned depth,
                    const IndexSpec &idx) {
        SchemeSpec scheme{idx, kind, depth};
        if (scheme.sizeBits(spec.nNodes) <= spec.maxBits)
            out.push_back(scheme);
    };

    for (const IndexSpec &idx : indices) {
        for (unsigned depth : spec.windowDepths) {
            push(FunctionKind::Union, depth, idx);
            if (depth > 1) // inter(depth 1) == union(depth 1) == last
                push(FunctionKind::Inter, depth, idx);
        }
        for (unsigned depth : spec.pasDepths)
            push(FunctionKind::PAs, depth, idx);
        for (unsigned depth : spec.percDepths) {
            IndexSpec pidx = idx;
            // The hashed fold needs at least one index bit to fold
            // into; the single-entry (empty) index stays as-is.
            if (spec.percHashedIndex &&
                pidx.indexBits(node_bits) > 0)
                pidx.hashed = true;
            for (unsigned wb : spec.percWeightBits) {
                for (unsigned th : spec.percThetas) {
                    for (unsigned bb : spec.percBloomBits) {
                        SchemeSpec scheme{pidx,
                                          FunctionKind::Perceptron,
                                          depth};
                        scheme.perc.weightBits = wb;
                        scheme.perc.theta = th;
                        scheme.perc.bloomBits = bb;
                        if (scheme.sizeBits(spec.nNodes) <=
                            spec.maxBits)
                            out.push_back(scheme);
                    }
                }
            }
        }
    }
    return out;
}

} // namespace ccp::sweep
