/**
 * @file
 * AVX2 lane kernel: 4 schemes' u64 sharing bitmaps per 256-bit
 * vector over the SoA lane layout (batch_lanes.hh).
 *
 * This file is the only translation unit compiled with -mavx2 (see
 * src/sweep/CMakeLists.txt); it is added to the build only when the
 * toolchain accepts the flag, and selected at runtime only when CPUID
 * reports AVX2, so the library never executes AVX2 instructions on a
 * host without them.
 *
 * Vectorized per event and lane group:
 *
 *  - index pipeline: four mask-AND + variable-shift (vpsllvq) terms
 *    over the transposed plans — 4 lanes' table indices at once;
 *  - predict loads: 64-bit gathers (vpgatherqq) over the interleaved
 *    state, one gather per entry word, with count-gated accumulation
 *    for the window families;
 *  - confusion tallies: pshufb nibble-LUT popcount (AVX2 has no
 *    vpopcntq) accumulating tp and predicted-pop sums per lane.
 *
 * Update transitions stay per-lane scalar stores (AVX2 has no
 * scatter) through the shared helpers in batch_lanes.hh, so both
 * backends write state through the same code.
 *
 * Offset arithmetic note: a lane's entry offset is
 * (index * laneWidth + lane) * entryWords, up to
 * (2^26 * 4 + 3) * 33 = 2^33.4 words — past 32 bits, so offsets are
 * computed with vpmuludq (exact: both factors fit 32 bits) and kept
 * as 64-bit vector elements for the gathers.
 */

#include "sweep/batch_lanes.hh"

#include <immintrin.h>

namespace ccp::sweep::lanes {
namespace {

enum class Mode : std::uint8_t
{
    Direct,
    Forwarded,
    Ordered,
};

inline __m256i
loadA(const std::uint64_t *p)
{
    return _mm256_load_si256(reinterpret_cast<const __m256i *>(p));
}

/** The four lanes' table indices for one access tuple, as a vector
 *  (bit-identical to IndexPlan::fromWords per lane). */
inline __m256i
laneIndexVec(const LanePlans &p, std::uint64_t pid, std::uint64_t pcw,
             std::uint64_t dir, std::uint64_t block)
{
    const __m256i b = _mm256_set1_epi64x(static_cast<long long>(block));
    const __m256i d = _mm256_set1_epi64x(static_cast<long long>(dir));
    const __m256i pc = _mm256_set1_epi64x(static_cast<long long>(pcw));
    const __m256i pi = _mm256_set1_epi64x(static_cast<long long>(pid));
    __m256i idx = _mm256_sllv_epi64(
        _mm256_and_si256(b, loadA(p.addrMask)), loadA(p.addrShift));
    idx = _mm256_or_si256(
        idx, _mm256_sllv_epi64(_mm256_and_si256(d, loadA(p.dirMask)),
                               loadA(p.dirShift)));
    idx = _mm256_or_si256(
        idx, _mm256_sllv_epi64(_mm256_and_si256(pc, loadA(p.pcMask)),
                               loadA(p.pcShift)));
    idx = _mm256_or_si256(
        idx, _mm256_sllv_epi64(_mm256_and_si256(pi, loadA(p.pidMask)),
                               loadA(p.pidShift)));
    return idx;
}

/** Word offsets of the lanes' entries: (idx * 4 + lane) * entryWords
 *  (word 0); word w adds w.  Exact 64-bit products via vpmuludq
 *  (idx * 4 + lane < 2^28 and entryWords <= 33 both fit 32 bits). */
inline __m256i
entryOffsetVec(__m256i idx, std::size_t entry_words)
{
    const __m256i lane_ids = _mm256_setr_epi64x(0, 1, 2, 3);
    const __m256i slot =
        _mm256_add_epi64(_mm256_slli_epi64(idx, 2), lane_ids);
    return _mm256_mul_epu32(
        slot, _mm256_set1_epi64x(static_cast<long long>(entry_words)));
}

inline __m256i
gatherWord(const std::uint64_t *state, __m256i off0, unsigned w)
{
    const __m256i off = _mm256_add_epi64(
        off0, _mm256_set1_epi64x(static_cast<long long>(w)));
    return _mm256_i64gather_epi64(
        reinterpret_cast<const long long *>(state), off, 8);
}

/** Per-64-bit-element popcount: pshufb nibble LUT + psadbw fold. */
inline __m256i
popcount64x4(__m256i v)
{
    const __m256i lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
    const __m256i nib = _mm256_set1_epi8(0x0f);
    const __m256i lo = _mm256_and_si256(v, nib);
    const __m256i hi =
        _mm256_and_si256(_mm256_srli_epi16(v, 4), nib);
    const __m256i cnt =
        _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                        _mm256_shuffle_epi8(lut, hi));
    return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

/**
 * Vectorized predict for one lane group at entry offsets @p off0
 * (word 0).  Window accumulation gates each stored word w on
 * count >= w, so lanes with different fill levels share the loop;
 * union starts from zero (count == 0 predicts nothing for free),
 * inter blends unseen slots to all-ones and masks the count == 0
 * lanes at the end.  Equal to the per-lane scalar predict for every
 * state: the gated set of words is exactly st[1..count] and AND/OR
 * are commutative.
 */
template <LaneFamily family>
inline __m256i
predictVec(const std::uint64_t *state, __m256i off0, unsigned depth)
{
    const __m256i zero = _mm256_setzero_si256();
    const __m256i st0 = gatherWord(state, off0, 0);
    const __m256i count =
        _mm256_and_si256(st0, _mm256_set1_epi64x(0xffffffffll));

    if (family == LaneFamily::Last) {
        const __m256i st1 = gatherWord(state, off0, 1);
        return _mm256_and_si256(st1,
                                _mm256_cmpgt_epi64(count, zero));
    }
    if (family == LaneFamily::OverlapLast) {
        const __m256i st1 = gatherWord(state, off0, 1);
        const __m256i st2 = gatherWord(state, off0, 2);
        const __m256i ge2 =
            _mm256_cmpgt_epi64(count, _mm256_set1_epi64x(1));
        const __m256i both = _mm256_and_si256(st1, st2);
        return _mm256_andnot_si256(
            _mm256_cmpeq_epi64(both, zero),
            _mm256_and_si256(st1, ge2));
    }

    if (family == LaneFamily::Union) {
        __m256i acc = zero;
        for (unsigned w = 1; w <= depth; ++w) {
            const __m256i live = _mm256_cmpgt_epi64(
                count,
                _mm256_set1_epi64x(static_cast<long long>(w) - 1));
            acc = _mm256_or_si256(
                acc, _mm256_and_si256(gatherWord(state, off0, w),
                                      live));
        }
        return acc;
    }

    // Inter: unseen slots blend to all-ones so they do not narrow
    // the intersection; empty lanes (count == 0) are zeroed last.
    const __m256i ones = _mm256_set1_epi64x(-1);
    __m256i acc = ones;
    for (unsigned w = 1; w <= depth; ++w) {
        const __m256i live = _mm256_cmpgt_epi64(
            count, _mm256_set1_epi64x(static_cast<long long>(w) - 1));
        acc = _mm256_and_si256(
            acc, _mm256_blendv_epi8(ones,
                                    gatherWord(state, off0, w),
                                    live));
    }
    return _mm256_and_si256(acc, _mm256_cmpgt_epi64(count, zero));
}

template <LaneFamily family>
inline void
updateLanes(std::uint64_t *base, const std::uint64_t idx[laneWidth],
            std::size_t entry_words, unsigned depth, std::uint64_t fb)
{
    for (std::size_t l = 0; l < laneWidth; ++l) {
        std::uint64_t *const ent =
            base + (idx[l] * laneWidth + l) * entry_words;
        switch (family) {
          case LaneFamily::Last:
            detail::laneLastUpdate(ent, fb);
            break;
          case LaneFamily::Union:
          case LaneFamily::Inter:
            detail::laneWindowUpdate(ent, depth, fb);
            break;
          case LaneFamily::OverlapLast:
            detail::laneOverlapUpdate(ent, fb);
            break;
        }
    }
}

template <LaneFamily family, Mode mode>
inline void
stepFamily(LaneGroup &g, std::uint64_t *state,
           const std::uint64_t *idx_scratch, const LaneEvent &ev)
{
    const __m256i idxv = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(idx_scratch));

    std::uint64_t *const base = state + g.base;
    const std::size_t ew = g.entryWords;

    if (mode != Mode::Ordered && ev.hasPrev) {
        const std::uint64_t *const ui = mode == Mode::Forwarded
                                            ? idx_scratch + laneWidth
                                            : idx_scratch;
        updateLanes<family>(base, ui, ew, g.depth, ev.inval);
    }

    const __m256i off0 = entryOffsetVec(idxv, ew);
    const __m256i pred = _mm256_and_si256(
        predictVec<family>(base, off0, g.depth),
        _mm256_set1_epi64x(static_cast<long long>(ev.mask)));

    const __m256i tp = popcount64x4(_mm256_and_si256(
        pred, _mm256_set1_epi64x(static_cast<long long>(ev.actual))));
    const __m256i pp = popcount64x4(pred);
    _mm256_store_si256(
        reinterpret_cast<__m256i *>(g.tp),
        _mm256_add_epi64(loadA(g.tp), tp));
    _mm256_store_si256(
        reinterpret_cast<__m256i *>(g.pp),
        _mm256_add_epi64(loadA(g.pp), pp));

    if (mode == Mode::Ordered)
        updateLanes<family>(base, idx_scratch, ew, g.depth, ev.fb);
}

/**
 * The per-event pass: address stage (vectorized index pipelines,
 * stashed to the scratch and prefetched), then step stage reusing the
 * stashed indices for both the gathers and the scalar update stores.
 */
template <Mode mode>
void
run(LaneGroup *groups, std::size_t n_groups, std::uint64_t *state,
    const LaneEvent &ev, std::uint64_t *idx_scratch)
{
    for (std::size_t gi = 0; gi < n_groups; ++gi) {
        const LaneGroup &g = groups[gi];
        std::uint64_t *const idx =
            idx_scratch + gi * laneScratchWords;
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(idx),
            laneIndexVec(g.plans, ev.pid, ev.pcw, ev.dir, ev.block));
        const std::uint64_t *const base = state + g.base;
        for (std::size_t l = 0; l < laneWidth; ++l)
            __builtin_prefetch(
                base + (idx[l] * laneWidth + l) * g.entryWords, 1);
        if (mode == Mode::Forwarded && ev.hasPrev) {
            std::uint64_t *const upd = idx + laneWidth;
            _mm256_storeu_si256(
                reinterpret_cast<__m256i *>(upd),
                laneIndexVec(g.plans, ev.prevPid, ev.prevPcw, ev.dir,
                             ev.block));
            for (std::size_t l = 0; l < laneWidth; ++l)
                __builtin_prefetch(
                    base + (upd[l] * laneWidth + l) * g.entryWords,
                    1);
        }
    }

    for (std::size_t gi = 0; gi < n_groups; ++gi) {
        LaneGroup &g = groups[gi];
        const std::uint64_t *const idx =
            idx_scratch + gi * laneScratchWords;
        switch (g.family) {
          case LaneFamily::Last:
            stepFamily<LaneFamily::Last, mode>(g, state, idx, ev);
            break;
          case LaneFamily::Union:
            stepFamily<LaneFamily::Union, mode>(g, state, idx, ev);
            break;
          case LaneFamily::Inter:
            stepFamily<LaneFamily::Inter, mode>(g, state, idx, ev);
            break;
          case LaneFamily::OverlapLast:
            stepFamily<LaneFamily::OverlapLast, mode>(g, state, idx,
                                                      ev);
            break;
        }
    }
}

} // namespace

namespace detail {

const LaneKernel &
avx2KernelImpl()
{
    static const LaneKernel kernel = {
        run<Mode::Direct>,
        run<Mode::Forwarded>,
        run<Mode::Ordered>,
        "avx2",
    };
    return kernel;
}

} // namespace detail

} // namespace ccp::sweep::lanes
