#include "sweep/runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <thread>

#include "common/fault.hh"
#include "common/logging.hh"
#include "common/mem_budget.hh"
#include "common/thread_pool.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"
#include "sweep/batch.hh"
#include "sweep/checkpoint.hh"
#include "sweep/name.hh"
#include "trace/format.hh"

namespace ccp::sweep {

using predict::Confusion;
using predict::SchemeSpec;
using predict::SuiteResult;
using predict::UpdateMode;

namespace {

// ---------------------------------------------------------------------
// Signal-requested drain
//
// Two flags on purpose.  The handler may touch only
// `volatile std::sig_atomic_t` — the one type the C standard
// guarantees is safe to assign from signal context — and nothing in
// the handler below allocates, locks, or logs (signal(), raise() and
// the assignment are all async-signal-safe).  requestInterrupt(), the
// *programmatic* drain used by tests and embedding tools, writes a
// separate atomic instead: threads injecting a drain while workers
// poll interruptRequested() would otherwise be a formal data race on
// the volatile (and a real TSan report).  Readers poll both.

volatile std::sig_atomic_t g_signal_flag = 0;
std::atomic<int> g_drain_requested{0};

extern "C" void
runnerSignalHandler(int sig)
{
    // First signal requests a drain (workers finish in-flight batches,
    // a final checkpoint is flushed).  A second one means "now": fall
    // back to the default disposition and re-raise.
    if (g_signal_flag != 0) {
        ::signal(sig, SIG_DFL);
        ::raise(sig);
        return;
    }
    g_signal_flag = sig;
}

/** RAII SIGINT/SIGTERM installation around one sweep. */
class SignalGuard
{
  public:
    explicit SignalGuard(bool install) : installed_(install)
    {
        if (!installed_)
            return;
        struct sigaction sa = {};
        sa.sa_handler = runnerSignalHandler;
        sigemptyset(&sa.sa_mask);
        ::sigaction(SIGINT, &sa, &oldInt_);
        ::sigaction(SIGTERM, &sa, &oldTerm_);
    }

    SignalGuard(const SignalGuard &) = delete;
    SignalGuard &operator=(const SignalGuard &) = delete;

    ~SignalGuard()
    {
        if (!installed_)
            return;
        ::sigaction(SIGINT, &oldInt_, nullptr);
        ::sigaction(SIGTERM, &oldTerm_, nullptr);
    }

  private:
    bool installed_;
    struct sigaction oldInt_ = {};
    struct sigaction oldTerm_ = {};
};

// ---------------------------------------------------------------------
// Task plan

/** One unit of isolated work: a contiguous scheme range.  The plan is
 *  computed over the FULL scheme list (deterministic in the scheme
 *  list and budget alone), then tasks are individually skipped when
 *  resumed or over budget, so the plan — and therefore results and
 *  checkpoints — never depends on thread count or interleaving. */
struct Task
{
    std::size_t first = 0;
    std::size_t last = 0;
    /** Position in the full plan (fault-injection ordinal). */
    std::size_t ordinal = 0;
    std::uint64_t stateBytes = 0;
};

std::vector<Task>
planTasks(const std::vector<SchemeSpec> &schemes, unsigned n_nodes,
          SweepKernel kernel, const MemBudget &budget)
{
    std::vector<Task> tasks;
    if (kernel == SweepKernel::Reference) {
        // Scheme-major oracle: one scheme per task, as ParallelSweep
        // dispatches it.
        tasks.reserve(schemes.size());
        for (std::size_t i = 0; i < schemes.size(); ++i)
            tasks.push_back(
                {i, i + 1, i,
                 std::uint64_t(schemeStateWords(schemes[i], n_nodes)) *
                     8});
        return tasks;
    }
    // Event-major batches, additionally capped so one batch fits the
    // memory budget (planBatches still gives a lone oversized scheme
    // its own batch — admission skips it below).
    std::size_t max_words = std::size_t(4) << 20;
    if (!budget.unlimited())
        max_words = std::max<std::size_t>(
            1, std::min<std::uint64_t>(max_words,
                                       budget.totalBytes() / 8));
    auto ranges = planBatches(schemes, n_nodes, max_words);
    tasks.reserve(ranges.size());
    for (std::size_t b = 0; b < ranges.size(); ++b) {
        Task t{ranges[b].first, ranges[b].second, b, 0};
        for (std::size_t i = t.first; i < t.last; ++i)
            t.stateBytes +=
                std::uint64_t(schemeStateWords(schemes[i], n_nodes)) *
                8;
        tasks.push_back(t);
    }
    return tasks;
}

} // namespace

const char *
failureKindName(FailureKind kind)
{
    switch (kind) {
      case FailureKind::Exception:
        return "exception";
      case FailureKind::Deadline:
        return "deadline";
      case FailureKind::MemBudget:
        return "mem-budget";
      case FailureKind::Quarantine:
        return "quarantine";
    }
    ccp_panic("bad FailureKind");
}

obs::Json
failuresJson(const std::vector<SchemeFailure> &failures)
{
    obs::Json arr = obs::Json::array();
    for (const auto &f : failures) {
        obs::Json row = obs::Json::object();
        row["scheme_index"] = obs::Json(std::uint64_t(f.schemeIndex));
        row["scheme"] = obs::Json(f.scheme);
        row["kind"] = obs::Json(failureKindName(f.kind));
        row["message"] = obs::Json(f.message);
        row["attempts"] = obs::Json(std::uint64_t(f.attempts));
        arr.append(std::move(row));
    }
    return arr;
}

bool
ResilientRunner::interruptRequested()
{
    return g_signal_flag != 0 ||
           g_drain_requested.load(std::memory_order_relaxed) != 0;
}

void
ResilientRunner::requestInterrupt()
{
    g_drain_requested.store(SIGINT, std::memory_order_relaxed);
}

ResilientOutcome
ResilientRunner::evaluate(const std::vector<trace::SharingTrace> &traces,
                          const std::vector<SchemeSpec> &schemes,
                          UpdateMode mode,
                          const obs::ProgressFn &progress)
{
    if (traces.empty())
        ccp_fatal("ResilientRunner: empty benchmark suite");
    if (schemes.empty())
        ccp_fatal("ResilientRunner: empty scheme list");
    const unsigned n_nodes = traces.front().nNodes();

    obs::StatsRegistry &parent = obs::StatsRegistry::current();

    ResilientOutcome outcome;
    outcome.results.resize(schemes.size());
    outcome.completed.assign(schemes.size(), 0);

    const bool checkpointing = !opts_.checkpointPath.empty();
    CheckpointKey key;
    std::string file;
    if (checkpointing) {
        key = makeCheckpointKey(traces, schemes, mode, opts_.kernel);
        file = checkpointFileName(opts_.checkpointPath, key);
        outcome.checkpointFile = file;
    }

    // Completed-scheme entries: seeded from the checkpoint on resume,
    // appended per finished task, snapshotted by every write.
    std::vector<CheckpointEntry> done;
    std::vector<std::uint8_t> resumed(schemes.size(), 0);
    if (checkpointing && opts_.resume) {
        CCP_TRACE_SPAN("ckpt", "ckpt.resume_load");
        std::vector<CheckpointEntry> loaded;
        CheckpointLoad status = loadCheckpoint(file, key, loaded);
        switch (status) {
          case CheckpointLoad::Ok:
            for (auto &e : loaded)
                resumed[e.schemeIndex] = 1;
            done = std::move(loaded);
            break;
          case CheckpointLoad::Missing:
            break;
          case CheckpointLoad::Invalid:
          case CheckpointLoad::KeyMismatch:
          case CheckpointLoad::UnsupportedKind:
            ++parent.counter("sweep.checkpoints_rejected");
            ccp_warn("checkpoint ", file, " rejected (",
                     checkpointLoadName(status),
                     "); rerunning from scratch");
            std::error_code ec;
            std::filesystem::remove(file, ec);
            break;
        }
    }

    const MemBudget budget(opts_.memBudgetBytes);
    auto plan = planTasks(schemes, n_nodes, opts_.kernel, budget);

    // Classify every task exactly once, in plan order, on this
    // thread: resumed, skipped over budget, or pending evaluation.
    // Only fully-checkpointed tasks resume; a partially covered batch
    // re-runs whole (its recomputed entries are bit-identical).
    std::vector<Task> pending;
    std::size_t initial_done = 0;
    for (const Task &t : plan) {
        bool all_resumed = true;
        for (std::size_t i = t.first; i < t.last; ++i)
            all_resumed = all_resumed && resumed[i];
        if (all_resumed) {
            for (std::size_t i = t.first; i < t.last; ++i)
                outcome.completed[i] = 1;
            outcome.schemesResumed += t.last - t.first;
            initial_done += t.last - t.first;
            ++parent.counter("sweep.batches_resumed");
            continue;
        }
        if (!budget.admit(t.ordinal, t.stateBytes)) {
            for (std::size_t i = t.first; i < t.last; ++i) {
                outcome.failures.push_back(
                    {i, formatScheme(schemes[i]),
                     FailureKind::MemBudget,
                     "predictor state " +
                         formatByteSize(
                             std::uint64_t(schemeStateWords(
                                 schemes[i], n_nodes)) *
                             8) +
                         " exceeds --mem-budget " +
                         formatByteSize(budget.totalBytes()),
                     0});
                ++parent.counter("sweep.schemes_skipped_mem");
            }
            ccp_warn("skipping ", t.last - t.first,
                     " scheme(s) over the memory budget (batch needs ",
                     formatByteSize(t.stateBytes), ", budget ",
                     formatByteSize(budget.totalBytes()), ")");
            initial_done += t.last - t.first;
            continue;
        }
        pending.push_back(t);
    }
    parent.counter("sweep.schemes_resumed") += outcome.schemesResumed;

    // Drop the per-trace payloads of entries whose schemes are only
    // partially resumed at the batch level — they re-run anyway and
    // would otherwise duplicate when their batch completes.
    // (done currently holds exactly the loaded entries; keep the ones
    // belonging to fully-resumed batches.)
    if (!done.empty()) {
        std::vector<CheckpointEntry> kept;
        kept.reserve(done.size());
        for (auto &e : done) {
            if (outcome.completed[e.schemeIndex]) {
                outcome.results[e.schemeIndex] = restoreSuiteResult(
                    schemes[e.schemeIndex], mode, traces, e.perTrace);
                kept.push_back(std::move(e));
            }
        }
        done = std::move(kept);
    }

    // A fresh sweep starts un-interrupted even when a previous one in
    // this process drained (multi-phase tools, tests); the guard only
    // installs handlers.
    g_signal_flag = 0;
    g_drain_requested.store(0);
    SignalGuard guard(opts_.handleSignals);

    ThreadPool pool(opts_.threads);
    std::vector<obs::StatsRegistry> shards(pool.threads());

    obs::ProgressMeter meter(schemes.size(), outcome.schemesResumed);
    std::atomic<std::size_t> terminal{initial_done};
    std::mutex progress_mutex;
    auto tick = [&](std::size_t count) {
        std::size_t now = terminal.fetch_add(count) + count;
        if (progress) {
            std::lock_guard<std::mutex> lock(progress_mutex);
            progress(meter.tick(now));
        }
    };
    if (progress && initial_done > 0) {
        std::lock_guard<std::mutex> lock(progress_mutex);
        progress(meter.tick(initial_done));
    }

    // Guards `done`, `outcome.failures`, and checkpoint writes.
    std::mutex state_mutex;
    obs::Stopwatch since_checkpoint;
    auto writeCheckpointLocked = [&]() {
        if (!checkpointing)
            return;
        CCP_TRACE_SPAN_N("ckpt", "ckpt.write", done.size());
        obs::Stopwatch lat;
        if (saveCheckpoint(file, key, done)) {
            obs::StatsRegistry::current()
                .latency("sweep.checkpoint_write_latency_ns")
                .add(std::uint64_t(lat.elapsedSec() * 1e9));
            ++obs::StatsRegistry::current().counter(
                "sweep.checkpoints_written");
        } else {
            ccp_warn("cannot write checkpoint ", file);
        }
        since_checkpoint.reset();
    };

    // Liveness flush before any evaluation: a supervisor probing this
    // file for progress would otherwise see nothing at all until the
    // first batch lands — a blind spot a worker deadline can hit on a
    // loaded machine even though the worker is perfectly healthy.
    // (Also a progress event: the file appearing re-arms the probe.)
    if (checkpointing && opts_.initialLivenessFlush) {
        std::lock_guard<std::mutex> lock(state_mutex);
        writeCheckpointLocked();
    }

    pool.forEach(
        pending.size(),
        [&](std::size_t job, unsigned worker) {
            const Task &task = pending[job];
            obs::StatsRegistry &shard = shards[worker];
            obs::ScopedRegistry route(shard);

            if (fault::enabled() &&
                fault::fireAt("sweep.interrupt_at", task.ordinal))
                requestInterrupt();
            if (interruptRequested())
                return; // drain: leave unstarted tasks incomplete

            const std::size_t count = task.last - task.first;
            std::vector<SuiteResult> task_results;
            std::string error;
            unsigned attempts = 0;
            obs::Stopwatch batch_watch;
            for (unsigned attempt = 0; attempt <= opts_.maxRetries;
                 ++attempt) {
                ++attempts;
                try {
                    if (attempt == 0 && fault::enabled() &&
                        fault::fireAt("sweep.worker_throw",
                                      task.ordinal))
                        throw std::runtime_error(
                            "injected worker fault");
                    CCP_TRACE_SPAN_N("sweep", "sweep.batch", count);
                    obs::ScopedTimer timer(
                        shard, "sweep.batch_eval_seconds");
                    obs::Stopwatch lat;
                    if (opts_.kernel != SweepKernel::Reference) {
                        BatchEvaluator batch(
                            {schemes.begin() +
                                 static_cast<std::ptrdiff_t>(
                                     task.first),
                             schemes.begin() +
                                 static_cast<std::ptrdiff_t>(
                                     task.last)},
                            n_nodes,
                            opts_.kernel == SweepKernel::Simd
                                ? BatchEngine::Simd
                                : BatchEngine::Scalar);
                        task_results =
                            batch.evaluateSuite(traces, mode);
                    } else {
                        task_results.clear();
                        for (std::size_t i = task.first;
                             i < task.last; ++i)
                            task_results.push_back(evaluateSuite(
                                traces, schemes[i], mode));
                    }
                    shard.latency("sweep.batch_latency_ns")
                        .add(std::uint64_t(lat.elapsedSec() * 1e9));
                    error.clear();
                    break;
                } catch (const std::exception &e) {
                    error = e.what();
                } catch (...) {
                    error = "unknown exception";
                }
                if (attempt < opts_.maxRetries) {
                    ++shard.counter("sweep.batches_retried");
                    ccp_warn("batch ", task.ordinal, " failed (",
                             error, "); retrying");
                    double backoff = opts_.retryBackoffSec *
                                     double(1u << attempt);
                    if (backoff > 0)
                        std::this_thread::sleep_for(
                            std::chrono::duration<double>(backoff));
                }
            }

            if (!error.empty()) {
                // Final failure: contained — record and move on,
                // siblings unaffected.
                ++shard.counter("sweep.batches_failed");
                std::lock_guard<std::mutex> lock(state_mutex);
                for (std::size_t i = task.first; i < task.last; ++i)
                    outcome.failures.push_back(
                        {i, formatScheme(schemes[i]),
                         FailureKind::Exception, error, attempts});
                tick(count);
                return;
            }

            const double batch_sec = batch_watch.elapsedSec();
            for (std::size_t i = 0; i < count; ++i)
                outcome.results[task.first + i] =
                    std::move(task_results[i]);
            for (std::size_t i = task.first; i < task.last; ++i)
                outcome.completed[i] = 1;
            ++shard.counter("sweep.batches_evaluated");
            shard.counter("sweep.schemes_evaluated") += count;

            {
                std::lock_guard<std::mutex> lock(state_mutex);
                if (opts_.batchDeadlineSec > 0 &&
                    batch_sec > opts_.batchDeadlineSec) {
                    // Advisory: results are kept, the overrun is
                    // reported (a running batch is never preempted).
                    ++shard.counter("sweep.batches_overdeadline");
                    outcome.failures.push_back(
                        {task.first, formatScheme(schemes[task.first]),
                         FailureKind::Deadline,
                         "batch of " + std::to_string(count) +
                             " scheme(s) took " +
                             obs::formatDuration(batch_sec) +
                             " (deadline " +
                             obs::formatDuration(
                                 opts_.batchDeadlineSec) +
                             "); results kept",
                         attempts});
                }
                for (std::size_t i = task.first; i < task.last; ++i) {
                    CheckpointEntry e;
                    e.schemeIndex = i;
                    e.perTrace.reserve(traces.size());
                    for (const auto &tr : outcome.results[i].perTrace)
                        e.perTrace.push_back(tr.confusion);
                    done.push_back(std::move(e));
                }
                if (checkpointing &&
                    (opts_.checkpointIntervalSec <= 0 ||
                     since_checkpoint.elapsedSec() >=
                         opts_.checkpointIntervalSec))
                    writeCheckpointLocked();
            }
            tick(count);
        },
        1);

    for (const auto &shard : shards)
        parent.merge(shard);

    outcome.interrupted = interruptRequested();
    if (outcome.interrupted) {
        ++parent.counter("sweep.interrupted");
        ccp_warn("sweep interrupted — draining complete, ",
                 done.size(), "/", schemes.size(),
                 " schemes checkpointable");
    }

    if (checkpointing) {
        // Final flush: on interrupt this is the state --resume picks
        // up; on completion it leaves an idempotent-resume artifact.
        std::lock_guard<std::mutex> lock(state_mutex);
        obs::ScopedRegistry route(parent);
        writeCheckpointLocked();
    }

    std::sort(outcome.failures.begin(), outcome.failures.end(),
              [](const SchemeFailure &a, const SchemeFailure &b) {
                  return a.schemeIndex < b.schemeIndex;
              });
    return outcome;
}

} // namespace ccp::sweep
