/**
 * @file
 * BatchEvaluator: the event-major sweep kernel.
 *
 * The reference sweep is scheme-major: every scheme walks the whole
 * trace through PredictorTable, paying two virtual function calls,
 * one branchy index computation, and one full event decode per event
 * per scheme.  A design-space sweep re-reads every trace hundreds of
 * times.
 *
 * This kernel inverts the loop: each trace event is decoded exactly
 * once and driven through *all* schemes of a batch.
 *
 *  - Per-scheme table state lives in one contiguous packed word array
 *    (no per-entry or per-table indirection; schemes are slices at
 *    precomputed offsets).
 *  - Index extraction is compiled once per scheme into a
 *    predict::IndexPlan — a fixed branch-free mask/shift pipeline.
 *  - Prediction functions are dispatched by a flat opcode (no virtual
 *    calls for the window families that dominate the design space;
 *    the window and overlap-last state transitions are inlined here
 *    with bit-identical semantics to predict/function.cc).
 *  - Confusion accumulation is word-wise: three popcounts on the
 *    64-bit sharing bitmaps per (event, scheme) with true negatives
 *    recovered by conservation at the end of the trace, instead of
 *    per-bit branches.
 *
 * The kernel is an exact drop-in: for every scheme, trace, and update
 * mode its Confusion counts equal the reference Evaluator's bit for
 * bit (tests/differential_test.cc locks this down), so rankings and
 * table output are byte-identical under either kernel.
 */

#ifndef CCP_SWEEP_BATCH_HH
#define CCP_SWEEP_BATCH_HH

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "predict/evaluator.hh"
#include "predict/function.hh"
#include "predict/index.hh"
#include "sweep/batch_lanes.hh"
#include "trace/trace.hh"

namespace ccp::sweep {

/**
 * Which state layout / inner loop a BatchEvaluator runs.
 *
 *  - Scalar: the per-scheme packed-slice layout above (PR 4).
 *  - Simd: the structure-of-arrays lane layout (batch_lanes.hh) —
 *    window-family schemes are regrouped into 4-wide lanes per
 *    (family, depth, indexBits) class and stepped by a lane kernel
 *    (AVX2 when built + supported + not disabled via the
 *    CCP_SIMD_DISABLE environment override, portable u64 arrays
 *    otherwise); schemes that don't fill a lane group, and the PAs
 *    family, keep the scalar path.  Confusion counts are identical
 *    under either engine.
 */
enum class BatchEngine : std::uint8_t
{
    Scalar,
    Simd,
};

/**
 * The lane backend the Simd engine would pick on this host right now:
 * "avx2" when the AVX2 translation unit is built, CPUID reports AVX2,
 * and CCP_SIMD_DISABLE is not set; "scalar" otherwise.
 */
const char *simdBackendName();

/**
 * Evaluates a fixed batch of schemes over traces, event-major.
 *
 * Construction compiles every scheme (index plan, opcode, state
 * slice); evaluateTrace() then walks a trace once for the whole
 * batch.  The batch owns all predictor state; a fresh trace clears it
 * (the same fresh-table-per-trace semantics as the reference
 * evaluateSuite path).
 */
class BatchEvaluator
{
  public:
    /**
     * @param schemes The batch (evaluated and returned in order).
     * @param n_nodes Machine size of every trace this batch will see.
     * @param engine State layout / inner loop (results identical).
     */
    BatchEvaluator(std::vector<predict::SchemeSpec> schemes,
                   unsigned n_nodes,
                   BatchEngine engine = BatchEngine::Scalar);

    std::size_t size() const { return schemes_.size(); }
    unsigned nNodes() const { return nNodes_; }
    BatchEngine engine() const { return engine_; }

    /** Lane backend tag ("avx2" / "scalar"); "none" under Scalar. */
    const char *
    laneBackend() const
    {
        return laneKernel_ != nullptr ? laneKernel_->name : "none";
    }

    /** Schemes running in SoA lane groups (0 under Scalar). */
    std::size_t
    laneSchemes() const
    {
        return laneGroups_.size() * lanes::laneWidth;
    }

    /** Total packed predictor-state words across the batch. */
    std::size_t
    stateWords() const
    {
        return state_.size() + laneState_.size();
    }

    /**
     * Evaluate every scheme of the batch over one trace (predictor
     * state cleared first).  @return per-scheme confusion counts, in
     * batch order, exactly equal to the reference evaluator's.
     */
    std::vector<predict::Confusion>
    evaluateTrace(const trace::SharingTrace &trace,
                  predict::UpdateMode mode);

    /**
     * Evaluate the batch over a suite (state cleared per trace, as
     * each benchmark runs alone on the machine).  @return per-scheme
     * SuiteResults in batch order — the same values the reference
     * evaluateSuite produces for each scheme.
     */
    std::vector<predict::SuiteResult>
    evaluateSuite(const std::vector<trace::SharingTrace> &traces,
                  predict::UpdateMode mode);

  private:
    /** Flat function dispatch: the batched kernel's opcode. */
    enum class Op : std::uint8_t
    {
        Last,        ///< union/inter, depth 1
        Union,       ///< union, depth >= 2
        Inter,       ///< inter, depth >= 2
        OverlapLast, ///< overlap-filtered last
        PAs,         ///< two-level adaptive (via PAsFunction)
        Perceptron,  ///< hashed perceptron (via PerceptronFunction)
    };

    /** One compiled scheme: plan + opcode + state slice. */
    struct Compiled
    {
        predict::IndexPlan plan;
        Op op = Op::Last;
        unsigned depth = 1;
        std::size_t entryWords = 0;
        /** Offset of this scheme's state slice in state_. */
        std::size_t base = 0;
        /** Concrete function, PAs only (word layout lives there). */
        std::shared_ptr<const predict::PAsFunction> pas;
        /** Concrete function, perceptron only (same reason). */
        std::shared_ptr<const predict::PerceptronFunction> perc;
        /** tp/fp/fn popcount tallies for the trace being walked. */
        std::uint64_t tp = 0, fp = 0, fn = 0;
    };

    template <predict::UpdateMode mode>
    void runTrace(const trace::SharingTrace &trace,
                  const std::vector<SharingBitmap> &ordered_fb);

    /** The Simd engine's event loop: lane groups stepped through the
     *  selected lane kernel, leftover schemes through stepScheme. */
    template <predict::UpdateMode mode>
    void runTraceSimd(const trace::SharingTrace &trace,
                      const std::vector<SharingBitmap> &ordered_fb);

    /** One scheme's update/predict/tally for one event — the shared
     *  per-scheme body of both engines' scalar paths. */
    template <predict::UpdateMode mode>
    static void stepScheme(Compiled &c, std::uint64_t *entry,
                           std::uint64_t *upd, bool has_prev,
                           std::uint64_t inval,
                           std::uint64_t fb_ordered, std::uint64_t mask,
                           std::uint64_t actual,
                           std::uint64_t actual_pop);

    /** Simd-engine compilation: regroup window-family schemes into
     *  lane groups, route the rest to scalarSchemes_, size and select
     *  the lane kernel.  @p bits_of holds each scheme's index width. */
    void partitionLanes(const std::vector<unsigned> &bits_of);

    std::vector<predict::SchemeSpec> schemes_;
    std::vector<Compiled> compiled_;
    unsigned nNodes_;
    unsigned nodeBits_;
    BatchEngine engine_ = BatchEngine::Scalar;
    /** All scalar-path predictor state, packed: scalar scheme i owns
     *  [compiled_[i].base, base + entries * entryWords). */
    std::vector<std::uint64_t> state_;
    /** Per-event scratch for the address pass: each scheme's resolved
     *  entry (and, under forwarded update, update-entry) pointer. */
    std::vector<std::uint64_t *> entryScratch_;
    std::vector<std::uint64_t *> updScratch_;
    /** Simd engine only: lane groups, their SoA state block, the
     *  schemes left on the scalar path (all of them under Scalar),
     *  and the selected lane kernel. */
    std::vector<lanes::LaneGroup> laneGroups_;
    std::vector<std::uint64_t> laneState_;
    std::vector<std::size_t> scalarSchemes_;
    /** Per-event lane-index scratch the kernel's address stage fills
     *  (laneScratchWords per group). */
    std::vector<std::uint64_t> laneIdxScratch_;
    const lanes::LaneKernel *laneKernel_ = nullptr;
};

/** Ceiling on one scheme's packed state (2^38 words = 2 TiB): any
 *  scheme whose 2^indexBits * entryWords footprint would exceed it —
 *  or whose index is wider than predict::maxTableIndexBits — is an
 *  unusable configuration, rejected with ccp_fatal instead of letting
 *  the size_t shift/multiply wrap and under-allocate. */
inline constexpr std::size_t maxSchemeStateWords = std::size_t(1)
                                                   << 38;

/** Cap on the index-width spread inside one simd lane group: lanes of
 *  one (family, depth) class may differ in index bits, with the
 *  group's entry count padded to the widest lane's — but a lane is
 *  never padded by more than this many bits (2^maxLanePadBits = 16x
 *  its own entry count), so grouping cannot blow up the batch's state
 *  footprint; schemes too narrow for any group within the cap ride
 *  the scalar path instead. */
inline constexpr unsigned maxLanePadBits = 4;

/**
 * Packed predictor-state words one scheme needs in the event-major
 * kernel: table entries (2^indexBits) x words per entry.  This is the
 * footprint planBatches accumulates and the memory-budget guard
 * (common/mem_budget.hh) admits against — a close lower bound on the
 * reference kernel's PredictorTable as well (which adds per-entry
 * bookkeeping on top of the same state).  Fatal (exit, not wrap) for
 * schemes past maxSchemeStateWords or predict::maxTableIndexBits.
 */
std::size_t schemeStateWords(const predict::SchemeSpec &scheme,
                             unsigned n_nodes);

/**
 * Partition a scheme list into contiguous batches for the event-major
 * kernel: schemes accumulate into a batch until its packed state
 * would exceed @p max_state_words or @p max_schemes, so one in-flight
 * batch stays cache- and RAM-friendly even when the sweep space holds
 * large tables.  A single scheme larger than the budget still forms
 * its own batch.  Deterministic in the scheme list alone (never in
 * thread count), so batched sweep results cannot depend on worker
 * interleaving.
 *
 * @return half-open [first, last) index ranges covering the list.
 */
std::vector<std::pair<std::size_t, std::size_t>>
planBatches(const std::vector<predict::SchemeSpec> &schemes,
            unsigned n_nodes,
            std::size_t max_state_words = std::size_t(4) << 20,
            std::size_t max_schemes = 32);

} // namespace ccp::sweep

#endif // CCP_SWEEP_BATCH_HH
