#include "sweep/orchestrator.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <mutex>
#include <thread>

#include "common/fault.hh"
#include "common/logging.hh"
#include "common/subprocess.hh"
#include "common/thread_pool.hh"
#include "obs/registry.hh"
#include "sweep/name.hh"

namespace ccp::sweep {

namespace {

/** The injected faults that must fire at most once per
 *  *orchestration*: every worker re-reads CCP_FAULT_INJECT, so
 *  without stripping, a retry of the faulted shard would re-kill /
 *  re-hang / re-tear itself forever.  shard.worker_fail is absent on
 *  purpose — it is the persistent fault quarantine is tested with. */
constexpr const char *oneShotPoints[] = {
    "shard.worker_kill",
    "shard.worker_hang",
    "shard.torn_checkpoint",
};

/** @p spec with the one-shot shard clauses removed (textually — the
 *  child re-parses whatever remains). */
std::string
stripOneShotFaults(const std::string &spec)
{
    std::string out;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string clause = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (clause.empty())
            continue;
        bool one_shot = false;
        for (const char *point : oneShotPoints)
            if (clause.rfind(std::string(point) + "=", 0) == 0)
                one_shot = true;
        if (!one_shot) {
            if (!out.empty())
                out += ',';
            out += clause;
        }
        if (comma == spec.size())
            break;
    }
    return out;
}

/** Checkpoint-file liveness probe state: any growth or mtime movement
 *  since the last poll counts as progress and re-arms the deadline. */
struct FileProgress
{
    std::uintmax_t size = 0;
    std::filesystem::file_time_type mtime{};

    bool
    poll(const std::string &path)
    {
        std::error_code ec;
        const std::uintmax_t sz = std::filesystem::file_size(path, ec);
        if (ec)
            return false;
        const auto mt = std::filesystem::last_write_time(path, ec);
        if (ec)
            return false;
        if (sz != size || mt != mtime) {
            size = sz;
            mtime = mt;
            return true;
        }
        return false;
    }
};

} // namespace

obs::Json
orchestratorJson(const std::vector<ShardRunReport> &reports)
{
    obs::Json arr = obs::Json::array();
    for (const auto &r : reports) {
        obs::Json row = obs::Json::object();
        row["shard"] = obs::Json(std::uint64_t(r.shard));
        row["attempts"] = obs::Json(std::uint64_t(r.attempts));
        row["quarantined"] = obs::Json(r.quarantined);
        row["schemes_total"] =
            obs::Json(std::uint64_t(r.schemesTotal));
        row["schemes_done"] = obs::Json(std::uint64_t(r.schemesDone));
        row["last_status"] = obs::Json(r.lastStatus);
        row["last_exit_code"] = obs::Json(r.lastExitCode);
        row["last_signal"] = obs::Json(r.lastSignal);
        row["stderr_tail"] = obs::Json(r.stderrTail);
        row["checkpoint_file"] = obs::Json(r.checkpointFile);
        arr.append(std::move(row));
    }
    return arr;
}

OrchestratorOutcome
orchestrateSweep(const OrchestratorOptions &opts,
                 const std::vector<trace::SharingTrace> &traces,
                 const std::vector<predict::SchemeSpec> &schemes,
                 predict::UpdateMode mode, SweepKernel kernel,
                 const obs::ProgressFn &progress)
{
    if (opts.workerArgv.empty())
        ccp_fatal("orchestrateSweep: empty worker command");
    if (opts.checkpointBase.empty())
        ccp_fatal("orchestrateSweep: checkpoint base required (shard "
                  "checkpoints are the exchange format)");
    if (opts.shards < 1)
        ccp_fatal("orchestrateSweep: need at least one shard");
    const unsigned max_attempts = std::max(1u, opts.maxAttempts);

    // Fail fast on an unwritable checkpoint location: every worker
    // would otherwise run its full shard, fail the final write, and
    // burn max_attempts before quarantine reports the real cause.
    const std::filesystem::path ckpt_dir =
        std::filesystem::path(opts.checkpointBase).parent_path();
    if (!ckpt_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(ckpt_dir, ec);
        if (ec)
            ccp_fatal("orchestrateSweep: cannot create checkpoint "
                      "directory ", ckpt_dir.string(), ": ",
                      ec.message());
    }

    obs::StatsRegistry &reg = obs::StatsRegistry::current();
    const ShardPlan plan = planShards(schemes, opts.shards);

    // The parent's fault spec, forwarded verbatim on first attempts
    // and with one-shot shard points stripped on retries.
    const char *fault_env = std::getenv("CCP_FAULT_INJECT");
    const std::string fault_spec = fault_env ? fault_env : "";
    const std::string fault_spec_stripped =
        stripOneShotFaults(fault_spec);

    OrchestratorOutcome out;
    out.shardReports.resize(opts.shards);

    obs::ProgressMeter meter(schemes.size(), 0);
    std::atomic<std::size_t> terminal{0};
    std::atomic<bool> interrupted{false};
    std::mutex mutex; // guards progress callback, counters, warns

    auto tick = [&](std::size_t count) {
        const std::size_t now = terminal.fetch_add(count) + count;
        if (progress) {
            std::lock_guard<std::mutex> lock(mutex);
            progress(meter.tick(now));
        }
    };

    // One supervision job per shard, W at a time.  Each job owns its
    // shard start-to-finish: launch, verify the checkpoint, retry
    // with backoff, quarantine.
    ThreadPool pool(std::max(1u, opts.workers));
    pool.forEach(
        opts.shards,
        [&](std::size_t job, unsigned) {
            const unsigned shard = static_cast<unsigned>(job);
            ShardRunReport &report = out.shardReports[shard];
            report.shard = shard;
            report.schemesTotal = plan.byShard[shard].size();

            if (plan.byShard[shard].empty()) {
                report.lastStatus = "empty-shard";
                return;
            }

            const CheckpointKey key = shardCheckpointKey(
                traces, schemes, plan, shard, mode, kernel);
            const std::string file =
                checkpointFileName(opts.checkpointBase, key);
            report.checkpointFile = file;

            // "Done" means the supervisor itself can load a valid,
            // complete shard checkpoint — a worker's exit code is
            // evidence, not proof (it may sit in front of a torn
            // file).
            auto shardComplete = [&](std::size_t &done_out) {
                std::vector<CheckpointEntry> entries;
                const CheckpointLoad load =
                    loadCheckpoint(file, key, entries);
                done_out =
                    load == CheckpointLoad::Ok ? entries.size() : 0;
                return load == CheckpointLoad::Ok &&
                       entries.size() == plan.byShard[shard].size();
            };

            double backoff = opts.retryBackoffSec;
            for (unsigned attempt = 1; attempt <= max_attempts;
                 ++attempt) {
                if (interrupted.load())
                    break;

                std::size_t done = 0;
                if (shardComplete(done)) {
                    // Already complete (an earlier orchestration, or
                    // a previous attempt that died after its final
                    // flush).
                    report.schemesDone = done;
                    report.lastStatus = "complete";
                    report.stderrTail.clear();
                    {
                        std::lock_guard<std::mutex> lock(mutex);
                        ++reg.counter("orch.shards_completed");
                    }
                    tick(done);
                    return;
                }

                report.attempts = attempt;
                SubprocessSpec spec;
                spec.argv = opts.workerArgv;
                spec.argv.insert(
                    spec.argv.end(),
                    {"--shards", std::to_string(opts.shards),
                     "--shard-id", std::to_string(shard), "--resume"});
                // Workers print no table; their stdout is noise that
                // would corrupt the supervisor's byte-comparable
                // output if inherited.
                spec.stdoutPath = "/dev/null";
                spec.deadlineSec = opts.workerDeadlineSec;
                spec.termGraceSec = opts.termGraceSec;
                if (attempt > 1 && !fault_spec.empty()) {
                    if (fault_spec_stripped.empty())
                        spec.envUnset.push_back("CCP_FAULT_INJECT");
                    else
                        spec.envSet.push_back(
                            {"CCP_FAULT_INJECT",
                             fault_spec_stripped});
                }
                // A --log override only lives in this process;
                // propagate it so workers log at the same level.
                spec.envSet.push_back(
                    {"CCP_LOG", logLevelName(logLevel())});
                FileProgress fp;
                fp.poll(file); // baseline, result irrelevant
                spec.progressProbe = [&fp, &file]() {
                    return fp.poll(file);
                };

                {
                    std::lock_guard<std::mutex> lock(mutex);
                    ++reg.counter("orch.workers_spawned");
                    if (attempt > 1)
                        ++reg.counter("orch.worker_retries");
                }
                const SubprocessResult res = runSubprocess(spec);

                report.lastStatus = subprocessStatusName(res.status);
                report.lastExitCode = res.exitCode;
                report.lastSignal = res.signalNo;
                report.stderrTail = res.stderrTail;

                if (res.status == SubprocessStatus::Timeout) {
                    std::lock_guard<std::mutex> lock(mutex);
                    ++reg.counter("orch.workers_timeout");
                }

                if (shardComplete(done)) {
                    report.schemesDone = done;
                    report.lastStatus = "complete";
                    report.stderrTail.clear();
                    {
                        std::lock_guard<std::mutex> lock(mutex);
                        ++reg.counter("orch.shards_completed");
                    }
                    tick(done);
                    return;
                }

                if (res.status == SubprocessStatus::Drained) {
                    // The worker drained on a signal the supervisor
                    // did not send (Ctrl-C reaches the whole process
                    // group): stop the fleet, keep the partial state.
                    interrupted.store(true);
                    std::lock_guard<std::mutex> lock(mutex);
                    ccp_warn("shard ", shard,
                             " drained (exit 75); stopping "
                             "orchestration — rerun to resume");
                    break;
                }

                if (attempt < max_attempts) {
                    {
                        std::lock_guard<std::mutex> lock(mutex);
                        ccp_warn("shard ", shard, " attempt ",
                                 attempt, " ", report.lastStatus,
                                 " (", done, "/",
                                 plan.byShard[shard].size(),
                                 " schemes checkpointed); retrying "
                                 "with --resume");
                    }
                    if (backoff > 0)
                        std::this_thread::sleep_for(
                            std::chrono::duration<double>(backoff));
                    backoff *= 2;
                }
            }

            // Out of attempts (or interrupted): recover what the
            // partial checkpoint holds; the rest is quarantined by
            // the merge below.
            std::size_t done = 0;
            shardComplete(done);
            report.schemesDone = done;
            if (!interrupted.load()) {
                report.quarantined = true;
                {
                    std::lock_guard<std::mutex> lock(mutex);
                    ++reg.counter("orch.shards_quarantined");
                    ccp_warn("shard ", shard, " quarantined after ",
                             report.attempts, " attempt(s): last ",
                             report.lastStatus, ", ", done, "/",
                             plan.byShard[shard].size(),
                             " schemes recovered");
                }
                // Quarantined schemes are terminal too (failures),
                // so the progress line still reaches 100%.
                tick(plan.byShard[shard].size());
            } else {
                tick(done);
            }
        },
        1);

    // Fold the shard files into global scheme space and restore
    // results through the same path --resume uses.
    ShardMerge merge = mergeShardCheckpoints(
        opts.checkpointBase, traces, schemes, mode, kernel,
        opts.shards);

    ResilientOutcome &oc = out.outcome;
    oc.results.resize(schemes.size());
    oc.completed = merge.completed;
    oc.interrupted = interrupted.load();
    for (const auto &e : merge.entries)
        oc.results[e.schemeIndex] = restoreSuiteResult(
            schemes[e.schemeIndex], mode, traces, e.perTrace);
    reg.counter("orch.schemes_recovered") += merge.entries.size();

    // Every scheme a quarantined shard failed to cover becomes a
    // structured failure the ranking masks — partial results with an
    // explicit report, never silent loss.  An interrupted run is not
    // quarantine: its missing schemes are simply not done yet.
    if (!oc.interrupted) {
        for (const auto &report : out.shardReports) {
            if (!report.quarantined)
                continue;
            std::string cause =
                "shard " + std::to_string(report.shard) +
                " quarantined after " +
                std::to_string(report.attempts) +
                " attempt(s); last attempt " + report.lastStatus;
            if (report.lastExitCode > 0)
                cause += " (exit " +
                         std::to_string(report.lastExitCode) + ")";
            if (report.lastSignal > 0)
                cause += " (signal " +
                         std::to_string(report.lastSignal) + ")";
            if (!report.stderrTail.empty()) {
                // Last line of the tail — enough to name the cause
                // without dumping a whole log into every failure row.
                std::string tail = report.stderrTail;
                while (!tail.empty() && tail.back() == '\n')
                    tail.pop_back();
                const std::size_t nl = tail.find_last_of('\n');
                if (nl != std::string::npos)
                    tail = tail.substr(nl + 1);
                cause += ": " + tail;
            }
            for (std::size_t gi : plan.byShard[report.shard])
                if (!merge.completed[gi])
                    oc.failures.push_back(
                        {gi, formatScheme(schemes[gi]),
                         FailureKind::Quarantine, cause,
                         report.attempts});
        }
    }
    std::sort(oc.failures.begin(), oc.failures.end(),
              [](const SchemeFailure &a, const SchemeFailure &b) {
                  return a.schemeIndex < b.schemeIndex;
              });

    // Leave a merged full-sweep checkpoint under the same base: a
    // later single-process --resume (or a re-orchestration after
    // widening the space) picks up the fleet's work directly.
    const CheckpointKey full_key =
        makeCheckpointKey(traces, schemes, mode, kernel);
    oc.checkpointFile =
        checkpointFileName(opts.checkpointBase, full_key);
    if (!saveCheckpoint(oc.checkpointFile, full_key, merge.entries))
        ccp_warn("cannot write merged checkpoint ",
                 oc.checkpointFile);

    return out;
}

} // namespace ccp::sweep
