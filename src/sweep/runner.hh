/**
 * @file
 * ResilientRunner: the fault-tolerant sweep engine.
 *
 * ParallelSweep (sweep/parallel.hh) is fast but brittle at scale: a
 * single worker exception aborts the whole sweep, an oversized scheme
 * OOM-kills the process, and Ctrl-C discards hours of completed
 * evaluations.  This runner wraps the same kernels (BatchEvaluator /
 * reference Evaluator) with the recovery machinery a production-scale
 * design-space study needs:
 *
 *  - Checkpoint/resume: completed batches are persisted to an atomic,
 *    checksummed checkpoint (sweep/checkpoint.hh) keyed on the trace
 *    set, scheme set, kernel and machine size.  `resume` skips
 *    everything already recorded; a stale or corrupt checkpoint is
 *    rejected and regenerated.  Final rankings are byte-identical to
 *    an uninterrupted run at any thread count.
 *  - Task isolation: an exception inside one batch is contained in
 *    its worker, retried (once by default, with exponential backoff,
 *    for transient faults), and on final failure recorded as a
 *    structured SchemeFailure — sibling batches are never aborted.
 *  - Memory budget: each batch's packed predictor-state footprint is
 *    pre-computed (sweep::schemeStateWords); batches are planned to
 *    fit under the budget, and a scheme that alone exceeds it is
 *    skipped and reported instead of OOM-killing the sweep.
 *  - Signal handling: SIGINT/SIGTERM request a drain — in-flight
 *    batches finish, unstarted ones are cancelled, a final checkpoint
 *    is flushed, and the outcome reports interrupted with a distinct
 *    exit code so wrappers can distinguish "rerun with --resume" from
 *    failure.
 *  - Determinism: the batch plan depends only on the scheme list and
 *    budget (never on thread count or completion order), and results
 *    are stored by scheme index, so outputs are bit-identical across
 *    interruptions, thread counts, and kernels.
 *
 * Every recovery path is exercised by deterministic fault injection
 * (common/fault.hh): see docs/RESILIENCE.md for the point catalogue.
 *
 * Counters (through the ambient StatsRegistry, shard-merged exactly
 * like ParallelSweep): sweep.checkpoints_written,
 * sweep.checkpoints_rejected, sweep.batches_resumed,
 * sweep.schemes_resumed, sweep.batches_failed, sweep.batches_retried,
 * sweep.batches_overdeadline, sweep.schemes_skipped_mem,
 * sweep.interrupted.
 */

#ifndef CCP_SWEEP_RUNNER_HH
#define CCP_SWEEP_RUNNER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hh"
#include "obs/timer.hh"
#include "predict/evaluator.hh"
#include "sweep/parallel.hh"
#include "trace/trace.hh"

namespace ccp::sweep {

struct RunnerOptions
{
    /** Worker threads (ThreadPool semantics: 0 = all hardware). */
    unsigned threads = 0;
    SweepKernel kernel = SweepKernel::Batched;

    /**
     * Checkpoint file *base*; empty disables checkpointing.  The
     * actual file is "<base>.<key16>.ckpt" — the key in the name
     * keeps multi-sweep tools (one evaluate() per phase) from
     * clobbering each other's checkpoints, and the key inside the
     * file is still validated on load.
     */
    std::string checkpointPath;
    /** Load the checkpoint and skip batches it already records. */
    bool resume = false;
    /** Seconds between periodic checkpoint writes; 0 = after every
     *  completed batch (tests, short CI runs). */
    double checkpointIntervalSec = 30.0;

    /** Per-batch packed-state byte budget; 0 = unlimited.  Bounds
     *  one in-flight batch (total ~ threads x budget). */
    std::uint64_t memBudgetBytes = 0;

    /** Advisory per-batch deadline; 0 = none.  An overrunning batch
     *  keeps its results but is reported (cooperative detection — a
     *  running evaluation is never preempted). */
    double batchDeadlineSec = 0.0;

    /** Re-evaluations attempted after a batch throws (transient I/O,
     *  allocation races).  0 = fail immediately. */
    unsigned maxRetries = 1;
    /** First retry backoff; doubles per attempt. */
    double retryBackoffSec = 0.05;

    /** Install SIGINT/SIGTERM drain handlers around the sweep. */
    bool handleSignals = true;

    /** Write the checkpoint once before any evaluation.  For shard
     *  workers under a supervisor probing the file for liveness: the
     *  file appearing is the first progress signal, closing the blind
     *  spot between spawn and the first completed batch. */
    bool initialLivenessFlush = false;
};

enum class FailureKind : std::uint8_t
{
    /** Batch threw on every attempt; its schemes have no results. */
    Exception,
    /** Batch finished but exceeded the deadline (results kept). */
    Deadline,
    /** Scheme footprint over --mem-budget; skipped, no results. */
    MemBudget,
    /** Shard's worker process failed every attempt; the scheme was
     *  never evaluated (sweep/orchestrator.hh). */
    Quarantine,
};

const char *failureKindName(FailureKind kind);

/** One structured failure record, destined for the RunReport. */
struct SchemeFailure
{
    std::size_t schemeIndex = 0;
    /** Canonical scheme notation (sweep/name.hh). */
    std::string scheme;
    FailureKind kind = FailureKind::Exception;
    std::string message;
    /** Evaluation attempts made (0 for skipped-without-trying). */
    unsigned attempts = 0;
};

/** Failures as a JSON array for RunReport sections. */
obs::Json failuresJson(const std::vector<SchemeFailure> &failures);

struct ResilientOutcome
{
    /** Per-scheme results in scheme order; results[i] is only
     *  meaningful where completed[i] != 0. */
    std::vector<predict::SuiteResult> results;
    std::vector<std::uint8_t> completed;
    /** Sorted by schemeIndex; deterministic for a given fault set. */
    std::vector<SchemeFailure> failures;

    /** Schemes restored from the checkpoint instead of evaluated. */
    std::size_t schemesResumed = 0;
    /** Sweep was drained early by SIGINT/SIGTERM (or an injected
     *  interrupt); a final checkpoint was flushed if enabled. */
    bool interrupted = false;
    /** Checkpoint file used (empty when checkpointing is off). */
    std::string checkpointFile;

    /** EX_TEMPFAIL: "interrupted, state saved — rerun with
     *  --resume"; distinct from both success and hard failure. */
    static constexpr int interruptedExitCode = 75;

    int exitCode() const { return interrupted ? interruptedExitCode : 0; }

    bool
    allCompleted() const
    {
        for (std::uint8_t c : completed)
            if (!c)
                return false;
        return true;
    }
};

class ResilientRunner
{
  public:
    explicit ResilientRunner(RunnerOptions opts = {})
        : opts_(std::move(opts))
    {
    }

    const RunnerOptions &options() const { return opts_; }

    /**
     * Evaluate every scheme over the suite with checkpointing,
     * isolation and budget control per the options.  Results are
     * bit-identical to ParallelSweep::evaluate for every scheme that
     * completes.  @p progress observes monotonically advancing done
     * counts over all *terminal* schemes (evaluated, resumed, or
     * failed), with Progress::resumed carrying the resumed baseline
     * so a resumed run's progress line does not restart from zero.
     */
    ResilientOutcome
    evaluate(const std::vector<trace::SharingTrace> &traces,
             const std::vector<predict::SchemeSpec> &schemes,
             predict::UpdateMode mode,
             const obs::ProgressFn &progress = {});

    /** True once a drain has been requested (signal or injected). */
    static bool interruptRequested();

    /** Request a drain programmatically (tests, embedding tools). */
    static void requestInterrupt();

  private:
    RunnerOptions opts_;
};

} // namespace ccp::sweep

#endif // CCP_SWEEP_RUNNER_HH
