/**
 * @file
 * Top-N search over the design space (paper Tables 8-11): evaluate a
 * set of schemes across a benchmark suite under one update mode and
 * rank by average PVP or average sensitivity.
 */

#ifndef CCP_SWEEP_SEARCH_HH
#define CCP_SWEEP_SEARCH_HH

#include <vector>

#include "obs/timer.hh"
#include "predict/evaluator.hh"
#include "sweep/parallel.hh"
#include "trace/trace.hh"

namespace ccp::sweep {

/** Ranking criterion for the top-N tables. */
enum class RankBy : std::uint8_t
{
    Pvp,
    Sensitivity,
};

/** One ranked row: scheme + its suite result. */
struct RankedScheme
{
    predict::SuiteResult result;
    double score = 0.0;
};

/**
 * Rank already-evaluated results and return the top @p n by the given
 * criterion — the ranking half of rankSchemes, split out so engines
 * that evaluate differently (ResilientRunner's checkpoint/resume path)
 * rank through the exact same total order.  @p completed, when
 * non-null, masks results to rank (completed->at(i) != 0); schemes
 * that failed or were skipped never enter the order, so a partial
 * outcome cannot smuggle default-constructed confusions into a table.
 * Moves the kept results out of @p results.
 */
std::vector<RankedScheme>
rankResults(std::vector<predict::SuiteResult> &results, RankBy by,
            std::size_t n, unsigned n_nodes,
            const std::vector<std::uint8_t> *completed = nullptr);

/**
 * Evaluate every scheme over the suite and return the top @p n by the
 * given criterion.  The ranking is a total order — ties broken toward
 * smaller tables, then toward the other metric, then by canonical
 * scheme name (sweep/name.hh), then by input position — so the result
 * is identical across platforms, thread counts, and completion
 * orders.
 *
 * Evaluation runs on @p threads workers (0 = one per hardware
 * thread, 1 = the sequential path) under @p kernel (the event-major
 * batched kernel by default; the reference per-scheme evaluator for
 * A/B oracle runs — both produce bit-identical results); sweep
 * throughput lands in the calling thread's stats registry either way,
 * so it is visible in run reports.
 *
 * Fails fast (fatal) on an empty suite or an empty scheme list.
 *
 * @param progress Optional sink invoked per scheme evaluated with an
 *                 obs::Progress carrying done/total plus derived
 *                 rate and ETA — pass an obs::ProgressReporter (via
 *                 a lambda) for throttled human-readable output.
 *                 May be invoked from worker threads (serialized,
 *                 monotonic done counts).
 */
std::vector<RankedScheme>
rankSchemes(const std::vector<trace::SharingTrace> &traces,
            const std::vector<predict::SchemeSpec> &schemes,
            predict::UpdateMode mode, RankBy by, std::size_t n,
            const obs::ProgressFn &progress = {}, unsigned threads = 1,
            SweepKernel kernel = SweepKernel::Batched);

/**
 * Evaluate one named list of schemes (no ranking), e.g. Table 7, in
 * input order, on @p threads workers (0 = hardware concurrency)
 * under @p kernel.  Fails fast (fatal) on an empty suite or an empty
 * scheme list.
 */
std::vector<predict::SuiteResult>
evaluateSchemes(const std::vector<trace::SharingTrace> &traces,
                const std::vector<predict::SchemeSpec> &schemes,
                predict::UpdateMode mode, unsigned threads = 1,
                SweepKernel kernel = SweepKernel::Batched);

} // namespace ccp::sweep

#endif // CCP_SWEEP_SEARCH_HH
