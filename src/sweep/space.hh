/**
 * @file
 * Enumeration of the affordable design space (paper section 5.4):
 * every indexing combination over a bit-width grid, every prediction
 * function and history depth, filtered by a total implementation-cost
 * cap (the paper explores up to 2^24 bits machine-wide).
 */

#ifndef CCP_SWEEP_SPACE_HH
#define CCP_SWEEP_SPACE_HH

#include <cstdint>
#include <vector>

#include "predict/evaluator.hh"

namespace ccp::sweep {

/** Bounds of the enumerated space. */
struct SpaceSpec
{
    unsigned nNodes = 16;
    /** Cost cap in bits (paper: 2^24). */
    std::uint64_t maxBits = std::uint64_t(1) << 24;
    /** Cap on total index width (keeps tables allocatable). */
    unsigned maxIndexBits = 20;
    /** Grid of pc field widths to try (0 = absent). */
    std::vector<unsigned> pcBitsGrid = {0, 2, 4, 6, 8, 10, 12, 14, 16};
    /** Grid of addr field widths to try (0 = absent). */
    std::vector<unsigned> addrBitsGrid = {0, 2, 4, 6, 8, 10, 12, 14, 16};
    /** Window (union/inter) history depths. */
    std::vector<unsigned> windowDepths = {1, 2, 3, 4};
    /** PAs history depths; empty to exclude PAs from the sweep. */
    std::vector<unsigned> pasDepths = {1, 2, 4};
    /** Perceptron history depths; empty to exclude the family. */
    std::vector<unsigned> percDepths = {2, 4};
    /** Perceptron weight widths (bits, sign included). */
    std::vector<unsigned> percWeightBits = {5};
    /** Perceptron prediction thresholds. */
    std::vector<unsigned> percThetas = {2};
    /** Perceptron Bloom filter widths (0 = no negative filter). */
    std::vector<unsigned> percBloomBits = {0, 16};
    /** Index perceptron schemes with the hashed feature fold (the
     *  family's natural access mode; full-entropy features). */
    bool percHashedIndex = true;
};

/**
 * Enumerate all schemes within the bounds.  Depth-1 intersection is
 * canonicalized away (it is identical to depth-1 union, the "last"
 * predictor).
 */
std::vector<predict::SchemeSpec> enumerateSchemes(const SpaceSpec &spec);

} // namespace ccp::sweep

#endif // CCP_SWEEP_SPACE_HH
