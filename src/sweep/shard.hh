/**
 * @file
 * Deterministic shard planning + CCPC shard merge for distributed
 * sweeps (ROADMAP item 5: one sweep as a fleet job).
 *
 * A sweep over N schemes is split into K shards by hashing each
 * scheme's canonical notation (sweep/name.hh) — a pure function of
 * the scheme list and K, never of worker count, host, or timing, so
 * every participant (orchestrator, workers, the merge, a human
 * re-running one shard by hand) derives the identical partition
 * independently.  Shard i evaluates the sub-list of schemes it owns
 * through the ordinary ResilientRunner, checkpointing into a CCPC
 * file whose key is derived from that *sub-list*: shard checkpoints
 * are self-describing, their filenames can't collide, and a shard
 * file from the wrong sweep, wrong shard count, or wrong shard index
 * is rejected by the existing key validation — never folded into a
 * wrong merge.
 *
 * mergeShardCheckpoints() folds the K shard files back into one
 * result set in global scheme order.  Because each entry's counts are
 * the exact integers the evaluation produced (nothing re-derived) and
 * the order is canonical, a merged ranking is byte-identical to a
 * single-process run over the same scheme list — the property the CI
 * chaos job enforces with cmp(1) under injected worker kills and torn
 * shard files.  Missing or partial shards surface per shard in
 * ShardMerge::shardStatus; the merge never fails wholesale, it
 * reports exactly what it recovered so the supervisor can retry or
 * quarantine the remainder.
 */

#ifndef CCP_SWEEP_SHARD_HH
#define CCP_SWEEP_SHARD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sweep/checkpoint.hh"

namespace ccp::sweep {

/** Deterministic partition of a scheme list into K shards. */
struct ShardPlan
{
    unsigned shards = 1;
    /** byShard[s] = the global scheme indices shard s owns, ascending
     *  (so a shard's local entry order is its global order). */
    std::vector<std::vector<std::size_t>> byShard;
};

/**
 * Partition @p schemes into @p n_shards by FNV-1a over each scheme's
 * canonical notation, mod K.  Stable across processes and hosts;
 * depends only on the scheme list and K.
 */
ShardPlan planShards(const std::vector<predict::SchemeSpec> &schemes,
                     unsigned n_shards);

/** The sub-list of schemes shard @p shard owns, in global order. */
std::vector<predict::SchemeSpec>
shardSchemes(const std::vector<predict::SchemeSpec> &schemes,
             const ShardPlan &plan, unsigned shard);

/**
 * The CCPC identity key of shard @p shard: makeCheckpointKey over the
 * shard's own scheme sub-list.  Distinct per shard (the sub-lists
 * differ), so shard files never collide under one --checkpoint base
 * and a mismatched file is a structured KeyMismatch on load.
 */
CheckpointKey
shardCheckpointKey(const std::vector<trace::SharingTrace> &traces,
                   const std::vector<predict::SchemeSpec> &schemes,
                   const ShardPlan &plan, unsigned shard,
                   predict::UpdateMode mode, SweepKernel kernel);

/** One shard's contribution to a merge, for supervision and reports. */
struct ShardStatus
{
    unsigned shard = 0;
    /** Checkpoint-load status of the shard's file. */
    CheckpointLoad load = CheckpointLoad::Missing;
    /** The shard's derived checkpoint filename. */
    std::string file;
    /** Schemes the shard owns. */
    std::size_t schemesTotal = 0;
    /** Schemes its checkpoint actually covers. */
    std::size_t schemesDone = 0;
};

/** The fold of K shard checkpoints back into global scheme space. */
struct ShardMerge
{
    /** Recovered entries with *global* scheme indices, sorted —
     *  exactly what a single-process checkpoint would contain. */
    std::vector<CheckpointEntry> entries;
    /** completed[i] != 0 iff scheme i was recovered from some shard. */
    std::vector<std::uint8_t> completed;
    std::vector<ShardStatus> shardStatus;

    bool
    allCompleted() const
    {
        for (std::uint8_t c : completed)
            if (!c)
                return false;
        return true;
    }
};

/**
 * Load every shard checkpoint under @p base (filenames derived via
 * shardCheckpointKey + checkpointFileName), remap each shard-local
 * entry index to its global scheme index, and return the union in
 * canonical (global, ascending) order.  Invalid, stale, or missing
 * shard files contribute nothing except their ShardStatus row —
 * partial recovery is the normal case mid-orchestration.
 */
ShardMerge
mergeShardCheckpoints(const std::string &base,
                      const std::vector<trace::SharingTrace> &traces,
                      const std::vector<predict::SchemeSpec> &schemes,
                      predict::UpdateMode mode, SweepKernel kernel,
                      unsigned n_shards);

} // namespace ccp::sweep

#endif // CCP_SWEEP_SHARD_HH
