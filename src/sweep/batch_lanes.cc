/**
 * @file
 * Portable lane kernel (the CPUID / CCP_SIMD_DISABLE fallback) and
 * the runtime backend dispatch for the simd sweep kernel.
 *
 * This translation unit is compiled with the baseline flags only, so
 * the build stays -Werror-clean on hosts and toolchains without AVX2;
 * the AVX2 backend lives in batch_simd.cc behind a CMake flag check
 * and is selected here at runtime by CPUID.
 */

#include "sweep/batch_lanes.hh"

#include <bit>

namespace ccp::sweep::lanes {

namespace detail {

// Defined in batch_simd.cc when the build carries the -mavx2
// translation unit (CCP_HAVE_AVX2_TU).
const LaneKernel &avx2KernelImpl();

} // namespace detail

namespace {

enum class Mode : std::uint8_t
{
    Direct,
    Forwarded,
    Ordered,
};

template <LaneFamily family>
inline std::uint64_t
predictLane(const std::uint64_t *ent, unsigned)
{
    switch (family) {
      case LaneFamily::Last:
        return detail::laneLastPredict(ent);
      case LaneFamily::Union:
        return detail::laneWindowPredict(ent, true);
      case LaneFamily::Inter:
        return detail::laneWindowPredict(ent, false);
      case LaneFamily::OverlapLast:
        return detail::laneOverlapPredict(ent);
    }
    return 0;
}

template <LaneFamily family>
inline void
updateLane(std::uint64_t *ent, unsigned depth, std::uint64_t fb)
{
    switch (family) {
      case LaneFamily::Last:
        detail::laneLastUpdate(ent, fb);
        break;
      case LaneFamily::Union:
      case LaneFamily::Inter:
        detail::laneWindowUpdate(ent, depth, fb);
        break;
      case LaneFamily::OverlapLast:
        detail::laneOverlapUpdate(ent, fb);
        break;
    }
}

/**
 * One (event, group) step: the same update-then-predict (direct and
 * forwarded) / predict-then-update (ordered) order as the batched
 * kernel's dispatch loop, applied to all four lanes.  @p idx / @p upd
 * are the lane indices the address pass computed (upd is only
 * meaningful in forwarded mode with hasPrev set).
 */
template <LaneFamily family, Mode mode>
inline void
stepFamily(LaneGroup &g, std::uint64_t *state,
           const std::uint64_t idx[laneWidth],
           const std::uint64_t upd[laneWidth], const LaneEvent &ev)
{
    std::uint64_t *const base = state + g.base;
    const std::size_t ew = g.entryWords;
    // Lane l's entry for index i starts at (i * laneWidth + l) * ew.
    const auto entry = [&](std::uint64_t i, std::size_t l) {
        return base + (i * laneWidth + l) * ew;
    };

    if (mode != Mode::Ordered && ev.hasPrev) {
        const std::uint64_t *const ui =
            mode == Mode::Forwarded ? upd : idx;
        for (std::size_t l = 0; l < laneWidth; ++l)
            updateLane<family>(entry(ui[l], l), g.depth, ev.inval);
    }

    for (std::size_t l = 0; l < laneWidth; ++l) {
        const std::uint64_t pred =
            predictLane<family>(entry(idx[l], l), g.depth) & ev.mask;
        const std::uint64_t tp = std::popcount(pred & ev.actual);
        g.tp[l] += tp;
        g.pp[l] += std::popcount(pred);
    }

    if (mode == Mode::Ordered) {
        for (std::size_t l = 0; l < laneWidth; ++l)
            updateLane<family>(entry(idx[l], l), g.depth, ev.fb);
    }
}

/**
 * The per-event pass: address stage (compute + stash every group's
 * lane indices, prefetch the named entries so the groups' misses
 * overlap), then step stage.
 */
template <Mode mode>
void
run(LaneGroup *groups, std::size_t n_groups, std::uint64_t *state,
    const LaneEvent &ev, std::uint64_t *idx_scratch)
{
    for (std::size_t gi = 0; gi < n_groups; ++gi) {
        const LaneGroup &g = groups[gi];
        std::uint64_t *const idx =
            idx_scratch + gi * laneScratchWords;
        std::uint64_t *const upd = idx + laneWidth;
        detail::laneIndices(g.plans, ev.pid, ev.pcw, ev.dir, ev.block,
                            idx);
        std::uint64_t *const base = state + g.base;
        for (std::size_t l = 0; l < laneWidth; ++l)
            __builtin_prefetch(
                base + (idx[l] * laneWidth + l) * g.entryWords, 1);
        if (mode == Mode::Forwarded && ev.hasPrev) {
            detail::laneIndices(g.plans, ev.prevPid, ev.prevPcw,
                                ev.dir, ev.block, upd);
            for (std::size_t l = 0; l < laneWidth; ++l)
                __builtin_prefetch(
                    base + (upd[l] * laneWidth + l) * g.entryWords,
                    1);
        }
    }

    for (std::size_t gi = 0; gi < n_groups; ++gi) {
        LaneGroup &g = groups[gi];
        const std::uint64_t *const idx =
            idx_scratch + gi * laneScratchWords;
        const std::uint64_t *const upd = idx + laneWidth;
        switch (g.family) {
          case LaneFamily::Last:
            stepFamily<LaneFamily::Last, mode>(g, state, idx, upd,
                                               ev);
            break;
          case LaneFamily::Union:
            stepFamily<LaneFamily::Union, mode>(g, state, idx, upd,
                                                ev);
            break;
          case LaneFamily::Inter:
            stepFamily<LaneFamily::Inter, mode>(g, state, idx, upd,
                                                ev);
            break;
          case LaneFamily::OverlapLast:
            stepFamily<LaneFamily::OverlapLast, mode>(g, state, idx,
                                                      upd, ev);
            break;
        }
    }
}

} // namespace

const LaneKernel &
scalarLaneKernel()
{
    static const LaneKernel kernel = {
        run<Mode::Direct>,
        run<Mode::Forwarded>,
        run<Mode::Ordered>,
        "scalar",
    };
    return kernel;
}

const LaneKernel *
avx2LaneKernel()
{
#if defined(CCP_HAVE_AVX2_TU)
    if (__builtin_cpu_supports("avx2"))
        return &detail::avx2KernelImpl();
#endif
    return nullptr;
}

} // namespace ccp::sweep::lanes
