#include "sweep/checkpoint.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include <fcntl.h>
#include <unistd.h>

#include "common/fault.hh"
#include "common/io.hh"
#include "common/logging.hh"
#include "obs/registry.hh"
#include "sweep/name.hh"
#include "trace/format.hh"

namespace ccp::sweep {

using trace::Fnv1a;

namespace {

void
hashWord(Fnv1a &h, std::uint64_t v)
{
    h.update(&v, sizeof(v));
}

void
hashString(Fnv1a &h, const std::string &s)
{
    h.update(s.data(), s.size());
    h.update("\0", 1);
}

/** Header checksum seed: the header with its checksum field zeroed. */
Fnv1a
headerChecksumSeed(const CheckpointHeader &h)
{
    CheckpointHeader zeroed = h;
    zeroed.checksum = 0;
    Fnv1a sum;
    sum.update(&zeroed, sizeof(zeroed));
    return sum;
}

bool
validHeaderStructure(const CheckpointHeader &h)
{
    if (h.magic != checkpointMagic ||
        h.version != checkpointFormatVersion)
        return false;
    if (h.nNodes == 0 || h.nNodes > maxNodes)
        return false;
    if (h.kernel > 2)
        return false;
    if (h.nTraces == 0 || h.nTraces > maxCheckpointTraces)
        return false;
    for (std::uint8_t b : h.reserved)
        if (b != 0)
            return false;
    if (h.entryCount > h.schemeCount)
        return false;
    const std::uint64_t entry_bytes = checkpointEntryBytes(h.nTraces);
    if (h.entryCount > ~std::uint64_t(0) / entry_bytes)
        return false;
    return h.payloadBytes == h.entryCount * entry_bytes;
}

void
putWord(std::vector<char> &out, std::uint64_t v)
{
    char buf[8];
    std::memcpy(buf, &v, 8);
    out.insert(out.end(), buf, buf + 8);
}

std::uint64_t
getWord(const char *p)
{
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    return v;
}

/** fsync @p fd, accounting the call (or its fault-armed skip) under
 *  checkpoint.fsyncs / checkpoint.fsyncs_skipped so tests can prove
 *  the durability barrier actually ran.  @return false on I/O error. */
bool
syncFd(int fd, bool skip_fsync)
{
    auto &reg = obs::StatsRegistry::current();
    if (skip_fsync) {
        ++reg.counter("checkpoint.fsyncs_skipped");
        return true;
    }
    if (!io::fsyncRetry(fd))
        return false;
    ++reg.counter("checkpoint.fsyncs");
    return true;
}

/**
 * Write the first @p write_bytes of @p image to @p path with crash
 * durability: a unique temp file in the same directory (so rename()
 * never crosses filesystems), fsync of the file *before* rename, the
 * atomic rename, then fsync of the parent directory so the new
 * directory entry itself survives power loss.  Without both barriers
 * a "committed" file can come back empty or torn after a crash —
 * rename() orders nothing against the page cache.
 *
 * Fault points (CCP_FAULT_INJECT): "checkpoint.skip_fsync" suppresses
 * both fsyncs (non-consuming, so one arming covers every write of the
 * run), reproducing the pre-fix behaviour for tests.
 *
 * @return false on any I/O failure; the temp file is removed and any
 * previous file at @p path survives untouched.
 */
bool
durableWriteFile(const std::string &path, const char *image,
                 std::size_t write_bytes)
{
    const bool skip_fsync =
        fault::enabled() &&
        fault::armed("checkpoint.skip_fsync").has_value();

    static std::atomic<unsigned> seq{0};
    std::string tmp = path + ".tmp." +
                      std::to_string(static_cast<long>(::getpid())) +
                      "." +
                      std::to_string(seq.fetch_add(
                          1, std::memory_order_relaxed));

    int fd = io::openRetry(tmp.c_str(),
                           O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                           0644);
    if (fd < 0)
        return false;
    if (!io::writeFull(fd, image, write_bytes)) {
        ::close(fd);
        std::remove(tmp.c_str());
        return false;
    }
    if (!syncFd(fd, skip_fsync)) {
        ::close(fd);
        std::remove(tmp.c_str());
        return false;
    }
    if (::close(fd) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }

    // Durability of the *name*: the rename is only on disk once the
    // containing directory's entry block is.
    const std::filesystem::path parent =
        std::filesystem::path(path).parent_path();
    const std::string dir =
        parent.empty() ? std::string(".") : parent.string();
    int dfd = io::openRetry(dir.c_str(),
                            O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (dfd < 0) {
        ccp_warn("cannot open ", dir, " to fsync checkpoint entry");
        return true; // data file itself is durable and in place
    }
    if (!syncFd(dfd, skip_fsync))
        ccp_warn("directory fsync failed for ", dir);
    ::close(dfd);
    return true;
}

} // namespace

CheckpointKey
makeCheckpointKey(const std::vector<trace::SharingTrace> &traces,
                  const std::vector<predict::SchemeSpec> &schemes,
                  predict::UpdateMode mode, SweepKernel kernel)
{
    ccp_assert(!traces.empty(), "checkpoint key over empty suite");

    CheckpointKey key;
    key.nNodes = traces.front().nNodes();
    key.kernel = static_cast<std::uint32_t>(kernel);
    key.nTraces = static_cast<std::uint32_t>(traces.size());
    key.schemeCount = schemes.size();

    // Trace identity: name, geometry, and the canonical packed form
    // of every event (the same 64-byte records the v4 trace file
    // stores), so any change to the evaluated inputs changes the key.
    Fnv1a th;
    hashWord(th, traces.size());
    for (const auto &tr : traces) {
        hashString(th, tr.name());
        hashWord(th, tr.nNodes());
        hashWord(th, tr.events().size());
        for (const auto &ev : tr.events()) {
            trace::PackedEvent p = trace::packEvent(ev);
            th.update(&p, sizeof(p));
        }
    }
    key.traceSetHash = th.digest();

    // Scheme-set identity: the canonical notation of every scheme in
    // order, plus the update mode.  Order matters — checkpoint
    // entries are keyed by position in this list.
    Fnv1a sh;
    hashWord(sh, schemes.size());
    for (const auto &s : schemes)
        hashString(sh, formatScheme(s));
    hashString(sh, predict::updateModeName(mode));
    key.schemeSetHash = sh.digest();
    key.extensionKinds = extensionKindsOf(schemes);
    return key;
}

std::uint32_t
extensionKindsOf(const std::vector<predict::SchemeSpec> &schemes)
{
    std::uint32_t mask = 0;
    for (const auto &s : schemes)
        if (s.kind == predict::FunctionKind::Perceptron)
            mask |= checkpointKindPerceptron;
    return mask;
}

std::string
checkpointFileName(const std::string &base, const CheckpointKey &key)
{
    Fnv1a h;
    auto word = [&h](std::uint64_t v) { h.update(&v, sizeof(v)); };
    word(key.traceSetHash);
    word(key.schemeSetHash);
    word(key.schemeCount);
    word(key.nNodes);
    word(key.kernel);
    word(key.nTraces);
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(h.digest()));
    return base + "." + hex + ".ckpt";
}

predict::SuiteResult
restoreSuiteResult(const predict::SchemeSpec &scheme,
                   predict::UpdateMode mode,
                   const std::vector<trace::SharingTrace> &traces,
                   const std::vector<predict::Confusion> &per_trace)
{
    ccp_assert(per_trace.size() == traces.size(),
               "restoreSuiteResult trace-count mismatch");
    predict::SuiteResult r;
    r.scheme = scheme;
    r.mode = mode;
    r.perTrace.reserve(traces.size());
    for (std::size_t t = 0; t < traces.size(); ++t) {
        r.pooled.merge(per_trace[t]);
        r.perTrace.push_back({traces[t].name(), per_trace[t]});
    }
    return r;
}

const char *
checkpointLoadName(CheckpointLoad status)
{
    switch (status) {
      case CheckpointLoad::Ok:
        return "ok";
      case CheckpointLoad::Missing:
        return "missing";
      case CheckpointLoad::Invalid:
        return "invalid";
      case CheckpointLoad::KeyMismatch:
        return "key-mismatch";
      case CheckpointLoad::UnsupportedKind:
        return "unsupported-kind";
    }
    ccp_panic("bad CheckpointLoad");
}

bool
saveCheckpoint(const std::string &path, const CheckpointKey &key,
               std::vector<CheckpointEntry> entries)
{
    std::sort(entries.begin(), entries.end(),
              [](const CheckpointEntry &a, const CheckpointEntry &b) {
                  return a.schemeIndex < b.schemeIndex;
              });

    CheckpointHeader header;
    header.nNodes = key.nNodes;
    header.kernel = key.kernel;
    header.traceSetHash = key.traceSetHash;
    header.schemeSetHash = key.schemeSetHash;
    header.schemeCount = key.schemeCount;
    header.nTraces = key.nTraces;
    header.extensionKinds = key.extensionKinds;
    header.entryCount = entries.size();
    header.payloadBytes =
        entries.size() * checkpointEntryBytes(key.nTraces);

    std::vector<char> payload;
    payload.reserve(header.payloadBytes);
    for (const auto &e : entries) {
        ccp_assert(e.schemeIndex < key.schemeCount,
                   "checkpoint entry out of scheme range");
        ccp_assert(e.perTrace.size() == key.nTraces,
                   "checkpoint entry trace-count mismatch");
        putWord(payload, e.schemeIndex);
        for (const auto &c : e.perTrace) {
            putWord(payload, c.tp);
            putWord(payload, c.fp);
            putWord(payload, c.tn);
            putWord(payload, c.fn);
        }
    }

    Fnv1a sum = headerChecksumSeed(header);
    sum.update(payload.data(), payload.size());
    header.checksum = sum.digest();

    // Full file image, so a torn write can be simulated as a byte
    // prefix regardless of where header/payload boundaries fall.
    std::vector<char> image(sizeof(header) + payload.size());
    std::memcpy(image.data(), &header, sizeof(header));
    std::memcpy(image.data() + sizeof(header), payload.data(),
                payload.size());

    std::size_t write_bytes = image.size();
    if (fault::enabled()) {
        if (auto torn = fault::consume("checkpoint.torn_write"))
            write_bytes = std::min<std::size_t>(write_bytes, *torn);
    }

    return durableWriteFile(path, image.data(), write_bytes);
}

CheckpointLoad
loadCheckpoint(const std::string &path, const CheckpointKey &key,
               std::vector<CheckpointEntry> &entries)
{
    entries.clear();

    std::ifstream is(path, std::ios::binary);
    if (!is)
        return CheckpointLoad::Missing;

    CheckpointHeader header;
    if (!is.read(reinterpret_cast<char *>(&header), sizeof(header)))
        return CheckpointLoad::Invalid;
    if (!validHeaderStructure(header))
        return CheckpointLoad::Invalid;

    // Bound by the real file size before allocating anything.
    std::error_code ec;
    const std::uint64_t file_size =
        std::filesystem::file_size(path, ec);
    if (ec || file_size != sizeof(header) + header.payloadBytes)
        return CheckpointLoad::Invalid;

    std::vector<char> payload(header.payloadBytes);
    if (header.payloadBytes > 0 &&
        !is.read(payload.data(),
                 static_cast<std::streamsize>(payload.size())))
        return CheckpointLoad::Invalid;

    Fnv1a sum = headerChecksumSeed(header);
    sum.update(payload.data(), payload.size());
    if (sum.digest() != header.checksum)
        return CheckpointLoad::Invalid;

    // The container is intact.  Before any key comparison, refuse
    // extension kinds this binary does not implement — a structured
    // "written by a newer binary" failure, not a crash or a silent
    // key mismatch.
    if (header.extensionKinds & ~checkpointSupportedExtensionKinds)
        return CheckpointLoad::UnsupportedKind;

    // Now check it belongs to *this* sweep.
    CheckpointKey file_key;
    file_key.traceSetHash = header.traceSetHash;
    file_key.schemeSetHash = header.schemeSetHash;
    file_key.schemeCount = header.schemeCount;
    file_key.nNodes = header.nNodes;
    file_key.kernel = header.kernel;
    file_key.nTraces = header.nTraces;
    file_key.extensionKinds = header.extensionKinds;
    if (!(file_key == key))
        return CheckpointLoad::KeyMismatch;

    const std::uint64_t entry_bytes =
        checkpointEntryBytes(header.nTraces);
    std::vector<CheckpointEntry> loaded;
    loaded.reserve(header.entryCount);
    const char *p = payload.data();
    std::uint64_t prev_index = 0;
    for (std::uint64_t i = 0; i < header.entryCount;
         ++i, p += entry_bytes) {
        CheckpointEntry e;
        e.schemeIndex = getWord(p);
        if (e.schemeIndex >= header.schemeCount)
            return CheckpointLoad::Invalid;
        // Strictly increasing: rejects duplicates and non-canonical
        // orderings a hand-edited file could smuggle in.
        if (i > 0 && e.schemeIndex <= prev_index)
            return CheckpointLoad::Invalid;
        prev_index = e.schemeIndex;
        e.perTrace.resize(header.nTraces);
        for (std::uint32_t t = 0; t < header.nTraces; ++t) {
            const char *q = p + 8 + std::uint64_t(t) * 32;
            e.perTrace[t].tp = getWord(q);
            e.perTrace[t].fp = getWord(q + 8);
            e.perTrace[t].tn = getWord(q + 16);
            e.perTrace[t].fn = getWord(q + 24);
        }
        loaded.push_back(std::move(e));
    }
    entries = std::move(loaded);
    return CheckpointLoad::Ok;
}

namespace {

/** Blob header checksum seed: the header with its checksum zeroed. */
Fnv1a
blobChecksumSeed(const StateBlobHeader &h)
{
    StateBlobHeader zeroed = h;
    zeroed.checksum = 0;
    Fnv1a sum;
    sum.update(&zeroed, sizeof(zeroed));
    return sum;
}

bool
validBlobHeader(const StateBlobHeader &h)
{
    if (h.magic != stateBlobMagic ||
        h.version != stateBlobFormatVersion)
        return false;
    for (std::uint8_t b : h.reserved)
        if (b != 0)
            return false;
    return true;
}

} // namespace

bool
saveStateBlob(const std::string &path, std::uint64_t key_hash,
              const std::vector<char> &payload,
              std::uint32_t features)
{
    StateBlobHeader header;
    header.keyHash = key_hash;
    header.payloadBytes = payload.size();
    header.features = features;

    Fnv1a sum = blobChecksumSeed(header);
    sum.update(payload.data(), payload.size());
    header.checksum = sum.digest();

    std::vector<char> image(sizeof(header) + payload.size());
    std::memcpy(image.data(), &header, sizeof(header));
    std::memcpy(image.data() + sizeof(header), payload.data(),
                payload.size());

    std::size_t write_bytes = image.size();
    if (fault::enabled()) {
        if (auto torn = fault::consume("checkpoint.torn_write"))
            write_bytes = std::min<std::size_t>(write_bytes, *torn);
    }

    return durableWriteFile(path, image.data(), write_bytes);
}

CheckpointLoad
loadStateBlob(const std::string &path, std::uint64_t key_hash,
              std::vector<char> &payload,
              std::uint32_t supported_features)
{
    payload.clear();

    std::ifstream is(path, std::ios::binary);
    if (!is)
        return CheckpointLoad::Missing;

    StateBlobHeader header;
    if (!is.read(reinterpret_cast<char *>(&header), sizeof(header)))
        return CheckpointLoad::Invalid;
    if (!validBlobHeader(header))
        return CheckpointLoad::Invalid;

    // Bound by the real file size before allocating anything (the
    // trace-v4 / CCPC discipline).
    std::error_code ec;
    const std::uint64_t file_size =
        std::filesystem::file_size(path, ec);
    if (ec || file_size != sizeof(header) + header.payloadBytes)
        return CheckpointLoad::Invalid;

    std::vector<char> loaded(header.payloadBytes);
    if (header.payloadBytes > 0 &&
        !is.read(loaded.data(),
                 static_cast<std::streamsize>(loaded.size())))
        return CheckpointLoad::Invalid;

    Fnv1a sum = blobChecksumSeed(header);
    sum.update(loaded.data(), loaded.size());
    if (sum.digest() != header.checksum)
        return CheckpointLoad::Invalid;

    // Intact blob; refuse features this caller cannot decode before
    // comparing keys, so the failure names its real cause.
    if (header.features & ~supported_features)
        return CheckpointLoad::UnsupportedKind;

    if (header.keyHash != key_hash)
        return CheckpointLoad::KeyMismatch;

    payload = std::move(loaded);
    return CheckpointLoad::Ok;
}

} // namespace ccp::sweep
