/**
 * @file
 * ParallelSweep: the sharded evaluation engine under the design-space
 * sweeps (Tables 8-11, Figures 6-9).
 *
 * Schemes are embarrassingly parallel — each evaluation builds its
 * own predictor table and only reads the shared traces — so the
 * engine hands scheme indices to a ThreadPool and each worker
 * accumulates its `evaluator.*` / `sweep.*` stats into a private
 * StatsRegistry shard (installed thread-locally via ScopedRegistry).
 * At join the shards are merged, in worker order, into the registry
 * the calling thread accounts into, so totals are exactly what the
 * sequential sweep would have produced.
 *
 * Results are written by scheme index and progress is reported
 * through a monotonic ProgressMeter, so output order, ranking input,
 * and final progress are deterministic regardless of worker
 * interleaving.  threads == 1 runs on the calling thread only — the
 * pre-parallel code path.
 */

#ifndef CCP_SWEEP_PARALLEL_HH
#define CCP_SWEEP_PARALLEL_HH

#include <vector>

#include "common/thread_pool.hh"
#include "obs/timer.hh"
#include "predict/evaluator.hh"
#include "trace/trace.hh"

namespace ccp::sweep {

/**
 * Which evaluation kernel drives the sweep inner loop.
 *
 *  - Batched:   the event-major BatchEvaluator (sweep/batch.hh) — a
 *               batch of schemes per worker task, each trace event
 *               decoded once for the whole batch.  The default.
 *  - Reference: the scheme-major per-scheme Evaluator
 *               (predict/evaluator.hh) — the original loop, kept as
 *               the differential-testing oracle and for `--kernel
 *               reference` A/B runs.
 *  - Simd:      the BatchEvaluator again, with its SoA lane engine
 *               (sweep/batch_lanes.hh): window-family schemes are
 *               regrouped into 4-wide u64 lanes per layout class and
 *               stepped by the AVX2 lane kernel where available
 *               (portable u64-array fallback by CPUID or
 *               CCP_SIMD_DISABLE=1).
 *
 * All kernels produce bit-identical Confusion counts for every
 * (scheme, trace, mode), so rankings and printed tables never depend
 * on the kernel choice.
 */
enum class SweepKernel : std::uint8_t
{
    Batched,
    Reference,
    Simd,
};

const char *sweepKernelName(SweepKernel kernel);

/** Parse "batched" / "reference" / "simd"; @return false else. */
bool parseSweepKernel(const std::string &text, SweepKernel &kernel);

class ParallelSweep
{
  public:
    /** @param threads total workers, caller included; 0 = one per
     *  hardware thread, 1 = sequential in the calling thread.  On a
     *  multi-node NUMA host with spawned workers, a worker start hook
     *  pins each worker round-robin to one node's cpus, so batch
     *  state first-touched by a worker stays local to the socket
     *  streaming events through it; single-node (or unknown) hosts
     *  run exactly as before. */
    explicit ParallelSweep(unsigned threads = 0,
                           SweepKernel kernel = SweepKernel::Batched);

    unsigned threads() const { return pool_.threads(); }
    SweepKernel kernel() const { return kernel_; }

    /**
     * Evaluate every scheme over the suite; results in scheme order,
     * bit-identical across kernels, thread counts and completion
     * orders.  The reference kernel hands one scheme per task and
     * records "sweep.scheme_eval_seconds" / "sweep.schemes_evaluated"
     * exactly as the sequential path did; the batched kernel hands a
     * batch of schemes per task (see planBatches), records
     * "sweep.batch_eval_seconds" / "sweep.batches_evaluated" plus the
     * same "sweep.schemes_evaluated" total, and its per-walk
     * throughput lands in "batch.*".  @p progress (if set) observes
     * completions with monotonically advancing scheme done counts
     * under either kernel.
     */
    std::vector<predict::SuiteResult>
    evaluate(const std::vector<trace::SharingTrace> &traces,
             const std::vector<predict::SchemeSpec> &schemes,
             predict::UpdateMode mode,
             const obs::ProgressFn &progress = {});

  private:
    std::vector<predict::SuiteResult>
    evaluateReference(const std::vector<trace::SharingTrace> &traces,
                      const std::vector<predict::SchemeSpec> &schemes,
                      predict::UpdateMode mode,
                      const obs::ProgressFn &progress);
    std::vector<predict::SuiteResult>
    evaluateBatched(const std::vector<trace::SharingTrace> &traces,
                    const std::vector<predict::SchemeSpec> &schemes,
                    predict::UpdateMode mode,
                    const obs::ProgressFn &progress);

    ThreadPool pool_;
    SweepKernel kernel_;
    /** Workers pinned round-robin across these nodes (empty on
     *  single-node hosts: no pinning installed). */
    std::size_t numaNodesUsed_ = 0;
};

} // namespace ccp::sweep

#endif // CCP_SWEEP_PARALLEL_HH
