/**
 * @file
 * ParallelSweep: the sharded evaluation engine under the design-space
 * sweeps (Tables 8-11, Figures 6-9).
 *
 * Schemes are embarrassingly parallel — each evaluation builds its
 * own predictor table and only reads the shared traces — so the
 * engine hands scheme indices to a ThreadPool and each worker
 * accumulates its `evaluator.*` / `sweep.*` stats into a private
 * StatsRegistry shard (installed thread-locally via ScopedRegistry).
 * At join the shards are merged, in worker order, into the registry
 * the calling thread accounts into, so totals are exactly what the
 * sequential sweep would have produced.
 *
 * Results are written by scheme index and progress is reported
 * through a monotonic ProgressMeter, so output order, ranking input,
 * and final progress are deterministic regardless of worker
 * interleaving.  threads == 1 runs on the calling thread only — the
 * pre-parallel code path.
 */

#ifndef CCP_SWEEP_PARALLEL_HH
#define CCP_SWEEP_PARALLEL_HH

#include <vector>

#include "common/thread_pool.hh"
#include "obs/timer.hh"
#include "predict/evaluator.hh"
#include "trace/trace.hh"

namespace ccp::sweep {

class ParallelSweep
{
  public:
    /** @param threads total workers, caller included; 0 = one per
     *  hardware thread, 1 = sequential in the calling thread. */
    explicit ParallelSweep(unsigned threads = 0) : pool_(threads) {}

    unsigned threads() const { return pool_.threads(); }

    /**
     * Evaluate every scheme over the suite; results in scheme order
     * (identical to the sequential loop bit for bit).  Per-scheme
     * timing lands in "sweep.scheme_eval_seconds" and the count in
     * "sweep.schemes_evaluated", exactly as the sequential path
     * records them; @p progress (if set) observes completions with
     * monotonically advancing done counts.
     */
    std::vector<predict::SuiteResult>
    evaluate(const std::vector<trace::SharingTrace> &traces,
             const std::vector<predict::SchemeSpec> &schemes,
             predict::UpdateMode mode,
             const obs::ProgressFn &progress = {});

  private:
    ThreadPool pool_;
};

} // namespace ccp::sweep

#endif // CCP_SWEEP_PARALLEL_HH
