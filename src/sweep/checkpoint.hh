/**
 * @file
 * On-disk sweep checkpoints (see docs/RESILIENCE.md).
 *
 * A checkpoint records the per-scheme, per-trace Confusion counts of
 * every scheme a sweep has fully evaluated, so an interrupted run can
 * be resumed with `--resume` and produce a final ranked table that is
 * byte-identical to an uninterrupted run — the counts are the exact
 * integers the evaluation produced, nothing is re-derived.
 *
 * The container follows the hardened trace-v4 pattern
 * (src/trace/format.hh): a fixed validated header, a whole-file
 * FNV-1a checksum, fixed-size little-endian records, and atomic
 * temp-file + rename() writes.  The header additionally carries the
 * *identity* of the sweep — a hash of the trace set, a hash of the
 * scheme set + update mode, the kernel, and the machine size — so a
 * stale checkpoint (different traces, schemes, or configuration) is
 * rejected as a key mismatch and regenerated rather than silently
 * resumed into wrong results.
 *
 * Layout:
 *
 *   CheckpointHeader (96 bytes)
 *   entryCount x { u64 schemeIndex,
 *                  nTraces x { u64 tp, fp, tn, fn } }
 *
 * Entries are sorted by schemeIndex, so the file is deterministic in
 * the set of completed schemes alone (never in worker interleaving).
 */

#ifndef CCP_SWEEP_CHECKPOINT_HH
#define CCP_SWEEP_CHECKPOINT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "predict/evaluator.hh"
#include "sweep/parallel.hh"
#include "trace/trace.hh"

namespace ccp::sweep {

/** "CCPC" — sweep checkpoint container. */
inline constexpr std::uint32_t checkpointMagic = 0x43435043;

/** Current (and only accepted) checkpoint format version. */
inline constexpr std::uint32_t checkpointFormatVersion = 1;

/** Upper bound on traces per suite (sanity, not a real limit). */
inline constexpr std::uint32_t maxCheckpointTraces = 4096;

/**
 * What a checkpoint must match to be resumed: everything that
 * determines the evaluation's output (trace contents, scheme set,
 * update mode, machine size) plus the kernel, so an A/B kernel study
 * never cross-pollinates its runs.
 */
struct CheckpointKey
{
    std::uint64_t traceSetHash = 0;
    /** Scheme list + update mode, order-sensitive. */
    std::uint64_t schemeSetHash = 0;
    std::uint64_t schemeCount = 0;
    std::uint32_t nNodes = 0;
    std::uint32_t kernel = 0;
    std::uint32_t nTraces = 0;
    /** Extension-kind mask of the scheme set (extensionKindsOf). */
    std::uint32_t extensionKinds = 0;

    bool operator==(const CheckpointKey &) const = default;
};

/**
 * Extension function-kind bits carried in checkpoint headers (and, as
 * feature bits, in CCPS state blobs).  The paper's own families
 * (union/inter/PAs/overlap-last) map to no bit at all, so files that
 * contain only legacy kinds stay byte-identical to the original v1
 * format — and a pre-extension binary, which required these bytes to
 * be zero, rejects any file carrying extension state with a clean
 * structured "invalid" instead of crashing or silently mis-decoding.
 * A binary at this version rejects bits it does not know with the
 * structured CheckpointLoad::UnsupportedKind status.
 */
inline constexpr std::uint32_t checkpointKindPerceptron = 1u << 0;

/** Every extension-kind bit this binary can decode. */
inline constexpr std::uint32_t checkpointSupportedExtensionKinds =
    checkpointKindPerceptron;

/** The extension-kind mask of a scheme set (0 for legacy-only). */
std::uint32_t
extensionKindsOf(const std::vector<predict::SchemeSpec> &schemes);

/**
 * Compute the key of one sweep: an FNV-1a pass over every trace's
 * name, geometry and packed events, and over the canonical names of
 * every scheme plus the update mode.
 */
CheckpointKey makeCheckpointKey(
    const std::vector<trace::SharingTrace> &traces,
    const std::vector<predict::SchemeSpec> &schemes,
    predict::UpdateMode mode, SweepKernel kernel);

/** The fixed 96-byte file header; little-endian, reserved zero. */
struct CheckpointHeader
{
    std::uint32_t magic = checkpointMagic;
    std::uint32_t version = checkpointFormatVersion;
    std::uint32_t nNodes = 0;
    std::uint32_t kernel = 0;
    std::uint64_t traceSetHash = 0;
    std::uint64_t schemeSetHash = 0;
    std::uint64_t schemeCount = 0;
    std::uint32_t nTraces = 0;
    /** Extension-kind mask (was reserved-zero in pre-extension
     *  binaries, which therefore reject nonzero values cleanly). */
    std::uint32_t extensionKinds = 0;
    std::uint64_t entryCount = 0;
    /** Exact byte size of everything after the header. */
    std::uint64_t payloadBytes = 0;
    /** FNV-1a 64 over the header (this field zeroed) + payload. */
    std::uint64_t checksum = 0;
    std::uint8_t reserved[24] = {};
};

static_assert(sizeof(CheckpointHeader) == 96,
              "checkpoint header must stay 96 bytes");

/** One completed scheme: its index in the sweep's scheme list plus
 *  the per-trace confusion counts, in suite trace order. */
struct CheckpointEntry
{
    std::uint64_t schemeIndex = 0;
    std::vector<predict::Confusion> perTrace;
};

/** On-disk size of one entry for an @p n_traces suite. */
inline constexpr std::uint64_t
checkpointEntryBytes(std::uint32_t n_traces)
{
    return 8 + std::uint64_t(n_traces) * 4 * 8;
}

/**
 * Write @p entries atomically and durably: a unique temp file in the
 * same directory, fsync()ed before the rename(), then the parent
 * directory fsync()ed so the committed name survives power loss (a
 * bare rename orders nothing against the page cache).  Entries are
 * sorted by scheme index.  Fault points (CCP_FAULT_INJECT):
 * "checkpoint.torn_write" armed with byte count N makes exactly one
 * write persist only its first N bytes — simulating a torn write the
 * loader must reject; "checkpoint.skip_fsync" suppresses the fsync
 * barriers (non-consuming), reproducing the lost-durability failure
 * mode for tests.  Each fsync is counted under `checkpoint.fsyncs`
 * (or `checkpoint.fsyncs_skipped` when suppressed).  @return false on
 * I/O failure (the temp file is removed; any previous checkpoint at
 * @p path survives untouched).
 */
bool saveCheckpoint(const std::string &path, const CheckpointKey &key,
                    std::vector<CheckpointEntry> entries);

enum class CheckpointLoad : std::uint8_t
{
    Ok,
    /** No file at the path (a fresh run, not an error). */
    Missing,
    /** Structurally invalid: bad magic/version/bounds, size or
     *  checksum mismatch, out-of-range or unsorted entries. */
    Invalid,
    /** Valid container for a *different* sweep (stale key). */
    KeyMismatch,
    /** Intact container carrying extension function kinds (or blob
     *  features) this binary does not implement — written by a newer
     *  binary; rejected with structure, never decoded blind. */
    UnsupportedKind,
};

const char *checkpointLoadName(CheckpointLoad status);

/**
 * Load and fully validate the checkpoint at @p path against @p key.
 * On Ok, @p entries holds the completed schemes sorted by index; on
 * any other status @p entries is left empty.  Validation bounds every
 * count against the real file size before allocating, exactly like
 * the trace loader.
 */
CheckpointLoad loadCheckpoint(const std::string &path,
                              const CheckpointKey &key,
                              std::vector<CheckpointEntry> &entries);

/**
 * Derived checkpoint filename: "<base>.<key16>.ckpt".  The key hash in
 * the name keeps concurrent sweeps with one --checkpoint base (the
 * phases of a multi-sweep tool, the shards of an orchestrated run)
 * from clobbering each other's files; the key *inside* the file is
 * still validated on load.
 */
std::string checkpointFileName(const std::string &base,
                               const CheckpointKey &key);

/**
 * Rebuild the exact SuiteResult evaluateSuite would have produced
 * from checkpointed per-trace confusion counts — the one restore path
 * shared by --resume and the shard merge, so both are byte-identical
 * to a live evaluation by construction.
 */
predict::SuiteResult
restoreSuiteResult(const predict::SchemeSpec &scheme,
                   predict::UpdateMode mode,
                   const std::vector<trace::SharingTrace> &traces,
                   const std::vector<predict::Confusion> &per_trace);

/** "CCPS" — the generic durable state-blob container. */
inline constexpr std::uint32_t stateBlobMagic = 0x53504343;

/** Current (and only accepted) state-blob format version. */
inline constexpr std::uint32_t stateBlobFormatVersion = 1;

/**
 * Header of the generic state-blob container: the CCPC discipline
 * (validated fixed header, whole-file FNV-1a, durable atomic writes)
 * for callers whose payload is not per-scheme confusion counts — the
 * serve layer snapshots whole predictor state vectors through this.
 * The key hash plays the CheckpointKey role: the caller hashes
 * whatever identifies its state layout, and a mismatch is rejected as
 * KeyMismatch instead of being decoded into wrong state.
 */
struct StateBlobHeader
{
    std::uint32_t magic = stateBlobMagic;
    std::uint32_t version = stateBlobFormatVersion;
    /** Caller-defined identity of the payload layout. */
    std::uint64_t keyHash = 0;
    /** Exact byte size of everything after the header. */
    std::uint64_t payloadBytes = 0;
    /** FNV-1a 64 over the header (this field zeroed) + payload. */
    std::uint64_t checksum = 0;
    /** Feature mask of the payload (was reserved-zero; pre-extension
     *  binaries reject nonzero values as Invalid, this binary rejects
     *  unknown bits as UnsupportedKind). */
    std::uint32_t features = 0;
    std::uint8_t reserved[12] = {};
};

static_assert(sizeof(StateBlobHeader) == 48,
              "state blob header must stay 48 bytes");

/** Blob feature bits (the CCPS analogue of extension kinds). */
inline constexpr std::uint32_t stateBlobFeaturePerceptron = 1u << 0;

/** Every blob feature bit this binary can decode. */
inline constexpr std::uint32_t stateBlobSupportedFeatures =
    stateBlobFeaturePerceptron;

/**
 * Write @p payload as a CCPS blob with the same durability contract
 * as saveCheckpoint(): temp file + fsync + rename + directory fsync,
 * honouring the "checkpoint.torn_write" and "checkpoint.skip_fsync"
 * fault points.  @return false on I/O failure.
 */
bool saveStateBlob(const std::string &path, std::uint64_t key_hash,
                   const std::vector<char> &payload,
                   std::uint32_t features = 0);

/**
 * Load and fully validate the CCPS blob at @p path.  On Ok,
 * @p payload holds the stored bytes; on any other status it is left
 * empty.  Size is bounded by the real file size before allocation.
 * A blob whose feature mask has bits outside @p supported_features is
 * rejected as UnsupportedKind before any key comparison.
 */
CheckpointLoad loadStateBlob(
    const std::string &path, std::uint64_t key_hash,
    std::vector<char> &payload,
    std::uint32_t supported_features = stateBlobSupportedFeatures);

} // namespace ccp::sweep

#endif // CCP_SWEEP_CHECKPOINT_HH
