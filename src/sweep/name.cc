#include "sweep/name.hh"

#include <cctype>
#include <sstream>

namespace ccp::sweep {

using predict::FunctionKind;
using predict::SchemeSpec;
using predict::UpdateMode;

std::string
formatScheme(const SchemeSpec &scheme)
{
    std::ostringstream os;
    os << predict::functionKindName(scheme.kind) << '('
       << scheme.index.fieldsName() << ')' << scheme.depth;
    if (scheme.kind == FunctionKind::Perceptron) {
        // The perceptron's extra swept dimensions are part of the
        // scheme's identity (checkpoint keys and serve snapshot keys
        // hash this notation), so they always print.
        os << 'w' << scheme.perc.weightBits << 't'
           << scheme.perc.theta;
        if (scheme.perc.bloomBits > 0)
            os << 'b' << scheme.perc.bloomBits;
    }
    return os.str();
}

std::string
formatScheme(const SchemeSpec &scheme, UpdateMode mode)
{
    return formatScheme(scheme) + "[" + predict::updateModeName(mode) +
           "]";
}

namespace {

/** Cursor-based mini parser. */
class Cursor
{
  public:
    explicit Cursor(const std::string &s) : s_(s) {}

    bool done() const { return pos_ >= s_.size(); }
    char peek() const { return done() ? '\0' : s_[pos_]; }

    bool
    eat(char c)
    {
        if (peek() != c)
            return false;
        ++pos_;
        return true;
    }

    bool
    eatWord(const std::string &w)
    {
        if (s_.compare(pos_, w.size(), w) != 0)
            return false;
        pos_ += w.size();
        return true;
    }

    std::optional<unsigned>
    eatNumber()
    {
        if (!std::isdigit(static_cast<unsigned char>(peek())))
            return std::nullopt;
        unsigned v = 0;
        while (std::isdigit(static_cast<unsigned char>(peek()))) {
            v = v * 10 + static_cast<unsigned>(s_[pos_] - '0');
            ++pos_;
        }
        return v;
    }

  private:
    const std::string &s_;
    std::size_t pos_ = 0;
};

} // namespace

std::optional<ParsedScheme>
parseScheme(const std::string &text)
{
    Cursor cur(text);
    ParsedScheme out;

    if (cur.eatWord("union"))
        out.scheme.kind = FunctionKind::Union;
    else if (cur.eatWord("inter"))
        out.scheme.kind = FunctionKind::Inter;
    else if (cur.eatWord("perceptron"))
        out.scheme.kind = FunctionKind::Perceptron;
    else if (cur.eatWord("pas"))
        out.scheme.kind = FunctionKind::PAs;
    else if (cur.eatWord("overlap-last"))
        out.scheme.kind = FunctionKind::OverlapLast;
    else if (cur.eatWord("last"))
        out.scheme.kind = FunctionKind::Union; // last == window depth 1
    else
        return std::nullopt;

    if (!cur.eat('('))
        return std::nullopt;

    // Optional hashed-fold marker before the field list.
    if (cur.eatWord("hash:"))
        out.scheme.index.hashed = true;

    // Field list: pid, pcN, dir, addN (also accept memN and addrN as
    // spelling variants used in the paper's Table 7).
    while (!cur.eat(')')) {
        if (cur.eatWord("pid")) {
            out.scheme.index.usePid = true;
        } else if (cur.eatWord("pc")) {
            auto n = cur.eatNumber();
            if (!n)
                return std::nullopt;
            out.scheme.index.pcBits = *n;
        } else if (cur.eatWord("dir")) {
            out.scheme.index.useDir = true;
        } else if (cur.eatWord("addr") || cur.eatWord("add") ||
                   cur.eatWord("mem")) {
            auto n = cur.eatNumber();
            if (!n)
                return std::nullopt;
            out.scheme.index.addrBits = *n;
        } else {
            return std::nullopt;
        }
        if (cur.peek() == '+' && !cur.eat('+'))
            return std::nullopt;
    }

    auto depth = cur.eatNumber();
    out.scheme.depth = depth.value_or(1);

    // Perceptron dimensions: wW tT [bB], each optional (defaults
    // apply when omitted), only legal on the perceptron family.
    if (out.scheme.kind == FunctionKind::Perceptron) {
        if (cur.eat('w')) {
            auto n = cur.eatNumber();
            if (!n)
                return std::nullopt;
            out.scheme.perc.weightBits = *n;
        }
        if (cur.eat('t')) {
            auto n = cur.eatNumber();
            if (!n)
                return std::nullopt;
            out.scheme.perc.theta = *n;
        }
        if (cur.eat('b')) {
            auto n = cur.eatNumber();
            if (!n)
                return std::nullopt;
            out.scheme.perc.bloomBits = *n;
        }
    }

    if (cur.eat('[')) {
        if (cur.eatWord("direct"))
            out.mode = UpdateMode::Direct;
        else if (cur.eatWord("forwarded") || cur.eatWord("forward"))
            out.mode = UpdateMode::Forwarded;
        else if (cur.eatWord("ordered"))
            out.mode = UpdateMode::Ordered;
        else
            return std::nullopt;
        if (!cur.eat(']'))
            return std::nullopt;
    }

    if (!cur.done())
        return std::nullopt;
    return out;
}

} // namespace ccp::sweep
