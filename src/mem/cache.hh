/**
 * @file
 * Set-associative cache models: a single level (SetAssocCache) and the
 * per-node two-level hierarchy (NodeCache) matching the paper's
 * Table 4 (16KB direct-mapped L1, 512KB 4-way L2, 64-byte lines).
 *
 * The caches track coherence metadata only (tag + MSI state + version
 * of the cached value); the actual computation happens functionally in
 * the workload kernels.  The L2 is inclusive of the L1: coherence
 * state lives at the L2, and L2 evictions back-invalidate the L1.
 */

#ifndef CCP_MEM_CACHE_HH
#define CCP_MEM_CACHE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hh"

namespace ccp::mem {

/** Coherence state of a cached block (MSI, plus E under MESI). */
enum class CacheState : std::uint8_t
{
    Invalid,
    Shared,
    /** Sole clean copy (MESI only): may upgrade to Modified
     *  silently, without a coherence transaction. */
    Exclusive,
    Modified,
};

/** One cache line's metadata. */
struct CacheLine
{
    Addr block = 0;
    CacheState state = CacheState::Invalid;
    /** Version of the value held (for protocol correctness checks). */
    std::uint64_t version = 0;
    /** The line arrived by prediction-driven forwarding, not demand. */
    bool forwarded = false;
    /** A forwarded line was touched by the local processor (the
     *  access bit of paper section 3.4). */
    bool accessed = false;

    bool valid() const { return state != CacheState::Invalid; }
};

/** Geometry of one cache level. */
struct CacheGeometry
{
    std::uint32_t sizeBytes;
    std::uint32_t assoc;

    std::uint32_t lines() const { return sizeBytes / blockBytes; }
    std::uint32_t sets() const { return lines() / assoc; }
};

/** The paper's L1: 16KB direct-mapped. */
constexpr CacheGeometry paperL1{16 * 1024, 1};
/** The paper's L2: 512KB 4-way set-associative. */
constexpr CacheGeometry paperL2{512 * 1024, 4};

/**
 * A single set-associative cache level with true-LRU replacement.
 *
 * Lookups and fills operate on block numbers.  The cache never
 * initiates coherence actions itself; NodeCache and the protocol
 * engine orchestrate state changes.
 */
class SetAssocCache
{
  public:
    explicit SetAssocCache(const CacheGeometry &geom);

    const CacheGeometry &geometry() const { return geom_; }

    /** Find the line holding @p block, or nullptr. */
    CacheLine *find(Addr block);
    const CacheLine *find(Addr block) const;

    /** Mark @p block most recently used (no-op if absent). */
    void touch(Addr block);

    /**
     * Insert @p block with @p state, evicting the LRU line of the set
     * if needed.  @return the evicted line's metadata if a valid line
     * was displaced.
     */
    std::optional<CacheLine> insert(Addr block, CacheState state,
                                    std::uint64_t version);

    /** Drop @p block if present.  @return its metadata if it was
     *  valid. */
    std::optional<CacheLine> invalidate(Addr block);

    /** Invalidate every line (e.g. between workload phases). */
    void flush();

    /** Number of valid lines currently held. */
    std::uint32_t validLines() const;

  private:
    std::uint32_t setOf(Addr block) const;

    CacheGeometry geom_;
    /** ways[set * assoc + way]; way order is LRU order
     *  (way 0 = MRU). */
    std::vector<CacheLine> ways_;
};

/** Hit/miss counters for one node's hierarchy. */
struct CacheStats
{
    std::uint64_t l1Hits = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t upgrades = 0;
    std::uint64_t l2Evictions = 0;
    std::uint64_t writebacks = 0;
};

/**
 * A node's private two-level hierarchy with inclusion.
 *
 * Coherence state is authoritative at the L2; the L1 mirrors it for
 * the subset of blocks it holds.  All state-changing operations go
 * through this class so the two levels can never disagree.
 */
class NodeCache
{
  public:
    NodeCache(const CacheGeometry &l1 = paperL1,
              const CacheGeometry &l2 = paperL2);

    /** Coherence state of @p block (Invalid if not cached). */
    CacheState state(Addr block) const;

    /** Version held for @p block (0 if not cached). */
    std::uint64_t version(Addr block) const;

    /**
     * Record a processor-side access for hit accounting and LRU
     * update.  @return true if it hit in the L1.
     */
    bool access(Addr block);

    /**
     * Fill @p block in @p state after a coherence transaction.
     * @param forwarded Mark the line as prediction-forwarded (its
     *                  access bit starts clear).
     * @return the L2 victim if a valid block was displaced (the
     * caller must inform the directory).
     */
    std::optional<CacheLine> fill(Addr block, CacheState state,
                                  std::uint64_t version,
                                  bool forwarded = false);

    /**
     * If @p block is a forwarded line not yet touched, set its access
     * bit and return true (exactly once per forwarded fill).
     */
    bool consumeForwardedTouch(Addr block);

    /** Upgrade a Shared copy to Modified (write fault granted). */
    void upgrade(Addr block, std::uint64_t new_version);

    /** Silently upgrade an Exclusive copy to Modified (MESI): no
     *  coherence transaction, and the version is unchanged — the
     *  exclusive episode began at the E grant. */
    void upgradeSilent(Addr block);

    /** Downgrade a Modified or Exclusive copy to Shared (remote
     *  read). */
    void downgrade(Addr block);

    /** Invalidate @p block at both levels.  @return the prior L2
     *  line (with its forwarded/accessed bits) if it was valid. */
    std::optional<CacheLine> invalidate(Addr block);

    CacheStats &stats() { return stats_; }
    const CacheStats &stats() const { return stats_; }

  private:
    SetAssocCache l1_;
    SetAssocCache l2_;
    CacheStats stats_;
};

} // namespace ccp::mem

#endif // CCP_MEM_CACHE_HH
