#include "mem/protocol.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ccp::mem {

namespace {

/** Modelled latency of an L1 hit, in cycles. */
constexpr Cycles l1HitCycles = 1;
/** Modelled latency of an L2 hit, in cycles. */
constexpr Cycles l2HitCycles = 10;

} // namespace

CoherenceController::CoherenceController(const MachineConfig &config,
                                         trace::SharingTrace *trace)
    : config_(config), trace_(trace),
      torus_(config.torusWidth,
             config.nNodes / std::max(1u, config.torusWidth)),
      map_(config.nNodes, config.placement),
      readersPerKill_(config.nNodes + 1), staticStores_(config.nNodes),
      predictedStores_(config.nNodes)
{
    ccp_assert(trace_ != nullptr, "controller needs a trace sink");
    ccp_assert(config_.nNodes >= 1 && config_.nNodes <= maxNodes,
               "unsupported node count ", config_.nNodes);
    ccp_assert(config_.torusWidth >= 1 &&
                   config_.nNodes % config_.torusWidth == 0,
               "torus width must divide the node count");
    caches_.reserve(config_.nNodes);
    for (unsigned i = 0; i < config_.nNodes; ++i)
        caches_.emplace_back(config_.l1, config_.l2);
    slices_.resize(config_.nNodes);
}

const CacheStats &
CoherenceController::cacheStats(NodeId node) const
{
    ccp_assert(node < config_.nNodes, "node out of range");
    return caches_[node].stats();
}

std::uint64_t
CoherenceController::staticStores(NodeId node) const
{
    ccp_assert(node < config_.nNodes, "node out of range");
    return staticStores_[node].size();
}

std::uint64_t
CoherenceController::predictedStores(NodeId node) const
{
    ccp_assert(node < config_.nNodes, "node out of range");
    return predictedStores_[node].size();
}

void
CoherenceController::message(NodeId from, NodeId to, bool data)
{
    torus_.sendMessage(from, to,
                       data ? torus_.params().dataMessageBytes
                            : torus_.params().controlMessageBytes);
}

DirectoryEntry &
CoherenceController::dirEntry(Addr block, NodeId toucher, NodeId &home)
{
    home = map_.homeOf(block, toucher);
    return slices_[home].entry(block);
}

void
CoherenceController::noteForwardedTouch(NodeId node, Addr block)
{
    if (!caches_[node].consumeForwardedTouch(block))
        return;
    // First local use of a prediction-forwarded line: a remote read
    // miss was avoided, and the access bit makes this node a true
    // reader of the current version.
    ++stats_.forwardHits;
    NodeId home = 0;
    DirectoryEntry &dir = dirEntry(block, node, home);
    recordReader(dir, node);
}

void
CoherenceController::doForwarding(const trace::CoherenceEvent &ev,
                                  Addr block, NodeId home)
{
    SharingBitmap targets = forwardHook_(ev);
    targets &= SharingBitmap::all(config_.nNodes);
    targets.reset(ev.pid);
    if (targets.empty())
        return;

    for (NodeId p = 0; p < config_.nNodes; ++p) {
        if (!targets.test(p))
            continue;
        if (caches_[p].state(block) != CacheState::Invalid)
            continue; // already has a copy somehow; nothing to push
        message(home, p, true);
        ++stats_.forwardsSent;
        {
            DirectoryEntry &dir = dirEntry(block, p, home);
            dir.sharers.set(p);
        }
        auto victim = caches_[p].fill(block, CacheState::Shared,
                                      currentVersion(blockBase(block)),
                                      /*forwarded=*/true);
        if (victim) {
            ++stats_.pollutionEvictions;
            handleVictim(p, *victim);
        }
    }

    // The writer yields its write permission upon forwarding (paper
    // footnote 3), guaranteeing the forwarded values are final.
    NodeId h = 0;
    DirectoryEntry &dir = dirEntry(block, ev.pid, h);
    if (dir.state == DirState::Modified && dir.owner == ev.pid) {
        caches_[ev.pid].downgrade(block);
        dir.state = DirState::Shared;
        ++stats_.downgrades;
    }
}

void
CoherenceController::recordReader(DirectoryEntry &dir, NodeId node)
{
    // The producer of the current version is not a reader of it.
    if (dir.hasLastWriter && dir.lastWriterPid == node)
        return;
    dir.readersSinceExclusive.set(node);
    if (dir.pendingEvent != trace::noEvent)
        trace_->events()[dir.pendingEvent].readers.set(node);
}

void
CoherenceController::handleVictim(NodeId node, const CacheLine &victim)
{
    NodeId home = 0;
    DirectoryEntry &dir = dirEntry(victim.block, node, home);

    if (victim.state == CacheState::Modified) {
        // Under MESI the directory may still believe the line is
        // clean-Exclusive (the upgrade was silent).
        ccp_assert((dir.state == DirState::Modified ||
                    dir.state == DirState::Exclusive) &&
                       dir.owner == node,
                   "writeback from a non-owner");
        dir.state = DirState::Uncached;
        dir.sharers = SharingBitmap();
        message(node, home, true);
    } else if (victim.state == CacheState::Exclusive) {
        ccp_assert(dir.state == DirState::Exclusive &&
                       dir.owner == node,
                   "exclusive replacement from a non-owner");
        dir.state = DirState::Uncached;
        dir.sharers = SharingBitmap();
        message(node, home, false); // clean: no data
    } else {
        // Replacement hint for a Shared copy.  The true-reader record
        // (readersSinceExclusive) deliberately survives: the node did
        // read this version (paper section 3.4's access bits).
        ccp_assert(dir.state == DirState::Shared &&
                       dir.sharers.test(node),
                   "replacement hint from a non-sharer");
        if (victim.forwarded && !victim.accessed)
            ++stats_.wastedForwards; // evicted before it was used
        dir.sharers.reset(node);
        if (dir.sharers.empty())
            dir.state = DirState::Uncached;
        message(node, home, false);
    }
}

void
CoherenceController::invalidateSharers(DirectoryEntry &dir, Addr block,
                                       NodeId except, NodeId home)
{
    SharingBitmap to_kill = dir.sharers.minus(SharingBitmap::single(except));
    for (NodeId s = 0; s < config_.nNodes; ++s) {
        if (!to_kill.test(s))
            continue;
        message(home, s, false);
        auto old = caches_[s].invalidate(block);
        ccp_assert(old && old->state == CacheState::Shared,
                   "invalidated a non-shared copy");
        if (old->forwarded && !old->accessed)
            ++stats_.wastedForwards;
        message(s, home, false);
        ++stats_.invalidationsSent;
    }
}

void
CoherenceController::read(NodeId node, Addr addr)
{
    ccp_assert(node < config_.nNodes, "node out of range");
    Addr block = blockOf(addr);
    blocksTouched_.insert(block);
    ++stats_.reads;

    if (caches_[node].state(block) != CacheState::Invalid) {
        noteForwardedTouch(node, block);
        bool l1_hit = caches_[node].access(block);
        stats_.latency += l1_hit ? l1HitCycles : l2HitCycles;
        return;
    }

    ++stats_.readMisses;
    ++caches_[node].stats().misses;

    NodeId home = 0;
    DirectoryEntry &dir = dirEntry(block, node, home);
    message(node, home, false);
    stats_.latency += torus_.latency(node, home);

    CacheState fill_state = CacheState::Shared;
    switch (dir.state) {
      case DirState::Uncached:
        if (config_.protocol == ProtocolKind::MESI) {
            // Sole reader: grant Exclusive so a subsequent write
            // upgrades silently.
            dir.state = DirState::Exclusive;
            dir.owner = node;
            fill_state = CacheState::Exclusive;
        } else {
            dir.state = DirState::Shared;
        }
        dir.sharers.set(node);
        message(home, node, true);
        break;

      case DirState::Shared:
        dir.sharers.set(node);
        message(home, node, true);
        break;

      case DirState::Exclusive:
      case DirState::Modified: {
        NodeId owner = dir.owner;
        ccp_assert(owner != node,
                   "owner read-missed its own exclusive block");
        message(home, owner, false);
        caches_[owner].downgrade(block);
        ++stats_.downgrades;
        message(owner, node, true);  // cache-to-cache transfer
        message(owner, home, true);  // sharing writeback
        stats_.latency += torus_.latency(home, owner);
        ++stats_.interventions;
        dir.state = DirState::Shared;
        dir.sharers.set(node);
        break;
      }
    }

    recordReader(dir, node);
    auto victim = caches_[node].fill(block, fill_state, dir.version);
    if (victim)
        handleVictim(node, *victim);
}

void
CoherenceController::write(NodeId node, Addr addr, Pc pc)
{
    ccp_assert(node < config_.nNodes, "node out of range");
    Addr block = blockOf(addr);
    blocksTouched_.insert(block);
    ++stats_.writes;
    staticStores_[node].insert(pc);

    CacheState st = caches_[node].state(block);
    if (st == CacheState::Modified) {
        bool l1_hit = caches_[node].access(block);
        stats_.latency += l1_hit ? l1HitCycles : l2HitCycles;
        return;
    }
    if (st == CacheState::Exclusive) {
        // MESI: silent E->M upgrade, invisible to the directory and
        // to the predictors (no coherence store miss).
        caches_[node].upgradeSilent(block);
        bool l1_hit = caches_[node].access(block);
        stats_.latency += l1_hit ? l1HitCycles : l2HitCycles;
        ++stats_.silentUpgrades;
        return;
    }

    // Coherence store miss: a write fault (upgrade) or a write miss.
    predictedStores_[node].insert(pc);

    NodeId home = 0;
    DirectoryEntry &dir = dirEntry(block, node, home);
    message(node, home, false);
    stats_.latency += torus_.latency(node, home);

    // Capture the feedback for the dying version before mutating.
    // The feedback is the set of nodes actually *invalidated*: the
    // new writer itself is excluded — it keeps (upgrades) its copy,
    // so it never reports an access bit.  This matters: a writer that
    // read-modify-writes would otherwise dominate its own history and
    // poison writer-indexed predictors with a self-bit that can never
    // be a correct prediction.
    trace::CoherenceEvent ev;
    ev.pid = node;
    ev.pc = pc;
    ev.dir = home;
    ev.block = block;
    ev.invalidated =
        dir.readersSinceExclusive.minus(SharingBitmap::single(node));
    ev.prevWriterPid = dir.lastWriterPid;
    ev.prevWriterPc = dir.lastWriterPc;
    ev.hasPrevWriter = dir.hasLastWriter;
    ev.prevEvent = dir.pendingEvent;
    readersPerKill_.add(ev.invalidated.popcount());

    if (st == CacheState::Shared) {
        ++stats_.writeFaults;
        ccp_assert(dir.state == DirState::Shared &&
                       dir.sharers.test(node),
                   "upgrading node absent from sharer set");
        invalidateSharers(dir, block, node, home);
        caches_[node].upgrade(block, dir.version + 1);
    } else {
        ++stats_.writeMisses;
        ++caches_[node].stats().misses;
        if (dir.state == DirState::Modified ||
            dir.state == DirState::Exclusive) {
            NodeId owner = dir.owner;
            ccp_assert(owner != node,
                       "owner write-missed its own exclusive block");
            message(home, owner, false);
            auto old = caches_[owner].invalidate(block);
            ccp_assert(old && (old->state == CacheState::Modified ||
                               (dir.state == DirState::Exclusive &&
                                old->state == CacheState::Exclusive)),
                       "directory owner lost its copy");
            ++stats_.invalidationsSent;
            // Dirty copies transfer cache-to-cache; clean Exclusive
            // copies are satisfied from memory.
            if (old->state == CacheState::Modified)
                message(owner, node, true);
            else
                message(home, node, true);
            stats_.latency += torus_.latency(home, owner);
            ++stats_.interventions;
        } else {
            invalidateSharers(dir, block, node, home);
            message(home, node, true);
        }
        auto victim = caches_[node].fill(block, CacheState::Modified,
                                         dir.version + 1);
        if (victim)
            handleVictim(node, *victim);
    }

    dir.state = DirState::Modified;
    dir.owner = node;
    dir.sharers = SharingBitmap::single(node);
    dir.version += 1;
    dir.readersSinceExclusive = SharingBitmap();
    dir.lastWriterPid = node;
    dir.lastWriterPc = pc;
    dir.hasLastWriter = true;
    dir.pendingEvent = trace_->append(ev);

    if (forwardHook_)
        doForwarding(ev, block, home);
}

void
CoherenceController::exportStats(obs::StatsRegistry &registry,
                                 const std::string &prefix) const
{
    auto path = [&](const char *leaf) { return prefix + "." + leaf; };

    registry.counter(path("reads")) += stats_.reads;
    registry.counter(path("writes")) += stats_.writes;
    registry.counter(path("read_misses")) += stats_.readMisses;
    registry.counter(path("write_misses")) += stats_.writeMisses;
    registry.counter(path("write_faults")) += stats_.writeFaults;
    registry.counter(path("silent_upgrades")) += stats_.silentUpgrades;
    registry.counter(path("invalidations")) += stats_.invalidationsSent;
    registry.counter(path("downgrades")) += stats_.downgrades;
    registry.counter(path("interventions")) += stats_.interventions;
    registry.counter(path("latency_cycles")) += stats_.latency;
    registry.counter(path("forwards_sent")) += stats_.forwardsSent;
    registry.counter(path("forward_hits")) += stats_.forwardHits;
    registry.counter(path("wasted_forwards")) += stats_.wastedForwards;
    registry.counter(path("pollution_evictions")) +=
        stats_.pollutionEvictions;
    registry.counter(path("blocks_touched")) += blocksTouched_.size();
    registry.counter(path("network_messages")) +=
        torus_.totalMessages();
    registry.counter(path("network_byte_hops")) +=
        torus_.totalByteHops();
    registry
        .histogram(path("readers_per_kill"), readersPerKill_.size())
        .merge(readersPerKill_);
}

void
CoherenceController::finalizeTrace()
{
    trace::TraceMeta &meta = trace_->meta();
    meta.blocksTouched = blocksTouched_.size();
    meta.totalOps = stats_.reads + stats_.writes;
    meta.reads = stats_.reads;
    meta.writes = stats_.writes;
    meta.readMisses = stats_.readMisses;
    meta.writeMisses = stats_.writeMisses;
    meta.writeFaults = stats_.writeFaults;
    meta.silentUpgrades = stats_.silentUpgrades;
    meta.invalidationsSent = stats_.invalidationsSent;
    meta.downgrades = stats_.downgrades;
    meta.interventions = stats_.interventions;
    meta.maxStaticStoresPerNode = 0;
    meta.maxPredictedStoresPerNode = 0;
    for (unsigned i = 0; i < config_.nNodes; ++i) {
        meta.maxStaticStoresPerNode =
            std::max<std::uint64_t>(meta.maxStaticStoresPerNode,
                                    staticStores_[i].size());
        meta.maxPredictedStoresPerNode =
            std::max<std::uint64_t>(meta.maxPredictedStoresPerNode,
                                    predictedStores_[i].size());
    }
}

std::uint64_t
CoherenceController::currentVersion(Addr addr)
{
    Addr block = blockOf(addr);
    NodeId home = map_.homeOf(block, 0);
    const DirectoryEntry *dir = slices_[home].find(block);
    return dir ? dir->version : 0;
}

void
CoherenceController::checkInvariants() const
{
    for (NodeId home = 0; home < config_.nNodes; ++home) {
        for (const auto &[block, dir] : slices_[home]) {
            unsigned modified_copies = 0;
            unsigned owned_copies = 0;
            for (NodeId n = 0; n < config_.nNodes; ++n) {
                CacheState cs = caches_[n].state(block);
                if (cs == CacheState::Invalid) {
                    ccp_assert(!(dir.state == DirState::Shared &&
                                 dir.sharers.test(n)),
                               "sharer bit set for an invalid copy");
                    continue;
                }
                if (cs == CacheState::Modified) {
                    ++modified_copies;
                    ++owned_copies;
                    // Under MESI a silently-upgraded copy may still
                    // look clean-Exclusive to the directory.
                    ccp_assert((dir.state == DirState::Modified ||
                                dir.state == DirState::Exclusive) &&
                                   dir.owner == n,
                               "modified copy without ownership");
                }
                if (cs == CacheState::Exclusive) {
                    ++owned_copies;
                    ccp_assert(dir.state == DirState::Exclusive &&
                                   dir.owner == n,
                               "exclusive copy without ownership");
                }
                ccp_assert(dir.sharers.test(n),
                           "cached copy missing from sharer set");
                ccp_assert(caches_[n].version(block) == dir.version,
                           "stale version cached at node ", n);
            }
            ccp_assert(owned_copies <= 1,
                       "multiple owned copies of block ", block);
            if (dir.state == DirState::Modified) {
                ccp_assert(modified_copies == 1,
                           "directory Modified without a dirty copy");
                ccp_assert(dir.sharers ==
                               SharingBitmap::single(dir.owner),
                           "Modified entry sharers != {owner}");
            }
            if (dir.state == DirState::Exclusive) {
                ccp_assert(owned_copies == 1,
                           "directory Exclusive without an owner copy");
                ccp_assert(dir.sharers ==
                               SharingBitmap::single(dir.owner),
                           "Exclusive entry sharers != {owner}");
            }
            if (dir.state == DirState::Uncached) {
                ccp_assert(dir.sharers.empty(),
                           "Uncached entry with sharers");
                ccp_assert(owned_copies == 0,
                           "Uncached entry with an owned copy");
            }
        }
    }
}

} // namespace ccp::mem
