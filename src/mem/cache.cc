#include "mem/cache.hh"

#include "common/logging.hh"

namespace ccp::mem {

SetAssocCache::SetAssocCache(const CacheGeometry &geom)
    : geom_(geom),
      ways_(static_cast<std::size_t>(geom.sets()) * geom.assoc)
{
    ccp_assert(geom.sizeBytes % blockBytes == 0,
               "cache size not a multiple of the block size");
    ccp_assert(geom.lines() % geom.assoc == 0,
               "line count not a multiple of associativity");
    ccp_assert(geom.sets() > 0, "cache has no sets");
}

std::uint32_t
SetAssocCache::setOf(Addr block) const
{
    return static_cast<std::uint32_t>(block % geom_.sets());
}

CacheLine *
SetAssocCache::find(Addr block)
{
    std::uint32_t base = setOf(block) * geom_.assoc;
    for (std::uint32_t w = 0; w < geom_.assoc; ++w) {
        CacheLine &line = ways_[base + w];
        if (line.valid() && line.block == block)
            return &line;
    }
    return nullptr;
}

const CacheLine *
SetAssocCache::find(Addr block) const
{
    return const_cast<SetAssocCache *>(this)->find(block);
}

void
SetAssocCache::touch(Addr block)
{
    std::uint32_t base = setOf(block) * geom_.assoc;
    for (std::uint32_t w = 0; w < geom_.assoc; ++w) {
        if (ways_[base + w].valid() && ways_[base + w].block == block) {
            // Rotate [0, w] right by one so way w becomes MRU (way 0).
            CacheLine hit = ways_[base + w];
            for (std::uint32_t i = w; i > 0; --i)
                ways_[base + i] = ways_[base + i - 1];
            ways_[base] = hit;
            return;
        }
    }
}

std::optional<CacheLine>
SetAssocCache::insert(Addr block, CacheState state,
                      std::uint64_t version)
{
    ccp_assert(state != CacheState::Invalid, "inserting invalid line");
    std::uint32_t base = setOf(block) * geom_.assoc;

    // Replace an existing copy in place if present.
    if (CacheLine *line = find(block)) {
        line->state = state;
        line->version = version;
        touch(block);
        return std::nullopt;
    }

    // Prefer an invalid way; otherwise evict the LRU way (the last).
    std::uint32_t victim_way = geom_.assoc - 1;
    for (std::uint32_t w = 0; w < geom_.assoc; ++w) {
        if (!ways_[base + w].valid()) {
            victim_way = w;
            break;
        }
    }

    std::optional<CacheLine> victim;
    if (ways_[base + victim_way].valid())
        victim = ways_[base + victim_way];

    // Shift [0, victim_way) down and install at MRU position.
    for (std::uint32_t i = victim_way; i > 0; --i)
        ways_[base + i] = ways_[base + i - 1];
    ways_[base] = CacheLine{block, state, version};
    return victim;
}

std::optional<CacheLine>
SetAssocCache::invalidate(Addr block)
{
    if (CacheLine *line = find(block)) {
        CacheLine old = *line;
        line->state = CacheState::Invalid;
        return old;
    }
    return std::nullopt;
}

void
SetAssocCache::flush()
{
    for (auto &line : ways_)
        line.state = CacheState::Invalid;
}

std::uint32_t
SetAssocCache::validLines() const
{
    std::uint32_t n = 0;
    for (const auto &line : ways_)
        if (line.valid())
            ++n;
    return n;
}

NodeCache::NodeCache(const CacheGeometry &l1, const CacheGeometry &l2)
    : l1_(l1), l2_(l2)
{
}

CacheState
NodeCache::state(Addr block) const
{
    const CacheLine *line = l2_.find(block);
    return line ? line->state : CacheState::Invalid;
}

std::uint64_t
NodeCache::version(Addr block) const
{
    const CacheLine *line = l2_.find(block);
    return line ? line->version : 0;
}

bool
NodeCache::access(Addr block)
{
    CacheLine *l2_line = l2_.find(block);
    if (!l2_line)
        return false;
    // Copy before touch(): LRU reordering moves lines within the set
    // and invalidates the pointer.
    CacheState l2_state = l2_line->state;
    std::uint64_t l2_version = l2_line->version;
    l2_.touch(block);

    if (l1_.find(block)) {
        l1_.touch(block);
        ++stats_.l1Hits;
        return true;
    }

    // L1 miss that hits in the (inclusive) L2: refill the L1.  The L1
    // victim needs no directory action since the L2 still holds it.
    ++stats_.l2Hits;
    l1_.insert(block, l2_state, l2_version);
    return false;
}

std::optional<CacheLine>
NodeCache::fill(Addr block, CacheState state, std::uint64_t version,
                bool forwarded)
{
    std::optional<CacheLine> victim = l2_.insert(block, state, version);
    if (victim) {
        // Inclusion: an L2 eviction kicks the block out of the L1 too.
        l1_.invalidate(victim->block);
        ++stats_.l2Evictions;
        if (victim->state == CacheState::Modified)
            ++stats_.writebacks;
    }
    if (CacheLine *line = l2_.find(block)) {
        line->forwarded = forwarded;
        line->accessed = false;
    }
    l1_.insert(block, state, version);
    return victim;
}

bool
NodeCache::consumeForwardedTouch(Addr block)
{
    CacheLine *line = l2_.find(block);
    if (!line || !line->forwarded || line->accessed)
        return false;
    line->accessed = true;
    return true;
}

void
NodeCache::upgrade(Addr block, std::uint64_t new_version)
{
    CacheLine *l2_line = l2_.find(block);
    ccp_assert(l2_line && l2_line->state == CacheState::Shared,
               "upgrade of a non-shared block");
    l2_line->state = CacheState::Modified;
    l2_line->version = new_version;
    l2_line->forwarded = false; // consumed by overwriting
    if (CacheLine *l1_line = l1_.find(block)) {
        l1_line->state = CacheState::Modified;
        l1_line->version = new_version;
    }
    ++stats_.upgrades;
}

void
NodeCache::upgradeSilent(Addr block)
{
    CacheLine *l2_line = l2_.find(block);
    ccp_assert(l2_line && l2_line->state == CacheState::Exclusive,
               "silent upgrade of a non-exclusive block");
    l2_line->state = CacheState::Modified;
    if (CacheLine *l1_line = l1_.find(block))
        l1_line->state = CacheState::Modified;
}

void
NodeCache::downgrade(Addr block)
{
    CacheLine *l2_line = l2_.find(block);
    ccp_assert(l2_line && (l2_line->state == CacheState::Modified ||
                           l2_line->state == CacheState::Exclusive),
               "downgrade of a non-owned block");
    l2_line->state = CacheState::Shared;
    if (CacheLine *l1_line = l1_.find(block))
        l1_line->state = CacheState::Shared;
}

std::optional<CacheLine>
NodeCache::invalidate(Addr block)
{
    l1_.invalidate(block);
    return l2_.invalidate(block);
}

} // namespace ccp::mem
