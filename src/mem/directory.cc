#include "mem/directory.hh"

namespace ccp::mem {

const DirectoryEntry *
DirectorySlice::find(Addr block) const
{
    auto it = entries_.find(block);
    return it == entries_.end() ? nullptr : &it->second;
}

NodeId
MemoryMap::homeOf(Addr block, NodeId toucher)
{
    if (policy_ == PlacementPolicy::Interleaved)
        return static_cast<NodeId>(block % nNodes_);
    auto [it, inserted] = homes_.try_emplace(block, toucher);
    (void)inserted;
    return it->second;
}

} // namespace ccp::mem
