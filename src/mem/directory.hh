/**
 * @file
 * Full-map directory state (DirNB-style, one presence bit per node).
 *
 * Each block's home node owns a DirectoryEntry.  Besides the classic
 * state/sharers/owner triple, the entry carries the bookkeeping the
 * prediction study needs:
 *
 *  - readersSinceExclusive: the *true readers* of the current version
 *    (the access-bit feedback of paper section 3.4 — survives sharer
 *    replacement hints, so replacements do not erase true sharing);
 *  - the last writer's (pid, pc), required by forwarded update;
 *  - pendingEvent: the trace sequence number of the coherence store
 *    miss that created the current version, so later readers can be
 *    recorded as that event's outcome.
 */

#ifndef CCP_MEM_DIRECTORY_HH
#define CCP_MEM_DIRECTORY_HH

#include <cstdint>
#include <unordered_map>

#include "common/bitmap.hh"
#include "common/types.hh"
#include "trace/event.hh"

namespace ccp::mem {

/** Directory-side state of one block. */
enum class DirState : std::uint8_t
{
    Uncached,  ///< no cached copies; memory is up to date
    Shared,    ///< >= 1 read-only copies
    /**
     * MESI only: a single owner holds the sole copy, which may be
     * clean (E) or — after a silent upgrade the directory cannot
     * observe — dirty (M).
     */
    Exclusive,
    Modified,  ///< exactly one dirty copy at `owner`
};

/** Directory record for one block. */
struct DirectoryEntry
{
    DirState state = DirState::Uncached;
    /** Nodes holding a copy (Shared) — or just the owner (Modified). */
    SharingBitmap sharers;
    /** Owner node, meaningful in Modified state. */
    NodeId owner = 0;

    /** Version counter: bumped on every exclusive acquisition. */
    std::uint64_t version = 0;

    /** True readers of the current version (access-bit feedback). */
    SharingBitmap readersSinceExclusive;

    /** Identity of the writer that produced the current version. */
    NodeId lastWriterPid = 0;
    Pc lastWriterPc = 0;
    bool hasLastWriter = false;

    /** Trace event that created the current version. */
    EventSeq pendingEvent = trace::noEvent;
};

/**
 * The directory slice homed at one node: a sparse map from block
 * number to entry.  Blocks that were never referenced have the default
 * Uncached entry and are not materialized.
 */
class DirectorySlice
{
  public:
    /** Look up (and create on first use) the entry for @p block. */
    DirectoryEntry &entry(Addr block) { return entries_[block]; }

    /** Look up without creating.  @return nullptr if absent. */
    const DirectoryEntry *find(Addr block) const;

    /** Number of materialized entries. */
    std::size_t size() const { return entries_.size(); }

    /** Iteration support (used by invariant checks in tests). */
    auto begin() const { return entries_.begin(); }
    auto end() const { return entries_.end(); }

  private:
    std::unordered_map<Addr, DirectoryEntry> entries_;
};

/** How blocks are assigned to home nodes. */
enum class PlacementPolicy : std::uint8_t
{
    /** Round-robin at block granularity. */
    Interleaved,
    /**
     * The first node to touch a block becomes its home — the paper's
     * RSIM setup ("first-touch policy on a cache-line granularity"),
     * which makes initial placement effective and gives the `dir`
     * index field its data-affinity meaning.
     */
    FirstTouch,
};

/**
 * Home-node assignment for the N directory slices.
 *
 * Under FirstTouch the assignment is sticky: the first requester of a
 * block becomes its home for the rest of the run.
 */
class MemoryMap
{
  public:
    explicit MemoryMap(unsigned n_nodes,
                       PlacementPolicy policy = PlacementPolicy::FirstTouch)
        : nNodes_(n_nodes), policy_(policy)
    {
    }

    unsigned nNodes() const { return nNodes_; }
    PlacementPolicy policy() const { return policy_; }

    /**
     * Home (directory) node of @p block, assigning it to @p toucher
     * on first reference under the first-touch policy.
     */
    NodeId homeOf(Addr block, NodeId toucher);

    /** Number of blocks pinned by first touch so far. */
    std::size_t assignedBlocks() const { return homes_.size(); }

  private:
    unsigned nNodes_;
    PlacementPolicy policy_;
    std::unordered_map<Addr, NodeId> homes_;
};

} // namespace ccp::mem

#endif // CCP_MEM_DIRECTORY_HH
