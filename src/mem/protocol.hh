/**
 * @file
 * CoherenceController: the MSI directory protocol engine.
 *
 * This is the machine's coherence substrate.  It owns the per-node
 * two-level caches and the distributed directory, executes read and
 * write accesses atomically in global program order (trace-driven
 * simulation needs no timing races), accounts network traffic on an
 * optional torus model, and — crucially for this study — appends one
 * CoherenceEvent to the attached SharingTrace for every coherence
 * store miss, wiring up the feedback (invalidated reader bitmap, last
 * writer) and outcome (eventual readers) exactly as defined in paper
 * sections 3.4 and 5.1.
 */

#ifndef CCP_MEM_PROTOCOL_HH
#define CCP_MEM_PROTOCOL_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/stats.hh"
#include "mem/cache.hh"
#include "mem/directory.hh"
#include "net/torus.hh"
#include "obs/registry.hh"
#include "trace/trace.hh"

namespace ccp::mem {

/** Global protocol-level counters. */
struct ProtocolStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t readMisses = 0;
    std::uint64_t writeMisses = 0;   ///< stores with no cached copy
    std::uint64_t writeFaults = 0;   ///< upgrades of Shared copies
    std::uint64_t silentUpgrades = 0; ///< MESI E->M (no transaction)
    std::uint64_t invalidationsSent = 0;
    std::uint64_t downgrades = 0;
    /** Remote misses serviced out of another node's E/M copy. */
    std::uint64_t interventions = 0;
    Cycles latency = 0;              ///< modelled access latency sum

    /** Online-forwarding counters (active when a hook is attached). */
    std::uint64_t forwardsSent = 0;
    /** Forwarded lines touched by their node: read misses avoided. */
    std::uint64_t forwardHits = 0;
    /** Forwarded lines invalidated or evicted untouched. */
    std::uint64_t wastedForwards = 0;
    /** Victims displaced by forwarded fills (cache pollution). */
    std::uint64_t pollutionEvictions = 0;
};

/** The invalidation protocol family the machine runs. */
enum class ProtocolKind : std::uint8_t
{
    /** Three-state MSI: every store to a non-Modified block is a
     *  coherence store miss (the paper's DirNB-style setting). */
    MSI,
    /** MESI: a sole reader is granted Exclusive and upgrades to
     *  Modified silently — read-then-write by one node generates no
     *  coherence store miss and therefore no prediction event. */
    MESI,
};

/** Configuration of the coherence substrate. */
struct MachineConfig
{
    unsigned nNodes = 16;
    CacheGeometry l1 = paperL1;
    CacheGeometry l2 = paperL2;
    PlacementPolicy placement = PlacementPolicy::FirstTouch;
    ProtocolKind protocol = ProtocolKind::MSI;
    /** Torus width; height is nNodes / width. */
    unsigned torusWidth = 4;
};

/**
 * The protocol engine.  All processor accesses funnel through read()
 * and write(); the attached trace receives the coherence events.
 */
class CoherenceController
{
  public:
    /**
     * @param config  Machine geometry.
     * @param trace   Trace to append coherence events to (required).
     */
    CoherenceController(const MachineConfig &config,
                        trace::SharingTrace *trace);

    unsigned nNodes() const { return config_.nNodes; }
    const MachineConfig &config() const { return config_; }

    /**
     * Online forwarding hook: called at every coherence store miss
     * with the freshly built event; the returned bitmap names the
     * nodes to forward the new value to.  Keeping this a callback
     * lets the predictor live in a higher layer (ccp_predict) while
     * the protocol stays self-contained.
     */
    using ForwardHook =
        std::function<SharingBitmap(const trace::CoherenceEvent &)>;

    /**
     * Attach (or clear, with nullptr) the online forwarding hook.
     * When attached, predicted readers receive Shared copies pushed
     * into their caches, the writer yields its write permission
     * (paper footnote 3), and access bits keep the feedback bitmaps
     * limited to true readers (paper section 3.4).
     */
    void setForwardHook(ForwardHook hook) { forwardHook_ = std::move(hook); }

    /** Execute a load by @p node to byte address @p addr. */
    void read(NodeId node, Addr addr);

    /**
     * Execute a store by @p node to byte address @p addr, issued by
     * static store instruction @p pc.
     */
    void write(NodeId node, Addr addr, Pc pc);

    const ProtocolStats &stats() const { return stats_; }
    const CacheStats &cacheStats(NodeId node) const;

    /**
     * Distribution of readers killed per coherence store miss (the
     * invalidated-set popcount; bucket i = misses that invalidated
     * exactly i readers).
     */
    const Histogram &readersPerKill() const { return readersPerKill_; }

    /**
     * Export every protocol counter plus the readers-per-kill
     * histogram into @p registry under "<prefix>." paths.  Counters
     * add across calls (registry merge semantics), so exporting
     * several machines accumulates suite-wide totals.
     */
    void exportStats(obs::StatsRegistry &registry,
                     const std::string &prefix = "protocol") const;
    net::Torus2D &torus() { return torus_; }
    const net::Torus2D &torus() const { return torus_; }

    /** Distinct blocks touched by any access so far. */
    std::uint64_t blocksTouched() const { return blocksTouched_.size(); }

    /** Distinct shared-data static stores executed at @p node. */
    std::uint64_t staticStores(NodeId node) const;
    /** Distinct static stores that caused coherence events at
     *  @p node. */
    std::uint64_t predictedStores(NodeId node) const;

    /**
     * Copy the run-level statistics into the trace's metadata.  Call
     * once after the workload finishes.
     */
    void finalizeTrace();

    /**
     * Verify the cross-component coherence invariants; panics on
     * violation.  Used by the property tests.
     *
     *  - at most one Modified copy per block, matching the directory
     *    owner;
     *  - every cached copy's node is present in the directory sharer
     *    set and agrees on version;
     *  - Shared directory entries have no Modified cache copies.
     */
    void checkInvariants() const;

    /**
     * The version a read by any node would observe right now — the
     * directory's version counter for the block.  Used by tests to
     * prove readers always see the latest value.
     */
    std::uint64_t currentVersion(Addr addr);

  private:
    DirectoryEntry &dirEntry(Addr block, NodeId toucher, NodeId &home);
    void recordReader(DirectoryEntry &dir, NodeId node);
    void handleVictim(NodeId node, const CacheLine &victim);
    void invalidateSharers(DirectoryEntry &dir, Addr block,
                           NodeId except, NodeId home);
    void message(NodeId from, NodeId to, bool data);
    void noteForwardedTouch(NodeId node, Addr block);
    void doForwarding(const trace::CoherenceEvent &ev, Addr block,
                      NodeId home);

    MachineConfig config_;
    trace::SharingTrace *trace_;
    net::Torus2D torus_;
    MemoryMap map_;
    std::vector<NodeCache> caches_;
    std::vector<DirectorySlice> slices_;
    ProtocolStats stats_;
    Histogram readersPerKill_;

    std::unordered_set<Addr> blocksTouched_;
    std::vector<std::unordered_set<Pc>> staticStores_;
    std::vector<std::unordered_set<Pc>> predictedStores_;
    ForwardHook forwardHook_;
};

} // namespace ccp::mem

#endif // CCP_MEM_PROTOCOL_HH
