/**
 * @file
 * SharingTrace: an in-memory sequence of coherence events plus the
 * run-level statistics the paper reports (Tables 5 and 6), with binary
 * save/load so traces can be generated once and swept many times.
 */

#ifndef CCP_TRACE_TRACE_HH
#define CCP_TRACE_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/event.hh"

namespace ccp::trace {

/**
 * Run-level metadata mirroring the paper's Table 5 columns, filled by
 * the machine while the trace is generated.
 */
struct TraceMeta
{
    /** Maximum distinct static (shared-data) stores at any node. */
    std::uint64_t maxStaticStoresPerNode = 0;
    /** Maximum distinct stores involved in predictions at any node. */
    std::uint64_t maxPredictedStoresPerNode = 0;
    /** Distinct cache blocks touched by any access. */
    std::uint64_t blocksTouched = 0;
    /** Total memory operations executed through the machine. */
    std::uint64_t totalOps = 0;

    /**
     * Protocol counters captured at generation time (trace format v3)
     * so cached traces keep the behaviour of the run that produced
     * them — run reports include these even when no simulation
     * happened in-process.
     */
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t readMisses = 0;
    std::uint64_t writeMisses = 0;
    std::uint64_t writeFaults = 0;
    std::uint64_t silentUpgrades = 0;
    std::uint64_t invalidationsSent = 0;
    std::uint64_t downgrades = 0;
    std::uint64_t interventions = 0;
};

/**
 * The complete coherence-event record of one benchmark run.
 *
 * Events appear in global program order (the order the interleaved
 * machine processed them).  After generation the trace is *finalized*:
 * every event's outcome bitmap is complete, including readers observed
 * up to the end of the run (the paper's "final state of the memory").
 */
class SharingTrace
{
  public:
    SharingTrace() = default;
    SharingTrace(std::string name, unsigned n_nodes)
        : name_(std::move(name)), nNodes_(n_nodes)
    {
    }

    const std::string &name() const { return name_; }
    unsigned nNodes() const { return nNodes_; }

    const std::vector<CoherenceEvent> &events() const { return events_; }
    std::vector<CoherenceEvent> &events() { return events_; }

    TraceMeta &meta() { return meta_; }
    const TraceMeta &meta() const { return meta_; }

    /** Append an event, returning its sequence number. */
    EventSeq append(const CoherenceEvent &ev);

    /** Number of coherence store misses. */
    std::uint64_t storeMisses() const { return events_.size(); }

    /**
     * Total per-bit sharing decisions: one per node per event
     * (Table 6's "Dynamic Sharing Decisions" = 16 x store misses).
     */
    std::uint64_t decisions() const
    {
        return events_.size() * nNodes_;
    }

    /** Total set reader bits (Table 6's "Dynamic Sharing Events"). */
    std::uint64_t sharingEvents() const;

    /** Fraction of decisions that are reads: sharingEvents/decisions. */
    double prevalence() const;

    /**
     * Serialize in trace format v4 (see docs/TRACE_FORMAT.md): a
     * fixed validated header plus a checksummed payload of packed
     * 64-byte event records.  @return false on I/O error or an
     * unrepresentable trace (nNodes outside [1, maxNodes], name too
     * long).
     */
    bool save(std::ostream &os) const;

    /**
     * Deserialize a v4 trace.  The header is fully validated (magic,
     * version, nNodes ∈ [1, maxNodes], event count bounded by the
     * actual remaining stream bytes) *before* any allocation, and the
     * payload checksum must match.  On any failure the destination
     * trace is left completely unchanged.  @return false on error.
     */
    bool load(std::istream &is);

    /**
     * Save to @p path atomically: the bytes are written to a
     * temporary file in the same directory and rename()d into place
     * only once complete, so concurrent readers and writers of a
     * shared trace cache never observe a partial file.  The temporary
     * is removed on any failure.
     */
    bool saveFile(const std::string &path) const;

    /**
     * Load from @p path, preferring the memory-mapped zero-copy
     * reader and falling back to the stream reader where mapping is
     * unavailable.  Same validation guarantees as load().
     */
    bool loadFile(const std::string &path);

    /**
     * Memory-mapped read path: maps the file read-only, validates the
     * header against the true file size, checksums the payload, and
     * unpacks the fixed-width event records in place — no per-event
     * istream reads.  @return false if mapping is unavailable on this
     * platform or the file is invalid; the destination trace is left
     * unchanged on failure.
     */
    bool loadFileMapped(const std::string &path);

    /** Portable stream-based file reader (the loadFile fallback). */
    bool loadFileStream(const std::string &path);

  private:
    /** loadFileMapped internals: Unavailable means "mapping is not
     *  possible here, try the stream path"; Invalid means the file
     *  exists but fails validation. */
    enum class MapLoad { Ok, Unavailable, Invalid };
    MapLoad loadMappedImpl(const std::string &path);

    std::string name_;
    unsigned nNodes_ = 0;
    TraceMeta meta_;
    std::vector<CoherenceEvent> events_;
};

} // namespace ccp::trace

#endif // CCP_TRACE_TRACE_HH
