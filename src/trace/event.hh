/**
 * @file
 * CoherenceEvent: one coherence store miss and its sharing outcome.
 *
 * A coherence store miss is any store that must make a block exclusive
 * at the issuing node — a write miss or a write fault (upgrade of a
 * shared copy).  These are exactly the points at which the paper's
 * predictors make a prediction, and the points at which feedback (the
 * invalidated reader set) becomes available.
 */

#ifndef CCP_TRACE_EVENT_HH
#define CCP_TRACE_EVENT_HH

#include <cstdint>
#include <limits>

#include "common/bitmap.hh"
#include "common/types.hh"

namespace ccp::trace {

/** Sentinel for "no previous event on this block". */
inline constexpr EventSeq noEvent =
    std::numeric_limits<EventSeq>::max();

/**
 * One coherence store miss.
 *
 * The *feedback* available at the time of the event is @ref
 * invalidated (the true readers of the version that just died, i.e.
 * the sharing bitmap at invalidation) and the identity of the previous
 * writer.  The *outcome* to be predicted is @ref readers: the true
 * readers of the value written by this event, known only in hindsight
 * (trace finalization fills it in, matching the paper's use of a first
 * pass plus final memory state to simulate ordered update).
 */
struct CoherenceEvent
{
    /** Writer node issuing the store. */
    NodeId pid = 0;
    /** Home (directory) node of the block. */
    NodeId dir = 0;
    /** Static store instruction of the writer. */
    Pc pc = 0;
    /** Block number (byte address >> blockShift). */
    Addr block = 0;

    /**
     * True readers of the previous version of the block — the sharing
     * bitmap at invalidation, excluding the previous writer itself.
     */
    SharingBitmap invalidated;

    /**
     * True readers of the value written by this event (nodes other
     * than @ref pid that obtain a copy before the next coherence store
     * miss on this block, or by the end of the trace).
     */
    SharingBitmap readers;

    /** Static store pc of the previous writer (valid if
     *  hasPrevWriter). */
    Pc prevWriterPc = 0;
    /** Previous writer node (valid if hasPrevWriter). */
    NodeId prevWriterPid = 0;
    /** False for the first write ever observed on this block. */
    bool hasPrevWriter = false;

    /** Sequence number of the previous event on this block. */
    EventSeq prevEvent = noEvent;
};

} // namespace ccp::trace

#endif // CCP_TRACE_EVENT_HH
