/**
 * @file
 * On-disk layout of trace format v4 (see docs/TRACE_FORMAT.md).
 *
 * v4 replaces the v3 field-by-field stream format with a fixed,
 * validated container:
 *
 *   TraceHeader (64 bytes)  magic, version, nNodes, name length,
 *                           event count, payload byte size, and an
 *                           FNV-1a checksum over the payload
 *   payload                 meta block (13 u64) | packed events | name
 *
 * Every event is a fixed 64-byte PackedEvent record, so the payload
 * size is fully determined by the header and a loader can reject a
 * truncated or oversized file *before* allocating anything, and a
 * memory-mapped loader can walk the records in place.  The name is
 * stored last so the meta block and event array stay 8-byte aligned at
 * fixed offsets.
 */

#ifndef CCP_TRACE_FORMAT_HH
#define CCP_TRACE_FORMAT_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "common/types.hh"
#include "trace/event.hh"
#include "trace/trace.hh"

namespace ccp::trace {

/** "CCPT" — unchanged since v1, so old readers fail on version. */
inline constexpr std::uint32_t traceMagic = 0x43435054;

/** Current (and only accepted) trace format version. */
inline constexpr std::uint32_t traceFormatVersion = 4;

/** Upper bound on the stored benchmark-name length. */
inline constexpr std::uint32_t maxTraceNameBytes = 4096;

/**
 * Streaming 64-bit checksum: FNV-1a mixing applied to little-endian
 * 64-bit words (one xor-multiply per 8 bytes) with any tail shorter
 * than a word folded in byte-wise at digest time.  Word-wise mixing
 * keeps checksumming a multi-hundred-MB trace off the load-time
 * critical path (~8x the byte-wise rate) while still changing the
 * digest for any single flipped byte.  The digest is independent of
 * how the input was chunked across update() calls.
 */
class Fnv1a
{
  public:
    void
    update(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        if (pending_len_ > 0) {
            while (n > 0 && pending_len_ < wordBytes) {
                pending_[pending_len_++] = *p++;
                --n;
            }
            if (pending_len_ == wordBytes) {
                std::uint64_t w;
                std::memcpy(&w, pending_, wordBytes);
                mix(w);
                pending_len_ = 0;
            }
        }
        std::uint64_t h = hash_;
        for (; n >= wordBytes; p += wordBytes, n -= wordBytes) {
            std::uint64_t w;
            std::memcpy(&w, p, wordBytes);
            h ^= w;
            h *= prime;
        }
        hash_ = h;
        // pending_len_ is 0 here (the initial drain either emptied the
        // buffer or consumed all input) and n < wordBytes, so the bound
        // never binds -- it exists to make the invariant checkable.
        while (n > 0 && pending_len_ < wordBytes) {
            pending_[pending_len_++] = *p++;
            --n;
        }
    }

    std::uint64_t
    digest() const
    {
        std::uint64_t h = hash_;
        for (std::size_t i = 0; i < pending_len_; ++i) {
            h ^= pending_[i];
            h *= prime;
        }
        return h;
    }

    /** One-shot convenience. */
    static std::uint64_t
    hash(const void *data, std::size_t n)
    {
        Fnv1a f;
        f.update(data, n);
        return f.digest();
    }

  private:
    static constexpr std::size_t wordBytes = 8;
    static constexpr std::uint64_t offsetBasis = 0xcbf29ce484222325ull;
    static constexpr std::uint64_t prime = 0x100000001b3ull;

    void
    mix(std::uint64_t w)
    {
        hash_ ^= w;
        hash_ *= prime;
    }

    std::uint64_t hash_ = offsetBasis;
    unsigned char pending_[wordBytes] = {};
    std::size_t pending_len_ = 0;
};

/**
 * The fixed 64-byte file header.  All fields little-endian (the only
 * byte order this library targets); reserved bytes must be zero.
 */
struct TraceHeader
{
    std::uint32_t magic = traceMagic;
    std::uint32_t version = traceFormatVersion;
    std::uint32_t nNodes = 0;
    std::uint32_t nameBytes = 0;
    std::uint64_t eventCount = 0;
    /** Exact byte size of everything after the header. */
    std::uint64_t payloadBytes = 0;
    /**
     * FNV-1a 64 over the whole file: the header with this field
     * zeroed, then every payload byte in file order.  Covering the
     * header means a flipped bit in *any* file byte is rejected.
     */
    std::uint64_t checksum = 0;
    std::uint8_t reserved[24] = {};
};

static_assert(sizeof(TraceHeader) == 64, "header must stay 64 bytes");
static_assert(std::is_trivially_copyable_v<TraceHeader>);

/**
 * One event as stored on disk: a 64-byte (cache-line sized) record
 * with fixed-width fields, 8-byte alignable, no implicit padding
 * bytes left uninitialized (pad[] is explicit and zeroed).
 */
struct PackedEvent
{
    std::uint64_t pc = 0;
    std::uint64_t block = 0;
    std::uint64_t invalidated = 0;
    std::uint64_t readers = 0;
    std::uint64_t prevWriterPc = 0;
    std::uint64_t prevEvent = 0;
    std::uint32_t pid = 0;
    std::uint32_t dir = 0;
    std::uint32_t prevWriterPid = 0;
    std::uint8_t hasPrevWriter = 0;
    std::uint8_t pad[3] = {};
};

static_assert(sizeof(PackedEvent) == 64, "event record must stay 64 B");
static_assert(alignof(PackedEvent) == 8);
static_assert(std::is_trivially_copyable_v<PackedEvent>);

inline PackedEvent
packEvent(const CoherenceEvent &ev)
{
    PackedEvent p;
    p.pc = ev.pc;
    p.block = ev.block;
    p.invalidated = ev.invalidated.raw();
    p.readers = ev.readers.raw();
    p.prevWriterPc = ev.prevWriterPc;
    p.prevEvent = ev.prevEvent;
    p.pid = ev.pid;
    p.dir = ev.dir;
    p.prevWriterPid = ev.prevWriterPid;
    p.hasPrevWriter = ev.hasPrevWriter ? 1 : 0;
    return p;
}

inline CoherenceEvent
unpackEvent(const PackedEvent &p)
{
    CoherenceEvent ev;
    ev.pc = p.pc;
    ev.block = p.block;
    ev.invalidated = SharingBitmap(p.invalidated);
    ev.readers = SharingBitmap(p.readers);
    ev.prevWriterPc = p.prevWriterPc;
    ev.prevEvent = p.prevEvent;
    ev.pid = p.pid;
    ev.dir = p.dir;
    ev.prevWriterPid = p.prevWriterPid;
    ev.hasPrevWriter = p.hasPrevWriter != 0;
    return ev;
}

/** The meta block: TraceMeta as an explicitly ordered u64 array, so
 *  the file layout never silently follows struct-layout changes. */
inline constexpr std::size_t traceMetaWords = 13;
using PackedMeta = std::array<std::uint64_t, traceMetaWords>;

inline PackedMeta
packMeta(const TraceMeta &m)
{
    return {m.maxStaticStoresPerNode, m.maxPredictedStoresPerNode,
            m.blocksTouched,          m.totalOps,
            m.reads,                  m.writes,
            m.readMisses,             m.writeMisses,
            m.writeFaults,            m.silentUpgrades,
            m.invalidationsSent,      m.downgrades,
            m.interventions};
}

inline TraceMeta
unpackMeta(const PackedMeta &w)
{
    TraceMeta m;
    m.maxStaticStoresPerNode = w[0];
    m.maxPredictedStoresPerNode = w[1];
    m.blocksTouched = w[2];
    m.totalOps = w[3];
    m.reads = w[4];
    m.writes = w[5];
    m.readMisses = w[6];
    m.writeMisses = w[7];
    m.writeFaults = w[8];
    m.silentUpgrades = w[9];
    m.invalidationsSent = w[10];
    m.downgrades = w[11];
    m.interventions = w[12];
    return m;
}

inline constexpr std::uint64_t traceMetaBytes =
    traceMetaWords * sizeof(std::uint64_t);
inline constexpr std::uint64_t traceEventBytes = sizeof(PackedEvent);

/** Hard cap on the event count field: anything above this cannot be a
 *  real trace and is rejected before size arithmetic. */
inline constexpr std::uint64_t maxTraceEvents =
    std::uint64_t(1) << 40;

/**
 * The payload size a header's counts imply, or 0 on overflow/absurd
 * counts.  A valid file's payloadBytes field must equal this exactly.
 */
inline constexpr std::uint64_t
expectedPayloadBytes(std::uint64_t event_count,
                     std::uint32_t name_bytes)
{
    if (event_count > maxTraceEvents || name_bytes > maxTraceNameBytes)
        return 0;
    return traceMetaBytes + event_count * traceEventBytes + name_bytes;
}

/**
 * Structural header validation (no payload access): magic, version,
 * nNodes ∈ [1, maxNodes], bounded name length and event count, and a
 * payloadBytes field consistent with those counts.  @return false
 * with no side effects on any violation.
 */
inline bool
validateHeader(const TraceHeader &h)
{
    if (h.magic != traceMagic || h.version != traceFormatVersion)
        return false;
    if (h.nNodes == 0 || h.nNodes > maxNodes)
        return false;
    if (h.nameBytes > maxTraceNameBytes ||
        h.eventCount > maxTraceEvents)
        return false;
    for (std::uint8_t b : h.reserved)
        if (b != 0)
            return false;
    const std::uint64_t expect =
        expectedPayloadBytes(h.eventCount, h.nameBytes);
    return expect != 0 && h.payloadBytes == expect;
}

/** Seed a checksum with the header, its checksum field zeroed. */
inline Fnv1a
checksumSeed(const TraceHeader &h)
{
    TraceHeader zeroed = h;
    zeroed.checksum = 0;
    Fnv1a sum;
    sum.update(&zeroed, sizeof(zeroed));
    return sum;
}

} // namespace ccp::trace

#endif // CCP_TRACE_FORMAT_HH
