#include "trace/trace.hh"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/logging.hh"

namespace ccp::trace {

namespace {

constexpr std::uint32_t traceMagic = 0x43435054; // "CCPT"
// v3: TraceMeta grew the generation-time protocol counters.  Loading
// rejects other versions, so stale caches regenerate transparently.
constexpr std::uint32_t traceVersion = 3;

template <typename T>
void
put(std::ostream &os, const T &v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
bool
get(std::istream &is, T &v)
{
    is.read(reinterpret_cast<char *>(&v), sizeof(T));
    return bool(is);
}

} // namespace

EventSeq
SharingTrace::append(const CoherenceEvent &ev)
{
    events_.push_back(ev);
    return events_.size() - 1;
}

std::uint64_t
SharingTrace::sharingEvents() const
{
    std::uint64_t total = 0;
    for (const auto &ev : events_)
        total += ev.readers.popcount();
    return total;
}

double
SharingTrace::prevalence() const
{
    auto d = decisions();
    return d ? static_cast<double>(sharingEvents()) /
                   static_cast<double>(d)
             : 0.0;
}

bool
SharingTrace::save(std::ostream &os) const
{
    put(os, traceMagic);
    put(os, traceVersion);

    std::uint32_t name_len = static_cast<std::uint32_t>(name_.size());
    put(os, name_len);
    os.write(name_.data(), name_len);

    put(os, nNodes_);
    put(os, meta_.maxStaticStoresPerNode);
    put(os, meta_.maxPredictedStoresPerNode);
    put(os, meta_.blocksTouched);
    put(os, meta_.totalOps);
    put(os, meta_.reads);
    put(os, meta_.writes);
    put(os, meta_.readMisses);
    put(os, meta_.writeMisses);
    put(os, meta_.writeFaults);
    put(os, meta_.silentUpgrades);
    put(os, meta_.invalidationsSent);
    put(os, meta_.downgrades);
    put(os, meta_.interventions);

    std::uint64_t count = events_.size();
    put(os, count);
    for (const auto &ev : events_) {
        put(os, ev.pid);
        put(os, ev.dir);
        put(os, ev.pc);
        put(os, ev.block);
        put(os, ev.invalidated.raw());
        put(os, ev.readers.raw());
        put(os, ev.prevWriterPc);
        put(os, ev.prevWriterPid);
        std::uint8_t has_prev = ev.hasPrevWriter ? 1 : 0;
        put(os, has_prev);
        put(os, ev.prevEvent);
    }
    return bool(os);
}

bool
SharingTrace::load(std::istream &is)
{
    std::uint32_t magic = 0, version = 0;
    if (!get(is, magic) || magic != traceMagic)
        return false;
    if (!get(is, version) || version != traceVersion)
        return false;

    std::uint32_t name_len = 0;
    if (!get(is, name_len) || name_len > (1u << 20))
        return false;
    name_.resize(name_len);
    is.read(name_.data(), name_len);
    if (!is)
        return false;

    if (!get(is, nNodes_))
        return false;
    if (!get(is, meta_.maxStaticStoresPerNode) ||
        !get(is, meta_.maxPredictedStoresPerNode) ||
        !get(is, meta_.blocksTouched) || !get(is, meta_.totalOps))
        return false;
    if (!get(is, meta_.reads) || !get(is, meta_.writes) ||
        !get(is, meta_.readMisses) || !get(is, meta_.writeMisses) ||
        !get(is, meta_.writeFaults) || !get(is, meta_.silentUpgrades) ||
        !get(is, meta_.invalidationsSent) ||
        !get(is, meta_.downgrades) || !get(is, meta_.interventions))
        return false;

    std::uint64_t count = 0;
    if (!get(is, count))
        return false;
    events_.clear();
    events_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        CoherenceEvent ev;
        std::uint64_t inv_raw = 0, readers_raw = 0;
        std::uint8_t has_prev = 0;
        if (!get(is, ev.pid) || !get(is, ev.dir) || !get(is, ev.pc) ||
            !get(is, ev.block) || !get(is, inv_raw) ||
            !get(is, readers_raw) || !get(is, ev.prevWriterPc) ||
            !get(is, ev.prevWriterPid) || !get(is, has_prev) ||
            !get(is, ev.prevEvent))
            return false;
        ev.invalidated = SharingBitmap(inv_raw);
        ev.readers = SharingBitmap(readers_raw);
        ev.hasPrevWriter = has_prev != 0;
        events_.push_back(ev);
    }
    return true;
}

bool
SharingTrace::saveFile(const std::string &path) const
{
    std::ofstream os(path, std::ios::binary);
    return os && save(os);
}

bool
SharingTrace::loadFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    return is && load(is);
}

} // namespace ccp::trace
