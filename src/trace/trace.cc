#include "trace/trace.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <optional>
#include <ostream>
#include <utility>

#include "common/logging.hh"
#include "obs/trace.hh"
#include "trace/format.hh"

#if defined(__unix__) || defined(__APPLE__)
#define CCP_TRACE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/io.hh"
#endif

namespace ccp::trace {

namespace {

/** Events per I/O chunk on the stream paths (64 KiB buffers). */
constexpr std::size_t eventChunk = 1024;

bool
writeBytes(std::ostream &os, const void *data, std::size_t n)
{
    os.write(static_cast<const char *>(data),
             static_cast<std::streamsize>(n));
    return bool(os);
}

bool
readBytes(std::istream &is, void *data, std::size_t n)
{
    is.read(static_cast<char *>(data),
            static_cast<std::streamsize>(n));
    return bool(is);
}

/**
 * Bytes left in @p is from the current position, or nullopt when the
 * stream is not seekable.  Restores the read position either way.
 */
std::optional<std::uint64_t>
remainingBytes(std::istream &is)
{
    const std::istream::pos_type cur = is.tellg();
    if (cur == std::istream::pos_type(-1)) {
        is.clear();
        return std::nullopt;
    }
    is.seekg(0, std::ios::end);
    const std::istream::pos_type end = is.tellg();
    is.seekg(cur);
    if (end == std::istream::pos_type(-1) || !is) {
        is.clear();
        is.seekg(cur);
        return std::nullopt;
    }
    return static_cast<std::uint64_t>(end - cur);
}

} // namespace

EventSeq
SharingTrace::append(const CoherenceEvent &ev)
{
    events_.push_back(ev);
    return events_.size() - 1;
}

std::uint64_t
SharingTrace::sharingEvents() const
{
    std::uint64_t total = 0;
    for (const auto &ev : events_)
        total += ev.readers.popcount();
    return total;
}

double
SharingTrace::prevalence() const
{
    auto d = decisions();
    return d ? static_cast<double>(sharingEvents()) /
                   static_cast<double>(d)
             : 0.0;
}

bool
SharingTrace::save(std::ostream &os) const
{
    if (nNodes_ == 0 || nNodes_ > maxNodes) {
        ccp_warn("trace '", name_, "': cannot save with nNodes ",
                 nNodes_, " (want 1..", maxNodes, ")");
        return false;
    }
    if (name_.size() > maxTraceNameBytes)
        return false;

    TraceHeader h;
    h.nNodes = nNodes_;
    h.nameBytes = static_cast<std::uint32_t>(name_.size());
    h.eventCount = events_.size();
    h.payloadBytes = expectedPayloadBytes(h.eventCount, h.nameBytes);
    if (h.payloadBytes == 0)
        return false;

    const PackedMeta meta = packMeta(meta_);

    // Pass 1: checksum the file exactly as it will be written
    // (header with zeroed checksum field, then the payload).
    Fnv1a sum = checksumSeed(h);
    sum.update(meta.data(), sizeof(meta));
    for (const auto &ev : events_) {
        const PackedEvent p = packEvent(ev);
        sum.update(&p, sizeof(p));
    }
    sum.update(name_.data(), name_.size());
    h.checksum = sum.digest();

    // Pass 2: header, then the payload in chunked writes.
    if (!writeBytes(os, &h, sizeof(h)) ||
        !writeBytes(os, meta.data(), sizeof(meta)))
        return false;
    std::vector<PackedEvent> buf;
    buf.reserve(std::min(events_.size(), eventChunk));
    for (std::size_t i = 0; i < events_.size();) {
        buf.clear();
        const std::size_t n =
            std::min(eventChunk, events_.size() - i);
        for (std::size_t k = 0; k < n; ++k)
            buf.push_back(packEvent(events_[i + k]));
        if (!writeBytes(os, buf.data(), n * sizeof(PackedEvent)))
            return false;
        i += n;
    }
    return writeBytes(os, name_.data(), name_.size());
}

bool
SharingTrace::load(std::istream &is)
{
    TraceHeader h;
    if (!readBytes(is, &h, sizeof(h)))
        return false;
    if (!validateHeader(h)) {
        if (h.magic == traceMagic &&
            h.version != traceFormatVersion)
            ccp_debug("trace load: rejecting format v", h.version,
                      " (want v", traceFormatVersion, ")");
        else if (h.magic == traceMagic &&
                 (h.nNodes == 0 || h.nNodes > maxNodes))
            ccp_warn("trace load: bad node count ", h.nNodes,
                     " (want 1..", maxNodes, ")");
        return false;
    }

    // Bound the event count by the bytes actually present before any
    // allocation: a corrupt count field must not drive a huge
    // reserve().  Unseekable streams fall back to chunked growth.
    const auto remaining = remainingBytes(is);
    if (remaining && *remaining < h.payloadBytes)
        return false;

    Fnv1a sum = checksumSeed(h);

    PackedMeta meta_words;
    if (!readBytes(is, meta_words.data(), sizeof(meta_words)))
        return false;
    sum.update(meta_words.data(), sizeof(meta_words));

    std::vector<CoherenceEvent> events;
    events.reserve(remaining
                       ? h.eventCount
                       : std::min<std::uint64_t>(h.eventCount,
                                                 eventChunk));
    std::vector<PackedEvent> buf;
    buf.resize(std::min<std::uint64_t>(h.eventCount, eventChunk));
    for (std::uint64_t left = h.eventCount; left > 0;) {
        const std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(left, eventChunk));
        if (!readBytes(is, buf.data(), n * sizeof(PackedEvent)))
            return false;
        sum.update(buf.data(), n * sizeof(PackedEvent));
        for (std::size_t k = 0; k < n; ++k)
            events.push_back(unpackEvent(buf[k]));
        left -= n;
    }

    std::string name(h.nameBytes, '\0');
    if (h.nameBytes > 0 && !readBytes(is, name.data(), h.nameBytes))
        return false;
    sum.update(name.data(), name.size());

    if (sum.digest() != h.checksum) {
        ccp_warn("trace load: checksum mismatch for '", name, "'");
        return false;
    }

    // Full success: only now touch the destination trace.
    name_ = std::move(name);
    nNodes_ = h.nNodes;
    meta_ = unpackMeta(meta_words);
    events_ = std::move(events);
    return true;
}

bool
SharingTrace::saveFile(const std::string &path) const
{
    CCP_TRACE_SPAN("trace", "trace.save_file");
    // Unique-per-writer temp name in the same directory, so rename()
    // is atomic and concurrent writers of the same cache entry never
    // clobber each other's half-written bytes.
    static std::atomic<unsigned> seq{0};
    std::string tmp = path + ".tmp.";
#if CCP_TRACE_HAVE_MMAP
    tmp += std::to_string(static_cast<long>(::getpid())) + ".";
#endif
    tmp += std::to_string(seq.fetch_add(1, std::memory_order_relaxed));

    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os || !save(os)) {
            os.close();
            std::remove(tmp.c_str());
            return false;
        }
        os.flush();
        if (!os) {
            os.close();
            std::remove(tmp.c_str());
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
SharingTrace::loadFile(const std::string &path)
{
    switch (loadMappedImpl(path)) {
      case MapLoad::Ok:
        return true;
      case MapLoad::Invalid:
        return false;
      case MapLoad::Unavailable:
        break;
    }
    return loadFileStream(path);
}

bool
SharingTrace::loadFileStream(const std::string &path)
{
    CCP_TRACE_SPAN("trace", "trace.load_stream");
    std::ifstream is(path, std::ios::binary);
    return is && load(is);
}

bool
SharingTrace::loadFileMapped(const std::string &path)
{
    return loadMappedImpl(path) == MapLoad::Ok;
}

#if CCP_TRACE_HAVE_MMAP

namespace {

/** RAII file descriptor: every return path — short file, bad stat,
 *  mmap failure, checksum reject — closes exactly once, so a cache
 *  that rejects and regenerates in a loop cannot leak descriptors
 *  (tests/trace_cache_test.cc loops reject+regenerate and asserts
 *  the process fd count stays flat). */
struct ScopedFd
{
    int fd = -1;

    explicit ScopedFd(int f) : fd(f) {}
    ScopedFd(const ScopedFd &) = delete;
    ScopedFd &operator=(const ScopedFd &) = delete;

    ~ScopedFd()
    {
        if (fd >= 0)
            ::close(fd);
    }
};

/** RAII mapping of a whole file, read-only. */
struct FileMapping
{
    const unsigned char *data = nullptr;
    std::uint64_t size = 0;

    ~FileMapping()
    {
        if (data)
            ::munmap(const_cast<unsigned char *>(data), size);
    }
};

} // namespace

SharingTrace::MapLoad
SharingTrace::loadMappedImpl(const std::string &path)
{
    CCP_TRACE_SPAN("trace", "trace.load_mmap");
    const ScopedFd fd(io::openRetry(path.c_str(), O_RDONLY));
    if (fd.fd < 0)
        return MapLoad::Unavailable;
    struct stat st;
    if (::fstat(fd.fd, &st) != 0 || !S_ISREG(st.st_mode))
        return MapLoad::Unavailable;
    const std::uint64_t size = static_cast<std::uint64_t>(st.st_size);
    if (size < sizeof(TraceHeader))
        return MapLoad::Invalid;
    int flags = MAP_PRIVATE;
#ifdef MAP_POPULATE
    // Prefault the whole mapping in one syscall instead of ~size/4K
    // minor faults during the scan.
    flags |= MAP_POPULATE;
#endif
    void *map = ::mmap(nullptr, size, PROT_READ, flags, fd.fd, 0);
#ifdef MAP_POPULATE
    if (map == MAP_FAILED)
        map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd.fd, 0);
#endif
    // The mapping holds its own reference; the descriptor is done
    // (ScopedFd closes it at scope exit on every path below too).
    if (map == MAP_FAILED)
        return MapLoad::Unavailable;
    FileMapping m;
    m.data = static_cast<const unsigned char *>(map);
    m.size = size;
#ifdef MADV_SEQUENTIAL
    ::madvise(map, size, MADV_SEQUENTIAL);
#endif

    TraceHeader h;
    std::memcpy(&h, m.data, sizeof(h));
    if (!validateHeader(h))
        return MapLoad::Invalid;
    // The file must be exactly header + payload: a truncated *or*
    // padded file is corrupt, not loadable.
    if (size != sizeof(TraceHeader) + h.payloadBytes)
        return MapLoad::Invalid;

    // Single pass: checksum and unpack interleaved in chunks, so each
    // mapped page is touched once and stays cache-hot between the two
    // uses.
    const unsigned char *payload = m.data + sizeof(TraceHeader);
    Fnv1a sum = checksumSeed(h);

    PackedMeta meta_words;
    std::memcpy(meta_words.data(), payload, sizeof(meta_words));
    sum.update(payload, traceMetaBytes);
    const unsigned char *records = payload + traceMetaBytes;

    std::vector<CoherenceEvent> events;
    events.reserve(h.eventCount);
    for (std::uint64_t i = 0; i < h.eventCount;) {
        const std::uint64_t n =
            std::min<std::uint64_t>(h.eventCount - i, 1024);
        const unsigned char *chunk =
            records + i * sizeof(PackedEvent);
        sum.update(chunk, n * sizeof(PackedEvent));
        for (std::uint64_t k = 0; k < n; ++k) {
            PackedEvent p;
            std::memcpy(&p, chunk + k * sizeof(PackedEvent),
                        sizeof(p));
            events.push_back(unpackEvent(p));
        }
        i += n;
    }

    const unsigned char *name_bytes =
        records + h.eventCount * sizeof(PackedEvent);
    sum.update(name_bytes, h.nameBytes);
    if (sum.digest() != h.checksum) {
        ccp_warn("trace mmap load: checksum mismatch in ", path);
        return MapLoad::Invalid;
    }

    name_.assign(reinterpret_cast<const char *>(name_bytes),
                 h.nameBytes);
    nNodes_ = h.nNodes;
    meta_ = unpackMeta(meta_words);
    events_ = std::move(events);
    return MapLoad::Ok;
}

#else // !CCP_TRACE_HAVE_MMAP

SharingTrace::MapLoad
SharingTrace::loadMappedImpl(const std::string &)
{
    return MapLoad::Unavailable;
}

#endif

} // namespace ccp::trace
