/**
 * @file
 * Scheme selection under a bandwidth budget.
 *
 * The paper's conclusion frames predictor choice as a bandwidth-
 * latency trade: "on a machine with a very busy communications
 * network, only sure bets should be made", while spare bandwidth
 * favours high-sensitivity schemes.  This module operationalizes
 * that: given candidate schemes and a per-event forwarding-traffic
 * budget, pick the scheme that hides the most latency while staying
 * within budget.
 */

#ifndef CCP_FORWARD_SELECTOR_HH
#define CCP_FORWARD_SELECTOR_HH

#include <optional>
#include <vector>

#include "forward/forwarding.hh"

namespace ccp::forward {

/** The budget and replay settings for selection. */
struct SelectionConstraints
{
    /**
     * Maximum forwarding traffic allowed, in byte-hops per coherence
     * store miss (averaged over the suite).  Infinity = latency-only
     * selection.
     */
    double maxByteHopsPerEvent = 1e300;
    /** Maximum predictor cost in bits; 0 = unconstrained. */
    std::uint64_t maxSizeBits = 0;
    predict::UpdateMode mode = predict::UpdateMode::Direct;
    ForwardingParams params;
};

/** A scored candidate. */
struct SelectionCandidate
{
    predict::SchemeSpec scheme;
    ForwardingResult pooled;   ///< summed over the suite
    double byteHopsPerEvent = 0.0;
    bool withinBudget = false;
};

/** The selection outcome: every candidate scored, plus the winner. */
struct SelectionResult
{
    std::vector<SelectionCandidate> candidates;
    /** Index into candidates, or nullopt if nothing fits. */
    std::optional<std::size_t> best;
};

/**
 * Replay every candidate over the suite with forwarding enabled and
 * select the in-budget scheme with the most cycles saved (ties break
 * toward less traffic, then the smaller table).
 */
SelectionResult
selectScheme(const std::vector<trace::SharingTrace> &traces,
             const std::vector<predict::SchemeSpec> &candidates,
             const SelectionConstraints &constraints);

} // namespace ccp::forward

#endif // CCP_FORWARD_SELECTOR_HH
