/**
 * @file
 * Data-forwarding overlay: the optimization layer the paper describes
 * in section 3.3 but leaves out of its evaluation (this module is the
 * repository's extension of the study).
 *
 * The overlay replays a coherence trace with a prediction scheme; at
 * each coherence store miss it forwards the block to every predicted
 * reader, in the style of Koufaty & Torrellas' directory-initiated
 * forwarding.  A forward to a true reader converts that reader's
 * remote read miss into a local hit (saving remote minus local
 * latency); a forward to a non-reader is pure wasted traffic.  The
 * torus model prices the messages so the bandwidth-latency trade-off
 * of high-sensitivity versus high-PVP schemes (paper section 6)
 * becomes quantitative.
 */

#ifndef CCP_FORWARD_FORWARDING_HH
#define CCP_FORWARD_FORWARDING_HH

#include <cstdint>

#include "net/torus.hh"
#include "predict/evaluator.hh"
#include "trace/trace.hh"

namespace ccp::forward {

/** Knobs of the forwarding overlay. */
struct ForwardingParams
{
    net::TorusParams torus;
    /** Torus width for the machine (height derived). */
    unsigned torusWidth = 4;
    /**
     * Fraction of useful forwards that arrive in time to hide the
     * miss (late forwards still consume bandwidth but save nothing).
     */
    double timelyFraction = 0.85;
};

/** Outcome of replaying one trace with forwarding enabled. */
struct ForwardingResult
{
    std::uint64_t events = 0;
    std::uint64_t forwardsSent = 0;    ///< predicted-positive bits
    std::uint64_t usefulForwards = 0;  ///< true positives
    std::uint64_t wastedForwards = 0;  ///< false positives
    std::uint64_t missedReaders = 0;   ///< false negatives

    /** Remote read misses hidden by timely useful forwards. */
    std::uint64_t missesAvoided = 0;
    /** Modelled cycles saved across all avoided misses. */
    Cycles cyclesSaved = 0;
    /** Bytes of forwarding traffic injected (all forwards). */
    std::uint64_t forwardBytes = 0;
    /** Byte-hops of forwarding traffic on the torus. */
    std::uint64_t forwardByteHops = 0;
    /** Bytes of request/response traffic saved by avoided misses. */
    std::uint64_t bytesSaved = 0;

    /** Useful fraction of forwarding traffic (== scheme PVP). */
    double pvp() const;
    /** Fraction of sharing opportunities captured (== sensitivity). */
    double sensitivity() const;
    /** Net traffic cost in byte-hops per cycle saved. */
    double byteHopsPerCycleSaved() const;
};

/**
 * Replay @p trace with @p scheme under @p mode and simulate
 * forwarding.  Deterministic: the timely-arrival draw is seeded.
 */
ForwardingResult
simulateForwarding(const trace::SharingTrace &trace,
                   const predict::SchemeSpec &scheme,
                   predict::UpdateMode mode,
                   const ForwardingParams &params = ForwardingParams(),
                   std::uint64_t seed = 0xf02d);

} // namespace ccp::forward

#endif // CCP_FORWARD_FORWARDING_HH
