#include "forward/selector.hh"

#include "common/logging.hh"

namespace ccp::forward {

namespace {

void
accumulate(ForwardingResult &into, const ForwardingResult &part)
{
    into.events += part.events;
    into.forwardsSent += part.forwardsSent;
    into.usefulForwards += part.usefulForwards;
    into.wastedForwards += part.wastedForwards;
    into.missedReaders += part.missedReaders;
    into.missesAvoided += part.missesAvoided;
    into.cyclesSaved += part.cyclesSaved;
    into.forwardBytes += part.forwardBytes;
    into.forwardByteHops += part.forwardByteHops;
    into.bytesSaved += part.bytesSaved;
}

} // namespace

SelectionResult
selectScheme(const std::vector<trace::SharingTrace> &traces,
             const std::vector<predict::SchemeSpec> &candidates,
             const SelectionConstraints &constraints)
{
    ccp_assert(!traces.empty(), "selection needs at least one trace");
    SelectionResult result;
    result.candidates.reserve(candidates.size());
    const unsigned n_nodes = traces.front().nNodes();

    for (const auto &scheme : candidates) {
        SelectionCandidate cand;
        cand.scheme = scheme;
        for (const auto &tr : traces) {
            auto part = simulateForwarding(tr, scheme, constraints.mode,
                                           constraints.params);
            accumulate(cand.pooled, part);
        }
        cand.byteHopsPerEvent =
            cand.pooled.events
                ? static_cast<double>(cand.pooled.forwardByteHops) /
                      static_cast<double>(cand.pooled.events)
                : 0.0;
        cand.withinBudget =
            cand.byteHopsPerEvent <= constraints.maxByteHopsPerEvent &&
            (constraints.maxSizeBits == 0 ||
             scheme.sizeBits(n_nodes) <= constraints.maxSizeBits);
        result.candidates.push_back(std::move(cand));
    }

    for (std::size_t i = 0; i < result.candidates.size(); ++i) {
        const auto &cand = result.candidates[i];
        if (!cand.withinBudget)
            continue;
        if (!result.best) {
            result.best = i;
            continue;
        }
        const auto &best = result.candidates[*result.best];
        if (cand.pooled.cyclesSaved != best.pooled.cyclesSaved) {
            if (cand.pooled.cyclesSaved > best.pooled.cyclesSaved)
                result.best = i;
        } else if (cand.pooled.forwardByteHops !=
                   best.pooled.forwardByteHops) {
            if (cand.pooled.forwardByteHops <
                best.pooled.forwardByteHops)
                result.best = i;
        } else if (cand.scheme.sizeBits(n_nodes) <
                   best.scheme.sizeBits(n_nodes)) {
            result.best = i;
        }
    }
    return result;
}

} // namespace ccp::forward
