#include "forward/forwarding.hh"

#include "common/logging.hh"
#include "common/rng.hh"

namespace ccp::forward {

using predict::UpdateMode;

double
ForwardingResult::pvp() const
{
    return forwardsSent
               ? static_cast<double>(usefulForwards) /
                     static_cast<double>(forwardsSent)
               : 1.0;
}

double
ForwardingResult::sensitivity() const
{
    std::uint64_t actual = usefulForwards + missedReaders;
    return actual ? static_cast<double>(usefulForwards) /
                        static_cast<double>(actual)
                  : 1.0;
}

double
ForwardingResult::byteHopsPerCycleSaved() const
{
    return cyclesSaved ? static_cast<double>(forwardByteHops) /
                             static_cast<double>(cyclesSaved)
                       : 0.0;
}

ForwardingResult
simulateForwarding(const trace::SharingTrace &trace,
                   const predict::SchemeSpec &scheme, UpdateMode mode,
                   const ForwardingParams &params, std::uint64_t seed)
{
    const unsigned n = trace.nNodes();
    ccp_assert(params.torusWidth >= 1 && n % params.torusWidth == 0,
               "torus width must divide node count");
    net::Torus2D torus(params.torusWidth, n / params.torusWidth,
                       params.torus);
    predict::PredictorTable table = scheme.makeTable(n);
    Rng rng(seed);

    ForwardingResult res;
    const Cycles saved_per_miss =
        params.torus.remoteLatency - params.torus.localLatency;
    const unsigned data_bytes = params.torus.dataMessageBytes;
    const unsigned ctrl_bytes = params.torus.controlMessageBytes;

    std::vector<SharingBitmap> ordered_fb;
    if (mode == UpdateMode::Ordered)
        ordered_fb = predict::orderedFeedback(trace);

    EventSeq seq = 0;
    for (const auto &ev : trace.events()) {
        SharingBitmap pred;
        switch (mode) {
          case UpdateMode::Direct:
            if (ev.hasPrevWriter)
                table.update(ev.pid, ev.pc, ev.dir, ev.block,
                             ev.invalidated);
            pred = table.predict(ev.pid, ev.pc, ev.dir, ev.block);
            break;
          case UpdateMode::Forwarded:
            if (ev.hasPrevWriter)
                table.update(ev.prevWriterPid, ev.prevWriterPc, ev.dir,
                             ev.block, ev.invalidated);
            pred = table.predict(ev.pid, ev.pc, ev.dir, ev.block);
            break;
          case UpdateMode::Ordered:
            pred = table.predict(ev.pid, ev.pc, ev.dir, ev.block);
            table.update(ev.pid, ev.pc, ev.dir, ev.block,
                         ordered_fb[seq]);
            break;
        }
        ++seq;

        ++res.events;
        pred = pred & SharingBitmap::all(n);
        // Never forward to the writer itself.
        pred.reset(ev.pid);

        for (NodeId node = 0; node < n; ++node) {
            bool predicted = pred.test(node);
            bool reads = ev.readers.test(node);
            if (predicted) {
                ++res.forwardsSent;
                // Directory-initiated forward: writer -> home is part
                // of the normal ownership transaction; the forward
                // itself is one data message home -> reader.
                unsigned hops =
                    torus.sendMessage(ev.dir, node, data_bytes);
                res.forwardBytes += data_bytes;
                res.forwardByteHops +=
                    std::uint64_t(hops) * data_bytes;
                if (reads) {
                    ++res.usefulForwards;
                    if (rng.chance(params.timelyFraction)) {
                        ++res.missesAvoided;
                        res.cyclesSaved += saved_per_miss;
                        // The reader skips its request + response.
                        res.bytesSaved += ctrl_bytes + data_bytes;
                    }
                } else {
                    ++res.wastedForwards;
                }
            } else if (reads) {
                ++res.missedReaders;
            }
        }
    }
    return res;
}

} // namespace ccp::forward
