#include "forward/online.hh"

namespace ccp::forward {

OnlineForwarder::OnlineForwarder(const predict::SchemeSpec &scheme,
                                 unsigned n_nodes)
    : table_(scheme.makeTable(n_nodes))
{
}

void
OnlineForwarder::attach(mem::CoherenceController &ctl)
{
    ctl.setForwardHook([this](const trace::CoherenceEvent &ev) {
        // Direct update: the invalidation feedback the event carries
        // is folded in first, then the new version's readers are
        // predicted.  Thanks to the access-bit reporting in the
        // protocol, ev.invalidated contains true readers only, even
        // though the directory's sharer set was polluted by our own
        // earlier forwards.
        if (ev.hasPrevWriter)
            table_.update(ev.pid, ev.pc, ev.dir, ev.block,
                          ev.invalidated);
        return table_.predict(ev.pid, ev.pc, ev.dir, ev.block);
    });
}

} // namespace ccp::forward
