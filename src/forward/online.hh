/**
 * @file
 * OnlineForwarder: closes the loop the paper leaves open.
 *
 * The paper evaluates predictors in isolation ("an actual data
 * forwarding protocol remains outside the scope of our work", §3.3);
 * this class runs one *inside* the machine: it attaches a predictor
 * to the coherence controller's forwarding hook, so every coherence
 * store miss pushes the new value into the predicted readers' caches.
 * The protocol then charges the real costs — the writer yields its
 * write permission (footnote 3, turning later stores into write
 * faults), forwarded fills can evict useful lines (pollution), and
 * unaccessed forwards are counted wasted when invalidated — while
 * access bits keep the feedback bitmaps limited to true readers
 * (§3.4), so prediction quality is unaffected by its own speculation.
 */

#ifndef CCP_FORWARD_ONLINE_HH
#define CCP_FORWARD_ONLINE_HH

#include "mem/protocol.hh"
#include "predict/evaluator.hh"

namespace ccp::forward {

/**
 * A direct-update predictor wired into a live machine.
 *
 * The forwarder must outlive the controller's use of the hook (or
 * the hook must be cleared first).
 */
class OnlineForwarder
{
  public:
    /** @param scheme  Prediction scheme to run online.
     *  @param n_nodes Machine size. */
    OnlineForwarder(const predict::SchemeSpec &scheme, unsigned n_nodes);

    /** Install this predictor as @p ctl's forwarding hook. */
    void attach(mem::CoherenceController &ctl);

    /** The live predictor state (e.g. for inspection in tests). */
    const predict::PredictorTable &table() const { return table_; }

  private:
    predict::PredictorTable table_;
};

} // namespace ccp::forward

#endif // CCP_FORWARD_ONLINE_HH
