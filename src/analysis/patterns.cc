#include "analysis/patterns.hh"

#include <unordered_map>
#include <vector>

#include "common/bitmap.hh"
#include "common/logging.hh"

namespace ccp::analysis {

const char *
sharingPatternName(SharingPattern pattern)
{
    switch (pattern) {
      case SharingPattern::Unshared:
        return "unshared";
      case SharingPattern::ProducerConsumer:
        return "producer-consumer";
      case SharingPattern::Migratory:
        return "migratory";
      case SharingPattern::WideShared:
        return "wide-shared";
      case SharingPattern::Irregular:
        return "irregular";
      case SharingPattern::NumPatterns:
        break;
    }
    ccp_panic("bad SharingPattern");
}

std::uint64_t
TraceAnalysis::totalBlocks() const
{
    std::uint64_t total = 0;
    for (auto b : blocks)
        total += b;
    return total;
}

std::uint64_t
TraceAnalysis::totalEvents() const
{
    std::uint64_t total = 0;
    for (auto e : events)
        total += e;
    return total;
}

double
TraceAnalysis::blockFraction(SharingPattern pattern) const
{
    auto total = totalBlocks();
    return total ? static_cast<double>(
                       blocks[static_cast<std::size_t>(pattern)]) /
                       static_cast<double>(total)
                 : 0.0;
}

double
TraceAnalysis::eventFraction(SharingPattern pattern) const
{
    auto total = totalEvents();
    return total ? static_cast<double>(
                       events[static_cast<std::size_t>(pattern)]) /
                       static_cast<double>(total)
                 : 0.0;
}

namespace {

/** Per-block accumulation while walking the trace. */
struct BlockChain
{
    std::uint64_t events = 0;
    std::uint64_t readerBits = 0;
    std::uint64_t migratoryHandoffs = 0;
    std::uint64_t handoffCandidates = 0;
    double jaccardSum = 0.0;
    std::uint64_t jaccardCount = 0;
    SharingBitmap lastReaders;
    bool hasLastReaders = false;
};

double
jaccard(const SharingBitmap &a, const SharingBitmap &b)
{
    unsigned uni = (a | b).popcount();
    if (uni == 0)
        return 1.0; // both empty: perfectly stable emptiness
    return static_cast<double>((a & b).popcount()) /
           static_cast<double>(uni);
}

SharingPattern
classify(const BlockChain &chain, unsigned n_nodes,
         const PatternRules &rules)
{
    double mean_readers =
        static_cast<double>(chain.readerBits) /
        static_cast<double>(chain.events);

    if (chain.readerBits == 0)
        return SharingPattern::Unshared;
    if (chain.events < rules.minEvents)
        return SharingPattern::Unshared;

    if (mean_readers >= rules.wideFraction * n_nodes)
        return SharingPattern::WideShared;

    if (chain.handoffCandidates > 0) {
        double handoff =
            static_cast<double>(chain.migratoryHandoffs) /
            static_cast<double>(chain.handoffCandidates);
        if (handoff >= rules.migratoryFraction && mean_readers <= 1.5)
            return SharingPattern::Migratory;
    }

    if (chain.jaccardCount > 0) {
        double stability =
            chain.jaccardSum / static_cast<double>(chain.jaccardCount);
        if (stability >= rules.stabilityThreshold)
            return SharingPattern::ProducerConsumer;
    }
    return SharingPattern::Irregular;
}

} // namespace

TraceAnalysis
analyzeTrace(const trace::SharingTrace &trace, const PatternRules &rules)
{
    TraceAnalysis out;
    out.traceName = trace.name();
    out.nNodes = trace.nNodes();

    std::unordered_map<Addr, BlockChain> chains;
    for (const auto &ev : trace.events()) {
        BlockChain &chain = chains[ev.block];
        ++chain.events;
        unsigned readers = ev.readers.popcount();
        chain.readerBits += readers;
        out.invalidationDegree.add(readers);
        out.readersPerEvent.add(static_cast<double>(readers));

        if (ev.hasPrevWriter && chain.hasLastReaders) {
            // Did the previous version hand off to this writer?
            ++chain.handoffCandidates;
            if (chain.lastReaders.popcount() <= 1 &&
                chain.lastReaders.test(ev.pid))
                ++chain.migratoryHandoffs;
            chain.jaccardSum += jaccard(chain.lastReaders, ev.readers);
            ++chain.jaccardCount;
        }
        chain.lastReaders = ev.readers;
        chain.hasLastReaders = true;
    }

    for (const auto &[block, chain] : chains) {
        (void)block;
        SharingPattern p = classify(chain, out.nNodes, rules);
        ++out.blocks[static_cast<std::size_t>(p)];
        out.events[static_cast<std::size_t>(p)] += chain.events;
    }
    return out;
}

} // namespace ccp::analysis
