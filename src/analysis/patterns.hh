/**
 * @file
 * Sharing-pattern analysis of coherence traces.
 *
 * The paper frames prediction as covering *all* sharing patterns —
 * migratory, wide, producer-consumer (citing Weber & Gupta's
 * invalidation-pattern analysis and Kaxiras & Goodman's pattern
 * optimizations) — without any filter distinguishing them.  This
 * module supplies that missing lens: it classifies every block's
 * event chain into the classic patterns and computes the
 * invalidation-degree histogram, so the per-benchmark predictor
 * results can be explained in terms of the pattern mix.
 */

#ifndef CCP_ANALYSIS_PATTERNS_HH
#define CCP_ANALYSIS_PATTERNS_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/stats.hh"
#include "trace/trace.hh"

namespace ccp::analysis {

/** The classic sharing patterns (Weber & Gupta; Kaxiras's thesis). */
enum class SharingPattern : std::uint8_t
{
    /** Written but never read remotely. */
    Unshared,
    /**
     * Stable writer(s) and a recurring reader set: the static
     * producer-consumer pattern prediction exploits best.
     */
    ProducerConsumer,
    /** Ownership chases the (single) reader: lock-style migration. */
    Migratory,
    /** Read by a large fraction of the machine per version. */
    WideShared,
    /** Everything else (unstable readers and writers). */
    Irregular,

    NumPatterns,
};

constexpr std::size_t numPatterns =
    static_cast<std::size_t>(SharingPattern::NumPatterns);

const char *sharingPatternName(SharingPattern pattern);

/** Classification thresholds (documented heuristics). */
struct PatternRules
{
    /** Minimum events for a block to be classified at all;
     *  below this it counts as Unshared/cold. */
    unsigned minEvents = 2;
    /** A version is "migratory" if its sole reader is the next
     *  writer; blocks need at least this fraction of such handoffs. */
    double migratoryFraction = 0.5;
    /** Mean readers per version at or above this fraction of the
     *  machine makes a block wide-shared. */
    double wideFraction = 0.25;
    /** Mean Jaccard similarity of consecutive reader sets at or
     *  above this makes a block producer-consumer. */
    double stabilityThreshold = 0.5;
};

/** Aggregate analysis of one trace. */
struct TraceAnalysis
{
    std::string traceName;
    unsigned nNodes = 0;

    /** Blocks and coherence events attributed to each pattern. */
    std::array<std::uint64_t, numPatterns> blocks{};
    std::array<std::uint64_t, numPatterns> events{};

    /** Invalidation degree: readers per version (Weber & Gupta). */
    Histogram invalidationDegree{maxNodes + 1};

    /** Mean readers per version (== 16 x prevalence for 16 nodes). */
    Summary readersPerEvent;

    std::uint64_t totalBlocks() const;
    std::uint64_t totalEvents() const;
    double blockFraction(SharingPattern pattern) const;
    double eventFraction(SharingPattern pattern) const;
};

/** Classify every block of @p trace. */
TraceAnalysis analyzeTrace(const trace::SharingTrace &trace,
                           const PatternRules &rules = PatternRules());

} // namespace ccp::analysis

#endif // CCP_ANALYSIS_PATTERNS_HH
