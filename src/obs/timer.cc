#include "obs/timer.hh"

#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace ccp::obs {

std::string
formatDuration(double seconds)
{
    char buf[48];
    if (seconds < 0)
        seconds = 0;
    if (seconds < 60.0) {
        std::snprintf(buf, sizeof(buf), "%.1fs", seconds);
    } else if (seconds < 3600.0) {
        unsigned m = static_cast<unsigned>(seconds) / 60;
        unsigned s = static_cast<unsigned>(seconds) % 60;
        std::snprintf(buf, sizeof(buf), "%um%02us", m, s);
    } else {
        unsigned h = static_cast<unsigned>(seconds) / 3600;
        unsigned m = (static_cast<unsigned>(seconds) % 3600) / 60;
        std::snprintf(buf, sizeof(buf), "%uh%02um", h, m);
    }
    return buf;
}

ProgressReporter::ProgressReporter(std::string label,
                                   double minIntervalSec,
                                   unsigned minPctStep)
    : label_(std::move(label)), minIntervalSec_(minIntervalSec),
      minPctStep_(minPctStep)
{
}

void
ProgressReporter::operator()(const Progress &p)
{
    if (logLevel() < LogLevel::Info)
        return;

    std::lock_guard<std::mutex> lock(mutex_);

    // Late arrival from a slower worker: a line for this completion
    // level (or beyond) is already out, so printing would repeat it or
    // make the visible done count move backwards.
    if (lastPrintSec_ >= 0.0 && p.done <= lastDone_)
        return;

    bool finished = p.total > 0 && p.done >= p.total;
    unsigned pct =
        p.total ? static_cast<unsigned>(p.done * 100 / p.total) : 0;

    // Epoch gating: enough wall time AND enough percent movement
    // since the last line (so fast sweeps print every minPctStep_ and
    // slow ones at most every interval).
    if (!finished) {
        if (lastPrintSec_ >= 0.0 &&
            p.elapsedSec - lastPrintSec_ < minIntervalSec_)
            return;
        if (pct < lastPct_ + minPctStep_)
            return;
    }
    lastPrintSec_ = p.elapsedSec;
    lastPct_ = pct;
    lastDone_ = p.done;

    // Resumed runs carry their checkpoint baseline on every line so
    // "34/40 (85%)" right after startup reads as resume, not magic.
    char resumed[48] = "";
    if (p.resumed > 0)
        std::snprintf(resumed, sizeof(resumed), ", %zu resumed",
                      p.resumed);

    if (finished) {
        // The rate already covers freshly processed items only (the
        // meter subtracts the resumed baseline), so a resumed run's
        // final line reports true throughput, not checkpoint magic.
        std::fprintf(stderr,
                     "[%s] %zu/%zu (100%%) in %s (%.1f/s%s)\n",
                     label_.c_str(), p.done, p.total,
                     formatDuration(p.elapsedSec).c_str(), p.perSec,
                     resumed);
        // The final line must land even when stderr is a fully
        // buffered pipe (CI logs) and the process exits via _exit
        // or a signal before stdio teardown.
        std::fflush(stderr);
    } else if (p.perSec > 0.0) {
        std::fprintf(stderr,
                     "[%s] %zu/%zu (%u%%) %.1f/s, ETA %s%s\n",
                     label_.c_str(), p.done, p.total, pct, p.perSec,
                     formatDuration(p.etaSec).c_str(), resumed);
    } else {
        std::fprintf(stderr, "[%s] %zu/%zu (%u%%%s)\n",
                     label_.c_str(), p.done, p.total, pct, resumed);
    }
}

} // namespace ccp::obs
