#include "obs/registry.hh"

#include <sstream>

#include "common/logging.hh"

namespace ccp::obs {

namespace {

const char *
kindName(std::size_t index)
{
    switch (index) {
      case 0:
        return "counter";
      case 1:
        return "scalar";
      case 2:
        return "summary";
      case 3:
        return "histogram";
      case 4:
        return "latency";
    }
    return "?";
}

void
checkPath(const std::string &path)
{
    ccp_assert(!path.empty(), "empty stat path");
    ccp_assert(path.front() != '.' && path.back() != '.',
               "stat path '", path, "' has a leading/trailing dot");
    ccp_assert(path.find("..") == std::string::npos,
               "stat path '", path, "' has an empty segment");
    for (char c : path) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                  c == '_' || c == '.';
        ccp_assert(ok, "stat path '", path,
                   "' has illegal character '", c,
                   "' (want [a-z0-9_.])");
    }
}

} // namespace

StatsRegistry::Stat &
StatsRegistry::lookup(const std::string &path, Stat init,
                      const char *kind_name)
{
    auto it = stats_.find(path);
    if (it != stats_.end()) {
        ccp_assert(it->second.index() == init.index(), "stat '", path,
                   "' is a ", kindName(it->second.index()),
                   ", accessed as a ", kind_name);
        return it->second;
    }

    checkPath(path);
    // A path may not be both a leaf and a group: reject "a.b" when
    // "a.b.c" exists and vice versa.
    auto below = stats_.lower_bound(path + ".");
    ccp_assert(below == stats_.end() ||
                   below->first.compare(0, path.size() + 1,
                                        path + ".") != 0,
               "stat '", path, "' would shadow group member '",
               below == stats_.end() ? "" : below->first, "'");
    for (std::size_t dot = path.find('.'); dot != std::string::npos;
         dot = path.find('.', dot + 1)) {
        std::string prefix = path.substr(0, dot);
        ccp_assert(stats_.find(prefix) == stats_.end(), "stat '", path,
                   "' nests under existing leaf '", prefix, "'");
    }

    return stats_.emplace(path, std::move(init)).first->second;
}

StatsRegistry::Counter &
StatsRegistry::counter(const std::string &path)
{
    return std::get<Counter>(lookup(path, Counter{}, "counter"));
}

double &
StatsRegistry::scalar(const std::string &path)
{
    return std::get<double>(lookup(path, 0.0, "scalar"));
}

Summary &
StatsRegistry::summary(const std::string &path)
{
    return std::get<Summary>(lookup(path, Summary{}, "summary"));
}

Histogram &
StatsRegistry::histogram(const std::string &path, std::size_t buckets)
{
    Histogram &h = std::get<Histogram>(
        lookup(path, Histogram(buckets), "histogram"));
    ccp_assert(h.size() == buckets, "histogram '", path,
               "' re-declared with ", buckets, " buckets (has ",
               h.size(), ")");
    return h;
}

LogHistogram &
StatsRegistry::latency(const std::string &path)
{
    return std::get<LogHistogram>(
        lookup(path, LogHistogram{}, "latency"));
}

bool
StatsRegistry::has(const std::string &path) const
{
    return stats_.find(path) != stats_.end();
}

const StatsRegistry::Counter *
StatsRegistry::findCounter(const std::string &path) const
{
    auto it = stats_.find(path);
    return it == stats_.end() ? nullptr
                              : std::get_if<Counter>(&it->second);
}

const Summary *
StatsRegistry::findSummary(const std::string &path) const
{
    auto it = stats_.find(path);
    return it == stats_.end() ? nullptr
                              : std::get_if<Summary>(&it->second);
}

const Histogram *
StatsRegistry::findHistogram(const std::string &path) const
{
    auto it = stats_.find(path);
    return it == stats_.end() ? nullptr
                              : std::get_if<Histogram>(&it->second);
}

const LogHistogram *
StatsRegistry::findLatency(const std::string &path) const
{
    auto it = stats_.find(path);
    return it == stats_.end() ? nullptr
                              : std::get_if<LogHistogram>(&it->second);
}

std::vector<std::string>
StatsRegistry::paths() const
{
    std::vector<std::string> out;
    out.reserve(stats_.size());
    for (const auto &[path, stat] : stats_)
        out.push_back(path);
    return out;
}

void
StatsRegistry::merge(const StatsRegistry &other)
{
    for (const auto &[path, stat] : other.stats_) {
        if (const auto *c = std::get_if<Counter>(&stat)) {
            counter(path) += c->value;
        } else if (const auto *d = std::get_if<double>(&stat)) {
            scalar(path) += *d;
        } else if (const auto *s = std::get_if<Summary>(&stat)) {
            summary(path).merge(*s);
        } else if (const auto *h = std::get_if<Histogram>(&stat)) {
            histogram(path, h->size()).merge(*h);
        } else if (const auto *l = std::get_if<LogHistogram>(&stat)) {
            latency(path).merge(*l);
        }
    }
}

Json
summaryJson(const Summary &s)
{
    Json j = Json::object();
    j["count"] = Json(s.count());
    j["total"] = Json(s.sum());
    j["mean"] = Json(s.mean());
    j["min"] = Json(s.min());
    j["max"] = Json(s.max());
    j["stddev"] = Json(s.stddev());
    return j;
}

Json
histogramJson(const Histogram &h)
{
    Json j = Json::object();
    Json &buckets = j["buckets"];
    buckets = Json::array();
    for (std::size_t i = 0; i < h.size(); ++i)
        buckets.append(Json(h.bucket(i)));
    j["overflow"] = Json(h.overflow());
    j["total"] = Json(h.total());
    j["mean"] = Json(h.mean());
    return j;
}

Json
logHistogramJson(const LogHistogram &h)
{
    Json j = Json::object();
    j["count"] = Json(h.count());
    j["total"] = Json(h.sum());
    j["mean"] = Json(h.mean());
    j["min"] = Json(h.min());
    j["max"] = Json(h.max());
    j["p50"] = Json(h.p50());
    j["p90"] = Json(h.p90());
    j["p99"] = Json(h.p99());
    Json &buckets = j["buckets"];
    buckets = Json::object();
    for (std::size_t i = 0; i < LogHistogram::nBuckets; ++i) {
        if (h.bucket(i))
            buckets[std::to_string(LogHistogram::bucketLo(i))] =
                Json(h.bucket(i));
    }
    return j;
}

Json
StatsRegistry::toJson() const
{
    Json root = Json::object();
    for (const auto &[path, stat] : stats_) {
        // Walk the dotted path, creating nested objects.
        Json *node = &root;
        std::size_t begin = 0;
        for (std::size_t dot = path.find('.'); dot != std::string::npos;
             dot = path.find('.', begin)) {
            node = &(*node)[path.substr(begin, dot - begin)];
            begin = dot + 1;
        }
        Json &leaf = (*node)[path.substr(begin)];

        if (const auto *c = std::get_if<Counter>(&stat))
            leaf = Json(c->value);
        else if (const auto *d = std::get_if<double>(&stat))
            leaf = Json(*d);
        else if (const auto *s = std::get_if<Summary>(&stat))
            leaf = summaryJson(*s);
        else if (const auto *h = std::get_if<Histogram>(&stat))
            leaf = histogramJson(*h);
        else if (const auto *l = std::get_if<LogHistogram>(&stat))
            leaf = logHistogramJson(*l);
    }
    return root;
}

std::string
StatsRegistry::dumpText() const
{
    std::ostringstream os;
    for (const auto &[path, stat] : stats_) {
        os << path << " = ";
        if (const auto *c = std::get_if<Counter>(&stat)) {
            os << c->value;
        } else if (const auto *d = std::get_if<double>(&stat)) {
            os << *d;
        } else if (const auto *s = std::get_if<Summary>(&stat)) {
            os << "count " << s->count() << " mean " << s->mean()
               << " min " << s->min() << " max " << s->max()
               << " stddev " << s->stddev();
        } else if (const auto *h = std::get_if<Histogram>(&stat)) {
            os << h->toString();
        } else if (const auto *l = std::get_if<LogHistogram>(&stat)) {
            os << "count " << l->count() << " p50 " << l->p50()
               << " p90 " << l->p90() << " p99 " << l->p99()
               << " max " << l->max();
        }
        os << '\n';
    }
    return os.str();
}

StatsRegistry &
StatsRegistry::root()
{
    static StatsRegistry instance;
    return instance;
}

namespace {

thread_local StatsRegistry *tls_current = nullptr;

} // namespace

StatsRegistry &
StatsRegistry::current()
{
    return tls_current ? *tls_current : root();
}

StatsRegistry *
StatsRegistry::setCurrent(StatsRegistry *reg)
{
    StatsRegistry *prev = tls_current;
    tls_current = reg;
    return prev;
}

} // namespace ccp::obs
