/**
 * @file
 * Wall-clock instrumentation: a monotonic Stopwatch, an RAII
 * ScopedTimer that feeds a Summary (directly or through a registry
 * path), and the epoch-based progress machinery the sweeps use to
 * report rate and ETA instead of a bare (done, total) pair.
 */

#ifndef CCP_OBS_TIMER_HH
#define CCP_OBS_TIMER_HH

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <mutex>
#include <string>

#include "common/stats.hh"
#include "obs/registry.hh"

namespace ccp::obs {

/** Monotonic elapsed-seconds clock. */
class Stopwatch
{
  public:
    Stopwatch() : start_(Clock::now()) {}

    void reset() { start_ = Clock::now(); }

    double
    elapsedSec() const
    {
        return std::chrono::duration<double>(Clock::now() - start_)
            .count();
    }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/**
 * RAII phase timer: records elapsed seconds into a Summary when it
 * goes out of scope, so every instrumented phase accumulates count,
 * mean and jitter (stddev) for free.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Summary &sink) : sink_(&sink) {}

    /** Record into @p registry's summary at @p path. */
    ScopedTimer(StatsRegistry &registry, const std::string &path)
        : sink_(&registry.summary(path))
    {
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    ~ScopedTimer()
    {
        if (sink_)
            sink_->add(watch_.elapsedSec());
    }

    /** Record now and disarm (for early phase ends). */
    double
    stop()
    {
        double sec = watch_.elapsedSec();
        if (sink_) {
            sink_->add(sec);
            sink_ = nullptr;
        }
        return sec;
    }

    double elapsedSec() const { return watch_.elapsedSec(); }

  private:
    Summary *sink_;
    Stopwatch watch_;
};

/** One progress observation: completion plus derived rate and ETA. */
struct Progress
{
    std::size_t done = 0;
    std::size_t total = 0;
    /** Items restored from a checkpoint rather than processed this
     *  run (done includes them, so a resumed sweep's progress line
     *  starts from the resumed baseline instead of 0%). */
    std::size_t resumed = 0;
    double elapsedSec = 0.0;
    /** Items per second since the meter started (0 until measurable).
     *  Measured over freshly processed items only — resumed items are
     *  free and would otherwise make the rate (and ETA) fantasy. */
    double perSec = 0.0;
    /** Estimated seconds remaining (0 until the rate is known). */
    double etaSec = 0.0;
};

/** Progress sink used by long-running loops (sweeps, generation). */
using ProgressFn = std::function<void(const Progress &)>;

/**
 * Derives rate and ETA from an advancing done count.  Thread-safe:
 * concurrent sweep workers may tick out of order (worker A finishes
 * item 5 but reports after worker B reported item 7); the meter keeps
 * an atomic high-water mark and reports the furthest completion seen,
 * so observers always see done advance monotonically.  A zero total
 * yields a well-formed Progress (rate still measured, ETA 0).
 */
class ProgressMeter
{
  public:
    /** @param resumed Items already done at start (restored from a
     *  checkpoint); the first tick then reports from this baseline
     *  and rate/ETA cover only the freshly processed remainder. */
    explicit ProgressMeter(std::size_t total, std::size_t resumed = 0)
        : total_(total), resumed_(std::min(resumed, total)),
          highWater_(resumed_)
    {
        // The high-water mark starts at the resumed baseline, so a
        // tick that races in before the initial baseline tick (or
        // reports only freshly processed items) can never show done
        // below what the checkpoint already covered — and the
        // rate/ETA keep measuring the fresh remainder only.
    }

    /** Observe completion of @p done items out of the total (resumed
     *  items count as done). */
    Progress
    tick(std::size_t done) const
    {
        std::size_t seen = highWater_.load(std::memory_order_relaxed);
        while (seen < done &&
               !highWater_.compare_exchange_weak(
                   seen, done, std::memory_order_relaxed)) {
        }
        done = std::max(done, seen);

        Progress p;
        p.done = done;
        p.total = total_;
        p.resumed = resumed_;
        p.elapsedSec = watch_.elapsedSec();
        const std::size_t fresh = done > resumed_ ? done - resumed_ : 0;
        if (fresh > 0 && p.elapsedSec > 0.0) {
            p.perSec = static_cast<double>(fresh) / p.elapsedSec;
            if (total_ > done)
                p.etaSec =
                    static_cast<double>(total_ - done) / p.perSec;
        }
        return p;
    }

  private:
    std::size_t total_;
    std::size_t resumed_;
    /** Furthest completion reported so far (ticks can race);
     *  starts at the resumed baseline. */
    mutable std::atomic<std::size_t> highWater_;
    Stopwatch watch_;
};

/**
 * A throttled ProgressFn: prints "label: done/total (pct%) rate/s,
 * ETA" to stderr at most once per epoch (a minimum wall interval or
 * percent step, whichever allows), and always on completion.  Silent
 * when the log level is below Info (CCP_LOG=quiet/warn).
 *
 * Thread-safe: concurrent sweep workers may invoke it directly; an
 * internal mutex serializes the gating state, and observations whose
 * done count regresses below one already printed are dropped (late
 * arrivals from slower workers).
 */
class ProgressReporter
{
  public:
    explicit ProgressReporter(std::string label,
                              double minIntervalSec = 1.0,
                              unsigned minPctStep = 10);

    void operator()(const Progress &p);

  private:
    std::string label_;
    double minIntervalSec_;
    unsigned minPctStep_;
    std::mutex mutex_;
    double lastPrintSec_ = -1.0;
    unsigned lastPct_ = 0;
    std::size_t lastDone_ = 0;
};

/** Render seconds as "1h02m", "3m20s", "12.4s" for progress lines. */
std::string formatDuration(double seconds);

} // namespace ccp::obs

#endif // CCP_OBS_TIMER_HH
