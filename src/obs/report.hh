/**
 * @file
 * RunReport: the machine-readable record of one tool invocation.
 *
 * A report is a JSON document with a small fixed envelope plus
 * caller-defined sections:
 *
 *   {
 *     "schema_version": 1,
 *     "tool": "table7_prior_schemes",
 *     "config": { ... },        // machine + workload knobs
 *     "suite": [ ... ],         // per-trace metadata
 *     "results": { ... },       // scheme specs + screening metrics
 *     "stats": { ... },         // StatsRegistry snapshot
 *     "timings": { ... }        // per-phase summaries + wall clock
 *   }
 *
 * The envelope keys are reserved by RunReport itself; the sim /
 * predict / sweep layers and the benches fill the sections they know
 * about.  See docs/OBSERVABILITY.md for the full schema.
 */

#ifndef CCP_OBS_REPORT_HH
#define CCP_OBS_REPORT_HH

#include <string>

#include "obs/json.hh"
#include "obs/registry.hh"

namespace ccp::obs {

class RunReport
{
  public:
    /** Current value of the "schema_version" field. */
    static constexpr std::uint64_t schemaVersion = 1;

    explicit RunReport(std::string tool);

    const std::string &tool() const { return tool_; }

    /** The whole document (already carrying the envelope fields). */
    Json &doc() { return doc_; }
    const Json &doc() const { return doc_; }

    /** Get-or-create a top-level object section. */
    Json &section(const std::string &name) { return doc_[name]; }

    /**
     * Snapshot @p registry into the "stats" section, and copy every
     * summary whose path ends in "_seconds" into "timings" (so phase
     * timings with mean/stddev appear in one predictable place).
     */
    void addRegistry(const StatsRegistry &registry);

    /** Record total wall time under "timings.wall_seconds". */
    void setWallSeconds(double seconds);

    std::string toString(int indent = 2) const;

    /** Write the document to @p path.  @return false on I/O error. */
    bool writeFile(const std::string &path) const;

  private:
    std::string tool_;
    Json doc_;
};

} // namespace ccp::obs

#endif // CCP_OBS_REPORT_HH
