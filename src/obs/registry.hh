/**
 * @file
 * StatsRegistry: a gem5-style hierarchical statistics registry.
 *
 * Stats are named by dotted lowercase paths ("protocol.invalidations",
 * "sweep.schemes_evaluated"); the dots define the grouping used by the
 * JSON and human-text dumps.  Four stat kinds are supported:
 *
 *   counter()   — a monotonically growing uint64 (events, messages);
 *   scalar()    — a settable double (configured sizes, final ratios);
 *   summary()   — a ccp::Summary over samples (timings, occupancy);
 *   histogram() — a ccp::Histogram (readers-per-invalidation, ...);
 *   latency()   — a ccp::LogHistogram over nanosecond samples with
 *                 log2 buckets and p50/p90/p99 in the dumps (batch
 *                 and per-scheme evaluation latency).
 *
 * The first access under a path creates the stat and fixes its kind;
 * later accesses must agree (panic otherwise).  A path may not be both
 * a leaf and a group ("a.b" and "a.b.c" cannot coexist).  merge() adds
 * another registry shard stat-by-stat — the primitive every future
 * sharded/parallel sweep will use to combine worker results.
 *
 * The process-wide root() registry is where the long-lived layers
 * (protocol, simulator, evaluator, sweep) account by default; tests
 * and tools may build private registries.
 */

#ifndef CCP_OBS_REGISTRY_HH
#define CCP_OBS_REGISTRY_HH

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "common/stats.hh"
#include "obs/json.hh"

namespace ccp::obs {

class StatsRegistry
{
  public:
    /** A counter: wraps uint64 so kind stays distinct from scalar. */
    struct Counter
    {
        std::uint64_t value = 0;

        Counter &operator+=(std::uint64_t n)
        {
            value += n;
            return *this;
        }
        Counter &operator++()
        {
            ++value;
            return *this;
        }
    };

    /** Get-or-create accessors (kind fixed on first use). */
    Counter &counter(const std::string &path);
    double &scalar(const std::string &path);
    Summary &summary(const std::string &path);
    Histogram &histogram(const std::string &path, std::size_t buckets);
    LogHistogram &latency(const std::string &path);

    bool has(const std::string &path) const;

    /** Read-only lookups; nullptr if absent or of another kind. */
    const Counter *findCounter(const std::string &path) const;
    const Summary *findSummary(const std::string &path) const;
    const Histogram *findHistogram(const std::string &path) const;
    const LogHistogram *findLatency(const std::string &path) const;
    std::size_t size() const { return stats_.size(); }
    bool empty() const { return stats_.empty(); }

    /** All registered paths, sorted. */
    std::vector<std::string> paths() const;

    /**
     * Fold another registry into this one: counters and scalars add,
     * summaries and histograms merge.  Kinds must agree on shared
     * paths; histograms must have equal bucket counts.
     */
    void merge(const StatsRegistry &other);

    /** Drop every stat (used between runs and by tests). */
    void clear() { stats_.clear(); }

    /**
     * Nested-object JSON dump.  Counters and scalars serialize as
     * numbers; summaries as {count, mean, min, max, stddev, total};
     * histograms as {buckets, overflow, total, mean}.
     */
    Json toJson() const;

    /** One "path = value" line per stat, sorted, for logs. */
    std::string dumpText() const;

    /** The process-wide default registry. */
    static StatsRegistry &root();

    /**
     * The registry this thread currently accounts into: root() unless
     * a ScopedRegistry has installed a shard.  Instrumented layers
     * (evaluator, sweep) write through current() so the same code
     * accumulates into a worker-local shard inside a parallel sweep
     * and into root() everywhere else.
     */
    static StatsRegistry &current();

    /**
     * Install @p reg as this thread's current() (nullptr restores
     * root()).  @return the previous installation, for nesting.
     * Prefer ScopedRegistry.
     */
    static StatsRegistry *setCurrent(StatsRegistry *reg);

  private:
    using Stat =
        std::variant<Counter, double, Summary, Histogram, LogHistogram>;

    Stat &lookup(const std::string &path, Stat init,
                 const char *kind_name);

    /** Sorted by path: dumps group naturally. */
    std::map<std::string, Stat> stats_;
};

/**
 * RAII shard installation: routes this thread's
 * StatsRegistry::current() to @p shard for the scope's lifetime.
 * Each parallel-sweep worker wraps its jobs in one of these so the
 * hot evaluation path never locks a shared registry; the sweep merges
 * the shards into the parent registry after the join.
 */
class ScopedRegistry
{
  public:
    explicit ScopedRegistry(StatsRegistry &shard)
        : prev_(StatsRegistry::setCurrent(&shard))
    {
    }

    ScopedRegistry(const ScopedRegistry &) = delete;
    ScopedRegistry &operator=(const ScopedRegistry &) = delete;

    ~ScopedRegistry() { StatsRegistry::setCurrent(prev_); }

  private:
    StatsRegistry *prev_;
};

/** Serialize one Summary in the registry's JSON shape. */
Json summaryJson(const Summary &s);
/** Serialize one Histogram in the registry's JSON shape. */
Json histogramJson(const Histogram &h);
/** Serialize one LogHistogram: count/mean/min/max, p50/p90/p99, and
 *  a sparse {bucket_lo: count} object of non-empty log2 buckets. */
Json logHistogramJson(const LogHistogram &h);

} // namespace ccp::obs

#endif // CCP_OBS_REGISTRY_HH
