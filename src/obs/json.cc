#include "obs/json.hh"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/logging.hh"

namespace ccp::obs {

Json::Json(int i)
{
    if (i >= 0) {
        kind_ = Kind::UInt;
        uint_ = static_cast<std::uint64_t>(i);
    } else {
        kind_ = Kind::Double;
        double_ = i;
    }
}

Json
Json::array()
{
    Json j;
    j.kind_ = Kind::Array;
    return j;
}

Json
Json::object()
{
    Json j;
    j.kind_ = Kind::Object;
    return j;
}

bool
Json::asBool() const
{
    ccp_assert(kind_ == Kind::Bool, "JSON value is not a bool");
    return bool_;
}

std::uint64_t
Json::asUInt() const
{
    ccp_assert(kind_ == Kind::UInt, "JSON value is not an integer");
    return uint_;
}

double
Json::asDouble() const
{
    if (kind_ == Kind::UInt)
        return static_cast<double>(uint_);
    ccp_assert(kind_ == Kind::Double, "JSON value is not a number");
    return double_;
}

const std::string &
Json::asString() const
{
    ccp_assert(kind_ == Kind::String, "JSON value is not a string");
    return string_;
}

Json &
Json::append(Json v)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Array;
    ccp_assert(kind_ == Kind::Array, "append() on a non-array");
    array_.push_back(std::move(v));
    return array_.back();
}

std::size_t
Json::size() const
{
    if (kind_ == Kind::Array)
        return array_.size();
    if (kind_ == Kind::Object)
        return object_.size();
    ccp_assert(kind_ == Kind::Null, "size() on a scalar");
    return 0;
}

const Json &
Json::at(std::size_t i) const
{
    ccp_assert(kind_ == Kind::Array, "at() on a non-array");
    ccp_assert(i < array_.size(), "JSON array index out of range");
    return array_[i];
}

Json &
Json::operator[](const std::string &key)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Object;
    ccp_assert(kind_ == Kind::Object, "operator[] on a non-object");
    for (auto &[k, v] : object_)
        if (k == key)
            return v;
    object_.emplace_back(key, Json());
    return object_.back().second;
}

const Json *
Json::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : object_)
        if (k == key)
            return &v;
    return nullptr;
}

const std::vector<std::pair<std::string, Json>> &
Json::members() const
{
    ccp_assert(kind_ == Kind::Object, "members() on a non-object");
    return object_;
}

namespace {

void
escapeTo(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
numberTo(std::string &out, double d)
{
    if (!std::isfinite(d)) {
        // JSON has no inf/nan; emit null like most serializers.
        out += "null";
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    // Trim to the shortest representation that round-trips.
    for (int prec = 1; prec < 17; ++prec) {
        char shorter[32];
        std::snprintf(shorter, sizeof(shorter), "%.*g", prec, d);
        if (std::strtod(shorter, nullptr) == d) {
            std::memcpy(buf, shorter, sizeof(shorter));
            break;
        }
    }
    out += buf;
}

} // namespace

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    auto newline = [&](int d) {
        if (indent <= 0)
            return;
        out += '\n';
        out.append(static_cast<std::size_t>(indent) * d, ' ');
    };

    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::UInt:
        out += std::to_string(uint_);
        break;
      case Kind::Double:
        numberTo(out, double_);
        break;
      case Kind::String:
        escapeTo(out, string_);
        break;
      case Kind::Array:
        out += '[';
        for (std::size_t i = 0; i < array_.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            array_[i].dumpTo(out, indent, depth + 1);
        }
        if (!array_.empty())
            newline(depth);
        out += ']';
        break;
      case Kind::Object:
        out += '{';
        for (std::size_t i = 0; i < object_.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            escapeTo(out, object_[i].first);
            out += indent > 0 ? ": " : ":";
            object_[i].second.dumpTo(out, indent, depth + 1);
        }
        if (!object_.empty())
            newline(depth);
        out += '}';
        break;
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace {

/** Recursive-descent parser over a string view with a cursor. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    std::optional<Json>
    document()
    {
        auto v = value();
        if (!v)
            return std::nullopt;
        skipWs();
        if (pos_ != text_.size())
            return std::nullopt; // trailing garbage
        return v;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        std::size_t len = std::strlen(word);
        if (text_.compare(pos_, len, word) != 0)
            return false;
        pos_ += len;
        return true;
    }

    std::optional<std::string>
    string()
    {
        if (!consume('"'))
            return std::nullopt;
        std::string out;
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return std::nullopt;
            char esc = text_[pos_++];
            switch (esc) {
              case '"':
              case '\\':
              case '/':
                out += esc;
                break;
              case 'n':
                out += '\n';
                break;
              case 't':
                out += '\t';
                break;
              case 'r':
                out += '\r';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return std::nullopt;
                unsigned code = 0;
                auto [p, ec] = std::from_chars(
                    text_.data() + pos_, text_.data() + pos_ + 4, code,
                    16);
                if (ec != std::errc() || p != text_.data() + pos_ + 4)
                    return std::nullopt;
                pos_ += 4;
                // Only BMP code points below 0x80 are produced by our
                // own dumps; encode the rest as UTF-8.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                return std::nullopt;
            }
        }
        return std::nullopt; // unterminated
    }

    std::optional<Json>
    number()
    {
        std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        bool integral = true;
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                integral = false;
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start)
            return std::nullopt;
        std::string tok = text_.substr(start, pos_ - start);
        if (integral && tok[0] != '-') {
            std::uint64_t u = 0;
            auto [p, ec] = std::from_chars(tok.data(),
                                           tok.data() + tok.size(), u);
            if (ec == std::errc() && p == tok.data() + tok.size())
                return Json(u);
        }
        char *end = nullptr;
        double d = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size())
            return std::nullopt;
        return Json(d);
    }

    std::optional<Json>
    value()
    {
        skipWs();
        if (pos_ >= text_.size())
            return std::nullopt;
        char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            Json obj = Json::object();
            skipWs();
            if (consume('}'))
                return obj;
            while (true) {
                auto key = string();
                if (!key || !consume(':'))
                    return std::nullopt;
                auto v = value();
                if (!v)
                    return std::nullopt;
                obj[*key] = std::move(*v);
                if (consume(','))
                    continue;
                if (consume('}'))
                    return obj;
                return std::nullopt;
            }
        }
        if (c == '[') {
            ++pos_;
            Json arr = Json::array();
            skipWs();
            if (consume(']'))
                return arr;
            while (true) {
                auto v = value();
                if (!v)
                    return std::nullopt;
                arr.append(std::move(*v));
                if (consume(','))
                    continue;
                if (consume(']'))
                    return arr;
                return std::nullopt;
            }
        }
        if (c == '"') {
            auto s = string();
            if (!s)
                return std::nullopt;
            return Json(std::move(*s));
        }
        if (literal("true"))
            return Json(true);
        if (literal("false"))
            return Json(false);
        if (literal("null"))
            return Json();
        return number();
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

std::optional<Json>
Json::parse(const std::string &text)
{
    return Parser(text).document();
}

} // namespace ccp::obs
