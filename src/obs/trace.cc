#include "obs/trace.hh"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "obs/registry.hh"

namespace ccp::obs {

std::atomic<bool> Tracer::enabled_{false};
std::atomic<bool> Tracer::perfSampling_{false};

Tracer &
Tracer::instance()
{
    static Tracer tracer;
    return tracer;
}

std::uint64_t
Tracer::nowNs()
{
    using Clock = std::chrono::steady_clock;
    static const Clock::time_point epoch = Clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - epoch)
            .count());
}

namespace {

thread_local Tracer::ThreadBuf *tls_buf = nullptr;

/** ThreadPool instrumentation (common/thread_pool.hh hooks): the pool
 *  itself cannot depend on obs, so the tracer installs these when
 *  enabled.  Chunk spans are live; idle waits are recorded
 *  retroactively at wake (the thread pushes nothing while parked, so
 *  per-thread timestamp order is preserved). */
/** The buffer whose pool.chunk begin was admitted (chunks never nest
 *  on a thread, so one slot suffices); null = nothing to close. */
thread_local Tracer::ThreadBuf *tls_chunk_buf = nullptr;

void
hookChunkBegin(std::size_t first, std::size_t count)
{
    (void)first;
    if (!Tracer::enabled())
        return;
    Tracer::ThreadBuf *buf = Tracer::instance().threadBuf();
    if (buf->beginSpan("pool", "pool.chunk", count, Tracer::nowNs()))
        tls_chunk_buf = buf;
}

void
hookChunkEnd()
{
    // Close only what chunkBegin admitted — a dropped begin has no
    // matching end, and the close happens even if tracing was just
    // disabled (flush synthesizes ends only for parked threads).
    if (!tls_chunk_buf)
        return;
    tls_chunk_buf->endSpan("pool", "pool.chunk", Tracer::nowNs(),
                           PerfSample{});
    tls_chunk_buf = nullptr;
}

std::uint64_t
hookNowNs()
{
    return Tracer::nowNs();
}

void
hookIdle(std::uint64_t beginNs, std::uint64_t endNs)
{
    traceCompleteSpan("pool", "pool.idle", beginNs, endNs);
}

constexpr PoolTraceHooks poolHooks = {hookChunkBegin, hookChunkEnd,
                                      hookIdle, hookNowNs};

/** Minimal JSON string escaping for span names/categories. */
std::string
escapeJson(const char *s)
{
    std::string out;
    for (; s && *s; ++s) {
        if (*s == '"' || *s == '\\')
            out.push_back('\\');
        out.push_back(*s);
    }
    return out;
}

} // namespace

Tracer::ThreadBuf *
Tracer::threadBuf()
{
    if (tls_buf)
        return tls_buf;
    std::lock_guard<std::mutex> lock(mutex_);
    unsigned tid = static_cast<unsigned>(buffers_.size());
    std::size_t cap = opts_.bufferRecords
                          ? opts_.bufferRecords
                          : (std::size_t(1) << 16);
    buffers_.push_back(std::make_unique<ThreadBuf>(tid, cap));
    tls_buf = buffers_.back().get();
    return tls_buf;
}

void
Tracer::enable(Options opts)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        opts_ = std::move(opts);
        for (auto &buf : buffers_)
            buf->clear();
    }
    perfSampling_.store(opts_.perfCounters,
                        std::memory_order_relaxed);
    setPoolTraceHooks(&poolHooks);
    // Pin the epoch before the first span so timestamps are small.
    nowNs();
    enabled_.store(true, std::memory_order_relaxed);
}

void
Tracer::disable()
{
    enabled_.store(false, std::memory_order_relaxed);
    perfSampling_.store(false, std::memory_order_relaxed);
    setPoolTraceHooks(nullptr);
}

std::uint64_t
Tracer::droppedTotal() const
{
    std::uint64_t total = 0;
    for (const auto &buf : buffers_)
        total += buf->dropped();
    return total;
}

std::string
Tracer::serialize()
{
    std::lock_guard<std::mutex> lock(mutex_);

    std::string out;
    out.reserve(1 << 20);
    out += "{\"traceEvents\":[\n";

    char line[512];
    bool first = true;
    auto emit = [&](const char *text) {
        if (!first)
            out += ",\n";
        first = false;
        out += text;
    };

    std::snprintf(line, sizeof(line),
                  "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":0,\"args\":{\"name\":\"ccp\"}}");
    emit(line);

    std::uint64_t dropped = 0;
    for (const auto &buf : buffers_) {
        const unsigned tid = buf->tid();
        dropped += buf->dropped();
        std::snprintf(line, sizeof(line),
                      "{\"name\":\"thread_name\",\"ph\":\"M\","
                      "\"pid\":1,\"tid\":%u,\"args\":{\"name\":"
                      "\"%s\"}}",
                      tid, tid == 0 ? "main" : "worker");
        emit(line);

        const std::size_t n = buf->visibleSize();
        // Spans still open at flush (a worker parked in its pool
        // loop): close them LIFO at the thread's last timestamp so
        // every 'B' has its 'E' and timestamps stay monotone.
        std::vector<const Record *> open;
        std::uint64_t last_ts = 0;
        for (std::size_t i = 0; i < n; ++i) {
            const Record &r = buf->record(i);
            last_ts = r.tsNs;
            const double us = double(r.tsNs) / 1e3;
            if (r.phase == 'B') {
                open.push_back(&r);
                if (r.arg != ~std::uint64_t(0)) {
                    std::snprintf(
                        line, sizeof(line),
                        "{\"name\":\"%s\",\"cat\":\"%s\","
                        "\"ph\":\"B\",\"ts\":%.3f,\"pid\":1,"
                        "\"tid\":%u,\"args\":{\"items\":%llu}}",
                        escapeJson(r.name).c_str(),
                        escapeJson(r.cat).c_str(), us, tid,
                        static_cast<unsigned long long>(r.arg));
                } else {
                    std::snprintf(line, sizeof(line),
                                  "{\"name\":\"%s\",\"cat\":\"%s\","
                                  "\"ph\":\"B\",\"ts\":%.3f,"
                                  "\"pid\":1,\"tid\":%u}",
                                  escapeJson(r.name).c_str(),
                                  escapeJson(r.cat).c_str(), us, tid);
                }
            } else {
                if (!open.empty())
                    open.pop_back();
                if (r.perf.valid) {
                    std::snprintf(
                        line, sizeof(line),
                        "{\"name\":\"%s\",\"cat\":\"%s\","
                        "\"ph\":\"E\",\"ts\":%.3f,\"pid\":1,"
                        "\"tid\":%u,\"args\":{\"cycles\":%llu,"
                        "\"instructions\":%llu,\"cache_misses\":"
                        "%llu,\"branch_misses\":%llu,"
                        "\"ipc\":%.3f}}",
                        escapeJson(r.name).c_str(),
                        escapeJson(r.cat).c_str(), us, tid,
                        static_cast<unsigned long long>(
                            r.perf.cycles),
                        static_cast<unsigned long long>(
                            r.perf.instructions),
                        static_cast<unsigned long long>(
                            r.perf.cacheMisses),
                        static_cast<unsigned long long>(
                            r.perf.branchMisses),
                        r.perf.ipc());
                } else {
                    std::snprintf(line, sizeof(line),
                                  "{\"name\":\"%s\",\"cat\":\"%s\","
                                  "\"ph\":\"E\",\"ts\":%.3f,"
                                  "\"pid\":1,\"tid\":%u}",
                                  escapeJson(r.name).c_str(),
                                  escapeJson(r.cat).c_str(), us, tid);
                }
            }
            emit(line);
        }
        while (!open.empty()) {
            const Record *r = open.back();
            open.pop_back();
            std::snprintf(line, sizeof(line),
                          "{\"name\":\"%s\",\"cat\":\"%s\","
                          "\"ph\":\"E\",\"ts\":%.3f,\"pid\":1,"
                          "\"tid\":%u}",
                          escapeJson(r->name).c_str(),
                          escapeJson(r->cat).c_str(),
                          double(last_ts) / 1e3, tid);
            emit(line);
        }
    }

    out += "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{";
    std::snprintf(line, sizeof(line),
                  "\"dropped_spans\":%llu,\"perf_counters\":%s}}\n",
                  static_cast<unsigned long long>(dropped),
                  opts_.perfCounters ? "true" : "false");
    out += line;
    return out;
}

bool
Tracer::flush()
{
    disable();

    std::string path;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        path = opts_.path;
    }
    if (path.empty())
        return false;

    const std::uint64_t dropped = droppedTotal();
    if (dropped > 0) {
        StatsRegistry::root().counter("trace.events_dropped") +=
            dropped;
        ccp_warn("tracer: ", dropped,
                 " span(s) dropped to full thread buffers (raise "
                 "Options::bufferRecords)");
    }

    // Atomic temp + rename, the trace-v4 discipline: a crashed or
    // concurrent run never leaves a partial trace file behind.
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            return false;
        os << serialize();
        if (!os.good())
            return false;
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        return false;
    }
    return true;
}

void
traceCompleteSpan(const char *cat, const char *name,
                  std::uint64_t beginNs, std::uint64_t endNs)
{
    if (!Tracer::enabled())
        return;
    Tracer::ThreadBuf *buf = Tracer::instance().threadBuf();
    if (!buf->beginSpan(cat, name, ~std::uint64_t(0), beginNs))
        return;
    buf->endSpan(cat, name, endNs < beginNs ? beginNs : endNs,
                 PerfSample{});
}

} // namespace ccp::obs
