#include "obs/perf.hh"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/io.hh"
#endif

namespace ccp::obs {

#if defined(__linux__)

namespace {

long
perfEventOpen(perf_event_attr *attr, pid_t pid, int cpu, int group_fd,
              unsigned long flags)
{
    return ::syscall(SYS_perf_event_open, attr, pid, cpu, group_fd,
                     flags);
}

perf_event_attr
makeAttr(std::uint32_t type, std::uint64_t config)
{
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.size = sizeof(attr);
    attr.type = type;
    attr.config = config;
    attr.disabled = 0;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    attr.read_format = PERF_FORMAT_GROUP |
                       PERF_FORMAT_TOTAL_TIME_ENABLED |
                       PERF_FORMAT_TOTAL_TIME_RUNNING;
    return attr;
}

} // namespace

PerfCounters::PerfCounters()
{
    auto leader = makeAttr(PERF_TYPE_HARDWARE,
                           PERF_COUNT_HW_CPU_CYCLES);
    long fd = perfEventOpen(&leader, 0, -1, -1, 0);
    if (fd < 0)
        return; // EACCES/ENOENT/EPERM: no counters here, stay no-op
    fd_ = static_cast<int>(fd);

    const std::uint64_t configs[3] = {
        PERF_COUNT_HW_INSTRUCTIONS,
        PERF_COUNT_HW_CACHE_MISSES,
        PERF_COUNT_HW_BRANCH_MISSES,
    };
    for (int i = 0; i < 3; ++i) {
        auto attr = makeAttr(PERF_TYPE_HARDWARE, configs[i]);
        long sfd = perfEventOpen(&attr, 0, -1, fd_, 0);
        siblings_[i] = sfd < 0 ? -1 : static_cast<int>(sfd);
    }
    ::ioctl(fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
    ::ioctl(fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
}

PerfCounters::~PerfCounters()
{
    for (int i = 0; i < 3; ++i)
        if (siblings_[i] >= 0)
            ::close(siblings_[i]);
    if (fd_ >= 0)
        ::close(fd_);
}

PerfSample
PerfCounters::read() const
{
    PerfSample s;
    if (fd_ < 0)
        return s;

    // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running,
    // value[nr] in the order the events joined the group (leader
    // first, then any siblings that opened successfully).
    std::uint64_t buf[3 + 4];
    ssize_t n = io::readFull(fd_, buf, sizeof(buf));
    if (n < static_cast<ssize_t>(4 * sizeof(std::uint64_t)))
        return s;

    const std::uint64_t nr = buf[0];
    const std::uint64_t enabled = buf[1];
    const std::uint64_t running = buf[2];
    // Scale for multiplexing; running == 0 means never scheduled.
    const double scale =
        running ? static_cast<double>(enabled) /
                      static_cast<double>(running)
                : 0.0;
    auto scaled = [&](std::uint64_t raw) {
        return static_cast<std::uint64_t>(
            static_cast<double>(raw) * scale);
    };

    std::uint64_t values[4] = {0, 0, 0, 0};
    // Map group slots back to [cycles, instr, cache, branch]: slot 0
    // is the leader, then one slot per successfully opened sibling.
    std::uint64_t slot = 0;
    values[0] = slot < nr ? buf[3 + slot++] : 0;
    for (int i = 0; i < 3; ++i)
        if (siblings_[i] >= 0 && slot < nr)
            values[1 + i] = buf[3 + slot++];

    s.cycles = scaled(values[0]);
    s.instructions = scaled(values[1]);
    s.cacheMisses = scaled(values[2]);
    s.branchMisses = scaled(values[3]);
    s.valid = true;
    return s;
}

bool
PerfCounters::available()
{
    static const bool avail = [] {
        PerfCounters probe;
        return probe.ok();
    }();
    return avail;
}

#else // !__linux__

PerfCounters::PerfCounters() {}
PerfCounters::~PerfCounters() {}

PerfSample
PerfCounters::read() const
{
    return PerfSample{};
}

bool
PerfCounters::available()
{
    return false;
}

#endif

PerfCounters &
PerfCounters::thread()
{
    thread_local PerfCounters counters;
    return counters;
}

} // namespace ccp::obs
