/**
 * @file
 * Hardware performance-counter sampling via perf_event_open(2).
 *
 * A PerfCounters object owns one per-thread counter group — cycles
 * (leader), instructions, cache misses, branch misses — opened with
 * exclude_kernel so it works at perf_event_paranoid <= 2.  read()
 * returns a PerfSample snapshot; subtracting two snapshots gives the
 * deltas for a span, which the tracer (obs/trace.hh) attaches to its
 * Chrome-trace end events when --perf-counters is on.
 *
 * Everything degrades gracefully: on non-Linux builds, in containers
 * without perf access, or when any event fails to open, ok() is false
 * and read() returns an invalid sample — callers never branch on the
 * platform, only on PerfSample::valid.  Counts are scaled by the
 * kernel's time_enabled/time_running ratio so multiplexed groups
 * still report meaningful totals.
 */

#ifndef CCP_OBS_PERF_HH
#define CCP_OBS_PERF_HH

#include <cstdint>

namespace ccp::obs {

/** One snapshot (or delta) of the four sampled hardware counters. */
struct PerfSample
{
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t branchMisses = 0;
    /** False when counters are unavailable; all counts then 0. */
    bool valid = false;

    /** Per-counter delta; valid only when both sides are. */
    PerfSample
    operator-(const PerfSample &o) const
    {
        PerfSample d;
        d.valid = valid && o.valid;
        if (d.valid) {
            d.cycles = cycles - o.cycles;
            d.instructions = instructions - o.instructions;
            d.cacheMisses = cacheMisses - o.cacheMisses;
            d.branchMisses = branchMisses - o.branchMisses;
        }
        return d;
    }

    /** Instructions per cycle; 0 when invalid or no cycles. */
    double
    ipc() const
    {
        return valid && cycles
                   ? static_cast<double>(instructions) /
                         static_cast<double>(cycles)
                   : 0.0;
    }
};

class PerfCounters
{
  public:
    /** Opens the counter group for the calling thread. */
    PerfCounters();
    ~PerfCounters();

    PerfCounters(const PerfCounters &) = delete;
    PerfCounters &operator=(const PerfCounters &) = delete;

    /** True when the group opened and read() yields valid samples. */
    bool ok() const { return fd_ >= 0; }

    /** Snapshot the group (one read(2) on Linux). */
    PerfSample read() const;

    /**
     * The calling thread's lazily opened counters.  Thread-local, so
     * every pool worker samples its own group; safe to call from any
     * thread at any time (the no-perf case is a cheap invalid read).
     */
    static PerfCounters &thread();

    /** Whether this build/host can open counters at all (probes once
     *  per process; false on non-Linux or when the probe fails). */
    static bool available();

  private:
    /** Group-leader fd, or -1 when unavailable. */
    int fd_ = -1;
    /** Sibling fds (instructions, cache misses, branch misses); -1
     *  entries were not opened and read as 0. */
    int siblings_[3] = {-1, -1, -1};
};

} // namespace ccp::obs

#endif // CCP_OBS_PERF_HH
