/**
 * @file
 * Execution tracing: low-overhead, thread-safe span recording that
 * flushes to Chrome trace-event JSON (loadable in chrome://tracing
 * and Perfetto).
 *
 * Design — the same shard-then-merge discipline as StatsRegistry:
 *
 *  - Each thread records into its own fixed-capacity buffer (single
 *    producer, no locks, no allocation on the hot path); the global
 *    Tracer only takes a mutex to register a new thread's buffer and
 *    to drain all buffers at flush().
 *  - Spans are RAII (TraceSpan / the CCP_TRACE_SPAN macros): a 'B'
 *    record is pushed at construction, the matching 'E' at
 *    destruction.  Admission reserves one slot per open span, so an
 *    accepted begin always has room for its end — a flushed trace
 *    never contains an orphaned 'B', and per-thread timestamps are
 *    monotone by construction.  When a buffer is full new spans are
 *    dropped (counted, reported in the trace metadata and under the
 *    `trace.events_dropped` stat), never torn.
 *  - When tracing is disabled (the default) a span is one relaxed
 *    atomic load; with CCP_TRACE_DISABLED defined the macros compile
 *    to nothing at all.
 *  - With perf sampling on (Tracer::Options::perfCounters, bench flag
 *    --perf-counters), each span's 'E' event carries the span's
 *    cycles / instructions / cache-miss / branch-miss deltas from the
 *    thread's perf_event_open group (obs/perf.hh) as event args —
 *    no-op where counters are unavailable.
 *
 * Span names and categories must be string literals (or otherwise
 * outlive the Tracer): records store the pointers, not copies.
 */

#ifndef CCP_OBS_TRACE_HH
#define CCP_OBS_TRACE_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/perf.hh"

namespace ccp::obs {

class Tracer
{
  public:
    struct Options
    {
        /** Output file for flush(); the Chrome-trace JSON document. */
        std::string path;
        /** Per-thread record capacity (two records per span). */
        std::size_t bufferRecords = 1 << 16;
        /** Sample hardware counters per span (obs/perf.hh). */
        bool perfCounters = false;
    };

    /** One recorded begin/end; name/cat are unowned static strings. */
    struct Record
    {
        const char *name = nullptr;
        const char *cat = nullptr;
        std::uint64_t tsNs = 0;
        char phase = 'B';
        /** 'B' only: optional "items" arg (~0 = absent). */
        std::uint64_t arg = ~std::uint64_t(0);
        /** 'E' only: span perf deltas (valid flag gates emission). */
        PerfSample perf;
    };

    /** Per-thread record buffer: bounded append, owner-only writes,
     *  published to the flusher with release/acquire on size_. */
    class ThreadBuf
    {
      public:
        explicit ThreadBuf(unsigned tid, std::size_t capacity)
            : tid_(tid), records_(capacity)
        {
        }

        unsigned tid() const { return tid_; }

        /** Try to admit a span begin: requires room for this 'B',
         *  the 'E' of every open span, and this span's own 'E'. */
        bool
        beginSpan(const char *cat, const char *name, std::uint64_t arg,
                  std::uint64_t tsNs)
        {
            std::size_t size =
                size_.load(std::memory_order_relaxed);
            if (size + open_ + 2 > records_.size()) {
                dropped_.fetch_add(1, std::memory_order_relaxed);
                return false;
            }
            Record &r = records_[size];
            r.name = name;
            r.cat = cat;
            r.tsNs = tsNs;
            r.phase = 'B';
            r.arg = arg;
            r.perf = PerfSample{};
            ++open_;
            size_.store(size + 1, std::memory_order_release);
            return true;
        }

        /** Close the innermost accepted span (room is reserved). */
        void
        endSpan(const char *cat, const char *name, std::uint64_t tsNs,
                const PerfSample &perf)
        {
            std::size_t size =
                size_.load(std::memory_order_relaxed);
            Record &r = records_[size];
            r.name = name;
            r.cat = cat;
            r.tsNs = tsNs;
            r.phase = 'E';
            r.arg = ~std::uint64_t(0);
            r.perf = perf;
            --open_;
            size_.store(size + 1, std::memory_order_release);
        }

        /** Records visible to a concurrent reader (acquire). */
        std::size_t
        visibleSize() const
        {
            return size_.load(std::memory_order_acquire);
        }

        const Record &record(std::size_t i) const { return records_[i]; }

        std::uint64_t
        dropped() const
        {
            return dropped_.load(std::memory_order_relaxed);
        }

        void
        clear()
        {
            size_.store(0, std::memory_order_relaxed);
            dropped_.store(0, std::memory_order_relaxed);
            open_ = 0;
        }

      private:
        unsigned tid_;
        std::vector<Record> records_;
        std::atomic<std::size_t> size_{0};
        std::atomic<std::uint64_t> dropped_{0};
        /** Accepted-but-unclosed spans (owner thread only). */
        std::size_t open_ = 0;
    };

    static Tracer &instance();

    /** Whether spans record anything right now (one relaxed load —
     *  the entire cost of an instrumented site when tracing is off). */
    static bool
    enabled()
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Whether spans sample perf counters (checked after enabled()). */
    static bool
    perfSampling()
    {
        return perfSampling_.load(std::memory_order_relaxed);
    }

    /** Start recording (clears any previously recorded spans). */
    void enable(Options opts);

    /**
     * Stop recording, serialize everything recorded to the configured
     * path (atomic temp + rename), and report drop counts.  @return
     * false on I/O failure.  Safe to call with spans still open on
     * other threads: their 'B' records are closed with a synthetic
     * 'E' at the thread's last timestamp so the output is always
     * well-formed.
     */
    bool flush();

    /** Stop recording without writing (tests). */
    void disable();

    /** Total spans dropped to full buffers since enable(). */
    std::uint64_t droppedTotal() const;

    /** Nanoseconds since the tracer epoch (steady clock). */
    static std::uint64_t nowNs();

    /** The calling thread's buffer, created and registered on first
     *  use (tid assigned in registration order; 0 = first/main). */
    ThreadBuf *threadBuf();

    /** Serialize to a string (tests; same document flush() writes). */
    std::string serialize();

  private:
    Tracer() = default;

    static std::atomic<bool> enabled_;
    static std::atomic<bool> perfSampling_;

    std::mutex mutex_;
    Options opts_;
    /** Buffers live for the process lifetime: worker threads may die
     *  (pool teardown) before flush reads their records. */
    std::vector<std::unique_ptr<ThreadBuf>> buffers_;
};

/**
 * RAII span: records 'B' on construction and the matching 'E' on
 * destruction into the calling thread's buffer.  Free of any cost
 * except one atomic load when tracing is disabled.
 */
class TraceSpan
{
  public:
    TraceSpan(const char *cat, const char *name)
        : TraceSpan(cat, name, ~std::uint64_t(0))
    {
    }

    /** @param arg an "items" count attached to the begin event. */
    TraceSpan(const char *cat, const char *name, std::uint64_t arg)
    {
        if (!Tracer::enabled())
            return;
        Tracer::ThreadBuf *buf = Tracer::instance().threadBuf();
        if (!buf->beginSpan(cat, name, arg, Tracer::nowNs()))
            return;
        buf_ = buf;
        cat_ = cat;
        name_ = name;
        if (Tracer::perfSampling())
            beginPerf_ = PerfCounters::thread().read();
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    ~TraceSpan()
    {
        if (!buf_)
            return;
        PerfSample delta;
        if (beginPerf_.valid)
            delta = PerfCounters::thread().read() - beginPerf_;
        buf_->endSpan(cat_, name_, Tracer::nowNs(), delta);
    }

    /** True when the begin event was admitted (tests). */
    bool armed() const { return buf_ != nullptr; }

  private:
    Tracer::ThreadBuf *buf_ = nullptr;
    const char *cat_ = nullptr;
    const char *name_ = nullptr;
    PerfSample beginPerf_;
};

/**
 * Record a complete span [beginNs, endNs] after the fact — for
 * periods the instrumented code only knows retroactively (a worker's
 * idle wait ends when it wakes).  Both records are pushed now, so the
 * caller must not have pushed anything since @p beginNs.
 */
void traceCompleteSpan(const char *cat, const char *name,
                       std::uint64_t beginNs, std::uint64_t endNs);

} // namespace ccp::obs

// Span macros: zero-cost when CCP_TRACE_DISABLED is defined, one
// relaxed atomic load when tracing is off at runtime.
#define CCP_TRACE_CONCAT2(a, b) a##b
#define CCP_TRACE_CONCAT(a, b) CCP_TRACE_CONCAT2(a, b)

#ifndef CCP_TRACE_DISABLED
#define CCP_TRACE_SPAN(cat, name)                                      \
    ccp::obs::TraceSpan CCP_TRACE_CONCAT(ccp_trace_span_,              \
                                         __LINE__)(cat, name)
#define CCP_TRACE_SPAN_N(cat, name, n)                                 \
    ccp::obs::TraceSpan CCP_TRACE_CONCAT(ccp_trace_span_,              \
                                         __LINE__)(cat, name,          \
                                                   std::uint64_t(n))
#else
#define CCP_TRACE_SPAN(cat, name) ((void)0)
#define CCP_TRACE_SPAN_N(cat, name, n) ((void)0)
#endif

#endif // CCP_OBS_TRACE_HH
