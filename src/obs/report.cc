#include "obs/report.hh"

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <system_error>

namespace ccp::obs {

RunReport::RunReport(std::string tool) : tool_(std::move(tool))
{
    doc_["schema_version"] = Json(schemaVersion);
    doc_["tool"] = Json(tool_);
}

void
RunReport::addRegistry(const StatsRegistry &registry)
{
    section("stats") = registry.toJson();

    constexpr const char *suffix = "_seconds";
    constexpr std::size_t suffix_len = 8;
    Json &timings = section("timings");
    for (const auto &path : registry.paths()) {
        if (path.size() < suffix_len ||
            path.compare(path.size() - suffix_len, suffix_len,
                         suffix) != 0)
            continue;
        if (const Summary *s = registry.findSummary(path))
            timings[path] = summaryJson(*s);
    }
}

void
RunReport::setWallSeconds(double seconds)
{
    section("timings")["wall_seconds"] = Json(seconds);
}

std::string
RunReport::toString(int indent) const
{
    return doc_.dump(indent) + "\n";
}

bool
RunReport::writeFile(const std::string &path) const
{
    // Atomic temp + rename (the trace-v4 discipline): concurrent
    // benches sharing a report path, or a crash mid-write, can never
    // leave an interleaved or truncated JSON document behind.  The
    // temp name carries the pid so two writers don't clobber each
    // other's temp file either; last rename wins with a whole file.
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            return false;
        os << toString();
        os.flush();
        if (!os.good()) {
            std::error_code ec;
            std::filesystem::remove(tmp, ec);
            return false;
        }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        return false;
    }
    return true;
}

} // namespace ccp::obs
