#include "obs/report.hh"

#include <fstream>

namespace ccp::obs {

RunReport::RunReport(std::string tool) : tool_(std::move(tool))
{
    doc_["schema_version"] = Json(schemaVersion);
    doc_["tool"] = Json(tool_);
}

void
RunReport::addRegistry(const StatsRegistry &registry)
{
    section("stats") = registry.toJson();

    constexpr const char *suffix = "_seconds";
    constexpr std::size_t suffix_len = 8;
    Json &timings = section("timings");
    for (const auto &path : registry.paths()) {
        if (path.size() < suffix_len ||
            path.compare(path.size() - suffix_len, suffix_len,
                         suffix) != 0)
            continue;
        if (const Summary *s = registry.findSummary(path))
            timings[path] = summaryJson(*s);
    }
}

void
RunReport::setWallSeconds(double seconds)
{
    section("timings")["wall_seconds"] = Json(seconds);
}

std::string
RunReport::toString(int indent) const
{
    return doc_.dump(indent) + "\n";
}

bool
RunReport::writeFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    os << toString();
    return bool(os);
}

} // namespace ccp::obs
