/**
 * @file
 * A minimal JSON document model for the observability layer: enough to
 * serialize stats registries and run reports, and to parse them back
 * in tests (round-trip validation) and tooling.  Deliberately tiny —
 * no external dependency, no streaming, objects preserve insertion
 * order so dumps are stable and diffable.
 */

#ifndef CCP_OBS_JSON_HH
#define CCP_OBS_JSON_HH

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace ccp::obs {

/** One JSON value: null, bool, number, string, array, or object. */
class Json
{
  public:
    enum class Kind : std::uint8_t
    {
        Null,
        Bool,
        /** Unsigned integer, printed exactly (counters > 2^53). */
        UInt,
        /** Double-precision number. */
        Double,
        String,
        Array,
        Object,
    };

    Json() = default;
    Json(bool b) : kind_(Kind::Bool), bool_(b) {}
    Json(std::uint64_t u) : kind_(Kind::UInt), uint_(u) {}
    Json(int i);
    Json(unsigned u) : Json(std::uint64_t(u)) {}
    Json(double d) : kind_(Kind::Double), double_(d) {}
    Json(const char *s) : kind_(Kind::String), string_(s) {}
    Json(std::string s) : kind_(Kind::String), string_(std::move(s)) {}

    static Json array();
    static Json object();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isNumber() const
    {
        return kind_ == Kind::UInt || kind_ == Kind::Double;
    }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }

    /** Value accessors; panic on kind mismatch. */
    bool asBool() const;
    std::uint64_t asUInt() const;
    /** Any number as double (UInt converts). */
    double asDouble() const;
    const std::string &asString() const;

    /** Array access.  append() coerces Null to Array. */
    Json &append(Json v);
    std::size_t size() const;
    const Json &at(std::size_t i) const;

    /**
     * Object access.  operator[] coerces Null to Object and inserts a
     * Null member on first reference, preserving insertion order.
     */
    Json &operator[](const std::string &key);
    const Json *find(const std::string &key) const;
    bool contains(const std::string &key) const
    {
        return find(key) != nullptr;
    }
    const std::vector<std::pair<std::string, Json>> &members() const;

    /** Serialize; @p indent > 0 pretty-prints with that step. */
    std::string dump(int indent = 0) const;

    /** Parse a document; nullopt on malformed input. */
    static std::optional<Json> parse(const std::string &text);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    std::uint64_t uint_ = 0;
    double double_ = 0.0;
    std::string string_;
    std::vector<Json> array_;
    std::vector<std::pair<std::string, Json>> object_;
};

} // namespace ccp::obs

#endif // CCP_OBS_JSON_HH
