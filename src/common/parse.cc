#include "common/parse.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace ccp {

bool
parseU64(const std::string &text, std::uint64_t &out, int base)
{
    if (text.empty())
        return false;
    // strtoull skips whitespace and accepts '-' (wrapping the value);
    // require the first character to be a digit so neither survives.
    // Base 0/16 may legitimately start with "0x...", which still
    // begins with a digit.
    if (!std::isdigit(static_cast<unsigned char>(text[0])))
        return false;
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(text.c_str(), &end, base);
    if (errno == ERANGE || end == text.c_str() || *end != '\0')
        return false;
    out = v;
    return true;
}

bool
parseU64InRange(const std::string &text, std::uint64_t &out,
                std::uint64_t max, int base)
{
    std::uint64_t v = 0;
    if (!parseU64(text, v, base) || v > max)
        return false;
    out = v;
    return true;
}

bool
parseDouble(const std::string &text, double &out)
{
    if (text.empty())
        return false;
    // Reject leading whitespace (strtod would skip it) and the
    // "inf"/"nan" spellings up front; a finite number starts with a
    // digit, sign, or decimal point.
    const char c = text[0];
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
          c == '+' || c == '.'))
        return false;
    // strtod's hex-float extension ("0x1p4") is not a spelling any
    // flag documents; a decimal number never contains an x.
    if (text.find('x') != std::string::npos ||
        text.find('X') != std::string::npos)
        return false;
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(text.c_str(), &end);
    if (errno == ERANGE || end == text.c_str() || *end != '\0' ||
        !std::isfinite(v))
        return false;
    out = v;
    return true;
}

} // namespace ccp
