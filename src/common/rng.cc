#include "common/rng.hh"

#include <cmath>

#include "common/logging.hh"

namespace ccp {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

constexpr std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed)
{
    std::uint64_t sm = seed;
    for (auto &w : s_)
        w = splitmix64(sm);
    // xoshiro must not start in the all-zero state.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

std::uint64_t
Rng::operator()()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    ccp_assert(bound != 0, "Rng::below(0)");
    // Lemire-style rejection to avoid modulo bias.
    std::uint64_t threshold = (~bound + 1) % bound;
    for (;;) {
        std::uint64_t r = (*this)();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    ccp_assert(lo <= hi, "Rng::range with lo > hi");
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
}

double
Rng::uniform()
{
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

unsigned
Rng::geometric(double p, unsigned cap)
{
    unsigned n = 0;
    while (n < cap && chance(p))
        ++n;
    return n;
}

Rng
Rng::fork(std::uint64_t id) const
{
    // Mix the original seed with the substream id through splitmix64.
    std::uint64_t x = seed_ ^ (id * 0xd1342543de82ef95ULL + 1);
    std::uint64_t mixed = splitmix64(x);
    return Rng(mixed);
}

} // namespace ccp
