/**
 * @file
 * EINTR-safe wrappers over the raw POSIX I/O calls.
 *
 * The shard supervisor (sweep/orchestrator.hh) makes signals routine:
 * SIGCHLD from reaped workers, SIGTERM drains, and the deadline
 * escalation path all land while checkpoint and trace I/O is in
 * flight, so an unguarded read()/write()/open()/fsync() now fails
 * with EINTR in normal operation, not just under exotic timing.
 * Every raw descriptor loop in the repo goes through these helpers
 * instead of open-coding the retry (the audit that introduced them
 * found three hand-rolled variants, one of which forgot fsync).
 *
 * close() is deliberately NOT retried: on Linux the descriptor is
 * freed even when close() reports EINTR, and retrying can close a
 * descriptor another thread just received from open().
 */

#ifndef CCP_COMMON_IO_HH
#define CCP_COMMON_IO_HH

#include <cstddef>

#include <sys/types.h>

namespace ccp::io {

/** open(2), retrying EINTR.  @return the descriptor or -1 (errno
 *  set, never EINTR). */
int openRetry(const char *path, int flags, unsigned mode = 0);

/**
 * Write all @p n bytes of @p buf to @p fd, retrying interrupted and
 * short writes.  @return false on any non-EINTR error (errno set).
 */
bool writeFull(int fd, const void *buf, std::size_t n);

/**
 * Read up to @p n bytes into @p buf, retrying interrupted and short
 * reads.  @return the number of bytes read — less than @p n only at
 * end of file — or -1 on a non-EINTR error (errno set).
 */
ssize_t readFull(int fd, void *buf, std::size_t n);

/** fsync(2), retrying EINTR.  @return false on error (errno set). */
bool fsyncRetry(int fd);

} // namespace ccp::io

#endif // CCP_COMMON_IO_HH
