/**
 * @file
 * Error reporting helpers in the gem5 style.
 *
 * panic()  — an internal invariant was violated (a ccp bug); aborts.
 * fatal()  — the user asked for something impossible (bad config);
 *            exits with status 1.
 * warn()   — something is suspicious but the run can continue.
 * inform() — plain status output.
 * debug()  — chatty diagnostics, off by default.
 *
 * Output below panic/fatal is filtered by a log level, initialized
 * once from the CCP_LOG environment variable (quiet|warn|info|debug;
 * default info) so sweeps can run silent in CI and verbose locally.
 */

#ifndef CCP_COMMON_LOGGING_HH
#define CCP_COMMON_LOGGING_HH

#include <cstdint>
#include <sstream>
#include <string>

namespace ccp {

/** Verbosity threshold; each level includes the ones above it. */
enum class LogLevel : std::uint8_t
{
    Quiet, ///< only panic/fatal
    Warn,  ///< + warnings
    Info,  ///< + status output (default)
    Debug, ///< + diagnostics
};

/** Current threshold (first call reads CCP_LOG). */
LogLevel logLevel();

/** Override the threshold programmatically (wins over CCP_LOG). */
void setLogLevel(LogLevel level);

/**
 * Parse a CCP_LOG value ("quiet", "warn", "info", "debug", case
 * insensitive).  @return false (leaving @p out untouched) on an
 * unrecognized spelling.
 */
bool parseLogLevel(const std::string &text, LogLevel &out);

/** The canonical CCP_LOG spelling of @p level ("quiet", "warn",
 *  "info", "debug") — what a supervisor exports to child processes so
 *  a --log override propagates to workers. */
const char *logLevelName(LogLevel level);

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);

namespace detail {

/** Render a sequence of stream-insertable values into one string. */
template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

} // namespace ccp

/** Abort with a message: internal invariant violated. */
#define ccp_panic(...) \
    ::ccp::panicImpl(__FILE__, __LINE__, ::ccp::detail::format(__VA_ARGS__))

/** Exit with a message: unusable user configuration. */
#define ccp_fatal(...) \
    ::ccp::fatalImpl(__FILE__, __LINE__, ::ccp::detail::format(__VA_ARGS__))

/** Print a warning and continue. */
#define ccp_warn(...) \
    ::ccp::warnImpl(::ccp::detail::format(__VA_ARGS__))

/** Print a status message. */
#define ccp_inform(...) \
    ::ccp::informImpl(::ccp::detail::format(__VA_ARGS__))

/**
 * Print a diagnostic (CCP_LOG=debug only).  The level check happens
 * before the arguments are formatted, so disabled debug output costs
 * one branch.
 */
#define ccp_debug(...)                                              \
    do {                                                            \
        if (::ccp::logLevel() >= ::ccp::LogLevel::Debug)            \
            ::ccp::debugImpl(::ccp::detail::format(__VA_ARGS__));   \
    } while (0)

/** panic() unless the condition holds. */
#define ccp_assert(cond, ...)                                          \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::ccp::panicImpl(__FILE__, __LINE__,                        \
                ::ccp::detail::format("assertion '" #cond "' failed: ", \
                                      ##__VA_ARGS__));                  \
        }                                                               \
    } while (0)

#endif // CCP_COMMON_LOGGING_HH
