/**
 * @file
 * Deterministic fault injection for resilience testing.
 *
 * Every recovery path in the sweep runner (torn checkpoint writes,
 * worker exceptions, allocation-budget failures, signal drain) must be
 * exercised by tests, not just claimed.  This module provides the
 * trigger mechanism: named injection points, armed through the
 * CCP_FAULT_INJECT environment variable, that fire exactly once at a
 * caller-chosen ordinal so a failing run is reproducible bit for bit.
 *
 *   CCP_FAULT_INJECT="sweep.worker_throw=3,checkpoint.torn_write=100"
 *
 * arms point "sweep.worker_throw" to fire at index 3 and
 * "checkpoint.torn_write" with value 100 (the meaning of the value is
 * the injection site's — a batch ordinal, a byte count, ...).  Points
 * that are not armed cost one pointer load behind an `enabled()`
 * check, so production runs pay nothing measurable.
 *
 * Armed points (see docs/RESILIENCE.md for the catalogue):
 *   sweep.worker_throw=K    worker evaluating batch K throws once
 *   sweep.interrupt_at=K    runner requests interrupt when batch K starts
 *   mem.alloc_fail=M        memory-budget admission of plan M fails once
 *   checkpoint.torn_write=N checkpoint write persists only the first
 *                           N bytes, once
 *   checkpoint.skip_fsync=1 suppress the fsync barriers of every
 *                           checkpoint/state-blob write (non-consuming:
 *                           read via armed(), so one arming covers the
 *                           whole run — the pre-durability-fix mode)
 *
 * Distributed-sweep points (fire in the worker whose --shard-id
 * equals the armed value; the orchestrator strips the one-shot ones
 * from retried workers' environments so a retry converges —
 * shard.worker_fail is persistent on purpose, it exercises
 * quarantine):
 *   shard.worker_kill=I     worker I SIGKILLs itself after its first
 *                           fresh scheme completes
 *   shard.worker_hang=I     worker I wedges after its first fresh
 *                           scheme (liveness deadline must fire)
 *   shard.torn_checkpoint=I worker I truncates its final shard
 *                           checkpoint to half size after a clean run
 *   shard.worker_fail=I     worker I exits 1 before evaluating, every
 *                           attempt
 */

#ifndef CCP_COMMON_FAULT_HH
#define CCP_COMMON_FAULT_HH

#include <cstdint>
#include <optional>
#include <string>

namespace ccp::fault {

/** True if CCP_FAULT_INJECT armed at least one point. */
bool enabled();

/** The armed value of @p point, or nullopt if not armed. */
std::optional<std::uint64_t> armed(const std::string &point);

/**
 * True exactly once: when @p index equals the armed value of
 * @p point and the point has not fired yet.  Thread-safe; at most one
 * caller observes true for a given point per arming.
 */
bool fireAt(const std::string &point, std::uint64_t index);

/**
 * Consume the armed value of @p point: returns it on the first call
 * (marking the point fired) and nullopt afterwards or when unarmed.
 * For value-carrying faults (torn write byte counts).
 */
std::optional<std::uint64_t> consume(const std::string &point);

/** Re-read CCP_FAULT_INJECT and reset all fired flags (tests). */
void reinit();

} // namespace ccp::fault

#endif // CCP_COMMON_FAULT_HH
