#include "common/bitmap.hh"

namespace ccp {

std::string
SharingBitmap::toString(unsigned n_nodes) const
{
    std::string s;
    s.reserve(n_nodes);
    for (unsigned i = 0; i < n_nodes; ++i)
        s.push_back(test(i) ? '1' : '0');
    return s;
}

} // namespace ccp
