#include "common/thread_pool.hh"

#include <algorithm>

namespace ccp {

namespace {

std::atomic<const PoolTraceHooks *> g_poolHooks{nullptr};

} // namespace

void
setPoolTraceHooks(const PoolTraceHooks *hooks)
{
    g_poolHooks.store(hooks, std::memory_order_release);
}

const PoolTraceHooks *
poolTraceHooks()
{
    return g_poolHooks.load(std::memory_order_acquire);
}

unsigned
ThreadPool::defaultThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n > 0 ? n : 1;
}

ThreadPool::ThreadPool(unsigned threads)
    : nThreads_(threads > 0 ? threads : defaultThreads())
{
    workers_.reserve(nThreads_ - 1);
    for (unsigned w = 1; w < nThreads_; ++w)
        workers_.emplace_back([this, w] { workerLoop(w); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    startCv_.notify_all();
    for (auto &t : workers_)
        t.join();
}

void
ThreadPool::drainChunks(unsigned worker)
{
    for (;;) {
        std::size_t begin = cursor_.fetch_add(chunk_);
        if (begin >= nJobs_)
            return;
        std::size_t end = std::min(begin + chunk_, nJobs_);
        const PoolTraceHooks *hooks = poolTraceHooks();
        if (hooks)
            hooks->chunkBegin(begin, end - begin);
        try {
            for (std::size_t job = begin; job < end; ++job)
                (*fn_)(job, worker);
            if (hooks)
                hooks->chunkEnd();
        } catch (...) {
            if (hooks)
                hooks->chunkEnd();
            {
                std::lock_guard<std::mutex> lock(mutex_);
                if (!error_)
                    error_ = std::current_exception();
            }
            // Cancel the unclaimed remainder; in-flight chunks on
            // other workers run to completion before forEach returns.
            cursor_.store(nJobs_);
            return;
        }
    }
}

void
ThreadPool::setWorkerStartHook(std::function<void(unsigned)> hook)
{
    std::lock_guard<std::mutex> lock(mutex_);
    workerHook_ = std::move(hook);
    ++workerHookGen_;
}

void
ThreadPool::workerLoop(unsigned id)
{
    // Worker ids 1..n-1; id 0 is the calling thread.
    std::uint64_t seen = 0;
    std::uint64_t hook_seen = 0;
    for (;;) {
        // Idle gap: reported retroactively at wake through the trace
        // hooks (the parked thread records nothing in between, so the
        // backdated span keeps per-thread timestamps monotone).
        const PoolTraceHooks *hooks = poolTraceHooks();
        const std::uint64_t idle_begin =
            hooks ? hooks->nowNs() : 0;
        std::function<void(unsigned)> start_hook;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            startCv_.wait(lock, [&] {
                return stop_ || generation_ != seen;
            });
            if (stop_)
                return;
            seen = generation_;
            if (workerHookGen_ != hook_seen) {
                hook_seen = workerHookGen_;
                start_hook = workerHook_;
            }
        }
        if (hooks)
            hooks->idle(idle_begin, hooks->nowNs());
        // Run any freshly installed start hook outside the lock,
        // before this worker claims its first chunk of the loop.
        if (start_hook)
            start_hook(id);
        drainChunks(id);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--active_ == 0)
                doneCv_.notify_all();
        }
    }
}

void
ThreadPool::forEach(std::size_t nJobs, const JobFn &fn,
                    std::size_t chunk)
{
    if (nJobs == 0)
        return;
    if (chunk == 0)
        chunk = std::max<std::size_t>(1, nJobs / (nThreads_ * 8));

    if (workers_.empty()) {
        // Sequential pool: the pre-parallel code path, exceptions
        // propagating naturally.
        for (std::size_t job = 0; job < nJobs; ++job)
            fn(job, 0);
        return;
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        fn_ = &fn;
        nJobs_ = nJobs;
        chunk_ = chunk;
        cursor_.store(0);
        error_ = nullptr;
        active_ = static_cast<unsigned>(workers_.size());
        ++generation_;
    }
    startCv_.notify_all();

    drainChunks(0);

    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        doneCv_.wait(lock, [&] { return active_ == 0; });
        fn_ = nullptr;
        error = error_;
        error_ = nullptr;
    }
    if (error)
        std::rethrow_exception(error);
}

} // namespace ccp
