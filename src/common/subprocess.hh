/**
 * @file
 * One-shot child-process runner for the shard supervisor.
 *
 * The sweep orchestrator (sweep/orchestrator.hh) re-invokes the bench
 * binary once per shard and must survive everything a child can do to
 * it: crash, hang, drain on SIGTERM, scribble on stderr, or die before
 * exec.  This wrapper owns the full lifecycle of one child —
 * fork/execve, a stderr capture pipe, an optional per-child deadline
 * with SIGTERM→SIGKILL escalation, and EINTR-safe waiting — and
 * reduces the outcome to a small classification the supervisor's
 * retry policy can switch on:
 *
 *   Clean       exit 0
 *   Drained     exit 75 (EX_TEMPFAIL — the ResilientRunner drain
 *               convention: state checkpointed, rerun with --resume)
 *   Failed      any other exit code
 *   Signaled    killed by a signal the supervisor did not send
 *   Timeout     deadline expired; we escalated SIGTERM→SIGKILL
 *   SpawnError  fork or execve itself failed (child never ran)
 *
 * The fork/exec gap is async-signal-safe: argv and the environment
 * are flattened to char* arrays *before* fork(), so the child calls
 * only dup2/open/execve/_exit — no allocation, no locks — which
 * matters because the supervisor forks from ThreadPool workers and a
 * post-fork malloc in the child can deadlock on another thread's
 * heap lock.  exec failure is reported through a CLOEXEC status pipe
 * (the self-pipe trick), so "binary not found" is a structured
 * SpawnError, not a mystery exit 127.
 *
 * Liveness is the caller's to define: @ref SubprocessSpec::progressProbe
 * is polled between waits, and any poll that returns true re-arms the
 * deadline.  The orchestrator points it at the child's shard
 * checkpoint file, so a slow-but-advancing worker is never shot while
 * a genuinely wedged one still dies on schedule.
 */

#ifndef CCP_COMMON_SUBPROCESS_HH
#define CCP_COMMON_SUBPROCESS_HH

#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace ccp {

struct SubprocessSpec
{
    /** Program + arguments; argv[0] is the path passed to execve. */
    std::vector<std::string> argv;

    /** Environment overrides applied on top of the parent's
     *  environment (set or replace, applied after envUnset). */
    std::vector<std::pair<std::string, std::string>> envSet;
    /** Variable names removed from the child's environment. */
    std::vector<std::string> envUnset;

    /** Redirect the child's stdout here (e.g. "/dev/null"); empty =
     *  inherit.  stderr is always captured into the tail buffer. */
    std::string stdoutPath;

    /** Wall-clock deadline in seconds; 0 = none.  Re-armed whenever
     *  progressProbe reports progress. */
    double deadlineSec = 0.0;
    /** Seconds between SIGTERM and the SIGKILL escalation. */
    double termGraceSec = 2.0;
    /** Liveness/deadline poll granularity. */
    double pollIntervalSec = 0.05;

    /** Last-N-bytes stderr window kept for failure reports. */
    std::size_t stderrTailMax = 4096;

    /** Optional liveness probe, polled roughly every
     *  pollIntervalSec; returning true re-arms the deadline. */
    std::function<bool()> progressProbe;
};

enum class SubprocessStatus : unsigned char
{
    Clean,
    Drained,
    Failed,
    Signaled,
    Timeout,
    SpawnError,
};

const char *subprocessStatusName(SubprocessStatus status);

struct SubprocessResult
{
    SubprocessStatus status = SubprocessStatus::SpawnError;
    /** Exit code when the child exited (Clean/Drained/Failed). */
    int exitCode = -1;
    /** Terminating signal for Signaled/Timeout. */
    int signalNo = 0;
    double wallSec = 0.0;
    /** The last stderrTailMax bytes the child wrote to stderr. */
    std::string stderrTail;
    /** Human-readable cause when status == SpawnError. */
    std::string spawnError;
};

/** Run one child to completion (or deadline) per @p spec.  Blocks. */
SubprocessResult runSubprocess(const SubprocessSpec &spec);

} // namespace ccp

#endif // CCP_COMMON_SUBPROCESS_HH
