/**
 * @file
 * Minimal NUMA topology discovery and thread pinning, with no library
 * dependency: the node/cpu map is read from
 * /sys/devices/system/node/node<N>/cpulist (the same source libnuma
 * parses) and pinning goes through sched_setaffinity.
 *
 * The sweep uses this to make ParallelSweep NUMA-aware: worker
 * threads are pinned round-robin across nodes through the ThreadPool
 * start hook, so each worker's batch state — allocated and
 * first-touched on the worker itself — lands on the socket that will
 * stream events through it.  On single-node machines (or non-Linux
 * hosts, or when the sysfs tree is absent) topology discovery returns
 * at most one node and the sweep leaves affinity untouched —
 * behaviour degrades to exactly the pre-NUMA configuration.
 */

#ifndef CCP_COMMON_NUMA_HH
#define CCP_COMMON_NUMA_HH

#include <string>
#include <vector>

namespace ccp {

/** One NUMA node: its id and the cpus local to it. */
struct NumaNode
{
    unsigned id = 0;
    std::vector<unsigned> cpus;
};

struct NumaTopology
{
    /** Nodes with at least one cpu, ordered by node id.  Empty when
     *  the host exposes no topology (non-Linux, no sysfs). */
    std::vector<NumaNode> nodes;

    /** True only when pinning can possibly help. */
    bool multiNode() const { return nodes.size() > 1; }
};

/**
 * Parse a kernel cpulist string ("0-3,8,10-11") into cpu ids.
 * Malformed input yields the ids parsed up to the bad token; order
 * and duplicates are preserved as written.
 */
std::vector<unsigned> parseCpuList(const std::string &text);

/** Discover the host topology (empty on failure — never throws). */
NumaTopology numaTopology();

/**
 * Pin the calling thread to @p cpus.  @return true on success; false
 * when the set is empty, the host has no affinity syscall, or the
 * kernel rejects the mask (cpuset restrictions) — callers treat
 * false as "run unpinned", never as an error.
 */
bool pinCurrentThread(const std::vector<unsigned> &cpus);

} // namespace ccp

#endif // CCP_COMMON_NUMA_HH
