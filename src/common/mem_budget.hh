/**
 * @file
 * MemBudget: a byte budget for predictor-state admission control.
 *
 * The design-space sweeps instantiate predictor tables up to 2^24 bits
 * *per scheme*; a pathological scheme set (or a generous one on a
 * small machine) can OOM-kill the whole sweep and discard hours of
 * completed work.  The sweep runner pre-computes each batch's packed
 * predictor-table footprint (sweep::schemeStateWords) and asks this
 * guard before evaluating it, degrading gracefully — batches are
 * planned under the budget, and a single scheme that alone exceeds it
 * is skipped and reported instead of attempted.
 *
 * The budget bounds the footprint of ONE in-flight batch; with T
 * worker threads total predictor state is bounded by T x budget.
 *
 * Also here: the human-friendly byte-size syntax the --mem-budget
 * flag accepts ("512M", "2G", "65536").
 */

#ifndef CCP_COMMON_MEM_BUDGET_HH
#define CCP_COMMON_MEM_BUDGET_HH

#include <cstdint>
#include <string>

namespace ccp {

/**
 * Parse "<number>[K|M|G]" (decimal number, binary suffix, case
 * insensitive) into bytes.  @return false on malformed input or
 * overflow; @p bytes is untouched on failure.
 */
bool parseByteSize(const std::string &text, std::uint64_t &bytes);

/** Render bytes as "512B", "16K", "1.5G" for logs and reports. */
std::string formatByteSize(std::uint64_t bytes);

/**
 * Admission guard over a fixed byte budget (0 = unlimited).
 *
 * admit() is where the "mem.alloc_fail" fault-injection point lives:
 * arming CCP_FAULT_INJECT=mem.alloc_fail=M makes the admission of
 * plan ordinal M fail exactly once, so the skip-and-report path is
 * testable without building a multi-gigabyte scheme.
 */
class MemBudget
{
  public:
    explicit MemBudget(std::uint64_t total_bytes = 0)
        : totalBytes_(total_bytes)
    {
    }

    bool unlimited() const { return totalBytes_ == 0; }
    std::uint64_t totalBytes() const { return totalBytes_; }

    /** Pure budget check (no fault hook, no side effects). */
    bool
    fits(std::uint64_t bytes) const
    {
        return unlimited() || bytes <= totalBytes_;
    }

    /**
     * Admission decision for plan ordinal @p index needing @p bytes:
     * fits() unless the "mem.alloc_fail" point is armed at @p index
     * (which fails the admission exactly once).
     */
    bool admit(std::uint64_t index, std::uint64_t bytes) const;

  private:
    std::uint64_t totalBytes_;
};

} // namespace ccp

#endif // CCP_COMMON_MEM_BUDGET_HH
