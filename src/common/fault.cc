#include "common/fault.hh"

#include <cstdlib>
#include <map>
#include <mutex>

#include "common/logging.hh"
#include "common/parse.hh"

namespace ccp::fault {

namespace {

struct Point
{
    std::uint64_t value = 0;
    bool fired = false;
};

struct State
{
    std::map<std::string, Point> points;
    bool enabled = false;
};

std::mutex g_mutex;
State g_state;
bool g_initialized = false;

/** Parse "name=value,name=value"; malformed clauses are warned about
 *  and skipped so a typo cannot silently disable a whole test run. */
void
parseSpec(const char *spec, State &state)
{
    std::string text = spec;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t comma = text.find(',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        std::string clause = text.substr(pos, comma - pos);
        pos = comma + 1;
        if (clause.empty())
            continue;
        std::size_t eq = clause.find('=');
        if (eq == std::string::npos || eq == 0) {
            ccp_warn("CCP_FAULT_INJECT: ignoring malformed clause '",
                     clause, "' (want point=value)");
            continue;
        }
        // Strict full-string parse (base 0 keeps the 0x convention):
        // strtoull would wrap "-1" to 2^64-1 and stop silently at the
        // first stray character, arming the point at a bogus ordinal.
        std::uint64_t value = 0;
        if (!parseU64(clause.substr(eq + 1), value, 0)) {
            ccp_warn("CCP_FAULT_INJECT: ignoring clause '", clause,
                     "' with malformed value");
            continue;
        }
        state.points[clause.substr(0, eq)] = Point{value, false};
    }
    state.enabled = !state.points.empty();
}

void
initLocked()
{
    if (g_initialized)
        return;
    g_initialized = true;
    g_state = State{};
    if (const char *spec = std::getenv("CCP_FAULT_INJECT"))
        parseSpec(spec, g_state);
}

} // namespace

bool
enabled()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    initLocked();
    return g_state.enabled;
}

std::optional<std::uint64_t>
armed(const std::string &point)
{
    std::lock_guard<std::mutex> lock(g_mutex);
    initLocked();
    auto it = g_state.points.find(point);
    if (it == g_state.points.end())
        return std::nullopt;
    return it->second.value;
}

bool
fireAt(const std::string &point, std::uint64_t index)
{
    std::lock_guard<std::mutex> lock(g_mutex);
    initLocked();
    auto it = g_state.points.find(point);
    if (it == g_state.points.end() || it->second.fired ||
        it->second.value != index)
        return false;
    it->second.fired = true;
    ccp_warn("fault injection: firing '", point, "' at ", index);
    return true;
}

std::optional<std::uint64_t>
consume(const std::string &point)
{
    std::lock_guard<std::mutex> lock(g_mutex);
    initLocked();
    auto it = g_state.points.find(point);
    if (it == g_state.points.end() || it->second.fired)
        return std::nullopt;
    it->second.fired = true;
    ccp_warn("fault injection: consuming '", point, "' (value ",
             it->second.value, ")");
    return it->second.value;
}

void
reinit()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    g_initialized = false;
    initLocked();
}

} // namespace ccp::fault
