#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hh"

namespace ccp {

void
Summary::add(double x)
{
    ++count_;
    sum_ += x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double
Summary::var() const
{
    return count_ >= 2 ? m2_ / static_cast<double>(count_) : 0.0;
}

double
Summary::stddev() const
{
    return std::sqrt(var());
}

void
Summary::merge(const Summary &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    // Chan et al. parallel variance combination.
    double na = static_cast<double>(count_);
    double nb = static_cast<double>(other.count_);
    double delta = other.mean_ - mean_;
    m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
    mean_ = (na * mean_ + nb * other.mean_) / (na + nb);
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

namespace {

/** floor(log2(v)) with 0 mapping to bucket 0. */
std::size_t
logBucket(std::uint64_t value)
{
    return value ? 63u - static_cast<std::size_t>(
                             __builtin_clzll(value))
                 : 0;
}

} // namespace

void
LogHistogram::add(std::uint64_t value)
{
    ++counts_[logBucket(value)];
    ++count_;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

std::uint64_t
LogHistogram::bucket(std::size_t i) const
{
    ccp_assert(i < nBuckets, "log-histogram bucket out of range");
    return counts_[i];
}

std::uint64_t
LogHistogram::bucketLo(std::size_t i)
{
    ccp_assert(i < nBuckets, "log-histogram bucket out of range");
    return i ? std::uint64_t(1) << i : 0;
}

double
LogHistogram::quantile(double q) const
{
    if (count_ == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the q-th sample (1-based, nearest-rank ceiling).
    const double want = q * static_cast<double>(count_);
    std::uint64_t rank = static_cast<std::uint64_t>(std::ceil(want));
    rank = std::clamp<std::uint64_t>(rank, 1, count_);

    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < nBuckets; ++i) {
        if (counts_[i] == 0)
            continue;
        if (seen + counts_[i] < rank) {
            seen += counts_[i];
            continue;
        }
        // Linear interpolation inside [2^i, 2^(i+1)), with the
        // bucket's bounds tightened to the observed range first: the
        // lowest occupied bucket must interpolate up from min_ (not
        // extrapolate below the smallest sample toward the bucket
        // floor) and the topmost from at most max_, so a
        // single-sample histogram reports exactly that sample.
        const double lo =
            static_cast<double>(std::max(bucketLo(i), min_));
        const double hi = static_cast<double>(
            i + 1 < nBuckets ? std::min(bucketLo(i + 1), max_)
                             : max_);
        const double frac =
            static_cast<double>(rank - seen) /
            static_cast<double>(counts_[i]);
        double v = lo + (hi - lo) * frac;
        // Belt and braces: never report a value outside [min_, max_].
        v = std::clamp(v, static_cast<double>(min_),
                       static_cast<double>(max_));
        return v;
    }
    return static_cast<double>(max_);
}

void
LogHistogram::merge(const LogHistogram &other)
{
    if (other.count_ == 0)
        return;
    for (std::size_t i = 0; i < nBuckets; ++i)
        counts_[i] += other.counts_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

std::string
LogHistogram::toString() const
{
    std::ostringstream os;
    bool first = true;
    for (std::size_t i = 0; i < nBuckets; ++i) {
        if (!counts_[i])
            continue;
        if (!first)
            os << ' ';
        first = false;
        os << '[' << bucketLo(i) << ',';
        if (i + 1 < nBuckets)
            os << bucketLo(i + 1);
        else
            os << "inf";
        os << "):" << counts_[i];
    }
    return os.str();
}

Histogram::Histogram(std::size_t buckets) : counts_(buckets, 0)
{
    ccp_assert(buckets > 0, "histogram needs at least one bucket");
}

void
Histogram::add(std::uint64_t value)
{
    if (value < counts_.size())
        ++counts_[value];
    else
        ++overflow_;
    ++total_;
    sum_ += static_cast<double>(
        std::min<std::uint64_t>(value, counts_.size()));
}

std::uint64_t
Histogram::bucket(std::size_t i) const
{
    ccp_assert(i < counts_.size(), "histogram bucket out of range");
    return counts_[i];
}

double
Histogram::mean() const
{
    return total_ ? sum_ / static_cast<double>(total_) : 0.0;
}

void
Histogram::merge(const Histogram &other)
{
    ccp_assert(counts_.size() == other.counts_.size(),
               "merging histograms of different sizes (", counts_.size(),
               " vs ", other.counts_.size(), ")");
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    overflow_ += other.overflow_;
    total_ += other.total_;
    sum_ += other.sum_;
}

std::string
Histogram::toString() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (i)
            os << ' ';
        os << counts_[i];
    }
    if (overflow_)
        os << " +" << overflow_;
    return os.str();
}

} // namespace ccp
