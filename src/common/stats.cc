#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hh"

namespace ccp {

void
Summary::add(double x)
{
    ++count_;
    sum_ += x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double
Summary::var() const
{
    return count_ >= 2 ? m2_ / static_cast<double>(count_) : 0.0;
}

double
Summary::stddev() const
{
    return std::sqrt(var());
}

void
Summary::merge(const Summary &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    // Chan et al. parallel variance combination.
    double na = static_cast<double>(count_);
    double nb = static_cast<double>(other.count_);
    double delta = other.mean_ - mean_;
    m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
    mean_ = (na * mean_ + nb * other.mean_) / (na + nb);
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

Histogram::Histogram(std::size_t buckets) : counts_(buckets, 0)
{
    ccp_assert(buckets > 0, "histogram needs at least one bucket");
}

void
Histogram::add(std::uint64_t value)
{
    if (value < counts_.size())
        ++counts_[value];
    else
        ++overflow_;
    ++total_;
    sum_ += static_cast<double>(
        std::min<std::uint64_t>(value, counts_.size()));
}

std::uint64_t
Histogram::bucket(std::size_t i) const
{
    ccp_assert(i < counts_.size(), "histogram bucket out of range");
    return counts_[i];
}

double
Histogram::mean() const
{
    return total_ ? sum_ / static_cast<double>(total_) : 0.0;
}

void
Histogram::merge(const Histogram &other)
{
    ccp_assert(counts_.size() == other.counts_.size(),
               "merging histograms of different sizes (", counts_.size(),
               " vs ", other.counts_.size(), ")");
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    overflow_ += other.overflow_;
    total_ += other.total_;
    sum_ += other.sum_;
}

std::string
Histogram::toString() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (i)
            os << ' ';
        os << counts_[i];
    }
    if (overflow_)
        os << " +" << overflow_;
    return os.str();
}

} // namespace ccp
