#include "common/stats.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace ccp {

void
Summary::add(double x)
{
    ++count_;
    sum_ += x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
Summary::merge(const Summary &other)
{
    if (other.count_ == 0)
        return;
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

Histogram::Histogram(std::size_t buckets) : counts_(buckets, 0)
{
    ccp_assert(buckets > 0, "histogram needs at least one bucket");
}

void
Histogram::add(std::uint64_t value)
{
    if (value < counts_.size())
        ++counts_[value];
    else
        ++overflow_;
    ++total_;
    sum_ += static_cast<double>(
        std::min<std::uint64_t>(value, counts_.size()));
}

std::uint64_t
Histogram::bucket(std::size_t i) const
{
    ccp_assert(i < counts_.size(), "histogram bucket out of range");
    return counts_[i];
}

double
Histogram::mean() const
{
    return total_ ? sum_ / static_cast<double>(total_) : 0.0;
}

std::string
Histogram::toString() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (i)
            os << ' ';
        os << counts_[i];
    }
    if (overflow_)
        os << " +" << overflow_;
    return os.str();
}

} // namespace ccp
