#include "common/numa.hh"

#include <cstdlib>
#include <fstream>
#include <sstream>

#if defined(__linux__)
#include <sched.h>
#endif

namespace ccp {

std::vector<unsigned>
parseCpuList(const std::string &text)
{
    std::vector<unsigned> cpus;
    std::istringstream in(text);
    std::string token;
    while (std::getline(in, token, ',')) {
        // Trim whitespace (the sysfs file ends in a newline).
        const auto first = token.find_first_not_of(" \t\n\r");
        if (first == std::string::npos)
            continue;
        const auto last = token.find_last_not_of(" \t\n\r");
        token = token.substr(first, last - first + 1);

        const auto dash = token.find('-');
        char *end = nullptr;
        if (dash == std::string::npos) {
            const unsigned long cpu =
                std::strtoul(token.c_str(), &end, 10);
            if (end == token.c_str() || *end != '\0')
                break;
            cpus.push_back(static_cast<unsigned>(cpu));
        } else {
            const std::string lo_s = token.substr(0, dash);
            const std::string hi_s = token.substr(dash + 1);
            const unsigned long lo =
                std::strtoul(lo_s.c_str(), &end, 10);
            if (end == lo_s.c_str() || *end != '\0')
                break;
            const unsigned long hi =
                std::strtoul(hi_s.c_str(), &end, 10);
            if (end == hi_s.c_str() || *end != '\0' || hi < lo)
                break;
            for (unsigned long c = lo; c <= hi; ++c)
                cpus.push_back(static_cast<unsigned>(c));
        }
    }
    return cpus;
}

NumaTopology
numaTopology()
{
    NumaTopology topo;
#if defined(__linux__)
    // Probe node ids in order; the sysfs directory is dense in
    // practice, but tolerate gaps up to a small bound so an offlined
    // node does not hide those after it.
    unsigned misses = 0;
    for (unsigned id = 0; misses < 16; ++id) {
        std::ifstream in("/sys/devices/system/node/node" +
                         std::to_string(id) + "/cpulist");
        if (!in) {
            ++misses;
            continue;
        }
        misses = 0;
        std::string text;
        std::getline(in, text);
        NumaNode node;
        node.id = id;
        node.cpus = parseCpuList(text);
        if (!node.cpus.empty())
            topo.nodes.push_back(std::move(node));
    }
#endif
    return topo;
}

bool
pinCurrentThread(const std::vector<unsigned> &cpus)
{
    if (cpus.empty())
        return false;
#if defined(__linux__)
    cpu_set_t set;
    CPU_ZERO(&set);
    for (unsigned cpu : cpus) {
        if (cpu < CPU_SETSIZE)
            CPU_SET(cpu, &set);
    }
    return sched_setaffinity(0, sizeof(set), &set) == 0;
#else
    return false;
#endif
}

} // namespace ccp
