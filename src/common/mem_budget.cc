#include "common/mem_budget.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "common/fault.hh"

namespace ccp {

bool
parseByteSize(const std::string &text, std::uint64_t &bytes)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    unsigned long long value = std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str())
        return false;
    std::uint64_t shift = 0;
    if (*end != '\0') {
        switch (std::tolower(static_cast<unsigned char>(*end))) {
          case 'k':
            shift = 10;
            break;
          case 'm':
            shift = 20;
            break;
          case 'g':
            shift = 30;
            break;
          default:
            return false;
        }
        if (end[1] != '\0')
            return false;
    }
    // Reject shifts that would silently wrap.
    if (shift > 0 && value > (~0ull >> shift))
        return false;
    bytes = static_cast<std::uint64_t>(value) << shift;
    return true;
}

std::string
formatByteSize(std::uint64_t bytes)
{
    char buf[32];
    if (bytes < (1ull << 10)) {
        std::snprintf(buf, sizeof(buf), "%lluB",
                      (unsigned long long)bytes);
    } else if (bytes < (1ull << 20)) {
        std::snprintf(buf, sizeof(buf), "%.1fK",
                      double(bytes) / double(1ull << 10));
    } else if (bytes < (1ull << 30)) {
        std::snprintf(buf, sizeof(buf), "%.1fM",
                      double(bytes) / double(1ull << 20));
    } else {
        std::snprintf(buf, sizeof(buf), "%.1fG",
                      double(bytes) / double(1ull << 30));
    }
    return buf;
}

bool
MemBudget::admit(std::uint64_t index, std::uint64_t bytes) const
{
    if (fault::enabled() && fault::fireAt("mem.alloc_fail", index))
        return false;
    return fits(bytes);
}

} // namespace ccp
