#include "common/mem_budget.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "common/fault.hh"
#include "common/parse.hh"

namespace ccp {

bool
parseByteSize(const std::string &text, std::uint64_t &bytes)
{
    if (text.empty())
        return false;
    // Split off an optional single trailing suffix, then parse the
    // digits strictly: strtoull's tokenizer lenience (" 16K", and
    // "-1" wrapping to 2^64-1) let a typo'd --mem-budget disable the
    // guard it was meant to tighten.
    std::size_t digits = text.size();
    std::uint64_t shift = 0;
    switch (std::tolower(static_cast<unsigned char>(text.back()))) {
      case 'k':
        shift = 10;
        --digits;
        break;
      case 'm':
        shift = 20;
        --digits;
        break;
      case 'g':
        shift = 30;
        --digits;
        break;
      default:
        break;
    }
    std::uint64_t value = 0;
    if (!parseU64(text.substr(0, digits), value))
        return false;
    // Reject shifts that would silently wrap.
    if (shift > 0 && value > (~0ull >> shift))
        return false;
    bytes = value << shift;
    return true;
}

std::string
formatByteSize(std::uint64_t bytes)
{
    char buf[32];
    if (bytes < (1ull << 10)) {
        std::snprintf(buf, sizeof(buf), "%lluB",
                      (unsigned long long)bytes);
    } else if (bytes < (1ull << 20)) {
        std::snprintf(buf, sizeof(buf), "%.1fK",
                      double(bytes) / double(1ull << 10));
    } else if (bytes < (1ull << 30)) {
        std::snprintf(buf, sizeof(buf), "%.1fM",
                      double(bytes) / double(1ull << 20));
    } else {
        std::snprintf(buf, sizeof(buf), "%.1fG",
                      double(bytes) / double(1ull << 30));
    }
    return buf;
}

bool
MemBudget::admit(std::uint64_t index, std::uint64_t bytes) const
{
    if (fault::enabled() && fault::fireAt("mem.alloc_fail", index))
        return false;
    return fits(bytes);
}

} // namespace ccp
