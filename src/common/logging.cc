#include "common/logging.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace ccp {

namespace {

LogLevel
initialLevel()
{
    const char *env = std::getenv("CCP_LOG");
    if (!env)
        return LogLevel::Info;
    LogLevel level = LogLevel::Info;
    if (!parseLogLevel(env, level))
        std::fprintf(stderr,
                     "warn: CCP_LOG='%s' not recognized "
                     "(want quiet|warn|info|debug); using info\n",
                     env);
    return level;
}

LogLevel &
currentLevel()
{
    static LogLevel level = initialLevel();
    return level;
}

} // namespace

LogLevel
logLevel()
{
    return currentLevel();
}

void
setLogLevel(LogLevel level)
{
    currentLevel() = level;
}

bool
parseLogLevel(const std::string &text, LogLevel &out)
{
    std::string low(text.size(), '\0');
    std::transform(text.begin(), text.end(), low.begin(),
                   [](unsigned char c) {
                       return static_cast<char>(std::tolower(c));
                   });
    if (low == "quiet" || low == "none") {
        out = LogLevel::Quiet;
    } else if (low == "warn" || low == "warning") {
        out = LogLevel::Warn;
    } else if (low == "info") {
        out = LogLevel::Info;
    } else if (low == "debug") {
        out = LogLevel::Debug;
    } else {
        return false;
    }
    return true;
}

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Quiet:
        return "quiet";
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Info:
        return "info";
      case LogLevel::Debug:
        return "debug";
    }
    return "info";
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(), file,
                 line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(), file,
                 line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (logLevel() < LogLevel::Warn)
        return;
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (logLevel() < LogLevel::Info)
        return;
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

void
debugImpl(const std::string &msg)
{
    if (logLevel() < LogLevel::Debug)
        return;
    std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

} // namespace ccp
