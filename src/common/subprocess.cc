#include "common/subprocess.hh"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/io.hh"
#include "common/logging.hh"

extern char **environ;

namespace ccp {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** The child's environment: the parent's, minus envUnset and any name
 *  envSet replaces, plus the envSet pairs.  Built before fork() so the
 *  child touches no heap. */
std::vector<std::string>
buildEnvStrings(const SubprocessSpec &spec)
{
    auto removed = [&spec](const char *entry) {
        const char *eq = std::strchr(entry, '=');
        const std::size_t name_len =
            eq ? static_cast<std::size_t>(eq - entry)
               : std::strlen(entry);
        auto matches = [&](const std::string &name) {
            return name.size() == name_len &&
                   std::memcmp(name.data(), entry, name_len) == 0;
        };
        for (const auto &name : spec.envUnset)
            if (matches(name))
                return true;
        for (const auto &kv : spec.envSet)
            if (matches(kv.first))
                return true;
        return false;
    };

    std::vector<std::string> env;
    for (char **e = environ; e && *e; ++e)
        if (!removed(*e))
            env.emplace_back(*e);
    for (const auto &kv : spec.envSet)
        env.push_back(kv.first + "=" + kv.second);
    return env;
}

std::vector<char *>
pointerVector(std::vector<std::string> &strings)
{
    std::vector<char *> ptrs;
    ptrs.reserve(strings.size() + 1);
    for (auto &s : strings)
        ptrs.push_back(s.data());
    ptrs.push_back(nullptr);
    return ptrs;
}

void
appendTail(std::string &tail, const char *data, std::size_t n,
           std::size_t max)
{
    tail.append(data, n);
    if (tail.size() > max)
        tail.erase(0, tail.size() - max);
}

} // namespace

const char *
subprocessStatusName(SubprocessStatus status)
{
    switch (status) {
      case SubprocessStatus::Clean:
        return "clean";
      case SubprocessStatus::Drained:
        return "drained";
      case SubprocessStatus::Failed:
        return "failed";
      case SubprocessStatus::Signaled:
        return "signaled";
      case SubprocessStatus::Timeout:
        return "timeout";
      case SubprocessStatus::SpawnError:
        return "spawn-error";
    }
    ccp_panic("bad SubprocessStatus");
}

SubprocessResult
runSubprocess(const SubprocessSpec &spec)
{
    SubprocessResult res;
    if (spec.argv.empty()) {
        res.spawnError = "empty argv";
        return res;
    }

    // Everything the child needs, flattened pre-fork (see file
    // comment: the fork/exec gap must not allocate).
    std::vector<std::string> argv_store = spec.argv;
    std::vector<char *> argv = pointerVector(argv_store);
    std::vector<std::string> env_store = buildEnvStrings(spec);
    std::vector<char *> envp = pointerVector(env_store);

    // stderr capture pipe + the exec-status self-pipe.  Both CLOEXEC:
    // a successful execve closes the status write end, turning the
    // parent's read into a clean EOF; an exec failure writes errno
    // through it first.
    int err_pipe[2] = {-1, -1};
    int status_pipe[2] = {-1, -1};
    if (::pipe2(err_pipe, O_CLOEXEC) != 0) {
        res.spawnError = std::string("pipe2: ") + std::strerror(errno);
        return res;
    }
    if (::pipe2(status_pipe, O_CLOEXEC) != 0) {
        res.spawnError = std::string("pipe2: ") + std::strerror(errno);
        ::close(err_pipe[0]);
        ::close(err_pipe[1]);
        return res;
    }

    int out_fd = -1;
    if (!spec.stdoutPath.empty()) {
        out_fd = io::openRetry(spec.stdoutPath.c_str(),
                               O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                               0644);
        if (out_fd < 0) {
            res.spawnError = "cannot open stdout redirect " +
                             spec.stdoutPath + ": " +
                             std::strerror(errno);
            ::close(err_pipe[0]);
            ::close(err_pipe[1]);
            ::close(status_pipe[0]);
            ::close(status_pipe[1]);
            return res;
        }
    }

    const Clock::time_point start = Clock::now();
    const pid_t pid = ::fork();
    if (pid < 0) {
        res.spawnError = std::string("fork: ") + std::strerror(errno);
        ::close(err_pipe[0]);
        ::close(err_pipe[1]);
        ::close(status_pipe[0]);
        ::close(status_pipe[1]);
        if (out_fd >= 0)
            ::close(out_fd);
        return res;
    }

    if (pid == 0) {
        // Child: only async-signal-safe calls from here to execve.
        while (::dup2(err_pipe[1], 2) < 0 && errno == EINTR) {
        }
        if (out_fd >= 0)
            while (::dup2(out_fd, 1) < 0 && errno == EINTR) {
            }
        ::execve(argv[0], argv.data(), envp.data());
        const int err = errno;
        (void)!io::writeFull(status_pipe[1], &err, sizeof(err));
        ::_exit(127);
    }

    // Parent.
    ::close(err_pipe[1]);
    ::close(status_pipe[1]);
    if (out_fd >= 0)
        ::close(out_fd);
    int err_fd = err_pipe[0];
    const int status_fd = status_pipe[0];

    const int poll_ms = std::max(
        1, static_cast<int>(spec.pollIntervalSec * 1000.0));

    // Deadline state machine: armed → SIGTERM at expiry → SIGKILL
    // after the grace period.  progressProbe re-arms.
    Clock::time_point armed_at = start;
    bool sent_term = false;
    bool sent_kill = false;
    bool timed_out = false;
    Clock::time_point term_at;

    int wstatus = 0;
    bool reaped = false;
    char buf[1024];
    while (!reaped) {
        // Sleep on stderr output (or plain sleep once it hit EOF).
        if (err_fd >= 0) {
            struct pollfd pfd = {err_fd, POLLIN, 0};
            int pr = ::poll(&pfd, 1, poll_ms);
            if (pr > 0) {
                ssize_t n = ::read(err_fd, buf, sizeof(buf));
                if (n > 0) {
                    appendTail(res.stderrTail, buf,
                               static_cast<std::size_t>(n),
                               spec.stderrTailMax);
                } else if (n == 0 ||
                           (n < 0 && errno != EINTR &&
                            errno != EAGAIN)) {
                    ::close(err_fd);
                    err_fd = -1;
                }
            }
        } else {
            ::poll(nullptr, 0, poll_ms);
        }

        pid_t w;
        while ((w = ::waitpid(pid, &wstatus, WNOHANG)) < 0 &&
               errno == EINTR) {
        }
        if (w == pid) {
            reaped = true;
            break;
        }

        if (spec.progressProbe && spec.progressProbe())
            armed_at = Clock::now();

        if (spec.deadlineSec > 0 && !sent_term &&
            secondsSince(armed_at) > spec.deadlineSec) {
            ::kill(pid, SIGTERM);
            sent_term = true;
            timed_out = true;
            term_at = Clock::now();
        }
        if (sent_term && !sent_kill &&
            secondsSince(term_at) > spec.termGraceSec) {
            ::kill(pid, SIGKILL);
            sent_kill = true;
        }
    }

    // Drain whatever stderr remains buffered in the pipe.  Non-blocking
    // on purpose: an orphaned grandchild (a killed shell's `sleep`, a
    // worker's helper) can inherit the write end and hold the pipe open
    // long after the child we reaped is gone — a blocking read here
    // would wedge the supervisor for as long as that orphan lives.
    if (err_fd >= 0)
        (void)::fcntl(err_fd, F_SETFL, O_NONBLOCK);
    while (err_fd >= 0) {
        ssize_t n = ::read(err_fd, buf, sizeof(buf));
        if (n > 0) {
            appendTail(res.stderrTail, buf,
                       static_cast<std::size_t>(n),
                       spec.stderrTailMax);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        ::close(err_fd);
        err_fd = -1;
    }

    res.wallSec = secondsSince(start);

    // An errno on the status pipe means execve never happened.
    int exec_errno = 0;
    ssize_t sn = io::readFull(status_fd, &exec_errno,
                              sizeof(exec_errno));
    ::close(status_fd);
    if (sn == static_cast<ssize_t>(sizeof(exec_errno))) {
        res.status = SubprocessStatus::SpawnError;
        res.spawnError = "execve " + spec.argv[0] + ": " +
                         std::strerror(exec_errno);
        return res;
    }

    if (WIFSIGNALED(wstatus)) {
        res.signalNo = WTERMSIG(wstatus);
        res.status = timed_out ? SubprocessStatus::Timeout
                               : SubprocessStatus::Signaled;
        return res;
    }
    if (WIFEXITED(wstatus)) {
        res.exitCode = WEXITSTATUS(wstatus);
        if (timed_out) {
            // SIGTERM landed and the child drained to an exit; still
            // a deadline overrun from the supervisor's point of view.
            res.status = SubprocessStatus::Timeout;
        } else if (res.exitCode == 0) {
            res.status = SubprocessStatus::Clean;
        } else if (res.exitCode == 75) {
            res.status = SubprocessStatus::Drained;
        } else {
            res.status = SubprocessStatus::Failed;
        }
        return res;
    }
    res.status = SubprocessStatus::Failed;
    res.spawnError = "unrecognized wait status";
    return res;
}

} // namespace ccp
