/**
 * @file
 * SharingBitmap: a fixed-width bitmap of reader nodes.
 *
 * The central data type of the paper: every prediction and every piece
 * of feedback is a bitmap with one bit per node, bit i set meaning
 * "node i read (or is predicted to read) the value".  The bitmap is a
 * value type backed by a single 64-bit word, which comfortably covers
 * the paper's 16-node machine and anything up to 64 nodes.
 */

#ifndef CCP_COMMON_BITMAP_HH
#define CCP_COMMON_BITMAP_HH

#include <bit>
#include <cstdint>
#include <string>

#include "common/logging.hh"
#include "common/types.hh"

namespace ccp {

/**
 * A bitmap of up to maxNodes reader nodes.
 *
 * The width (node count) is not stored; callers interpret the bitmap
 * against a known machine size.  Bits at or above the machine size must
 * simply never be set, which every producer in this library guarantees.
 */
class SharingBitmap
{
  public:
    /** The empty bitmap (no readers). */
    constexpr SharingBitmap() : bits_(0) {}

    /** Build directly from a raw bit pattern. */
    explicit constexpr SharingBitmap(std::uint64_t raw) : bits_(raw) {}

    /** A bitmap with the single bit for @p node set. */
    static constexpr SharingBitmap
    single(NodeId node)
    {
        return SharingBitmap(std::uint64_t(1) << node);
    }

    /** A bitmap with the low @p n bits set (all nodes of an n-node
     *  machine). */
    static constexpr SharingBitmap
    all(unsigned n)
    {
        return n >= 64 ? SharingBitmap(~std::uint64_t(0))
                       : SharingBitmap((std::uint64_t(1) << n) - 1);
    }

    /** Raw 64-bit pattern. */
    constexpr std::uint64_t raw() const { return bits_; }

    /** True if bit @p node is set. */
    constexpr bool
    test(NodeId node) const
    {
        return (bits_ >> node) & 1;
    }

    /** Set bit @p node. */
    void
    set(NodeId node)
    {
        ccp_assert(node < maxNodes, "node ", node, " out of range");
        bits_ |= std::uint64_t(1) << node;
    }

    /** Clear bit @p node. */
    void
    reset(NodeId node)
    {
        ccp_assert(node < maxNodes, "node ", node, " out of range");
        bits_ &= ~(std::uint64_t(1) << node);
    }

    /** Set bit @p node to @p value. */
    void
    assign(NodeId node, bool value)
    {
        if (value)
            set(node);
        else
            reset(node);
    }

    /** Number of set bits (readers). */
    constexpr unsigned popcount() const { return std::popcount(bits_); }

    /** True if no bits are set. */
    constexpr bool empty() const { return bits_ == 0; }

    /** True if every bit set here is also set in @p other. */
    constexpr bool
    subsetOf(const SharingBitmap &other) const
    {
        return (bits_ & ~other.bits_) == 0;
    }

    /** True if the two bitmaps share at least one set bit. */
    constexpr bool
    intersects(const SharingBitmap &other) const
    {
        return (bits_ & other.bits_) != 0;
    }

    constexpr SharingBitmap
    operator|(const SharingBitmap &o) const
    {
        return SharingBitmap(bits_ | o.bits_);
    }

    constexpr SharingBitmap
    operator&(const SharingBitmap &o) const
    {
        return SharingBitmap(bits_ & o.bits_);
    }

    constexpr SharingBitmap
    operator^(const SharingBitmap &o) const
    {
        return SharingBitmap(bits_ ^ o.bits_);
    }

    /** Bits set here but not in @p o. */
    constexpr SharingBitmap
    minus(const SharingBitmap &o) const
    {
        return SharingBitmap(bits_ & ~o.bits_);
    }

    SharingBitmap &
    operator|=(const SharingBitmap &o)
    {
        bits_ |= o.bits_;
        return *this;
    }

    SharingBitmap &
    operator&=(const SharingBitmap &o)
    {
        bits_ &= o.bits_;
        return *this;
    }

    constexpr bool
    operator==(const SharingBitmap &o) const = default;

    /**
     * Render as a string of '0'/'1' characters, node 0 leftmost, for
     * an @p n_nodes machine — e.g. "0100000000000010" for a 16-node
     * bitmap with nodes 1 and 14 set.
     */
    std::string toString(unsigned n_nodes) const;

  private:
    std::uint64_t bits_;
};

} // namespace ccp

#endif // CCP_COMMON_BITMAP_HH
