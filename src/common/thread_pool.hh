/**
 * @file
 * ThreadPool: a fixed pool of worker threads executing chunked
 * parallel-for loops — the execution engine under the sharded sweeps.
 *
 * The pool owns `threads - 1` std::threads; the calling thread is
 * always worker 0 and participates in every loop, so a one-thread
 * pool spawns nothing and forEach() degenerates to the plain
 * sequential loop (bit-identical to pre-pool behaviour).  Work is
 * handed out in chunks from an atomic cursor — cheap dynamic load
 * balancing (work stealing from a shared queue) without per-job
 * locking.
 *
 * Exceptions thrown by jobs are captured (first one wins), remaining
 * chunks are cancelled, and the exception is rethrown on the calling
 * thread after every worker has quiesced, so RAII in the caller sees
 * a fully stopped loop.
 */

#ifndef CCP_COMMON_THREAD_POOL_HH
#define CCP_COMMON_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ccp {

/**
 * Optional pool instrumentation hooks.  The execution tracer
 * (obs/trace.hh) installs these when tracing is enabled so Perfetto
 * shows the pool's task lifecycle — per-chunk run spans and the idle
 * gaps between loops — without common/ depending on obs/.  All
 * pointers must be valid; install nullptr to turn instrumentation
 * off.  Hooks run on the worker thread they describe.
 */
struct PoolTraceHooks
{
    /** A worker claimed jobs [first, first+count) and starts running
     *  them (paired with chunkEnd on the same thread). */
    void (*chunkBegin)(std::size_t first, std::size_t count);
    void (*chunkEnd)();
    /** A worker was parked waiting for work for [beginNs, endNs]
     *  (reported retroactively at wake). */
    void (*idle)(std::uint64_t beginNs, std::uint64_t endNs);
    /** The tracer's clock, so idle timestamps share its epoch. */
    std::uint64_t (*nowNs)();
};

/** Install @p hooks process-wide (nullptr uninstalls). */
void setPoolTraceHooks(const PoolTraceHooks *hooks);
/** The currently installed hooks, or nullptr. */
const PoolTraceHooks *poolTraceHooks();

class ThreadPool
{
  public:
    /**
     * A parallel-for body: invoked once per job index with the id of
     * the worker running it (0 = calling thread), so callers can keep
     * per-worker state (registry shards) without locking.
     */
    using JobFn = std::function<void(std::size_t job, unsigned worker)>;

    /** Hardware concurrency, with a floor of 1 when unknown. */
    static unsigned defaultThreads();

    /**
     * Build a pool of @p threads total workers (calling thread
     * included); 0 means defaultThreads().
     */
    explicit ThreadPool(unsigned threads = 0);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    ~ThreadPool();

    /** Total workers, calling thread included (>= 1). */
    unsigned threads() const { return nThreads_; }

    /**
     * Run fn(job, worker) for every job in [0, nJobs), blocking until
     * all jobs finish.  @p chunk jobs are claimed at a time (0 picks a
     * chunk that gives each worker ~8 turns).  Not reentrant: one
     * loop at a time per pool.
     *
     * Exception-propagation contract (what resilient callers rely on,
     * locked down by tests/parallel_test.cc):
     *
     *  1. The FIRST exception thrown by any job wins; every later one
     *     (concurrent jobs may also throw) is swallowed.  "First"
     *     means first to reach the pool's error latch — when several
     *     workers throw concurrently the winner is one of them, not
     *     necessarily the lowest job index.
     *  2. A throw cancels the unclaimed remainder of the loop; chunks
     *     already in flight on other workers run to completion.  Jobs
     *     are therefore either fully run or never started — a job is
     *     never begun after the cancellation point, and never torn
     *     down mid-flight from outside.
     *  3. The winning exception is rethrown on the CALLING thread,
     *     only after every worker has quiesced, so caller RAII sees a
     *     fully stopped loop and worker-id-indexed state (registry
     *     shards) is safe to read immediately.
     *  4. The error latch resets per forEach(): the pool remains
     *     usable and a subsequent loop is unaffected by a previous
     *     one's failure.
     *  5. A one-thread pool runs jobs sequentially on the calling
     *     thread and lets exceptions propagate out of forEach()
     *     directly — same observable contract, zero machinery.
     *
     * Callers that must not lose sibling work to one bad job (the
     * resilient sweep runner) catch inside the job body instead; the
     * pool-level contract above is the fail-fast default.
     */
    void forEach(std::size_t nJobs, const JobFn &fn,
                 std::size_t chunk = 0);

    /**
     * Install a per-worker start hook, invoked as hook(worker) on
     * each spawned worker thread (ids 1..threads-1) when it next
     * wakes for a loop, and again after every reinstall.  The NUMA
     * layer uses this to pin workers to nodes; the hook runs on the
     * worker thread itself, outside the pool lock, before it claims
     * any job of the waking loop.  Worker 0 is the calling thread and
     * is deliberately never touched (its affinity belongs to the
     * caller).  Pass an empty function to uninstall.
     */
    void setWorkerStartHook(std::function<void(unsigned)> hook);

  private:
    void workerLoop(unsigned id);

    /** Claim and run chunks until the cursor passes nJobs_. */
    void drainChunks(unsigned worker);

    unsigned nThreads_;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable startCv_;
    std::condition_variable doneCv_;
    bool stop_ = false;
    /** Bumped per forEach(); workers watch it to pick up the loop. */
    std::uint64_t generation_ = 0;
    /** Workers still inside the current loop. */
    unsigned active_ = 0;

    /** Worker start hook (guarded by mutex_); the generation count
     *  tells parked workers a new hook awaits them at next wake. */
    std::function<void(unsigned)> workerHook_;
    std::uint64_t workerHookGen_ = 0;

    /** Current loop (valid while active_ > 0 or the caller drains). */
    const JobFn *fn_ = nullptr;
    std::size_t nJobs_ = 0;
    std::size_t chunk_ = 1;
    std::atomic<std::size_t> cursor_{0};
    std::exception_ptr error_;
};

} // namespace ccp

#endif // CCP_COMMON_THREAD_POOL_HH
