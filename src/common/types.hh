/**
 * @file
 * Fundamental scalar types shared by every module of the ccp library.
 *
 * The library models a distributed shared-memory multiprocessor with up
 * to 64 nodes.  All modules agree on these aliases so that node ids,
 * byte addresses, block addresses, and synthetic program counters are
 * not confused with one another.
 */

#ifndef CCP_COMMON_TYPES_HH
#define CCP_COMMON_TYPES_HH

#include <cstdint>

namespace ccp {

/** Identifier of a processor node (also used for directory/home ids). */
using NodeId = std::uint32_t;

/** A byte address in the simulated shared address space. */
using Addr = std::uint64_t;

/**
 * Synthetic program counter of a static store instruction.
 *
 * Workloads assign each static store site a stable pc value; predictors
 * may truncate it to a configured number of bits.
 */
using Pc = std::uint64_t;

/** Monotonically increasing index of a coherence event within a trace. */
using EventSeq = std::uint64_t;

/** A simulated cycle count (used only by the network latency model). */
using Cycles = std::uint64_t;

/** Maximum number of nodes a SharingBitmap can represent. */
inline constexpr unsigned maxNodes = 64;

/** Log2 of the coherence block (cache line) size in bytes. */
inline constexpr unsigned blockShift = 6;

/** Coherence block (cache line) size in bytes: 64, as in the paper. */
inline constexpr unsigned blockBytes = 1u << blockShift;

/** Convert a byte address to its block address (block number). */
constexpr Addr
blockOf(Addr byte_addr)
{
    return byte_addr >> blockShift;
}

/** Convert a block number back to the base byte address of the block. */
constexpr Addr
blockBase(Addr block)
{
    return block << blockShift;
}

} // namespace ccp

#endif // CCP_COMMON_TYPES_HH
