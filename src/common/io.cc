#include "common/io.hh"

#include <cerrno>

#include <fcntl.h>
#include <unistd.h>

namespace ccp::io {

int
openRetry(const char *path, int flags, unsigned mode)
{
    for (;;) {
        int fd = ::open(path, flags, mode);
        if (fd >= 0 || errno != EINTR)
            return fd;
    }
}

bool
writeFull(int fd, const void *buf, std::size_t n)
{
    const char *p = static_cast<const char *>(buf);
    std::size_t off = 0;
    while (off < n) {
        ssize_t w = ::write(fd, p + off, n - off);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(w);
    }
    return true;
}

ssize_t
readFull(int fd, void *buf, std::size_t n)
{
    char *p = static_cast<char *>(buf);
    std::size_t off = 0;
    while (off < n) {
        ssize_t r = ::read(fd, p + off, n - off);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return -1;
        }
        if (r == 0)
            break; // end of file
        off += static_cast<std::size_t>(r);
    }
    return static_cast<ssize_t>(off);
}

bool
fsyncRetry(int fd)
{
    for (;;) {
        if (::fsync(fd) == 0)
            return true;
        if (errno != EINTR)
            return false;
    }
}

} // namespace ccp::io
