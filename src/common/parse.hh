/**
 * @file
 * Strict full-string numeric parsing for CLI flags and environment
 * knobs.
 *
 * The C strtoul family is built for tokenizers, not validators: it
 * accepts leading whitespace and signs, stops at the first bad
 * character without complaint, and silently wraps negative input into
 * huge unsigned values ("-1" parses as 2^64-1).  Every user-facing
 * number in this repo goes through these helpers instead, which accept
 * a value only when the *entire* string is a well-formed in-range
 * number — so "--threads 8x" and CCP_SEED=banana are hard errors, not
 * silent near-misses that defeat deterministic-repro claims.
 */

#ifndef CCP_COMMON_PARSE_HH
#define CCP_COMMON_PARSE_HH

#include <cstdint>
#include <string>

namespace ccp {

/**
 * Parse @p text as an unsigned 64-bit integer.  The whole string must
 * be consumed: no leading whitespace, signs, or trailing characters.
 * @p base follows strtoull (0 = auto-detect "0x"/"0" prefixes, the
 * CCP_SEED convention).  @return false on empty input, any stray
 * character, or overflow; @p out is untouched on failure.
 */
bool parseU64(const std::string &text, std::uint64_t &out,
              int base = 10);

/** parseU64 with an inclusive upper bound (flag range checks). */
bool parseU64InRange(const std::string &text, std::uint64_t &out,
                     std::uint64_t max, int base = 10);

/**
 * Parse @p text as a finite double.  The whole string must be
 * consumed; NaN/infinity and empty input are rejected.  A leading '-'
 * is allowed (callers range-check); @p out is untouched on failure.
 */
bool parseDouble(const std::string &text, double &out);

} // namespace ccp

#endif // CCP_COMMON_PARSE_HH
