/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Workload generation must be exactly reproducible across runs and
 * platforms, so we implement xoshiro256** (Blackman & Vigna) rather
 * than relying on implementation-defined std::default_random_engine
 * distributions.  All derived draws (ranges, doubles, permutations)
 * are implemented here in a platform-independent way.
 */

#ifndef CCP_COMMON_RNG_HH
#define CCP_COMMON_RNG_HH

#include <cstdint>
#include <vector>

namespace ccp {

/**
 * xoshiro256** 1.0 generator with splitmix64 seeding.
 *
 * Satisfies UniformRandomBitGenerator, but prefer the member helpers
 * for reproducibility.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Seed deterministically from a single 64-bit value. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type(0); }

    /** Next raw 64-bit draw. */
    std::uint64_t operator()();

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli draw with probability @p p of true. */
    bool chance(double p);

    /** Geometric-ish draw: number of successes before failure, capped. */
    unsigned geometric(double p, unsigned cap);

    /** Fisher-Yates shuffle of a vector, deterministic for a seed. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = below(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Fork an independent stream for substream @p id. */
    Rng fork(std::uint64_t id) const;

  private:
    std::uint64_t s_[4];
    std::uint64_t seed_;
};

} // namespace ccp

#endif // CCP_COMMON_RNG_HH
