/**
 * @file
 * Small statistics helpers used by the simulator and the benches:
 * a running scalar summary and a fixed-bucket histogram.
 */

#ifndef CCP_COMMON_STATS_HH
#define CCP_COMMON_STATS_HH

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace ccp {

/**
 * Running count/mean/min/max/variance over a stream of samples.
 * Variance uses Welford's online algorithm (numerically stable; no
 * sum-of-squares cancellation), and merge() uses the parallel
 * combination so sharded summaries equal the concatenated stream.
 */
class Summary
{
  public:
    void add(double x);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /** Population variance; 0 with fewer than two samples. */
    double var() const;
    /** Population standard deviation (timing jitter et al.). */
    double stddev() const;

    /** Merge another summary into this one. */
    void merge(const Summary &other);

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
    double mean_ = 0.0; ///< Welford running mean
    double m2_ = 0.0;   ///< Welford sum of squared deviations
};

/**
 * A histogram with unit-width integer buckets [0, n) plus an overflow
 * bucket; used for e.g. readers-per-invalidation distributions.
 */
class Histogram
{
  public:
    explicit Histogram(std::size_t buckets);

    void add(std::uint64_t value);

    std::uint64_t bucket(std::size_t i) const;
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t total() const { return total_; }
    std::size_t size() const { return counts_.size(); }

    /** Mean of recorded values (overflow samples counted at size()). */
    double mean() const;

    /** Add another histogram (same bucket count) into this one. */
    void merge(const Histogram &other);

    /** Render "v0 v1 ... v(n-1) [+overflow]" for logs. */
    std::string toString() const;

  private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
    double sum_ = 0.0;
};

} // namespace ccp

#endif // CCP_COMMON_STATS_HH
