/**
 * @file
 * Small statistics helpers used by the simulator and the benches:
 * a running scalar summary and a fixed-bucket histogram.
 */

#ifndef CCP_COMMON_STATS_HH
#define CCP_COMMON_STATS_HH

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace ccp {

/**
 * Running count/mean/min/max/variance over a stream of samples.
 * Variance uses Welford's online algorithm (numerically stable; no
 * sum-of-squares cancellation), and merge() uses the parallel
 * combination so sharded summaries equal the concatenated stream.
 */
class Summary
{
  public:
    void add(double x);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /** Population variance; 0 with fewer than two samples. */
    double var() const;
    /** Population standard deviation (timing jitter et al.). */
    double stddev() const;

    /** Merge another summary into this one. */
    void merge(const Summary &other);

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
    double mean_ = 0.0; ///< Welford running mean
    double m2_ = 0.0;   ///< Welford sum of squared deviations
};

/**
 * A log2-bucketed histogram for latency-style values spanning many
 * orders of magnitude (nanoseconds to minutes).  Bucket i counts
 * samples whose value v satisfies floor(log2(v)) == i, i.e. v in
 * [2^i, 2^(i+1)); value 0 lands in bucket 0.  With 64 buckets every
 * uint64 sample is representable, so there is no overflow bucket and
 * merge() across sharded registries is exact.
 *
 * Percentiles are derived from the bucket counts: the bucket holding
 * the p-th sample is located exactly, and the value is interpolated
 * linearly inside the bucket (error bounded by the bucket width, i.e.
 * at most 2x — plenty for p50/p90/p99 reporting on log-scale data).
 */
class LogHistogram
{
  public:
    static constexpr std::size_t nBuckets = 64;

    void add(std::uint64_t value);

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return count_ ? max_ : 0; }
    double mean() const
    {
        return count_ ? static_cast<double>(sum_) /
                            static_cast<double>(count_)
                      : 0.0;
    }

    std::uint64_t bucket(std::size_t i) const;

    /** Lower bound of bucket i: 0 for bucket 0, else 2^i. */
    static std::uint64_t bucketLo(std::size_t i);

    /**
     * The q-quantile (q in [0, 1]) by bucket interpolation, clamped
     * to the observed min/max; 0 with no samples.
     */
    double quantile(double q) const;

    double p50() const { return quantile(0.50); }
    double p90() const { return quantile(0.90); }
    double p99() const { return quantile(0.99); }

    /** Add another log-histogram into this one (exact). */
    void merge(const LogHistogram &other);

    /** Render "[lo,hi):count ..." of non-empty buckets for logs. */
    std::string toString() const;

  private:
    std::uint64_t counts_[nBuckets] = {};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t max_ = 0;
};

/**
 * A histogram with unit-width integer buckets [0, n) plus an overflow
 * bucket; used for e.g. readers-per-invalidation distributions.
 */
class Histogram
{
  public:
    explicit Histogram(std::size_t buckets);

    void add(std::uint64_t value);

    std::uint64_t bucket(std::size_t i) const;
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t total() const { return total_; }
    std::size_t size() const { return counts_.size(); }

    /** Mean of recorded values (overflow samples counted at size()). */
    double mean() const;

    /** Add another histogram (same bucket count) into this one. */
    void merge(const Histogram &other);

    /** Render "v0 v1 ... v(n-1) [+overflow]" for logs. */
    std::string toString() const;

  private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
    double sum_ = 0.0;
};

} // namespace ccp

#endif // CCP_COMMON_STATS_HH
