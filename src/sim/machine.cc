#include "sim/machine.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/timer.hh"

namespace ccp::sim {

Machine::Machine(const mem::MachineConfig &config,
                 const std::string &name, std::uint64_t seed)
    : config_(config), trace_(name, config.nNodes),
      ctl_(config, &trace_), rng_(seed)
{
}

void
Machine::runPhase(PhaseOps &ops)
{
    ccp_assert(ops.size() == config_.nNodes,
               "phase op vectors must cover every node");

    obs::ScopedTimer phase_timer(phaseSeconds_);
    for (const auto &vec : ops)
        opsExecuted_ += vec.size();

    // Cursor into each node's op vector, plus the list of nodes with
    // work remaining.
    std::vector<std::size_t> cursor(config_.nNodes, 0);
    std::vector<NodeId> live;
    live.reserve(config_.nNodes);
    for (NodeId n = 0; n < config_.nNodes; ++n)
        if (!ops[n].empty())
            live.push_back(n);

    while (!live.empty()) {
        std::size_t pick = rng_.below(live.size());
        NodeId node = live[pick];
        auto &vec = ops[node];
        std::size_t &cur = cursor[node];

        std::size_t burst = 1 + rng_.below(maxBurst_);
        burst = std::min(burst, vec.size() - cur);
        for (std::size_t i = 0; i < burst; ++i) {
            const MemOp &op = vec[cur++];
            if (op.write)
                ctl_.write(node, op.addr, op.pc);
            else
                ctl_.read(node, op.addr);
        }

        if (cur == vec.size()) {
            live[pick] = live.back();
            live.pop_back();
        }
    }

    for (auto &vec : ops)
        vec.clear();
}

void
Machine::exportStats(obs::StatsRegistry &registry) const
{
    ctl_.exportStats(registry);
    registry.counter("sim.phases") += phaseSeconds_.count();
    registry.counter("sim.ops") += opsExecuted_;
    registry.summary("sim.phase_seconds").merge(phaseSeconds_);
}

trace::SharingTrace
Machine::finish()
{
    ctl_.finalizeTrace();
    exportStats(obs::StatsRegistry::root());
    ccp_debug("machine '", trace_.name(), "' finished: ", opsExecuted_,
              " ops, ", trace_.storeMisses(), " store misses, ",
              phaseSeconds_.count(), " phases");
    return std::move(trace_);
}

} // namespace ccp::sim
