/**
 * @file
 * Machine: the simulated 16-node shared-memory multiprocessor.
 *
 * Workload kernels are SPMD programs structured as barrier-separated
 * phases (like the SPLASH codes).  Within a phase each node emits a
 * sequence of memory operations; the machine interleaves the per-node
 * sequences pseudo-randomly in small bursts — a faithful stand-in for
 * the loose instruction interleaving of a real machine — and executes
 * them through the coherence protocol engine, which appends coherence
 * events to the trace.  Barriers order phases totally, exactly like
 * the barrier synchronization of the original programs.
 */

#ifndef CCP_SIM_MACHINE_HH
#define CCP_SIM_MACHINE_HH

#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/protocol.hh"
#include "obs/registry.hh"
#include "trace/trace.hh"

namespace ccp::sim {

/** One memory operation emitted by a workload kernel. */
struct MemOp
{
    Addr addr;
    Pc pc;      ///< static store site; ignored for reads
    bool write;
};

/** A per-node batch of operations for one phase. */
using PhaseOps = std::vector<std::vector<MemOp>>;

/**
 * The simulated machine: a coherence controller plus the phase
 * interleaver and the trace under construction.
 */
class Machine
{
  public:
    /**
     * @param config Machine geometry (nodes, caches, torus, placement).
     * @param name   Benchmark name recorded in the trace.
     * @param seed   Seed for the interleaving RNG.
     */
    Machine(const mem::MachineConfig &config, const std::string &name,
            std::uint64_t seed);

    unsigned nNodes() const { return config_.nNodes; }
    const mem::MachineConfig &config() const { return config_; }

    mem::CoherenceController &controller() { return ctl_; }
    const mem::CoherenceController &controller() const { return ctl_; }

    trace::SharingTrace &trace() { return trace_; }

    /**
     * Execute one barrier-delimited phase: interleave the per-node op
     * vectors in random bursts of 1..maxBurst ops and run them through
     * the protocol.  The vectors are consumed (cleared on return).
     */
    void runPhase(PhaseOps &ops);

    /** Maximum ops a node executes before the interleaver switches. */
    void setMaxBurst(unsigned burst) { maxBurst_ = burst; }

    /**
     * Finish the run: fold run statistics into the trace metadata,
     * export the run's counters and phase timings into the root stats
     * registry (under "protocol." and "sim."), and move the finalized
     * trace out.  The machine must not be used afterwards.
     */
    trace::SharingTrace finish();

    /**
     * Export this machine's instrumentation into @p registry:
     * "protocol.*" counters plus the readers-per-kill histogram, and
     * "sim.phases" / "sim.ops" / "sim.phase_seconds" (a Summary, so
     * per-phase wall time reports mean and jitter).
     */
    void exportStats(obs::StatsRegistry &registry) const;

  private:
    mem::MachineConfig config_;
    trace::SharingTrace trace_;
    mem::CoherenceController ctl_;
    Rng rng_;
    unsigned maxBurst_ = 8;
    Summary phaseSeconds_;
    std::uint64_t opsExecuted_ = 0;
};

} // namespace ccp::sim

#endif // CCP_SIM_MACHINE_HH
