#include "serve/session.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"

namespace ccp::serve {

namespace {

void
putWord(std::vector<char> &out, std::uint64_t v)
{
    const std::size_t off = out.size();
    out.resize(off + 8);
    std::memcpy(out.data() + off, &v, 8);
}

bool
getWord(const char *&p, const char *end, std::uint64_t &v)
{
    if (end - p < 8)
        return false;
    std::memcpy(&v, p, 8);
    p += 8;
    return true;
}

} // namespace

Session::Session(std::uint64_t id, const SessionConfig &config,
                 unsigned n_nodes)
    : id_(id), nNodes_(n_nodes), mode_(config.mode),
      table_(config.scheme.makeTable(n_nodes)),
      window_(std::max<std::size_t>(config.windowEvents, 1))
{
    if (mode_ == predict::UpdateMode::Ordered)
        ccp_fatal("ordered update needs each event's successor (a "
                  "second trace pass) and cannot be served online; "
                  "use direct or forwarded");
}

SharingBitmap
Session::onEvent(const trace::CoherenceEvent &ev)
{
    // Mirror predict::evaluateTrace exactly — the offline evaluator
    // is the oracle the serve tests compare byte-for-byte against.
    SharingBitmap pred;
    switch (mode_) {
      case predict::UpdateMode::Direct:
        if (ev.hasPrevWriter)
            table_.update(ev.pid, ev.pc, ev.dir, ev.block,
                          ev.invalidated);
        pred = table_.predict(ev.pid, ev.pc, ev.dir, ev.block);
        break;

      case predict::UpdateMode::Forwarded:
        if (ev.hasPrevWriter)
            table_.update(ev.prevWriterPid, ev.prevWriterPc, ev.dir,
                          ev.block, ev.invalidated);
        pred = table_.predict(ev.pid, ev.pc, ev.dir, ev.block);
        break;

      case predict::UpdateMode::Ordered:
        ccp_panic("ordered session cannot exist");
    }
    total_.add(pred, ev.readers, nNodes_);
    ++events_;

    // Producers never set bits at or above nNodes, so the popcounts
    // equal what the per-bit Confusion::add loop counts.
    WindowCell cell;
    cell.tp = static_cast<std::uint8_t>((pred & ev.readers).popcount());
    cell.fp = static_cast<std::uint8_t>(pred.minus(ev.readers).popcount());
    cell.fn = static_cast<std::uint8_t>(ev.readers.minus(pred).popcount());
    if (winCount_ == window_.size()) {
        const WindowCell &old = window_[winPos_];
        winTp_ -= old.tp;
        winFp_ -= old.fp;
        winFn_ -= old.fn;
    } else {
        ++winCount_;
    }
    window_[winPos_] = cell;
    winTp_ += cell.tp;
    winFp_ += cell.fp;
    winFn_ += cell.fn;
    winPos_ = (winPos_ + 1) % window_.size();
    return pred;
}

SessionStats
Session::stats() const
{
    SessionStats s;
    s.events = events_;
    s.total = total_;
    s.window = predict::Confusion::fromPositives(
        winTp_, winFp_, winFn_,
        std::uint64_t(winCount_) * nNodes_);
    return s;
}

void
Session::encode(std::vector<char> &out) const
{
    putWord(out, id_);
    putWord(out, events_);
    putWord(out, total_.tp);
    putWord(out, total_.fp);
    putWord(out, total_.tn);
    putWord(out, total_.fn);

    const std::vector<std::uint64_t> &state = table_.rawState();
    putWord(out, state.size());
    const char *raw = reinterpret_cast<const char *>(state.data());
    out.insert(out.end(), raw, raw + state.size() * 8);

    putWord(out, window_.size());
    putWord(out, winCount_);
    // Logical oldest-to-newest order, so decode rebuilds the ring
    // with the oldest cell at index 0 regardless of where the write
    // cursor happened to be.
    const std::size_t start =
        winCount_ == window_.size() ? winPos_ : 0;
    for (std::size_t i = 0; i < winCount_; ++i) {
        const WindowCell &c =
            window_[(start + i) % window_.size()];
        putWord(out, std::uint64_t(c.tp) | std::uint64_t(c.fp) << 8 |
                         std::uint64_t(c.fn) << 16);
    }
}

bool
Session::decode(const char *&p, const char *end)
{
    std::uint64_t id = 0, events = 0;
    predict::Confusion total;
    if (!getWord(p, end, id) || !getWord(p, end, events) ||
        !getWord(p, end, total.tp) || !getWord(p, end, total.fp) ||
        !getWord(p, end, total.tn) || !getWord(p, end, total.fn))
        return false;
    if (id != id_)
        return false;

    std::uint64_t state_words = 0;
    if (!getWord(p, end, state_words) ||
        state_words != table_.rawState().size())
        return false;
    if (static_cast<std::uint64_t>(end - p) < state_words * 8)
        return false;
    std::vector<std::uint64_t> state(state_words);
    std::memcpy(state.data(), p, state_words * 8);
    p += state_words * 8;

    std::uint64_t capacity = 0, count = 0;
    if (!getWord(p, end, capacity) || capacity != window_.size() ||
        !getWord(p, end, count) || count > capacity)
        return false;
    std::vector<WindowCell> cells(window_.size());
    std::uint64_t tp = 0, fp = 0, fn = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint64_t packed = 0;
        if (!getWord(p, end, packed) || (packed >> 24) != 0)
            return false;
        cells[i].tp = static_cast<std::uint8_t>(packed & 0xff);
        cells[i].fp = static_cast<std::uint8_t>((packed >> 8) & 0xff);
        cells[i].fn = static_cast<std::uint8_t>((packed >> 16) & 0xff);
        tp += cells[i].tp;
        fp += cells[i].fp;
        fn += cells[i].fn;
    }

    if (!table_.restoreRawState(state))
        return false;
    events_ = events;
    total_ = total;
    window_ = std::move(cells);
    winCount_ = count;
    winPos_ = count % window_.size();
    winTp_ = tp;
    winFp_ = fp;
    winFn_ = fn;
    return true;
}

} // namespace ccp::serve
