/**
 * @file
 * SpscRing: a bounded lock-free single-producer / single-consumer
 * ring buffer — the per-client ingest queue of the predictd engine.
 *
 * The shape follows the per-producer log buffers of RACoherence-style
 * designs and the tracer's ThreadBuf: exactly one thread pushes and
 * exactly one thread pops, so the only synchronization needed is a
 * release store of each index and an acquire load on the other side.
 * Head and tail live on separate cache lines so the producer and the
 * consumer never false-share.
 *
 * Capacity is rounded up to a power of two; one slot is sacrificed to
 * distinguish full from empty, the classic ring discipline.
 */

#ifndef CCP_SERVE_SPSC_HH
#define CCP_SERVE_SPSC_HH

#include <atomic>
#include <bit>
#include <cstddef>
#include <vector>

namespace ccp::serve {

template <typename T>
class SpscRing
{
  public:
    /** @param capacity requested slot count (>= 2; rounded up to a
     *  power of two — usable capacity is one less than that). */
    explicit SpscRing(std::size_t capacity)
        : slots_(std::bit_ceil(capacity < 2 ? std::size_t(2)
                                            : capacity)),
          mask_(slots_.size() - 1)
    {
    }

    SpscRing(const SpscRing &) = delete;
    SpscRing &operator=(const SpscRing &) = delete;

    /** Usable slots (one less than the power-of-two allocation). */
    std::size_t capacity() const { return slots_.size() - 1; }

    /** Producer only: enqueue @p value; false when full. */
    bool
    push(const T &value)
    {
        const std::size_t tail =
            tail_.load(std::memory_order_relaxed);
        const std::size_t next = (tail + 1) & mask_;
        if (next == head_.load(std::memory_order_acquire))
            return false;
        slots_[tail] = value;
        tail_.store(next, std::memory_order_release);
        return true;
    }

    /** Consumer only: dequeue into @p out; false when empty. */
    bool
    pop(T &out)
    {
        const std::size_t head =
            head_.load(std::memory_order_relaxed);
        if (head == tail_.load(std::memory_order_acquire))
            return false;
        out = slots_[head];
        head_.store((head + 1) & mask_, std::memory_order_release);
        return true;
    }

    /** Either side: true when no item is visible (racy by nature —
     *  a snapshot, not a synchronization point). */
    bool
    empty() const
    {
        return head_.load(std::memory_order_acquire) ==
               tail_.load(std::memory_order_acquire);
    }

    /** Items currently visible (same racy-snapshot caveat). */
    std::size_t
    size() const
    {
        const std::size_t head =
            head_.load(std::memory_order_acquire);
        const std::size_t tail =
            tail_.load(std::memory_order_acquire);
        return (tail - head) & mask_;
    }

  private:
    std::vector<T> slots_;
    const std::size_t mask_;
    alignas(64) std::atomic<std::size_t> head_{0};
    alignas(64) std::atomic<std::size_t> tail_{0};
};

} // namespace ccp::serve

#endif // CCP_SERVE_SPSC_HH
