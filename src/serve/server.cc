#include "serve/server.hh"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "common/logging.hh"
#include "obs/trace.hh"
#include "sweep/name.hh"
#include "trace/format.hh"

namespace ccp::serve {

namespace {

/** Events one agent serves per shard-lock acquisition: long enough
 *  to amortize the lock, short enough that stats() callers never
 *  wait on a whole ring. */
constexpr std::size_t drainBurst = 256;

void
putWord(std::vector<char> &out, std::uint64_t v)
{
    const std::size_t off = out.size();
    out.resize(off + 8);
    std::memcpy(out.data() + off, &v, 8);
}

bool
getWord(const char *&p, const char *end, std::uint64_t &v)
{
    if (end - p < 8)
        return false;
    std::memcpy(&v, p, 8);
    p += 8;
    return true;
}

} // namespace

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

PredictServer::PredictServer(ServeOptions options)
    : opts_(std::move(options)),
      nSessions_(opts_.sessions),
      nAgents_(opts_.agents > 0 ? opts_.agents
                                : ThreadPool::defaultThreads()),
      pool_(nAgents_), agentRegs_(nAgents_)
{
    ccp_assert(nSessions_ >= 1, "server needs at least one session");
    ccp_assert(opts_.nNodes >= 1 && opts_.nNodes <= maxNodes,
               "bad node count ", opts_.nNodes);
    const std::size_t resp_cap = opts_.responseCapacity > 0
                                     ? opts_.responseCapacity
                                     : opts_.ringCapacity;
    shards_.reserve(nSessions_);
    for (unsigned s = 0; s < nSessions_; ++s)
        shards_.push_back(std::make_unique<Shard>(
            s, opts_.session, opts_.nNodes, opts_.ringCapacity,
            resp_cap));
}

PredictServer::~PredictServer()
{
    if (running_)
        stop();
}

std::uint64_t
PredictServer::snapshotKey() const
{
    trace::Fnv1a h;
    auto word = [&h](std::uint64_t v) { h.update(&v, sizeof(v)); };
    auto str = [&h](const std::string &s) {
        h.update(s.data(), s.size());
        h.update("\0", 1);
    };
    str("ccp.serve.v1");
    str(sweep::formatScheme(opts_.session.scheme));
    str(predict::updateModeName(opts_.session.mode));
    word(opts_.nNodes);
    word(nSessions_);
    word(std::max<std::size_t>(opts_.session.windowEvents, 1));
    return h.digest();
}

sweep::CheckpointLoad
PredictServer::restore()
{
    ccp_assert(!running_, "restore() must precede start()");
    std::vector<char> payload;
    auto status = sweep::loadStateBlob(opts_.snapshotPath,
                                       snapshotKey(), payload);
    if (status != sweep::CheckpointLoad::Ok)
        return status;

    const char *p = payload.data();
    const char *end = p + payload.size();
    std::uint64_t count = 0;
    if (!getWord(p, end, count) || count != nSessions_)
        return sweep::CheckpointLoad::Invalid;

    // Decode into copies first so a truncated or inconsistent blob
    // leaves every live session untouched.
    std::vector<Session> fresh;
    fresh.reserve(nSessions_);
    for (unsigned s = 0; s < nSessions_; ++s) {
        Session restored = shards_[s]->session;
        if (!restored.decode(p, end))
            return sweep::CheckpointLoad::Invalid;
        fresh.push_back(std::move(restored));
    }
    if (p != end)
        return sweep::CheckpointLoad::Invalid;
    for (unsigned s = 0; s < nSessions_; ++s)
        shards_[s]->session = std::move(fresh[s]);
    return sweep::CheckpointLoad::Ok;
}

bool
PredictServer::start()
{
    if (running_)
        return false;
    parent_ = &obs::StatsRegistry::current();
    for (auto &reg : agentRegs_)
        reg.clear();
    stopRequested_.store(false, std::memory_order_release);
    lastSnapshotNs_.store(nowNs(), std::memory_order_relaxed);
    accepting_.store(true, std::memory_order_release);
    driver_ = std::thread([this] {
        pool_.forEach(
            nAgents_,
            [this](std::size_t job, unsigned) {
                agentLoop(static_cast<unsigned>(job));
            },
            1);
    });
    running_ = true;
    return true;
}

void
PredictServer::stop()
{
    if (!running_)
        return;
    accepting_.store(false, std::memory_order_release);
    stopRequested_.store(true, std::memory_order_release);
    driver_.join();
    running_ = false;

    // Final snapshot after the agents quiesced, so a clean shutdown
    // always leaves a restorable image of the complete stream.
    if (!opts_.snapshotPath.empty()) {
        if (!snapshotNow())
            ccp_warn("final serve snapshot failed at ",
                     opts_.snapshotPath);
    }

    for (auto &reg : agentRegs_) {
        parent_->merge(reg);
        reg.clear();
    }
}

bool
PredictServer::submit(unsigned session, const trace::CoherenceEvent &ev)
{
    if (!accepting_.load(std::memory_order_acquire))
        return false;
    Shard &shard = *shards_[session];
    Ingest item;
    item.ev = ev;
    item.enqueueNs = nowNs();
    if (!shard.in.push(item)) {
        backpressure_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    shard.submitted.fetch_add(1, std::memory_order_relaxed);
    return true;
}

std::size_t
PredictServer::pollPredictions(unsigned session,
                               std::vector<Prediction> &out,
                               std::size_t max)
{
    Shard &shard = *shards_[session];
    std::size_t n = 0;
    Prediction p;
    while (n < max && shard.out.pop(p)) {
        out.push_back(p);
        ++n;
    }
    return n;
}

SessionStats
PredictServer::stats(unsigned session) const
{
    const Shard &shard = *shards_[session];
    std::lock_guard<std::mutex> lock(shard.mutex);
    return shard.session.stats();
}

std::uint64_t
PredictServer::submitted(unsigned session) const
{
    return shards_[session]->submitted.load(
        std::memory_order_relaxed);
}

std::uint64_t
PredictServer::backpressure() const
{
    return backpressure_.load(std::memory_order_relaxed);
}

std::uint64_t
PredictServer::responsesDropped() const
{
    return responsesDropped_.load(std::memory_order_relaxed);
}

std::size_t
PredictServer::drainShard(Shard &shard, unsigned)
{
    std::lock_guard<std::mutex> lock(shard.mutex);
    Ingest item;
    if (!shard.in.pop(item))
        return 0;
    CCP_TRACE_SPAN("serve", "serve.drain");
    auto &reg = obs::StatsRegistry::current();
    std::size_t served = 0;
    do {
        Prediction p;
        p.seq = shard.session.eventsProcessed();
        p.predicted = shard.session.onEvent(item.ev);
        const std::uint64_t now = nowNs();
        reg.latency("serve.ingest_to_predict_ns")
            .add(now > item.enqueueNs ? now - item.enqueueNs : 0);
        if (!shard.out.push(p)) {
            responsesDropped_.fetch_add(1,
                                        std::memory_order_relaxed);
            ++reg.counter("serve.responses_dropped");
        }
        ++served;
    } while (served < drainBurst && shard.in.pop(item));
    reg.counter("serve.events_served") += served;
    return served;
}

void
PredictServer::agentLoop(unsigned agent)
{
    obs::ScopedRegistry scoped(agentRegs_[agent]);
    for (;;) {
        std::size_t served = 0;
        for (unsigned s = agent; s < nSessions_; s += nAgents_)
            served += drainShard(*shards_[s], agent);
        if (agent == 0)
            maybeSnapshot();
        if (served > 0)
            continue;
        if (stopRequested_.load(std::memory_order_acquire)) {
            // Only this agent pops its sessions' rings, so empty
            // rings + no new submissions mean the drain is complete.
            bool drained = true;
            for (unsigned s = agent; s < nSessions_; s += nAgents_)
                drained = drained && shards_[s]->in.empty();
            if (drained)
                break;
        }
        std::this_thread::yield();
    }
}

void
PredictServer::maybeSnapshot()
{
    if (opts_.snapshotPath.empty() || opts_.snapshotIntervalSec <= 0)
        return;
    const std::uint64_t now = nowNs();
    const std::uint64_t last =
        lastSnapshotNs_.load(std::memory_order_relaxed);
    const double elapsed_sec =
        static_cast<double>(now - last) * 1e-9;
    if (elapsed_sec < opts_.snapshotIntervalSec)
        return;
    lastSnapshotNs_.store(now, std::memory_order_relaxed);
    if (!snapshotNow())
        ccp_warn("periodic serve snapshot failed at ",
                 opts_.snapshotPath);
}

bool
PredictServer::snapshotNow()
{
    if (opts_.snapshotPath.empty())
        return false;
    CCP_TRACE_SPAN("serve", "serve.snapshot");
    std::lock_guard<std::mutex> snap_lock(snapshotMutex_);

    std::vector<char> payload;
    putWord(payload, nSessions_);
    for (unsigned s = 0; s < nSessions_; ++s) {
        Shard &shard = *shards_[s];
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.session.encode(payload);
    }

    // A snapshot holding perceptron state carries the feature bit,
    // so pre-perceptron binaries reject it with structure instead of
    // decoding foreign weight words.
    const std::uint32_t features =
        opts_.session.scheme.kind == predict::FunctionKind::Perceptron
            ? sweep::stateBlobFeaturePerceptron
            : 0;
    const bool ok = sweep::saveStateBlob(
        opts_.snapshotPath, snapshotKey(), payload, features);
    auto &reg = obs::StatsRegistry::current();
    if (ok)
        ++reg.counter("serve.snapshots");
    else
        ++reg.counter("serve.snapshot_failures");
    return ok;
}

} // namespace ccp::serve
