/**
 * @file
 * Session: one client's online predictor inside the predictd engine.
 *
 * A session owns a PredictorTable built from one SchemeSpec and
 * consumes that client's coherence event stream *online*: for each
 * event it folds in the feedback the event carries (exactly the
 * direct/forwarded update semantics of predict::evaluateTrace — the
 * byte-identical offline oracle), emits the prediction for the event,
 * and scores it into both a cumulative Confusion and a sliding-window
 * Confusion over the last N events, so clients see current PVP /
 * sensitivity rather than a lifetime average that a phase change
 * would hide behind.
 *
 * Ordered update is rejected: it needs the successor of every event
 * (a second pass over the trace) and therefore cannot be served
 * online — the paper simulates it, a server cannot.
 *
 * Sessions also encode/decode their full state (table words, event
 * count, confusion counts, window ring) for the server's CCPS
 * snapshots, so a killed server restores byte-identical predictor
 * state.
 */

#ifndef CCP_SERVE_SESSION_HH
#define CCP_SERVE_SESSION_HH

#include <cstdint>
#include <vector>

#include "predict/evaluator.hh"
#include "predict/metrics.hh"
#include "predict/table.hh"
#include "trace/event.hh"

namespace ccp::serve {

/** The predictor a session runs: scheme, update mode, window size. */
struct SessionConfig
{
    predict::SchemeSpec scheme;
    /** Direct or Forwarded; Ordered is not online-servable. */
    predict::UpdateMode mode = predict::UpdateMode::Direct;
    /** Sliding-window length of the rolling screening stats. */
    std::size_t windowEvents = 4096;
};

/** A session's screening stats at one instant. */
struct SessionStats
{
    std::uint64_t events = 0;
    predict::Confusion total;
    /** Confusion over the last windowEvents events only. */
    predict::Confusion window;
};

class Session
{
  public:
    Session(std::uint64_t id, const SessionConfig &config,
            unsigned n_nodes);

    std::uint64_t id() const { return id_; }
    std::uint64_t eventsProcessed() const { return events_; }
    unsigned nNodes() const { return nNodes_; }
    const predict::PredictorTable &table() const { return table_; }

    /**
     * Consume one event: update the table with the event's feedback
     * (per the configured mode), predict, score.  @return the
     * predicted sharing bitmap for this event.
     */
    SharingBitmap onEvent(const trace::CoherenceEvent &ev);

    /** Cumulative + sliding-window confusion counts. */
    SessionStats stats() const;

    /** Append this session's full state to @p out (see session.cc
     *  for the fixed little-endian layout). */
    void encode(std::vector<char> &out) const;

    /**
     * Restore state encoded by encode() from @p p, advancing it past
     * the consumed bytes.  @p end bounds the readable range.
     * @return false (session unchanged on geometry mismatch, possibly
     * partially consumed input on truncation) when the bytes do not
     * match this session's configuration.
     */
    bool decode(const char *&p, const char *end);

  private:
    std::uint64_t id_;
    unsigned nNodes_;
    predict::UpdateMode mode_;
    predict::PredictorTable table_;

    std::uint64_t events_ = 0;
    predict::Confusion total_;

    /** Sliding window: per-event {tp, fp, fn} (each <= 64 nodes, so
     *  a byte per count); tn falls out by conservation. */
    struct WindowCell
    {
        std::uint8_t tp = 0;
        std::uint8_t fp = 0;
        std::uint8_t fn = 0;
    };
    std::vector<WindowCell> window_;
    std::size_t winCount_ = 0;
    /** Next write position (== oldest cell once the ring is full). */
    std::size_t winPos_ = 0;
    /** Running sums over the live window cells. */
    std::uint64_t winTp_ = 0, winFp_ = 0, winFn_ = 0;
};

} // namespace ccp::serve

#endif // CCP_SERVE_SESSION_HH
