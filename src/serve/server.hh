/**
 * @file
 * PredictServer — the long-running "predictd" engine (ROADMAP item 2,
 * docs/SERVING.md).
 *
 * Architecture (the RACoherence per-producer log-buffer shape):
 *
 *   client threads ──push──▶ per-session SpscRing ──pop──▶ agents
 *                                                            │
 *   client threads ◀──pop── per-session response ring ◀──────┘
 *
 *  - N sessions, each a sharded Session (its own PredictorTable);
 *    session s is owned by agent s % agents, so every session's
 *    stream is consumed by exactly one thread in submit order — state
 *    after k events is deterministic at ANY agent count, which is
 *    what makes snapshots restore byte-identically.
 *  - Agents are jobs on the existing ThreadPool, launched from a
 *    driver thread so start()/stop() stay non-blocking for callers.
 *  - submit() is wait-free for the producer (one SPSC push); a full
 *    ring is backpressure, reported to the caller and counted.
 *  - Rolling screening stats per session (sliding-window PVP /
 *    sensitivity) and an ingest-to-predict latency LogHistogram
 *    (p50/p99) merged into the caller's StatsRegistry at stop().
 *  - Periodic + final snapshots go through the CCPS state-blob
 *    container (sweep/checkpoint.hh): validated header, whole-file
 *    checksum, fsync-durable atomic writes.  restore() before start()
 *    brings a killed server back byte-identical.
 *
 * Threading contract: one producer thread per session (the SPSC
 * discipline; distinct sessions may be fed from distinct threads),
 * and one consumer per session's response ring.  stats() and
 * snapshotNow() may be called from any thread.
 */

#ifndef CCP_SERVE_SERVER_HH
#define CCP_SERVE_SERVER_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.hh"
#include "common/thread_pool.hh"
#include "obs/registry.hh"
#include "serve/session.hh"
#include "serve/spsc.hh"
#include "sweep/checkpoint.hh"
#include "trace/event.hh"

namespace ccp::serve {

struct ServeOptions
{
    /** Predictor every session runs (scheme, mode, window). */
    SessionConfig session;
    /** Machine size of the event streams. */
    unsigned nNodes = 16;
    /** Client sessions (sharded predictor instances). */
    unsigned sessions = 4;
    /** Agent threads draining the rings; 0 = all hardware threads. */
    unsigned agents = 2;
    /** Per-session ingest ring capacity (rounded to a power of 2). */
    std::size_t ringCapacity = 1 << 12;
    /** Per-session response ring capacity; 0 = ringCapacity. */
    std::size_t responseCapacity = 0;
    /** CCPS snapshot file; empty = snapshotting disabled. */
    std::string snapshotPath;
    /** Seconds between periodic snapshots; 0 = only the final
     *  snapshot at stop() (and explicit snapshotNow() calls). */
    double snapshotIntervalSec = 30.0;
};

/** One served prediction, delivered on the session's response ring. */
struct Prediction
{
    /** Submit ordinal within the session (0-based). */
    std::uint64_t seq = 0;
    SharingBitmap predicted;
};

class PredictServer
{
  public:
    explicit PredictServer(ServeOptions options);
    ~PredictServer();

    PredictServer(const PredictServer &) = delete;
    PredictServer &operator=(const PredictServer &) = delete;

    unsigned sessions() const { return nSessions_; }
    unsigned agents() const { return nAgents_; }

    /**
     * Restore every session from the snapshot at snapshotPath.  Must
     * be called before start().  Missing is a fresh start, not an
     * error; Invalid / KeyMismatch leave the sessions untouched.
     */
    sweep::CheckpointLoad restore();

    /** Launch the agents.  @return false if already running. */
    bool start();

    /**
     * Drain every ring, write the final snapshot (when snapshotPath
     * is set), join the agents, and merge their stat shards into the
     * registry that was current() at start().  Producers must stop
     * submitting first (submit() refuses once stop begins).
     */
    void stop();

    /**
     * Enqueue one event for @p session (wait-free; the session's
     * producer thread only).  @return false on backpressure (ring
     * full — retry) or when the server is not accepting.
     */
    bool submit(unsigned session, const trace::CoherenceEvent &ev);

    /** Pop up to @p max served predictions for @p session into
     *  @p out (appended); the session's consumer thread only.
     *  @return the number popped. */
    std::size_t pollPredictions(unsigned session,
                                std::vector<Prediction> &out,
                                std::size_t max);

    /** The session's screening stats right now (locks the session
     *  briefly; callable from any thread). */
    SessionStats stats(unsigned session) const;

    /** Events accepted by submit() for @p session so far. */
    std::uint64_t submitted(unsigned session) const;

    /** Submissions refused for ring-full backpressure. */
    std::uint64_t backpressure() const;

    /** Responses dropped because a response ring was full. */
    std::uint64_t responsesDropped() const;

    /**
     * Serialize every session into one CCPS blob at snapshotPath
     * (durable atomic write).  Safe while running; each session is
     * locked only while its bytes are captured.  @return false when
     * snapshotPath is empty or the write fails.
     */
    bool snapshotNow();

    /** Identity hash of this server's snapshot layout (scheme, mode,
     *  nodes, session count, window) — the CCPS key. */
    std::uint64_t snapshotKey() const;

  private:
    /** Ingest ring payload: the event plus its enqueue timestamp so
     *  agents measure true ingest-to-predict latency. */
    struct Ingest
    {
        trace::CoherenceEvent ev;
        std::uint64_t enqueueNs = 0;
    };

    /** Everything one session owns, cache-line separated per shard:
     *  rings for its producer/consumer, the predictor, a mutex
     *  serializing drain vs stats vs snapshot. */
    struct Shard
    {
        Shard(std::uint64_t id, const SessionConfig &cfg,
              unsigned n_nodes, std::size_t ring_cap,
              std::size_t resp_cap)
            : in(ring_cap), out(resp_cap), session(id, cfg, n_nodes)
        {
        }

        SpscRing<Ingest> in;
        SpscRing<Prediction> out;
        Session session;
        mutable std::mutex mutex;
        std::atomic<std::uint64_t> submitted{0};
    };

    void agentLoop(unsigned agent);

    /** Drain up to one burst from @p shard; @return events served. */
    std::size_t drainShard(Shard &shard, unsigned agent);

    void maybeSnapshot();

    ServeOptions opts_;
    unsigned nSessions_;
    unsigned nAgents_;

    std::vector<std::unique_ptr<Shard>> shards_;

    ThreadPool pool_;
    std::thread driver_;
    bool running_ = false;

    /** submit() gate; cleared first in stop(). */
    std::atomic<bool> accepting_{false};
    /** Agents exit once set and their rings are drained. */
    std::atomic<bool> stopRequested_{false};

    /** Registry that was current() at start(); shards merge here. */
    obs::StatsRegistry *parent_ = nullptr;
    std::vector<obs::StatsRegistry> agentRegs_;

    std::atomic<std::uint64_t> backpressure_{0};
    std::atomic<std::uint64_t> responsesDropped_{0};

    std::atomic<std::uint64_t> lastSnapshotNs_{0};
    /** Serializes whole-file snapshot writes (agent 0 vs callers). */
    std::mutex snapshotMutex_;
};

/** Monotonic nanoseconds (steady clock; latency timestamps). */
std::uint64_t nowNs();

} // namespace ccp::serve

#endif // CCP_SERVE_SERVER_HH
