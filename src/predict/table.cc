#include "predict/table.hh"

#include <bit>
#include <cmath>

#include "common/logging.hh"

namespace ccp::predict {

unsigned
nodeBitsFor(unsigned n_nodes)
{
    ccp_assert(n_nodes >= 1 && n_nodes <= maxNodes,
               "bad node count ", n_nodes);
    unsigned bits = 0;
    while ((1u << bits) < n_nodes)
        ++bits;
    return bits;
}

PredictorTable::PredictorTable(
    const IndexSpec &spec,
    std::shared_ptr<const PredictionFunction> function, unsigned n_nodes)
    : spec_(spec), function_(std::move(function)), nNodes_(n_nodes),
      nodeBits_(nodeBitsFor(n_nodes))
{
    ccp_assert(function_ != nullptr, "table needs a function");
    unsigned bits = spec_.indexBits(nodeBits_);
    ccp_assert(bits <= maxTableIndexBits, "index too wide: ", bits,
               " bits");
    entries_ = std::uint64_t(1) << bits;
    entryWords_ = function_->entryWords();
    state_.assign(entries_ * entryWords_, 0);
}

std::uint64_t
PredictorTable::sizeBits() const
{
    return entries_ * function_->entryBits(nNodes_);
}

double
PredictorTable::log2SizeBits() const
{
    return std::log2(static_cast<double>(sizeBits()));
}

std::uint64_t *
PredictorTable::entryState(NodeId pid, Pc pc, NodeId dir, Addr block)
{
    std::uint64_t idx = spec_.index(pid, pc, dir, block, nodeBits_);
    return state_.data() + idx * entryWords_;
}

const std::uint64_t *
PredictorTable::entryState(NodeId pid, Pc pc, NodeId dir,
                           Addr block) const
{
    std::uint64_t idx = spec_.index(pid, pc, dir, block, nodeBits_);
    return state_.data() + idx * entryWords_;
}

SharingBitmap
PredictorTable::predict(NodeId pid, Pc pc, NodeId dir, Addr block) const
{
    return function_->predict(entryState(pid, pc, dir, block));
}

void
PredictorTable::update(NodeId pid, Pc pc, NodeId dir, Addr block,
                       SharingBitmap feedback)
{
    function_->update(entryState(pid, pc, dir, block), feedback);
}

void
PredictorTable::clear()
{
    std::fill(state_.begin(), state_.end(), 0);
}

bool
PredictorTable::restoreRawState(const std::vector<std::uint64_t> &words)
{
    if (words.size() != state_.size())
        return false;
    state_ = words;
    return true;
}

double
PredictorTable::occupancy() const
{
    if (entries_ == 0)
        return 0.0;
    std::uint64_t used = 0;
    for (std::uint64_t e = 0; e < entries_; ++e) {
        const std::uint64_t *words = state_.data() + e * entryWords_;
        for (std::size_t w = 0; w < entryWords_; ++w) {
            if (words[w]) {
                ++used;
                break;
            }
        }
    }
    return static_cast<double>(used) / static_cast<double>(entries_);
}

} // namespace ccp::predict
