#include "predict/distributed.hh"

#include "common/logging.hh"

namespace ccp::predict {

const char *
predictorLocationName(PredictorLocation loc)
{
    switch (loc) {
      case PredictorLocation::AtProcessors:
        return "processors";
      case PredictorLocation::AtDirectories:
        return "directories";
    }
    ccp_panic("bad PredictorLocation");
}

DistributedPredictor::DistributedPredictor(const SchemeSpec &global,
                                           PredictorLocation loc,
                                           unsigned n_nodes)
    : location_(loc), nNodes_(n_nodes), partScheme_(global)
{
    if (loc == PredictorLocation::AtProcessors) {
        if (!global.index.distributableAtProcessors())
            ccp_fatal("scheme without pid indexing cannot be "
                      "distributed at the processors (Table 1)");
        partScheme_.index.usePid = false;
    } else {
        if (!global.index.distributableAtDirectories())
            ccp_fatal("scheme without dir indexing cannot be "
                      "distributed at the directories (Table 1)");
        partScheme_.index.useDir = false;
    }

    parts_.reserve(n_nodes);
    for (unsigned i = 0; i < n_nodes; ++i)
        parts_.push_back(partScheme_.makeTable(n_nodes));
}

NodeId
DistributedPredictor::partOf(NodeId pid, NodeId dir) const
{
    NodeId where =
        location_ == PredictorLocation::AtProcessors ? pid : dir;
    ccp_assert(where < nNodes_, "routing outside the machine");
    return where;
}

const PredictorTable &
DistributedPredictor::part(NodeId where) const
{
    ccp_assert(where < nNodes_, "part index out of range");
    return parts_[where];
}

std::uint64_t
DistributedPredictor::sizeBits() const
{
    std::uint64_t total = 0;
    for (const auto &p : parts_)
        total += p.sizeBits();
    return total;
}

SharingBitmap
DistributedPredictor::predict(NodeId pid, Pc pc, NodeId dir, Addr block)
{
    return parts_[partOf(pid, dir)].predict(pid, pc, dir, block);
}

void
DistributedPredictor::update(NodeId pid, Pc pc, NodeId dir, Addr block,
                             SharingBitmap feedback)
{
    parts_[partOf(pid, dir)].update(pid, pc, dir, block, feedback);
}

void
DistributedPredictor::clear()
{
    for (auto &p : parts_)
        p.clear();
}

Confusion
evaluateDistributed(const trace::SharingTrace &trace,
                    DistributedPredictor &predictor, UpdateMode mode)
{
    predictor.clear();
    const unsigned n = trace.nNodes();
    Confusion conf;

    std::vector<SharingBitmap> ordered_fb;
    if (mode == UpdateMode::Ordered)
        ordered_fb = orderedFeedback(trace);

    EventSeq seq = 0;
    for (const auto &ev : trace.events()) {
        SharingBitmap pred;
        switch (mode) {
          case UpdateMode::Direct:
            if (ev.hasPrevWriter)
                predictor.update(ev.pid, ev.pc, ev.dir, ev.block,
                                 ev.invalidated);
            pred = predictor.predict(ev.pid, ev.pc, ev.dir, ev.block);
            break;
          case UpdateMode::Forwarded:
            if (ev.hasPrevWriter)
                predictor.update(ev.prevWriterPid, ev.prevWriterPc,
                                 ev.dir, ev.block, ev.invalidated);
            pred = predictor.predict(ev.pid, ev.pc, ev.dir, ev.block);
            break;
          case UpdateMode::Ordered:
            pred = predictor.predict(ev.pid, ev.pc, ev.dir, ev.block);
            predictor.update(ev.pid, ev.pc, ev.dir, ev.block,
                             ordered_fb[seq]);
            break;
        }
        conf.add(pred, ev.readers, n);
        ++seq;
    }
    return conf;
}

} // namespace ccp::predict
