#include "predict/evaluator.hh"

#include "common/logging.hh"
#include "obs/registry.hh"
#include "obs/timer.hh"

namespace ccp::predict {

const char *
updateModeName(UpdateMode mode)
{
    switch (mode) {
      case UpdateMode::Direct:
        return "direct";
      case UpdateMode::Forwarded:
        return "forwarded";
      case UpdateMode::Ordered:
        return "ordered";
    }
    ccp_panic("bad UpdateMode");
}

PredictorTable
SchemeSpec::makeTable(unsigned n_nodes) const
{
    return PredictorTable(index,
                          makeFunction(kind, depth, n_nodes, perc),
                          n_nodes);
}

std::uint64_t
SchemeSpec::sizeBits(unsigned n_nodes) const
{
    auto fn = makeFunction(kind, depth, n_nodes, perc);
    std::uint64_t entries = std::uint64_t(1)
                            << index.indexBits(nodeBitsFor(n_nodes));
    return entries * fn->entryBits(n_nodes);
}

std::vector<SharingBitmap>
orderedFeedback(const trace::SharingTrace &trace)
{
    // Ordered update delivers exactly the feedback forwarded update
    // would (the set of readers *invalidated* when the version dies),
    // just perfectly ordered in time.  The bitmap each event will
    // eventually generate is recorded on its successor; versions
    // still live at the end of the trace feed back their full reader
    // set (final-memory-state semantics, paper section 5.1).
    const auto &events = trace.events();
    std::vector<SharingBitmap> feedback(events.size());
    for (std::size_t i = 0; i < events.size(); ++i)
        feedback[i] = events[i].readers;
    for (const auto &ev : events) {
        if (ev.prevEvent != trace::noEvent)
            feedback[ev.prevEvent] = ev.invalidated;
    }
    return feedback;
}

Confusion
evaluateTrace(const trace::SharingTrace &trace, PredictorTable &table,
              UpdateMode mode)
{
    table.clear();
    const unsigned n = trace.nNodes();
    Confusion conf;

    std::vector<SharingBitmap> ordered_fb;
    if (mode == UpdateMode::Ordered)
        ordered_fb = orderedFeedback(trace);

    obs::Stopwatch watch;
    EventSeq seq = 0;
    for (const auto &ev : trace.events()) {
        SharingBitmap pred;
        switch (mode) {
          case UpdateMode::Direct:
            // Feedback exists only when a *written* version died here
            // (the invalidation of some writer's readers).  Blocks
            // read before their first write carry no attributable
            // history.
            if (ev.hasPrevWriter)
                table.update(ev.pid, ev.pc, ev.dir, ev.block,
                             ev.invalidated);
            pred = table.predict(ev.pid, ev.pc, ev.dir, ev.block);
            break;

          case UpdateMode::Forwarded:
            // The dying version's readers update the entry of the
            // writer that produced it.  When the index uses no writer
            // identity (pure address schemes) this entry coincides
            // with the current writer's, which is why direct,
            // forwarded and ordered update are equivalent there
            // (paper section 3.4).
            if (ev.hasPrevWriter)
                table.update(ev.prevWriterPid, ev.prevWriterPc, ev.dir,
                             ev.block, ev.invalidated);
            pred = table.predict(ev.pid, ev.pc, ev.dir, ev.block);
            break;

          case UpdateMode::Ordered:
            pred = table.predict(ev.pid, ev.pc, ev.dir, ev.block);
            table.update(ev.pid, ev.pc, ev.dir, ev.block,
                         ordered_fb[seq]);
            break;
        }
        conf.add(pred, ev.readers, n);
        ++seq;
    }

    // Per-trace throughput accounting: two clock reads and a few map
    // lookups per trace, nothing in the per-event hot loop.  Goes to
    // current() so parallel-sweep workers accumulate into their own
    // shard instead of racing on root().
    double sec = watch.elapsedSec();
    auto &reg = obs::StatsRegistry::current();
    reg.counter("evaluator.traces") += 1;
    reg.counter("evaluator.events") += trace.events().size();
    reg.summary("evaluator.trace_seconds").add(sec);
    if (sec > 0.0 && !trace.events().empty())
        reg.summary("evaluator.events_per_sec")
            .add(static_cast<double>(trace.events().size()) / sec);
    return conf;
}

Confusion
evaluateTrace(const trace::SharingTrace &trace, const SchemeSpec &scheme,
              UpdateMode mode)
{
    PredictorTable table = scheme.makeTable(trace.nNodes());
    return evaluateTrace(trace, table, mode);
}

SuiteResult
evaluateSuite(const std::vector<trace::SharingTrace> &traces,
              const SchemeSpec &scheme, UpdateMode mode)
{
    ccp_assert(!traces.empty(), "empty benchmark suite");
    SuiteResult result;
    result.scheme = scheme;
    result.mode = mode;

    PredictorTable table = scheme.makeTable(traces.front().nNodes());
    for (const auto &tr : traces) {
        ccp_assert(tr.nNodes() == traces.front().nNodes(),
                   "mixed machine sizes in suite");
        Confusion c = evaluateTrace(tr, table, mode);
        result.pooled.merge(c);
        result.perTrace.push_back({tr.name(), c});
    }
    // Occupancy after the final trace: one table scan per suite, so
    // wide sweeps stay cheap.
    obs::StatsRegistry::current()
        .summary("evaluator.table_occupancy")
        .add(table.occupancy());
    return result;
}

namespace {

double
average(const std::vector<TraceResult> &per_trace,
        double (Confusion::*metric)() const)
{
    if (per_trace.empty())
        return 0.0;
    double total = 0.0;
    for (const auto &tr : per_trace)
        total += (tr.confusion.*metric)();
    return total / static_cast<double>(per_trace.size());
}

} // namespace

double
SuiteResult::avgSensitivity() const
{
    return average(perTrace, &Confusion::sensitivity);
}

double
SuiteResult::avgPvp() const
{
    return average(perTrace, &Confusion::pvp);
}

double
SuiteResult::avgPrevalence() const
{
    return average(perTrace, &Confusion::prevalence);
}

} // namespace ccp::predict
