/**
 * @file
 * PredictorTable: a concrete global predictor — an IndexSpec plus a
 * PredictionFunction plus the dense 2^indexBits entry array — with the
 * paper's bit-cost accounting.
 */

#ifndef CCP_PREDICT_TABLE_HH
#define CCP_PREDICT_TABLE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/bitmap.hh"
#include "common/types.hh"
#include "predict/function.hh"
#include "predict/index.hh"
#include "trace/event.hh"

namespace ccp::predict {

/** Hard cap on index width so a mistyped sweep cannot eat all RAM
 *  (shared by PredictorTable and the batched sweep kernel). */
inline constexpr unsigned maxTableIndexBits = 26;

/**
 * A complete prediction scheme instance.
 *
 * Entries are direct-mapped and untagged: truncated pc/addr fields
 * alias freely, exactly as in the paper's cost-constrained schemes.
 */
class PredictorTable
{
  public:
    /**
     * @param spec     Indexing fields.
     * @param function Prediction function (ownership shared so sweeps
     *                 can reuse one function across tables).
     * @param n_nodes  Machine size (defines pid/dir width and bitmap
     *                 width).
     */
    PredictorTable(const IndexSpec &spec,
                   std::shared_ptr<const PredictionFunction> function,
                   unsigned n_nodes);

    const IndexSpec &spec() const { return spec_; }
    const PredictionFunction &function() const { return *function_; }
    unsigned nNodes() const { return nNodes_; }
    unsigned nodeBits() const { return nodeBits_; }

    /** Number of table entries (2^indexBits). */
    std::uint64_t entries() const { return entries_; }

    /** Implementation cost in bits (paper accounting). */
    std::uint64_t sizeBits() const;

    /** Cost as log2(bits), the "size" column of Tables 7-11. */
    double log2SizeBits() const;

    /** Predict the sharing bitmap for an access tuple. */
    SharingBitmap predict(NodeId pid, Pc pc, NodeId dir,
                          Addr block) const;

    /** Fold feedback into the entry for an access tuple. */
    void update(NodeId pid, Pc pc, NodeId dir, Addr block,
                SharingBitmap feedback);

    /** Reset all entries to the empty-history state. */
    void clear();

    /**
     * The raw packed entry state, entries_ x entryWords() words —
     * exactly what update() mutates.  Two tables built from the same
     * SchemeSpec that processed the same event sequence have equal
     * rawState(); the serve layer snapshots and compares through this.
     */
    const std::vector<std::uint64_t> &rawState() const
    {
        return state_;
    }

    /** Words per entry (the function's packed-state footprint). */
    std::size_t entryWords() const { return entryWords_; }

    /**
     * Replace the entry state with a previously captured rawState().
     * @return false (state untouched) when @p words has the wrong
     * geometry for this table.
     */
    bool restoreRawState(const std::vector<std::uint64_t> &words);

    /**
     * Fraction of entries holding non-empty history (any nonzero
     * state word).  An aliasing-quality/diagnostic signal: a sweep
     * whose tables stay near-empty is paying for index bits it never
     * exercises.
     */
    double occupancy() const;

  private:
    std::uint64_t *entryState(NodeId pid, Pc pc, NodeId dir, Addr block);
    const std::uint64_t *entryState(NodeId pid, Pc pc, NodeId dir,
                                    Addr block) const;

    IndexSpec spec_;
    std::shared_ptr<const PredictionFunction> function_;
    unsigned nNodes_;
    unsigned nodeBits_;
    std::uint64_t entries_;
    std::size_t entryWords_;
    std::vector<std::uint64_t> state_;
};

/** log2(N) rounded up; pid/dir field width for an N-node machine. */
unsigned nodeBitsFor(unsigned n_nodes);

} // namespace ccp::predict

#endif // CCP_PREDICT_TABLE_HH
