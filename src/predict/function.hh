/**
 * @file
 * Prediction functions: the *prediction* axis of the taxonomy
 * (section 3.2).
 *
 * A prediction function defines the per-entry state layout of the
 * predictor table, how a sharing-bitmap prediction is produced from
 * that state, and how a feedback bitmap updates it.  Implemented
 * functions:
 *
 *  - WindowFunction (union / inter): a circular window of the last
 *    `depth` feedback bitmaps; the prediction is their union or
 *    intersection.  Depth 1 is exactly "last prediction" (Lai &
 *    Falsafi); intersection of depth 2 is Kaxiras & Goodman's
 *    intersection predictor.
 *  - PAsFunction: Yeh & Patt style two-level adaptive prediction,
 *    per potential reader: an N x depth set of history registers
 *    selects per-node pattern tables of 2-bit saturating counters.
 *
 * Entry state is stored as a flat span of 64-bit words so the table
 * stays dense and sweep evaluation stays fast.
 */

#ifndef CCP_PREDICT_FUNCTION_HH
#define CCP_PREDICT_FUNCTION_HH

#include <cstdint>
#include <memory>
#include <string>

#include "common/bitmap.hh"
#include "common/types.hh"

namespace ccp::predict {

/** The prediction-function families of the paper. */
enum class FunctionKind : std::uint8_t
{
    Union,
    Inter,
    PAs,
    /**
     * Kaxiras & Goodman's "last" variant (paper section 3.5): predict
     * the last sharing bitmap only if it overlaps the one before it —
     * a cheap confidence filter.  The paper names it but leaves it
     * unsimulated; we include it as an extension.
     */
    OverlapLast,
    /**
     * Hashed-perceptron sharing predictor (COALESCE idiom): per
     * potential reader, a depth-bit history register and a vector of
     * bounded saturating signed weights (bias + one per history bit);
     * a node is predicted shared when the dot product clears a
     * threshold.  An optional per-entry Bloom negative filter
     * suppresses readers whose recent weight history says "dead".
     * An extension beyond the paper's fixed-function families.
     */
    Perceptron,
};

/** Parse/print the lowercase family names used in scheme notation. */
const char *functionKindName(FunctionKind kind);

/**
 * Abstract per-entry behaviour of a predictor.
 *
 * Functions are stateless; all entry state lives in the table's word
 * array, `entryWords()` words per entry, zero-initialized (an entry
 * with no recorded history predicts the empty bitmap for union/inter
 * and whatever its counters say — initially "not shared" — for PAs,
 * appropriate given the low prevalence of sharing).
 */
class PredictionFunction
{
  public:
    virtual ~PredictionFunction() = default;

    virtual FunctionKind kind() const = 0;

    /** History depth parameter of the scheme. */
    virtual unsigned depth() const = 0;

    /** 64-bit words of state per table entry. */
    virtual std::size_t entryWords() const = 0;

    /** Implementation cost of one entry in bits (paper accounting). */
    virtual std::uint64_t entryBits(unsigned n_nodes) const = 0;

    /** Produce a prediction from an entry's state. */
    virtual SharingBitmap predict(const std::uint64_t *state) const = 0;

    /** Fold a feedback bitmap into an entry's state. */
    virtual void update(std::uint64_t *state,
                        SharingBitmap feedback) const = 0;

    /** Family name: "union", "inter", or "pas". */
    std::string name() const { return functionKindName(kind()); }
};

/**
 * Union/intersection over a window of the last `depth` feedback
 * bitmaps (depth 1 == last prediction).
 *
 * State layout: word 0 packs (count, next-slot); words 1..depth are
 * the bitmaps.
 */
class WindowFunction : public PredictionFunction
{
  public:
    /** @param kind Union or Inter.  @param depth window size >= 1. */
    WindowFunction(FunctionKind kind, unsigned depth);

    FunctionKind kind() const override { return kind_; }
    unsigned depth() const override { return depth_; }
    std::size_t entryWords() const override { return depth_ + 1; }
    std::uint64_t entryBits(unsigned n_nodes) const override;
    SharingBitmap predict(const std::uint64_t *state) const override;
    void update(std::uint64_t *state,
                SharingBitmap feedback) const override;

  private:
    FunctionKind kind_;
    unsigned depth_;
};

/**
 * Two-level adaptive (PAs) prediction: per entry and per potential
 * reader node, a `depth`-bit history register indexes a pattern table
 * of 2-bit saturating counters; the per-node binary predictions
 * aggregate into the predicted bitmap.
 *
 * State layout: `historyWords` words of packed per-node histories,
 * then packed 2-bit counters.
 */
class PAsFunction : public PredictionFunction
{
  public:
    /**
     * @param depth   History register width in bits (1..8).
     * @param n_nodes Number of potential readers (fixed per machine).
     */
    PAsFunction(unsigned depth, unsigned n_nodes);

    FunctionKind kind() const override { return FunctionKind::PAs; }
    unsigned depth() const override { return depth_; }
    std::size_t entryWords() const override { return entryWords_; }
    std::uint64_t entryBits(unsigned n_nodes) const override;
    SharingBitmap predict(const std::uint64_t *state) const override;
    void update(std::uint64_t *state,
                SharingBitmap feedback) const override;

  private:
    unsigned historyOf(const std::uint64_t *state, unsigned node) const;
    void setHistory(std::uint64_t *state, unsigned node,
                    unsigned value) const;
    unsigned counterOf(const std::uint64_t *state, unsigned node,
                       unsigned pattern) const;
    void setCounter(std::uint64_t *state, unsigned node,
                    unsigned pattern, unsigned value) const;

    unsigned depth_;
    unsigned nNodes_;
    std::size_t historyWords_;
    std::size_t entryWords_;
};

/**
 * Overlap-last prediction: keep the last two feedback bitmaps;
 * predict the most recent one only when the two overlap (a one-bit
 * confidence check that suppresses predictions on unstable history).
 *
 * State layout: word 0 packs a valid count; words 1..2 are the last
 * and previous bitmaps.
 */
class OverlapLastFunction : public PredictionFunction
{
  public:
    OverlapLastFunction() = default;

    FunctionKind kind() const override
    {
        return FunctionKind::OverlapLast;
    }
    unsigned depth() const override { return 1; }
    std::size_t entryWords() const override { return 3; }
    std::uint64_t entryBits(unsigned n_nodes) const override;
    SharingBitmap predict(const std::uint64_t *state) const override;
    void update(std::uint64_t *state,
                SharingBitmap feedback) const override;
};

/** Tunable dimensions of the perceptron family (all swept). */
struct PerceptronParams
{
    /** Saturating weight width in bits, sign included (2..8): weights
     *  live in [-2^(w-1), 2^(w-1)-1] and never escape it. */
    unsigned weightBits = 5;
    /** Prediction threshold (>= 1 so a cold entry abstains): node n
     *  is predicted shared when its dot product >= theta. */
    unsigned theta = 2;
    /** Bloom negative-filter size in bits (0 disables, else 4..32). */
    unsigned bloomBits = 0;

    bool operator==(const PerceptronParams &) const = default;
};

/**
 * Hashed-perceptron prediction: per entry and per potential reader, a
 * depth-bit history register plus (depth + 1) bounded saturating
 * signed weights — a bias weight and one weight per history bit.  The
 * per-node decision is
 *
 *   dot = w0 + sum_i (h_i ? +w[i+1] : -w[i+1])   predict iff dot >= theta
 *
 * trained perceptron-style (only on a mispredict or a low-margin hit,
 * |dot| <= theta), with every weight clamped to the signed
 * weightBits range.  Feature hashing lives on the *access* axis: a
 * hashed IndexSpec folds the full {pc, addr, dir} tuple into the
 * table index (see predict/index.hh), so each entry's weights are the
 * weight-table row of its hashed feature vector.
 *
 * The optional Bloom negative filter (ghost-buffer idiom) records
 * readers the perceptron predicted but that did not re-share — on a
 * later predict, a node whose k=2 filter bits are both set is
 * suppressed as dead.  The filter self-ages: it is cleared whenever a
 * quarter of its bits' worth of inserts have accumulated, which also
 * bounds its false-positive rate (bloomFprBound()).
 *
 * State layout: packed per-node histories (as PAs), then per-node
 * weight vectors as int8 lanes, then (if enabled) one Bloom word
 * (filter in the low 32 bits, insert count above).
 */
class PerceptronFunction : public PredictionFunction
{
  public:
    /**
     * @param depth   History register width in bits (1..8).
     * @param n_nodes Number of potential readers (fixed per machine).
     * @param params  Weight width / threshold / Bloom dimensions.
     */
    PerceptronFunction(unsigned depth, unsigned n_nodes,
                       const PerceptronParams &params = {});

    FunctionKind kind() const override
    {
        return FunctionKind::Perceptron;
    }
    unsigned depth() const override { return depth_; }
    std::size_t entryWords() const override { return entryWords_; }
    std::uint64_t entryBits(unsigned n_nodes) const override;
    SharingBitmap predict(const std::uint64_t *state) const override;
    void update(std::uint64_t *state,
                SharingBitmap feedback) const override;

    const PerceptronParams &params() const { return params_; }
    int weightMin() const { return weightMin_; }
    int weightMax() const { return weightMax_; }

    /** Raw (unsuppressed) per-node dot product of an entry. */
    int dot(const std::uint64_t *state, unsigned node) const;

    /** Inserts the Bloom filter holds before self-aging clears it. */
    unsigned bloomCapacity() const { return bloomCap_; }
    /** Analytic false-positive bound of the aged filter (k = 2,
     *  at most bloomCapacity() live inserts).  0 when disabled. */
    double bloomFprBound() const;
    /** True if the filter word currently suppresses @p node. */
    bool bloomSuppressed(const std::uint64_t *state,
                         unsigned node) const;

  private:
    unsigned historyOf(const std::uint64_t *state, unsigned node) const;
    void setHistory(std::uint64_t *state, unsigned node,
                    unsigned value) const;
    const std::int8_t *
    weightsOf(const std::uint64_t *state, unsigned node) const
    {
        return reinterpret_cast<const std::int8_t *>(
                   state + historyWords_) +
               std::size_t(node) * (depth_ + 1);
    }
    std::int8_t *
    weightsOf(std::uint64_t *state, unsigned node) const
    {
        return reinterpret_cast<std::int8_t *>(state + historyWords_) +
               std::size_t(node) * (depth_ + 1);
    }
    int dotAt(const std::uint64_t *state, const std::int8_t *w,
              unsigned hist) const;
    void bloomInsert(std::uint64_t *state, unsigned node) const;

    unsigned depth_;
    unsigned nNodes_;
    PerceptronParams params_;
    int weightMin_;
    int weightMax_;
    std::size_t historyWords_;
    std::size_t entryWords_;
    /** Word index of the Bloom word; entryWords_ if disabled. */
    std::size_t bloomWord_;
    unsigned bloomCap_ = 0;
    /** Per-node k=2 filter bit mask, fixed at construction. */
    std::uint32_t bloomMaskOf_[maxNodes] = {};
};

/**
 * Build a prediction function.
 *
 * @param kind    Family.
 * @param depth   History depth (ignored by overlap-last).
 * @param n_nodes Machine size (PAs and perceptron state depend on it).
 * @param perc    Perceptron dimensions (ignored by other kinds).
 */
std::unique_ptr<PredictionFunction>
makeFunction(FunctionKind kind, unsigned depth, unsigned n_nodes,
             const PerceptronParams &perc = {});

} // namespace ccp::predict

#endif // CCP_PREDICT_FUNCTION_HH
