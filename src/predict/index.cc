#include "predict/index.hh"

#include <sstream>

#include "common/logging.hh"

namespace ccp::predict {

std::uint64_t
IndexSpec::index(NodeId pid, Pc pc, NodeId dir, Addr block,
                 unsigned node_bits) const
{
    if (hashed) {
        const unsigned bits = indexBits(node_bits);
        const std::uint64_t mask =
            bits == 0 ? 0
            : bits >= 64
                ? ~std::uint64_t(0)
                : (std::uint64_t(1) << bits) - 1;
        return detail::hashIndexFold(
            usePid ? std::uint64_t(pid) : 0, pcBits ? (pc >> 2) : 0,
            useDir ? std::uint64_t(dir) : 0, addrBits ? block : 0,
            usePid ? detail::hashPidMult : 0,
            pcBits ? detail::hashPcMult : 0,
            useDir ? detail::hashDirMult : 0,
            addrBits ? detail::hashAddrMult : 0, mask);
    }

    std::uint64_t idx = 0;
    unsigned shift = 0;

    if (addrBits > 0) {
        idx |= (block & ((std::uint64_t(1) << addrBits) - 1)) << shift;
        shift += addrBits;
    }
    if (useDir) {
        idx |= (std::uint64_t(dir) &
                ((std::uint64_t(1) << node_bits) - 1))
               << shift;
        shift += node_bits;
    }
    if (pcBits > 0) {
        // Stores are word-aligned; drop the two always-zero bits so
        // truncation keeps the distinguishing bits.
        idx |= ((pc >> 2) & ((std::uint64_t(1) << pcBits) - 1))
               << shift;
        shift += pcBits;
    }
    if (usePid) {
        idx |= (std::uint64_t(pid) &
                ((std::uint64_t(1) << node_bits) - 1))
               << shift;
        shift += node_bits;
    }
    ccp_assert(shift == indexBits(node_bits), "index packing mismatch");
    return idx;
}

IndexPlan
makeIndexPlan(const IndexSpec &spec, unsigned node_bits)
{
    // Mirrors the field order of IndexSpec::index() exactly:
    // addr, dir, pc, pid from the low bits up.
    auto mask_of = [](unsigned bits) {
        return bits ? (std::uint64_t(1) << bits) - 1 : 0;
    };
    IndexPlan plan;
    if (spec.hashed) {
        const unsigned bits = spec.indexBits(node_bits);
        ccp_assert(bits <= 64, "index plan wider than 64 bits");
        plan.hashAddrMult =
            spec.addrBits > 0 ? detail::hashAddrMult : 0;
        plan.hashDirMult = spec.useDir ? detail::hashDirMult : 0;
        plan.hashPcMult = spec.pcBits > 0 ? detail::hashPcMult : 0;
        plan.hashPidMult = spec.usePid ? detail::hashPidMult : 0;
        plan.hashFoldMask =
            bits == 0 ? 0
            : bits >= 64
                ? ~std::uint64_t(0)
                : (std::uint64_t(1) << bits) - 1;
        return plan;
    }
    unsigned shift = 0;
    if (spec.addrBits > 0) {
        plan.addrMask = mask_of(spec.addrBits);
        plan.addrShift = shift;
        shift += spec.addrBits;
    }
    if (spec.useDir) {
        plan.dirMask = mask_of(node_bits);
        plan.dirShift = shift;
        shift += node_bits;
    }
    if (spec.pcBits > 0) {
        plan.pcMask = mask_of(spec.pcBits);
        plan.pcShift = shift;
        shift += spec.pcBits;
    }
    if (spec.usePid) {
        plan.pidMask = mask_of(node_bits);
        plan.pidShift = shift;
        shift += node_bits;
    }
    ccp_assert(shift == spec.indexBits(node_bits),
               "index plan packing mismatch");
    // Every field shift must stay < 64: past that, scalar << is UB
    // while the AVX2 variable shift (_mm256_sllv_epi64) yields zero,
    // so an over-wide plan would make the simd kernel's two backends
    // silently diverge instead of failing loudly.  Wider specs are
    // unusable configurations anyway (one table entry per 2^64
    // indices); schemeStateWords rejects them far earlier with a
    // structured error, so this guards direct makeIndexPlan callers.
    ccp_assert(shift <= 64, "index plan wider than 64 bits");
    return plan;
}

unsigned
IndexSpec::tableOneCase() const
{
    return (usePid ? 8u : 0u) | (pcBits > 0 ? 4u : 0u) |
           (useDir ? 2u : 0u) | (addrBits > 0 ? 1u : 0u);
}

std::string
IndexSpec::fieldsName() const
{
    std::ostringstream os;
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << '+';
        first = false;
    };
    if (hashed)
        os << "hash:";
    if (usePid) {
        sep();
        os << "pid";
    }
    if (pcBits > 0) {
        sep();
        os << "pc" << pcBits;
    }
    if (useDir) {
        sep();
        os << "dir";
    }
    if (addrBits > 0) {
        sep();
        os << "add" << addrBits;
    }
    return os.str();
}

IndexSpec
addressIndex(unsigned addr_bits, bool use_dir)
{
    IndexSpec spec;
    spec.useDir = use_dir;
    spec.addrBits = addr_bits;
    return spec;
}

IndexSpec
instructionIndex(unsigned pc_bits, bool use_pid)
{
    IndexSpec spec;
    spec.usePid = use_pid;
    spec.pcBits = pc_bits;
    return spec;
}

} // namespace ccp::predict
