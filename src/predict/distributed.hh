/**
 * @file
 * DistributedPredictor: the physical distribution of a global
 * predictor (paper section 3.1, Figure 1).
 *
 * The paper's key structural observation is that placing prediction
 * tables at the processors or at the directories *is* pid or dir
 * indexing of one conceptual global predictor: distributing the
 * global table into N parts — one per processor (when pid indexes it)
 * or one per directory (when dir indexes it) — yields exactly the
 * same predictions.  This class implements the distributed
 * arrangement: N per-location PredictorTables whose local index omits
 * the location field, with every request routed to the owning part.
 * The property tests prove bit-exact equivalence with the global
 * abstraction, making Figure 1's claim executable.
 */

#ifndef CCP_PREDICT_DISTRIBUTED_HH
#define CCP_PREDICT_DISTRIBUTED_HH

#include <vector>

#include "predict/evaluator.hh"
#include "predict/table.hh"

namespace ccp::predict {

/** Where the parts of a distributed predictor live. */
enum class PredictorLocation : std::uint8_t
{
    AtProcessors, ///< one part per node, selected by pid
    AtDirectories, ///< one part per home node, selected by dir
};

const char *predictorLocationName(PredictorLocation loc);

/**
 * A global prediction scheme physically distributed across the
 * machine.  Construction is fatal if Table 1 forbids the placement
 * (the location's field must participate in the global index: a
 * scheme without pid cannot live at the processors, one without dir
 * cannot live at the directories).
 */
class DistributedPredictor
{
  public:
    /**
     * @param global  The global scheme to distribute.
     * @param loc     Placement.
     * @param n_nodes Machine size.
     */
    DistributedPredictor(const SchemeSpec &global, PredictorLocation loc,
                         unsigned n_nodes);

    PredictorLocation location() const { return location_; }
    unsigned nNodes() const { return nNodes_; }

    /** The scheme of each local part (location field removed). */
    const SchemeSpec &partScheme() const { return partScheme_; }

    /** Access one physical part (e.g. to inspect its size). */
    const PredictorTable &part(NodeId where) const;

    /** Total implementation cost, summed over the parts. */
    std::uint64_t sizeBits() const;

    /** Route a prediction to the owning part. */
    SharingBitmap predict(NodeId pid, Pc pc, NodeId dir, Addr block);

    /** Route feedback to the owning part. */
    void update(NodeId pid, Pc pc, NodeId dir, Addr block,
                SharingBitmap feedback);

    /** Reset every part. */
    void clear();

  private:
    NodeId partOf(NodeId pid, NodeId dir) const;

    PredictorLocation location_;
    unsigned nNodes_;
    SchemeSpec partScheme_;
    std::vector<PredictorTable> parts_;
};

/**
 * Evaluate a distributed predictor over a trace (same pipelines as
 * evaluateTrace).  Exists so tests and benches can compare the
 * distributed arrangement against the global abstraction.
 */
Confusion evaluateDistributed(const trace::SharingTrace &trace,
                              DistributedPredictor &predictor,
                              UpdateMode mode);

} // namespace ccp::predict

#endif // CCP_PREDICT_DISTRIBUTED_HH
