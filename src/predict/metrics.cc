#include "predict/metrics.hh"

namespace ccp::predict {

void
Confusion::add(const SharingBitmap &predicted,
               const SharingBitmap &actual, unsigned n_nodes)
{
    SharingBitmap mask = SharingBitmap::all(n_nodes);
    SharingBitmap p = predicted & mask;
    SharingBitmap a = actual & mask;

    unsigned tp_now = (p & a).popcount();
    unsigned fp_now = p.minus(a).popcount();
    unsigned fn_now = a.minus(p).popcount();

    tp += tp_now;
    fp += fp_now;
    fn += fn_now;
    tn += n_nodes - tp_now - fp_now - fn_now;
}

Confusion
Confusion::fromPositives(std::uint64_t tp, std::uint64_t fp,
                         std::uint64_t fn, std::uint64_t decisions)
{
    Confusion c;
    c.tp = tp;
    c.fp = fp;
    c.fn = fn;
    c.tn = decisions - tp - fp - fn;
    return c;
}

void
Confusion::merge(const Confusion &other)
{
    tp += other.tp;
    fp += other.fp;
    tn += other.tn;
    fn += other.fn;
}

namespace {

double
ratio(std::uint64_t num, std::uint64_t den, double when_empty)
{
    return den ? static_cast<double>(num) / static_cast<double>(den)
               : when_empty;
}

} // namespace

double
Confusion::prevalence() const
{
    return ratio(tp + fn, decisions(), 0.0);
}

double
Confusion::sensitivity() const
{
    return ratio(tp, tp + fn, 1.0);
}

double
Confusion::pvp() const
{
    return ratio(tp, tp + fp, 1.0);
}

double
Confusion::specificity() const
{
    return ratio(tn, tn + fp, 1.0);
}

double
Confusion::pvn() const
{
    return ratio(tn, tn + fn, 1.0);
}

double
Confusion::accuracy() const
{
    return ratio(tp + tn, decisions(), 1.0);
}

} // namespace ccp::predict
