#include "predict/spatial.hh"

#include "common/logging.hh"

namespace ccp::predict {

StickySpatialPredictor::StickySpatialPredictor(
    const StickySpatialParams &params, unsigned n_nodes)
    : params_(params), nNodes_(n_nodes)
{
    ccp_assert(params.addrBits >= 1 && params.addrBits <= 24,
               "bad sticky-spatial addr width");
    last_.assign(std::size_t(1) << params.addrBits, 0);
    misses_.assign(last_.size(), 0);
}

std::size_t
StickySpatialPredictor::slotOf(Addr block) const
{
    return static_cast<std::size_t>(
        block & ((Addr(1) << params_.addrBits) - 1));
}

std::uint64_t
StickySpatialPredictor::sizeBits() const
{
    return last_.size() * (nNodes_ + 2);
}

SharingBitmap
StickySpatialPredictor::predict(Addr block) const
{
    std::uint64_t acc = last_[slotOf(block)];
    for (unsigned d = 1; d <= params_.spatialReach; ++d) {
        acc |= last_[slotOf(block + d)];
        acc |= last_[slotOf(block - d)];
    }
    return SharingBitmap(acc);
}

void
StickySpatialPredictor::update(Addr block, SharingBitmap feedback)
{
    std::size_t slot = slotOf(block);
    if (!params_.sticky) {
        last_[slot] = feedback.raw();
        return;
    }
    if (feedback.empty()) {
        // Two consecutive empty observations clear a sticky entry.
        if (++misses_[slot] >= 2) {
            last_[slot] = 0;
            misses_[slot] = 0;
        }
    } else {
        last_[slot] |= feedback.raw();
        misses_[slot] = 0;
    }
}

void
StickySpatialPredictor::clear()
{
    std::fill(last_.begin(), last_.end(), 0);
    std::fill(misses_.begin(), misses_.end(), 0);
}

Confusion
evaluateStickySpatial(const trace::SharingTrace &trace,
                      StickySpatialPredictor &predictor)
{
    predictor.clear();
    const unsigned n = trace.nNodes();
    Confusion conf;
    for (const auto &ev : trace.events()) {
        if (ev.hasPrevWriter)
            predictor.update(ev.block, ev.invalidated);
        SharingBitmap pred = predictor.predict(ev.block);
        conf.add(pred, ev.readers, n);
    }
    return conf;
}

} // namespace ccp::predict
