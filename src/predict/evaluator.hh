/**
 * @file
 * Evaluator: runs a prediction scheme over coherence traces under one
 * of the paper's three update mechanisms (section 3.4).
 *
 *  - direct:    at each event, the invalidated reader set (the dying
 *               version's true readers) updates the *current* writer's
 *               entry, then the prediction is made.  A heuristic when
 *               writers alternate: a writer may learn someone else's
 *               history.
 *  - forwarded: the invalidated reader set updates the entry of the
 *               writer that produced the dying version (requires
 *               last-writer info), then the current writer predicts.
 *  - ordered:   the oracle ordering: each prediction is immediately
 *               followed by its own eventual outcome updating its
 *               entry, so every later prediction through that entry
 *               sees perfectly ordered history.  Implementable only
 *               via two passes over a trace (which is how the paper —
 *               and this evaluator — simulates it).
 *
 * For pure address-indexed schemes with full-width fields all three
 * mechanisms coincide; the property tests assert this.
 */

#ifndef CCP_PREDICT_EVALUATOR_HH
#define CCP_PREDICT_EVALUATOR_HH

#include <string>
#include <vector>

#include "predict/metrics.hh"
#include "predict/table.hh"
#include "trace/trace.hh"

namespace ccp::predict {

/** The update-mechanism axis of the taxonomy. */
enum class UpdateMode : std::uint8_t
{
    Direct,
    Forwarded,
    Ordered,
};

const char *updateModeName(UpdateMode mode);

/** A complete scheme: indexing + function family + history depth
 *  (+ the perceptron family's extra dimensions, defaulted and inert
 *  for every other kind). */
struct SchemeSpec
{
    IndexSpec index;
    FunctionKind kind = FunctionKind::Union;
    unsigned depth = 1;
    PerceptronParams perc{};

    /** Build a fresh table for an @p n_nodes machine. */
    PredictorTable makeTable(unsigned n_nodes) const;

    /** Cost in bits for an @p n_nodes machine. */
    std::uint64_t sizeBits(unsigned n_nodes) const;

    bool operator==(const SchemeSpec &) const = default;
};

/** Result of evaluating one scheme on one trace. */
struct TraceResult
{
    std::string traceName;
    Confusion confusion;
};

/**
 * Result of evaluating one scheme across a benchmark suite.
 *
 * The paper's figures report the arithmetic average of the metric over
 * benchmarks, not the pooled ratio; both are available here.
 */
struct SuiteResult
{
    SchemeSpec scheme;
    UpdateMode mode = UpdateMode::Direct;
    std::vector<TraceResult> perTrace;
    Confusion pooled;

    double avgSensitivity() const;
    double avgPvp() const;
    double avgPrevalence() const;
};

/**
 * The feedback bitmap each event's entry receives under ordered
 * update: the readers its version's death will invalidate (identical
 * in content to forwarded update's feedback, but perfectly ordered).
 * Versions still live at the end of the trace feed back their full
 * reader set.
 */
std::vector<SharingBitmap>
orderedFeedback(const trace::SharingTrace &trace);

/**
 * Evaluate a scheme over one trace using a caller-provided table
 * (cleared first).  @return the per-bit confusion counts.
 */
Confusion evaluateTrace(const trace::SharingTrace &trace,
                        PredictorTable &table, UpdateMode mode);

/** Evaluate a scheme over one trace, building the table internally. */
Confusion evaluateTrace(const trace::SharingTrace &trace,
                        const SchemeSpec &scheme, UpdateMode mode);

/** Evaluate a scheme over a suite of traces (fresh table per trace,
 *  as each benchmark runs alone on the machine). */
SuiteResult evaluateSuite(const std::vector<trace::SharingTrace> &traces,
                          const SchemeSpec &scheme, UpdateMode mode);

} // namespace ccp::predict

#endif // CCP_PREDICT_EVALUATOR_HH
