/**
 * @file
 * StickySpatialPredictor: the one scheme family the paper's per-entry
 * taxonomy cannot express (footnote 2): Bilir et al.'s Sticky-Spatial
 * predictor from Multicast Snooping (ISCA 1999), where the bitmaps of
 * *neighbouring* cache lines also contribute to a prediction.
 *
 * Implemented here as the paper suggests the taxonomy "can be
 * expanded": a last-bitmap table indexed by truncated block address
 * whose prediction is the union of the entry's own last bitmap with
 * its spatial neighbours' (blocks +/- spatialReach), optionally made
 * "sticky" by OR-ing each entry's own history so bits persist until
 * the entry is retrained.  Spatial union raises sensitivity on
 * region-structured sharing (halo rows, stripes) at a PVP cost —
 * the same trade the multicast-snooping mask faces.
 */

#ifndef CCP_PREDICT_SPATIAL_HH
#define CCP_PREDICT_SPATIAL_HH

#include <cstdint>
#include <vector>

#include "predict/evaluator.hh"

namespace ccp::predict {

/** Knobs of the sticky-spatial scheme. */
struct StickySpatialParams
{
    /** Low bits of the block number indexing the table. */
    unsigned addrBits = 14;
    /** Neighbour distance included in the spatial union. */
    unsigned spatialReach = 1;
    /**
     * Sticky mode: each entry keeps an OR of its recent feedback
     * (cleared when feedback is empty twice in a row) instead of just
     * the last bitmap.
     */
    bool sticky = true;
};

/**
 * The sticky-spatial predictor.  Not a PredictionFunction: its
 * prediction reads *several* table entries, which the per-entry
 * interface deliberately cannot do.
 */
class StickySpatialPredictor
{
  public:
    StickySpatialPredictor(const StickySpatialParams &params,
                           unsigned n_nodes);

    const StickySpatialParams &params() const { return params_; }

    /** Implementation cost in bits (one bitmap per entry plus the
     *  two-miss clear counter). */
    std::uint64_t sizeBits() const;

    SharingBitmap predict(Addr block) const;
    void update(Addr block, SharingBitmap feedback);
    void clear();

  private:
    std::size_t slotOf(Addr block) const;

    StickySpatialParams params_;
    unsigned nNodes_;
    std::vector<std::uint64_t> last_;
    std::vector<std::uint8_t> misses_;
};

/** Evaluate sticky-spatial over a trace (direct update semantics:
 *  feedback is applied before the prediction, like every practical
 *  address-indexed scheme). */
Confusion evaluateStickySpatial(const trace::SharingTrace &trace,
                                StickySpatialPredictor &predictor);

} // namespace ccp::predict

#endif // CCP_PREDICT_SPATIAL_HH
