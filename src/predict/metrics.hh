/**
 * @file
 * Screening-test statistics for sharing prediction (paper section 4).
 *
 * Every coherence store miss yields N independent binary decisions —
 * one per node — compared against the true reader bitmap.  The four
 * cases form the confusion counts; the derived ratios are the
 * epidemiological-screening terms the paper transplants:
 *
 *   prevalence  = (TP+FN) / all         — how much sharing exists
 *   sensitivity = TP / (TP+FN)          — sharing found when present
 *   PVP         = TP / (TP+FP)          — useful fraction of forwards
 *
 * plus specificity and PVN for completeness (the paper defines but
 * does not use them).
 */

#ifndef CCP_PREDICT_METRICS_HH
#define CCP_PREDICT_METRICS_HH

#include <cstdint>
#include <string>

#include "common/bitmap.hh"

namespace ccp::predict {

/** Per-bit confusion counts over any number of decisions. */
struct Confusion
{
    std::uint64_t tp = 0;
    std::uint64_t fp = 0;
    std::uint64_t tn = 0;
    std::uint64_t fn = 0;

    /** Score one event: @p predicted vs @p actual over @p n_nodes
     *  bits. */
    void add(const SharingBitmap &predicted, const SharingBitmap &actual,
             unsigned n_nodes);

    /**
     * Rebuild full counts from the three positive-side popcount
     * tallies plus the total decision count.  Word-wise kernels
     * accumulate only tp/fp/fn per event (three popcounts on the
     * 64-bit bitmaps, no per-bit branches); TN falls out by
     * conservation: tn = decisions - tp - fp - fn.  Produces exactly
     * the counts per-event add() calls would.
     */
    static Confusion fromPositives(std::uint64_t tp, std::uint64_t fp,
                                   std::uint64_t fn,
                                   std::uint64_t decisions);

    void merge(const Confusion &other);

    std::uint64_t decisions() const { return tp + fp + tn + fn; }
    std::uint64_t actualPositives() const { return tp + fn; }
    std::uint64_t predictedPositives() const { return tp + fp; }

    /** Base rate of true sharing; 0 if no decisions. */
    double prevalence() const;
    /** TP / (TP+FN); 1 if there was nothing to find. */
    double sensitivity() const;
    /** TP / (TP+FP), "prediction accuracy" of prior work; 1 if the
     *  scheme never predicted sharing (no wasted traffic). */
    double pvp() const;
    /** TN / (TN+FP). */
    double specificity() const;
    /** TN / (TN+FN). */
    double pvn() const;
    /** (TP+TN) / all. */
    double accuracy() const;

    bool operator==(const Confusion &) const = default;
};

} // namespace ccp::predict

#endif // CCP_PREDICT_METRICS_HH
