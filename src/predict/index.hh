/**
 * @file
 * IndexSpec: the *access* axis of the paper's taxonomy (section 3.1).
 *
 * A prediction scheme indexes one conceptual global predictor with any
 * combination of the information available when new data is written:
 * the writer's node id (pid), the static store instruction (pc), the
 * home node (dir), and the block address (addr).  pid and dir are used
 * in full (all log2(N) bits) or not at all, so the global predictor
 * can be distributed to the processors (pid) or directories (dir)
 * without changing its behaviour; pc and addr may be truncated to any
 * bit width to meet an implementation cost.
 *
 * The 16 classes of Table 1 correspond to which of the four fields
 * participate at all.
 */

#ifndef CCP_PREDICT_INDEX_HH
#define CCP_PREDICT_INDEX_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "trace/event.hh"

namespace ccp::predict {

/** Which fields index the global predictor, and how wide. */
struct IndexSpec
{
    bool usePid = false;
    /** Low bits of (pc >> 2) used; 0 means pc does not participate. */
    unsigned pcBits = 0;
    bool useDir = false;
    /** Low bits of the block number used; 0 means addr absent. */
    unsigned addrBits = 0;
    /**
     * Hashed feature folding (the perceptron family's indexing mode,
     * available to every family): instead of truncating each
     * participating field and concatenating, mix every field at full
     * width through per-field odd multipliers, finalize, and fold to
     * the same indexBits() total — so truncation wastes no entropy
     * and the implementation cost accounting is unchanged.  The
     * participating-field set (and Table 1 class) is the same either
     * way; only the entry mapping differs.
     */
    bool hashed = false;

    /** Total index width given log2(N) node bits. */
    unsigned
    indexBits(unsigned node_bits) const
    {
        return (usePid ? node_bits : 0) + pcBits +
               (useDir ? node_bits : 0) + addrBits;
    }

    /** Compute the table index for an access tuple. */
    std::uint64_t index(NodeId pid, Pc pc, NodeId dir, Addr block,
                        unsigned node_bits) const;

    /** Index for a coherence event's own (writer-side) tuple. */
    std::uint64_t
    indexOf(const trace::CoherenceEvent &ev, unsigned node_bits) const
    {
        return index(ev.pid, ev.pc, ev.dir, ev.block, node_bits);
    }

    /**
     * Table 1 case number (0..15): bit 3 = pid, bit 2 = pc,
     * bit 1 = dir, bit 0 = addr.
     */
    unsigned tableOneCase() const;

    /** True if the scheme can be distributed at the processors. */
    bool distributableAtProcessors() const { return usePid; }
    /** True if the scheme can be distributed at the directories. */
    bool distributableAtDirectories() const { return useDir; }
    /** True if only a centralized implementation exists (Table 1). */
    bool
    centralizedOnly() const
    {
        return !usePid && !useDir;
    }

    /** True if the index uses writer identity (pid or pc). */
    bool
    usesWriterIdentity() const
    {
        return usePid || pcBits > 0;
    }

    /** The paper's field list, e.g. "pid+pc8+add6" (no function). */
    std::string fieldsName() const;

    bool operator==(const IndexSpec &) const = default;
};

namespace detail {

/** Per-field odd mixing multipliers of the hashed fold (absent
 *  fields multiply by zero and vanish from the mix). */
inline constexpr std::uint64_t hashAddrMult = 0x9E3779B97F4A7C15ull;
inline constexpr std::uint64_t hashDirMult = 0xC2B2AE3D27D4EB4Full;
inline constexpr std::uint64_t hashPcMult = 0x165667B19E3779F9ull;
inline constexpr std::uint64_t hashPidMult = 0x27D4EB2F165667C5ull;

/**
 * The hashed fold itself: one multiply per participating field, a
 * splitmix-style finalizer, then a mask to the index width.  Shared
 * verbatim by IndexSpec::index() and IndexPlan::fromWords() so the
 * two stay bit-identical by construction.
 */
inline std::uint64_t
hashIndexFold(std::uint64_t pid, std::uint64_t pc_word,
              std::uint64_t dir, std::uint64_t block,
              std::uint64_t pid_mult, std::uint64_t pc_mult,
              std::uint64_t dir_mult, std::uint64_t addr_mult,
              std::uint64_t mask)
{
    std::uint64_t h = block * addr_mult ^ dir * dir_mult ^
                      pc_word * pc_mult ^ pid * pid_mult;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 29;
    return h & mask;
}

} // namespace detail

/**
 * A compiled index-extraction plan: the shift/mask pipeline of one
 * IndexSpec, precomputed once per scheme so the per-event index is a
 * fixed branch-free expression (four mask-and-shift terms, absent
 * fields contributing zero through a zero mask).  Produces bit-for-bit
 * the same index as IndexSpec::index() for every tuple.
 *
 * Invariant (asserted by makeIndexPlan): the packed index fits 64
 * bits, so every shift is < 64.  The simd sweep kernel transposes
 * four plans into SoA lane vectors (sweep::lanes::LanePlans) and
 * consumes the shifts through AVX2 variable shifts, which zero at
 * shift >= 64 where scalar << is undefined — the invariant is what
 * keeps the two lane backends bit-identical by construction.
 */
struct IndexPlan
{
    std::uint64_t addrMask = 0;
    std::uint64_t dirMask = 0;
    std::uint64_t pcMask = 0;
    std::uint64_t pidMask = 0;
    unsigned addrShift = 0;
    unsigned dirShift = 0;
    unsigned pcShift = 0;
    unsigned pidShift = 0;
    /** Hashed fold (IndexSpec::hashed): per-field multipliers (zero
     *  for absent fields) and the fold mask.  hashFoldMask == 0 means
     *  the concat pipeline above is in effect.  Hashed plans never
     *  enter simd lane groups (sweep routes them to the scalar path),
     *  so the lane transpose stays concat-only. */
    std::uint64_t hashAddrMult = 0;
    std::uint64_t hashDirMult = 0;
    std::uint64_t hashPcMult = 0;
    std::uint64_t hashPidMult = 0;
    std::uint64_t hashFoldMask = 0;

    bool hashed() const { return hashFoldMask != 0; }

    /**
     * Index from pre-decoded words; @p pc_word is the word-aligned pc
     * (pc >> 2), hoisted out so event-major kernels shift it once per
     * event instead of once per scheme.
     */
    std::uint64_t
    fromWords(std::uint64_t pid, std::uint64_t pc_word,
              std::uint64_t dir, std::uint64_t block) const
    {
        if (hashFoldMask != 0)
            return detail::hashIndexFold(pid, pc_word, dir, block,
                                         hashPidMult, hashPcMult,
                                         hashDirMult, hashAddrMult,
                                         hashFoldMask);
        return ((block & addrMask) << addrShift) |
               ((dir & dirMask) << dirShift) |
               ((pc_word & pcMask) << pcShift) |
               ((pid & pidMask) << pidShift);
    }

    /** Index for a raw access tuple (same contract as IndexSpec). */
    std::uint64_t
    index(NodeId pid, Pc pc, NodeId dir, Addr block) const
    {
        return fromWords(pid, pc >> 2, dir, block);
    }
};

/** Compile @p spec into its branch-free extraction plan. */
IndexPlan makeIndexPlan(const IndexSpec &spec, unsigned node_bits);

/** Convenience builders for the common schemes. */
IndexSpec addressIndex(unsigned addr_bits, bool use_dir = true);
IndexSpec instructionIndex(unsigned pc_bits, bool use_pid = true);

} // namespace ccp::predict

#endif // CCP_PREDICT_INDEX_HH
