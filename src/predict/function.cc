#include "predict/function.hh"

#include <cmath>

#include "common/logging.hh"

namespace ccp::predict {

const char *
functionKindName(FunctionKind kind)
{
    switch (kind) {
      case FunctionKind::Union:
        return "union";
      case FunctionKind::Inter:
        return "inter";
      case FunctionKind::PAs:
        return "pas";
      case FunctionKind::OverlapLast:
        return "overlap-last";
      case FunctionKind::Perceptron:
        return "perceptron";
    }
    ccp_panic("bad FunctionKind");
}

WindowFunction::WindowFunction(FunctionKind kind, unsigned depth)
    : kind_(kind), depth_(depth)
{
    ccp_assert(kind == FunctionKind::Union || kind == FunctionKind::Inter,
               "WindowFunction is union or inter only");
    ccp_assert(depth >= 1 && depth <= 32, "bad window depth ", depth);
}

std::uint64_t
WindowFunction::entryBits(unsigned n_nodes) const
{
    // The paper accounts one sharing bitmap per history slot.
    return std::uint64_t(depth_) * n_nodes;
}

SharingBitmap
WindowFunction::predict(const std::uint64_t *state) const
{
    unsigned count = static_cast<unsigned>(state[0] & 0xffffffffu);
    if (count == 0)
        return SharingBitmap();

    std::uint64_t acc = state[1];
    if (kind_ == FunctionKind::Union) {
        for (unsigned i = 1; i < count; ++i)
            acc |= state[1 + i];
    } else {
        for (unsigned i = 1; i < count; ++i)
            acc &= state[1 + i];
    }
    return SharingBitmap(acc);
}

void
WindowFunction::update(std::uint64_t *state, SharingBitmap feedback) const
{
    unsigned count = static_cast<unsigned>(state[0] & 0xffffffffu);
    unsigned pos = static_cast<unsigned>(state[0] >> 32);

    state[1 + pos] = feedback.raw();
    pos = (pos + 1) % depth_;
    if (count < depth_)
        ++count;
    state[0] = (std::uint64_t(pos) << 32) | count;
}

PAsFunction::PAsFunction(unsigned depth, unsigned n_nodes)
    : depth_(depth), nNodes_(n_nodes)
{
    ccp_assert(depth >= 1 && depth <= 8, "bad PAs depth ", depth);
    ccp_assert(n_nodes >= 1 && n_nodes <= maxNodes, "bad node count");
    historyWords_ = (std::size_t(nNodes_) * depth_ + 63) / 64;
    std::size_t counter_bits = std::size_t(nNodes_) * (1u << depth_) * 2;
    entryWords_ = historyWords_ + (counter_bits + 63) / 64;
}

std::uint64_t
PAsFunction::entryBits(unsigned n_nodes) const
{
    // Per node: a depth-bit history register plus 2^depth 2-bit
    // counters (the paper counts both).
    return std::uint64_t(n_nodes) * (depth_ + 2ull * (1u << depth_));
}

unsigned
PAsFunction::historyOf(const std::uint64_t *state, unsigned node) const
{
    std::size_t bit = std::size_t(node) * depth_;
    std::size_t word = bit / 64, off = bit % 64;
    std::uint64_t v = state[word] >> off;
    if (off + depth_ > 64)
        v |= state[word + 1] << (64 - off);
    return static_cast<unsigned>(v & ((1u << depth_) - 1));
}

void
PAsFunction::setHistory(std::uint64_t *state, unsigned node,
                        unsigned value) const
{
    std::size_t bit = std::size_t(node) * depth_;
    std::size_t word = bit / 64, off = bit % 64;
    std::uint64_t mask = std::uint64_t((1u << depth_) - 1);

    state[word] = (state[word] & ~(mask << off)) |
                  (std::uint64_t(value) << off);
    if (off + depth_ > 64) {
        unsigned spill = static_cast<unsigned>(off + depth_ - 64);
        std::uint64_t hi_mask = (std::uint64_t(1) << spill) - 1;
        state[word + 1] = (state[word + 1] & ~hi_mask) |
                          (std::uint64_t(value) >> (depth_ - spill));
    }
}

unsigned
PAsFunction::counterOf(const std::uint64_t *state, unsigned node,
                       unsigned pattern) const
{
    std::size_t bit = (std::size_t(node) * (1u << depth_) + pattern) * 2;
    std::size_t word = historyWords_ + bit / 64, off = bit % 64;
    return static_cast<unsigned>((state[word] >> off) & 3);
}

void
PAsFunction::setCounter(std::uint64_t *state, unsigned node,
                        unsigned pattern, unsigned value) const
{
    std::size_t bit = (std::size_t(node) * (1u << depth_) + pattern) * 2;
    std::size_t word = historyWords_ + bit / 64, off = bit % 64;
    state[word] = (state[word] & ~(std::uint64_t(3) << off)) |
                  (std::uint64_t(value & 3) << off);
}

SharingBitmap
PAsFunction::predict(const std::uint64_t *state) const
{
    SharingBitmap pred;
    for (unsigned n = 0; n < nNodes_; ++n) {
        unsigned hist = historyOf(state, n);
        if (counterOf(state, n, hist) >= 2)
            pred.set(n);
    }
    return pred;
}

void
PAsFunction::update(std::uint64_t *state, SharingBitmap feedback) const
{
    for (unsigned n = 0; n < nNodes_; ++n) {
        bool read = feedback.test(n);
        unsigned hist = historyOf(state, n);
        unsigned ctr = counterOf(state, n, hist);
        if (read && ctr < 3)
            ++ctr;
        else if (!read && ctr > 0)
            --ctr;
        setCounter(state, n, hist, ctr);
        unsigned mask = (1u << depth_) - 1;
        setHistory(state, n, ((hist << 1) | (read ? 1u : 0u)) & mask);
    }
}

std::uint64_t
OverlapLastFunction::entryBits(unsigned n_nodes) const
{
    return 2ull * n_nodes; // two stored bitmaps
}

SharingBitmap
OverlapLastFunction::predict(const std::uint64_t *state) const
{
    unsigned count = static_cast<unsigned>(state[0]);
    if (count < 2)
        return SharingBitmap();
    SharingBitmap last(state[1]), prev(state[2]);
    return last.intersects(prev) ? last : SharingBitmap();
}

void
OverlapLastFunction::update(std::uint64_t *state,
                            SharingBitmap feedback) const
{
    state[2] = state[1];
    state[1] = feedback.raw();
    if (state[0] < 2)
        ++state[0];
}

PerceptronFunction::PerceptronFunction(unsigned depth,
                                       unsigned n_nodes,
                                       const PerceptronParams &params)
    : depth_(depth), nNodes_(n_nodes), params_(params)
{
    ccp_assert(depth >= 1 && depth <= 8, "bad perceptron depth ",
               depth);
    ccp_assert(n_nodes >= 1 && n_nodes <= maxNodes, "bad node count");
    ccp_assert(params.weightBits >= 2 && params.weightBits <= 8,
               "bad perceptron weight width ", params.weightBits);
    ccp_assert(params.theta >= 1 && params.theta <= 127,
               "bad perceptron threshold ", params.theta);
    ccp_assert(params.bloomBits == 0 ||
                   (params.bloomBits >= 4 && params.bloomBits <= 32),
               "bad perceptron bloom width ", params.bloomBits);

    weightMax_ = (1 << (params.weightBits - 1)) - 1;
    weightMin_ = -(1 << (params.weightBits - 1));
    historyWords_ = (std::size_t(nNodes_) * depth_ + 63) / 64;
    // One int8 lane per weight keeps the packed state byte-addressable
    // at every weight width; clamping enforces the narrower range.
    std::size_t weight_bytes = std::size_t(nNodes_) * (depth_ + 1);
    std::size_t weight_words = (weight_bytes + 7) / 8;
    bloomWord_ = historyWords_ + weight_words;
    entryWords_ = bloomWord_ + (params.bloomBits > 0 ? 1 : 0);

    if (params.bloomBits > 0) {
        bloomCap_ = params.bloomBits / 4 > 0 ? params.bloomBits / 4 : 1;
        // Two independent mixes of the node id, reduced mod m.  The
        // full avalanche finalizer matters: a bare xor-shift leaves
        // the low reduction bits correlated across nodes, and the
        // filter's false-positive rate blows past its analytic bound.
        auto mix = [](std::uint64_t h) {
            h ^= h >> 33;
            h *= 0xff51afd7ed558ccdull;
            h ^= h >> 29;
            h *= 0xc4ceb9fe1a85ec53ull;
            h ^= h >> 32;
            return h;
        };
        for (unsigned n = 0; n < nNodes_; ++n) {
            std::uint64_t h1 =
                mix((n + 1) * std::uint64_t(0x9E3779B97F4A7C15ull));
            std::uint64_t h2 =
                mix((n + 1) * std::uint64_t(0xC2B2AE3D27D4EB4Full));
            unsigned b1 =
                static_cast<unsigned>(h1 % params.bloomBits);
            // The second bit is drawn from the other m-1 positions: a
            // node whose two probes collapse to one bit would pass the
            // filter at the (much higher) single-bit rate.
            unsigned b2 = static_cast<unsigned>(
                (b1 + 1 + h2 % (params.bloomBits - 1)) %
                params.bloomBits);
            bloomMaskOf_[n] = (std::uint32_t(1) << b1) |
                              (std::uint32_t(1) << b2);
        }
    }
}

std::uint64_t
PerceptronFunction::entryBits(unsigned n_nodes) const
{
    // Per node: the history register plus (depth + 1) weights at
    // their architected width; the Bloom word adds its filter bits
    // and an 8-bit insert counter once per entry.
    std::uint64_t per_node =
        depth_ + std::uint64_t(depth_ + 1) * params_.weightBits;
    std::uint64_t bloom =
        params_.bloomBits > 0 ? params_.bloomBits + 8ull : 0;
    return std::uint64_t(n_nodes) * per_node + bloom;
}

unsigned
PerceptronFunction::historyOf(const std::uint64_t *state,
                              unsigned node) const
{
    std::size_t bit = std::size_t(node) * depth_;
    std::size_t word = bit / 64, off = bit % 64;
    std::uint64_t v = state[word] >> off;
    if (off + depth_ > 64)
        v |= state[word + 1] << (64 - off);
    return static_cast<unsigned>(v & ((1u << depth_) - 1));
}

void
PerceptronFunction::setHistory(std::uint64_t *state, unsigned node,
                               unsigned value) const
{
    std::size_t bit = std::size_t(node) * depth_;
    std::size_t word = bit / 64, off = bit % 64;
    std::uint64_t mask = std::uint64_t((1u << depth_) - 1);

    state[word] = (state[word] & ~(mask << off)) |
                  (std::uint64_t(value) << off);
    if (off + depth_ > 64) {
        unsigned spill = static_cast<unsigned>(off + depth_ - 64);
        std::uint64_t hi_mask = (std::uint64_t(1) << spill) - 1;
        state[word + 1] = (state[word + 1] & ~hi_mask) |
                          (std::uint64_t(value) >> (depth_ - spill));
    }
}

int
PerceptronFunction::dotAt(const std::uint64_t *, const std::int8_t *w,
                          unsigned hist) const
{
    int acc = w[0];
    for (unsigned i = 0; i < depth_; ++i)
        acc += ((hist >> i) & 1u) ? w[1 + i] : -w[1 + i];
    return acc;
}

int
PerceptronFunction::dot(const std::uint64_t *state, unsigned node) const
{
    return dotAt(state, weightsOf(state, node),
                 historyOf(state, node));
}

double
PerceptronFunction::bloomFprBound() const
{
    if (params_.bloomBits == 0)
        return 0.0;
    // Classic Bloom bound for k = 2 hash functions, m filter bits,
    // and at most bloomCap_ live inserts between self-aging resets.
    double fill = 1.0 - std::exp(-2.0 * bloomCap_ /
                                 double(params_.bloomBits));
    return fill * fill;
}

bool
PerceptronFunction::bloomSuppressed(const std::uint64_t *state,
                                    unsigned node) const
{
    if (params_.bloomBits == 0)
        return false;
    const std::uint32_t filt =
        static_cast<std::uint32_t>(state[bloomWord_]);
    const std::uint32_t m = bloomMaskOf_[node];
    return (filt & m) == m;
}

void
PerceptronFunction::bloomInsert(std::uint64_t *state,
                                unsigned node) const
{
    std::uint64_t word = state[bloomWord_];
    std::uint64_t count = word >> 32;
    if (count >= bloomCap_) {
        // Self-aging: a full generation of inserts clears the filter,
        // so a once-dead reader can be predicted again.
        word = 0;
        count = 0;
    }
    word |= bloomMaskOf_[node];
    state[bloomWord_] =
        (word & 0xffffffffull) | ((count + 1) << 32);
}

SharingBitmap
PerceptronFunction::predict(const std::uint64_t *state) const
{
    SharingBitmap pred;
    const int theta = static_cast<int>(params_.theta);
    for (unsigned n = 0; n < nNodes_; ++n) {
        if (dot(state, n) >= theta && !bloomSuppressed(state, n))
            pred.set(n);
    }
    return pred;
}

void
PerceptronFunction::update(std::uint64_t *state,
                           SharingBitmap feedback) const
{
    const int theta = static_cast<int>(params_.theta);
    const unsigned hist_mask = (1u << depth_) - 1;
    for (unsigned n = 0; n < nNodes_; ++n) {
        const bool read = feedback.test(n);
        const unsigned hist = historyOf(state, n);
        std::int8_t *w = weightsOf(state, n);
        const int acc = dotAt(state, w, hist);
        // The trainer sees the raw perceptron decision; the Bloom
        // filter only gates emitted predictions.
        const bool predicted = acc >= theta;

        if (params_.bloomBits > 0 && predicted && !read)
            bloomInsert(state, n); // a would-be false positive: dead

        // Train on a mispredict or a low-confidence hit, clamped to
        // the architected signed range.
        if (predicted != read || (acc <= theta && acc >= -theta)) {
            const int t = read ? 1 : -1;
            auto clamped = [&](int v) {
                return static_cast<std::int8_t>(
                    v > weightMax_   ? weightMax_
                    : v < weightMin_ ? weightMin_
                                     : v);
            };
            w[0] = clamped(w[0] + t);
            for (unsigned i = 0; i < depth_; ++i) {
                const int dir = ((hist >> i) & 1u) ? t : -t;
                w[1 + i] = clamped(w[1 + i] + dir);
            }
        }
        setHistory(state, n, ((hist << 1) | (read ? 1u : 0u)) &
                                 hist_mask);
    }
}

std::unique_ptr<PredictionFunction>
makeFunction(FunctionKind kind, unsigned depth, unsigned n_nodes,
             const PerceptronParams &perc)
{
    switch (kind) {
      case FunctionKind::Union:
      case FunctionKind::Inter:
        return std::make_unique<WindowFunction>(kind, depth);
      case FunctionKind::PAs:
        return std::make_unique<PAsFunction>(depth, n_nodes);
      case FunctionKind::OverlapLast:
        return std::make_unique<OverlapLastFunction>();
      case FunctionKind::Perceptron:
        return std::make_unique<PerceptronFunction>(depth, n_nodes,
                                                    perc);
    }
    ccp_panic("bad FunctionKind");
}

} // namespace ccp::predict
