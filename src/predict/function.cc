#include "predict/function.hh"

#include "common/logging.hh"

namespace ccp::predict {

const char *
functionKindName(FunctionKind kind)
{
    switch (kind) {
      case FunctionKind::Union:
        return "union";
      case FunctionKind::Inter:
        return "inter";
      case FunctionKind::PAs:
        return "pas";
      case FunctionKind::OverlapLast:
        return "overlap-last";
    }
    ccp_panic("bad FunctionKind");
}

WindowFunction::WindowFunction(FunctionKind kind, unsigned depth)
    : kind_(kind), depth_(depth)
{
    ccp_assert(kind == FunctionKind::Union || kind == FunctionKind::Inter,
               "WindowFunction is union or inter only");
    ccp_assert(depth >= 1 && depth <= 32, "bad window depth ", depth);
}

std::uint64_t
WindowFunction::entryBits(unsigned n_nodes) const
{
    // The paper accounts one sharing bitmap per history slot.
    return std::uint64_t(depth_) * n_nodes;
}

SharingBitmap
WindowFunction::predict(const std::uint64_t *state) const
{
    unsigned count = static_cast<unsigned>(state[0] & 0xffffffffu);
    if (count == 0)
        return SharingBitmap();

    std::uint64_t acc = state[1];
    if (kind_ == FunctionKind::Union) {
        for (unsigned i = 1; i < count; ++i)
            acc |= state[1 + i];
    } else {
        for (unsigned i = 1; i < count; ++i)
            acc &= state[1 + i];
    }
    return SharingBitmap(acc);
}

void
WindowFunction::update(std::uint64_t *state, SharingBitmap feedback) const
{
    unsigned count = static_cast<unsigned>(state[0] & 0xffffffffu);
    unsigned pos = static_cast<unsigned>(state[0] >> 32);

    state[1 + pos] = feedback.raw();
    pos = (pos + 1) % depth_;
    if (count < depth_)
        ++count;
    state[0] = (std::uint64_t(pos) << 32) | count;
}

PAsFunction::PAsFunction(unsigned depth, unsigned n_nodes)
    : depth_(depth), nNodes_(n_nodes)
{
    ccp_assert(depth >= 1 && depth <= 8, "bad PAs depth ", depth);
    ccp_assert(n_nodes >= 1 && n_nodes <= maxNodes, "bad node count");
    historyWords_ = (std::size_t(nNodes_) * depth_ + 63) / 64;
    std::size_t counter_bits = std::size_t(nNodes_) * (1u << depth_) * 2;
    entryWords_ = historyWords_ + (counter_bits + 63) / 64;
}

std::uint64_t
PAsFunction::entryBits(unsigned n_nodes) const
{
    // Per node: a depth-bit history register plus 2^depth 2-bit
    // counters (the paper counts both).
    return std::uint64_t(n_nodes) * (depth_ + 2ull * (1u << depth_));
}

unsigned
PAsFunction::historyOf(const std::uint64_t *state, unsigned node) const
{
    std::size_t bit = std::size_t(node) * depth_;
    std::size_t word = bit / 64, off = bit % 64;
    std::uint64_t v = state[word] >> off;
    if (off + depth_ > 64)
        v |= state[word + 1] << (64 - off);
    return static_cast<unsigned>(v & ((1u << depth_) - 1));
}

void
PAsFunction::setHistory(std::uint64_t *state, unsigned node,
                        unsigned value) const
{
    std::size_t bit = std::size_t(node) * depth_;
    std::size_t word = bit / 64, off = bit % 64;
    std::uint64_t mask = std::uint64_t((1u << depth_) - 1);

    state[word] = (state[word] & ~(mask << off)) |
                  (std::uint64_t(value) << off);
    if (off + depth_ > 64) {
        unsigned spill = static_cast<unsigned>(off + depth_ - 64);
        std::uint64_t hi_mask = (std::uint64_t(1) << spill) - 1;
        state[word + 1] = (state[word + 1] & ~hi_mask) |
                          (std::uint64_t(value) >> (depth_ - spill));
    }
}

unsigned
PAsFunction::counterOf(const std::uint64_t *state, unsigned node,
                       unsigned pattern) const
{
    std::size_t bit = (std::size_t(node) * (1u << depth_) + pattern) * 2;
    std::size_t word = historyWords_ + bit / 64, off = bit % 64;
    return static_cast<unsigned>((state[word] >> off) & 3);
}

void
PAsFunction::setCounter(std::uint64_t *state, unsigned node,
                        unsigned pattern, unsigned value) const
{
    std::size_t bit = (std::size_t(node) * (1u << depth_) + pattern) * 2;
    std::size_t word = historyWords_ + bit / 64, off = bit % 64;
    state[word] = (state[word] & ~(std::uint64_t(3) << off)) |
                  (std::uint64_t(value & 3) << off);
}

SharingBitmap
PAsFunction::predict(const std::uint64_t *state) const
{
    SharingBitmap pred;
    for (unsigned n = 0; n < nNodes_; ++n) {
        unsigned hist = historyOf(state, n);
        if (counterOf(state, n, hist) >= 2)
            pred.set(n);
    }
    return pred;
}

void
PAsFunction::update(std::uint64_t *state, SharingBitmap feedback) const
{
    for (unsigned n = 0; n < nNodes_; ++n) {
        bool read = feedback.test(n);
        unsigned hist = historyOf(state, n);
        unsigned ctr = counterOf(state, n, hist);
        if (read && ctr < 3)
            ++ctr;
        else if (!read && ctr > 0)
            --ctr;
        setCounter(state, n, hist, ctr);
        unsigned mask = (1u << depth_) - 1;
        setHistory(state, n, ((hist << 1) | (read ? 1u : 0u)) & mask);
    }
}

std::uint64_t
OverlapLastFunction::entryBits(unsigned n_nodes) const
{
    return 2ull * n_nodes; // two stored bitmaps
}

SharingBitmap
OverlapLastFunction::predict(const std::uint64_t *state) const
{
    unsigned count = static_cast<unsigned>(state[0]);
    if (count < 2)
        return SharingBitmap();
    SharingBitmap last(state[1]), prev(state[2]);
    return last.intersects(prev) ? last : SharingBitmap();
}

void
OverlapLastFunction::update(std::uint64_t *state,
                            SharingBitmap feedback) const
{
    state[2] = state[1];
    state[1] = feedback.raw();
    if (state[0] < 2)
        ++state[0];
}

std::unique_ptr<PredictionFunction>
makeFunction(FunctionKind kind, unsigned depth, unsigned n_nodes)
{
    switch (kind) {
      case FunctionKind::Union:
      case FunctionKind::Inter:
        return std::make_unique<WindowFunction>(kind, depth);
      case FunctionKind::PAs:
        return std::make_unique<PAsFunction>(depth, n_nodes);
      case FunctionKind::OverlapLast:
        return std::make_unique<OverlapLastFunction>();
    }
    ccp_panic("bad FunctionKind");
}

} // namespace ccp::predict
