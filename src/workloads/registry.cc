#include "workloads/registry.hh"

#include "common/logging.hh"
#include "workloads/kernels.hh"

namespace ccp::workloads {

const std::vector<std::string> &
workloadNames()
{
    static const std::vector<std::string> names = {
        "barnes", "em3d", "gauss", "mp3d", "ocean", "unstruct", "water",
    };
    return names;
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name, const WorkloadParams &params)
{
    if (name == "barnes")
        return makeBarnes(params);
    if (name == "em3d")
        return makeEm3d(params);
    if (name == "gauss")
        return makeGauss(params);
    if (name == "mp3d")
        return makeMp3d(params);
    if (name == "ocean")
        return makeOcean(params);
    if (name == "unstruct")
        return makeUnstruct(params);
    if (name == "water")
        return makeWater(params);
    ccp_fatal("unknown workload '", name, "'");
}

trace::SharingTrace
generateTrace(const std::string &name, const WorkloadParams &params,
              const mem::MachineConfig &config)
{
    ccp_assert(config.nNodes == params.nNodes,
               "machine/workload node-count mismatch");
    sim::Machine machine(config, name, params.seed ^ 0xfeedbeef);
    auto workload = makeWorkload(name, params);
    workload->run(machine);
    return machine.finish();
}

std::vector<trace::SharingTrace>
generateSuite(const WorkloadParams &params,
              const mem::MachineConfig &config)
{
    std::vector<trace::SharingTrace> traces;
    traces.reserve(workloadNames().size());
    for (const auto &name : workloadNames())
        traces.push_back(generateTrace(name, params, config));
    return traces;
}

} // namespace ccp::workloads
