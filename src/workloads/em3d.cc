/**
 * @file
 * em3d: electromagnetic wave propagation on an irregular bipartite
 * graph (9600 graph nodes, degree 5, 15% remote edges).
 *
 * Sharing-pattern model: E-node values are recomputed each iteration
 * from H-neighbour values and vice versa (pure overwrite, as in the
 * original kernel where the new value is a linear combination of the
 * neighbours).  Remote edges are spatially clustered: a fraction of
 * value blocks is "exported" to exactly one consumer peer — static
 * producer-consumer sharing with one reader.  A second fraction of
 * the graph lies in load-rebalancing zones whose writer alternates
 * between two adjacent owners; those versions usually die unread,
 * providing the zero-reader events that give em3d its very low
 * prevalence (paper: 3.19%).
 */

#include "workloads/kernels.hh"

#include <vector>

namespace ccp::workloads {

namespace {

/** E- and H-plane sizes: 2 x 4800 = 9600 graph nodes (Table 3). */
constexpr unsigned planeSize = 4800;
/** Edges per graph node (Table 3: degree 5). */
constexpr unsigned degree = 5;
/** Fraction of value blocks consumed by a remote peer. */
constexpr double exportFraction = 0.14;
/** Fraction of value blocks in writer-alternating rebalance zones
 *  (disjoint from the exported blocks; their versions die unread —
 *  the co-writer produced the data redundantly during rebalancing). */
constexpr double shiftFraction = 0.25;
/** Iterations (before scaling). */
constexpr unsigned iterations = 55;

/** Per-plane connectivity and sharing roles. */
struct Plane
{
    Addr values = 0;                    ///< one block per graph node
    std::vector<unsigned> consumerOf;   ///< consumer node or ~0u
    std::vector<bool> shifted;          ///< in a rebalance zone
    std::vector<std::vector<unsigned>> edges; ///< neighbour indices
};

class Em3dKernel : public Workload
{
  public:
    explicit Em3dKernel(const WorkloadParams &params) : Workload(params)
    {
    }

    std::string name() const override { return "em3d"; }

  protected:
    void generate() override;

  private:
    NodeId
    ownerOf(unsigned i) const
    {
        return static_cast<NodeId>(
            (std::uint64_t(i) * nNodes()) / planeSize);
    }

    NodeId
    writerOf(const Plane &plane, unsigned i, unsigned iter) const
    {
        NodeId o = ownerOf(i);
        if (plane.shifted[i] && (iter & 1))
            return (o + 1) % nNodes();
        return o;
    }

    Addr
    valueAddr(const Plane &plane, unsigned i) const
    {
        return plane.values + Addr(i) * blockBytes;
    }

    void buildRoles(Plane &plane, Rng &rng);
    void buildEdges(Plane &plane, const Plane &opposite, Rng &rng);
    void sweep(const Plane &from, const Plane &to, unsigned iter,
               Pc site);

    Plane e_, h_;
};

void
Em3dKernel::buildRoles(Plane &plane, Rng &rng)
{
    plane.values = alloc(Addr(planeSize) * blockBytes);
    plane.consumerOf.assign(planeSize, ~0u);
    plane.shifted.assign(planeSize, false);
    plane.edges.assign(planeSize, {});

    for (unsigned i = 0; i < planeSize; ++i) {
        NodeId o = ownerOf(i);
        if (rng.chance(shiftFraction)) {
            plane.shifted[i] = true;
        } else if (rng.chance(exportFraction / (1 - shiftFraction))) {
            // Remote consumer: one of the owner's two fixed peers
            // (spatially clustered remote edges).  Exported and
            // shifted roles are disjoint.
            NodeId peer = rng.chance(0.5) ? (o + 1) % nNodes()
                                          : (o + 3) % nNodes();
            plane.consumerOf[i] = peer;
        }
    }
}

void
Em3dKernel::buildEdges(Plane &plane, const Plane &opposite, Rng &rng)
{
    // Local neighbourhood edges around the mirror position in the
    // opposite plane (these stay intra-node).  Rebalance-zone blocks
    // of the opposite plane are not edge targets: their values are
    // produced redundantly by both zone writers.
    const unsigned per_node = planeSize / nNodes();
    for (unsigned i = 0; i < planeSize; ++i) {
        unsigned base = (i / per_node) * per_node;
        for (unsigned d = 0; d < degree; ++d) {
            unsigned j = i;
            for (int tries = 0; tries < 16; ++tries) {
                j = base +
                    static_cast<unsigned>(rng.below(per_node));
                if (!opposite.shifted[j])
                    break;
            }
            plane.edges[i].push_back(j);
        }
    }
}

void
Em3dKernel::sweep(const Plane &from, const Plane &to, unsigned iter,
                  Pc site)
{
    // Each graph node of `to` is recomputed by its writer: read the
    // `from`-plane neighbours (plus any blocks exported to this
    // writer), then overwrite the value.
    for (unsigned i = 0; i < planeSize; ++i) {
        NodeId w = writerOf(to, i, iter);
        for (unsigned j : to.edges[i])
            read(w, valueAddr(from, j));
        write(w, valueAddr(to, i), site);
    }

    // Consumer side of the clustered remote edges: every exported
    // block of the `from` plane is read by its designated consumer
    // peer in the same sweep that consumes that plane locally.
    for (unsigned i = 0; i < planeSize; ++i) {
        unsigned cons = from.consumerOf[i];
        if (cons != ~0u) {
            read(cons, valueAddr(from, i));
            maybeStrayRead(valueAddr(from, i), cons, 0.10);
        }
    }
}

void
Em3dKernel::generate()
{
    Rng build_rng = rng_.fork(1);
    buildRoles(e_, build_rng);
    buildRoles(h_, build_rng);
    buildEdges(e_, h_, build_rng);
    buildEdges(h_, e_, build_rng);

    const unsigned T = scaled(iterations);
    const Pc pc_init = pcOf("em3d.init");
    const Pc pc_e = pcOf("em3d.compute_e");
    const Pc pc_h = pcOf("em3d.compute_h");

    // First-touch initialization by the owners.
    for (unsigned i = 0; i < planeSize; ++i) {
        write(ownerOf(i), valueAddr(e_, i), pc_init);
        write(ownerOf(i), valueAddr(h_, i), pc_init);
    }
    barrier();

    for (unsigned t = 0; t < T; ++t) {
        sweep(h_, e_, t, pc_e);
        barrier();
        sweep(e_, h_, t, pc_h);
        barrier();
    }
}

} // namespace

std::unique_ptr<Workload>
makeEm3d(const WorkloadParams &params)
{
    return std::make_unique<Em3dKernel>(params);
}

} // namespace ccp::workloads
