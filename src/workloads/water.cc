/**
 * @file
 * water: molecular dynamics of 512 water molecules (SPLASH).
 *
 * Sharing-pattern model: each step, owners publish their molecules'
 * atom positions (two blocks per molecule, read by the ~half-window
 * of owners that compute pairwise interactions — a medium-width
 * broadcast), and the pairwise force phase accumulates into the
 * partner molecule's force blocks under locks — the classic migratory
 * read-modify-write chain where every version has exactly one future
 * reader.  The mixture lands in the band of the paper's 12.13%
 * prevalence.
 */

#include "workloads/kernels.hh"

namespace ccp::workloads {

namespace {

/** Molecule count (Table 3: 512 molecules). */
constexpr unsigned nMolecules = 512;
/** Steps (before scaling). */
constexpr unsigned steps = 16;
/** Pairwise interaction half-window (n/2 as in the original). */
constexpr unsigned window = nMolecules / 2;
/** Probability a (source-owner, target) batch has pairs in cutoff. */
constexpr double batchLiveProb = 0.95;
/** Blocks per molecule for positions and forces.  The molecule is
 *  one contiguous record (positions, then forces, then private
 *  integration state) — the original's ~360-byte VAR struct. */
constexpr unsigned posBlocks = 2;
constexpr unsigned forceBlocks = 2;
constexpr unsigned privBlocks = 2;
constexpr unsigned moleculeBlocks = posBlocks + forceBlocks + privBlocks;

class WaterKernel : public Workload
{
  public:
    explicit WaterKernel(const WorkloadParams &params) : Workload(params)
    {
    }

    std::string name() const override { return "water"; }

  protected:
    void generate() override;

  private:
    NodeId
    ownerOf(unsigned m) const
    {
        return static_cast<NodeId>(
            (std::uint64_t(m) * nNodes()) / nMolecules);
    }

    Addr
    posAddr(unsigned m, unsigned b) const
    {
        return var_ + (Addr(m) * moleculeBlocks + b) * blockBytes;
    }

    Addr
    forceAddr(unsigned m, unsigned b) const
    {
        return var_ +
               (Addr(m) * moleculeBlocks + posBlocks + b) * blockBytes;
    }

    Addr
    privAddr(unsigned m, unsigned b) const
    {
        return var_ + (Addr(m) * moleculeBlocks + posBlocks +
                       forceBlocks + b) *
                          blockBytes;
    }

    Addr var_ = 0;
};

void
WaterKernel::generate()
{
    const unsigned T = scaled(steps);
    const Pc pc_init = pcOf("water.init");
    const Pc pc_pos = pcOf("water.predict_positions");
    const Pc pc_acc = pcOf("water.accumulate_force");
    const Pc pc_zero = pcOf("water.zero_force");
    const Pc pc_priv = pcOf("water.correct_private");

    var_ = alloc(Addr(nMolecules) * moleculeBlocks * blockBytes);

    Rng pair_rng = rng_.fork(3);

    for (unsigned m = 0; m < nMolecules; ++m) {
        NodeId o = ownerOf(m);
        for (unsigned b = 0; b < posBlocks; ++b)
            write(o, posAddr(m, b), pc_init);
        for (unsigned b = 0; b < forceBlocks; ++b)
            write(o, forceAddr(m, b), pc_init);
        for (unsigned b = 0; b < privBlocks; ++b)
            write(o, privAddr(m, b), pc_init);
    }
    barrier();

    for (unsigned t = 0; t < T; ++t) {
        // Predict phase: each owner integrates and republishes its
        // molecules' positions.
        for (unsigned m = 0; m < nMolecules; ++m) {
            NodeId o = ownerOf(m);
            for (unsigned b = 0; b < privBlocks; ++b)
                rmw(o, privAddr(m, b), pc_priv);
            for (unsigned b = 0; b < posBlocks; ++b)
                rmw(o, posAddr(m, b), pc_pos);
        }
        barrier();

        // Pairwise force phase.  Owner p computes interactions of its
        // own molecules i against every j in the half-window; like
        // the original it accumulates into force(j) under the
        // molecule lock, but all of p's contributions to one j are
        // batched into a single locked update (one read of pos(j),
        // one RMW per force block).  Each force block therefore
        // migrates through the fixed set of ~half the owners each
        // step.
        for (unsigned j = 0; j < nMolecules; ++j) {
            NodeId owner_j = ownerOf(j);
            NodeId prev = ~0u;
            for (unsigned d = 1; d <= window; ++d) {
                unsigned i = (j + nMolecules - d) % nMolecules;
                NodeId p = ownerOf(i);
                if (p == prev || p == owner_j)
                    continue;
                prev = p;
                if (!pair_rng.chance(batchLiveProb))
                    continue;
                for (unsigned b = 0; b < posBlocks; ++b) {
                    read(p, posAddr(j, b));
                    maybeStrayRead(posAddr(j, b), owner_j, 0.04);
                }
                for (unsigned b = 0; b < forceBlocks; ++b)
                    rmw(p, forceAddr(j, b), pc_acc);
            }
        }
        barrier();

        // Update phase: owners consume the accumulated forces and
        // reset them for the next step.
        for (unsigned m = 0; m < nMolecules; ++m) {
            NodeId o = ownerOf(m);
            for (unsigned b = 0; b < forceBlocks; ++b) {
                read(o, forceAddr(m, b));
                write(o, forceAddr(m, b), pc_zero);
            }
            for (unsigned b = 0; b < privBlocks; ++b)
                rmw(o, privAddr(m, b), pc_priv);
        }
        barrier();
    }
}

} // namespace

std::unique_ptr<Workload>
makeWater(const WorkloadParams &params)
{
    return std::make_unique<WaterKernel>(params);
}

} // namespace ccp::workloads
