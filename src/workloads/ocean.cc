/**
 * @file
 * ocean: 258x258 grid ocean-current simulation (SPLASH).
 *
 * Sharing-pattern model (see DESIGN.md): the solver sweeps a family of
 * 258x258 grids with a 5-point stencil.  Rows are distributed
 * block-cyclically; each sweep a node first reads the halo rows owned
 * by its neighbours (producer-consumer, 1 remote reader per boundary
 * block) and then updates its own rows.  The aggregate grid family
 * slightly exceeds the per-node L2 capacity, so interior blocks are
 * written through capacity write-misses whose previous versions died
 * unread — the source of ocean's very low prevalence (paper: 2.14%).
 * A per-iteration convergence reduction adds the small wide-sharing
 * component (one flag block read by all nodes).
 */

#include "workloads/kernels.hh"

#include <vector>

namespace ccp::workloads {

namespace {

/** Grid edge length including the fixed border. */
constexpr unsigned gridN = 258;
/** Number of grid arrays swept per iteration (multigrid family). */
constexpr unsigned nArrays = 17;
/** Rows per ownership stripe of the block-cyclic distribution. */
constexpr unsigned rowCycle = 6;
/** Solver iterations (before scaling). */
constexpr unsigned iterations = 6;

class OceanKernel : public Workload
{
  public:
    explicit OceanKernel(const WorkloadParams &params)
        : Workload(params)
    {
    }

    std::string name() const override { return "ocean"; }

  protected:
    void generate() override;

  private:
    NodeId
    ownerOfRow(unsigned row) const
    {
        // Row 0 and row gridN-1 are border rows; fold them into the
        // adjacent stripes.
        unsigned r = row == 0 ? 1 : row;
        return ((r - 1) / rowCycle) % nNodes();
    }

    Addr
    cell(unsigned array, unsigned row, unsigned col) const
    {
        return grids_[array] +
               (Addr(row) * gridN + col) * sizeof(double);
    }

    /** Emit @p op once per cache block of row @p row of @p array. */
    template <typename EmitFn>
    void
    forEachRowBlock(unsigned array, unsigned row, EmitFn emit)
    {
        Addr first = blockOf(cell(array, row, 0));
        Addr last = blockOf(cell(array, row, gridN - 1));
        for (Addr b = first; b <= last; ++b)
            emit(blockBase(b));
    }

    std::vector<Addr> grids_;
};

void
OceanKernel::generate()
{
    const unsigned T = scaled(iterations);
    const Pc pc_init = pcOf("ocean.init");
    const Pc pc_partial = pcOf("ocean.residual");
    const Pc pc_flag = pcOf("ocean.converged");

    grids_.clear();
    for (unsigned a = 0; a < nArrays; ++a)
        grids_.push_back(alloc(Addr(gridN) * gridN * sizeof(double)));

    // Reduction scratch: one partial block per node plus a flag block.
    Addr partials = alloc(Addr(nNodes()) * blockBytes);
    Addr flag = alloc(blockBytes);

    // Initialization: every owner writes its rows (first touch pins
    // the home node to the owner, as RSIM's placement did).
    for (unsigned a = 0; a < nArrays; ++a) {
        for (unsigned r = 0; r < gridN; ++r) {
            NodeId o = ownerOfRow(r == gridN - 1 ? gridN - 2 : r);
            forEachRowBlock(a, r,
                            [&](Addr addr) { write(o, addr, pc_init); });
        }
    }
    barrier();

    for (unsigned t = 0; t < T; ++t) {
        for (unsigned a = 0; a < nArrays; ++a) {
            const Pc pc_sweep =
                pcOf("ocean.sweep" + std::to_string(a % 8) + "." +
                     std::to_string(t % 2));

            // Halo phase: read the neighbour-owned rows adjacent to
            // each ownership stripe (previous iteration's values).
            for (unsigned r = 1; r + 1 < gridN; ++r) {
                NodeId o = ownerOfRow(r);
                for (unsigned rr : {r - 1, r + 1}) {
                    if (ownerOfRow(rr) == o)
                        continue;
                    forEachRowBlock(a, rr, [&](Addr addr) {
                        read(o, addr);
                        maybeStrayRead(addr, o, 0.10);
                    });
                }
            }
            barrier();

            // Compute phase: 5-point update of every owned cell;
            // block-granularity emission (remaining accesses to the
            // same block are guaranteed L1 hits).
            for (unsigned r = 1; r + 1 < gridN; ++r) {
                NodeId o = ownerOfRow(r);
                forEachRowBlock(a, r, [&](Addr addr) {
                    read(o, addr);
                    write(o, addr, pc_sweep);
                });
            }
            barrier();
        }

        // Convergence reduction: partial residuals -> node 0 ->
        // broadcast flag.
        for (NodeId n = 0; n < nNodes(); ++n)
            rmw(n, partials + Addr(n) * blockBytes, pc_partial);
        barrier();
        for (NodeId n = 0; n < nNodes(); ++n)
            read(0, partials + Addr(n) * blockBytes);
        write(0, flag, pc_flag);
        barrier();
        for (NodeId n = 1; n < nNodes(); ++n)
            read(n, flag);
        barrier();
    }
}

} // namespace

std::unique_ptr<Workload>
makeOcean(const WorkloadParams &params)
{
    return std::make_unique<OceanKernel>(params);
}

} // namespace ccp::workloads
