/**
 * @file
 * Factories for the seven benchmark kernels (Table 3 of the paper).
 * Internal to the workloads module; users go through registry.hh.
 */

#ifndef CCP_WORKLOADS_KERNELS_HH
#define CCP_WORKLOADS_KERNELS_HH

#include <memory>

#include "workloads/workload.hh"

namespace ccp::workloads {

std::unique_ptr<Workload> makeBarnes(const WorkloadParams &params);
std::unique_ptr<Workload> makeEm3d(const WorkloadParams &params);
std::unique_ptr<Workload> makeGauss(const WorkloadParams &params);
std::unique_ptr<Workload> makeMp3d(const WorkloadParams &params);
std::unique_ptr<Workload> makeOcean(const WorkloadParams &params);
std::unique_ptr<Workload> makeUnstruct(const WorkloadParams &params);
std::unique_ptr<Workload> makeWater(const WorkloadParams &params);

} // namespace ccp::workloads

#endif // CCP_WORKLOADS_KERNELS_HH
