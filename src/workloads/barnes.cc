/**
 * @file
 * barnes: Barnes-Hut hierarchical N-body simulation, 8K particles
 * (SPLASH).
 *
 * Sharing-pattern model: bodies are Morton-sorted and partitioned
 * contiguously.  Each step: (A) cooperative octree build — counters
 * of shared ancestor cells are read-modify-written by every inserting
 * owner, a migratory hot-spot whose intensity decays with depth;
 * (B) bottom-up center-of-mass computation — each cell is written by
 * its owner after reading its children; (C) force computation — the
 * top tree levels are read by *all* nodes (wide sharing), deeper
 * cells and neighbour body positions by the few owners nearby; and
 * (D) position updates by the owners.  The wide top-of-tree reads
 * push barnes to the suite's highest prevalence (paper: 15.10%).
 */

#include "workloads/kernels.hh"

#include <algorithm>
#include <array>
#include <vector>

namespace ccp::workloads {

namespace {

/** Body count (Table 3: 8K particles). */
constexpr unsigned nBodies = 8192;
/** Steps (before scaling). */
constexpr unsigned steps = 10;
/** Stable far-interaction partner nodes per body (slowly drifting). */
constexpr unsigned farPartners = 3;
/** Per-step probability a body re-rolls its far partners. */
constexpr double partnerDrift = 0.05;
/** Tree fanout per level (an octree). */
constexpr unsigned fanout = 8;
/** Tree depth: levels 0..4 with 1, 8, 64, 512, 4096 cells. */
constexpr unsigned nLevels = 5;
/** Half-width of the neighbour window read during force phase. */
constexpr unsigned bodyWindow = 24;
/** Neighbour body positions sampled per body in the force phase. */
constexpr unsigned bodySamples = 10;
/** Probability of updating each ancestor level during tree build. */
constexpr double insertProb[nLevels] = {0.008, 0.03, 0.12, 0.5, 1.0};

class BarnesKernel : public Workload
{
  public:
    explicit BarnesKernel(const WorkloadParams &params)
        : Workload(params)
    {
    }

    std::string name() const override { return "barnes"; }

  protected:
    void generate() override;

  private:
    NodeId
    ownerOfBody(unsigned b) const
    {
        return static_cast<NodeId>(
            (std::uint64_t(b) * nNodes()) / nBodies);
    }

    unsigned
    cellsAtLevel(unsigned level) const
    {
        unsigned n = 1;
        for (unsigned l = 0; l < level; ++l)
            n *= fanout;
        return n;
    }

    /** The level-`level` ancestor cell index of body @p b. */
    unsigned
    ancestorOf(unsigned b, unsigned level) const
    {
        return b / (nBodies / cellsAtLevel(level));
    }

    Addr
    cellAddr(unsigned level, unsigned idx) const
    {
        return cells_[level] + Addr(idx) * blockBytes;
    }

    Addr
    posAddr(unsigned b) const
    {
        return pos_ + Addr(b) * blockBytes;
    }

    Addr
    accAddr(unsigned b) const
    {
        return acc_ + Addr(b) * blockBytes;
    }

    std::vector<Addr> cells_;
    Addr pos_ = 0;
    Addr acc_ = 0;
};

void
BarnesKernel::generate()
{
    const unsigned T = scaled(steps);
    const Pc pc_init = pcOf("barnes.init");
    const Pc pc_upd = pcOf("barnes.update_body");
    const Pc pc_acc = pcOf("barnes.accumulate");
    std::vector<Pc> pc_insert, pc_com;
    for (unsigned l = 0; l < nLevels; ++l) {
        pc_insert.push_back(pcOf("barnes.insert.L" + std::to_string(l)));
        pc_com.push_back(pcOf("barnes.com.L" + std::to_string(l)));
    }

    cells_.clear();
    for (unsigned l = 0; l < nLevels; ++l)
        cells_.push_back(alloc(Addr(cellsAtLevel(l)) * blockBytes));
    pos_ = alloc(Addr(nBodies) * blockBytes);
    acc_ = alloc(Addr(nBodies) * blockBytes);

    Rng body_rng = rng_.fork(4);

    // Far-interaction partners: each body's position is also read by
    // a small, slowly-drifting set of distant nodes every step (the
    // cross-partition cell openings of the real tree walk).
    std::vector<std::array<NodeId, farPartners>> partners(nBodies);
    auto roll_partners = [&](unsigned b) {
        for (unsigned k = 0; k < farPartners; ++k)
            partners[b][k] = ownerOfBody(
                static_cast<unsigned>(body_rng.below(nBodies)));
    };
    for (unsigned b = 0; b < nBodies; ++b)
        roll_partners(b);

    for (unsigned b = 0; b < nBodies; ++b) {
        NodeId o = ownerOfBody(b);
        write(o, posAddr(b), pc_init);
        write(o, accAddr(b), pc_init);
    }
    for (unsigned l = 0; l < nLevels; ++l)
        for (unsigned c = 0; c < cellsAtLevel(l); ++c)
            write(ownerOfBody(c * (nBodies / cellsAtLevel(l))),
                  cellAddr(l, c), pc_init);
    barrier();

    for (unsigned t = 0; t < T; ++t) {
        // Phase A: tree build.  Every body bumps its leaf cell and,
        // with decaying probability, the shared ancestors.
        for (unsigned b = 0; b < nBodies; ++b) {
            NodeId o = ownerOfBody(b);
            for (unsigned l = nLevels; l-- > 0;) {
                if (!body_rng.chance(insertProb[l]))
                    continue;
                rmw(o, cellAddr(l, ancestorOf(b, l)), pc_insert[l]);
            }
        }
        barrier();

        // Phase B: bottom-up centers of mass.
        for (unsigned l = nLevels - 1; l-- > 0;) {
            for (unsigned c = 0; c < cellsAtLevel(l); ++c) {
                NodeId o =
                    ownerOfBody(c * (nBodies / cellsAtLevel(l)));
                for (unsigned ch = 0; ch < fanout; ++ch)
                    read(o, cellAddr(l + 1, c * fanout + ch));
                write(o, cellAddr(l, c), pc_com[l]);
            }
        }
        barrier();

        // Phase C: force computation.  The top two levels are read
        // by everyone; deeper cells and neighbour bodies only by the
        // owners nearby.  Done per owner over its whole body range.
        for (unsigned b = 0; b < nBodies; ++b) {
            NodeId o = ownerOfBody(b);
            if (b % (nBodies / nNodes()) == 0) {
                // Once per owner: the wide top-of-tree traversal.
                read(o, cellAddr(0, 0));
                for (unsigned c = 0; c < cellsAtLevel(1); ++c)
                    read(o, cellAddr(1, c));
                for (unsigned c = 0; c < cellsAtLevel(2); ++c)
                    read(o, cellAddr(2, c));
            }
            // Nearby level-3 cells and leaves.
            unsigned c3 = ancestorOf(b, 3);
            for (int d = -1; d <= 1; ++d) {
                int c = static_cast<int>(c3) + d;
                if (c >= 0 && c < static_cast<int>(cellsAtLevel(3)))
                    read(o, cellAddr(3, static_cast<unsigned>(c)));
            }
            read(o, cellAddr(4, ancestorOf(b, 4)));
            // Far partners read this body's position (stable sets).
            NodeId own = ownerOfBody(b);
            for (unsigned k = 0; k < farPartners; ++k)
                if (partners[b][k] != own)
                    read(partners[b][k], posAddr(b));
            maybeStrayRead(posAddr(b), own, 0.10);
            if (body_rng.chance(partnerDrift))
                roll_partners(b);
            // Neighbour body positions inside the Morton window.
            for (unsigned s = 0; s < bodySamples; ++s) {
                std::int64_t nb = static_cast<std::int64_t>(b) +
                                  body_rng.range(-std::int64_t(bodyWindow),
                                                 std::int64_t(bodyWindow));
                if (nb < 0 || nb >= static_cast<std::int64_t>(nBodies) ||
                    nb == static_cast<std::int64_t>(b))
                    continue;
                read(o, posAddr(static_cast<unsigned>(nb)));
            }
            rmw(o, accAddr(b), pc_acc);
        }
        barrier();

        // Phase D: position updates.
        for (unsigned b = 0; b < nBodies; ++b) {
            NodeId o = ownerOfBody(b);
            read(o, accAddr(b));
            rmw(o, posAddr(b), pc_upd);
        }
        barrier();
    }
}

} // namespace

std::unique_ptr<Workload>
makeBarnes(const WorkloadParams &params)
{
    return std::make_unique<BarnesKernel>(params);
}

} // namespace ccp::workloads
