#include "workloads/workload.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace ccp::workloads {

namespace {

/** Base of the simulated shared heap. */
constexpr Addr heapBase = 0x1000'0000;
/** Base pc of the synthetic static store sites (word aligned). */
constexpr Pc pcBase = 0x0040'0000;

} // namespace

Workload::Workload(const WorkloadParams &params)
    : params_(params), rng_(params.seed),
      strayRng_(rng_.fork(0x57a7)), nextPc_(pcBase),
      heapTop_(heapBase)
{
    ccp_assert(params_.nNodes >= 2 && params_.nNodes <= maxNodes,
               "workloads need 2..", maxNodes, " nodes");
    ccp_assert(params_.scale > 0.0, "scale must be positive");
}

void
Workload::run(sim::Machine &machine)
{
    ccp_assert(machine.nNodes() == params_.nNodes,
               "machine/workload node-count mismatch");
    machine_ = &machine;
    ops_.assign(params_.nNodes, {});
    generate();
    barrier(); // flush any trailing ops
    machine_ = nullptr;
}

void
Workload::read(NodeId node, Addr addr)
{
    ops_[node].push_back({addr, 0, false});
}

void
Workload::write(NodeId node, Addr addr, Pc site)
{
    ops_[node].push_back({addr, site, true});
}

void
Workload::rmw(NodeId node, Addr addr, Pc site)
{
    ops_[node].push_back({addr, 0, false});
    ops_[node].push_back({addr, site, true});
}

void
Workload::maybeStrayRead(Addr addr, NodeId exclude, double prob)
{
    if (!strayRng_.chance(prob))
        return;
    NodeId node = static_cast<NodeId>(strayRng_.below(params_.nNodes));
    if (node == exclude)
        node = static_cast<NodeId>((node + 1) % params_.nNodes);
    ops_[node].push_back({addr, 0, false});
}

void
Workload::barrier()
{
    ccp_assert(machine_ != nullptr, "barrier outside run()");
    machine_->runPhase(ops_);
}

Pc
Workload::pcOf(const std::string &site)
{
    auto [it, inserted] = sites_.try_emplace(site, nextPc_);
    if (inserted)
        nextPc_ += 4;
    return it->second;
}

Addr
Workload::alloc(std::uint64_t bytes)
{
    // Round the heap top up to a block boundary, then allocate.
    heapTop_ = (heapTop_ + blockBytes - 1) & ~Addr(blockBytes - 1);
    Addr base = heapTop_;
    heapTop_ += bytes;
    return base;
}

Addr
Workload::allocUnaligned(std::uint64_t bytes, unsigned skew_bytes)
{
    Addr base = alloc(bytes + skew_bytes) + skew_bytes;
    return base;
}

unsigned
Workload::scaled(unsigned iterations) const
{
    double v = std::max(1.0, std::round(iterations * params_.scale));
    return static_cast<unsigned>(v);
}

} // namespace ccp::workloads
