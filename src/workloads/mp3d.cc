/**
 * @file
 * mp3d: rarefied-fluid-flow Monte Carlo simulation, 50K molecules
 * (SPLASH).
 *
 * Sharing-pattern model: the molecule records are the textbook
 * migratory data structure.  Space is divided into one slab per
 * processor; each step the current slab owner read-modify-writes the
 * molecule record, and molecules drift between slabs, handing their
 * records (and the half-block they false-share with a neighbouring
 * molecule — mp3d's famously unpadded 32-byte records) to another
 * writer.  Boundary molecules also collide with the neighbouring
 * slab's cell counters.  Almost every version has exactly one future
 * reader (its next writer), giving the paper's 9.02% prevalence.
 */

#include "workloads/kernels.hh"

#include <vector>

namespace ccp::workloads {

namespace {

/** Molecule count (Table 3: 50K molecules). */
constexpr unsigned nMolecules = 50000;
/** Simulation steps (before scaling). */
constexpr unsigned steps = 12;
/** Molecule record size: two records false-share each block. */
constexpr unsigned moleculeBytes = 32;
/** Probability a molecule drifts to an adjacent slab each step. */
constexpr double moveProb = 0.20;
/** Probability the two molecules of a block move jointly (they were
 *  loaded together and fly on similar trajectories). */
constexpr double pairCorrelation = 0.7;
/** Per-step probability a pair's flight direction flips. */
constexpr double directionFlip = 0.05;
/** 1/boundaryMod of molecules sit in the slab-boundary layer and are
 *  probed by the next slab's owner every step (collision pairing); a
 *  subset is probed from both sides. */
constexpr unsigned boundaryMod = 8;
constexpr unsigned boundaryLayers = 3;
/** Collision-cell blocks per slab. */
constexpr unsigned cellsPerSlab = 32;
/** Probability a step includes a collision-cell update. */
constexpr double collideProb = 0.30;
/** Probability of touching the global reservoir statistics. */
constexpr double globalProb = 0.002;

class Mp3dKernel : public Workload
{
  public:
    explicit Mp3dKernel(const WorkloadParams &params) : Workload(params)
    {
    }

    std::string name() const override { return "mp3d"; }

  protected:
    void generate() override;

  private:
    Addr
    moleculeAddr(unsigned m) const
    {
        return molecules_ + Addr(m) * moleculeBytes;
    }

    Addr
    cellAddr(NodeId slab, unsigned cell) const
    {
        return cells_ + (Addr(slab) * cellsPerSlab + cell) * blockBytes;
    }

    Addr molecules_ = 0;
    Addr cells_ = 0;
    Addr reservoir_ = 0;
};

void
Mp3dKernel::generate()
{
    const unsigned T = scaled(steps);
    const Pc pc_init = pcOf("mp3d.init");
    const Pc pc_move = pcOf("mp3d.move");
    const Pc pc_collide = pcOf("mp3d.collide");
    const Pc pc_bcollide = pcOf("mp3d.boundary_collide");
    const Pc pc_stats = pcOf("mp3d.reservoir");

    molecules_ = alloc(Addr(nMolecules) * moleculeBytes);
    cells_ = alloc(Addr(nNodes()) * cellsPerSlab * blockBytes);
    reservoir_ = alloc(blockBytes);

    Rng step_rng = rng_.fork(2);

    // Initial slab assignment: uniform, so records of the same block
    // usually start (and drift) under nearby owners.
    std::vector<NodeId> slab(nMolecules);
    std::vector<int> dir(nMolecules / 2);
    for (auto &d : dir)
        d = step_rng.chance(0.5) ? 1 : -1;
    for (unsigned m = 0; m < nMolecules; ++m) {
        slab[m] = static_cast<NodeId>(
            (std::uint64_t(m) * nNodes()) / nMolecules);
        write(slab[m], moleculeAddr(m), pc_init);
    }
    for (NodeId s = 0; s < nNodes(); ++s)
        for (unsigned c = 0; c < cellsPerSlab; ++c)
            write(s, cellAddr(s, c), pc_init);
    barrier();

    for (unsigned t = 0; t < T; ++t) {
        for (unsigned m = 0; m < nMolecules; ++m) {
            NodeId o = slab[m];
            rmw(o, moleculeAddr(m), pc_move);

            // Boundary-layer molecules are probed by the adjacent
            // slab owner(s) for collision pairing: stable remote
            // readers, the predictable component of mp3d's sharing.
            if (m % boundaryMod < boundaryLayers) {
                read((o + 1) % nNodes(), moleculeAddr(m));
                if (m % boundaryMod == 0)
                    read((o + nNodes() - 1) % nNodes(),
                         moleculeAddr(m));
                maybeStrayRead(moleculeAddr(m), o, 0.08);
            }

            if (step_rng.chance(collideProb)) {
                if (m % boundaryMod < boundaryLayers) {
                    // Collide against a cell of the neighbouring slab:
                    // reads and updates remote counters.
                    NodeId nb = (o + 1) % nNodes();
                    unsigned c = static_cast<unsigned>(
                        step_rng.below(cellsPerSlab / 4));
                    rmw(o, cellAddr(nb, c), pc_bcollide);
                } else {
                    unsigned c = static_cast<unsigned>(
                        step_rng.below(cellsPerSlab));
                    rmw(o, cellAddr(o, c), pc_collide);
                }
            }

            if (step_rng.chance(globalProb))
                rmw(o, reservoir_, pc_stats);
        }

        // Movement pass: straight-line flight through the slab-
        // partitioned space.  Directions persist across steps, and
        // record-sharing pairs usually move together.
        for (unsigned pair = 0; pair < nMolecules / 2; ++pair) {
            if (step_rng.chance(directionFlip))
                dir[pair] = -dir[pair];
            unsigned m0 = 2 * pair, m1 = 2 * pair + 1;
            auto advance = [&](unsigned m) {
                slab[m] = static_cast<NodeId>(
                    (slab[m] + nNodes() + dir[pair]) % nNodes());
            };
            if (step_rng.chance(pairCorrelation)) {
                if (step_rng.chance(moveProb)) {
                    advance(m0);
                    advance(m1);
                }
            } else {
                if (step_rng.chance(moveProb))
                    advance(m0);
                if (step_rng.chance(moveProb))
                    advance(m1);
            }
        }
        barrier();
    }
}

} // namespace

std::unique_ptr<Workload>
makeMp3d(const WorkloadParams &params)
{
    return std::make_unique<Mp3dKernel>(params);
}

} // namespace ccp::workloads
