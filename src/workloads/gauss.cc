/**
 * @file
 * gauss: red-black Gauss-Seidel relaxation on a 512x512 array.
 *
 * Sharing-pattern model: the array is partitioned in column stripes
 * (32 columns per node); each half-iteration a node reads the halo
 * columns of its two neighbours and updates its own stripe.  The
 * stripe-edge blocks are static producer-consumer data with exactly
 * one stable remote reader; interior blocks stay exclusive and
 * silent.  A per-iteration sampled residual reduction (node 0 reads a
 * few percent of all blocks) adds a second, noisier reader class.
 * The whole 2MB array is touched (paper Table 5: 32946 blocks — the
 * exact footprint of a 512x512 double array), and prevalence lands in
 * the paper's 9.92% band with highly predictable sharing, as expected
 * for static producer-consumer patterns.  The layout is tiled per
 * stripe (see cell()) to avoid power-of-two-stride set conflicts.
 */

#include "workloads/kernels.hh"

namespace ccp::workloads {

namespace {

/** Grid edge length (Table 3: 512x512 array). */
constexpr unsigned gridN = 512;
/** Full red+black iterations (before scaling). */
constexpr unsigned iterations = 4;
/** Fraction of blocks sampled by the residual reduction. */
constexpr double residualSample = 0.03;
/**
 * Adaptive relaxation-weight table: rebuilt cooperatively once per
 * iteration and read machine-wide before the next sweep — the
 * wide-sharing component of gauss (paper Table 6: 9.92% prevalence,
 * 1.6 readers per write, versus the 1.0 of a pure halo exchange).
 */
constexpr unsigned coeffBlocks = 1800;

class GaussKernel : public Workload
{
  public:
    explicit GaussKernel(const WorkloadParams &params) : Workload(params)
    {
    }

    std::string name() const override { return "gauss"; }

  protected:
    void generate() override;

  private:
    unsigned
    colsPerNode() const
    {
        return gridN / nNodes();
    }

    NodeId
    ownerOfCol(unsigned col) const
    {
        return static_cast<NodeId>(col / colsPerNode());
    }

    /**
     * Tiled (stripe-major) layout: each node's column stripe is a
     * contiguous region, the standard remedy for the power-of-two
     * stride conflict pathology of column-partitioned 2^k grids —
     * every stripe then walks the L2 sets uniformly.
     */
    Addr
    cell(unsigned row, unsigned col) const
    {
        unsigned cpn = colsPerNode();
        Addr stripe = col / cpn;
        Addr within = col % cpn;
        return grid_ +
               ((stripe * gridN + row) * cpn + within) *
                   sizeof(double);
    }

    Addr grid_ = 0;
    Addr coeffs_ = 0;
};

void
GaussKernel::generate()
{
    const unsigned T = scaled(iterations);
    const Pc pc_init = pcOf("gauss.init");
    const Pc pc_red = pcOf("gauss.relax_red");
    const Pc pc_black = pcOf("gauss.relax_black");
    const Pc pc_partial = pcOf("gauss.residual");
    const Pc pc_flag = pcOf("gauss.converged");

    const Pc pc_coeff = pcOf("gauss.relax_weights");

    grid_ = alloc(Addr(gridN) * gridN * sizeof(double));
    coeffs_ = alloc(Addr(coeffBlocks) * blockBytes);
    Addr partials = alloc(Addr(nNodes()) * blockBytes);
    Addr flag = alloc(blockBytes);

    const unsigned cpn = colsPerNode();
    const unsigned blocks_per_stripe_row = cpn / 8; // 8 doubles/block

    Rng sample_rng = rng_.fork(7);

    // First-touch init: each owner writes its stripe, one op per
    // block (the remaining doubles of a block are guaranteed hits).
    for (unsigned r = 0; r < gridN; ++r)
        for (unsigned c = 0; c < gridN; c += 8)
            write(ownerOfCol(c), cell(r, c), pc_init);
    for (unsigned b = 0; b < coeffBlocks; ++b)
        write(static_cast<NodeId>(b % nNodes()),
              coeffs_ + Addr(b) * blockBytes, pc_coeff);
    barrier();

    for (unsigned t = 0; t < 2 * T; ++t) {
        const bool red = (t % 2) == 0;
        const Pc pc_relax = red ? pc_red : pc_black;

        // Halo phase: each node reads its neighbours' edge columns
        // (previous half-iteration's values) plus the machine-wide
        // relaxation-weight table.  The halo column lives in the
        // first or last block of the neighbouring stripe row.
        if (red) {
            for (NodeId p = 0; p < nNodes(); ++p)
                for (unsigned b = 0; b < coeffBlocks; ++b)
                    if (static_cast<NodeId>(b % nNodes()) != p)
                        read(p, coeffs_ + Addr(b) * blockBytes);
        }
        for (NodeId p = 0; p < nNodes(); ++p) {
            unsigned c_lo = p * cpn, c_hi = (p + 1) * cpn - 1;
            for (unsigned r = 0; r < gridN; ++r) {
                if (c_lo > 0) {
                    read(p, cell(r, c_lo - 1)); // left neighbour edge
                    maybeStrayRead(cell(r, c_lo - 1), p, 0.15);
                }
                if (c_hi + 1 < gridN) {
                    read(p, cell(r, c_hi + 1)); // right neighbour edge
                    maybeStrayRead(cell(r, c_hi + 1), p, 0.15);
                }
            }
        }
        barrier();

        // Relax phase: 5-point update of the owner's stripe, emitted
        // at block granularity (a block's 8 cells split 4 red / 4
        // black, so every block is written in both colours).
        for (NodeId p = 0; p < nNodes(); ++p) {
            unsigned c_lo = p * cpn;
            for (unsigned r = 1; r + 1 < gridN; ++r) {
                for (unsigned b = 0; b < blocks_per_stripe_row; ++b) {
                    Addr addr = cell(r, c_lo + 8 * b);
                    read(p, addr);
                    write(p, addr, pc_relax);
                }
            }
        }
        barrier();

        // Once per full iteration: rebuild the relaxation weights
        // (each owner rewrites its share, invalidating all readers),
        // then node 0 samples residual blocks across the whole grid
        // and broadcasts convergence.
        if (!red) {
            for (unsigned b = 0; b < coeffBlocks; ++b)
                write(static_cast<NodeId>(b % nNodes()),
                      coeffs_ + Addr(b) * blockBytes, pc_coeff);
            for (NodeId p = 0; p < nNodes(); ++p)
                rmw(p, partials + Addr(p) * blockBytes, pc_partial);
            barrier();
            for (unsigned r = 0; r < gridN; ++r)
                for (unsigned c = 0; c < gridN; c += 8)
                    if (sample_rng.chance(residualSample))
                        read(0, cell(r, c));
            for (NodeId p = 0; p < nNodes(); ++p)
                read(0, partials + Addr(p) * blockBytes);
            write(0, flag, pc_flag);
            barrier();
            for (NodeId p = 1; p < nNodes(); ++p)
                read(p, flag);
            barrier();
        }
    }
}

} // namespace

std::unique_ptr<Workload>
makeGauss(const WorkloadParams &params)
{
    return std::make_unique<GaussKernel>(params);
}

} // namespace ccp::workloads
