/**
 * @file
 * Workload registry: name-based construction of the benchmark kernels
 * and one-call trace generation.
 */

#ifndef CCP_WORKLOADS_REGISTRY_HH
#define CCP_WORKLOADS_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "mem/protocol.hh"
#include "trace/trace.hh"
#include "workloads/workload.hh"

namespace ccp::workloads {

/** Names of all benchmarks, in the paper's Table 3 order. */
const std::vector<std::string> &workloadNames();

/** Build a kernel by name; fatal on unknown names. */
std::unique_ptr<Workload> makeWorkload(const std::string &name,
                                       const WorkloadParams &params);

/**
 * Run one benchmark end to end on a fresh machine and return its
 * finalized coherence trace.
 *
 * @param name    Benchmark name.
 * @param params  Workload knobs (node count must match @p config).
 * @param config  Machine geometry; paper defaults if omitted.
 */
trace::SharingTrace
generateTrace(const std::string &name, const WorkloadParams &params,
              const mem::MachineConfig &config = mem::MachineConfig());

/** Generate the full seven-benchmark suite. */
std::vector<trace::SharingTrace>
generateSuite(const WorkloadParams &params,
              const mem::MachineConfig &config = mem::MachineConfig());

} // namespace ccp::workloads

#endif // CCP_WORKLOADS_REGISTRY_HH
