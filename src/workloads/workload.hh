/**
 * @file
 * Workload framework: SPMD kernel programs for the simulated machine.
 *
 * Each workload models one benchmark of the paper's Table 3 as a
 * barrier-phased parallel kernel.  The kernels are *sharing-pattern
 * faithful* reimplementations (see DESIGN.md): they reproduce the
 * producer-consumer, migratory, broadcast and false-sharing structure
 * of the original programs through the real cache/directory substrate,
 * rather than replaying canned traces.
 *
 * A kernel derives from Workload, allocates its shared data with
 * alloc()/allocUnaligned(), mints static store sites with pcOf(), and
 * emits memory operations with read()/write()/rmw() between barrier()
 * calls.  Determinism: everything derives from the seed in
 * WorkloadParams.
 */

#ifndef CCP_WORKLOADS_WORKLOAD_HH
#define CCP_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "sim/machine.hh"

namespace ccp::workloads {

/** Knobs common to every workload. */
struct WorkloadParams
{
    unsigned nNodes = 16;
    std::uint64_t seed = 0x5eed;
    /**
     * Linear scale on the iteration counts (not the data sizes, which
     * follow Table 3).  1.0 reproduces the calibrated defaults; use
     * smaller values for quick tests.
     */
    double scale = 1.0;
};

/**
 * Base class for kernels.  The generate() hook runs the program:
 * emitting ops and calling barrier() to delimit phases.
 */
class Workload
{
  public:
    explicit Workload(const WorkloadParams &params);
    virtual ~Workload() = default;

    Workload(const Workload &) = delete;
    Workload &operator=(const Workload &) = delete;

    /** Benchmark name (Table 3 spelling). */
    virtual std::string name() const = 0;

    /** Execute the kernel on @p machine, appending to its trace. */
    void run(sim::Machine &machine);

  protected:
    /** Emit the whole program; called once by run(). */
    virtual void generate() = 0;

    /** Emit a load by @p node. */
    void read(NodeId node, Addr addr);
    /** Emit a store by @p node from static store site @p site. */
    void write(NodeId node, Addr addr, Pc site);
    /** Emit a read-modify-write (lock-protected accumulate etc.). */
    void rmw(NodeId node, Addr addr, Pc site);

    /**
     * With probability @p prob, emit a read of @p addr by a random
     * node other than @p exclude.  Models the heavy-tailed reader
     * noise of real traces — false sharing with co-located data,
     * speculative prefetches, profiling reads — which last-bitmap
     * predictors mispredict and intersection predictors filter out.
     */
    void maybeStrayRead(Addr addr, NodeId exclude, double prob);

    /** Flush the pending phase through the machine (a barrier). */
    void barrier();

    /** Mint (or look up) the pc of a named static store site. */
    Pc pcOf(const std::string &site);

    /** Allocate @p bytes of shared data, block-aligned. */
    Addr alloc(std::uint64_t bytes);

    /**
     * Allocate with a deliberate misalignment of @p skew_bytes so
     * consecutive objects false-share cache blocks, as real SPLASH
     * data structures do.
     */
    Addr allocUnaligned(std::uint64_t bytes, unsigned skew_bytes);

    /** Iterations after applying the scale knob (min 1). */
    unsigned scaled(unsigned iterations) const;

    /** Number of scaled iterations in flight; for kernels' loops. */
    unsigned nNodes() const { return params_.nNodes; }

    WorkloadParams params_;
    Rng rng_;
    Rng strayRng_;

  private:
    sim::Machine *machine_ = nullptr;
    sim::PhaseOps ops_;
    std::unordered_map<std::string, Pc> sites_;
    Pc nextPc_;
    Addr heapTop_;
};

} // namespace ccp::workloads

#endif // CCP_WORKLOADS_WORKLOAD_HH
