/**
 * @file
 * unstruct: unstructured-mesh CFD kernel (2K mesh, a la CHAOS).
 *
 * Sharing-pattern model: mesh vertices are partitioned contiguously;
 * edges connect vertices within a geometric locality window, with a
 * minority of long-range edges, so roughly a quarter of the edges
 * cross partitions.  Every sweep each edge owner first gathers the
 * remote endpoint values (the stable multi-reader component), then
 * scatter-accumulates flux into every endpoint it touches, batched
 * per (owner, vertex) as irregular codes do to amortize locking.
 * Frontier vertices are therefore read by their fixed set of cut-edge
 * owners and read-modify-written by the same set each sweep — the
 * migratory+multiple-reader mix behind the paper's 12.83% prevalence
 * and very high event-per-block count (hundreds of sweeps over a
 * small mesh).
 */

#include "workloads/kernels.hh"

#include <algorithm>
#include <vector>

namespace ccp::workloads {

namespace {

/** Mesh vertex count (Table 3: 2K mesh). */
constexpr unsigned nVertices = 2048;
/** Edges (degree ~10 -> 5x vertices). */
constexpr unsigned nEdges = 5 * nVertices;
/** Half-width of the short-range edge window. */
constexpr unsigned shortWindow = 32;
/** Half-width and fraction of long-range edges. */
constexpr unsigned longWindow = 512;
constexpr double longFraction = 0.65;
/**
 * Fraction of cut edges updated with fine-grain remote locking (a
 * migratory RMW chain); the rest are aggregated into per-owner-pair
 * flux buffers that the vertex owner consumes (the CHAOS-style
 * ghost aggregation path: static producer-consumer sharing).
 */
constexpr double directCutFraction = 0.15;
/** Sweeps (before scaling). */
constexpr unsigned sweeps = 130;
/** Reduction every this many sweeps. */
constexpr unsigned reduceEvery = 10;

class UnstructKernel : public Workload
{
  public:
    explicit UnstructKernel(const WorkloadParams &params)
        : Workload(params)
    {
    }

    std::string name() const override { return "unstruct"; }

  protected:
    void generate() override;

  private:
    NodeId
    ownerOf(unsigned v) const
    {
        return static_cast<NodeId>(
            (std::uint64_t(v) * nNodes()) / nVertices);
    }

    Addr
    dataAddr(unsigned v) const
    {
        return data_ + Addr(v) * blockBytes;
    }

    Addr
    coordAddr(unsigned v) const
    {
        return coords_ + Addr(v) * blockBytes;
    }

    Addr data_ = 0;
    Addr coords_ = 0;
};

void
UnstructKernel::generate()
{
    const unsigned T = scaled(sweeps);
    const Pc pc_init = pcOf("unstruct.init");
    const Pc pc_scatter = pcOf("unstruct.scatter");
    const Pc pc_partial = pcOf("unstruct.residual");
    const Pc pc_flag = pcOf("unstruct.converged");

    data_ = alloc(Addr(nVertices) * blockBytes);
    coords_ = alloc(Addr(nVertices) * blockBytes);
    Addr partials = alloc(Addr(nNodes()) * blockBytes);
    Addr flag = alloc(blockBytes);

    // Build the edge list with geometric locality plus long edges.
    Rng mesh_rng = rng_.fork(5);
    auto wrap = [](std::int64_t v) {
        if (v < 0)
            v += nVertices;
        if (v >= static_cast<std::int64_t>(nVertices))
            v -= nVertices;
        return static_cast<unsigned>(v);
    };

    // Per owner: deduplicated gather set (remote endpoints), scatter
    // set (vertices it RMWs: its own endpoints plus the fine-grain
    // locked share of remote endpoints), and per-destination flux
    // aggregation counts (the ghost-aggregation path).
    std::vector<std::vector<unsigned>> gather(nNodes());
    std::vector<std::vector<unsigned>> scatter(nNodes());
    std::vector<std::vector<unsigned>> flux_verts(
        std::size_t(nNodes()) * nNodes());
    for (unsigned e = 0; e < nEdges; ++e) {
        unsigned a = static_cast<unsigned>(mesh_rng.below(nVertices));
        unsigned win = mesh_rng.chance(longFraction) ? longWindow
                                                     : shortWindow;
        std::int64_t delta = 0;
        while (delta == 0)
            delta = mesh_rng.range(-std::int64_t(win),
                                   std::int64_t(win));
        unsigned b = wrap(static_cast<std::int64_t>(a) + delta);
        NodeId o = ownerOf(a), q = ownerOf(b);
        scatter[o].push_back(a);
        // The vertex owner folds in remote contributions, so every
        // endpoint is RMW'd by its own owner each sweep.
        scatter[q].push_back(b);
        if (q != o) {
            gather[o].push_back(b);
            if (mesh_rng.chance(directCutFraction))
                scatter[o].push_back(b); // fine-grain locked update
            else
                flux_verts[o * nNodes() + q].push_back(b);
        }
    }
    for (NodeId p = 0; p < nNodes(); ++p) {
        auto dedupe = [](std::vector<unsigned> &v) {
            std::sort(v.begin(), v.end());
            v.erase(std::unique(v.begin(), v.end()), v.end());
        };
        dedupe(gather[p]);
        dedupe(scatter[p]);
        for (NodeId q = 0; q < nNodes(); ++q)
            dedupe(flux_verts[p * nNodes() + q]);
    }

    // One flux buffer per communicating owner pair, sized to carry
    // one 16-byte contribution record per aggregated vertex.
    std::vector<Addr> flux_base(std::size_t(nNodes()) * nNodes(), 0);
    std::vector<unsigned> flux_blocks(std::size_t(nNodes()) * nNodes(),
                                      0);
    for (NodeId p = 0; p < nNodes(); ++p) {
        for (NodeId q = 0; q < nNodes(); ++q) {
            std::size_t idx = std::size_t(p) * nNodes() + q;
            if (flux_verts[idx].empty())
                continue;
            flux_blocks[idx] = static_cast<unsigned>(
                (flux_verts[idx].size() + 3) / 4);
            flux_base[idx] =
                alloc(Addr(flux_blocks[idx]) * blockBytes);
        }
    }

    for (unsigned v = 0; v < nVertices; ++v) {
        write(ownerOf(v), dataAddr(v), pc_init);
        write(ownerOf(v), coordAddr(v), pc_init);
    }
    barrier();

    const Pc pc_flux = pcOf("unstruct.flux_produce");

    for (unsigned t = 0; t < T; ++t) {
        // Flux-produce phase: edge owners aggregate their cut-edge
        // contributions into per-destination buffers.
        for (NodeId p = 0; p < nNodes(); ++p) {
            for (NodeId q = 0; q < nNodes(); ++q) {
                std::size_t idx = std::size_t(p) * nNodes() + q;
                for (unsigned b = 0; b < flux_blocks[idx]; ++b)
                    write(p, flux_base[idx] + Addr(b) * blockBytes,
                          pc_flux);
            }
        }
        barrier();

        // Gather phase: cut-edge owners read their remote endpoints
        // (previous sweep's values) and vertex owners consume their
        // incoming flux buffers — the stable reader sets.
        for (NodeId p = 0; p < nNodes(); ++p) {
            for (unsigned v : gather[p]) {
                read(p, dataAddr(v));
                maybeStrayRead(dataAddr(v), p, 0.10);
            }
        }
        for (NodeId q = 0; q < nNodes(); ++q) {
            for (NodeId p = 0; p < nNodes(); ++p) {
                std::size_t idx = std::size_t(p) * nNodes() + q;
                for (unsigned b = 0; b < flux_blocks[idx]; ++b)
                    read(q, flux_base[idx] + Addr(b) * blockBytes);
            }
        }
        barrier();

        // Scatter phase: batched flux accumulation into every touched
        // vertex (read-only geometry, RMW data).
        for (NodeId p = 0; p < nNodes(); ++p) {
            for (unsigned v : scatter[p]) {
                read(p, coordAddr(v));
                rmw(p, dataAddr(v), pc_scatter);
            }
        }
        barrier();

        if ((t + 1) % reduceEvery == 0) {
            for (NodeId n = 0; n < nNodes(); ++n)
                rmw(n, partials + Addr(n) * blockBytes, pc_partial);
            barrier();
            for (NodeId n = 0; n < nNodes(); ++n)
                read(0, partials + Addr(n) * blockBytes);
            write(0, flag, pc_flag);
            barrier();
            for (NodeId n = 1; n < nNodes(); ++n)
                read(n, flag);
            barrier();
        }
    }
}

} // namespace

std::unique_ptr<Workload>
makeUnstruct(const WorkloadParams &params)
{
    return std::make_unique<UnstructKernel>(params);
}

} // namespace ccp::workloads
