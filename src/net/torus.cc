#include "net/torus.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace ccp::net {

namespace {

/** Signed shortest offset from a to b on a ring of size n. */
int
ringDelta(unsigned a, unsigned b, unsigned n)
{
    int fwd = static_cast<int>((b + n - a) % n);
    int bwd = fwd - static_cast<int>(n);
    return fwd <= -bwd ? fwd : bwd;
}

} // namespace

Torus2D::Torus2D(unsigned width, unsigned height,
                 const TorusParams &params)
    : width_(width), height_(height), params_(params),
      linkBytes_(static_cast<std::size_t>(width) * height * 4, 0)
{
    ccp_assert(width_ > 0 && height_ > 0, "degenerate torus");
    ccp_assert(nodes() <= maxNodes, "torus larger than maxNodes");

    double total = 0.0;
    for (NodeId to = 0; to < nodes(); ++to)
        total += hops(0, to);
    meanHops_ = nodes() > 1 ? total / (nodes() - 1) : 1.0;
}

unsigned
Torus2D::hops(NodeId a, NodeId b) const
{
    unsigned ax = a % width_, ay = a / width_;
    unsigned bx = b % width_, by = b / width_;
    return static_cast<unsigned>(std::abs(ringDelta(ax, bx, width_))) +
           static_cast<unsigned>(std::abs(ringDelta(ay, by, height_)));
}

double
Torus2D::meanHops(NodeId from) const
{
    double total = 0.0;
    for (NodeId to = 0; to < nodes(); ++to)
        total += hops(from, to);
    return nodes() > 1 ? total / (nodes() - 1) : 0.0;
}

Cycles
Torus2D::latency(NodeId from, NodeId to) const
{
    if (from == to)
        return params_.localLatency;
    double scale = hops(from, to) / meanHops_;
    double net = static_cast<double>(params_.remoteLatency -
                                     params_.localLatency);
    return params_.localLatency +
           static_cast<Cycles>(std::llround(net * scale));
}

unsigned
Torus2D::linkIndex(unsigned x, unsigned y, unsigned dir) const
{
    return (y * width_ + x) * 4 + dir;
}

void
Torus2D::accountPath(NodeId from, NodeId to, unsigned bytes)
{
    unsigned x = from % width_, y = from / width_;
    unsigned tx = to % width_, ty = to / width_;

    // X dimension first (dimension-order routing), then Y.
    int dx = ringDelta(x, tx, width_);
    while (dx != 0) {
        unsigned dir = dx > 0 ? 0 : 1; // 0: +x, 1: -x
        linkBytes_[linkIndex(x, y, dir)] += bytes;
        totalByteHops_ += bytes;
        x = (x + width_ + (dx > 0 ? 1 : width_ - 1)) % width_;
        dx += dx > 0 ? -1 : 1;
    }
    int dy = ringDelta(y, ty, height_);
    while (dy != 0) {
        unsigned dir = dy > 0 ? 2 : 3; // 2: +y, 3: -y
        linkBytes_[linkIndex(x, y, dir)] += bytes;
        totalByteHops_ += bytes;
        y = (y + height_ + (dy > 0 ? 1 : height_ - 1)) % height_;
        dy += dy > 0 ? -1 : 1;
    }
}

unsigned
Torus2D::sendMessage(NodeId from, NodeId to, unsigned bytes)
{
    ccp_assert(from < nodes() && to < nodes(), "node out of range");
    ++totalMessages_;
    if (from != to)
        accountPath(from, to, bytes);
    return hops(from, to);
}

std::uint64_t
Torus2D::maxLinkBytes() const
{
    return linkBytes_.empty()
               ? 0
               : *std::max_element(linkBytes_.begin(), linkBytes_.end());
}

void
Torus2D::clearTraffic()
{
    std::fill(linkBytes_.begin(), linkBytes_.end(), 0);
    totalByteHops_ = 0;
    totalMessages_ = 0;
}

} // namespace ccp::net
