/**
 * @file
 * Torus2D: the interconnect model of the simulated machine.
 *
 * The paper's RSIM configuration uses a "fast 2-D torus interconnect"
 * with 52-cycle local and 133-cycle remote memory latency (Table 4).
 * The prediction metrics are timing-independent, but the forwarding
 * overlay (src/forward) and the examples use this model to translate
 * predictor quality into estimated cycles saved and traffic generated.
 *
 * The model provides wrap-around Manhattan hop distances, a linear
 * hop-latency approximation anchored to the paper's local/remote
 * latencies, and per-link traffic accounting for X-Y dimension-order
 * routing.
 */

#ifndef CCP_NET_TORUS_HH
#define CCP_NET_TORUS_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace ccp::net {

/** Latency parameters mirroring Table 4 of the paper. */
struct TorusParams
{
    /** Cycles to reach local memory (no network traversal). */
    Cycles localLatency = 52;
    /** Cycles for an average remote access (directory + transfer). */
    Cycles remoteLatency = 133;
    /** Flit payload assumed per data message, in bytes. */
    unsigned dataMessageBytes = 64 + 8;
    /** Bytes per control message (request, inv, ack). */
    unsigned controlMessageBytes = 8;
};

/**
 * A width x height wrap-around mesh of nodes with dimension-order
 * routing and per-link traffic counters.
 */
class Torus2D
{
  public:
    /**
     * @param width  Nodes per row.
     * @param height Nodes per column.
     * @param params Latency/size parameters.
     */
    Torus2D(unsigned width, unsigned height,
            const TorusParams &params = TorusParams());

    unsigned width() const { return width_; }
    unsigned height() const { return height_; }
    unsigned nodes() const { return width_ * height_; }
    const TorusParams &params() const { return params_; }

    /** Wrap-around Manhattan hop count between two nodes. */
    unsigned hops(NodeId a, NodeId b) const;

    /** Mean hop distance from a node to all other nodes. */
    double meanHops(NodeId from) const;

    /**
     * Estimated request latency from @p from to @p to: the paper's
     * local latency for a same-node access, otherwise the remote
     * latency scaled by the ratio of the actual hop count to the
     * machine's mean hop count.
     */
    Cycles latency(NodeId from, NodeId to) const;

    /**
     * Account a message of @p bytes from @p from to @p to along its
     * X-Y route, returning the hop count.  Traffic is recorded on
     * every traversed link.
     */
    unsigned sendMessage(NodeId from, NodeId to, unsigned bytes);

    /** Total byte-hops recorded so far. */
    std::uint64_t totalByteHops() const { return totalByteHops_; }

    /** Total messages recorded so far. */
    std::uint64_t totalMessages() const { return totalMessages_; }

    /** Bytes recorded on the busiest single link. */
    std::uint64_t maxLinkBytes() const;

    /** Reset all traffic counters. */
    void clearTraffic();

  private:
    unsigned linkIndex(unsigned x, unsigned y, unsigned dir) const;
    void accountPath(NodeId from, NodeId to, unsigned bytes);

    unsigned width_;
    unsigned height_;
    TorusParams params_;
    double meanHops_;

    /** Per-link byte counters: 4 directions per node (+x,-x,+y,-y). */
    std::vector<std::uint64_t> linkBytes_;
    std::uint64_t totalByteHops_ = 0;
    std::uint64_t totalMessages_ = 0;
};

} // namespace ccp::net

#endif // CCP_NET_TORUS_HH
