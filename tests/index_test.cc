/**
 * @file
 * Tests for IndexSpec: packing, truncation, Table 1 classification.
 */

#include <gtest/gtest.h>

#include "predict/index.hh"
#include "predict/table.hh"

namespace {

using namespace ccp;
using predict::addressIndex;
using predict::IndexSpec;
using predict::instructionIndex;

TEST(IndexSpec, WidthAccounting)
{
    IndexSpec none;
    EXPECT_EQ(none.indexBits(4), 0u);

    IndexSpec full{true, 8, true, 6};
    EXPECT_EQ(full.indexBits(4), 4u + 8u + 4u + 6u);
    EXPECT_EQ(full.indexBits(2), 2u + 8u + 2u + 6u);
}

TEST(IndexSpec, NoFieldsAlwaysIndexZero)
{
    IndexSpec none;
    EXPECT_EQ(none.index(3, 0x4444, 7, 12345, 4), 0u);
}

TEST(IndexSpec, PidOnlySelectsByNode)
{
    IndexSpec idx{true, 0, false, 0};
    for (NodeId pid = 0; pid < 16; ++pid)
        EXPECT_EQ(idx.index(pid, 0x999, 3, 777, 4), pid);
}

TEST(IndexSpec, AddrTruncationKeepsLowBits)
{
    IndexSpec idx = addressIndex(4, false);
    EXPECT_EQ(idx.index(0, 0, 0, 0b10110101, 4), 0b0101u);
}

TEST(IndexSpec, PcTruncationDropsWordAlignment)
{
    // Two stores 4 bytes apart must land in different entries even
    // with a narrow pc field.
    IndexSpec idx = instructionIndex(2, false);
    auto a = idx.index(0, 0x400, 0, 0, 4);
    auto b = idx.index(0, 0x404, 0, 0, 4);
    EXPECT_NE(a, b);
    EXPECT_LT(a, 4u);
    EXPECT_LT(b, 4u);
}

TEST(IndexSpec, FieldsArePackedIndependently)
{
    IndexSpec idx{true, 4, true, 4};
    auto base = idx.index(0, 0, 0, 0, 4);
    EXPECT_EQ(base, 0u);
    // Changing one input field must change exactly its bit range.
    EXPECT_EQ(idx.index(0, 0, 0, 5, 4), 5u);
    EXPECT_EQ(idx.index(0, 0, 3, 0, 4), 3u << 4);
    EXPECT_EQ(idx.index(0, 4 * 9, 0, 0, 4), 9u << 8);
    EXPECT_EQ(idx.index(11, 0, 0, 0, 4), 11u << 12);
}

TEST(IndexSpec, AliasingUnderTruncation)
{
    IndexSpec idx = addressIndex(2, false);
    EXPECT_EQ(idx.index(0, 0, 0, 4, 4), idx.index(0, 0, 0, 8, 4));
    EXPECT_NE(idx.index(0, 0, 0, 4, 4), idx.index(0, 0, 0, 5, 4));
}

TEST(IndexSpec, TableOneCases)
{
    EXPECT_EQ(IndexSpec{}.tableOneCase(), 0u);
    EXPECT_EQ(addressIndex(8, false).tableOneCase(), 1u);
    EXPECT_EQ(addressIndex(8, true).tableOneCase(), 3u);
    EXPECT_EQ(instructionIndex(8, false).tableOneCase(), 4u);
    EXPECT_EQ(instructionIndex(8, true).tableOneCase(), 12u);
    IndexSpec all{true, 8, true, 8};
    EXPECT_EQ(all.tableOneCase(), 15u);
}

TEST(IndexSpec, DistributabilityFollowsTableOne)
{
    // Cases 0,1,4,5: centralized only.
    EXPECT_TRUE(IndexSpec{}.centralizedOnly());
    EXPECT_TRUE(instructionIndex(8, false).centralizedOnly());
    // dir without pid: distributable at the directories.
    IndexSpec at_dir = addressIndex(8, true);
    EXPECT_TRUE(at_dir.distributableAtDirectories());
    EXPECT_FALSE(at_dir.distributableAtProcessors());
    // pid without dir: at the processors.
    IndexSpec at_proc = instructionIndex(8, true);
    EXPECT_TRUE(at_proc.distributableAtProcessors());
    EXPECT_FALSE(at_proc.distributableAtDirectories());
}

TEST(IndexSpec, WriterIdentityDetection)
{
    EXPECT_FALSE(addressIndex(8, true).usesWriterIdentity());
    EXPECT_FALSE(IndexSpec{}.usesWriterIdentity());
    EXPECT_TRUE(instructionIndex(8, false).usesWriterIdentity());
    EXPECT_TRUE((IndexSpec{true, 0, true, 8}).usesWriterIdentity());
}

TEST(IndexSpec, FieldsNameNotation)
{
    EXPECT_EQ(IndexSpec{}.fieldsName(), "");
    EXPECT_EQ(addressIndex(8, true).fieldsName(), "dir+add8");
    EXPECT_EQ(instructionIndex(8, true).fieldsName(), "pid+pc8");
    IndexSpec full{true, 2, true, 6};
    EXPECT_EQ(full.fieldsName(), "pid+pc2+dir+add6");
}

TEST(IndexSpec, NodeBitsForMachineSizes)
{
    EXPECT_EQ(predict::nodeBitsFor(1), 0u);
    EXPECT_EQ(predict::nodeBitsFor(2), 1u);
    EXPECT_EQ(predict::nodeBitsFor(16), 4u);
    EXPECT_EQ(predict::nodeBitsFor(17), 5u);
    EXPECT_EQ(predict::nodeBitsFor(64), 6u);
}

TEST(IndexSpec, EventConvenienceOverload)
{
    trace::CoherenceEvent ev;
    ev.pid = 5;
    ev.pc = 0x420;
    ev.dir = 9;
    ev.block = 0x3f;
    IndexSpec idx{true, 4, true, 4};
    EXPECT_EQ(idx.indexOf(ev, 4),
              idx.index(5, 0x420, 9, 0x3f, 4));
}

// ---------------------------------------------------------------------
// Hashed feature folding

TEST(HashedIndex, StaysWithinTheIndexWidth)
{
    IndexSpec idx{true, 4, true, 6};
    idx.hashed = true;
    const unsigned bits = idx.indexBits(4); // 4 + 4 + 4 + 6 = 18
    ASSERT_EQ(bits, 18u);
    std::uint64_t seen_high = 0;
    for (std::uint64_t k = 0; k < 4096; ++k) {
        std::uint64_t v = idx.index(
            static_cast<NodeId>(k % 16), 0x400 + 4 * k,
            static_cast<NodeId>((k / 3) % 16), k * 0x51ed, 4);
        EXPECT_LT(v, std::uint64_t(1) << bits);
        seen_high |= v;
    }
    // The fold actually reaches the upper index bits (truncation
    // would too via the concatenated fields; the point is the hash is
    // not stuck in a narrow range).
    EXPECT_GE(64 - unsigned(__builtin_clzll(seen_high)), bits - 2);
}

TEST(HashedIndex, PlanMatchesSpecBitForBit)
{
    // The compiled plan must agree with IndexSpec::index on every
    // tuple — the reference and batched kernels each use one of the
    // two, and the differential tier depends on their identity.
    for (unsigned cs = 1; cs < 16; ++cs) {
        IndexSpec idx;
        idx.usePid = (cs & 8) != 0;
        idx.pcBits = cs & 4 ? 5 : 0;
        idx.useDir = (cs & 2) != 0;
        idx.addrBits = cs & 1 ? 7 : 0;
        idx.hashed = true;
        const auto plan = predict::makeIndexPlan(idx, 4);
        EXPECT_TRUE(plan.hashed());
        for (std::uint64_t k = 0; k < 512; ++k) {
            const NodeId pid = static_cast<NodeId>(k % 16);
            const Pc pc = 0x8000 + 4 * (k % 97);
            const NodeId dir = static_cast<NodeId>((k >> 2) % 16);
            const Addr block = k * 0x9af1 + 3;
            EXPECT_EQ(plan.index(pid, pc, dir, block),
                      idx.index(pid, pc, dir, block, 4))
                << "case " << cs << " k " << k;
        }
    }
}

TEST(HashedIndex, AbsentFieldsDoNotParticipate)
{
    // Only addr participates: varying pid/pc/dir must not move the
    // hashed index (their multipliers are zero).
    IndexSpec idx;
    idx.addrBits = 8;
    idx.hashed = true;
    const std::uint64_t base = idx.index(0, 0x400, 0, 42, 4);
    EXPECT_EQ(idx.index(7, 0x999, 3, 42, 4), base);
    EXPECT_NE(idx.index(0, 0x400, 0, 43, 4), base);
}

TEST(HashedIndex, DiffersFromTruncationConcat)
{
    // Same fields, same width, different entry mapping: the fold uses
    // full-width address entropy that truncation throws away, so two
    // blocks that collide under truncation separate under the hash.
    IndexSpec flat;
    flat.addrBits = 4;
    IndexSpec hashed = flat;
    hashed.hashed = true;
    // Blocks 0x10 and 0x20 share their low 4 bits (both 0).
    EXPECT_EQ(flat.index(0, 0, 0, 0x10, 4),
              flat.index(0, 0, 0, 0x20, 4));
    EXPECT_NE(hashed.index(0, 0, 0, 0x10, 4),
              hashed.index(0, 0, 0, 0x20, 4));
}

TEST(HashedIndex, EmptyIndexFoldsToZero)
{
    IndexSpec idx;
    idx.hashed = true; // no fields: mask is zero, index is zero
    EXPECT_EQ(idx.index(3, 0x4444, 7, 12345, 4), 0u);
    EXPECT_EQ(idx.indexBits(4), 0u);
}

TEST(HashedIndex, HashedFieldsNameCarriesTheMarker)
{
    IndexSpec idx{true, 4, false, 6};
    idx.hashed = true;
    EXPECT_EQ(idx.fieldsName(), "hash:pid+pc4+add6");
}

} // namespace
