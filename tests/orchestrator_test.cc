/**
 * @file
 * Tests for the shard supervisor (sweep/orchestrator.hh) using fake
 * shell-script workers, so every supervision policy — verify-by-
 * loading, retry with --resume, quarantine, drain propagation, and
 * one-shot fault stripping — is exercised in seconds without running
 * real sweeps in the children.  (The real worker path is covered end
 * to end by the CI chaos job, which diffs an orchestrated bench run
 * against a single-process one under injected faults.)
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/fault.hh"
#include "common/rng.hh"
#include "obs/registry.hh"
#include "sweep/name.hh"
#include "sweep/orchestrator.hh"
#include "sweep/parallel.hh"
#include "sweep/shard.hh"
#include "sweep/space.hh"

namespace {

using namespace ccp;
using predict::SchemeSpec;
using predict::UpdateMode;
using sweep::CheckpointEntry;
using sweep::CheckpointKey;
using sweep::CheckpointLoad;
using sweep::FailureKind;
using sweep::OrchestratorOptions;
using sweep::OrchestratorOutcome;
using sweep::ShardPlan;
using sweep::SweepKernel;
using sweep::planShards;
using sweep::shardCheckpointKey;
using sweep::shardSchemes;

trace::SharingTrace
noisyTrace(const char *name, std::uint64_t seed)
{
    trace::SharingTrace tr(name, 16);
    trace::CoherenceEvent prev_by_block[32];
    bool seen[32] = {};
    Rng rng(seed);
    for (int i = 0; i < 600; ++i) {
        unsigned k = static_cast<unsigned>(rng.below(32));
        trace::CoherenceEvent ev;
        ev.pid = static_cast<NodeId>(k % 16);
        ev.pc = 0x400 + 4 * (k % 8);
        ev.block = k;
        ev.dir = k % 16;
        ev.readers = SharingBitmap::single((k + 1) % 16);
        if (rng.below(4) == 0)
            ev.readers.set(static_cast<NodeId>(rng.below(16)));
        if (seen[k]) {
            ev.invalidated = prev_by_block[k].readers;
            ev.prevWriterPid = prev_by_block[k].pid;
            ev.prevWriterPc = prev_by_block[k].pc;
            ev.hasPrevWriter = true;
        }
        seen[k] = true;
        prev_by_block[k] = ev;
        tr.append(ev);
    }
    return tr;
}

std::uint64_t
counterOf(const obs::StatsRegistry &reg, const std::string &path)
{
    const auto *c = reg.findCounter(path);
    return c ? c->value : 0;
}

class OrchestratorTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ::unsetenv("CCP_FAULT_INJECT");
        fault::reinit();

        suite_.push_back(noisyTrace("alpha", 7));
        suite_.push_back(noisyTrace("beta", 23));
        sweep::SpaceSpec spec;
        spec.maxBits = std::uint64_t(1) << 12;
        spec.pcBitsGrid = {0, 2, 4};
        spec.addrBitsGrid = {0, 2, 4};
        spec.pasDepths = {1};
        schemes_ = enumerateSchemes(spec);

        // A fresh scratch directory per test: stale shard files from
        // a prior run would satisfy the supervisor's pre-check.
        dir_ = ::testing::TempDir() + "orch_" +
               ::testing::UnitTest::GetInstance()
                   ->current_test_info()
                   ->name();
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
        base_ = dir_ + "/ck";
    }

    void
    TearDown() override
    {
        ::unsetenv("CCP_FAULT_INJECT");
        fault::reinit();
        std::filesystem::remove_all(dir_);
    }

    /** Write an executable /bin/sh script and return its path.  The
     *  supervisor invokes it as a worker: the script sees the
     *  appended "--shards K --shard-id i --resume" arguments. */
    std::string
    fakeWorker(const std::string &body)
    {
        const std::string path = dir_ + "/worker.sh";
        {
            std::ofstream out(path);
            out << "#!/bin/sh\n"
                // Recover this invocation's shard index from argv.
                << "ID=; prev=\n"
                << "for a in \"$@\"; do\n"
                << "  [ \"$prev\" = --shard-id ] && ID=$a\n"
                << "  prev=$a\n"
                << "done\n"
                << "D=" << dir_ << "\n"
                << body;
        }
        std::filesystem::permissions(
            path, std::filesystem::perms::owner_all |
                      std::filesystem::perms::group_read |
                      std::filesystem::perms::others_read);
        return path;
    }

    OrchestratorOptions
    options(const std::string &worker, unsigned shards = 3)
    {
        OrchestratorOptions o;
        o.workerArgv = {worker};
        o.checkpointBase = base_;
        o.shards = shards;
        o.workers = 2;
        o.maxAttempts = 2;
        o.retryBackoffSec = 0.01;
        return o;
    }

    /** Evaluate shard @p shard for real and save its checkpoint at
     *  @p stash (or its derived place when @p stash is empty). */
    std::string
    stashShardCheckpoint(const ShardPlan &plan, unsigned shard,
                         const std::string &stash)
    {
        const auto sub = shardSchemes(schemes_, plan, shard);
        const auto results =
            sweep::ParallelSweep(1, SweepKernel::Batched)
                .evaluate(suite_, sub, UpdateMode::Direct);
        std::vector<CheckpointEntry> entries;
        for (std::size_t j = 0; j < results.size(); ++j) {
            CheckpointEntry e;
            e.schemeIndex = j;
            for (const auto &pt : results[j].perTrace)
                e.perTrace.push_back(pt.confusion);
            entries.push_back(std::move(e));
        }
        const CheckpointKey key = shardCheckpointKey(
            suite_, schemes_, plan, shard, UpdateMode::Direct,
            SweepKernel::Batched);
        const std::string file =
            stash.empty()
                ? sweep::checkpointFileName(base_, key)
                : stash;
        EXPECT_TRUE(
            sweep::saveCheckpoint(file, key, std::move(entries)));
        return file;
    }

    OrchestratorOutcome
    run(const OrchestratorOptions &opts, obs::StatsRegistry &stats)
    {
        obs::ScopedRegistry route(stats);
        return orchestrateSweep(opts, suite_, schemes_,
                                UpdateMode::Direct,
                                SweepKernel::Batched);
    }

    std::vector<trace::SharingTrace> suite_;
    std::vector<SchemeSpec> schemes_;
    std::string dir_;
    std::string base_;
};

TEST_F(OrchestratorTest, CompleteShardsAreVerifiedNotReRun)
{
    // Every shard checkpoint already exists and is complete: the
    // supervisor's pre-check must accept them without spawning a
    // single worker — the "worker" here would fail loudly if run.
    const ShardPlan plan = planShards(schemes_, 3);
    for (unsigned s = 0; s < 3; ++s)
        stashShardCheckpoint(plan, s, "");

    obs::StatsRegistry stats;
    const auto out = run(options("/bin/false"), stats);

    EXPECT_TRUE(out.outcome.allCompleted());
    EXPECT_FALSE(out.outcome.interrupted);
    EXPECT_TRUE(out.outcome.failures.empty());
    EXPECT_EQ(counterOf(stats, "orch.workers_spawned"), 0u);
    EXPECT_EQ(counterOf(stats, "orch.shards_completed"), 3u);
    EXPECT_EQ(counterOf(stats, "orch.schemes_recovered"),
              schemes_.size());
    for (const auto &r : out.shardReports)
        EXPECT_EQ(r.lastStatus, "complete");

    // The merged full-sweep checkpoint is left behind for a later
    // single-process --resume.
    const CheckpointKey full = makeCheckpointKey(
        suite_, schemes_, UpdateMode::Direct, SweepKernel::Batched);
    std::vector<CheckpointEntry> entries;
    EXPECT_EQ(loadCheckpoint(out.outcome.checkpointFile, full,
                             entries),
              CheckpointLoad::Ok);
    EXPECT_EQ(entries.size(), schemes_.size());
}

TEST_F(OrchestratorTest, PersistentFailureQuarantinesWithTheCause)
{
    const auto worker =
        fakeWorker("echo shard-$ID-boom >&2\nexit 3\n");
    obs::StatsRegistry stats;
    const auto out = run(options(worker), stats);

    EXPECT_FALSE(out.outcome.allCompleted());
    EXPECT_FALSE(out.outcome.interrupted);
    ASSERT_EQ(out.outcome.failures.size(), schemes_.size());
    for (const auto &f : out.outcome.failures) {
        EXPECT_EQ(f.kind, FailureKind::Quarantine);
        EXPECT_EQ(f.attempts, 2u);
        EXPECT_NE(f.message.find("exit 3"), std::string::npos)
            << f.message;
        EXPECT_NE(f.message.find("boom"), std::string::npos)
            << f.message;
    }
    // Failures are sorted by global scheme index.
    for (std::size_t i = 1; i < out.outcome.failures.size(); ++i)
        EXPECT_LT(out.outcome.failures[i - 1].schemeIndex,
                  out.outcome.failures[i].schemeIndex);

    EXPECT_EQ(counterOf(stats, "orch.shards_quarantined"), 3u);
    // maxAttempts launches per shard, attempt 2+ counted as retries.
    EXPECT_EQ(counterOf(stats, "orch.workers_spawned"), 6u);
    EXPECT_EQ(counterOf(stats, "orch.worker_retries"), 3u);
    for (const auto &r : out.shardReports) {
        EXPECT_TRUE(r.quarantined);
        EXPECT_EQ(r.lastStatus, "failed");
        EXPECT_EQ(r.lastExitCode, 3);
    }
}

TEST_F(OrchestratorTest, CrashyWorkerIsRetriedAndRecovers)
{
    // Attempt 1 of every shard dies before leaving a checkpoint;
    // attempt 2 installs the shard's real, complete checkpoint (the
    // test pre-computed it into a stash, standing in for a worker
    // that re-runs with --resume and finishes the remainder).
    const ShardPlan plan = planShards(schemes_, 3);
    for (unsigned s = 0; s < 3; ++s) {
        const std::string file = stashShardCheckpoint(
            plan, s, dir_ + "/stash." + std::to_string(s));
        const CheckpointKey key = shardCheckpointKey(
            suite_, schemes_, plan, s, UpdateMode::Direct,
            SweepKernel::Batched);
        std::ofstream(dir_ + "/target." + std::to_string(s))
            << sweep::checkpointFileName(base_, key);
    }
    const auto worker = fakeWorker(
        "if [ ! -e \"$D/marker.$ID\" ]; then\n"
        "  : > \"$D/marker.$ID\"\n"
        "  exit 137\n"
        "fi\n"
        "cp \"$D/stash.$ID\" \"$(cat \"$D/target.$ID\")\"\n"
        "exit 0\n");

    obs::StatsRegistry stats;
    const auto out = run(options(worker), stats);

    EXPECT_TRUE(out.outcome.allCompleted());
    EXPECT_TRUE(out.outcome.failures.empty());
    EXPECT_EQ(counterOf(stats, "orch.workers_spawned"), 6u);
    EXPECT_EQ(counterOf(stats, "orch.worker_retries"), 3u);
    EXPECT_EQ(counterOf(stats, "orch.shards_completed"), 3u);
    for (const auto &r : out.shardReports) {
        EXPECT_FALSE(r.quarantined);
        EXPECT_EQ(r.attempts, 2u);
        EXPECT_EQ(r.lastStatus, "complete");
        EXPECT_EQ(r.schemesDone, r.schemesTotal);
    }
}

TEST_F(OrchestratorTest, DrainedWorkerInterruptsTheWholeFleet)
{
    const auto worker = fakeWorker("exit 75\n");
    obs::StatsRegistry stats;
    OrchestratorOptions opts = options(worker);
    opts.workers = 1; // deterministic: first shard drains the run
    const auto out = run(opts, stats);

    EXPECT_TRUE(out.outcome.interrupted);
    EXPECT_EQ(out.outcome.exitCode(),
              sweep::ResilientOutcome::interruptedExitCode);
    // Interruption is not failure: nothing is quarantined, the
    // remaining schemes are simply not done yet.
    EXPECT_TRUE(out.outcome.failures.empty());
    EXPECT_EQ(counterOf(stats, "orch.shards_quarantined"), 0u);
}

TEST_F(OrchestratorTest, OneShotFaultsAreStrippedFromRetries)
{
    // Workers log the fault spec they inherited, then fail, forcing a
    // retry.  The retry environment must have the one-shot shard
    // points stripped — and keep every other clause.
    ::setenv("CCP_FAULT_INJECT",
             "shard.worker_kill=0,sweep.interrupt_at=9", 1);
    const auto worker = fakeWorker(
        "echo \"${CCP_FAULT_INJECT-unset}\" >> \"$D/log.$ID\"\n"
        "exit 1\n");
    obs::StatsRegistry stats;
    const auto out = run(options(worker), stats);
    ::unsetenv("CCP_FAULT_INJECT");

    EXPECT_FALSE(out.outcome.allCompleted());
    for (unsigned s = 0; s < 3; ++s) {
        std::ifstream log(dir_ + "/log." + std::to_string(s));
        std::string first, second, extra;
        ASSERT_TRUE(std::getline(log, first)) << "shard " << s;
        ASSERT_TRUE(std::getline(log, second)) << "shard " << s;
        EXPECT_FALSE(std::getline(log, extra)) << "shard " << s;
        EXPECT_EQ(first, "shard.worker_kill=0,sweep.interrupt_at=9");
        EXPECT_EQ(second, "sweep.interrupt_at=9");
    }
}

TEST_F(OrchestratorTest, WedgedWorkerDiesByLivenessDeadline)
{
    // A worker that never touches its checkpoint file trips the
    // no-progress deadline (SIGTERM, grace, SIGKILL), is retried,
    // and — still wedged — ends quarantined as a timeout.
    const auto worker = fakeWorker("sleep 60\n");
    obs::StatsRegistry stats;
    OrchestratorOptions opts = options(worker, 1);
    opts.workerDeadlineSec = 0.3;
    opts.termGraceSec = 0.2;
    const auto out = run(opts, stats);

    EXPECT_FALSE(out.outcome.allCompleted());
    EXPECT_EQ(counterOf(stats, "orch.workers_timeout"), 2u);
    ASSERT_EQ(out.shardReports.size(), 1u);
    EXPECT_TRUE(out.shardReports[0].quarantined);
    EXPECT_EQ(out.shardReports[0].lastStatus, "timeout");
}

} // namespace
