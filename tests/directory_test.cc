/**
 * @file
 * Tests for the directory slice and home-node placement policies.
 */

#include <gtest/gtest.h>

#include "mem/directory.hh"

namespace {

using namespace ccp;
using mem::DirectoryEntry;
using mem::DirectorySlice;
using mem::DirState;
using mem::MemoryMap;
using mem::PlacementPolicy;

TEST(DirectorySlice, EntriesMaterializeOnFirstUse)
{
    DirectorySlice slice;
    EXPECT_EQ(slice.size(), 0u);
    EXPECT_EQ(slice.find(42), nullptr);

    DirectoryEntry &e = slice.entry(42);
    EXPECT_EQ(e.state, DirState::Uncached);
    EXPECT_TRUE(e.sharers.empty());
    EXPECT_EQ(slice.size(), 1u);
    EXPECT_EQ(slice.find(42), &slice.entry(42));
}

TEST(DirectorySlice, DefaultEntryHasNoHistory)
{
    DirectorySlice slice;
    const DirectoryEntry &e = slice.entry(7);
    EXPECT_FALSE(e.hasLastWriter);
    EXPECT_EQ(e.version, 0u);
    EXPECT_EQ(e.pendingEvent, trace::noEvent);
    EXPECT_TRUE(e.readersSinceExclusive.empty());
}

TEST(DirectorySlice, IterationCoversAllEntries)
{
    DirectorySlice slice;
    slice.entry(1).version = 10;
    slice.entry(2).version = 20;
    unsigned count = 0;
    std::uint64_t total = 0;
    for (const auto &[block, entry] : slice) {
        ++count;
        total += entry.version;
        EXPECT_TRUE(block == 1 || block == 2);
    }
    EXPECT_EQ(count, 2u);
    EXPECT_EQ(total, 30u);
}

TEST(MemoryMap, InterleavedIsRoundRobin)
{
    MemoryMap map(16, PlacementPolicy::Interleaved);
    for (Addr block = 0; block < 64; ++block)
        EXPECT_EQ(map.homeOf(block, /*toucher=*/5), block % 16);
    // Nothing is pinned under interleaving.
    EXPECT_EQ(map.assignedBlocks(), 0u);
}

TEST(MemoryMap, InterleavedIgnoresToucher)
{
    MemoryMap map(8, PlacementPolicy::Interleaved);
    EXPECT_EQ(map.homeOf(9, 0), map.homeOf(9, 7));
}

TEST(MemoryMap, FirstTouchPinsTheFirstRequester)
{
    MemoryMap map(16, PlacementPolicy::FirstTouch);
    EXPECT_EQ(map.homeOf(100, 3), 3u);
    // Sticky: later touchers do not move the home.
    EXPECT_EQ(map.homeOf(100, 9), 3u);
    EXPECT_EQ(map.homeOf(100, 3), 3u);
    EXPECT_EQ(map.assignedBlocks(), 1u);
}

TEST(MemoryMap, FirstTouchAssignsIndependentBlocks)
{
    MemoryMap map(4, PlacementPolicy::FirstTouch);
    for (NodeId n = 0; n < 4; ++n)
        EXPECT_EQ(map.homeOf(n, n), n);
    EXPECT_EQ(map.assignedBlocks(), 4u);
}

TEST(MemoryMap, DefaultPolicyIsFirstTouch)
{
    MemoryMap map(16);
    EXPECT_EQ(map.policy(), PlacementPolicy::FirstTouch);
}

} // namespace
