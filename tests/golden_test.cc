/**
 * @file
 * Golden-file regression tests for the sweep's ranked (Table-8-style)
 * output.
 *
 * Two tiny deterministic traces and the expected ranked tables are
 * checked in under tests/golden/.  The test re-runs the sweep over the
 * checked-in traces and byte-compares the rendered tables against the
 * golden text — under the batched kernel at one and several threads
 * and under the reference kernel — so *any* drift in evaluation
 * semantics, ranking tie-breaks, or formatting is caught, and the two
 * kernels are pinned to byte-identical output.
 *
 * To refresh after an intentional change:
 *
 *     CCP_REGOLD=1 ./build/tests/golden_test
 *
 * which rebuilds the traces, re-renders the tables with the batched
 * kernel, and rewrites everything under tests/golden/ (see
 * docs/KERNELS.md).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "predict/evaluator.hh"
#include "sweep/name.hh"
#include "sweep/search.hh"
#include "trace/trace.hh"

#ifndef CCP_GOLDEN_DIR
#error "golden_test requires the CCP_GOLDEN_DIR compile definition"
#endif

namespace {

using namespace ccp;
using predict::FunctionKind;
using predict::IndexSpec;
using predict::SchemeSpec;
using predict::UpdateMode;
using trace::CoherenceEvent;
using trace::SharingTrace;

/** Builder that wires invalidation/last-writer chains automatically. */
class TraceBuilder
{
  public:
    explicit TraceBuilder(const char *name, unsigned n_nodes)
        : trace_(name, n_nodes)
    {
    }

    TraceBuilder &
    writeEvent(NodeId pid, Pc pc, Addr block, std::uint64_t readers)
    {
        CoherenceEvent ev;
        ev.pid = pid;
        ev.pc = pc;
        ev.dir = static_cast<NodeId>(block % trace_.nNodes());
        ev.block = block;
        ev.readers = SharingBitmap(readers);

        auto it = lastOnBlock_.find(block);
        if (it != lastOnBlock_.end()) {
            const CoherenceEvent &prev = trace_.events()[it->second];
            ev.invalidated = prev.readers;
            ev.prevWriterPid = prev.pid;
            ev.prevWriterPc = prev.pc;
            ev.hasPrevWriter = true;
            ev.prevEvent = it->second;
        }
        lastOnBlock_[block] = trace_.append(ev);
        return *this;
    }

    SharingTrace take() { return std::move(trace_); }

  private:
    SharingTrace trace_;
    std::unordered_map<Addr, EventSeq> lastOnBlock_;
};

/** Producer/consumer sharing with two stable groups (48 events). */
SharingTrace
stableTrace()
{
    TraceBuilder b("stable", 16);
    for (int round = 0; round < 8; ++round) {
        b.writeEvent(0, 0x400, 1, 0b0000'0000'0000'0110);
        b.writeEvent(0, 0x404, 2, 0b0000'0000'0011'0000);
        b.writeEvent(1, 0x400, 3, 0b0000'0001'0000'0000);
        b.writeEvent(4, 0x410, 4, 0b1100'0000'0000'0000);
        b.writeEvent(4, 0x414, 1, 0b0000'0000'0000'0110);
        b.writeEvent(7, 0x420, 5, 0b0000'0010'0000'0010);
    }
    return b.take();
}

/** Migratory blocks + alternating writers (64 events). */
SharingTrace
migratoryTrace()
{
    TraceBuilder b("migratory", 16);
    for (int round = 0; round < 8; ++round) {
        // A token migrates 0 -> 1 -> 2 -> 3: the next writer is the
        // only reader of each version.
        for (unsigned hop = 0; hop < 4; ++hop)
            b.writeEvent(static_cast<NodeId>(hop), 0x500 + 4 * hop, 9,
                         std::uint64_t(1) << ((hop + 1) % 4));
        // Two writers alternate on one block with disjoint reader
        // sets (the Figure-3 pathology for direct update).
        b.writeEvent(5, 0x600, 10, 0b0000'0000'0100'0000);
        b.writeEvent(6, 0x604, 10, 0b0000'0000'1000'0000);
        // An unstable block: readers flip every version.
        b.writeEvent(2, 0x608, 11,
                     round % 2 ? 0b0010'0000'0000'0000
                               : 0b0000'0100'0000'0000);
        b.writeEvent(3, 0x60c, 12, 0b1000'0000'0000'1000);
    }
    return b.take();
}

/** The fixed scheme space the golden tables rank (literal, so golden
 *  output never moves under space-enumeration changes). */
std::vector<SchemeSpec>
goldenSpace()
{
    auto idx = [](bool pid, unsigned pc, bool dir, unsigned addr) {
        IndexSpec i;
        i.usePid = pid;
        i.pcBits = pc;
        i.useDir = dir;
        i.addrBits = addr;
        return i;
    };
    const IndexSpec shapes[] = {
        idx(false, 0, false, 6), idx(false, 0, true, 4),
        idx(false, 6, false, 0), idx(true, 4, false, 0),
        idx(true, 4, false, 4),  idx(true, 0, true, 4),
    };
    std::vector<SchemeSpec> space;
    for (FunctionKind kind :
         {FunctionKind::Union, FunctionKind::Inter,
          FunctionKind::OverlapLast, FunctionKind::PAs}) {
        for (unsigned depth : {1u, 2u, 4u}) {
            if (kind == FunctionKind::OverlapLast && depth != 1)
                continue;
            for (const IndexSpec &shape : shapes)
                space.push_back(SchemeSpec{shape, kind, depth});
        }
    }
    // The learned family: each index shape as a hashed-fold perceptron
    // at two depths, with and without the Bloom negative filter.
    for (unsigned depth : {2u, 4u}) {
        for (unsigned bloom : {0u, 16u}) {
            for (const IndexSpec &shape : shapes) {
                IndexSpec hashed = shape;
                hashed.hashed = true;
                SchemeSpec scheme{hashed, FunctionKind::Perceptron,
                                  depth};
                scheme.perc.bloomBits = bloom;
                space.push_back(scheme);
            }
        }
    }
    return space;
}

/**
 * Render the Table-8-style ranked tables for a suite: for each update
 * mode, the top ten by PVP and by sensitivity.  Uses only integer
 * fields and %.6f of correctly-rounded doubles, so the text is
 * platform-stable byte for byte.
 */
std::string
renderTables(const std::vector<SharingTrace> &suite,
             const std::vector<SchemeSpec> &space, unsigned threads,
             sweep::SweepKernel kernel)
{
    std::string out;
    char line[256];
    for (UpdateMode mode :
         {UpdateMode::Direct, UpdateMode::Forwarded,
          UpdateMode::Ordered}) {
        for (sweep::RankBy by :
             {sweep::RankBy::Pvp, sweep::RankBy::Sensitivity}) {
            std::snprintf(line, sizeof line,
                          "top10 by %s, %s update\n",
                          by == sweep::RankBy::Pvp ? "pvp" : "sens",
                          predict::updateModeName(mode));
            out += line;
            out += "rank scheme                          bits"
                   "     prev       pvp      sens\n";
            auto top = sweep::rankSchemes(suite, space, mode, by, 10,
                                          {}, threads, kernel);
            for (std::size_t i = 0; i < top.size(); ++i) {
                const auto &r = top[i].result;
                std::snprintf(
                    line, sizeof line,
                    "%2zu   %-28s %8llu  %.6f  %.6f  %.6f\n", i + 1,
                    sweep::formatScheme(r.scheme).c_str(),
                    static_cast<unsigned long long>(
                        r.scheme.sizeBits(16)),
                    r.avgPrevalence(), r.avgPvp(),
                    r.avgSensitivity());
                out += line;
            }
            out += "\n";
        }
    }
    return out;
}

std::string
goldenPath(const char *file)
{
    return std::string(CCP_GOLDEN_DIR) + "/" + file;
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    std::ostringstream ss;
    ss << is.rdbuf();
    out = ss.str();
    return true;
}

bool
regoldRequested()
{
    const char *v = std::getenv("CCP_REGOLD");
    return v && *v && *v != '0';
}

constexpr const char *kTableFile = "table8.txt";
constexpr const char *kTraceFiles[] = {"stable.trace",
                                       "migratory.trace"};

TEST(Golden, RankedTablesMatchGoldenFileUnderBothKernels)
{
    if (regoldRequested()) {
        auto stable = stableTrace();
        auto migratory = migratoryTrace();
        ASSERT_TRUE(stable.saveFile(goldenPath(kTraceFiles[0])));
        ASSERT_TRUE(migratory.saveFile(goldenPath(kTraceFiles[1])));
        std::vector<SharingTrace> suite;
        suite.push_back(std::move(stable));
        suite.push_back(std::move(migratory));
        std::string text = renderTables(suite, goldenSpace(), 1,
                                        sweep::SweepKernel::Batched);
        std::ofstream os(goldenPath(kTableFile), std::ios::binary);
        ASSERT_TRUE(os.good());
        os << text;
        ASSERT_TRUE(os.good());
        GTEST_SKIP() << "regenerated golden files in "
                     << CCP_GOLDEN_DIR;
    }

    // Fixtures come from disk, so the validated trace-file round trip
    // is in the loop being pinned.
    std::vector<SharingTrace> suite;
    for (const char *file : kTraceFiles) {
        SharingTrace tr;
        ASSERT_TRUE(tr.loadFile(goldenPath(file)))
            << "missing or corrupt " << goldenPath(file)
            << " (regenerate with CCP_REGOLD=1)";
        suite.push_back(std::move(tr));
    }

    std::string golden;
    ASSERT_TRUE(readFile(goldenPath(kTableFile), golden))
        << "missing " << goldenPath(kTableFile)
        << " (regenerate with CCP_REGOLD=1)";

    auto space = goldenSpace();
    EXPECT_EQ(renderTables(suite, space, 1,
                           sweep::SweepKernel::Batched),
              golden)
        << "batched kernel, 1 thread";
    EXPECT_EQ(renderTables(suite, space, 4,
                           sweep::SweepKernel::Batched),
              golden)
        << "batched kernel, 4 threads";
    EXPECT_EQ(renderTables(suite, space, 1,
                           sweep::SweepKernel::Reference),
              golden)
        << "reference kernel, 1 thread";
    EXPECT_EQ(renderTables(suite, space, 4,
                           sweep::SweepKernel::Reference),
              golden)
        << "reference kernel, 4 threads";
}

TEST(Golden, CheckedInTracesMatchTheirBuilders)
{
    if (regoldRequested())
        GTEST_SKIP() << "regold run";
    // The golden traces must stay exactly what the builders above
    // produce — otherwise a regold would silently change fixtures.
    const SharingTrace built[] = {stableTrace(), migratoryTrace()};
    for (std::size_t i = 0; i < 2; ++i) {
        SharingTrace loaded;
        ASSERT_TRUE(loaded.loadFile(goldenPath(kTraceFiles[i])));
        EXPECT_EQ(loaded.name(), built[i].name());
        ASSERT_EQ(loaded.nNodes(), built[i].nNodes());
        ASSERT_EQ(loaded.events().size(), built[i].events().size());
        for (std::size_t e = 0; e < built[i].events().size(); ++e) {
            const auto &a = loaded.events()[e];
            const auto &b = built[i].events()[e];
            EXPECT_EQ(a.pid, b.pid) << "event " << e;
            EXPECT_EQ(a.pc, b.pc) << "event " << e;
            EXPECT_EQ(a.block, b.block) << "event " << e;
            EXPECT_EQ(a.readers.raw(), b.readers.raw())
                << "event " << e;
            EXPECT_EQ(a.invalidated.raw(), b.invalidated.raw())
                << "event " << e;
            EXPECT_EQ(a.hasPrevWriter, b.hasPrevWriter)
                << "event " << e;
        }
    }
}

} // namespace
