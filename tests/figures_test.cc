/**
 * @file
 * Tests for the figure label series (Figures 6-8 x-axes).
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hh"
#include "sweep/figures.hh"

namespace {

using namespace ccp;
using predict::FunctionKind;
using predict::IndexSpec;
using predict::UpdateMode;
using sweep::evaluateFigure;
using sweep::figureIndexSeries12;
using sweep::figureIndexSeries16;
using sweep::figureLabel;

TEST(Figures, SixteenPositionsEach)
{
    EXPECT_EQ(figureIndexSeries16().size(), 16u);
    EXPECT_EQ(figureIndexSeries12().size(), 16u);
}

TEST(Figures, SeriesRespectsMaxIndexWidth)
{
    for (const auto &idx : figureIndexSeries16())
        EXPECT_LE(idx.indexBits(4), 16u) << figureLabel(idx);
    for (const auto &idx : figureIndexSeries12())
        EXPECT_LE(idx.indexBits(4), 12u) << figureLabel(idx);
}

TEST(Figures, SeriesCoversAllSixteenTableOneClasses)
{
    // Each series walks through every combination of present/absent
    // fields exactly once (Table 1's sixteen cases).
    for (auto series : {figureIndexSeries16(), figureIndexSeries12()}) {
        std::set<unsigned> cases;
        for (const auto &idx : series)
            cases.insert(idx.tableOneCase());
        EXPECT_EQ(cases.size(), 16u);
    }
}

TEST(Figures, FirstPositionIsUnindexed)
{
    EXPECT_EQ(figureIndexSeries16().front(), IndexSpec{});
    EXPECT_EQ(figureIndexSeries12().front(), IndexSpec{});
}

TEST(Figures, LabelRendering)
{
    IndexSpec idx{true, 8, true, 0};
    EXPECT_EQ(figureLabel(idx), "-/Y/8/Y");
    EXPECT_EQ(figureLabel(IndexSpec{}), "-/-/-/-");
    IndexSpec a{false, 0, false, 12};
    EXPECT_EQ(figureLabel(a), "12/-/-/-");
}

TEST(Figures, EvaluateProducesPointPerPosition)
{
    // A small synthetic trace; per-position values must be metrics in
    // [0,1] and labels must match the series.
    trace::SharingTrace tr("t", 16);
    Rng rng(3);
    trace::CoherenceEvent prev[16];
    bool seen[16] = {};
    for (int i = 0; i < 400; ++i) {
        unsigned k = static_cast<unsigned>(rng.below(16));
        trace::CoherenceEvent ev;
        ev.pid = k;
        ev.pc = 0x400 + 4 * k;
        ev.block = k;
        ev.dir = k;
        ev.readers = SharingBitmap::single((k + 1) % 16);
        if (seen[k]) {
            ev.invalidated = prev[k].readers;
            ev.prevWriterPid = prev[k].pid;
            ev.prevWriterPc = prev[k].pc;
            ev.hasPrevWriter = true;
        }
        seen[k] = true;
        prev[k] = ev;
        tr.append(ev);
    }
    std::vector<trace::SharingTrace> suite;
    suite.push_back(std::move(tr));

    auto points = evaluateFigure(suite, figureIndexSeries16(),
                                 FunctionKind::Union, 2,
                                 UpdateMode::Direct);
    ASSERT_EQ(points.size(), 16u);
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(points[i].label,
                  figureLabel(figureIndexSeries16()[i]));
        EXPECT_GE(points[i].sensitivity, 0.0);
        EXPECT_LE(points[i].sensitivity, 1.0);
        EXPECT_GE(points[i].pvp, 0.0);
        EXPECT_LE(points[i].pvp, 1.0);
    }
    // On this perfectly-stable trace, any writer-identifying index
    // must beat the unindexed predictor.
    EXPECT_GT(points[8].pvp, points[0].pvp); // pid-only vs none
}

} // namespace
