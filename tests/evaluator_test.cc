/**
 * @file
 * Tests for the evaluator's three update pipelines, including the
 * paper's worked scenarios (Figures 2-4) and the equivalence property
 * of pure address-based schemes.
 */

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "common/rng.hh"
#include "predict/evaluator.hh"

namespace {

using namespace ccp;
using predict::Confusion;
using predict::evaluateSuite;
using predict::evaluateTrace;
using predict::FunctionKind;
using predict::IndexSpec;
using predict::SchemeSpec;
using predict::UpdateMode;
using trace::CoherenceEvent;
using trace::SharingTrace;

/** Builder that wires invalidation/last-writer chains automatically. */
class TraceBuilder
{
  public:
    explicit TraceBuilder(unsigned n_nodes = 16)
        : trace_("built", n_nodes)
    {
    }

    /** Append a write event; @p readers is the eventual outcome. */
    TraceBuilder &
    writeEvent(NodeId pid, Pc pc, Addr block, std::uint64_t readers)
    {
        CoherenceEvent ev;
        ev.pid = pid;
        ev.pc = pc;
        ev.dir = static_cast<NodeId>(block % trace_.nNodes());
        ev.block = block;
        ev.readers = SharingBitmap(readers);

        auto it = lastOnBlock_.find(block);
        if (it != lastOnBlock_.end()) {
            const CoherenceEvent &prev = trace_.events()[it->second];
            ev.invalidated = prev.readers;
            ev.prevWriterPid = prev.pid;
            ev.prevWriterPc = prev.pc;
            ev.hasPrevWriter = true;
            ev.prevEvent = it->second;
        }
        lastOnBlock_[block] = trace_.append(ev);
        return *this;
    }

    SharingTrace take() { return std::move(trace_); }

  private:
    SharingTrace trace_;
    std::unordered_map<Addr, EventSeq> lastOnBlock_;
};

SchemeSpec
scheme(FunctionKind kind, unsigned depth, IndexSpec idx)
{
    return SchemeSpec{idx, kind, depth};
}

IndexSpec
addrOnly(unsigned bits)
{
    IndexSpec idx;
    idx.addrBits = bits;
    return idx;
}

IndexSpec
pcOnly(unsigned bits)
{
    IndexSpec idx;
    idx.pcBits = bits;
    return idx;
}

TEST(Evaluator, StableProducerConsumerLearnsAfterOneEvent)
{
    // Figure 2: one writer repeatedly invalidates its own readers.
    TraceBuilder b;
    for (int i = 0; i < 4; ++i)
        b.writeEvent(0, 0x400, 7, 0b0100);
    auto tr = b.take();

    Confusion c = evaluateTrace(
        tr, scheme(FunctionKind::Union, 1, addrOnly(8)),
        UpdateMode::Direct);
    // Event 0 is a cold miss (FN for node 2); events 1-3 are TPs.
    EXPECT_EQ(c.tp, 3u);
    EXPECT_EQ(c.fn, 1u);
    EXPECT_EQ(c.fp, 0u);
    EXPECT_EQ(c.decisions(), 4u * 16u);
}

TEST(Evaluator, AlternatingWritersConfuseDirectButNotForwarded)
{
    // Figure 3: writers A (node 0) and B (node 1) alternate on one
    // block; A's readers are {2}, B's readers are {3}.  Under
    // instruction indexing, direct update feeds A's entry with B's
    // history and vice versa; forwarded update attributes correctly.
    TraceBuilder b;
    for (int i = 0; i < 10; ++i) {
        b.writeEvent(0, 0x400, 7, 0b0100); // A -> reader 2
        b.writeEvent(1, 0x500, 7, 0b1000); // B -> reader 3
    }
    auto tr = b.take();
    auto sch = scheme(FunctionKind::Union, 1, pcOnly(8));

    Confusion direct = evaluateTrace(tr, sch, UpdateMode::Direct);
    Confusion fwd = evaluateTrace(tr, sch, UpdateMode::Forwarded);

    // Direct: every warmed-up prediction uses the *other* writer's
    // readers: all false.
    EXPECT_EQ(direct.tp, 0u);
    EXPECT_GT(direct.fp, 0u);
    // Forwarded: after one round both entries are correct.
    EXPECT_EQ(fwd.tp, 18u);
    EXPECT_EQ(fwd.fp, 0u);
    EXPECT_EQ(fwd.fn, 2u); // the two cold events
}

TEST(Evaluator, OrderedBeatsForwardedAcrossBlocks)
{
    // Figure 4: writer A writes X then Y before X's invalidation
    // feedback exists.  Ordered update lets Y's prediction see X's
    // outcome; forwarded update cannot.
    TraceBuilder b;
    b.writeEvent(0, 0x400, /*X=*/1, 0b0010);
    b.writeEvent(0, 0x400, /*Y=*/2, 0b0010);
    auto tr = b.take();
    auto sch = scheme(FunctionKind::Union, 1, pcOnly(8));

    Confusion fwd = evaluateTrace(tr, sch, UpdateMode::Forwarded);
    Confusion ord = evaluateTrace(tr, sch, UpdateMode::Ordered);

    EXPECT_EQ(fwd.tp, 0u); // no feedback ever arrived
    EXPECT_EQ(fwd.fn, 2u);
    EXPECT_EQ(ord.tp, 1u); // Y's prediction knew X's readers
    EXPECT_EQ(ord.fn, 1u);
}

TEST(Evaluator, InterDemandsStabilityUnionDoesNot)
{
    // Readers alternate between {2} and {2,3}: intersection predicts
    // only the stable reader 2; union predicts both.
    TraceBuilder b;
    for (int i = 0; i < 10; ++i)
        b.writeEvent(0, 0x400, 7, i % 2 ? 0b1100 : 0b0100);
    auto tr = b.take();

    Confusion inter = evaluateTrace(
        tr, scheme(FunctionKind::Inter, 2, addrOnly(8)),
        UpdateMode::Direct);
    Confusion uni = evaluateTrace(
        tr, scheme(FunctionKind::Union, 2, addrOnly(8)),
        UpdateMode::Direct);

    // Union finds every sharing event after warmup but wastes half
    // its extra predictions; inter never wastes but misses node 3.
    EXPECT_EQ(inter.fp, 0u);
    EXPECT_LT(inter.sensitivity(), uni.sensitivity());
    EXPECT_GT(inter.pvp(), uni.pvp());
}

TEST(Evaluator, UnionDominatesInterInPredictedPositives)
{
    // Property: on any trace, union(d) predicts a superset of
    // inter(d) per event, so TP and FP are both >=.
    Rng rng(99);
    TraceBuilder b;
    for (int i = 0; i < 400; ++i)
        b.writeEvent(static_cast<NodeId>(rng.below(16)),
                     0x400 + 4 * rng.below(8), rng.below(32),
                     rng() & 0xffff);
    auto tr = b.take();

    for (auto mode : {UpdateMode::Direct, UpdateMode::Forwarded,
                      UpdateMode::Ordered}) {
        Confusion uni = evaluateTrace(
            tr, scheme(FunctionKind::Union, 3, addrOnly(5)), mode);
        Confusion inter = evaluateTrace(
            tr, scheme(FunctionKind::Inter, 3, addrOnly(5)), mode);
        EXPECT_GE(uni.tp, inter.tp);
        EXPECT_GE(uni.fp, inter.fp);
    }
}

TEST(Evaluator, AddressSchemesImmuneToUpdateMode)
{
    // Paper section 3.4: for pure address-based schemes (full-width
    // dir/addr indexing) direct == forwarded == ordered.
    Rng rng(7);
    TraceBuilder b;
    for (int i = 0; i < 1000; ++i)
        b.writeEvent(static_cast<NodeId>(rng.below(16)),
                     0x400 + 4 * rng.below(64), rng.below(64),
                     rng() & 0xffff);
    auto tr = b.take();

    for (auto kind : {FunctionKind::Union, FunctionKind::Inter,
                      FunctionKind::PAs}) {
        for (unsigned depth : {1u, 2u, 4u}) {
            if (kind == FunctionKind::Inter && depth == 1)
                continue;
            auto sch = scheme(kind, depth, addrOnly(6));
            Confusion d = evaluateTrace(tr, sch, UpdateMode::Direct);
            Confusion f = evaluateTrace(tr, sch, UpdateMode::Forwarded);
            Confusion o = evaluateTrace(tr, sch, UpdateMode::Ordered);
            EXPECT_EQ(d, f) << "kind/depth " << int(kind) << "/"
                            << depth;
            EXPECT_EQ(d, o) << "kind/depth " << int(kind) << "/"
                            << depth;
        }
    }
}

TEST(Evaluator, LastEqualsDepthOneWindows)
{
    Rng rng(13);
    TraceBuilder b;
    for (int i = 0; i < 500; ++i)
        b.writeEvent(static_cast<NodeId>(rng.below(16)),
                     0x400 + 4 * rng.below(16), rng.below(16),
                     rng() & 0xffff);
    auto tr = b.take();

    IndexSpec idx{true, 4, false, 0};
    Confusion u1 = evaluateTrace(tr, scheme(FunctionKind::Union, 1, idx),
                                 UpdateMode::Direct);
    Confusion i1 = evaluateTrace(tr, scheme(FunctionKind::Inter, 1, idx),
                                 UpdateMode::Direct);
    EXPECT_EQ(u1, i1);
}

TEST(Evaluator, OrderedIsDeterministicAndRepeatable)
{
    Rng rng(21);
    TraceBuilder b;
    for (int i = 0; i < 300; ++i)
        b.writeEvent(static_cast<NodeId>(rng.below(16)), 0x400,
                     rng.below(8), rng() & 0xffff);
    auto tr = b.take();
    auto sch = scheme(FunctionKind::PAs, 2, addrOnly(3));
    Confusion a = evaluateTrace(tr, sch, UpdateMode::Ordered);
    Confusion c = evaluateTrace(tr, sch, UpdateMode::Ordered);
    EXPECT_EQ(a, c);
}

TEST(Evaluator, SuiteAveragesPerTraceMetrics)
{
    // Two traces with very different prevalence: the suite average is
    // the arithmetic mean of the per-trace ratios (paper section 5.4),
    // not the pooled ratio.
    TraceBuilder b1;
    for (int i = 0; i < 10; ++i)
        b1.writeEvent(0, 0x400, 1, 0b0010);
    TraceBuilder b2;
    for (int i = 0; i < 1000; ++i)
        b2.writeEvent(0, 0x400, 1, 0xfffe);

    std::vector<SharingTrace> suite;
    suite.push_back(b1.take());
    suite.push_back(b2.take());

    auto res = evaluateSuite(
        suite, scheme(FunctionKind::Union, 1, addrOnly(8)),
        UpdateMode::Direct);
    ASSERT_EQ(res.perTrace.size(), 2u);
    double expect_prev = (res.perTrace[0].confusion.prevalence() +
                          res.perTrace[1].confusion.prevalence()) /
                         2.0;
    EXPECT_DOUBLE_EQ(res.avgPrevalence(), expect_prev);
    // Pooled prevalence is dominated by the big trace and differs.
    EXPECT_NE(res.pooled.prevalence(), res.avgPrevalence());
}

TEST(Evaluator, SchemeSizeBitsAgreesWithTable)
{
    auto sch = scheme(FunctionKind::Inter, 4, addrOnly(6));
    EXPECT_EQ(sch.sizeBits(16), sch.makeTable(16).sizeBits());
}

TEST(Evaluator, UpdateModeNames)
{
    EXPECT_STREQ(predict::updateModeName(UpdateMode::Direct), "direct");
    EXPECT_STREQ(predict::updateModeName(UpdateMode::Forwarded),
                 "forwarded");
    EXPECT_STREQ(predict::updateModeName(UpdateMode::Ordered),
                 "ordered");
}

} // namespace

namespace {

using predict::orderedFeedback;

TEST(OrderedFeedback, DeliversTheSuccessorsInvalidationSet)
{
    TraceBuilder b;
    b.writeEvent(0, 0x400, 1, 0b0110); // e0: readers {1,2}
    b.writeEvent(1, 0x404, 1, 0b0100); // e1 by node 1 (an old reader)
    b.writeEvent(2, 0x408, 1, 0);      // e2
    auto tr = b.take();

    auto fb = orderedFeedback(tr);
    ASSERT_EQ(fb.size(), 3u);
    // e0's feedback is what e1 observed as invalidated (the builder
    // chains readers verbatim).
    EXPECT_EQ(fb[0].raw(), tr.events()[1].invalidated.raw());
    EXPECT_EQ(fb[1].raw(), tr.events()[2].invalidated.raw());
    // The final version never dies: full reader set.
    EXPECT_EQ(fb[2].raw(), tr.events()[2].readers.raw());
}

TEST(OrderedFeedback, IndependentBlocksChainIndependently)
{
    TraceBuilder b;
    b.writeEvent(0, 0x400, /*block*/ 1, 0b0010);
    b.writeEvent(0, 0x400, /*block*/ 2, 0b0100);
    b.writeEvent(0, 0x400, /*block*/ 1, 0b1000);
    auto tr = b.take();
    auto fb = orderedFeedback(tr);
    EXPECT_EQ(fb[0].raw(), tr.events()[2].invalidated.raw());
    EXPECT_EQ(fb[1].raw(), 0b0100u); // block 2 never rewritten
    EXPECT_EQ(fb[2].raw(), 0b1000u); // block 1's last version
}

TEST(Evaluator, OverlapLastFiltersUnstableEntries)
{
    // Alternating disjoint reader sets: last predicts (and misses)
    // every time; overlap-last abstains entirely.
    TraceBuilder b;
    for (int i = 0; i < 20; ++i)
        b.writeEvent(0, 0x400, 7, i % 2 ? 0b0010 : 0b0100);
    auto tr = b.take();

    IndexSpec idx = addrOnly(8);
    Confusion last = evaluateTrace(
        tr, scheme(FunctionKind::Union, 1, idx), UpdateMode::Direct);
    Confusion overlap = evaluateTrace(
        tr, scheme(FunctionKind::OverlapLast, 1, idx),
        UpdateMode::Direct);

    EXPECT_GT(last.fp, 0u);
    EXPECT_EQ(overlap.fp, 0u);
    EXPECT_GE(overlap.pvp(), last.pvp());
}

TEST(Evaluator, OverlapLastMatchesLastOnStableSharing)
{
    TraceBuilder b;
    for (int i = 0; i < 20; ++i)
        b.writeEvent(0, 0x400, 7, 0b0110);
    auto tr = b.take();
    IndexSpec idx = addrOnly(8);
    Confusion last = evaluateTrace(
        tr, scheme(FunctionKind::Union, 1, idx), UpdateMode::Direct);
    Confusion overlap = evaluateTrace(
        tr, scheme(FunctionKind::OverlapLast, 1, idx),
        UpdateMode::Direct);
    // One extra cold event for overlap-last (it needs two
    // observations before its first prediction): two reader bits.
    EXPECT_EQ(overlap.tp + 2, last.tp);
    EXPECT_EQ(overlap.fp, last.fp);
}

} // namespace
