/**
 * @file
 * Tests for PredictorTable: entry selection, aliasing, cost model.
 */

#include <gtest/gtest.h>

#include <memory>

#include "predict/table.hh"

namespace {

using namespace ccp;
using predict::FunctionKind;
using predict::IndexSpec;
using predict::makeFunction;
using predict::PredictorTable;

PredictorTable
makeTable(const IndexSpec &idx, FunctionKind kind, unsigned depth,
          unsigned n_nodes = 16)
{
    return PredictorTable(idx, makeFunction(kind, depth, n_nodes),
                          n_nodes);
}

TEST(PredictorTable, EntriesArePowerOfIndexBits)
{
    auto t = makeTable({true, 8, false, 0}, FunctionKind::Union, 1);
    EXPECT_EQ(t.entries(), 1ull << 12);
    auto single = makeTable({}, FunctionKind::Union, 1);
    EXPECT_EQ(single.entries(), 1u);
}

TEST(PredictorTable, SeparateEntriesLearnSeparately)
{
    auto t = makeTable({true, 0, false, 0}, FunctionKind::Union, 1);
    t.update(0, 0, 0, 0, SharingBitmap(0b01));
    t.update(1, 0, 0, 0, SharingBitmap(0b10));
    EXPECT_EQ(t.predict(0, 0, 0, 0).raw(), 0b01u);
    EXPECT_EQ(t.predict(1, 0, 0, 0).raw(), 0b10u);
}

TEST(PredictorTable, IgnoredFieldsDoNotSplitEntries)
{
    auto t = makeTable({true, 0, false, 0}, FunctionKind::Union, 1);
    t.update(2, 0x400, 3, 111, SharingBitmap(0b100));
    // Same pid, wildly different pc/dir/addr: same entry.
    EXPECT_EQ(t.predict(2, 0x999, 9, 42).raw(), 0b100u);
}

TEST(PredictorTable, TruncatedFieldsAlias)
{
    IndexSpec idx;
    idx.addrBits = 2;
    auto t = makeTable(idx, FunctionKind::Union, 1);
    t.update(0, 0, 0, /*block=*/1, SharingBitmap(0b11));
    // Block 5 aliases block 1 under 2 addr bits.
    EXPECT_EQ(t.predict(0, 0, 0, 5).raw(), 0b11u);
    // Block 2 does not.
    EXPECT_TRUE(t.predict(0, 0, 0, 2).empty());
}

TEST(PredictorTable, ClearResetsState)
{
    auto t = makeTable({}, FunctionKind::Union, 2);
    t.update(0, 0, 0, 0, SharingBitmap(0xff));
    EXPECT_FALSE(t.predict(0, 0, 0, 0).empty());
    t.clear();
    EXPECT_TRUE(t.predict(0, 0, 0, 0).empty());
}

TEST(PredictorTable, SizeBitsMatchesPaperExamples)
{
    // Table 7: last(pid+pc8)1 has size 2^16 bits.
    auto kax_last = makeTable({true, 8, false, 0},
                              FunctionKind::Union, 1);
    EXPECT_EQ(kax_last.sizeBits(), 1ull << 16);
    EXPECT_DOUBLE_EQ(kax_last.log2SizeBits(), 16.0);

    // Table 7: inter(pid+pc8)2 has size 2^17 bits.
    auto kax_inter = makeTable({true, 8, false, 0},
                               FunctionKind::Inter, 2);
    EXPECT_DOUBLE_EQ(kax_inter.log2SizeBits(), 17.0);

    // Table 8: inter(pid+add6)4 has size 2^16 bits.
    IndexSpec t8{true, 0, false, 6};
    auto top = makeTable(t8, FunctionKind::Inter, 4);
    EXPECT_DOUBLE_EQ(top.log2SizeBits(), 16.0);

    // Table 10: union(dir+add2)4 has size 2^12 bits.
    IndexSpec t10{false, 0, true, 2};
    auto cheap = makeTable(t10, FunctionKind::Union, 4);
    EXPECT_DOUBLE_EQ(cheap.log2SizeBits(), 12.0);
}

TEST(PredictorTable, PasCostCountsHistoriesAndCounters)
{
    IndexSpec idx{true, 0, false, 0}; // 4 index bits
    auto t = makeTable(idx, FunctionKind::PAs, 4);
    // 16 entries x 16 nodes x (4 + 2*16) bits.
    EXPECT_EQ(t.sizeBits(), 16ull * 16 * 36);
}

TEST(PredictorTable, SmallerMachinesShrinkNodeFields)
{
    auto t = makeTable({true, 0, true, 0}, FunctionKind::Union, 1, 4);
    EXPECT_EQ(t.nodeBits(), 2u);
    EXPECT_EQ(t.entries(), 16u);
    t.update(3, 0, 2, 0, SharingBitmap(0b1));
    EXPECT_EQ(t.predict(3, 0, 2, 0).raw(), 0b1u);
    EXPECT_TRUE(t.predict(3, 0, 1, 0).empty());
}

TEST(PredictorTable, OversizedIndexDies)
{
    IndexSpec idx;
    idx.addrBits = 40;
    EXPECT_DEATH(makeTable(idx, FunctionKind::Union, 1),
                 "index too wide");
}

TEST(PredictorTable, PAsAndWindowCoexistOnSameSpec)
{
    IndexSpec idx{false, 4, false, 4};
    auto w = makeTable(idx, FunctionKind::Union, 2);
    auto p = makeTable(idx, FunctionKind::PAs, 2);
    EXPECT_EQ(w.entries(), p.entries());
    EXPECT_NE(w.sizeBits(), p.sizeBits());
}

} // namespace
