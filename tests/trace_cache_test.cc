/**
 * @file
 * Tests for the shared on-disk trace cache: atomic saveFile() under
 * concurrent writers and readers, config-hashed cache keys, and the
 * cold/warm/corrupt-recovery cycle of loadOrGenerateSuite().
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "../bench/bench_util.hh"
#include "obs/registry.hh"
#include "trace/format.hh"
#include "trace/trace.hh"

namespace {

namespace fs = std::filesystem;
using namespace ccp;
using trace::CoherenceEvent;
using trace::SharingTrace;

SharingTrace
makeTrace(std::size_t n_events)
{
    SharingTrace tr("conc", 16);
    for (std::size_t i = 0; i < n_events; ++i) {
        CoherenceEvent ev;
        ev.pid = i % 16;
        ev.dir = (i / 16) % 16;
        ev.pc = 0x400 + 4 * (i % 32);
        ev.block = i % 1024;
        ev.readers = SharingBitmap((i * 2654435761u) & 0xffff);
        tr.append(ev);
    }
    return tr;
}

fs::path
freshDir(const char *leaf)
{
    fs::path dir = fs::path(::testing::TempDir()) / leaf;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

/**
 * The acceptance scenario: concurrent generators of the same cache
 * entry (as separate bench processes would be) racing concurrent
 * loaders.  With atomic temp-file + rename() writes, a loader may
 * find the file missing before the first save lands, but must never
 * load a torn file and must never fail once a save has completed.
 */
TEST(TraceCache, ConcurrentSaveAndLoadNeverObservesPartialFile)
{
    const fs::path dir = freshDir("ccp_cache_conc");
    const std::string path = (dir / "w.trace").string();
    const SharingTrace tr = makeTrace(2000);

    std::atomic<bool> first_saved{false};
    std::atomic<bool> done{false};
    std::atomic<int> save_failures{0};
    std::atomic<int> torn_loads{0};
    std::atomic<int> missed_loads{0};
    std::atomic<int> good_loads{0};

    std::vector<std::thread> writers;
    for (int w = 0; w < 4; ++w)
        writers.emplace_back([&] {
            for (int i = 0; i < 25; ++i) {
                if (!tr.saveFile(path))
                    ++save_failures;
                else
                    first_saved.store(true);
            }
        });

    std::vector<std::thread> readers;
    for (int r = 0; r < 4; ++r)
        readers.emplace_back([&] {
            while (!done.load()) {
                const bool must_succeed = first_saved.load();
                SharingTrace got;
                if (got.loadFile(path)) {
                    if (got.events().size() != 2000 ||
                        got.nNodes() != 16)
                        ++torn_loads;
                    else
                        ++good_loads;
                } else if (must_succeed) {
                    ++missed_loads;
                }
            }
        });

    for (auto &t : writers)
        t.join();
    done.store(true);
    for (auto &t : readers)
        t.join();

    EXPECT_EQ(save_failures.load(), 0);
    EXPECT_EQ(torn_loads.load(), 0);
    EXPECT_EQ(missed_loads.load(), 0);
    EXPECT_GT(good_loads.load(), 0);

    // No temp files may linger: exactly the renamed-into-place file.
    std::size_t entries = 0;
    for (const auto &e : fs::directory_iterator(dir)) {
        ++entries;
        EXPECT_EQ(e.path().filename().string(), "w.trace");
    }
    EXPECT_EQ(entries, 1u);
    fs::remove_all(dir);
}

TEST(TraceCache, FailedSaveLeavesNoPartialFile)
{
    const fs::path dir = freshDir("ccp_cache_fail");
    const std::string path =
        (dir / "missing_subdir" / "x.trace").string();
    EXPECT_FALSE(makeTrace(3).saveFile(path));
    // An unsavable trace (bad node count) must also clean up.
    const std::string path2 = (dir / "y.trace").string();
    EXPECT_FALSE(SharingTrace("bad", 0).saveFile(path2));
    EXPECT_TRUE(fs::is_empty(dir));
    fs::remove_all(dir);
}

TEST(TraceCache, CacheKeyTracksEveryParameter)
{
    const std::string base =
        benchutil::traceCachePath("d", "barnes", 0x5eed, 1.0);
    EXPECT_NE(base,
              benchutil::traceCachePath("d", "barnes", 0x5eee, 1.0));
    EXPECT_NE(base,
              benchutil::traceCachePath("d", "barnes", 0x5eed, 0.5));
    EXPECT_NE(base,
              benchutil::traceCachePath("d", "ocean", 0x5eed, 1.0));
    // Deterministic: same parameters, same key.
    EXPECT_EQ(base,
              benchutil::traceCachePath("d", "barnes", 0x5eed, 1.0));
}

std::uint64_t
counterValue(const obs::StatsRegistry &reg, const std::string &path)
{
    const auto *c = reg.findCounter(path);
    return c ? c->value : 0;
}

void
expectIdenticalTraces(const SharingTrace &a, const SharingTrace &b)
{
    EXPECT_EQ(a.name(), b.name());
    EXPECT_EQ(a.nNodes(), b.nNodes());
    const auto ma = trace::packMeta(a.meta());
    const auto mb = trace::packMeta(b.meta());
    EXPECT_EQ(ma, mb);
    ASSERT_EQ(a.events().size(), b.events().size());
    for (std::size_t i = 0; i < a.events().size(); ++i) {
        const auto pa = trace::packEvent(a.events()[i]);
        const auto pb = trace::packEvent(b.events()[i]);
        ASSERT_EQ(std::memcmp(&pa, &pb, sizeof(pa)), 0)
            << a.name() << " event " << i;
    }
    EXPECT_EQ(a.sharingEvents(), b.sharingEvents());
    EXPECT_EQ(a.prevalence(), b.prevalence());
}

/**
 * Cold generate, warm load, corrupt-recover: the full life cycle of
 * the shared suite cache, with the bench.traces_* counters asserted
 * at each step and the loaded suites byte-equivalent throughout.
 */
TEST(TraceCache, SuiteColdWarmCorruptCycle)
{
    const fs::path dir = freshDir("ccp_cache_suite");
    ::setenv("CCP_TRACE_DIR", dir.c_str(), 1);
    ::setenv("CCP_SCALE", "0.02", 1);
    ::setenv("CCP_SEED", "0x5eed", 1);

    auto &reg = obs::StatsRegistry::root();

    reg.clear();
    const auto cold = benchutil::loadOrGenerateSuite();
    ASSERT_EQ(cold.size(), 7u);
    EXPECT_EQ(counterValue(reg, "bench.traces_generated"), 7u);
    EXPECT_EQ(counterValue(reg, "bench.traces_cached"), 0u);

    reg.clear();
    const auto warm = benchutil::loadOrGenerateSuite();
    ASSERT_EQ(warm.size(), 7u);
    EXPECT_EQ(counterValue(reg, "bench.traces_cached"), 7u);
    EXPECT_EQ(counterValue(reg, "bench.traces_generated"), 0u);
    for (std::size_t i = 0; i < 7; ++i)
        expectIdenticalTraces(warm[i], cold[i]);

    // Acceptance: on every suite workload, the mmap read path yields
    // a SharingTrace identical to the stream read path — events,
    // meta, and derived stats.
    for (const auto &e : fs::directory_iterator(dir)) {
        SharingTrace via_stream, via_map;
        ASSERT_TRUE(via_stream.loadFileStream(e.path().string()));
        ASSERT_TRUE(via_map.loadFileMapped(e.path().string()));
        expectIdenticalTraces(via_map, via_stream);
    }

    // Corrupt one cached file: it must be rejected, deleted, and
    // regenerated — and the regenerated suite must be identical.
    fs::path victim;
    for (const auto &e : fs::directory_iterator(dir))
        if (e.path().filename().string().rfind("barnes_", 0) == 0)
            victim = e.path();
    ASSERT_FALSE(victim.empty());
    {
        std::fstream f(victim,
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekg(100);
        char b = 0;
        f.read(&b, 1);
        f.seekp(100);
        b = static_cast<char>(b ^ 0x10);
        f.write(&b, 1);
    }

    reg.clear();
    const auto healed = benchutil::loadOrGenerateSuite();
    ASSERT_EQ(healed.size(), 7u);
    EXPECT_EQ(counterValue(reg, "bench.traces_corrupt_rejected"), 1u);
    EXPECT_EQ(counterValue(reg, "bench.traces_cached"), 6u);
    EXPECT_EQ(counterValue(reg, "bench.traces_generated"), 1u);
    for (std::size_t i = 0; i < 7; ++i) {
        EXPECT_EQ(healed[i].storeMisses(), cold[i].storeMisses());
        EXPECT_EQ(healed[i].sharingEvents(),
                  cold[i].sharingEvents());
    }

    reg.clear();
    ::unsetenv("CCP_TRACE_DIR");
    ::unsetenv("CCP_SCALE");
    ::unsetenv("CCP_SEED");
    fs::remove_all(dir);
}

#if defined(__linux__)

/** Open descriptors of this process (the /proc/self/fd listing; the
 *  iterator's own fd inflates every call equally so deltas are
 *  exact). */
std::size_t
countOpenFds()
{
    std::size_t n = 0;
    for (const auto &e : fs::directory_iterator("/proc/self/fd")) {
        (void)e;
        ++n;
    }
    return n;
}

/**
 * The mmap loader's error paths must not leak descriptors or
 * mappings: a cache stuck in a reject+regenerate loop (flaky disk,
 * repeated corruption) calls them thousands of times per run.  Every
 * reject flavour — checksum mismatch, short file, truncated payload —
 * plus the success path is cycled; the process fd count must come
 * back to baseline each time.
 */
TEST(TraceCache, MappedLoadRejectLoopKeepsFdCountStable)
{
    const fs::path dir = freshDir("ccp_cache_fds");
    const std::string path = (dir / "fd.trace").string();
    const SharingTrace tr = makeTrace(500);
    ASSERT_TRUE(tr.saveFile(path));
    const auto valid_size = fs::file_size(path);

    // Warm up lazily created descriptors (logging, locale) before
    // taking the baseline.
    {
        SharingTrace warm;
        ASSERT_TRUE(warm.loadFileMapped(path));
    }
    const std::size_t baseline = countOpenFds();

    for (int cycle = 0; cycle < 32; ++cycle) {
        // Checksum reject: flip one payload byte.
        {
            std::fstream f(path, std::ios::in | std::ios::out |
                                     std::ios::binary);
            f.seekg(200);
            char b = 0;
            f.read(&b, 1);
            f.seekp(200);
            b = static_cast<char>(b ^ 0x40);
            f.write(&b, 1);
        }
        SharingTrace rejected;
        EXPECT_FALSE(rejected.loadFileMapped(path));

        // Short-file reject: truncate below the header size.
        fs::resize_file(path, 8);
        SharingTrace trunc;
        EXPECT_FALSE(trunc.loadFileMapped(path));

        // Truncated-payload reject: header intact, payload cut.
        ASSERT_TRUE(tr.saveFile(path));
        fs::resize_file(path, valid_size - 16);
        SharingTrace torn;
        EXPECT_FALSE(torn.loadFileMapped(path));

        // Regenerate: the loop's recovery step must succeed again.
        ASSERT_TRUE(tr.saveFile(path));
        SharingTrace healed;
        EXPECT_TRUE(healed.loadFileMapped(path));

        EXPECT_EQ(countOpenFds(), baseline) << "cycle " << cycle;
    }

    fs::remove_all(dir);
}

#endif // __linux__

} // namespace
