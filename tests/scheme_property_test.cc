/**
 * @file
 * Parameterized property sweeps over the scheme space on a real
 * (small-scale) workload trace: conservation and range invariants
 * that every scheme/update-mode combination must satisfy, plus
 * notation round-trips for the whole enumerated space.
 */

#include <gtest/gtest.h>

#include <memory>

#include "predict/evaluator.hh"
#include "sweep/name.hh"
#include "sweep/space.hh"
#include "workloads/registry.hh"

namespace {

using namespace ccp;
using predict::Confusion;
using predict::evaluateTrace;
using predict::FunctionKind;
using predict::SchemeSpec;
using predict::UpdateMode;

/** One shared small trace (mp3d at tiny scale: all pattern types). */
const trace::SharingTrace &
sharedTrace()
{
    static const trace::SharingTrace tr = [] {
        workloads::WorkloadParams params;
        params.seed = 31;
        params.scale = 0.05;
        return workloads::generateTrace("mp3d", params);
    }();
    return tr;
}

struct SweepCase
{
    const char *scheme;
    UpdateMode mode;
};

class SchemePropertyTest : public ::testing::TestWithParam<SweepCase>
{
};

TEST_P(SchemePropertyTest, ConservationAndRanges)
{
    const auto &tr = sharedTrace();
    auto parsed = sweep::parseScheme(GetParam().scheme);
    ASSERT_TRUE(parsed.has_value()) << GetParam().scheme;

    Confusion c = evaluateTrace(tr, parsed->scheme, GetParam().mode);

    // Decisions are conserved: one per node per event.
    EXPECT_EQ(c.decisions(), tr.decisions());
    // Actual positives are a property of the trace, not the scheme.
    EXPECT_EQ(c.actualPositives(), tr.sharingEvents());
    // All derived metrics are probabilities.
    for (double m : {c.prevalence(), c.sensitivity(), c.pvp(),
                     c.specificity(), c.pvn(), c.accuracy()}) {
        EXPECT_GE(m, 0.0);
        EXPECT_LE(m, 1.0);
    }
    // Evaluation is repeatable.
    EXPECT_EQ(evaluateTrace(tr, parsed->scheme, GetParam().mode), c);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SchemePropertyTest,
    ::testing::Values(
        SweepCase{"last()1", UpdateMode::Direct},
        SweepCase{"last(pid+pc8)1", UpdateMode::Forwarded},
        SweepCase{"last(pid+mem8)1", UpdateMode::Ordered},
        SweepCase{"union(dir+add14)4", UpdateMode::Direct},
        SweepCase{"union(pid+dir+add4)2", UpdateMode::Forwarded},
        SweepCase{"union(add16)4", UpdateMode::Ordered},
        SweepCase{"inter(pid+add6)4", UpdateMode::Direct},
        SweepCase{"inter(pid+pc8)2", UpdateMode::Forwarded},
        SweepCase{"inter(pc4+dir+add6)3", UpdateMode::Ordered},
        SweepCase{"pas(pid+add4)2", UpdateMode::Direct},
        SweepCase{"pas(dir+add4)1", UpdateMode::Forwarded},
        SweepCase{"overlap-last(pid+pc8)1", UpdateMode::Direct},
        SweepCase{"overlap-last(dir+add8)1", UpdateMode::Ordered}));

/** Union/inter dominance on the real trace, across depths & modes. */
class DominanceTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(DominanceTest, UnionDominatesInterInPositives)
{
    const auto &tr = sharedTrace();
    predict::IndexSpec idx;
    idx.usePid = true;
    idx.addrBits = 6;
    for (auto mode : {UpdateMode::Direct, UpdateMode::Forwarded,
                      UpdateMode::Ordered}) {
        Confusion u = evaluateTrace(
            tr, SchemeSpec{idx, FunctionKind::Union, GetParam()}, mode);
        Confusion i = evaluateTrace(
            tr, SchemeSpec{idx, FunctionKind::Inter, GetParam()}, mode);
        EXPECT_GE(u.tp, i.tp);
        EXPECT_GE(u.fp, i.fp);
        EXPECT_GE(i.tn, u.tn);
        EXPECT_GE(i.fn, u.fn);
    }
}

TEST_P(DominanceTest, OverlapLastIsAFilteredLast)
{
    const auto &tr = sharedTrace();
    predict::IndexSpec idx;
    idx.usePid = true;
    idx.pcBits = GetParam(); // reuse the parameter as pc width
    Confusion last = evaluateTrace(
        tr, SchemeSpec{idx, FunctionKind::Union, 1},
        UpdateMode::Forwarded);
    Confusion overlap = evaluateTrace(
        tr, SchemeSpec{idx, FunctionKind::OverlapLast, 1},
        UpdateMode::Forwarded);
    // Overlap-last only ever suppresses predictions.
    EXPECT_LE(overlap.tp, last.tp);
    EXPECT_LE(overlap.fp, last.fp);
}

INSTANTIATE_TEST_SUITE_P(Depths, DominanceTest,
                         ::testing::Values(2u, 3u, 4u));

TEST(SchemeSpace, EveryEnumeratedSchemeRoundTripsThroughNotation)
{
    sweep::SpaceSpec spec;
    auto schemes = sweep::enumerateSchemes(spec);
    ASSERT_GT(schemes.size(), 1000u);
    for (const auto &s : schemes) {
        auto text = sweep::formatScheme(s);
        auto parsed = sweep::parseScheme(text);
        ASSERT_TRUE(parsed.has_value()) << text;
        EXPECT_EQ(parsed->scheme, s) << text;
    }
}

TEST(SchemeSpace, EveryEnumeratedSchemeIsConstructible)
{
    sweep::SpaceSpec spec;
    spec.maxBits = 1ull << 18; // keep the test light
    for (const auto &s : sweep::enumerateSchemes(spec)) {
        auto table = s.makeTable(16);
        EXPECT_EQ(table.sizeBits(), s.sizeBits(16))
            << sweep::formatScheme(s);
    }
}

} // namespace
