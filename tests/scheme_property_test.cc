/**
 * @file
 * Parameterized property sweeps over the scheme space on a real
 * (small-scale) workload trace: conservation and range invariants
 * that every scheme/update-mode combination must satisfy, plus
 * notation round-trips for the whole enumerated space.
 */

#include <gtest/gtest.h>

#include <memory>
#include <unordered_map>

#include "common/rng.hh"
#include "predict/evaluator.hh"
#include "sweep/batch.hh"
#include "sweep/name.hh"
#include "sweep/space.hh"
#include "workloads/registry.hh"

namespace {

using namespace ccp;
using predict::Confusion;
using predict::evaluateTrace;
using predict::FunctionKind;
using predict::SchemeSpec;
using predict::UpdateMode;

/** One shared small trace (mp3d at tiny scale: all pattern types). */
const trace::SharingTrace &
sharedTrace()
{
    static const trace::SharingTrace tr = [] {
        workloads::WorkloadParams params;
        params.seed = 31;
        params.scale = 0.05;
        return workloads::generateTrace("mp3d", params);
    }();
    return tr;
}

struct SweepCase
{
    const char *scheme;
    UpdateMode mode;
};

class SchemePropertyTest : public ::testing::TestWithParam<SweepCase>
{
};

TEST_P(SchemePropertyTest, ConservationAndRanges)
{
    const auto &tr = sharedTrace();
    auto parsed = sweep::parseScheme(GetParam().scheme);
    ASSERT_TRUE(parsed.has_value()) << GetParam().scheme;

    Confusion c = evaluateTrace(tr, parsed->scheme, GetParam().mode);

    // Decisions are conserved: one per node per event.
    EXPECT_EQ(c.decisions(), tr.decisions());
    // Actual positives are a property of the trace, not the scheme.
    EXPECT_EQ(c.actualPositives(), tr.sharingEvents());
    // All derived metrics are probabilities.
    for (double m : {c.prevalence(), c.sensitivity(), c.pvp(),
                     c.specificity(), c.pvn(), c.accuracy()}) {
        EXPECT_GE(m, 0.0);
        EXPECT_LE(m, 1.0);
    }
    // Evaluation is repeatable.
    EXPECT_EQ(evaluateTrace(tr, parsed->scheme, GetParam().mode), c);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SchemePropertyTest,
    ::testing::Values(
        SweepCase{"last()1", UpdateMode::Direct},
        SweepCase{"last(pid+pc8)1", UpdateMode::Forwarded},
        SweepCase{"last(pid+mem8)1", UpdateMode::Ordered},
        SweepCase{"union(dir+add14)4", UpdateMode::Direct},
        SweepCase{"union(pid+dir+add4)2", UpdateMode::Forwarded},
        SweepCase{"union(add16)4", UpdateMode::Ordered},
        SweepCase{"inter(pid+add6)4", UpdateMode::Direct},
        SweepCase{"inter(pid+pc8)2", UpdateMode::Forwarded},
        SweepCase{"inter(pc4+dir+add6)3", UpdateMode::Ordered},
        SweepCase{"pas(pid+add4)2", UpdateMode::Direct},
        SweepCase{"pas(dir+add4)1", UpdateMode::Forwarded},
        SweepCase{"overlap-last(pid+pc8)1", UpdateMode::Direct},
        SweepCase{"overlap-last(dir+add8)1", UpdateMode::Ordered}));

/** Union/inter dominance on the real trace, across depths & modes. */
class DominanceTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(DominanceTest, UnionDominatesInterInPositives)
{
    const auto &tr = sharedTrace();
    predict::IndexSpec idx;
    idx.usePid = true;
    idx.addrBits = 6;
    for (auto mode : {UpdateMode::Direct, UpdateMode::Forwarded,
                      UpdateMode::Ordered}) {
        Confusion u = evaluateTrace(
            tr, SchemeSpec{idx, FunctionKind::Union, GetParam()}, mode);
        Confusion i = evaluateTrace(
            tr, SchemeSpec{idx, FunctionKind::Inter, GetParam()}, mode);
        EXPECT_GE(u.tp, i.tp);
        EXPECT_GE(u.fp, i.fp);
        EXPECT_GE(i.tn, u.tn);
        EXPECT_GE(i.fn, u.fn);
    }
}

TEST_P(DominanceTest, OverlapLastIsAFilteredLast)
{
    const auto &tr = sharedTrace();
    predict::IndexSpec idx;
    idx.usePid = true;
    idx.pcBits = GetParam(); // reuse the parameter as pc width
    Confusion last = evaluateTrace(
        tr, SchemeSpec{idx, FunctionKind::Union, 1},
        UpdateMode::Forwarded);
    Confusion overlap = evaluateTrace(
        tr, SchemeSpec{idx, FunctionKind::OverlapLast, 1},
        UpdateMode::Forwarded);
    // Overlap-last only ever suppresses predictions.
    EXPECT_LE(overlap.tp, last.tp);
    EXPECT_LE(overlap.fp, last.fp);
}

INSTANTIATE_TEST_SUITE_P(Depths, DominanceTest,
                         ::testing::Values(2u, 3u, 4u));

TEST(SchemeSpace, EveryEnumeratedSchemeRoundTripsThroughNotation)
{
    sweep::SpaceSpec spec;
    auto schemes = sweep::enumerateSchemes(spec);
    ASSERT_GT(schemes.size(), 1000u);
    for (const auto &s : schemes) {
        auto text = sweep::formatScheme(s);
        auto parsed = sweep::parseScheme(text);
        ASSERT_TRUE(parsed.has_value()) << text;
        EXPECT_EQ(parsed->scheme, s) << text;
    }
}

TEST(SchemeSpace, EveryEnumeratedSchemeIsConstructible)
{
    sweep::SpaceSpec spec;
    spec.maxBits = 1ull << 18; // keep the test light
    for (const auto &s : sweep::enumerateSchemes(spec)) {
        auto table = s.makeTable(16);
        EXPECT_EQ(table.sizeBits(), s.sizeBits(16))
            << sweep::formatScheme(s);
    }
}

// ---------------------------------------------------------------------
// The same invariants, asserted through the event-major batched kernel
// (sweep::BatchEvaluator) — the kernel must uphold every scheme
// property the reference evaluator does.

/** Builder that wires invalidation/last-writer chains (needed so
 *  forwarded and ordered update see real writer history). */
class ChainedTraceBuilder
{
  public:
    explicit ChainedTraceBuilder(unsigned n_nodes)
        : trace_("built", n_nodes)
    {
    }

    void
    writeEvent(NodeId pid, Pc pc, Addr block, std::uint64_t readers)
    {
        trace::CoherenceEvent ev;
        ev.pid = pid;
        ev.pc = pc;
        ev.dir = static_cast<NodeId>(block % trace_.nNodes());
        ev.block = block;
        ev.readers = SharingBitmap(readers);
        auto it = lastOnBlock_.find(block);
        if (it != lastOnBlock_.end()) {
            const auto &prev = trace_.events()[it->second];
            ev.invalidated = prev.readers;
            ev.prevWriterPid = prev.pid;
            ev.prevWriterPc = prev.pc;
            ev.hasPrevWriter = true;
            ev.prevEvent = it->second;
        }
        lastOnBlock_[block] = trace_.append(ev);
    }

    trace::SharingTrace take() { return std::move(trace_); }

  private:
    trace::SharingTrace trace_;
    std::unordered_map<Addr, EventSeq> lastOnBlock_;
};

TEST(BatchedKernelProperty, PureAddressSchemesImmuneToUpdateMode)
{
    // Paper section 3.4: schemes whose index carries no writer
    // identity (no pid, no pc) and maps blocks without aliasing see
    // the same feedback stream under all three update mechanisms.
    // The reference evaluator asserts this per scheme; here the whole
    // batch must agree, and match the reference.
    Rng rng(7);
    ChainedTraceBuilder b(16);
    for (int i = 0; i < 1000; ++i)
        b.writeEvent(static_cast<NodeId>(rng.below(16)),
                     0x400 + 4 * rng.below(64), rng.below(64),
                     rng() & 0xffff);
    auto tr = b.take();

    std::vector<SchemeSpec> schemes;
    for (bool use_dir : {false, true}) {
        predict::IndexSpec idx;
        idx.useDir = use_dir;
        idx.addrBits = 6; // full width for blocks < 64: no aliasing
        for (auto kind : {FunctionKind::Union, FunctionKind::Inter,
                          FunctionKind::PAs,
                          FunctionKind::OverlapLast}) {
            for (unsigned depth : {1u, 2u, 4u}) {
                if (kind == FunctionKind::OverlapLast && depth != 1)
                    continue;
                schemes.push_back(SchemeSpec{idx, kind, depth});
            }
        }
    }

    sweep::BatchEvaluator batch(schemes, 16);
    auto direct = batch.evaluateTrace(tr, UpdateMode::Direct);
    auto fwd = batch.evaluateTrace(tr, UpdateMode::Forwarded);
    auto ord = batch.evaluateTrace(tr, UpdateMode::Ordered);
    for (std::size_t i = 0; i < schemes.size(); ++i) {
        EXPECT_EQ(direct[i], fwd[i]) << sweep::formatScheme(schemes[i]);
        EXPECT_EQ(direct[i], ord[i]) << sweep::formatScheme(schemes[i]);
        EXPECT_EQ(direct[i], evaluateTrace(tr, schemes[i],
                                           UpdateMode::Direct))
            << sweep::formatScheme(schemes[i]);
    }
}

TEST(BatchedKernelProperty, BoundsAndConservationOnRandomizedBatches)
{
    // Randomized batches over the real workload trace: every scheme's
    // counts must conserve decisions and actual positives
    // (TP + FN == the trace's sharing events), and every derived
    // metric must be a probability.
    const auto &tr = sharedTrace();
    Rng rng(43);
    std::vector<SchemeSpec> schemes;
    for (unsigned cs = 0; cs < 16; ++cs) {
        for (auto kind : {FunctionKind::Union, FunctionKind::Inter,
                          FunctionKind::OverlapLast,
                          FunctionKind::PAs}) {
            predict::IndexSpec idx;
            idx.usePid = (cs & 8) != 0;
            idx.pcBits = cs & 4 ? 1 + unsigned(rng.below(4)) : 0;
            idx.useDir = (cs & 2) != 0;
            idx.addrBits = cs & 1 ? 1 + unsigned(rng.below(4)) : 0;
            unsigned depth = kind == FunctionKind::PAs
                                 ? 1 + unsigned(rng.below(2))
                                 : 1 + unsigned(rng.below(4));
            schemes.push_back(SchemeSpec{idx, kind, depth});
        }
    }

    sweep::BatchEvaluator batch(schemes, tr.nNodes());
    for (auto mode : {UpdateMode::Direct, UpdateMode::Forwarded,
                      UpdateMode::Ordered}) {
        auto results = batch.evaluateTrace(tr, mode);
        ASSERT_EQ(results.size(), schemes.size());
        for (std::size_t i = 0; i < results.size(); ++i) {
            const Confusion &c = results[i];
            const auto what = sweep::formatScheme(schemes[i], mode);
            EXPECT_EQ(c.decisions(), tr.decisions()) << what;
            EXPECT_EQ(c.actualPositives(), tr.sharingEvents()) << what;
            EXPECT_EQ(c.tp + c.fn, tr.sharingEvents()) << what;
            for (double m : {c.prevalence(), c.sensitivity(), c.pvp(),
                             c.specificity(), c.pvn(), c.accuracy()}) {
                EXPECT_GE(m, 0.0) << what;
                EXPECT_LE(m, 1.0) << what;
            }
        }
    }
}

} // namespace
