/**
 * @file
 * Tests for the MSI directory protocol engine: state-machine cases,
 * event emission/feedback wiring, and randomized property tests of
 * the coherence invariants.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "mem/protocol.hh"
#include "trace/trace.hh"

namespace {

using namespace ccp;
using mem::CoherenceController;
using mem::MachineConfig;
using trace::SharingTrace;

/** A small 4-node machine with tiny caches for deterministic tests. */
MachineConfig
smallConfig()
{
    MachineConfig cfg;
    cfg.nNodes = 4;
    cfg.l1 = {512, 1};
    cfg.l2 = {4096, 2};
    cfg.torusWidth = 2;
    return cfg;
}

Addr
addrOfBlock(Addr block)
{
    return blockBase(block);
}

class ProtocolTest : public ::testing::Test
{
  protected:
    ProtocolTest() : trace("test", 4), ctl(smallConfig(), &trace) {}

    SharingTrace trace;
    CoherenceController ctl;
};

TEST_F(ProtocolTest, FirstWriteEmitsEventWithNoHistory)
{
    ctl.write(1, addrOfBlock(10), 0x400);
    ASSERT_EQ(trace.events().size(), 1u);
    const auto &ev = trace.events()[0];
    EXPECT_EQ(ev.pid, 1u);
    EXPECT_EQ(ev.pc, 0x400u);
    EXPECT_EQ(ev.block, 10u);
    EXPECT_TRUE(ev.invalidated.empty());
    EXPECT_FALSE(ev.hasPrevWriter);
    EXPECT_EQ(ev.prevEvent, trace::noEvent);
}

TEST_F(ProtocolTest, FirstTouchAssignsHome)
{
    ctl.write(2, addrOfBlock(10), 0x400);
    EXPECT_EQ(trace.events()[0].dir, 2u); // writer becomes home
}

TEST_F(ProtocolTest, SilentWriteHitsEmitNoEvents)
{
    ctl.write(1, addrOfBlock(10), 0x400);
    ctl.write(1, addrOfBlock(10), 0x404);
    ctl.write(1, addrOfBlock(10) + 8, 0x400);
    EXPECT_EQ(trace.events().size(), 1u);
    EXPECT_EQ(ctl.stats().writes, 3u);
}

TEST_F(ProtocolTest, ReadersRecordedAsEventOutcome)
{
    ctl.write(1, addrOfBlock(10), 0x400);
    ctl.read(2, addrOfBlock(10));
    ctl.read(3, addrOfBlock(10));
    const auto &ev = trace.events()[0];
    EXPECT_TRUE(ev.readers.test(2));
    EXPECT_TRUE(ev.readers.test(3));
    EXPECT_FALSE(ev.readers.test(1));
    EXPECT_EQ(ev.readers.popcount(), 2u);
}

TEST_F(ProtocolTest, WriterRereadOfOwnVersionIsNotAReader)
{
    ctl.write(1, addrOfBlock(10), 0x400);
    ctl.read(2, addrOfBlock(10)); // downgrade to shared
    ctl.read(1, addrOfBlock(10)); // writer reads its own value
    EXPECT_FALSE(trace.events()[0].readers.test(1));
}

TEST_F(ProtocolTest, UpgradeCarriesInvalidatedReaders)
{
    ctl.write(1, addrOfBlock(10), 0x400);
    ctl.read(2, addrOfBlock(10));
    ctl.read(1, addrOfBlock(10)); // 1 shares its own block again
    ctl.write(1, addrOfBlock(10), 0x404); // upgrade, invalidates 2

    ASSERT_EQ(trace.events().size(), 2u);
    const auto &ev = trace.events()[1];
    EXPECT_TRUE(ev.invalidated.test(2));
    EXPECT_EQ(ev.invalidated.popcount(), 1u);
    EXPECT_TRUE(ev.hasPrevWriter);
    EXPECT_EQ(ev.prevWriterPid, 1u);
    EXPECT_EQ(ev.prevWriterPc, 0x400u);
    EXPECT_EQ(ev.prevEvent, 0u);
    EXPECT_EQ(ctl.stats().writeFaults, 1u);
}

TEST_F(ProtocolTest, WriteMissOverModifiedTransfersOwnership)
{
    ctl.write(1, addrOfBlock(10), 0x400);
    ctl.write(2, addrOfBlock(10), 0x500);

    ASSERT_EQ(trace.events().size(), 2u);
    const auto &ev = trace.events()[1];
    EXPECT_EQ(ev.pid, 2u);
    EXPECT_TRUE(ev.invalidated.empty()); // nobody read version 1
    EXPECT_EQ(ev.prevWriterPid, 1u);
    EXPECT_EQ(ctl.stats().writeMisses, 2u);
    // Version 1's outcome must show zero readers.
    EXPECT_TRUE(trace.events()[0].readers.empty());
}

TEST_F(ProtocolTest, UpgradingReaderIsAnOutcomeButNotFeedback)
{
    ctl.write(1, addrOfBlock(10), 0x400);
    ctl.read(2, addrOfBlock(10));
    ctl.read(3, addrOfBlock(10));
    ctl.write(2, addrOfBlock(10), 0x500); // reader upgrades

    const auto &ev0 = trace.events()[0];
    const auto &ev1 = trace.events()[1];
    // 2 truly read version 1 (forwarding to it would have paid off),
    // so it is in the outcome bitmap; but it is not *invalidated* by
    // its own upgrade, so it is absent from the feedback — writers
    // never learn their own read-modify-write bit (which could never
    // be a correct prediction for their next version).
    EXPECT_TRUE(ev0.readers.test(2));
    EXPECT_FALSE(ev1.invalidated.test(2));
    // Node 3 was a plain reader: invalidated and fed back.
    EXPECT_TRUE(ev0.readers.test(3));
    EXPECT_TRUE(ev1.invalidated.test(3));
}

TEST_F(ProtocolTest, ColdReadersBecomeFirstWriteFeedback)
{
    ctl.read(0, addrOfBlock(10));
    ctl.read(3, addrOfBlock(10));
    ctl.write(1, addrOfBlock(10), 0x400);

    const auto &ev = trace.events()[0];
    EXPECT_FALSE(ev.hasPrevWriter);
    EXPECT_TRUE(ev.invalidated.test(0));
    EXPECT_TRUE(ev.invalidated.test(3));
}

TEST_F(ProtocolTest, ReadMissFromModifiedDowngradesOwner)
{
    ctl.write(1, addrOfBlock(10), 0x400);
    ctl.read(2, addrOfBlock(10));
    EXPECT_EQ(ctl.stats().downgrades, 1u);
    // A second write by 1 is now an upgrade, not a miss.
    ctl.write(1, addrOfBlock(10), 0x404);
    EXPECT_EQ(ctl.stats().writeFaults, 1u);
}

TEST_F(ProtocolTest, VersionAdvancesPerExclusiveEpisode)
{
    Addr a = addrOfBlock(10);
    ctl.write(1, a, 0x400);
    EXPECT_EQ(ctl.currentVersion(a), 1u);
    ctl.write(1, a, 0x404); // silent: same episode
    EXPECT_EQ(ctl.currentVersion(a), 1u);
    ctl.read(2, a);
    ctl.write(1, a, 0x404); // upgrade: new episode
    EXPECT_EQ(ctl.currentVersion(a), 2u);
}

TEST_F(ProtocolTest, StaticAndPredictedStoreCounts)
{
    ctl.write(1, addrOfBlock(1), 0x400);
    ctl.write(1, addrOfBlock(2), 0x404);
    ctl.write(1, addrOfBlock(1), 0x404); // silent, same pc as before
    EXPECT_EQ(ctl.staticStores(1), 2u);
    EXPECT_EQ(ctl.predictedStores(1), 2u);

    ctl.read(2, addrOfBlock(1));
    ctl.write(1, addrOfBlock(1), 0x408); // upgrade with a third pc
    EXPECT_EQ(ctl.staticStores(1), 3u);
    EXPECT_EQ(ctl.predictedStores(1), 3u);
}

TEST_F(ProtocolTest, FinalizeTraceFillsMeta)
{
    ctl.write(0, addrOfBlock(1), 0x400);
    ctl.write(0, addrOfBlock(2), 0x404);
    ctl.read(1, addrOfBlock(1));
    ctl.finalizeTrace();
    EXPECT_EQ(trace.meta().blocksTouched, 2u);
    EXPECT_EQ(trace.meta().totalOps, 3u);
    EXPECT_EQ(trace.meta().maxStaticStoresPerNode, 2u);
}

TEST_F(ProtocolTest, InvariantsHoldThroughBasicSequence)
{
    ctl.write(1, addrOfBlock(10), 0x400);
    ctl.checkInvariants();
    ctl.read(2, addrOfBlock(10));
    ctl.checkInvariants();
    ctl.write(3, addrOfBlock(10), 0x500);
    ctl.checkInvariants();
}

TEST_F(ProtocolTest, NetworkTrafficFlows)
{
    ctl.write(1, addrOfBlock(10), 0x400);
    ctl.read(2, addrOfBlock(10));
    EXPECT_GT(ctl.torus().totalMessages(), 0u);
}

TEST_F(ProtocolTest, LatencyAccumulates)
{
    ctl.write(1, addrOfBlock(10), 0x400);
    Cycles after_miss = ctl.stats().latency;
    EXPECT_GT(after_miss, 0u);
    ctl.write(1, addrOfBlock(10), 0x400); // L1 hit: tiny latency
    EXPECT_EQ(ctl.stats().latency, after_miss + 1);
}

// ---------------------------------------------------------------------
// Eviction behaviour.

TEST(ProtocolEviction, ModifiedVictimWritesBack)
{
    MachineConfig cfg = smallConfig();
    cfg.l2 = {512, 1}; // 8 lines, direct mapped: easy conflicts
    cfg.l1 = {256, 1};
    SharingTrace tr("evict", 4);
    CoherenceController ctl(cfg, &tr);

    ctl.write(0, addrOfBlock(0), 0x400);
    ctl.write(0, addrOfBlock(8), 0x400); // evicts block 0 (writeback)
    ctl.checkInvariants();
    // After the writeback, a write by another node must see no owner.
    ctl.write(1, addrOfBlock(0), 0x500);
    ctl.checkInvariants();
    // 0's version died unread.
    EXPECT_TRUE(tr.events()[0].readers.empty());
}

TEST(ProtocolEviction, SharedVictimSendsReplacementHint)
{
    MachineConfig cfg = smallConfig();
    cfg.l2 = {512, 1};
    cfg.l1 = {256, 1};
    SharingTrace tr("evict", 4);
    CoherenceController ctl(cfg, &tr);

    ctl.write(0, addrOfBlock(0), 0x400);
    ctl.read(1, addrOfBlock(0));
    ctl.read(1, addrOfBlock(8)); // evicts 1's shared copy of block 0
    ctl.checkInvariants();
    // The replacement hint removed 1 from the sharer set, so 0's
    // upgrade invalidates nobody -- but the access-bit feedback still
    // remembers 1 as a true reader.
    ctl.write(0, addrOfBlock(0), 0x404);
    ASSERT_EQ(tr.events().size(), 2u);
    EXPECT_TRUE(tr.events()[1].invalidated.test(1));
    EXPECT_TRUE(tr.events()[0].readers.test(1));
    ctl.checkInvariants();
}

// ---------------------------------------------------------------------
// Property test: random op streams keep all invariants, and readers
// always observe the latest version.

struct PropertyCase
{
    std::uint64_t seed;
    unsigned n_nodes;
};

class ProtocolPropertyTest
    : public ::testing::TestWithParam<PropertyCase>
{
};

TEST_P(ProtocolPropertyTest, RandomStreamKeepsInvariants)
{
    const auto [seed, n_nodes] = GetParam();
    MachineConfig cfg;
    cfg.nNodes = n_nodes;
    cfg.l1 = {512, 1};
    cfg.l2 = {2048, 2}; // tiny: exercises evictions constantly
    cfg.torusWidth = n_nodes == 4 ? 2 : 4;
    SharingTrace tr("prop", n_nodes);
    CoherenceController ctl(cfg, &tr);
    Rng rng(seed);

    constexpr unsigned n_blocks = 96; // 3x the total cache capacity
    for (int i = 0; i < 6000; ++i) {
        NodeId node = static_cast<NodeId>(rng.below(n_nodes));
        Addr addr = blockBase(rng.below(n_blocks)) + rng.below(64);
        if (rng.chance(0.4)) {
            Pc pc = 0x400 + 4 * rng.below(16);
            ctl.write(node, addr, pc);
        } else {
            ctl.read(node, addr);
        }
        if (i % 256 == 0)
            ctl.checkInvariants();
    }
    ctl.checkInvariants();

    // Feedback chaining: every event's invalidated set equals its
    // predecessor event's final reader set minus the event's own
    // writer (which upgrades rather than being invalidated).
    for (const auto &ev : tr.events()) {
        if (ev.prevEvent == trace::noEvent)
            continue;
        const auto &prev = tr.events()[ev.prevEvent];
        EXPECT_EQ(prev.block, ev.block);
        EXPECT_EQ(prev.readers
                      .minus(SharingBitmap::single(ev.pid))
                      .raw(),
                  ev.invalidated.raw());
    }

    // Writers never appear in their own outcome bitmaps.
    for (const auto &ev : tr.events())
        EXPECT_FALSE(ev.readers.test(ev.pid));
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ProtocolPropertyTest,
    ::testing::Values(PropertyCase{1, 4}, PropertyCase{2, 4},
                      PropertyCase{3, 8}, PropertyCase{4, 16},
                      PropertyCase{5, 16}, PropertyCase{99, 8}));

} // namespace

namespace {

MachineConfig
mesiConfig()
{
    MachineConfig cfg = smallConfig();
    cfg.protocol = mem::ProtocolKind::MESI;
    return cfg;
}

class MesiTest : public ::testing::Test
{
  protected:
    MesiTest() : trace("mesi", 4), ctl(mesiConfig(), &trace) {}

    SharingTrace trace;
    CoherenceController ctl;
};

TEST_F(MesiTest, SoleReaderGetsExclusive)
{
    ctl.read(1, addrOfBlock(10));
    ctl.checkInvariants();
    // A write after the exclusive grant upgrades silently: no event.
    ctl.write(1, addrOfBlock(10), 0x400);
    EXPECT_EQ(trace.events().size(), 0u);
    EXPECT_EQ(ctl.stats().silentUpgrades, 1u);
    ctl.checkInvariants();
}

TEST_F(MesiTest, SecondReaderDowngradesTheExclusiveCopy)
{
    ctl.read(1, addrOfBlock(10));
    ctl.read(2, addrOfBlock(10));
    ctl.checkInvariants();
    // Both now hold Shared: a write by 1 is a write fault (an event).
    ctl.write(1, addrOfBlock(10), 0x400);
    EXPECT_EQ(trace.events().size(), 1u);
    EXPECT_EQ(ctl.stats().writeFaults, 1u);
    EXPECT_TRUE(trace.events()[0].invalidated.test(2));
    ctl.checkInvariants();
}

TEST_F(MesiTest, RemoteWriteInvalidatesSilentlyUpgradedCopy)
{
    ctl.read(1, addrOfBlock(10));
    ctl.write(1, addrOfBlock(10), 0x400); // silent E->M
    ctl.write(2, addrOfBlock(10), 0x500); // must fetch dirty data
    ASSERT_EQ(trace.events().size(), 1u);
    EXPECT_EQ(trace.events()[0].pid, 2u);
    ctl.checkInvariants();
}

TEST_F(MesiTest, RemoteWriteInvalidatesCleanExclusiveCopy)
{
    ctl.read(1, addrOfBlock(10)); // E, never written
    ctl.write(2, addrOfBlock(10), 0x500);
    ASSERT_EQ(trace.events().size(), 1u);
    // Node 1 read the initial version: it is in the feedback.
    EXPECT_TRUE(trace.events()[0].invalidated.test(1));
    ctl.checkInvariants();
}

TEST_F(MesiTest, ReadThenWritePrivateDataEmitsNoEvents)
{
    // The MESI headline: private read-then-write data is free.
    for (int i = 0; i < 50; ++i) {
        ctl.read(0, addrOfBlock(i));
        ctl.write(0, addrOfBlock(i), 0x400);
    }
    EXPECT_EQ(trace.events().size(), 0u);
    EXPECT_EQ(ctl.stats().silentUpgrades, 50u);
    // The same sequence under MSI costs one write fault per block.
    SharingTrace msi_trace("msi", 4);
    CoherenceController msi(smallConfig(), &msi_trace);
    for (int i = 0; i < 50; ++i) {
        msi.read(0, addrOfBlock(i));
        msi.write(0, addrOfBlock(i), 0x400);
    }
    EXPECT_EQ(msi_trace.events().size(), 50u);
}

TEST_F(MesiTest, EvictionOfCleanExclusiveNotifiesDirectory)
{
    MachineConfig cfg = mesiConfig();
    cfg.l2 = {512, 1};
    cfg.l1 = {256, 1};
    SharingTrace tr("evict", 4);
    CoherenceController c(cfg, &tr);
    c.read(0, addrOfBlock(0));  // E
    c.read(0, addrOfBlock(8));  // evicts block 0 (clean, no data)
    c.checkInvariants();
    // Another node can now take the block from memory.
    c.write(1, addrOfBlock(0), 0x500);
    c.checkInvariants();
}

TEST(MesiProperty, RandomStreamKeepsInvariants)
{
    MachineConfig cfg;
    cfg.nNodes = 8;
    cfg.l1 = {512, 1};
    cfg.l2 = {2048, 2};
    cfg.torusWidth = 4;
    cfg.protocol = mem::ProtocolKind::MESI;
    SharingTrace tr("prop", 8);
    CoherenceController ctl(cfg, &tr);
    Rng rng(77);
    for (int i = 0; i < 6000; ++i) {
        NodeId node = static_cast<NodeId>(rng.below(8));
        Addr addr = blockBase(rng.below(96)) + rng.below(64);
        if (rng.chance(0.4))
            ctl.write(node, addr, 0x400 + 4 * rng.below(16));
        else
            ctl.read(node, addr);
        if (i % 256 == 0)
            ctl.checkInvariants();
    }
    ctl.checkInvariants();
    for (const auto &ev : tr.events())
        EXPECT_FALSE(ev.readers.test(ev.pid));
}

TEST(MesiProperty, NeverMoreEventsThanMsi)
{
    // MESI's silent upgrades can only remove coherence store misses
    // relative to MSI on the same access stream.
    for (std::uint64_t seed : {1u, 2u, 3u}) {
        SharingTrace mesi_tr("mesi", 4), msi_tr("msi", 4);
        MachineConfig mesi_cfg = mesiConfig();
        MachineConfig msi_cfg = smallConfig();
        CoherenceController mesi(mesi_cfg, &mesi_tr);
        CoherenceController msi(msi_cfg, &msi_tr);
        Rng rng(seed);
        for (int i = 0; i < 4000; ++i) {
            NodeId node = static_cast<NodeId>(rng.below(4));
            Addr addr = blockBase(rng.below(64));
            if (rng.chance(0.45)) {
                Pc pc = 0x400 + 4 * rng.below(8);
                mesi.write(node, addr, pc);
                msi.write(node, addr, pc);
            } else {
                mesi.read(node, addr);
                msi.read(node, addr);
            }
        }
        EXPECT_LE(mesi_tr.events().size(), msi_tr.events().size());
    }
}

} // namespace
