/**
 * @file
 * Tests for the benchmark kernels: registry behaviour, determinism,
 * and the structural sharing properties each kernel is designed to
 * exhibit.  Runs at reduced scale to stay fast; the full-scale
 * calibration lives in the benches and integration test.
 */

#include <gtest/gtest.h>

#include "workloads/registry.hh"

namespace {

using namespace ccp;
using workloads::generateTrace;
using workloads::makeWorkload;
using workloads::WorkloadParams;
using workloads::workloadNames;

WorkloadParams
tinyParams(std::uint64_t seed = 1)
{
    WorkloadParams p;
    p.seed = seed;
    p.scale = 0.1;
    return p;
}

TEST(Registry, SevenBenchmarksInTableThreeOrder)
{
    const auto &names = workloadNames();
    ASSERT_EQ(names.size(), 7u);
    EXPECT_EQ(names.front(), "barnes");
    EXPECT_EQ(names.back(), "water");
}

TEST(Registry, MakeByNameRoundTrips)
{
    for (const auto &name : workloadNames())
        EXPECT_EQ(makeWorkload(name, tinyParams())->name(), name);
}

TEST(Registry, UnknownNameIsFatal)
{
    EXPECT_EXIT(makeWorkload("nosuch", tinyParams()),
                ::testing::ExitedWithCode(1), "unknown workload");
}

class KernelTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(KernelTest, ProducesANonTrivialFinalizedTrace)
{
    auto tr = generateTrace(GetParam(), tinyParams());
    EXPECT_EQ(tr.name(), GetParam());
    EXPECT_EQ(tr.nNodes(), 16u);
    EXPECT_GT(tr.storeMisses(), 100u);
    EXPECT_GT(tr.meta().blocksTouched, 50u);
    EXPECT_GT(tr.meta().totalOps, tr.storeMisses());
    EXPECT_GE(tr.meta().maxStaticStoresPerNode,
              tr.meta().maxPredictedStoresPerNode);
    EXPECT_GT(tr.meta().maxPredictedStoresPerNode, 0u);
}

TEST_P(KernelTest, SharingExistsButIsSparse)
{
    auto tr = generateTrace(GetParam(), tinyParams());
    double prev = tr.prevalence();
    // Every benchmark exhibits some sharing, and (key observation of
    // paper Table 6) prevalence is far below the 50% of branch bias.
    EXPECT_GT(prev, 0.001) << GetParam();
    EXPECT_LT(prev, 0.35) << GetParam();
}

TEST_P(KernelTest, DeterministicForSeed)
{
    auto a = generateTrace(GetParam(), tinyParams(77));
    auto b = generateTrace(GetParam(), tinyParams(77));
    ASSERT_EQ(a.events().size(), b.events().size());
    for (std::size_t i = 0; i < a.events().size(); ++i) {
        EXPECT_EQ(a.events()[i].pid, b.events()[i].pid);
        EXPECT_EQ(a.events()[i].pc, b.events()[i].pc);
        EXPECT_EQ(a.events()[i].block, b.events()[i].block);
        EXPECT_EQ(a.events()[i].readers.raw(),
                  b.events()[i].readers.raw());
        EXPECT_EQ(a.events()[i].invalidated.raw(),
                  b.events()[i].invalidated.raw());
    }
    EXPECT_EQ(a.meta().totalOps, b.meta().totalOps);
}

TEST_P(KernelTest, SeedChangesTheTrace)
{
    auto a = generateTrace(GetParam(), tinyParams(1));
    auto b = generateTrace(GetParam(), tinyParams(2));
    bool identical = a.events().size() == b.events().size();
    if (identical) {
        for (std::size_t i = 0; identical && i < a.events().size(); ++i)
            identical = a.events()[i].pid == b.events()[i].pid &&
                        a.events()[i].readers.raw() ==
                            b.events()[i].readers.raw();
    }
    EXPECT_FALSE(identical);
}

TEST_P(KernelTest, EventFieldsAreWellFormed)
{
    auto tr = generateTrace(GetParam(), tinyParams());
    SharingBitmap machine = SharingBitmap::all(16);
    for (const auto &ev : tr.events()) {
        EXPECT_LT(ev.pid, 16u);
        EXPECT_LT(ev.dir, 16u);
        EXPECT_GE(ev.pc, 0x0040'0000u);
        EXPECT_TRUE(ev.readers.subsetOf(machine));
        EXPECT_TRUE(ev.invalidated.subsetOf(machine));
        EXPECT_FALSE(ev.readers.test(ev.pid));
        if (ev.prevEvent != trace::noEvent) {
            EXPECT_LT(ev.prevEvent, tr.events().size());
            EXPECT_EQ(tr.events()[ev.prevEvent].block, ev.block);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelTest,
                         ::testing::ValuesIn(workloadNames()),
                         [](const auto &info) { return info.param; });

// ---------------------------------------------------------------------
// Kernel-specific structural properties.

TEST(KernelStructure, MigratorySharingDominatesMp3d)
{
    auto tr = generateTrace("mp3d", tinyParams());
    // Migratory pattern: most non-empty outcomes have exactly one
    // reader (the next writer).
    std::uint64_t one = 0, more = 0;
    for (const auto &ev : tr.events()) {
        if (ev.readers.popcount() == 1)
            ++one;
        else if (ev.readers.popcount() > 1)
            ++more;
    }
    EXPECT_GT(one, 4 * more);
}

TEST(KernelStructure, WideSharingExistsInBarnes)
{
    auto tr = generateTrace("barnes", tinyParams());
    // The top tree cells must be read nearly machine-wide.
    unsigned wide = 0;
    for (const auto &ev : tr.events())
        wide += ev.readers.popcount() >= 12;
    EXPECT_GT(wide, 10u);
}

TEST(KernelStructure, OceanIsMostlyUnshared)
{
    auto tr = generateTrace("ocean", tinyParams());
    std::uint64_t zero = 0;
    for (const auto &ev : tr.events())
        zero += ev.readers.empty();
    EXPECT_GT(zero, tr.events().size() / 2);
}

TEST(KernelStructure, WaterPositionsAreReadByManyNodes)
{
    auto tr = generateTrace("water", tinyParams());
    unsigned wide = 0;
    for (const auto &ev : tr.events())
        wide += ev.readers.popcount() >= 5;
    EXPECT_GT(wide, 100u);
}

TEST(KernelStructure, StaticStoreCountsAreSmall)
{
    // Paper section 5.2: live static stores number in the tens to
    // hundreds -- the basis for instruction-indexed prediction.
    for (const auto &name : workloadNames()) {
        auto tr = generateTrace(name, tinyParams());
        EXPECT_LT(tr.meta().maxStaticStoresPerNode, 512u) << name;
        EXPECT_GE(tr.meta().maxStaticStoresPerNode, 2u) << name;
    }
}

TEST(KernelStructure, ScaleKnobChangesRunLength)
{
    WorkloadParams small = tinyParams();
    WorkloadParams big = tinyParams();
    big.scale = 0.3;
    auto a = generateTrace("mp3d", small);
    auto b = generateTrace("mp3d", big);
    EXPECT_GT(b.meta().totalOps, a.meta().totalOps);
}

TEST(KernelStructure, WorksOnSmallerMachines)
{
    WorkloadParams p = tinyParams();
    p.nNodes = 8;
    mem::MachineConfig cfg;
    cfg.nNodes = 8;
    auto tr = generateTrace("em3d", p, cfg);
    EXPECT_EQ(tr.nNodes(), 8u);
    EXPECT_GT(tr.storeMisses(), 0u);
    for (const auto &ev : tr.events())
        EXPECT_LT(ev.pid, 8u);
}

} // namespace
