/**
 * @file
 * Tests for the fault-injection harness's spec parsing (common/fault.hh)
 * and the MemBudget admission guard (common/mem_budget.hh).  The
 * harness is what every resilience test trusts to arm failures
 * deterministically, so its own parsing must be strict: a malformed
 * CCP_FAULT_INJECT clause is warned about and skipped, never silently
 * mis-armed at a wrong ordinal (strtoull would wrap "-1" to 2^64-1 and
 * stop at the first stray character without complaint).
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/fault.hh"
#include "common/mem_budget.hh"

namespace {

using namespace ccp;

class FaultSpecTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ::unsetenv("CCP_FAULT_INJECT");
        fault::reinit();
    }

    void
    TearDown() override
    {
        ::unsetenv("CCP_FAULT_INJECT");
        fault::reinit();
    }

    void
    arm(const char *spec)
    {
        ::setenv("CCP_FAULT_INJECT", spec, 1);
        fault::reinit();
    }
};

TEST_F(FaultSpecTest, UnsetAndEmptySpecsArmNothing)
{
    EXPECT_FALSE(fault::enabled());
    EXPECT_FALSE(fault::armed("sweep.worker_throw").has_value());

    arm("");
    EXPECT_FALSE(fault::enabled());

    // Stray separators alone are not clauses.
    arm(",,,");
    EXPECT_FALSE(fault::enabled());
}

TEST_F(FaultSpecTest, WellFormedClausesArmTheirPoints)
{
    arm("sweep.worker_throw=3,checkpoint.torn_write=100");
    EXPECT_TRUE(fault::enabled());
    EXPECT_EQ(fault::armed("sweep.worker_throw"), 3u);
    EXPECT_EQ(fault::armed("checkpoint.torn_write"), 100u);
    // A point the spec never named stays unarmed.
    EXPECT_FALSE(fault::armed("mem.alloc_fail").has_value());
    EXPECT_FALSE(fault::fireAt("mem.alloc_fail", 0));
}

TEST_F(FaultSpecTest, HexValuesFollowTheSeedConvention)
{
    arm("shard.worker_kill=0x10");
    EXPECT_EQ(fault::armed("shard.worker_kill"), 16u);
}

TEST_F(FaultSpecTest, MalformedClausesAreSkippedNotMisarmed)
{
    // Each clause here is broken a different way; none may arm, and
    // the well-formed clause riding along must still work.
    arm("p=banana,q=,r=1x,s= 1,t=-1,=5,lonely,ok=7");
    EXPECT_TRUE(fault::enabled());
    EXPECT_EQ(fault::armed("ok"), 7u);
    for (const char *point : {"p", "q", "r", "s", "t", "lonely", ""})
        EXPECT_FALSE(fault::armed(point).has_value()) << point;
}

TEST_F(FaultSpecTest, HugeCountsOverflowToRejectionNotWraparound)
{
    // 2^64 overflows; strtoull would saturate to ULLONG_MAX with only
    // errno to show for it.  The strict parser refuses the clause.
    arm("p=18446744073709551616");
    EXPECT_FALSE(fault::armed("p").has_value());

    // The largest representable value is still accepted.
    arm("p=18446744073709551615");
    EXPECT_EQ(fault::armed("p"), ~std::uint64_t(0));
}

TEST_F(FaultSpecTest, FireAtFiresExactlyOnceAtItsOrdinal)
{
    arm("sweep.worker_throw=2");
    EXPECT_FALSE(fault::fireAt("sweep.worker_throw", 1));
    EXPECT_TRUE(fault::fireAt("sweep.worker_throw", 2));
    EXPECT_FALSE(fault::fireAt("sweep.worker_throw", 2));

    // reinit() re-arms: a new test scenario starts fresh.
    fault::reinit();
    EXPECT_TRUE(fault::fireAt("sweep.worker_throw", 2));
}

TEST_F(FaultSpecTest, ConsumeYieldsTheValueOnce)
{
    arm("checkpoint.torn_write=48");
    EXPECT_EQ(fault::consume("checkpoint.torn_write"), 48u);
    EXPECT_FALSE(fault::consume("checkpoint.torn_write").has_value());
    EXPECT_FALSE(fault::consume("never.armed").has_value());
}

class MemBudgetTest : public FaultSpecTest
{
};

TEST_F(MemBudgetTest, ZeroBudgetIsUnlimited)
{
    MemBudget b(0);
    EXPECT_TRUE(b.unlimited());
    EXPECT_TRUE(b.fits(~std::uint64_t(0)));
    EXPECT_TRUE(b.admit(0, ~std::uint64_t(0)));
}

TEST_F(MemBudgetTest, FitsIsInclusiveAtTheBoundary)
{
    MemBudget b(4096);
    EXPECT_FALSE(b.unlimited());
    EXPECT_TRUE(b.fits(4095));
    EXPECT_TRUE(b.fits(4096));
    EXPECT_FALSE(b.fits(4097));
}

TEST_F(MemBudgetTest, AdmitHonoursTheAllocFailFaultOnce)
{
    arm("mem.alloc_fail=5");
    MemBudget b(1 << 20);
    // Plans other than the armed ordinal admit normally.
    EXPECT_TRUE(b.admit(4, 64));
    // The armed ordinal fails exactly once, then recovers.
    EXPECT_FALSE(b.admit(5, 64));
    EXPECT_TRUE(b.admit(5, 64));
    // The fault cannot admit what the budget itself refuses.
    EXPECT_FALSE(b.admit(6, (1 << 20) + 1));
}

TEST_F(MemBudgetTest, ParseByteSizeAcceptsSuffixesRejectsJunk)
{
    std::uint64_t v = 0;
    ASSERT_TRUE(parseByteSize("65536", v));
    EXPECT_EQ(v, 65536u);
    ASSERT_TRUE(parseByteSize("512M", v));
    EXPECT_EQ(v, std::uint64_t(512) << 20);
    ASSERT_TRUE(parseByteSize("2g", v));
    EXPECT_EQ(v, std::uint64_t(2) << 30);
    ASSERT_TRUE(parseByteSize("16K", v));
    EXPECT_EQ(v, std::uint64_t(16) << 10);

    const std::uint64_t untouched = v;
    for (const char *bad :
         {"", "K", "12KB", "1.5G", "-1", " 16K", "16 K", "0x10M",
          "99999999999999999999G"}) {
        EXPECT_FALSE(parseByteSize(bad, v)) << "'" << bad << "'";
        EXPECT_EQ(v, untouched) << "out clobbered by '" << bad << "'";
    }
}

} // namespace
