/**
 * @file
 * Differential tests: the event-major BatchEvaluator — under both its
 * Scalar engine and the SoA Simd engine — against the reference
 * per-scheme Evaluator, asserting *exact* equality of Confusion
 * counts on randomized traces (a kernel triple per scheme).
 *
 * The batched kernel re-implements the per-entry state transitions
 * (window, overlap-last) and the index computation (IndexPlan), and
 * the simd kernel additionally regroups schemes into 4-wide lanes
 * with interleaved state, so the reference evaluator is kept alive as
 * the oracle: any divergence in semantics — update ordering, window
 * rotation, index packing, word boundaries, lane interleave — shows
 * up here as an exact-count mismatch.
 *
 * Coverage: all 16 indexing classes of Table 1 x all five function
 * families (the perceptron with randomized weight widths, thresholds,
 * Bloom sizes, and hashed-vs-flat indexing) x history depths 1..4 x
 * all three update modes, on machines of 4, 16, and 64 nodes (the
 * last stressing full-width 64-bit sharing bitmaps), with the simd
 * engine exercised both through its preferred backend and — via the
 * CCP_SIMD_DISABLE override — through the portable scalar lane path.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <iterator>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hh"
#include "predict/evaluator.hh"
#include "sweep/batch.hh"
#include "sweep/name.hh"

namespace {

using namespace ccp;
using predict::Confusion;
using predict::FunctionKind;
using predict::IndexSpec;
using predict::SchemeSpec;
using predict::UpdateMode;
using trace::CoherenceEvent;
using trace::SharingTrace;

constexpr UpdateMode kModes[] = {UpdateMode::Direct,
                                 UpdateMode::Forwarded,
                                 UpdateMode::Ordered};

/** Builder that wires invalidation/last-writer chains automatically
 *  (ordered update needs real prevEvent chains). */
class TraceBuilder
{
  public:
    explicit TraceBuilder(unsigned n_nodes, const char *name = "built")
        : trace_(name, n_nodes)
    {
    }

    TraceBuilder &
    writeEvent(NodeId pid, Pc pc, Addr block, std::uint64_t readers)
    {
        CoherenceEvent ev;
        ev.pid = pid;
        ev.pc = pc;
        ev.dir = static_cast<NodeId>(block % trace_.nNodes());
        ev.block = block;
        ev.readers = SharingBitmap(readers);

        auto it = lastOnBlock_.find(block);
        if (it != lastOnBlock_.end()) {
            const CoherenceEvent &prev = trace_.events()[it->second];
            ev.invalidated = prev.readers;
            ev.prevWriterPid = prev.pid;
            ev.prevWriterPc = prev.pc;
            ev.hasPrevWriter = true;
            ev.prevEvent = it->second;
        }
        lastOnBlock_[block] = trace_.append(ev);
        return *this;
    }

    SharingTrace take() { return std::move(trace_); }

  private:
    SharingTrace trace_;
    std::unordered_map<Addr, EventSeq> lastOnBlock_;
};

SharingTrace
randomTrace(Rng &rng, unsigned n_nodes, std::size_t events,
            const char *name = "random")
{
    const std::uint64_t reader_mask =
        n_nodes >= 64 ? ~std::uint64_t(0)
                      : (std::uint64_t(1) << n_nodes) - 1;
    TraceBuilder b(n_nodes, name);
    for (std::size_t i = 0; i < events; ++i) {
        // 64 blocks and 32 store pcs: enough reuse that every block
        // builds long writer chains and table entries alias under
        // narrow indexing.
        b.writeEvent(static_cast<NodeId>(rng.below(n_nodes)),
                     0x400 + 4 * rng.below(32), rng.below(64),
                     rng() & reader_mask);
    }
    return b.take();
}

/** Randomize the swept perceptron dimensions onto @p scheme; the
 *  hashed index fold is flipped on half the non-empty indices. */
void
randomizePerceptron(Rng &rng, SchemeSpec &scheme, bool non_empty_index)
{
    scheme.index.hashed = non_empty_index && rng.below(2) == 0;
    const unsigned widths[] = {2, 4, 5, 8};
    scheme.perc.weightBits = widths[rng.below(4)];
    scheme.perc.theta = 1 + unsigned(rng.below(6));
    const unsigned blooms[] = {0, 8, 16, 32};
    scheme.perc.bloomBits = blooms[rng.below(4)];
}

/**
 * One scheme per (Table-1 class x function family), with randomized
 * pc/addr widths and history depths 1..4: 80 schemes per call.
 */
std::vector<SchemeSpec>
randomSchemes(Rng &rng, unsigned max_field_bits, unsigned max_pas_depth)
{
    const FunctionKind kinds[] = {FunctionKind::Union,
                                  FunctionKind::Inter,
                                  FunctionKind::OverlapLast,
                                  FunctionKind::PAs,
                                  FunctionKind::Perceptron};
    std::vector<SchemeSpec> schemes;
    for (unsigned cs = 0; cs < 16; ++cs) {
        for (FunctionKind kind : kinds) {
            IndexSpec idx;
            idx.usePid = (cs & 8) != 0;
            idx.pcBits =
                cs & 4 ? 1 + unsigned(rng.below(max_field_bits)) : 0;
            idx.useDir = (cs & 2) != 0;
            idx.addrBits =
                cs & 1 ? 1 + unsigned(rng.below(max_field_bits)) : 0;
            // PAs state grows exponentially in depth; keep its grid
            // narrower so the oracle runs stay fast.
            unsigned depth =
                kind == FunctionKind::PAs
                    ? 1 + unsigned(rng.below(max_pas_depth))
                    : 1 + unsigned(rng.below(4));
            SchemeSpec scheme{idx, kind, depth};
            if (kind == FunctionKind::Perceptron)
                randomizePerceptron(rng, scheme, cs != 0);
            schemes.push_back(scheme);
        }
    }
    return schemes;
}

/**
 * Perceptron-only schemes over all 16 index classes: every non-empty
 * index appears as a hashed/flat *twin pair* on otherwise identical
 * dimensions, so the two index paths face the same trace and layout.
 */
std::vector<SchemeSpec>
perceptronSchemes(Rng &rng, unsigned max_field_bits)
{
    std::vector<SchemeSpec> schemes;
    for (unsigned cs = 0; cs < 16; ++cs) {
        IndexSpec idx;
        idx.usePid = (cs & 8) != 0;
        idx.pcBits =
            cs & 4 ? 1 + unsigned(rng.below(max_field_bits)) : 0;
        idx.useDir = (cs & 2) != 0;
        idx.addrBits =
            cs & 1 ? 1 + unsigned(rng.below(max_field_bits)) : 0;
        SchemeSpec scheme{idx, FunctionKind::Perceptron,
                          1 + unsigned(rng.below(4))};
        randomizePerceptron(rng, scheme, cs != 0);
        schemes.push_back(scheme);
        if (cs != 0) {
            SchemeSpec twin = scheme;
            twin.index.hashed = !scheme.index.hashed;
            schemes.push_back(twin);
        }
    }
    return schemes;
}

/**
 * Four *distinct* schemes sharing one (family, depth, indexBits)
 * layout class — pid, dir, pc, and addr indexing at equal total
 * width — so the simd engine forms a full lane group whose lanes
 * carry different masks and shifts (the random grid rarely collides
 * four schemes into one class on its own).
 */
void
appendLaneClass(std::vector<SchemeSpec> &schemes, unsigned node_bits,
                FunctionKind kind, unsigned depth)
{
    IndexSpec pid, dir, pc, addr;
    pid.usePid = true;
    dir.useDir = true;
    pc.pcBits = node_bits;
    addr.addrBits = node_bits;
    for (const IndexSpec &idx : {pid, dir, pc, addr})
        schemes.push_back(SchemeSpec{idx, kind, depth});
}

void
appendLaneClasses(std::vector<SchemeSpec> &schemes, unsigned n_nodes)
{
    const unsigned node_bits = predict::nodeBitsFor(n_nodes);
    // Union/Inter at depth 1 both collapse to the Last family: the
    // eight schemes below land in ONE layout class and form two
    // groups, locking down multi-group classes too.
    appendLaneClass(schemes, node_bits, FunctionKind::Union, 1);
    appendLaneClass(schemes, node_bits, FunctionKind::Inter, 1);
    appendLaneClass(schemes, node_bits, FunctionKind::Union, 3);
    appendLaneClass(schemes, node_bits, FunctionKind::Inter, 2);
    appendLaneClass(schemes, node_bits, FunctionKind::OverlapLast, 1);
}

void
expectExactMatch(const Confusion &got, const Confusion &want,
                 const SchemeSpec &scheme, UpdateMode mode)
{
    EXPECT_EQ(got.tp, want.tp) << sweep::formatScheme(scheme) << " "
                               << predict::updateModeName(mode);
    EXPECT_EQ(got.fp, want.fp) << sweep::formatScheme(scheme) << " "
                               << predict::updateModeName(mode);
    EXPECT_EQ(got.tn, want.tn) << sweep::formatScheme(scheme) << " "
                               << predict::updateModeName(mode);
    EXPECT_EQ(got.fn, want.fn) << sweep::formatScheme(scheme) << " "
                               << predict::updateModeName(mode);
}

void
runDifferential(std::uint64_t seed, unsigned n_nodes,
                std::size_t events, unsigned max_field_bits,
                unsigned max_pas_depth)
{
    Rng rng(seed);
    auto schemes = randomSchemes(rng, max_field_bits, max_pas_depth);
    ASSERT_GE(schemes.size(), 64u);
    appendLaneClasses(schemes, n_nodes);
    auto tr = randomTrace(rng, n_nodes, events);

    sweep::BatchEvaluator batch(schemes, n_nodes);
    sweep::BatchEvaluator simd(schemes, n_nodes,
                               sweep::BatchEngine::Simd);
    ASSERT_EQ(batch.size(), schemes.size());
    ASSERT_EQ(simd.size(), schemes.size());
    // The appended lane classes guarantee the simd engine actually
    // forms lane groups here — a degenerate all-scalar partition
    // would vacuously pass the triple.
    ASSERT_GE(simd.laneSchemes(), 20u);

    for (UpdateMode mode : kModes) {
        auto got = batch.evaluateTrace(tr, mode);
        auto got_simd = simd.evaluateTrace(tr, mode);
        ASSERT_EQ(got.size(), schemes.size());
        ASSERT_EQ(got_simd.size(), schemes.size());
        for (std::size_t i = 0; i < schemes.size(); ++i) {
            Confusion want =
                predict::evaluateTrace(tr, schemes[i], mode);
            expectExactMatch(got[i], want, schemes[i], mode);
            expectExactMatch(got_simd[i], want, schemes[i], mode);
        }
    }
}

TEST(Differential, SixtyFourRandomSchemesSixteenNodes)
{
    runDifferential(/*seed=*/1, /*n_nodes=*/16, /*events=*/2000,
                    /*max_field_bits=*/3, /*max_pas_depth=*/4);
}

TEST(Differential, SmallMachineFourNodes)
{
    runDifferential(/*seed=*/2, /*n_nodes=*/4, /*events=*/1500,
                    /*max_field_bits=*/4, /*max_pas_depth=*/4);
}

TEST(Differential, FullWordMachineSixtyFourNodes)
{
    // 64 nodes: sharing bitmaps use all 64 bits, so popcount-based
    // confusion accumulation has no headroom for mask slips.
    runDifferential(/*seed=*/3, /*n_nodes=*/64, /*events=*/1200,
                    /*max_field_bits=*/2, /*max_pas_depth=*/2);
}

/** The perceptron triple: reference oracle vs scalar batch vs simd
 *  engine (which must route perceptron and hashed-index schemes to
 *  its scalar lane path without disturbing their counts). */
void
runPerceptronDifferential(std::uint64_t seed, unsigned n_nodes,
                          std::size_t events, unsigned max_field_bits)
{
    Rng rng(seed);
    auto schemes = perceptronSchemes(rng, max_field_bits);
    ASSERT_GE(schemes.size(), 31u);
    auto tr = randomTrace(rng, n_nodes, events);

    sweep::BatchEvaluator batch(schemes, n_nodes);
    sweep::BatchEvaluator simd(schemes, n_nodes,
                               sweep::BatchEngine::Simd);
    ASSERT_EQ(batch.size(), schemes.size());
    ASSERT_EQ(simd.size(), schemes.size());

    for (UpdateMode mode : kModes) {
        auto got = batch.evaluateTrace(tr, mode);
        auto got_simd = simd.evaluateTrace(tr, mode);
        ASSERT_EQ(got.size(), schemes.size());
        ASSERT_EQ(got_simd.size(), schemes.size());
        for (std::size_t i = 0; i < schemes.size(); ++i) {
            Confusion want =
                predict::evaluateTrace(tr, schemes[i], mode);
            expectExactMatch(got[i], want, schemes[i], mode);
            expectExactMatch(got_simd[i], want, schemes[i], mode);
        }
    }
}

TEST(Differential, PerceptronSixteenNodes)
{
    runPerceptronDifferential(/*seed=*/41, /*n_nodes=*/16,
                              /*events=*/2000, /*max_field_bits=*/3);
}

TEST(Differential, PerceptronSmallMachineFourNodes)
{
    runPerceptronDifferential(/*seed=*/43, /*n_nodes=*/4,
                              /*events=*/1500, /*max_field_bits=*/4);
}

TEST(Differential, PerceptronFullWordMachineSixtyFourNodes)
{
    runPerceptronDifferential(/*seed=*/47, /*n_nodes=*/64,
                              /*events=*/1200, /*max_field_bits=*/2);
}

TEST(Differential, SuiteResultsMatchReferenceSuite)
{
    Rng rng(17);
    auto schemes = randomSchemes(rng, /*max_field_bits=*/3,
                                 /*max_pas_depth=*/2);
    std::vector<SharingTrace> suite;
    suite.push_back(randomTrace(rng, 16, 800, "alpha"));
    suite.push_back(randomTrace(rng, 16, 1200, "beta"));
    suite.push_back(randomTrace(rng, 16, 400, "gamma"));

    sweep::BatchEvaluator batch(schemes, 16);
    for (UpdateMode mode : kModes) {
        auto got = batch.evaluateSuite(suite, mode);
        ASSERT_EQ(got.size(), schemes.size());
        for (std::size_t i = 0; i < schemes.size(); ++i) {
            auto want = predict::evaluateSuite(suite, schemes[i], mode);
            EXPECT_EQ(got[i].scheme, want.scheme);
            EXPECT_EQ(got[i].mode, mode);
            expectExactMatch(got[i].pooled, want.pooled, schemes[i],
                             mode);
            ASSERT_EQ(got[i].perTrace.size(), want.perTrace.size());
            for (std::size_t t = 0; t < want.perTrace.size(); ++t) {
                EXPECT_EQ(got[i].perTrace[t].traceName,
                          want.perTrace[t].traceName);
                expectExactMatch(got[i].perTrace[t].confusion,
                                 want.perTrace[t].confusion,
                                 schemes[i], mode);
            }
        }
    }
}

TEST(Differential, StateIsClearedBetweenTraces)
{
    // Evaluating the same trace twice through one BatchEvaluator must
    // give identical counts: no state may leak across evaluations.
    Rng rng(23);
    auto schemes = randomSchemes(rng, /*max_field_bits=*/3,
                                 /*max_pas_depth=*/2);
    auto tr = randomTrace(rng, 16, 600);
    sweep::BatchEvaluator batch(schemes, 16);
    for (UpdateMode mode : kModes) {
        auto first = batch.evaluateTrace(tr, mode);
        auto second = batch.evaluateTrace(tr, mode);
        for (std::size_t i = 0; i < schemes.size(); ++i)
            expectExactMatch(second[i], first[i], schemes[i], mode);
    }
}

// ---------------------------------------------------------------------
// Simd engine specifics: backend selection and lane partitioning.

/** Scoped CCP_SIMD_DISABLE=1 (BatchEvaluator reads it per ctor). */
class ScopedSimdDisable
{
  public:
    ScopedSimdDisable()
    {
        const char *old = std::getenv("CCP_SIMD_DISABLE");
        hadOld_ = old != nullptr;
        if (hadOld_)
            old_ = old;
        ::setenv("CCP_SIMD_DISABLE", "1", 1);
    }
    ~ScopedSimdDisable()
    {
        if (hadOld_)
            ::setenv("CCP_SIMD_DISABLE", old_.c_str(), 1);
        else
            ::unsetenv("CCP_SIMD_DISABLE");
    }

  private:
    bool hadOld_ = false;
    std::string old_;
};

TEST(SimdKernel, DisableOverrideForcesScalarLanes)
{
    Rng rng(31);
    auto schemes = randomSchemes(rng, 3, 2);
    appendLaneClasses(schemes, 16);
    auto tr = randomTrace(rng, 16, 900);

    // Preferred backend (avx2 on capable hosts, scalar elsewhere)...
    sweep::BatchEvaluator preferred(schemes, 16,
                                    sweep::BatchEngine::Simd);
    ASSERT_GE(preferred.laneSchemes(), 20u);
    std::vector<std::vector<Confusion>> want;
    for (UpdateMode mode : kModes)
        want.push_back(preferred.evaluateTrace(tr, mode));

    // ...and the forced portable lane path must agree exactly.
    ScopedSimdDisable disable;
    sweep::BatchEvaluator forced(schemes, 16,
                                 sweep::BatchEngine::Simd);
    EXPECT_STREQ(forced.laneBackend(), "scalar");
    EXPECT_STREQ(sweep::simdBackendName(), "scalar");
    EXPECT_EQ(forced.laneSchemes(), preferred.laneSchemes());
    for (std::size_t m = 0; m < std::size(kModes); ++m) {
        auto got = forced.evaluateTrace(tr, kModes[m]);
        ASSERT_EQ(got.size(), want[m].size());
        for (std::size_t i = 0; i < got.size(); ++i)
            expectExactMatch(got[i], want[m][i], schemes[i],
                             kModes[m]);
    }
}

TEST(SimdKernel, PerceptronTripleHoldsUnderForcedScalarLanes)
{
    // The perceptron differential again, but with the simd engine
    // forced onto its portable scalar lane path: the scalar-routed
    // perceptron schemes must be unaffected by the backend override.
    ScopedSimdDisable disable;
    runPerceptronDifferential(/*seed=*/53, /*n_nodes=*/16,
                              /*events=*/1200, /*max_field_bits=*/3);
}

TEST(SimdKernel, ScalarEngineFormsNoLaneGroups)
{
    Rng rng(37);
    auto schemes = randomSchemes(rng, 2, 2);
    sweep::BatchEvaluator scalar(schemes, 16);
    EXPECT_EQ(scalar.engine(), sweep::BatchEngine::Scalar);
    EXPECT_EQ(scalar.laneSchemes(), 0u);
    EXPECT_STREQ(scalar.laneBackend(), "none");
}

TEST(SimdKernel, LaneGroupsAreMultiplesOfFourAndStateMatches)
{
    // Eight identical-layout schemes (same family, depth, indexBits)
    // must form exactly two full lane groups with no scalar leftovers
    // growing the footprint: the simd engine's state total equals the
    // scalar engine's (same entries x words, different interleave).
    std::vector<SchemeSpec> schemes;
    IndexSpec idx;
    idx.addrBits = 6;
    for (int i = 0; i < 8; ++i)
        schemes.push_back(SchemeSpec{idx, FunctionKind::Union, 2});

    sweep::BatchEvaluator scalar(schemes, 16);
    sweep::BatchEvaluator simd(schemes, 16,
                               sweep::BatchEngine::Simd);
    EXPECT_EQ(simd.laneSchemes(), 8u);
    EXPECT_EQ(simd.stateWords(), scalar.stateWords());
}

// ---------------------------------------------------------------------
// schemeStateWords overflow hardening: adversarial index widths must
// die with a structured error instead of wrapping size_t and
// under-allocating state.

using SchemeStateWordsDeathTest = ::testing::Test;

TEST(SchemeStateWordsDeathTest, RejectsIndexPastTableCeiling)
{
    SchemeSpec s;
    s.index.addrBits = 40; // 2^40 entries: over maxTableIndexBits
    s.kind = FunctionKind::Union;
    s.depth = 1;
    EXPECT_DEATH(sweep::schemeStateWords(s, 16), "index width");
}

TEST(SchemeStateWordsDeathTest, RejectsShiftThatWouldWrapSizeT)
{
    // 2^62 entries x 2 words wraps a 64-bit size_t outright — the
    // classic under-allocation. The width gate must fire first.
    SchemeSpec s;
    s.index.addrBits = 62;
    s.kind = FunctionKind::Union;
    s.depth = 1;
    EXPECT_DEATH(sweep::schemeStateWords(s, 16), "index width");
}

TEST(SchemeStateWordsDeathTest, BatchConstructorRejectsWideIndex)
{
    std::vector<SchemeSpec> schemes;
    SchemeSpec s;
    s.index.addrBits = 40;
    s.kind = FunctionKind::Union;
    s.depth = 1;
    schemes.push_back(s);
    EXPECT_DEATH(sweep::BatchEvaluator(schemes, 16), "index width");
    EXPECT_DEATH(sweep::BatchEvaluator(schemes, 16,
                                       sweep::BatchEngine::Simd),
                 "index width");
}

TEST(SchemeStateWords, AcceptsTheWidestLegalScheme)
{
    SchemeSpec s;
    s.index.addrBits = 18; // + dir(4) + pid(4) stays <= 26 at 16 nodes
    s.index.useDir = true;
    s.index.usePid = true;
    s.kind = FunctionKind::Union;
    s.depth = 32;
    EXPECT_EQ(sweep::schemeStateWords(s, 16),
              (std::size_t(1) << 26) * 33);
}

// ---------------------------------------------------------------------
// planBatches: the partition the parallel sweep hands to this kernel.

TEST(PlanBatches, CoversEverySchemeContiguouslyInOrder)
{
    Rng rng(5);
    auto schemes = randomSchemes(rng, 3, 4);
    auto plan = sweep::planBatches(schemes, 16);
    ASSERT_FALSE(plan.empty());
    std::size_t next = 0;
    for (const auto &[first, last] : plan) {
        EXPECT_EQ(first, next);
        EXPECT_LT(first, last);
        next = last;
    }
    EXPECT_EQ(next, schemes.size());
}

TEST(PlanBatches, RespectsSchemeCountBudget)
{
    Rng rng(6);
    auto schemes = randomSchemes(rng, 2, 2);
    auto plan = sweep::planBatches(schemes, 16,
                                   /*max_state_words=*/std::size_t(4)
                                       << 20,
                                   /*max_schemes=*/8);
    for (const auto &[first, last] : plan)
        EXPECT_LE(last - first, 8u);
}

TEST(PlanBatches, OversizedSchemeStillFormsItsOwnBatch)
{
    // A single scheme over the state budget must not be dropped or
    // wedge the planner.
    std::vector<SchemeSpec> schemes;
    IndexSpec big;
    big.addrBits = 16;
    schemes.push_back(SchemeSpec{big, FunctionKind::Union, 4});
    schemes.push_back(SchemeSpec{{}, FunctionKind::Union, 1});
    auto plan = sweep::planBatches(schemes, 16,
                                   /*max_state_words=*/1024,
                                   /*max_schemes=*/32);
    ASSERT_EQ(plan.size(), 2u);
    EXPECT_EQ(plan[0], (std::pair<std::size_t, std::size_t>{0, 1}));
    EXPECT_EQ(plan[1], (std::pair<std::size_t, std::size_t>{1, 2}));
}

} // namespace
