/**
 * @file
 * Differential tests: the event-major BatchEvaluator against the
 * reference per-scheme Evaluator, asserting *exact* equality of
 * Confusion counts on randomized traces.
 *
 * The batched kernel re-implements the per-entry state transitions
 * (window, overlap-last) and the index computation (IndexPlan), so the
 * reference evaluator is kept alive as the oracle: any divergence in
 * semantics — update ordering, window rotation, index packing, word
 * boundaries — shows up here as an exact-count mismatch.
 *
 * Coverage: all 16 indexing classes of Table 1 x all four function
 * families x history depths 1..4 x all three update modes, on machines
 * of 4, 16, and 64 nodes (the last stressing full-width 64-bit
 * sharing bitmaps).
 */

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "common/rng.hh"
#include "predict/evaluator.hh"
#include "sweep/batch.hh"
#include "sweep/name.hh"

namespace {

using namespace ccp;
using predict::Confusion;
using predict::FunctionKind;
using predict::IndexSpec;
using predict::SchemeSpec;
using predict::UpdateMode;
using trace::CoherenceEvent;
using trace::SharingTrace;

constexpr UpdateMode kModes[] = {UpdateMode::Direct,
                                 UpdateMode::Forwarded,
                                 UpdateMode::Ordered};

/** Builder that wires invalidation/last-writer chains automatically
 *  (ordered update needs real prevEvent chains). */
class TraceBuilder
{
  public:
    explicit TraceBuilder(unsigned n_nodes, const char *name = "built")
        : trace_(name, n_nodes)
    {
    }

    TraceBuilder &
    writeEvent(NodeId pid, Pc pc, Addr block, std::uint64_t readers)
    {
        CoherenceEvent ev;
        ev.pid = pid;
        ev.pc = pc;
        ev.dir = static_cast<NodeId>(block % trace_.nNodes());
        ev.block = block;
        ev.readers = SharingBitmap(readers);

        auto it = lastOnBlock_.find(block);
        if (it != lastOnBlock_.end()) {
            const CoherenceEvent &prev = trace_.events()[it->second];
            ev.invalidated = prev.readers;
            ev.prevWriterPid = prev.pid;
            ev.prevWriterPc = prev.pc;
            ev.hasPrevWriter = true;
            ev.prevEvent = it->second;
        }
        lastOnBlock_[block] = trace_.append(ev);
        return *this;
    }

    SharingTrace take() { return std::move(trace_); }

  private:
    SharingTrace trace_;
    std::unordered_map<Addr, EventSeq> lastOnBlock_;
};

SharingTrace
randomTrace(Rng &rng, unsigned n_nodes, std::size_t events,
            const char *name = "random")
{
    const std::uint64_t reader_mask =
        n_nodes >= 64 ? ~std::uint64_t(0)
                      : (std::uint64_t(1) << n_nodes) - 1;
    TraceBuilder b(n_nodes, name);
    for (std::size_t i = 0; i < events; ++i) {
        // 64 blocks and 32 store pcs: enough reuse that every block
        // builds long writer chains and table entries alias under
        // narrow indexing.
        b.writeEvent(static_cast<NodeId>(rng.below(n_nodes)),
                     0x400 + 4 * rng.below(32), rng.below(64),
                     rng() & reader_mask);
    }
    return b.take();
}

/**
 * One scheme per (Table-1 class x function family), with randomized
 * pc/addr widths and history depths 1..4: 64 schemes per call.
 */
std::vector<SchemeSpec>
randomSchemes(Rng &rng, unsigned max_field_bits, unsigned max_pas_depth)
{
    const FunctionKind kinds[] = {FunctionKind::Union,
                                  FunctionKind::Inter,
                                  FunctionKind::OverlapLast,
                                  FunctionKind::PAs};
    std::vector<SchemeSpec> schemes;
    for (unsigned cs = 0; cs < 16; ++cs) {
        for (FunctionKind kind : kinds) {
            IndexSpec idx;
            idx.usePid = (cs & 8) != 0;
            idx.pcBits =
                cs & 4 ? 1 + unsigned(rng.below(max_field_bits)) : 0;
            idx.useDir = (cs & 2) != 0;
            idx.addrBits =
                cs & 1 ? 1 + unsigned(rng.below(max_field_bits)) : 0;
            // PAs state grows exponentially in depth; keep its grid
            // narrower so the oracle runs stay fast.
            unsigned depth =
                kind == FunctionKind::PAs
                    ? 1 + unsigned(rng.below(max_pas_depth))
                    : 1 + unsigned(rng.below(4));
            schemes.push_back(SchemeSpec{idx, kind, depth});
        }
    }
    return schemes;
}

void
expectExactMatch(const Confusion &got, const Confusion &want,
                 const SchemeSpec &scheme, UpdateMode mode)
{
    EXPECT_EQ(got.tp, want.tp) << sweep::formatScheme(scheme) << " "
                               << predict::updateModeName(mode);
    EXPECT_EQ(got.fp, want.fp) << sweep::formatScheme(scheme) << " "
                               << predict::updateModeName(mode);
    EXPECT_EQ(got.tn, want.tn) << sweep::formatScheme(scheme) << " "
                               << predict::updateModeName(mode);
    EXPECT_EQ(got.fn, want.fn) << sweep::formatScheme(scheme) << " "
                               << predict::updateModeName(mode);
}

void
runDifferential(std::uint64_t seed, unsigned n_nodes,
                std::size_t events, unsigned max_field_bits,
                unsigned max_pas_depth)
{
    Rng rng(seed);
    auto schemes = randomSchemes(rng, max_field_bits, max_pas_depth);
    ASSERT_GE(schemes.size(), 64u);
    auto tr = randomTrace(rng, n_nodes, events);

    sweep::BatchEvaluator batch(schemes, n_nodes);
    ASSERT_EQ(batch.size(), schemes.size());

    for (UpdateMode mode : kModes) {
        auto got = batch.evaluateTrace(tr, mode);
        ASSERT_EQ(got.size(), schemes.size());
        for (std::size_t i = 0; i < schemes.size(); ++i) {
            Confusion want =
                predict::evaluateTrace(tr, schemes[i], mode);
            expectExactMatch(got[i], want, schemes[i], mode);
        }
    }
}

TEST(Differential, SixtyFourRandomSchemesSixteenNodes)
{
    runDifferential(/*seed=*/1, /*n_nodes=*/16, /*events=*/2000,
                    /*max_field_bits=*/3, /*max_pas_depth=*/4);
}

TEST(Differential, SmallMachineFourNodes)
{
    runDifferential(/*seed=*/2, /*n_nodes=*/4, /*events=*/1500,
                    /*max_field_bits=*/4, /*max_pas_depth=*/4);
}

TEST(Differential, FullWordMachineSixtyFourNodes)
{
    // 64 nodes: sharing bitmaps use all 64 bits, so popcount-based
    // confusion accumulation has no headroom for mask slips.
    runDifferential(/*seed=*/3, /*n_nodes=*/64, /*events=*/1200,
                    /*max_field_bits=*/2, /*max_pas_depth=*/2);
}

TEST(Differential, SuiteResultsMatchReferenceSuite)
{
    Rng rng(17);
    auto schemes = randomSchemes(rng, /*max_field_bits=*/3,
                                 /*max_pas_depth=*/2);
    std::vector<SharingTrace> suite;
    suite.push_back(randomTrace(rng, 16, 800, "alpha"));
    suite.push_back(randomTrace(rng, 16, 1200, "beta"));
    suite.push_back(randomTrace(rng, 16, 400, "gamma"));

    sweep::BatchEvaluator batch(schemes, 16);
    for (UpdateMode mode : kModes) {
        auto got = batch.evaluateSuite(suite, mode);
        ASSERT_EQ(got.size(), schemes.size());
        for (std::size_t i = 0; i < schemes.size(); ++i) {
            auto want = predict::evaluateSuite(suite, schemes[i], mode);
            EXPECT_EQ(got[i].scheme, want.scheme);
            EXPECT_EQ(got[i].mode, mode);
            expectExactMatch(got[i].pooled, want.pooled, schemes[i],
                             mode);
            ASSERT_EQ(got[i].perTrace.size(), want.perTrace.size());
            for (std::size_t t = 0; t < want.perTrace.size(); ++t) {
                EXPECT_EQ(got[i].perTrace[t].traceName,
                          want.perTrace[t].traceName);
                expectExactMatch(got[i].perTrace[t].confusion,
                                 want.perTrace[t].confusion,
                                 schemes[i], mode);
            }
        }
    }
}

TEST(Differential, StateIsClearedBetweenTraces)
{
    // Evaluating the same trace twice through one BatchEvaluator must
    // give identical counts: no state may leak across evaluations.
    Rng rng(23);
    auto schemes = randomSchemes(rng, /*max_field_bits=*/3,
                                 /*max_pas_depth=*/2);
    auto tr = randomTrace(rng, 16, 600);
    sweep::BatchEvaluator batch(schemes, 16);
    for (UpdateMode mode : kModes) {
        auto first = batch.evaluateTrace(tr, mode);
        auto second = batch.evaluateTrace(tr, mode);
        for (std::size_t i = 0; i < schemes.size(); ++i)
            expectExactMatch(second[i], first[i], schemes[i], mode);
    }
}

// ---------------------------------------------------------------------
// planBatches: the partition the parallel sweep hands to this kernel.

TEST(PlanBatches, CoversEverySchemeContiguouslyInOrder)
{
    Rng rng(5);
    auto schemes = randomSchemes(rng, 3, 4);
    auto plan = sweep::planBatches(schemes, 16);
    ASSERT_FALSE(plan.empty());
    std::size_t next = 0;
    for (const auto &[first, last] : plan) {
        EXPECT_EQ(first, next);
        EXPECT_LT(first, last);
        next = last;
    }
    EXPECT_EQ(next, schemes.size());
}

TEST(PlanBatches, RespectsSchemeCountBudget)
{
    Rng rng(6);
    auto schemes = randomSchemes(rng, 2, 2);
    auto plan = sweep::planBatches(schemes, 16,
                                   /*max_state_words=*/std::size_t(4)
                                       << 20,
                                   /*max_schemes=*/8);
    for (const auto &[first, last] : plan)
        EXPECT_LE(last - first, 8u);
}

TEST(PlanBatches, OversizedSchemeStillFormsItsOwnBatch)
{
    // A single scheme over the state budget must not be dropped or
    // wedge the planner.
    std::vector<SchemeSpec> schemes;
    IndexSpec big;
    big.addrBits = 16;
    schemes.push_back(SchemeSpec{big, FunctionKind::Union, 4});
    schemes.push_back(SchemeSpec{{}, FunctionKind::Union, 1});
    auto plan = sweep::planBatches(schemes, 16,
                                   /*max_state_words=*/1024,
                                   /*max_schemes=*/32);
    ASSERT_EQ(plan.size(), 2u);
    EXPECT_EQ(plan[0], (std::pair<std::size_t, std::size_t>{0, 1}));
    EXPECT_EQ(plan[1], (std::pair<std::size_t, std::size_t>{1, 2}));
}

} // namespace
