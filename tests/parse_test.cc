/**
 * @file
 * Tests for the strict numeric parsers (common/parse.hh).  These
 * exist because the strtoul family silently accepts what a CLI flag
 * or environment knob must reject: leading whitespace, signs
 * (strtoull wraps "-1" to 2^64-1 without error), trailing garbage,
 * and out-of-range values clamped to the type maximum.  Every
 * rejection here was a silent mis-parse before the sweep to these
 * helpers — most damningly CCP_SEED, where an atoi-style prefix parse
 * collapsed distinct-looking seeds onto one trace cache key.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

#include "common/parse.hh"

namespace {

using namespace ccp;

TEST(ParseU64, AcceptsPlainDecimal)
{
    std::uint64_t v = 99;
    EXPECT_TRUE(parseU64("0", v));
    EXPECT_EQ(v, 0u);
    EXPECT_TRUE(parseU64("42", v));
    EXPECT_EQ(v, 42u);
    EXPECT_TRUE(parseU64("18446744073709551615", v));
    EXPECT_EQ(v, std::numeric_limits<std::uint64_t>::max());
}

TEST(ParseU64, Base0AcceptsHexAndOctal)
{
    std::uint64_t v = 0;
    EXPECT_TRUE(parseU64("0x5eed", v, 0));
    EXPECT_EQ(v, 0x5eedu);
    EXPECT_TRUE(parseU64("0755", v, 0));
    EXPECT_EQ(v, 0755u);
    // Base 10 does not: "0x5eed" would be a prefix parse.
    EXPECT_FALSE(parseU64("0x5eed", v));
}

TEST(ParseU64, RejectsWhatStrtoullAccepts)
{
    std::uint64_t v = 0;
    // Negative numbers wrap modulo 2^64 under strtoull — no error.
    EXPECT_FALSE(parseU64("-1", v));
    // Explicit plus sign, leading whitespace: prefix-skipped.
    EXPECT_FALSE(parseU64("+7", v));
    EXPECT_FALSE(parseU64(" 7", v));
    // Trailing garbage: "12abc" parses as 12.
    EXPECT_FALSE(parseU64("12abc", v));
    EXPECT_FALSE(parseU64("12 ", v));
    // Out of range: clamped to ULLONG_MAX with errno the only tell.
    EXPECT_FALSE(parseU64("18446744073709551616", v));
    EXPECT_FALSE(parseU64("", v));
    EXPECT_FALSE(parseU64("abc", v));
}

TEST(ParseU64InRange, EnforcesTheCeiling)
{
    std::uint64_t v = 0;
    EXPECT_TRUE(parseU64InRange("4096", v, 4096));
    EXPECT_EQ(v, 4096u);
    EXPECT_FALSE(parseU64InRange("4097", v, 4096));
    EXPECT_FALSE(parseU64InRange("-1", v, 4096));
}

TEST(ParseDouble, AcceptsOrdinaryNumbers)
{
    double v = 0;
    EXPECT_TRUE(parseDouble("1.5", v));
    EXPECT_DOUBLE_EQ(v, 1.5);
    EXPECT_TRUE(parseDouble("-0.25", v));
    EXPECT_DOUBLE_EQ(v, -0.25);
    EXPECT_TRUE(parseDouble(".5", v));
    EXPECT_DOUBLE_EQ(v, 0.5);
    EXPECT_TRUE(parseDouble("2e3", v));
    EXPECT_DOUBLE_EQ(v, 2000.0);
}

TEST(ParseDouble, RejectsGarbageAndNonFinite)
{
    double v = 0;
    EXPECT_FALSE(parseDouble("", v));
    EXPECT_FALSE(parseDouble(" 1.5", v));
    EXPECT_FALSE(parseDouble("1.5x", v));
    // strtod parses these happily; a scale or interval must not be
    // infinite or NaN.
    EXPECT_FALSE(parseDouble("inf", v));
    EXPECT_FALSE(parseDouble("nan", v));
    EXPECT_FALSE(parseDouble("1e999", v));
    // Hex floats are a strtod extension no flag documents.
    EXPECT_FALSE(parseDouble("0x1p4", v));
}

} // namespace
