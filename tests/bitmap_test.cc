/**
 * @file
 * Unit and property tests for SharingBitmap.
 */

#include <gtest/gtest.h>

#include "common/bitmap.hh"
#include "common/rng.hh"

namespace {

using ccp::Rng;
using ccp::SharingBitmap;

TEST(Bitmap, DefaultIsEmpty)
{
    SharingBitmap b;
    EXPECT_TRUE(b.empty());
    EXPECT_EQ(b.popcount(), 0u);
    EXPECT_EQ(b.raw(), 0u);
}

TEST(Bitmap, SetResetTest)
{
    SharingBitmap b;
    b.set(3);
    b.set(15);
    EXPECT_TRUE(b.test(3));
    EXPECT_TRUE(b.test(15));
    EXPECT_FALSE(b.test(4));
    EXPECT_EQ(b.popcount(), 2u);

    b.reset(3);
    EXPECT_FALSE(b.test(3));
    EXPECT_EQ(b.popcount(), 1u);
}

TEST(Bitmap, AssignWritesEitherValue)
{
    SharingBitmap b;
    b.assign(7, true);
    EXPECT_TRUE(b.test(7));
    b.assign(7, false);
    EXPECT_FALSE(b.test(7));
}

TEST(Bitmap, SingleFactory)
{
    for (unsigned n = 0; n < 64; ++n) {
        SharingBitmap b = SharingBitmap::single(n);
        EXPECT_EQ(b.popcount(), 1u);
        EXPECT_TRUE(b.test(n));
    }
}

TEST(Bitmap, AllFactory)
{
    EXPECT_EQ(SharingBitmap::all(16).popcount(), 16u);
    EXPECT_EQ(SharingBitmap::all(64).popcount(), 64u);
    EXPECT_EQ(SharingBitmap::all(1).raw(), 1u);
    EXPECT_TRUE(SharingBitmap::all(0).empty());
}

TEST(Bitmap, HighestNodeBoundary)
{
    SharingBitmap b;
    b.set(63);
    EXPECT_TRUE(b.test(63));
    EXPECT_EQ(b.popcount(), 1u);
}

TEST(Bitmap, SetOutOfRangeDies)
{
    SharingBitmap b;
    EXPECT_DEATH(b.set(64), "out of range");
}

TEST(Bitmap, UnionIntersectionXor)
{
    SharingBitmap a(0b1100), b(0b1010);
    EXPECT_EQ((a | b).raw(), 0b1110u);
    EXPECT_EQ((a & b).raw(), 0b1000u);
    EXPECT_EQ((a ^ b).raw(), 0b0110u);
    EXPECT_EQ(a.minus(b).raw(), 0b0100u);
}

TEST(Bitmap, SubsetAndIntersects)
{
    SharingBitmap a(0b0110), b(0b1110), c(0b0001);
    EXPECT_TRUE(a.subsetOf(b));
    EXPECT_FALSE(b.subsetOf(a));
    EXPECT_TRUE(a.subsetOf(a));
    EXPECT_TRUE(c.subsetOf(b | c));
    EXPECT_TRUE(a.intersects(b));
    EXPECT_FALSE(a.intersects(c));
    EXPECT_TRUE(SharingBitmap().subsetOf(a));
    EXPECT_FALSE(SharingBitmap().intersects(a));
}

TEST(Bitmap, CompoundAssignment)
{
    SharingBitmap a(0b0101);
    a |= SharingBitmap(0b0010);
    EXPECT_EQ(a.raw(), 0b0111u);
    a &= SharingBitmap(0b0110);
    EXPECT_EQ(a.raw(), 0b0110u);
}

TEST(Bitmap, ToString)
{
    SharingBitmap b;
    b.set(1);
    b.set(14);
    EXPECT_EQ(b.toString(16), "0100000000000010");
    EXPECT_EQ(SharingBitmap().toString(4), "0000");
}

/** Algebraic properties over random bitmaps. */
class BitmapPropertyTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(BitmapPropertyTest, SetAlgebra)
{
    Rng rng(GetParam());
    for (int i = 0; i < 200; ++i) {
        SharingBitmap a(rng()), b(rng()), c(rng());

        // Intersection distributes over union.
        EXPECT_EQ((a & (b | c)).raw(), ((a & b) | (a & c)).raw());
        // De Morgan via minus: a \ (b | c) == (a \ b) & (a \ c).
        EXPECT_EQ(a.minus(b | c).raw(),
                  (a.minus(b) & a.minus(c)).raw());
        // Intersection is a subset of both operands; union a superset.
        EXPECT_TRUE((a & b).subsetOf(a));
        EXPECT_TRUE((a & b).subsetOf(b));
        EXPECT_TRUE(a.subsetOf(a | b));
        // popcount is additive over disjoint parts.
        EXPECT_EQ((a & b).popcount() + a.minus(b).popcount(),
                  a.popcount());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitmapPropertyTest,
                         ::testing::Values(1, 2, 3, 42, 0xdeadbeef));

} // namespace
