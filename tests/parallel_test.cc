/**
 * @file
 * Tests for the parallel sweep engine: the ThreadPool execution
 * primitive, sequential-vs-parallel equivalence of the scheme sweeps
 * (identical Confusion counts and identical ranked order at 1, 2,
 * and 8 threads), and exactness of the sharded stats-registry merge.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "obs/registry.hh"
#include "sweep/name.hh"
#include "sweep/parallel.hh"
#include "sweep/search.hh"
#include "sweep/space.hh"

namespace {

using namespace ccp;
using predict::Confusion;
using predict::SchemeSpec;
using predict::SuiteResult;
using predict::UpdateMode;

// ---------------------------------------------------------------------
// ThreadPool

TEST(ThreadPool, DefaultThreadsIsAtLeastOne)
{
    EXPECT_GE(ThreadPool::defaultThreads(), 1u);
    EXPECT_GE(ThreadPool(0).threads(), 1u);
}

TEST(ThreadPool, RunsEveryJobExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threads(), 4u);

    const std::size_t n = 257; // deliberately not a chunk multiple
    std::vector<std::atomic<int>> hits(n);
    pool.forEach(n, [&](std::size_t job, unsigned worker) {
        EXPECT_LT(worker, 4u);
        hits[job].fetch_add(1);
    });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "job " << i;
}

TEST(ThreadPool, EmptyJobListIsANoOp)
{
    ThreadPool pool(4);
    std::atomic<int> calls{0};
    pool.forEach(0, [&](std::size_t, unsigned) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, ManyMoreJobsThanWorkers)
{
    ThreadPool pool(2);
    const std::size_t n = 10000;
    std::atomic<std::size_t> sum{0};
    pool.forEach(n, [&](std::size_t job, unsigned) { sum += job; });
    EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(ThreadPool, SingleThreadPoolRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.threads(), 1u);
    const auto caller = std::this_thread::get_id();
    std::size_t calls = 0;
    pool.forEach(5, [&](std::size_t, unsigned worker) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        EXPECT_EQ(worker, 0u);
        ++calls;
    });
    EXPECT_EQ(calls, 5u);
}

TEST(ThreadPool, PropagatesJobExceptions)
{
    for (unsigned threads : {1u, 4u}) {
        ThreadPool pool(threads);
        EXPECT_THROW(
            pool.forEach(100,
                         [&](std::size_t job, unsigned) {
                             if (job == 42)
                                 throw std::runtime_error("boom");
                         }),
            std::runtime_error)
            << threads << " threads";

        // The pool must stay usable after a failed loop.
        std::atomic<int> calls{0};
        pool.forEach(10, [&](std::size_t, unsigned) { ++calls; });
        EXPECT_EQ(calls.load(), 10);
    }
}

TEST(ThreadPool, ExceptionCancelsUnclaimedJobs)
{
    ThreadPool pool(2);
    std::atomic<int> calls{0};
    EXPECT_THROW(pool.forEach(100000,
                              [&](std::size_t, unsigned) {
                                  ++calls;
                                  throw std::runtime_error("boom");
                              },
                              1),
                 std::runtime_error);
    // Each worker can fail at most one chunk; the rest are cancelled.
    EXPECT_LE(calls.load(), 2);
}

// The exception-propagation contract documented on forEach() —
// regression tests for what the resilient sweep runner relies on.

TEST(ThreadPool, FirstExceptionWinsWhenEveryJobThrows)
{
    // Every job throws its own index; exactly ONE escapes per loop and
    // it is one of the thrown values, never a mangled or second one.
    ThreadPool pool(4);
    for (int round = 0; round < 3; ++round) {
        std::atomic<int> thrown{0};
        bool caught = false;
        try {
            pool.forEach(
                64,
                [&](std::size_t job, unsigned) {
                    ++thrown;
                    throw std::size_t(job);
                },
                1);
        } catch (std::size_t job) {
            caught = true;
            EXPECT_LT(job, 64u);
        }
        EXPECT_TRUE(caught) << "round " << round;
        EXPECT_GE(thrown.load(), 1);
    }
}

TEST(ThreadPool, JobsAreNeverTornMidFlight)
{
    // Contract point 2: in-flight chunks on other workers run to
    // completion — every started job finishes even when a sibling
    // throws, so started == finished after the rethrow.
    ThreadPool pool(4);
    std::atomic<int> started{0};
    std::atomic<int> finished{0};
    EXPECT_THROW(pool.forEach(1000,
                              [&](std::size_t job, unsigned) {
                                  ++started;
                                  if (job == 7)
                                      throw std::runtime_error("boom");
                                  ++finished;
                              },
                              1),
                 std::runtime_error);
    // The thrower "finishes" by throwing; everyone else must have
    // completed its body before forEach returned.
    EXPECT_EQ(started.load(), finished.load() + 1);
}

TEST(ThreadPool, ErrorLatchResetsBetweenLoops)
{
    // Contract point 4: a failed loop must not poison later ones —
    // alternate failing and clean loops on one pool.
    ThreadPool pool(4);
    for (int round = 0; round < 3; ++round) {
        EXPECT_THROW(pool.forEach(50,
                                  [&](std::size_t job, unsigned) {
                                      if (job % 10 == 3)
                                          throw std::runtime_error("x");
                                  },
                                  1),
                     std::runtime_error)
            << "round " << round;

        std::atomic<int> calls{0};
        pool.forEach(50, [&](std::size_t, unsigned) { ++calls; });
        EXPECT_EQ(calls.load(), 50) << "round " << round;
    }
}

// ---------------------------------------------------------------------
// Sequential-vs-parallel sweep equivalence

/** A trace with learnable structure plus noise, so different schemes
 *  produce genuinely different confusion counts. */
trace::SharingTrace
noisyTrace(const char *name, std::uint64_t seed)
{
    trace::SharingTrace tr(name, 16);
    trace::CoherenceEvent prev_by_block[32];
    bool seen[32] = {};
    Rng rng(seed);
    for (int i = 0; i < 1500; ++i) {
        unsigned k = static_cast<unsigned>(rng.below(32));
        trace::CoherenceEvent ev;
        ev.pid = static_cast<NodeId>(k % 16);
        ev.pc = 0x400 + 4 * (k % 8);
        ev.block = k;
        ev.dir = k % 16;
        ev.readers = SharingBitmap::single((k + 1) % 16);
        if (rng.below(4) == 0) // noise: an extra, unstable reader
            ev.readers.set(static_cast<NodeId>(rng.below(16)));
        if (seen[k]) {
            ev.invalidated = prev_by_block[k].readers;
            ev.prevWriterPid = prev_by_block[k].pid;
            ev.prevWriterPc = prev_by_block[k].pc;
            ev.hasPrevWriter = true;
        }
        seen[k] = true;
        prev_by_block[k] = ev;
        tr.append(ev);
    }
    return tr;
}

std::vector<trace::SharingTrace>
smallSuite()
{
    std::vector<trace::SharingTrace> suite;
    suite.push_back(noisyTrace("alpha", 7));
    suite.push_back(noisyTrace("beta", 23));
    return suite;
}

std::vector<SchemeSpec>
smallSpace()
{
    sweep::SpaceSpec spec;
    spec.maxBits = std::uint64_t(1) << 12;
    spec.pcBitsGrid = {0, 2, 4};
    spec.addrBitsGrid = {0, 2, 4};
    spec.pasDepths = {1};
    return enumerateSchemes(spec);
}

void
expectSameConfusion(const Confusion &a, const Confusion &b,
                    const std::string &what)
{
    EXPECT_EQ(a.tp, b.tp) << what;
    EXPECT_EQ(a.fp, b.fp) << what;
    EXPECT_EQ(a.tn, b.tn) << what;
    EXPECT_EQ(a.fn, b.fn) << what;
}

TEST(ParallelSweep, EvaluationMatchesSequentialAtAnyThreadCount)
{
    auto suite = smallSuite();
    auto schemes = smallSpace();
    ASSERT_GE(schemes.size(), 20u);

    auto sequential = sweep::evaluateSchemes(suite, schemes,
                                             UpdateMode::Forwarded, 1);
    for (unsigned threads : {2u, 8u}) {
        auto parallel = sweep::evaluateSchemes(
            suite, schemes, UpdateMode::Forwarded, threads);
        ASSERT_EQ(parallel.size(), sequential.size());
        for (std::size_t i = 0; i < parallel.size(); ++i) {
            const std::string what = sweep::formatScheme(schemes[i]) +
                                     " @" + std::to_string(threads);
            EXPECT_EQ(parallel[i].scheme, sequential[i].scheme);
            expectSameConfusion(parallel[i].pooled,
                                sequential[i].pooled, what);
            ASSERT_EQ(parallel[i].perTrace.size(),
                      sequential[i].perTrace.size());
            for (std::size_t t = 0; t < parallel[i].perTrace.size();
                 ++t) {
                EXPECT_EQ(parallel[i].perTrace[t].traceName,
                          sequential[i].perTrace[t].traceName);
                expectSameConfusion(parallel[i].perTrace[t].confusion,
                                    sequential[i].perTrace[t].confusion,
                                    what);
            }
        }
    }
}

TEST(ParallelSweep, RankingIsIdenticalAtAnyThreadCount)
{
    auto suite = smallSuite();
    auto schemes = smallSpace();

    auto baseline = sweep::rankSchemes(suite, schemes,
                                       UpdateMode::Direct, sweep::RankBy::Pvp,
                                       10, {}, 1);
    ASSERT_EQ(baseline.size(), 10u);
    for (unsigned threads : {2u, 8u}) {
        auto ranked = sweep::rankSchemes(suite, schemes,
                                         UpdateMode::Direct,
                                         sweep::RankBy::Pvp, 10, {},
                                         threads);
        ASSERT_EQ(ranked.size(), baseline.size());
        for (std::size_t i = 0; i < ranked.size(); ++i) {
            EXPECT_EQ(sweep::formatScheme(ranked[i].result.scheme),
                      sweep::formatScheme(baseline[i].result.scheme))
                << "rank " << i << " @" << threads << " threads";
            EXPECT_EQ(ranked[i].score, baseline[i].score);
            expectSameConfusion(ranked[i].result.pooled,
                                baseline[i].result.pooled,
                                "rank " + std::to_string(i));
        }
    }
}

TEST(ParallelSweep, ShardMergeKeepsSweepStatsExact)
{
    auto suite = smallSuite();
    auto schemes = smallSpace();

    // The per-scheme stats contract below is the *reference* kernel's
    // (one evaluator pass per scheme); the batched kernel's coarser
    // accounting has its own test.
    obs::StatsRegistry parent;
    {
        obs::ScopedRegistry route(parent);
        sweep::ParallelSweep(4, sweep::SweepKernel::Reference)
            .evaluate(suite, schemes, UpdateMode::Direct);
    }

    const auto *evaluated =
        parent.findCounter("sweep.schemes_evaluated");
    ASSERT_NE(evaluated, nullptr);
    EXPECT_EQ(evaluated->value, schemes.size());

    const auto *traces = parent.findCounter("evaluator.traces");
    ASSERT_NE(traces, nullptr);
    EXPECT_EQ(traces->value, schemes.size() * suite.size());

    const auto *per_scheme =
        parent.findSummary("sweep.scheme_eval_seconds");
    ASSERT_NE(per_scheme, nullptr);
    EXPECT_EQ(per_scheme->count(), schemes.size());

    const auto *occupancy =
        parent.findSummary("evaluator.table_occupancy");
    ASSERT_NE(occupancy, nullptr);
    EXPECT_EQ(occupancy->count(), schemes.size());
}

TEST(ParallelSweep, ProgressIsMonotonicAndComplete)
{
    auto suite = smallSuite();
    auto schemes = smallSpace();

    std::vector<std::size_t> dones;
    sweep::ParallelSweep(8, sweep::SweepKernel::Reference)
        .evaluate(suite, schemes, UpdateMode::Direct,
                  [&](const obs::Progress &p) {
                      dones.push_back(p.done);
                      EXPECT_EQ(p.total, schemes.size());
                  });
    ASSERT_EQ(dones.size(), schemes.size());
    for (std::size_t i = 1; i < dones.size(); ++i)
        EXPECT_GE(dones[i], dones[i - 1]) << "tick " << i;
    EXPECT_EQ(dones.back(), schemes.size());
}

// ---------------------------------------------------------------------
// Batched kernel under ParallelSweep

TEST(BatchedSweep, MatchesReferenceKernelExactlyAtAnyThreadCount)
{
    auto suite = smallSuite();
    auto schemes = smallSpace();

    auto reference =
        sweep::ParallelSweep(1, sweep::SweepKernel::Reference)
            .evaluate(suite, schemes, UpdateMode::Direct);
    for (unsigned threads : {1u, 4u}) {
        auto batched =
            sweep::ParallelSweep(threads, sweep::SweepKernel::Batched)
                .evaluate(suite, schemes, UpdateMode::Direct);
        ASSERT_EQ(batched.size(), reference.size());
        for (std::size_t i = 0; i < batched.size(); ++i) {
            expectSameConfusion(batched[i].pooled,
                                reference[i].pooled,
                                sweep::formatScheme(
                                    reference[i].scheme));
            ASSERT_EQ(batched[i].perTrace.size(),
                      reference[i].perTrace.size());
            for (std::size_t t = 0; t < batched[i].perTrace.size();
                 ++t)
                expectSameConfusion(
                    batched[i].perTrace[t].confusion,
                    reference[i].perTrace[t].confusion,
                    sweep::formatScheme(reference[i].scheme));
        }
    }
}

TEST(BatchedSweep, StatsCoverEverySchemeAndBatch)
{
    auto suite = smallSuite();
    auto schemes = smallSpace();

    obs::StatsRegistry parent;
    {
        obs::ScopedRegistry route(parent);
        sweep::ParallelSweep(4, sweep::SweepKernel::Batched)
            .evaluate(suite, schemes, UpdateMode::Direct);
    }

    const auto *evaluated =
        parent.findCounter("sweep.schemes_evaluated");
    ASSERT_NE(evaluated, nullptr);
    EXPECT_EQ(evaluated->value, schemes.size());

    const auto *batches = parent.findCounter("sweep.batches_evaluated");
    ASSERT_NE(batches, nullptr);
    EXPECT_GE(batches->value, 1u);

    // Every (scheme, trace, event) pair is walked exactly once.
    const auto *scheme_events =
        parent.findCounter("batch.scheme_events");
    ASSERT_NE(scheme_events, nullptr);
    std::uint64_t events = 0;
    for (const auto &tr : suite)
        events += tr.events().size();
    EXPECT_EQ(scheme_events->value, events * schemes.size());
}

TEST(BatchedSweep, ProgressReachesEverySchemeMonotonically)
{
    auto suite = smallSuite();
    auto schemes = smallSpace();

    std::vector<std::size_t> dones;
    sweep::ParallelSweep(8, sweep::SweepKernel::Batched)
        .evaluate(suite, schemes, UpdateMode::Direct,
                  [&](const obs::Progress &p) {
                      dones.push_back(p.done);
                      EXPECT_EQ(p.total, schemes.size());
                  });
    ASSERT_GE(dones.size(), 1u);
    for (std::size_t i = 1; i < dones.size(); ++i)
        EXPECT_GE(dones[i], dones[i - 1]) << "tick " << i;
    EXPECT_EQ(dones.back(), schemes.size());
}

TEST(ParallelSweep, WorkerExceptionsReachTheCaller)
{
    auto suite = smallSuite();
    // A scheme whose table would need 2^40 entries: makeTable throws
    // bad_alloc (or panics) — here we exercise the std::exception
    // path with an impossible-but-allocatable spec via the pool
    // directly instead, keeping this test deterministic.
    ThreadPool pool(4);
    EXPECT_THROW(pool.forEach(8,
                              [&](std::size_t job, unsigned) {
                                  if (job == 3)
                                      throw std::bad_alloc();
                              }),
                 std::bad_alloc);
}

// Empty-input guards live in rankSchemes/evaluateSchemes (fail fast
// before any evaluation); see space_test.cc for the death tests.

} // namespace
