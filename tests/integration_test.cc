/**
 * @file
 * End-to-end integration tests: workload -> machine -> trace ->
 * predictor evaluation, asserting the qualitative shapes the paper
 * reports (prevalence ordering, union/inter trade-off, history-depth
 * trends).  Runs the suite once at reduced scale and shares it across
 * tests.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "predict/evaluator.hh"
#include "sweep/name.hh"
#include "workloads/registry.hh"

namespace {

using namespace ccp;
using predict::Confusion;
using predict::evaluateSuite;
using predict::FunctionKind;
using predict::SchemeSpec;
using predict::UpdateMode;

class IntegrationTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        workloads::WorkloadParams params;
        params.seed = 2026;
        params.scale = 0.25;
        suite_ = new std::vector<trace::SharingTrace>(
            workloads::generateSuite(params));
    }

    static void
    TearDownTestSuite()
    {
        delete suite_;
        suite_ = nullptr;
    }

    static const std::vector<trace::SharingTrace> &
    suite()
    {
        return *suite_;
    }

    static double
    prevalenceOf(const std::string &name)
    {
        for (const auto &tr : suite())
            if (tr.name() == name)
                return tr.prevalence();
        ADD_FAILURE() << "no trace " << name;
        return 0.0;
    }

    static predict::SuiteResult
    eval(const std::string &scheme_text, UpdateMode mode)
    {
        auto parsed = sweep::parseScheme(scheme_text);
        EXPECT_TRUE(parsed.has_value()) << scheme_text;
        return evaluateSuite(suite(), parsed->scheme, mode);
    }

  private:
    static std::vector<trace::SharingTrace> *suite_;
};

std::vector<trace::SharingTrace> *IntegrationTest::suite_ = nullptr;

TEST_F(IntegrationTest, SuiteHasSevenBenchmarks)
{
    EXPECT_EQ(suite().size(), 7u);
    for (const auto &tr : suite())
        EXPECT_GT(tr.storeMisses(), 1000u) << tr.name();
}

TEST_F(IntegrationTest, PrevalenceIsLowEverywhere)
{
    // Table 6's key observation: sharing prevalence is a few percent,
    // nothing like the ~65% taken-bias of branches.
    for (const auto &tr : suite()) {
        EXPECT_GT(tr.prevalence(), 0.005) << tr.name();
        EXPECT_LT(tr.prevalence(), 0.30) << tr.name();
    }
}

TEST_F(IntegrationTest, PrevalenceOrderingMatchesTableSix)
{
    // ocean and em3d are the sparse ones; barnes/unstruct/water lead.
    double ocean = prevalenceOf("ocean");
    double em3d = prevalenceOf("em3d");
    for (const auto &name : {"barnes", "gauss", "mp3d", "unstruct",
                             "water"}) {
        EXPECT_LT(ocean, prevalenceOf(name)) << name;
        EXPECT_LT(em3d, prevalenceOf(name)) << name;
    }
    EXPECT_GT(prevalenceOf("barnes"), prevalenceOf("mp3d"));
    EXPECT_GT(prevalenceOf("unstruct"), prevalenceOf("mp3d"));
}

TEST_F(IntegrationTest, BaselineLastIsMiddling)
{
    auto res = eval("last()1", UpdateMode::Direct);
    // Paper Table 7: sensitivity 0.57, PVP 0.66.  Loose bands: the
    // baseline must be clearly useful but clearly imperfect.
    EXPECT_GT(res.avgSensitivity(), 0.25);
    EXPECT_LT(res.avgSensitivity(), 0.85);
    EXPECT_GT(res.avgPvp(), 0.35);
    EXPECT_LT(res.avgPvp(), 0.95);
}

TEST_F(IntegrationTest, IntersectionTradesSensitivityForPvp)
{
    // Paper Table 7: inter(pid+pc8)2 has higher PVP and lower
    // sensitivity than last(pid+pc8)1.
    auto last = eval("last(pid+pc8)1", UpdateMode::Direct);
    auto inter = eval("inter(pid+pc8)2", UpdateMode::Direct);
    EXPECT_GT(inter.avgPvp(), last.avgPvp());
    EXPECT_LT(inter.avgSensitivity(), last.avgSensitivity());
}

TEST_F(IntegrationTest, DeepInterRaisesPvpDeepUnionRaisesSensitivity)
{
    // Section 5.4.3's depth trends.
    auto inter2 = eval("inter(pid+add6)2", UpdateMode::Direct);
    auto inter4 = eval("inter(pid+add6)4", UpdateMode::Direct);
    EXPECT_GE(inter4.avgPvp(), inter2.avgPvp() - 0.01);
    EXPECT_LE(inter4.avgSensitivity(), inter2.avgSensitivity() + 0.01);

    auto union2 = eval("union(dir+add8)2", UpdateMode::Direct);
    auto union4 = eval("union(dir+add8)4", UpdateMode::Direct);
    EXPECT_GE(union4.avgSensitivity(), union2.avgSensitivity() - 0.01);
    EXPECT_LE(union4.avgPvp(), union2.avgPvp() + 0.01);
}

TEST_F(IntegrationTest, DeepIntersectionIsThePvpChampion)
{
    // Tables 8/9: deep-history intersection schemes with pid reach
    // PVP above the baseline, at much lower sensitivity.  (We use a
    // wider addr field than the paper's cheapest champion: our
    // synthetic AoS layouts alias more heavily at 6 addr bits.)
    auto top = eval("inter(pid+add12)4", UpdateMode::Direct);
    auto base = eval("last()1", UpdateMode::Direct);
    EXPECT_GT(top.avgPvp(), base.avgPvp() + 0.05);
    EXPECT_LT(top.avgSensitivity(), base.avgSensitivity());
}

TEST_F(IntegrationTest, DeepUnionIsTheSensitivityChampion)
{
    auto top = eval("union(dir+add14)4", UpdateMode::Direct);
    auto base = eval("last()1", UpdateMode::Direct);
    EXPECT_GT(top.avgSensitivity(), base.avgSensitivity());
    EXPECT_LT(top.avgPvp(), base.avgPvp());
}

TEST_F(IntegrationTest, OrderedUpdateIsAnUpperBoundForWindows)
{
    // Ordered update feeds each entry perfectly ordered history; for
    // the same scheme it should not lose to forwarded update by any
    // meaningful margin (it is the paper's practical upper bound).
    for (const char *text : {"last(pid+pc8)1", "union(pid+dir+add4)4"}) {
        auto fwd = eval(text, UpdateMode::Forwarded);
        auto ord = eval(text, UpdateMode::Ordered);
        EXPECT_GT(ord.avgSensitivity() + ord.avgPvp(),
                  fwd.avgSensitivity() + fwd.avgPvp() - 0.05)
            << text;
    }
}

TEST_F(IntegrationTest, DirectAndForwardedAgreeOnAddressSchemes)
{
    auto d = eval("union(dir+add16)2", UpdateMode::Direct);
    auto f = eval("union(dir+add16)2", UpdateMode::Forwarded);
    for (std::size_t i = 0; i < d.perTrace.size(); ++i)
        EXPECT_EQ(d.perTrace[i].confusion, f.perTrace[i].confusion)
            << d.perTrace[i].traceName;
}

TEST_F(IntegrationTest, PidIndexingHelpsInstructionSchemes)
{
    // Section 5.4.2: pc without pid mixes different nodes' store
    // history and is an "all-around bad performer".
    auto with_pid = eval("union(pid+pc8)2", UpdateMode::Direct);
    auto without = eval("union(pc8)2", UpdateMode::Direct);
    EXPECT_GT(with_pid.avgPvp() + with_pid.avgSensitivity(),
              without.avgPvp() + without.avgSensitivity());
}

TEST_F(IntegrationTest, TraceRoundTripPreservesEvaluation)
{
    const auto &tr = suite().front();
    std::stringstream ss;
    ASSERT_TRUE(tr.save(ss));
    trace::SharingTrace back;
    ASSERT_TRUE(back.load(ss));

    auto parsed = sweep::parseScheme("union(pid+dir+add4)2");
    ASSERT_TRUE(parsed.has_value());
    Confusion a = predict::evaluateTrace(tr, parsed->scheme,
                                         UpdateMode::Forwarded);
    Confusion b = predict::evaluateTrace(back, parsed->scheme,
                                         UpdateMode::Forwarded);
    EXPECT_EQ(a, b);
}

TEST_F(IntegrationTest, PredictedStoresAreFewerThanStaticStores)
{
    // Table 5's structure: only a subset of static stores ever causes
    // coherence events.
    for (const auto &tr : suite()) {
        EXPECT_LE(tr.meta().maxPredictedStoresPerNode,
                  tr.meta().maxStaticStoresPerNode)
            << tr.name();
    }
}

} // namespace
