/**
 * @file
 * Tests for the data-forwarding overlay.
 */

#include <gtest/gtest.h>

#include <unordered_map>

#include "common/rng.hh"
#include "forward/forwarding.hh"
#include "forward/selector.hh"

namespace {

using namespace ccp;
using forward::ForwardingParams;
using forward::ForwardingResult;
using forward::simulateForwarding;
using predict::FunctionKind;
using predict::IndexSpec;
using predict::SchemeSpec;
using predict::UpdateMode;
using trace::CoherenceEvent;
using trace::SharingTrace;

SharingTrace
producerConsumerTrace(unsigned events)
{
    SharingTrace tr("pc", 16);
    CoherenceEvent prev;
    bool seen = false;
    for (unsigned i = 0; i < events; ++i) {
        CoherenceEvent ev;
        ev.pid = 0;
        ev.pc = 0x400;
        ev.dir = 3;
        ev.block = 7;
        ev.readers = SharingBitmap(0b0110); // readers 1 and 2
        if (seen) {
            ev.invalidated = prev.readers;
            ev.prevWriterPid = prev.pid;
            ev.prevWriterPc = prev.pc;
            ev.hasPrevWriter = true;
        }
        seen = true;
        prev = ev;
        tr.append(ev);
    }
    return tr;
}

SchemeSpec
lastScheme()
{
    IndexSpec idx;
    idx.addrBits = 8;
    return SchemeSpec{idx, FunctionKind::Union, 1};
}

TEST(Forwarding, PerfectPatternForwardsUsefully)
{
    auto tr = producerConsumerTrace(100);
    ForwardingParams params;
    params.timelyFraction = 1.0;
    auto res = simulateForwarding(tr, lastScheme(), UpdateMode::Direct,
                                  params);
    EXPECT_EQ(res.events, 100u);
    // After the cold first event, both readers are forwarded to.
    EXPECT_EQ(res.forwardsSent, 198u);
    EXPECT_EQ(res.usefulForwards, 198u);
    EXPECT_EQ(res.wastedForwards, 0u);
    EXPECT_EQ(res.missedReaders, 2u); // the cold event
    EXPECT_EQ(res.missesAvoided, 198u);
    EXPECT_DOUBLE_EQ(res.pvp(), 1.0);
    EXPECT_NEAR(res.sensitivity(), 0.99, 0.001);
}

TEST(Forwarding, CyclesSavedUsePaperLatencyGap)
{
    auto tr = producerConsumerTrace(10);
    ForwardingParams params;
    params.timelyFraction = 1.0;
    auto res = simulateForwarding(tr, lastScheme(), UpdateMode::Direct,
                                  params);
    // Each avoided miss saves remote - local = 133 - 52 cycles.
    EXPECT_EQ(res.cyclesSaved, res.missesAvoided * 81);
}

TEST(Forwarding, LateForwardsSaveNothingButStillCost)
{
    auto tr = producerConsumerTrace(100);
    ForwardingParams params;
    params.timelyFraction = 0.0;
    auto res = simulateForwarding(tr, lastScheme(), UpdateMode::Direct,
                                  params);
    EXPECT_EQ(res.usefulForwards, 198u);
    EXPECT_EQ(res.missesAvoided, 0u);
    EXPECT_EQ(res.cyclesSaved, 0u);
    EXPECT_GT(res.forwardBytes, 0u);
}

TEST(Forwarding, NeverForwardsToTheWriter)
{
    // A pathological predictor state can predict the writer itself;
    // the overlay must drop that bit.  Train with a reader set that
    // includes a node which later becomes the writer.
    SharingTrace tr("w", 16);
    CoherenceEvent e1;
    e1.pid = 0;
    e1.pc = 0x400;
    e1.dir = 0;
    e1.block = 1;
    e1.readers = SharingBitmap(0b10); // node 1 reads
    tr.append(e1);
    CoherenceEvent e2;
    e2.pid = 1; // the old reader now writes
    e2.pc = 0x404;
    e2.dir = 0;
    e2.block = 1;
    e2.invalidated = e1.readers;
    e2.prevWriterPid = 0;
    e2.prevWriterPc = 0x400;
    e2.hasPrevWriter = true;
    tr.append(e2);

    auto res = simulateForwarding(tr, lastScheme(), UpdateMode::Direct);
    // The only trained prediction is {1}, but 1 is the writer of e2.
    EXPECT_EQ(res.forwardsSent, 0u);
}

TEST(Forwarding, WastedForwardsTrackFalsePositives)
{
    // Readers change every event: last-prediction always forwards to
    // yesterday's reader.
    SharingTrace tr("fp", 16);
    CoherenceEvent prev;
    bool seen = false;
    for (unsigned i = 0; i < 50; ++i) {
        CoherenceEvent ev;
        ev.pid = 0;
        ev.pc = 0x400;
        ev.dir = 3;
        ev.block = 7;
        ev.readers = SharingBitmap::single(1 + (i % 14));
        if (seen) {
            ev.invalidated = prev.readers;
            ev.prevWriterPid = prev.pid;
            ev.prevWriterPc = prev.pc;
            ev.hasPrevWriter = true;
        }
        seen = true;
        prev = ev;
        tr.append(ev);
    }
    auto res = simulateForwarding(tr, lastScheme(), UpdateMode::Direct);
    EXPECT_EQ(res.usefulForwards, 0u);
    EXPECT_EQ(res.wastedForwards, 49u);
    EXPECT_DOUBLE_EQ(res.pvp(), 0.0);
}

TEST(Forwarding, MetricsAgreeWithEvaluator)
{
    // The overlay's pvp/sensitivity must equal the evaluator's for
    // the same scheme and mode (modulo the writer-bit exclusion,
    // which never fires here because writers don't self-read).
    Rng rng(3);
    SharingTrace tr("agree", 16);
    std::unordered_map<Addr, CoherenceEvent> last;
    for (int i = 0; i < 2000; ++i) {
        CoherenceEvent ev;
        ev.block = rng.below(32);
        // One fixed writer per block, never among the readers, so the
        // overlay's writer-bit exclusion never fires.
        ev.pid = static_cast<NodeId>(ev.block % 16);
        ev.pc = 0x400 + 4 * rng.below(8);
        ev.dir = static_cast<NodeId>(rng.below(16));
        std::uint64_t readers = rng() & 0xffff;
        readers &= ~(1ull << ev.pid);
        ev.readers = SharingBitmap(readers);
        auto it = last.find(ev.block);
        if (it != last.end()) {
            ev.invalidated = it->second.readers;
            ev.prevWriterPid = it->second.pid;
            ev.prevWriterPc = it->second.pc;
            ev.hasPrevWriter = true;
        }
        last[ev.block] = ev;
        tr.append(ev);
    }

    IndexSpec idx;
    idx.addrBits = 5;
    SchemeSpec sch{idx, FunctionKind::Union, 2};
    auto conf = predict::evaluateTrace(tr, sch, UpdateMode::Direct);
    auto res = simulateForwarding(tr, sch, UpdateMode::Direct);

    EXPECT_EQ(res.usefulForwards, conf.tp);
    EXPECT_EQ(res.wastedForwards, conf.fp);
    EXPECT_EQ(res.missedReaders, conf.fn);
    EXPECT_DOUBLE_EQ(res.pvp(), conf.pvp());
    EXPECT_DOUBLE_EQ(res.sensitivity(), conf.sensitivity());
}

TEST(Forwarding, TrafficScalesWithForwards)
{
    auto tr = producerConsumerTrace(100);
    auto res = simulateForwarding(tr, lastScheme(), UpdateMode::Direct);
    EXPECT_EQ(res.forwardBytes, res.forwardsSent * 72u);
    EXPECT_GT(res.forwardByteHops, 0u);
}

TEST(Forwarding, DeterministicForSeed)
{
    auto tr = producerConsumerTrace(200);
    ForwardingParams params;
    params.timelyFraction = 0.5;
    auto a = simulateForwarding(tr, lastScheme(), UpdateMode::Direct,
                                params, 42);
    auto b = simulateForwarding(tr, lastScheme(), UpdateMode::Direct,
                                params, 42);
    EXPECT_EQ(a.missesAvoided, b.missesAvoided);
    EXPECT_EQ(a.cyclesSaved, b.cyclesSaved);
}

} // namespace

namespace {

using forward::selectScheme;
using forward::SelectionConstraints;

std::vector<SharingTrace>
selectionSuite()
{
    // One trace with a stable two-reader pattern (cheap, accurate)
    // plus unpredictable churn that only an aggressive scheme can
    // partially catch.
    Rng rng(8);
    SharingTrace tr("sel", 16);
    std::unordered_map<Addr, CoherenceEvent> last;
    for (int i = 0; i < 4000; ++i) {
        CoherenceEvent ev;
        ev.block = rng.below(64);
        ev.pid = static_cast<NodeId>(ev.block % 4);
        ev.pc = 0x400;
        ev.dir = static_cast<NodeId>(ev.block % 16);
        if (ev.block < 32) {
            ev.readers = SharingBitmap(0b110000); // stable {4,5}
        } else {
            std::uint64_t readers = rng() & 0xffff;
            readers &= ~(1ull << ev.pid);
            ev.readers = SharingBitmap(readers);
        }
        auto it = last.find(ev.block);
        if (it != last.end()) {
            ev.invalidated = it->second.readers.minus(
                SharingBitmap::single(ev.pid));
            ev.prevWriterPid = it->second.pid;
            ev.prevWriterPc = it->second.pc;
            ev.hasPrevWriter = true;
        }
        last[ev.block] = ev;
        tr.append(ev);
    }
    std::vector<SharingTrace> suite;
    suite.push_back(std::move(tr));
    return suite;
}

std::vector<predict::SchemeSpec>
selectionCandidates()
{
    IndexSpec addr8;
    addr8.addrBits = 8;
    return {
        predict::SchemeSpec{addr8, predict::FunctionKind::Inter, 4},
        predict::SchemeSpec{addr8, predict::FunctionKind::Union, 1},
        predict::SchemeSpec{addr8, predict::FunctionKind::Union, 4},
    };
}

TEST(Selector, UnlimitedBudgetPicksTheMostSavingScheme)
{
    auto suite = selectionSuite();
    auto res = selectScheme(suite, selectionCandidates(),
                            SelectionConstraints{});
    ASSERT_TRUE(res.best.has_value());
    // Deep union saves the most cycles when traffic is free.
    EXPECT_EQ(res.candidates[*res.best].scheme.kind,
              predict::FunctionKind::Union);
    EXPECT_EQ(res.candidates[*res.best].scheme.depth, 4u);
    // Every candidate was scored.
    EXPECT_EQ(res.candidates.size(), 3u);
    for (const auto &c : res.candidates)
        EXPECT_TRUE(c.withinBudget);
}

TEST(Selector, TightBudgetPicksTheSureBets)
{
    auto suite = selectionSuite();
    auto candidates = selectionCandidates();

    SelectionConstraints loose;
    auto all = selectScheme(suite, candidates, loose);
    // Find intersection's traffic level; budget just above it.
    double inter_traffic = 0;
    for (const auto &c : all.candidates)
        if (c.scheme.kind == predict::FunctionKind::Inter)
            inter_traffic = c.byteHopsPerEvent;
    ASSERT_GT(inter_traffic, 0.0);

    SelectionConstraints tight;
    tight.maxByteHopsPerEvent = inter_traffic * 1.01;
    auto res = selectScheme(suite, candidates, tight);
    ASSERT_TRUE(res.best.has_value());
    EXPECT_EQ(res.candidates[*res.best].scheme.kind,
              predict::FunctionKind::Inter);
}

TEST(Selector, ImpossibleBudgetSelectsNothing)
{
    auto suite = selectionSuite();
    SelectionConstraints none;
    none.maxByteHopsPerEvent = 0.0;
    auto res = selectScheme(suite, selectionCandidates(), none);
    EXPECT_FALSE(res.best.has_value());
    for (const auto &c : res.candidates)
        EXPECT_FALSE(c.withinBudget);
}

TEST(Selector, SizeCapExcludesBigTables)
{
    auto suite = selectionSuite();
    auto candidates = selectionCandidates();
    SelectionConstraints capped;
    // union(add8)1 = 2^12 bits; the depth-4 schemes are 2^14.
    capped.maxSizeBits = 1ull << 12;
    auto res = selectScheme(suite, candidates, capped);
    ASSERT_TRUE(res.best.has_value());
    EXPECT_EQ(res.candidates[*res.best].scheme.depth, 1u);
}

} // namespace
