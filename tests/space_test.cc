/**
 * @file
 * Tests for the design-space enumeration and top-N search.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"
#include "sweep/name.hh"
#include "sweep/search.hh"
#include "sweep/space.hh"

namespace {

using namespace ccp;
using predict::FunctionKind;
using predict::SchemeSpec;
using predict::UpdateMode;
using sweep::enumerateSchemes;
using sweep::RankBy;
using sweep::rankSchemes;
using sweep::SpaceSpec;

TEST(Space, RespectsCostCap)
{
    SpaceSpec spec;
    spec.maxBits = 1ull << 16;
    for (const auto &s : enumerateSchemes(spec))
        EXPECT_LE(s.sizeBits(16), spec.maxBits)
            << sweep::formatScheme(s);
}

TEST(Space, RespectsIndexCap)
{
    SpaceSpec spec;
    spec.maxIndexBits = 12;
    for (const auto &s : enumerateSchemes(spec))
        EXPECT_LE(s.index.indexBits(4), 12u);
}

TEST(Space, NoDuplicateSchemes)
{
    SpaceSpec spec;
    spec.maxBits = 1ull << 20;
    auto schemes = enumerateSchemes(spec);
    std::set<std::string> names;
    for (const auto &s : schemes)
        EXPECT_TRUE(names.insert(sweep::formatScheme(s)).second)
            << sweep::formatScheme(s);
}

TEST(Space, CanonicalizesDepthOneInter)
{
    SpaceSpec spec;
    for (const auto &s : enumerateSchemes(spec)) {
        if (s.depth == 1) {
            EXPECT_NE(s.kind, FunctionKind::Inter);
        }
    }
}

TEST(Space, CoversAllSixteenIndexClasses)
{
    SpaceSpec spec;
    auto schemes = enumerateSchemes(spec);
    std::set<unsigned> cases;
    for (const auto &s : schemes)
        cases.insert(s.index.tableOneCase());
    EXPECT_EQ(cases.size(), 16u);
}

TEST(Space, ExcludingPasWorks)
{
    SpaceSpec spec;
    spec.pasDepths.clear();
    for (const auto &s : enumerateSchemes(spec))
        EXPECT_NE(s.kind, FunctionKind::PAs);
}

TEST(Space, PaperSpaceIsBigButBounded)
{
    SpaceSpec spec;
    auto schemes = enumerateSchemes(spec);
    EXPECT_GT(schemes.size(), 500u);
    EXPECT_LT(schemes.size(), 5000u);
}

TEST(Space, ExcludingPerceptronWorks)
{
    SpaceSpec spec;
    spec.percDepths.clear();
    for (const auto &s : enumerateSchemes(spec))
        EXPECT_NE(s.kind, FunctionKind::Perceptron);
}

TEST(Space, PerceptronCrossProductCoversEveryDimension)
{
    SpaceSpec spec;
    spec.maxBits = 1ull << 22;
    spec.pcBitsGrid = {0, 4};
    spec.addrBitsGrid = {0, 4};
    spec.windowDepths = {};
    spec.pasDepths = {};
    spec.percDepths = {1, 2};
    spec.percWeightBits = {4, 5};
    spec.percThetas = {1, 2};
    spec.percBloomBits = {0, 16};

    std::set<unsigned> depths, widths, thetas, blooms;
    std::size_t count = 0;
    for (const auto &s : enumerateSchemes(spec)) {
        ASSERT_EQ(s.kind, FunctionKind::Perceptron);
        depths.insert(s.depth);
        widths.insert(s.perc.weightBits);
        thetas.insert(s.perc.theta);
        blooms.insert(s.perc.bloomBits);
        ++count;
    }
    // 16 index classes x 2 depths x 2 widths x 2 thetas x 2 blooms,
    // minus anything over the cost cap.
    EXPECT_GT(count, 200u);
    EXPECT_EQ(depths.size(), 2u);
    EXPECT_EQ(widths.size(), 2u);
    EXPECT_EQ(thetas.size(), 2u);
    EXPECT_EQ(blooms.size(), 2u);
}

TEST(Space, PerceptronIndicesAreHashedExceptTheEmptyOne)
{
    SpaceSpec spec;
    for (const auto &s : enumerateSchemes(spec)) {
        if (s.kind != FunctionKind::Perceptron)
            continue;
        const unsigned node_bits = predict::nodeBitsFor(spec.nNodes);
        if (s.index.indexBits(node_bits) > 0)
            EXPECT_TRUE(s.index.hashed) << sweep::formatScheme(s);
        else
            EXPECT_FALSE(s.index.hashed) << sweep::formatScheme(s);
    }
}

TEST(Space, PerceptronHashedFoldCanBeDisabled)
{
    SpaceSpec spec;
    spec.percHashedIndex = false;
    for (const auto &s : enumerateSchemes(spec))
        EXPECT_FALSE(s.index.hashed) << sweep::formatScheme(s);
}

// ---------------------------------------------------------------------
// rankSchemes on a synthetic trace with a known best scheme.

trace::SharingTrace
stableTrace()
{
    trace::SharingTrace tr("stable", 16);
    // Writer pc determines the reader deterministically: pc k ->
    // reader k+1.  An instruction-indexed scheme nails this; a
    // no-index scheme cannot.
    trace::CoherenceEvent prev_by_block[8];
    bool seen[8] = {};
    Rng rng(5);
    for (int i = 0; i < 2000; ++i) {
        unsigned k = static_cast<unsigned>(rng.below(8));
        trace::CoherenceEvent ev;
        ev.pid = static_cast<NodeId>(k);
        ev.pc = 0x400 + 4 * k;
        ev.block = k;
        ev.dir = k % 16;
        ev.readers = SharingBitmap::single(k + 1);
        if (seen[k]) {
            ev.invalidated = prev_by_block[k].readers;
            ev.prevWriterPid = prev_by_block[k].pid;
            ev.prevWriterPc = prev_by_block[k].pc;
            ev.hasPrevWriter = true;
        }
        seen[k] = true;
        prev_by_block[k] = ev;
        tr.append(ev);
    }
    return tr;
}

TEST(Search, RanksLearnableSchemeFirst)
{
    std::vector<trace::SharingTrace> suite;
    suite.push_back(stableTrace());

    std::vector<SchemeSpec> schemes = {
        SchemeSpec{{}, FunctionKind::Union, 1},             // no index
        SchemeSpec{{false, 8, false, 0}, FunctionKind::Union, 1},
    };
    auto top = rankSchemes(suite, schemes, UpdateMode::Direct,
                           RankBy::Pvp, 2);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0].result.scheme.index.pcBits, 8u);
    EXPECT_GT(top[0].score, top[1].score);
    EXPECT_NEAR(top[0].score, 1.0, 0.01);
}

TEST(Search, RanksBySelectedMetric)
{
    std::vector<trace::SharingTrace> suite;
    suite.push_back(stableTrace());

    // union(depth 4) vs inter(depth 4) on a stable trace: both are
    // accurate here, so use an unstable second block... simply check
    // the score fields match the requested metric.
    std::vector<SchemeSpec> schemes = {
        SchemeSpec{{false, 8, false, 0}, FunctionKind::Union, 4},
        SchemeSpec{{false, 8, false, 0}, FunctionKind::Inter, 4},
    };
    auto by_pvp = rankSchemes(suite, schemes, UpdateMode::Direct,
                              RankBy::Pvp, 2);
    for (const auto &r : by_pvp)
        EXPECT_DOUBLE_EQ(r.score, r.result.avgPvp());
    auto by_sens = rankSchemes(suite, schemes, UpdateMode::Direct,
                               RankBy::Sensitivity, 2);
    for (const auto &r : by_sens)
        EXPECT_DOUBLE_EQ(r.score, r.result.avgSensitivity());
}

TEST(Search, TiesBreakTowardSmallerTables)
{
    std::vector<trace::SharingTrace> suite;
    suite.push_back(stableTrace());
    // Both schemes predict perfectly; the cheaper one must rank first.
    std::vector<SchemeSpec> schemes = {
        SchemeSpec{{false, 12, false, 0}, FunctionKind::Union, 1},
        SchemeSpec{{false, 8, false, 0}, FunctionKind::Union, 1},
    };
    auto top = rankSchemes(suite, schemes, UpdateMode::Direct,
                           RankBy::Pvp, 2);
    EXPECT_EQ(top[0].result.scheme.index.pcBits, 8u);
}

TEST(Search, FullTiesBreakOnCanonicalSchemeName)
{
    std::vector<trace::SharingTrace> suite;
    suite.push_back(stableTrace());

    // On stableTrace, pc low bits and block low bits carry the same
    // value (pc = 0x400 + 4k, block = k), so a pc4-indexed and an
    // add4-indexed scheme of the same function/depth see identical
    // index streams: identical confusion counts, equal score, equal
    // table size, equal secondary metric.  The final tie-break must
    // be the canonical scheme name, so the ranking is a total order
    // and the top-10 tables are stable across platforms and thread
    // counts.
    SchemeSpec pc4{{false, 4, false, 0}, FunctionKind::Union, 2};
    SchemeSpec add4{{false, 0, false, 4}, FunctionKind::Union, 2};
    const std::string first =
        std::min(sweep::formatScheme(pc4), sweep::formatScheme(add4));

    for (auto order : {std::vector<SchemeSpec>{pc4, add4},
                       std::vector<SchemeSpec>{add4, pc4}}) {
        auto top = rankSchemes(suite, order, UpdateMode::Direct,
                               RankBy::Pvp, 2);
        ASSERT_EQ(top.size(), 2u);
        // The tie is genuine...
        EXPECT_EQ(top[0].score, top[1].score);
        EXPECT_EQ(top[0].result.scheme.sizeBits(16),
                  top[1].result.scheme.sizeBits(16));
        // ...and resolved by name, independent of input order.
        EXPECT_EQ(sweep::formatScheme(top[0].result.scheme), first);
    }
}

TEST(SearchDeathTest, EmptySuiteFailsFast)
{
    std::vector<trace::SharingTrace> no_traces;
    std::vector<SchemeSpec> schemes = {
        SchemeSpec{{}, FunctionKind::Union, 1}};
    EXPECT_DEATH(rankSchemes(no_traces, schemes, UpdateMode::Direct,
                             RankBy::Pvp, 1),
                 "empty benchmark suite");
    EXPECT_DEATH(sweep::evaluateSchemes(no_traces, schemes,
                                        UpdateMode::Direct),
                 "empty benchmark suite");
}

TEST(SearchDeathTest, EmptySchemeListFailsFast)
{
    std::vector<trace::SharingTrace> suite;
    suite.push_back(stableTrace());
    std::vector<SchemeSpec> no_schemes;
    EXPECT_DEATH(rankSchemes(suite, no_schemes, UpdateMode::Direct,
                             RankBy::Pvp, 1),
                 "empty scheme list");
    EXPECT_DEATH(sweep::evaluateSchemes(suite, no_schemes,
                                        UpdateMode::Direct),
                 "empty scheme list");
}

TEST(Search, ProgressCallbackCoversAllSchemes)
{
    std::vector<trace::SharingTrace> suite;
    suite.push_back(stableTrace());
    std::vector<SchemeSpec> schemes = {
        SchemeSpec{{}, FunctionKind::Union, 1},
        SchemeSpec{{}, FunctionKind::Union, 2},
        SchemeSpec{{}, FunctionKind::Union, 3},
    };
    // Per-scheme tick granularity is the reference kernel's contract;
    // the batched kernel ticks per batch (see parallel_test.cc).
    std::size_t calls = 0, last_total = 0;
    rankSchemes(suite, schemes, UpdateMode::Direct, RankBy::Pvp, 1,
                [&](const ccp::obs::Progress &p) {
                    ++calls;
                    EXPECT_EQ(p.done, calls);
                    EXPECT_GE(p.elapsedSec, 0.0);
                    last_total = p.total;
                },
                /*threads=*/1, sweep::SweepKernel::Reference);
    EXPECT_EQ(calls, 3u);
    EXPECT_EQ(last_total, 3u);
}

} // namespace
