/**
 * @file
 * Tests for the Summary and Histogram helpers.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "common/stats.hh"

namespace {

using ccp::Histogram;
using ccp::LogHistogram;
using ccp::Summary;

TEST(Summary, EmptyIsZero)
{
    Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
}

TEST(Summary, TracksMoments)
{
    Summary s;
    for (double x : {2.0, 4.0, 6.0})
        s.add(x);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.sum(), 12.0);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 6.0);
}

TEST(Summary, MergeEqualsConcatenation)
{
    Summary a, b, all;
    for (double x : {1.0, 5.0}) {
        a.add(x);
        all.add(x);
    }
    for (double x : {-2.0, 3.0}) {
        b.add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_DOUBLE_EQ(a.sum(), all.sum());
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Summary, MergeEmptyIsNoop)
{
    Summary a, empty;
    a.add(7.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 1u);
    EXPECT_DOUBLE_EQ(a.max(), 7.0);
}

TEST(Summary, VarianceMatchesDefinition)
{
    Summary s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    // Classic textbook set: mean 5, population variance 4.
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.var(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
}

TEST(Summary, VarianceOfFewSamplesIsZero)
{
    Summary s;
    EXPECT_EQ(s.var(), 0.0);
    s.add(3.0);
    EXPECT_EQ(s.var(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Summary, VarianceIsNumericallyStable)
{
    // Naive sum-of-squares cancels catastrophically with a large
    // offset; Welford must not.
    Summary s;
    const double offset = 1e9;
    for (double x : {offset + 4.0, offset + 7.0, offset + 13.0,
                     offset + 16.0})
        s.add(x);
    EXPECT_NEAR(s.var(), 22.5, 1e-6);
}

TEST(Summary, MergePreservesVariance)
{
    Summary a, b, all;
    for (double x : {1.0, 2.0, 3.0, 4.0}) {
        a.add(x);
        all.add(x);
    }
    for (double x : {10.0, 20.0, 30.0}) {
        b.add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.mean(), all.mean());
    EXPECT_NEAR(a.var(), all.var(), 1e-9);

    Summary empty;
    empty.merge(all); // merge into empty must copy the moments
    EXPECT_NEAR(empty.var(), all.var(), 1e-9);
}

TEST(Histogram, MergeAddsCounts)
{
    Histogram a(3), b(3);
    a.add(0);
    a.add(2);
    b.add(2);
    b.add(7); // overflow
    a.merge(b);
    EXPECT_EQ(a.bucket(0), 1u);
    EXPECT_EQ(a.bucket(2), 2u);
    EXPECT_EQ(a.overflow(), 1u);
    EXPECT_EQ(a.total(), 4u);
    // Mean folds in the merged sum (overflow clamped at size()).
    EXPECT_DOUBLE_EQ(a.mean(), (0.0 + 2.0 + 2.0 + 3.0) / 4.0);
}

TEST(Histogram, CountsAndOverflow)
{
    Histogram h(4);
    for (std::uint64_t v : {0u, 1u, 1u, 3u, 9u, 100u})
        h.add(v);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(2), 0u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.total(), 6u);
}

TEST(Histogram, MeanClampsOverflow)
{
    Histogram h(4);
    h.add(1);
    h.add(100); // clamped to 4 in the mean
    EXPECT_DOUBLE_EQ(h.mean(), 2.5);
}

TEST(Histogram, ToString)
{
    Histogram h(3);
    h.add(0);
    h.add(2);
    h.add(2);
    EXPECT_EQ(h.toString(), "1 0 2");
    h.add(5);
    EXPECT_EQ(h.toString(), "1 0 2 +1");
}

TEST(Histogram, BucketOutOfRangeDies)
{
    Histogram h(2);
    EXPECT_DEATH(h.bucket(2), "out of range");
}

TEST(LogHistogram, EmptyIsZero)
{
    LogHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.p50(), 0.0);
    EXPECT_EQ(h.toString(), "");
}

TEST(LogHistogram, BucketBoundariesAreLog2)
{
    // floor(log2(v)) buckets, with 0 landing in bucket 0 alongside 1.
    LogHistogram h;
    for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 4ull, 7ull, 8ull,
                            1023ull, 1024ull})
        h.add(v);
    EXPECT_EQ(h.bucket(0), 2u); // 0, 1
    EXPECT_EQ(h.bucket(1), 2u); // 2, 3
    EXPECT_EQ(h.bucket(2), 2u); // 4, 7
    EXPECT_EQ(h.bucket(3), 1u); // 8
    EXPECT_EQ(h.bucket(9), 1u); // 1023
    EXPECT_EQ(h.bucket(10), 1u); // 1024
    EXPECT_EQ(h.count(), 9u);
    EXPECT_EQ(LogHistogram::bucketLo(0), 0u);
    EXPECT_EQ(LogHistogram::bucketLo(1), 2u);
    EXPECT_EQ(LogHistogram::bucketLo(10), 1024u);
}

TEST(LogHistogram, TopBucketHoldsHugeValues)
{
    LogHistogram h;
    const std::uint64_t huge =
        std::numeric_limits<std::uint64_t>::max();
    h.add(huge);
    EXPECT_EQ(h.bucket(LogHistogram::nBuckets - 1), 1u);
    EXPECT_EQ(h.max(), huge);
}

TEST(LogHistogram, TracksMomentsExactly)
{
    LogHistogram h;
    for (std::uint64_t v : {10ull, 20ull, 30ull})
        h.add(v);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sum(), 60u);
    EXPECT_EQ(h.min(), 10u);
    EXPECT_EQ(h.max(), 30u);
    EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(LogHistogram, QuantilesClampToObservedRange)
{
    // A single repeated value: every quantile IS that value, even
    // though its bucket spans [64, 128).
    LogHistogram h;
    for (int i = 0; i < 100; ++i)
        h.add(100);
    EXPECT_DOUBLE_EQ(h.p50(), 100.0);
    EXPECT_DOUBLE_EQ(h.p90(), 100.0);
    EXPECT_DOUBLE_EQ(h.p99(), 100.0);
}

TEST(LogHistogram, QuantilesAreMonotoneAndBracketed)
{
    LogHistogram h;
    for (std::uint64_t v = 1; v <= 1000; ++v)
        h.add(v);
    const double p50 = h.p50(), p90 = h.p90(), p99 = h.p99();
    EXPECT_LE(p50, p90);
    EXPECT_LE(p90, p99);
    EXPECT_GE(p50, 1.0);
    EXPECT_LE(p99, 1000.0);
    // Log-bucket interpolation is coarse, but the median of 1..1000
    // must land in the right power-of-two neighbourhood.
    EXPECT_GE(p50, 256.0);
    EXPECT_LE(p50, 1000.0);
}

TEST(LogHistogram, SingleSampleQuantilesAreTheSample)
{
    // Regression: with one sample every quantile must be exactly that
    // sample — never an interpolation below it toward the bucket
    // floor or above it toward the bucket ceiling.
    for (std::uint64_t v :
         {std::uint64_t(0), std::uint64_t(1), std::uint64_t(5),
          std::uint64_t(100), std::uint64_t(1) << 40}) {
        LogHistogram h;
        h.add(v);
        const double want = static_cast<double>(v);
        EXPECT_DOUBLE_EQ(h.p50(), want) << "sample " << v;
        EXPECT_DOUBLE_EQ(h.p90(), want) << "sample " << v;
        EXPECT_DOUBLE_EQ(h.p99(), want) << "sample " << v;
        EXPECT_DOUBLE_EQ(h.quantile(0.0), want) << "sample " << v;
        EXPECT_DOUBLE_EQ(h.quantile(1.0), want) << "sample " << v;
    }
}

TEST(LogHistogram, LowestBucketNeverExtrapolatesBelowMin)
{
    // Regression: the lowest occupied bucket interpolates up from the
    // smallest observed sample, not from the bucket floor.  {1, 1,
    // 100}: the median lives in bucket [1, 2) — it must land inside
    // that bucket's observed-tightened bounds, never in the dead
    // space below the smallest sample.
    LogHistogram h;
    h.add(1);
    h.add(1);
    h.add(100);
    EXPECT_GE(h.p50(), 1.0);
    EXPECT_LE(h.p50(), 2.0);
    EXPECT_GE(h.quantile(0.1), 1.0);

    // {0, 1}: every quantile stays inside the observed [0, 1] range.
    LogHistogram g;
    g.add(0);
    g.add(1);
    for (double q : {0.0, 0.25, 0.5, 0.75, 0.9, 1.0}) {
        EXPECT_GE(g.quantile(q), 0.0) << "q " << q;
        EXPECT_LE(g.quantile(q), 1.0) << "q " << q;
    }
}

TEST(LogHistogram, TopBucketInterpolatesTowardMaxOnly)
{
    // Samples 64 and 80 share bucket [64, 128): quantiles must stay
    // inside the observed [64, 80], not stretch to the bucket bound.
    LogHistogram h;
    h.add(64);
    h.add(80);
    for (double q : {0.0, 0.5, 0.9, 1.0}) {
        EXPECT_GE(h.quantile(q), 64.0) << "q " << q;
        EXPECT_LE(h.quantile(q), 80.0) << "q " << q;
    }
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 80.0);
}

TEST(LogHistogram, MergeEqualsConcatenation)
{
    LogHistogram a, b, all;
    for (std::uint64_t v : {1ull, 5ull, 17ull, 1000ull}) {
        a.add(v);
        all.add(v);
    }
    for (std::uint64_t v : {0ull, 3ull, 3ull, 70000ull}) {
        b.add(v);
        all.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_EQ(a.sum(), all.sum());
    EXPECT_EQ(a.min(), all.min());
    EXPECT_EQ(a.max(), all.max());
    for (std::size_t i = 0; i < LogHistogram::nBuckets; ++i)
        EXPECT_EQ(a.bucket(i), all.bucket(i)) << "bucket " << i;
    EXPECT_DOUBLE_EQ(a.p50(), all.p50());
    EXPECT_DOUBLE_EQ(a.p99(), all.p99());
}

TEST(LogHistogram, MergeEmptyIsNoop)
{
    LogHistogram a, empty;
    a.add(42);
    a.merge(empty);
    EXPECT_EQ(a.count(), 1u);
    EXPECT_EQ(a.min(), 42u);
    EXPECT_EQ(a.max(), 42u);

    empty.merge(a); // merge into empty must copy min/max
    EXPECT_EQ(empty.min(), 42u);
    EXPECT_EQ(empty.max(), 42u);
}

TEST(LogHistogram, ToStringListsNonEmptyBuckets)
{
    LogHistogram h;
    h.add(1);
    h.add(5);
    h.add(5);
    EXPECT_EQ(h.toString(), "[0,2):1 [4,8):2");
}

} // namespace
