/**
 * @file
 * Tests for the Summary and Histogram helpers.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace {

using ccp::Histogram;
using ccp::Summary;

TEST(Summary, EmptyIsZero)
{
    Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
}

TEST(Summary, TracksMoments)
{
    Summary s;
    for (double x : {2.0, 4.0, 6.0})
        s.add(x);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.sum(), 12.0);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 6.0);
}

TEST(Summary, MergeEqualsConcatenation)
{
    Summary a, b, all;
    for (double x : {1.0, 5.0}) {
        a.add(x);
        all.add(x);
    }
    for (double x : {-2.0, 3.0}) {
        b.add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_DOUBLE_EQ(a.sum(), all.sum());
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Summary, MergeEmptyIsNoop)
{
    Summary a, empty;
    a.add(7.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 1u);
    EXPECT_DOUBLE_EQ(a.max(), 7.0);
}

TEST(Histogram, CountsAndOverflow)
{
    Histogram h(4);
    for (std::uint64_t v : {0u, 1u, 1u, 3u, 9u, 100u})
        h.add(v);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(2), 0u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.total(), 6u);
}

TEST(Histogram, MeanClampsOverflow)
{
    Histogram h(4);
    h.add(1);
    h.add(100); // clamped to 4 in the mean
    EXPECT_DOUBLE_EQ(h.mean(), 2.5);
}

TEST(Histogram, ToString)
{
    Histogram h(3);
    h.add(0);
    h.add(2);
    h.add(2);
    EXPECT_EQ(h.toString(), "1 0 2");
    h.add(5);
    EXPECT_EQ(h.toString(), "1 0 2 +1");
}

TEST(Histogram, BucketOutOfRangeDies)
{
    Histogram h(2);
    EXPECT_DEATH(h.bucket(2), "out of range");
}

} // namespace
