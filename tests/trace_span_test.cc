/**
 * @file
 * Tests for the execution tracer (obs/trace.hh): Chrome-trace JSON
 * well-formedness (every 'B' has its matching 'E', per-thread
 * timestamps are monotone), multi-threaded emission through the
 * ThreadPool hooks, bounded-buffer drop behaviour, retroactive
 * complete spans, flush atomicity, and the perf-counter no-op path.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.hh"
#include "obs/json.hh"
#include "obs/perf.hh"
#include "obs/trace.hh"

namespace {

using namespace ccp;
using obs::Json;
using obs::PerfCounters;
using obs::PerfSample;
using obs::Tracer;
using obs::TraceSpan;

/** Enable the singleton tracer with test-friendly options. */
void
enableTracer(std::size_t buffer_records = 1 << 12,
             const std::string &path = "")
{
    Tracer::Options opts;
    opts.path = path;
    opts.bufferRecords = buffer_records;
    Tracer::instance().enable(std::move(opts));
}

/** Parsed and structurally validated trace document. */
struct ValidatedTrace
{
    /** Begin-event counts per span name (across threads). */
    std::map<std::string, unsigned> begins;
    /** Thread names from metadata events. */
    std::vector<std::string> threadNames;
    std::uint64_t droppedSpans = 0;
};

/**
 * Assert the Chrome-trace contract on @p text: a traceEvents array
 * where, per tid, every 'B' is closed by a matching 'E' in LIFO
 * order and timestamps never move backwards.  (Out-param because
 * gtest ASSERTs require a void function.)
 */
void
validateTrace(const std::string &text, ValidatedTrace &out)
{
    auto doc = Json::parse(text);
    ASSERT_TRUE(doc.has_value()) << "trace is not valid JSON";

    const Json *events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr) << "no traceEvents array";
    ASSERT_TRUE(events->isArray());

    std::map<std::uint64_t, std::vector<std::string>> stacks;
    std::map<std::uint64_t, double> lastTs;
    for (std::size_t i = 0; i < events->size(); ++i) {
        const Json &ev = events->at(i);
        ASSERT_TRUE(ev.isObject()) << "event " << i;
        const Json *ph = ev.find("ph");
        const Json *name = ev.find("name");
        ASSERT_NE(ph, nullptr);
        ASSERT_NE(name, nullptr);
        const std::string &phase = ph->asString();
        if (phase == "M") {
            if (name->asString() == "thread_name")
                out.threadNames.push_back(
                    ev.find("args")->find("name")->asString());
            continue;
        }
        const Json *tid = ev.find("tid");
        const Json *ts = ev.find("ts");
        ASSERT_NE(tid, nullptr) << "event " << i << " missing tid";
        ASSERT_NE(ts, nullptr) << "event " << i << " missing ts";
        const std::uint64_t t = tid->asUInt();
        const double us = ts->asDouble();
        auto [it, fresh] = lastTs.try_emplace(t, us);
        ASSERT_GE(us, it->second)
            << "tid " << t << ": timestamp moved backwards at event "
            << i;
        it->second = us;
        if (phase == "B") {
            stacks[t].push_back(name->asString());
            ++out.begins[name->asString()];
        } else if (phase == "E") {
            ASSERT_FALSE(stacks[t].empty())
                << "tid " << t << ": 'E' for " << name->asString()
                << " with no open span";
            EXPECT_EQ(stacks[t].back(), name->asString())
                << "tid " << t << ": mismatched close at event " << i;
            stacks[t].pop_back();
        } else {
            FAIL() << "unexpected phase '" << phase << "'";
        }
    }
    for (const auto &[t, stack] : stacks)
        EXPECT_TRUE(stack.empty())
            << "tid " << t << ": " << stack.size()
            << " span(s) never closed";

    if (const Json *other = doc->find("otherData"))
        if (const Json *d = other->find("dropped_spans"))
            out.droppedSpans = d->asUInt();
}

TEST(TraceSpan, DisabledTracerMakesSpansNoops)
{
    ASSERT_FALSE(Tracer::enabled());
    TraceSpan span("test", "test.noop");
    EXPECT_FALSE(span.armed());
    CCP_TRACE_SPAN("test", "test.macro_noop"); // must compile + no-op
}

TEST(TraceSpan, NestedSpansSerializeBalanced)
{
    enableTracer();
    {
        TraceSpan outer("test", "test.outer");
        EXPECT_TRUE(outer.armed());
        {
            TraceSpan inner("test", "test.inner", 42);
            EXPECT_TRUE(inner.armed());
        }
        TraceSpan sibling("test", "test.sibling");
    }
    std::string text = Tracer::instance().serialize();
    Tracer::instance().disable();

    ValidatedTrace v;
    validateTrace(text, v);
    EXPECT_EQ(v.begins["test.outer"], 1u);
    EXPECT_EQ(v.begins["test.inner"], 1u);
    EXPECT_EQ(v.begins["test.sibling"], 1u);
    EXPECT_EQ(v.droppedSpans, 0u);
    // The items arg rides on the begin event.
    EXPECT_NE(text.find("\"items\":42"), std::string::npos);
}

TEST(TraceSpan, ThreadPoolEmissionIsWellFormedAcrossThreads)
{
    enableTracer();
    {
        ThreadPool pool(4);
        pool.forEach(
            64,
            [](std::size_t job, unsigned) {
                CCP_TRACE_SPAN_N("test", "test.job", job);
                // A little nesting inside worker threads.
                TraceSpan inner("test", "test.job_inner");
            },
            4);
    }
    std::string text = Tracer::instance().serialize();
    Tracer::instance().disable();

    ValidatedTrace v;
    validateTrace(text, v);
    EXPECT_EQ(v.begins["test.job"], 64u);
    EXPECT_EQ(v.begins["test.job_inner"], 64u);
    // The pool hooks record every dispatched chunk (64 jobs / 4 per
    // chunk = 16 chunks).
    EXPECT_EQ(v.begins["pool.chunk"], 16u);
    // Thread metadata names main + the workers that recorded spans.
    EXPECT_GE(v.threadNames.size(), 2u);
    EXPECT_EQ(v.threadNames[0], "main");
    EXPECT_EQ(v.droppedSpans, 0u);
}

TEST(TraceSpan, FullBufferDropsSpansButNeverTearsThem)
{
    // Capacity 8 records = 4 sequential spans; the rest must drop
    // whole (no orphaned 'B'), and the drop must be counted.
    enableTracer(8);
    for (int i = 0; i < 20; ++i) {
        TraceSpan span("test", "test.seq");
        (void)span;
    }
    EXPECT_GT(Tracer::instance().droppedTotal(), 0u);
    std::string text = Tracer::instance().serialize();
    Tracer::instance().disable();

    ValidatedTrace v;
    validateTrace(text, v);
    EXPECT_EQ(v.begins["test.seq"], 4u);
    EXPECT_EQ(v.droppedSpans, 16u);
}

TEST(TraceSpan, AdmissionReservesRoomForOpenSpanEnds)
{
    // Deep nesting: admission must stop while every already-open
    // span can still write its 'E' (capacity 8 -> 4 open spans max).
    enableTracer(8);
    {
        TraceSpan a("test", "test.n1");
        TraceSpan b("test", "test.n2");
        TraceSpan c("test", "test.n3");
        TraceSpan d("test", "test.n4");
        TraceSpan e("test", "test.n5"); // must be refused
        EXPECT_TRUE(a.armed());
        EXPECT_TRUE(d.armed());
        EXPECT_FALSE(e.armed());
    }
    std::string text = Tracer::instance().serialize();
    Tracer::instance().disable();

    ValidatedTrace v;
    validateTrace(text, v);
    EXPECT_EQ(v.begins["test.n4"], 1u);
    EXPECT_EQ(v.begins["test.n5"], 0u);
    EXPECT_EQ(v.droppedSpans, 1u);
}

TEST(TraceSpan, SerializeClosesSpansStillOpen)
{
    enableTracer();
    TraceSpan open("test", "test.still_open");
    ASSERT_TRUE(open.armed());
    std::string text = Tracer::instance().serialize();
    // Balanced even though the span has not destructed yet: a
    // synthetic 'E' at the thread's last timestamp closes it.
    ValidatedTrace v;
    validateTrace(text, v);
    EXPECT_EQ(v.begins["test.still_open"], 1u);
    Tracer::instance().disable();
}

TEST(TraceSpan, CompleteSpanRecordsRetroactively)
{
    enableTracer();
    const std::uint64_t now = Tracer::nowNs();
    obs::traceCompleteSpan("test", "test.retro", now, now + 5000);
    // An end before the begin must clamp, not corrupt ordering.
    obs::traceCompleteSpan("test", "test.clamped", now + 6000,
                           now + 5500);
    std::string text = Tracer::instance().serialize();
    Tracer::instance().disable();

    ValidatedTrace v;
    validateTrace(text, v);
    EXPECT_EQ(v.begins["test.retro"], 1u);
    EXPECT_EQ(v.begins["test.clamped"], 1u);
}

TEST(TraceSpan, FlushWritesParseableFileAtomically)
{
    const std::string path =
        "/tmp/ccp_trace_span_test_" +
        std::to_string(static_cast<long>(::getpid())) + ".json";
    enableTracer(1 << 12, path);
    {
        TraceSpan span("test", "test.flushed");
    }
    EXPECT_TRUE(Tracer::instance().flush());
    EXPECT_FALSE(Tracer::enabled()) << "flush must stop recording";

    std::ifstream is(path, std::ios::binary);
    ASSERT_TRUE(is.good());
    std::ostringstream ss;
    ss << is.rdbuf();
    ValidatedTrace v;
    validateTrace(ss.str(), v);
    EXPECT_EQ(v.begins["test.flushed"], 1u);
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
}

TEST(TraceSpan, ReenableClearsPriorRecords)
{
    enableTracer();
    {
        TraceSpan span("test", "test.first_run");
    }
    enableTracer(); // re-enable must clear, not accumulate
    {
        TraceSpan span("test", "test.second_run");
    }
    std::string text = Tracer::instance().serialize();
    Tracer::instance().disable();

    ValidatedTrace v;
    validateTrace(text, v);
    EXPECT_EQ(v.begins["test.first_run"], 0u);
    EXPECT_EQ(v.begins["test.second_run"], 1u);
}

TEST(PerfCounters, ReadIsAlwaysSafe)
{
    // perf_event_open may be denied (containers, hardened kernels) or
    // absent (non-Linux); the wrapper must degrade to invalid samples
    // without crashing, and valid samples must subtract cleanly.
    PerfCounters &pc = PerfCounters::thread();
    PerfSample a = pc.read();
    PerfSample b = pc.read();
    if (pc.ok()) {
        EXPECT_TRUE(a.valid);
        PerfSample d = b - a;
        EXPECT_GE(b.cycles, a.cycles);
        EXPECT_GE(d.ipc(), 0.0);
    } else {
        EXPECT_FALSE(a.valid);
        EXPECT_FALSE(b.valid);
        PerfSample d = b - a;
        EXPECT_FALSE(d.valid);
        EXPECT_EQ(d.ipc(), 0.0); // no division by zero
    }
}

TEST(PerfCounters, SpansRecordWithPerfSamplingEnabled)
{
    // Whether or not the kernel grants counters, perf-sampled spans
    // must serialize well-formed.
    Tracer::Options opts;
    opts.perfCounters = true;
    Tracer::instance().enable(std::move(opts));
    {
        TraceSpan span("test", "test.perf_span");
        volatile std::uint64_t sink = 0;
        for (int i = 0; i < 10000; ++i)
            sink = sink + std::uint64_t(i) * 3;
    }
    std::string text = Tracer::instance().serialize();
    Tracer::instance().disable();

    ValidatedTrace v;
    validateTrace(text, v);
    EXPECT_EQ(v.begins["test.perf_span"], 1u);
    if (PerfCounters::available()) {
        EXPECT_NE(text.find("\"cycles\":"), std::string::npos);
    }
}

} // namespace
