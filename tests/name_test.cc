/**
 * @file
 * Tests for the scheme-notation formatter and parser.
 */

#include <gtest/gtest.h>

#include "sweep/name.hh"

namespace {

using namespace ccp;
using predict::FunctionKind;
using predict::IndexSpec;
using predict::SchemeSpec;
using predict::UpdateMode;
using sweep::formatScheme;
using sweep::parseScheme;

SchemeSpec
spec(FunctionKind kind, unsigned depth, bool pid, unsigned pc, bool dir,
     unsigned addr)
{
    return SchemeSpec{IndexSpec{pid, pc, dir, addr}, kind, depth};
}

TEST(Name, FormatsPaperExamples)
{
    EXPECT_EQ(formatScheme(
                  spec(FunctionKind::Union, 2, true, 0, true, 4)),
              "union(pid+dir+add4)2");
    EXPECT_EQ(formatScheme(
                  spec(FunctionKind::Inter, 4, true, 6, false, 6)),
              "inter(pid+pc6+add6)4");
    EXPECT_EQ(formatScheme(
                  spec(FunctionKind::Union, 1, false, 0, true, 8)),
              "union(dir+add8)1");
    EXPECT_EQ(formatScheme(spec(FunctionKind::PAs, 2, true, 0, false, 0)),
              "pas(pid)2");
}

TEST(Name, FormatWithUpdateSuffix)
{
    EXPECT_EQ(formatScheme(
                  spec(FunctionKind::Union, 2, true, 0, true, 4),
                  UpdateMode::Direct),
              "union(pid+dir+add4)2[direct]");
    EXPECT_EQ(formatScheme(spec(FunctionKind::Inter, 2, true, 8, false, 0),
                           UpdateMode::Forwarded),
              "inter(pid+pc8)2[forwarded]");
}

TEST(Name, ParsesItsOwnOutput)
{
    std::vector<SchemeSpec> cases = {
        spec(FunctionKind::Union, 1, false, 0, false, 0),
        spec(FunctionKind::Union, 4, false, 0, true, 14),
        spec(FunctionKind::Inter, 2, true, 8, false, 0),
        spec(FunctionKind::Inter, 4, true, 6, true, 4),
        spec(FunctionKind::PAs, 2, true, 4, true, 4),
    };
    for (const auto &s : cases) {
        auto parsed = parseScheme(formatScheme(s));
        ASSERT_TRUE(parsed.has_value()) << formatScheme(s);
        EXPECT_EQ(parsed->scheme, s) << formatScheme(s);
        EXPECT_FALSE(parsed->mode.has_value());
    }
}

TEST(Name, ParsesUpdateSuffix)
{
    auto p = parseScheme("inter(pid+pc8)2[forwarded]");
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->mode, UpdateMode::Forwarded);
    auto q = parseScheme("union(dir+add2)4[ordered]");
    ASSERT_TRUE(q.has_value());
    EXPECT_EQ(q->mode, UpdateMode::Ordered);
}

TEST(Name, ParsesPaperTableSevenSpellings)
{
    // "last(pid+pc8)1" (Kaxiras) and "last(pid+mem8)" (Lai) both
    // normalize to depth-1 unions.
    auto kax = parseScheme("last(pid+pc8)1");
    ASSERT_TRUE(kax.has_value());
    EXPECT_EQ(kax->scheme.kind, FunctionKind::Union);
    EXPECT_EQ(kax->scheme.depth, 1u);
    EXPECT_EQ(kax->scheme.index.pcBits, 8u);

    auto lai = parseScheme("last(pid+mem8)");
    ASSERT_TRUE(lai.has_value());
    EXPECT_EQ(lai->scheme.depth, 1u); // missing depth defaults to 1
    EXPECT_EQ(lai->scheme.index.addrBits, 8u);

    auto baseline = parseScheme("last()1");
    ASSERT_TRUE(baseline.has_value());
    EXPECT_EQ(baseline->scheme.index, IndexSpec{});
}

TEST(Name, ParsesAddrSpelling)
{
    auto p = parseScheme("union(addr16)4");
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->scheme.index.addrBits, 16u);
}

TEST(Name, RejectsMalformedInput)
{
    EXPECT_FALSE(parseScheme("").has_value());
    EXPECT_FALSE(parseScheme("foo(pid)1").has_value());
    EXPECT_FALSE(parseScheme("union(pid").has_value());
    EXPECT_FALSE(parseScheme("union(pc)1").has_value());    // pc needs bits
    EXPECT_FALSE(parseScheme("union(bogus8)1").has_value());
    EXPECT_FALSE(parseScheme("union(pid)1[maybe]").has_value());
    EXPECT_FALSE(parseScheme("union(pid)1 trailing").has_value());
    EXPECT_FALSE(parseScheme("union(pid)1[direct").has_value());
}

TEST(Name, PerceptronRoundTrip)
{
    // w/t always print (they are part of the scheme's identity —
    // checkpoint and serve keys hash this notation), b only when the
    // Bloom filter is on, and the hashed fold marks the field list.
    auto s = spec(FunctionKind::Perceptron, 4, false, 8, false, 6);
    s.perc.weightBits = 5;
    s.perc.theta = 2;
    EXPECT_EQ(formatScheme(s), "perceptron(pc8+add6)4w5t2");

    s.index.hashed = true;
    s.perc.bloomBits = 16;
    EXPECT_EQ(formatScheme(s), "perceptron(hash:pc8+add6)4w5t2b16");

    std::vector<SchemeSpec> cases;
    cases.push_back(s);
    auto t = spec(FunctionKind::Perceptron, 1, true, 0, true, 0);
    t.perc.weightBits = 8;
    t.perc.theta = 7;
    cases.push_back(t);
    for (const auto &c : cases) {
        auto parsed = parseScheme(formatScheme(c));
        ASSERT_TRUE(parsed.has_value()) << formatScheme(c);
        EXPECT_EQ(parsed->scheme, c) << formatScheme(c);
    }

    auto with_mode =
        parseScheme("perceptron(hash:pid+dir+add4)2w4t1b8[forwarded]");
    ASSERT_TRUE(with_mode.has_value());
    EXPECT_EQ(with_mode->scheme.kind, FunctionKind::Perceptron);
    EXPECT_TRUE(with_mode->scheme.index.hashed);
    EXPECT_EQ(with_mode->scheme.perc.weightBits, 4u);
    EXPECT_EQ(with_mode->scheme.perc.theta, 1u);
    EXPECT_EQ(with_mode->scheme.perc.bloomBits, 8u);
    EXPECT_EQ(with_mode->mode, UpdateMode::Forwarded);
}

TEST(Name, PerceptronDimensionDefaultsApplyWhenOmitted)
{
    auto p = parseScheme("perceptron(pid+pc4)2");
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->scheme.perc, predict::PerceptronParams{});
    EXPECT_FALSE(p->scheme.index.hashed);
}

TEST(Name, PerceptronRejectsDanglingDimensions)
{
    EXPECT_FALSE(parseScheme("perceptron(pid)2w").has_value());
    EXPECT_FALSE(parseScheme("perceptron(pid)2w5t").has_value());
    EXPECT_FALSE(parseScheme("perceptron(pid)2w5t2b").has_value());
    // The w/t/b dimensions are only legal on the perceptron family.
    EXPECT_FALSE(parseScheme("union(pid)2w5t2").has_value());
}

} // namespace

namespace {

TEST(Name, OverlapLastRoundTrip)
{
    auto s = spec(FunctionKind::OverlapLast, 1, true, 8, false, 0);
    EXPECT_EQ(formatScheme(s), "overlap-last(pid+pc8)1");
    auto parsed = parseScheme("overlap-last(pid+pc8)1[direct]");
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->scheme.kind, FunctionKind::OverlapLast);
    EXPECT_EQ(parsed->mode, UpdateMode::Direct);
}

} // namespace
