/**
 * @file
 * Tests for deterministic shard planning and the CCPC shard merge
 * (sweep/shard.hh): the partition is a stable permutation of the
 * scheme list, shard checkpoint keys are distinct and self-describing,
 * and merging K shard checkpoints reproduces a single-process
 * evaluation exactly — including under torn or mismatched shard files,
 * which must be rejected per shard, never folded into wrong results.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "sweep/name.hh"
#include "sweep/parallel.hh"
#include "sweep/shard.hh"
#include "sweep/space.hh"

namespace {

using namespace ccp;
using predict::SchemeSpec;
using predict::SuiteResult;
using predict::UpdateMode;
using sweep::CheckpointEntry;
using sweep::CheckpointKey;
using sweep::CheckpointLoad;
using sweep::ShardMerge;
using sweep::ShardPlan;
using sweep::SweepKernel;
using sweep::mergeShardCheckpoints;
using sweep::planShards;
using sweep::shardCheckpointKey;
using sweep::shardSchemes;

trace::SharingTrace
noisyTrace(const char *name, std::uint64_t seed)
{
    trace::SharingTrace tr(name, 16);
    trace::CoherenceEvent prev_by_block[32];
    bool seen[32] = {};
    Rng rng(seed);
    for (int i = 0; i < 600; ++i) {
        unsigned k = static_cast<unsigned>(rng.below(32));
        trace::CoherenceEvent ev;
        ev.pid = static_cast<NodeId>(k % 16);
        ev.pc = 0x400 + 4 * (k % 8);
        ev.block = k;
        ev.dir = k % 16;
        ev.readers = SharingBitmap::single((k + 1) % 16);
        if (rng.below(4) == 0)
            ev.readers.set(static_cast<NodeId>(rng.below(16)));
        if (seen[k]) {
            ev.invalidated = prev_by_block[k].readers;
            ev.prevWriterPid = prev_by_block[k].pid;
            ev.prevWriterPc = prev_by_block[k].pc;
            ev.hasPrevWriter = true;
        }
        seen[k] = true;
        prev_by_block[k] = ev;
        tr.append(ev);
    }
    return tr;
}

std::vector<trace::SharingTrace>
smallSuite()
{
    std::vector<trace::SharingTrace> suite;
    suite.push_back(noisyTrace("alpha", 7));
    suite.push_back(noisyTrace("beta", 23));
    return suite;
}

std::vector<SchemeSpec>
smallSpace()
{
    sweep::SpaceSpec spec;
    spec.maxBits = std::uint64_t(1) << 12;
    spec.pcBitsGrid = {0, 2, 4};
    spec.addrBitsGrid = {0, 2, 4};
    spec.pasDepths = {1};
    return enumerateSchemes(spec);
}

/** A checkpoint base with no leftovers from earlier runs. */
std::string
ckptBase(const char *name)
{
    const std::string base = ::testing::TempDir() + name;
    std::error_code ec;
    for (const auto &de : std::filesystem::directory_iterator(
             ::testing::TempDir(), ec)) {
        const std::string p = de.path().string();
        if (p.rfind(base + ".", 0) == 0)
            std::filesystem::remove(de.path(), ec);
    }
    return base;
}

/** Evaluate shard @p shard's sub-list and save its CCPC checkpoint,
 *  exactly as a shard worker would.  @return the saved file path. */
std::string
writeShardCheckpoint(const std::string &base,
                     const std::vector<trace::SharingTrace> &suite,
                     const std::vector<SchemeSpec> &schemes,
                     const ShardPlan &plan, unsigned shard,
                     UpdateMode mode, SweepKernel kernel)
{
    const auto sub = shardSchemes(schemes, plan, shard);
    const auto results =
        sweep::ParallelSweep(1, kernel).evaluate(suite, sub, mode);
    std::vector<CheckpointEntry> entries;
    for (std::size_t j = 0; j < results.size(); ++j) {
        CheckpointEntry e;
        e.schemeIndex = j; // shard-local, as a worker checkpoints it
        for (const auto &pt : results[j].perTrace)
            e.perTrace.push_back(pt.confusion);
        entries.push_back(std::move(e));
    }
    const CheckpointKey key = shardCheckpointKey(
        suite, schemes, plan, shard, mode, kernel);
    const std::string file = sweep::checkpointFileName(base, key);
    EXPECT_TRUE(sweep::saveCheckpoint(file, key, std::move(entries)));
    return file;
}

TEST(ShardPlanTest, PartitionIsAPermutationAndDeterministic)
{
    auto schemes = smallSpace();
    ASSERT_GE(schemes.size(), 20u);

    for (unsigned k : {1u, 3u, 4u, 7u}) {
        const ShardPlan plan = planShards(schemes, k);
        ASSERT_EQ(plan.shards, k);
        ASSERT_EQ(plan.byShard.size(), k);

        std::set<std::size_t> seen;
        for (unsigned s = 0; s < k; ++s) {
            std::size_t prev = 0;
            bool first = true;
            for (std::size_t gi : plan.byShard[s]) {
                ASSERT_LT(gi, schemes.size());
                EXPECT_TRUE(seen.insert(gi).second)
                    << "index " << gi << " owned twice";
                // Ascending within a shard: a shard's local entry
                // order must be its global order for the merge remap.
                if (!first)
                    EXPECT_LT(prev, gi);
                prev = gi;
                first = false;
            }
        }
        EXPECT_EQ(seen.size(), schemes.size());

        // Same inputs, same partition — across calls (and, because
        // the hash is over canonical names, across processes).
        const ShardPlan again = planShards(schemes, k);
        EXPECT_EQ(plan.byShard, again.byShard);
    }
}

TEST(ShardPlanTest, ShardSchemesMatchesThePlan)
{
    auto schemes = smallSpace();
    const ShardPlan plan = planShards(schemes, 4);
    for (unsigned s = 0; s < 4; ++s) {
        const auto sub = shardSchemes(schemes, plan, s);
        ASSERT_EQ(sub.size(), plan.byShard[s].size());
        for (std::size_t j = 0; j < sub.size(); ++j)
            EXPECT_EQ(sub[j], schemes[plan.byShard[s][j]]);
    }
}

TEST(ShardPlanTest, MoreShardsThanSchemesLeavesEmptyShards)
{
    const auto space = smallSpace();
    const std::vector<SchemeSpec> two(space.begin(),
                                      space.begin() + 2);
    const ShardPlan plan = planShards(two, 64);
    std::size_t owned = 0;
    for (const auto &s : plan.byShard)
        owned += s.size();
    EXPECT_EQ(owned, 2u);
}

TEST(ShardPlanTest, ShardKeysAreDistinctPerShard)
{
    auto suite = smallSuite();
    auto schemes = smallSpace();
    const ShardPlan plan = planShards(schemes, 4);
    std::set<std::string> files;
    for (unsigned s = 0; s < 4; ++s) {
        const CheckpointKey key = shardCheckpointKey(
            suite, schemes, plan, s, UpdateMode::Direct,
            SweepKernel::Batched);
        EXPECT_TRUE(
            files
                .insert(sweep::checkpointFileName("base", key))
                .second)
            << "shard " << s << " filename collides";
    }
}

TEST(ShardMergeTest, MergeReproducesSingleProcessResultsExactly)
{
    auto suite = smallSuite();
    auto schemes = smallSpace();
    const auto mode = UpdateMode::Direct;
    const auto kernel = SweepKernel::Batched;
    const std::string base = ckptBase("shard_merge");

    const auto baseline =
        sweep::ParallelSweep(1, kernel).evaluate(suite, schemes, mode);

    const ShardPlan plan = planShards(schemes, 4);
    for (unsigned s = 0; s < 4; ++s)
        writeShardCheckpoint(base, suite, schemes, plan, s, mode,
                             kernel);

    const ShardMerge merge = mergeShardCheckpoints(
        base, suite, schemes, mode, kernel, 4);
    EXPECT_TRUE(merge.allCompleted());
    ASSERT_EQ(merge.entries.size(), schemes.size());
    for (const auto &st : merge.shardStatus)
        EXPECT_EQ(st.load, CheckpointLoad::Ok) << "shard " << st.shard;

    for (std::size_t i = 0; i < merge.entries.size(); ++i) {
        const auto &e = merge.entries[i];
        // Canonical order: ascending global indices, one per scheme.
        ASSERT_EQ(e.schemeIndex, i);
        const SuiteResult restored = sweep::restoreSuiteResult(
            schemes[i], mode, suite, e.perTrace);
        const SuiteResult &want = baseline[i];
        const std::string what = sweep::formatScheme(want.scheme);
        ASSERT_EQ(restored.perTrace.size(), want.perTrace.size());
        for (std::size_t t = 0; t < want.perTrace.size(); ++t) {
            EXPECT_EQ(restored.perTrace[t].confusion.tp,
                      want.perTrace[t].confusion.tp)
                << what;
            EXPECT_EQ(restored.perTrace[t].confusion.fp,
                      want.perTrace[t].confusion.fp)
                << what;
            EXPECT_EQ(restored.perTrace[t].confusion.tn,
                      want.perTrace[t].confusion.tn)
                << what;
            EXPECT_EQ(restored.perTrace[t].confusion.fn,
                      want.perTrace[t].confusion.fn)
                << what;
        }
        EXPECT_EQ(restored.pooled.tp, want.pooled.tp) << what;
        EXPECT_EQ(restored.pooled.fp, want.pooled.fp) << what;
        EXPECT_EQ(restored.pooled.tn, want.pooled.tn) << what;
        EXPECT_EQ(restored.pooled.fn, want.pooled.fn) << what;
    }
}

TEST(ShardMergeTest, TornShardFileIsRejectedOthersRecovered)
{
    auto suite = smallSuite();
    auto schemes = smallSpace();
    const auto mode = UpdateMode::Forwarded;
    const auto kernel = SweepKernel::Batched;
    const std::string base = ckptBase("shard_torn");

    const ShardPlan plan = planShards(schemes, 3);
    std::vector<std::string> files;
    for (unsigned s = 0; s < 3; ++s)
        files.push_back(writeShardCheckpoint(
            base, suite, schemes, plan, s, mode, kernel));

    // Tear shard 1's file in half — the validated container must
    // reject it wholesale (a half-file could still parse as fewer
    // entries if sizes happened to line up; the checksum forbids it).
    const auto full =
        std::filesystem::file_size(std::filesystem::path(files[1]));
    std::filesystem::resize_file(files[1], full / 2);

    const ShardMerge merge = mergeShardCheckpoints(
        base, suite, schemes, mode, kernel, 3);
    EXPECT_FALSE(merge.allCompleted());
    EXPECT_EQ(merge.shardStatus[1].load, CheckpointLoad::Invalid);
    EXPECT_EQ(merge.shardStatus[1].schemesDone, 0u);

    // Every scheme of shards 0 and 2 is recovered; none of shard 1's.
    std::size_t expect =
        plan.byShard[0].size() + plan.byShard[2].size();
    EXPECT_EQ(merge.entries.size(), expect);
    for (std::size_t gi : plan.byShard[1])
        EXPECT_FALSE(merge.completed[gi]);
    for (std::size_t gi : plan.byShard[0])
        EXPECT_TRUE(merge.completed[gi]);
}

TEST(ShardMergeTest, MismatchedShardFileIsAKeyMismatchNotData)
{
    auto suite = smallSuite();
    auto schemes = smallSpace();
    const auto mode = UpdateMode::Direct;
    const auto kernel = SweepKernel::Batched;
    const std::string base = ckptBase("shard_mismatch");

    const ShardPlan plan = planShards(schemes, 2);
    writeShardCheckpoint(base, suite, schemes, plan, 0, mode, kernel);

    // Plant shard 0's *content* under shard 1's filename: a valid
    // container for the wrong shard.  The in-file key must reject it.
    const CheckpointKey key0 = shardCheckpointKey(
        suite, schemes, plan, 0, mode, kernel);
    const CheckpointKey key1 = shardCheckpointKey(
        suite, schemes, plan, 1, mode, kernel);
    std::filesystem::copy_file(
        sweep::checkpointFileName(base, key0),
        sweep::checkpointFileName(base, key1),
        std::filesystem::copy_options::overwrite_existing);

    const ShardMerge merge = mergeShardCheckpoints(
        base, suite, schemes, mode, kernel, 2);
    EXPECT_FALSE(merge.allCompleted());
    EXPECT_EQ(merge.shardStatus[0].load, CheckpointLoad::Ok);
    EXPECT_EQ(merge.shardStatus[1].load,
              CheckpointLoad::KeyMismatch);
    for (std::size_t gi : plan.byShard[1])
        EXPECT_FALSE(merge.completed[gi]);
}

TEST(ShardMergeTest, MissingShardsAreReportedNotFatal)
{
    auto suite = smallSuite();
    auto schemes = smallSpace();
    const std::string base = ckptBase("shard_missing");

    const ShardMerge merge = mergeShardCheckpoints(
        base, suite, schemes, UpdateMode::Direct,
        SweepKernel::Batched, 4);
    EXPECT_FALSE(merge.allCompleted());
    EXPECT_TRUE(merge.entries.empty());
    ASSERT_EQ(merge.shardStatus.size(), 4u);
    for (const auto &st : merge.shardStatus)
        EXPECT_EQ(st.load, CheckpointLoad::Missing)
            << "shard " << st.shard;
}

} // namespace
