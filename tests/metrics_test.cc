/**
 * @file
 * Tests for the screening-test statistics (paper section 4).
 */

#include <gtest/gtest.h>

#include "predict/metrics.hh"

namespace {

using ccp::SharingBitmap;
using ccp::predict::Confusion;

TEST(Confusion, EmptyDefaults)
{
    Confusion c;
    EXPECT_EQ(c.decisions(), 0u);
    EXPECT_EQ(c.prevalence(), 0.0);
    // Vacuous perfection: nothing predicted, nothing missed.
    EXPECT_EQ(c.sensitivity(), 1.0);
    EXPECT_EQ(c.pvp(), 1.0);
}

TEST(Confusion, FourQuadrants)
{
    Confusion c;
    // predicted {0,1}, actual {1,2} over 4 nodes:
    // node 0: FP, node 1: TP, node 2: FN, node 3: TN.
    c.add(SharingBitmap(0b0011), SharingBitmap(0b0110), 4);
    EXPECT_EQ(c.tp, 1u);
    EXPECT_EQ(c.fp, 1u);
    EXPECT_EQ(c.fn, 1u);
    EXPECT_EQ(c.tn, 1u);
    EXPECT_EQ(c.decisions(), 4u);
}

TEST(Confusion, PerfectPrediction)
{
    Confusion c;
    c.add(SharingBitmap(0b0110), SharingBitmap(0b0110), 16);
    EXPECT_EQ(c.tp, 2u);
    EXPECT_EQ(c.fp, 0u);
    EXPECT_EQ(c.fn, 0u);
    EXPECT_EQ(c.tn, 14u);
    EXPECT_DOUBLE_EQ(c.sensitivity(), 1.0);
    EXPECT_DOUBLE_EQ(c.pvp(), 1.0);
    EXPECT_DOUBLE_EQ(c.accuracy(), 1.0);
}

TEST(Confusion, BitsAboveMachineWidthIgnored)
{
    Confusion c;
    c.add(SharingBitmap(0xf0f0), SharingBitmap(0xffff), 4);
    // Only the low 4 bits participate.
    EXPECT_EQ(c.decisions(), 4u);
    EXPECT_EQ(c.tp, 0u);
    EXPECT_EQ(c.fn, 4u);
}

TEST(Confusion, DefinitionsMatchTableTwo)
{
    Confusion c{/*tp=*/30, /*fp=*/10, /*tn=*/50, /*fn=*/10};
    EXPECT_DOUBLE_EQ(c.prevalence(), 40.0 / 100.0);
    EXPECT_DOUBLE_EQ(c.sensitivity(), 30.0 / 40.0);
    EXPECT_DOUBLE_EQ(c.pvp(), 30.0 / 40.0);
    EXPECT_DOUBLE_EQ(c.specificity(), 50.0 / 60.0);
    EXPECT_DOUBLE_EQ(c.pvn(), 50.0 / 60.0);
    EXPECT_DOUBLE_EQ(c.accuracy(), 80.0 / 100.0);
}

TEST(Confusion, MergeIsAdditive)
{
    Confusion a{1, 2, 3, 4}, b{10, 20, 30, 40};
    a.merge(b);
    EXPECT_EQ(a, (Confusion{11, 22, 33, 44}));
}

TEST(Confusion, AccumulatesAcrossEvents)
{
    Confusion c;
    for (int i = 0; i < 100; ++i)
        c.add(SharingBitmap(0b1), SharingBitmap(0b1), 16);
    EXPECT_EQ(c.tp, 100u);
    EXPECT_EQ(c.tn, 1500u);
    EXPECT_DOUBLE_EQ(c.prevalence(), 100.0 / 1600.0);
}

TEST(Confusion, NeverPredictingSharingHasUndefinedButSafePvp)
{
    Confusion c;
    c.add(SharingBitmap(0), SharingBitmap(0b1), 16);
    // No positives predicted: PVP defined as 1 (no wasted traffic),
    // sensitivity 0 (all opportunities missed).
    EXPECT_DOUBLE_EQ(c.pvp(), 1.0);
    EXPECT_DOUBLE_EQ(c.sensitivity(), 0.0);
}

TEST(Confusion, AlwaysPredictingEveryoneMaximizesSensitivity)
{
    Confusion c;
    c.add(SharingBitmap::all(16), SharingBitmap(0b10), 16);
    EXPECT_DOUBLE_EQ(c.sensitivity(), 1.0);
    // ...at terrible PVP, which equals prevalence in that limit.
    EXPECT_DOUBLE_EQ(c.pvp(), c.prevalence());
}

} // namespace
