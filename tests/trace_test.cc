/**
 * @file
 * Tests for SharingTrace: statistics and binary round-tripping.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "trace/format.hh"
#include "trace/trace.hh"

namespace {

using namespace ccp;
using trace::CoherenceEvent;
using trace::SharingTrace;

CoherenceEvent
makeEvent(NodeId pid, Pc pc, Addr block, std::uint64_t readers_raw)
{
    CoherenceEvent ev;
    ev.pid = pid;
    ev.pc = pc;
    ev.dir = pid;
    ev.block = block;
    ev.readers = SharingBitmap(readers_raw);
    return ev;
}

TEST(SharingTrace, EmptyTrace)
{
    SharingTrace tr("x", 16);
    EXPECT_EQ(tr.storeMisses(), 0u);
    EXPECT_EQ(tr.decisions(), 0u);
    EXPECT_EQ(tr.sharingEvents(), 0u);
    EXPECT_EQ(tr.prevalence(), 0.0);
}

TEST(SharingTrace, AppendReturnsSequence)
{
    SharingTrace tr("x", 16);
    EXPECT_EQ(tr.append(makeEvent(0, 0x400, 1, 0)), 0u);
    EXPECT_EQ(tr.append(makeEvent(1, 0x404, 2, 0)), 1u);
    EXPECT_EQ(tr.storeMisses(), 2u);
}

TEST(SharingTrace, DecisionsAreNodesTimesEvents)
{
    SharingTrace tr("x", 16);
    for (int i = 0; i < 5; ++i)
        tr.append(makeEvent(0, 0x400, i, 0));
    EXPECT_EQ(tr.decisions(), 80u); // Table 6: 16 x store misses
}

TEST(SharingTrace, PrevalenceMatchesTableSixArithmetic)
{
    SharingTrace tr("x", 16);
    tr.append(makeEvent(0, 0x400, 1, 0b0110)); // 2 readers
    tr.append(makeEvent(1, 0x404, 2, 0b0001)); // 1 reader
    tr.append(makeEvent(2, 0x408, 3, 0));      // none
    EXPECT_EQ(tr.sharingEvents(), 3u);
    EXPECT_DOUBLE_EQ(tr.prevalence(), 3.0 / 48.0);
}

TEST(SharingTrace, StreamRoundTrip)
{
    SharingTrace tr("bench", 16);
    tr.meta().maxStaticStoresPerNode = 12;
    tr.meta().maxPredictedStoresPerNode = 7;
    tr.meta().blocksTouched = 99;
    tr.meta().totalOps = 12345;

    CoherenceEvent ev = makeEvent(3, 0x440, 77, 0b1010);
    ev.invalidated = SharingBitmap(0b0100);
    ev.prevWriterPid = 2;
    ev.prevWriterPc = 0x43c;
    ev.hasPrevWriter = true;
    ev.prevEvent = 0;
    tr.append(makeEvent(2, 0x43c, 77, 0b0100));
    tr.append(ev);

    std::stringstream ss;
    ASSERT_TRUE(tr.save(ss));

    SharingTrace back;
    ASSERT_TRUE(back.load(ss));
    EXPECT_EQ(back.name(), "bench");
    EXPECT_EQ(back.nNodes(), 16u);
    EXPECT_EQ(back.meta().maxStaticStoresPerNode, 12u);
    EXPECT_EQ(back.meta().maxPredictedStoresPerNode, 7u);
    EXPECT_EQ(back.meta().blocksTouched, 99u);
    EXPECT_EQ(back.meta().totalOps, 12345u);
    ASSERT_EQ(back.events().size(), 2u);

    const auto &e = back.events()[1];
    EXPECT_EQ(e.pid, 3u);
    EXPECT_EQ(e.pc, 0x440u);
    EXPECT_EQ(e.block, 77u);
    EXPECT_EQ(e.readers.raw(), 0b1010u);
    EXPECT_EQ(e.invalidated.raw(), 0b0100u);
    EXPECT_TRUE(e.hasPrevWriter);
    EXPECT_EQ(e.prevWriterPid, 2u);
    EXPECT_EQ(e.prevWriterPc, 0x43cu);
    EXPECT_EQ(e.prevEvent, 0u);
}

TEST(SharingTrace, LoadRejectsGarbage)
{
    std::stringstream ss("this is not a trace file");
    SharingTrace tr;
    EXPECT_FALSE(tr.load(ss));
}

TEST(SharingTrace, LoadRejectsTruncation)
{
    SharingTrace tr("bench", 16);
    tr.append(makeEvent(0, 0x400, 1, 0));
    std::stringstream ss;
    ASSERT_TRUE(tr.save(ss));
    std::string whole = ss.str();
    std::stringstream cut(whole.substr(0, whole.size() / 2));
    SharingTrace back;
    EXPECT_FALSE(back.load(cut));
}

TEST(SharingTrace, FileRoundTrip)
{
    SharingTrace tr("filetest", 8);
    tr.append(makeEvent(1, 0x400, 5, 0b11));

    std::string path = ::testing::TempDir() + "/ccp_trace_test.bin";
    ASSERT_TRUE(tr.saveFile(path));
    SharingTrace back;
    ASSERT_TRUE(back.loadFile(path));
    EXPECT_EQ(back.name(), "filetest");
    EXPECT_EQ(back.nNodes(), 8u);
    ASSERT_EQ(back.events().size(), 1u);
    EXPECT_EQ(back.events()[0].readers.raw(), 0b11u);
    std::remove(path.c_str());
}

TEST(SharingTrace, LoadMissingFileFails)
{
    SharingTrace tr;
    EXPECT_FALSE(tr.loadFile("/nonexistent/path/trace.bin"));
}

// ---------------------------------------------------------------------
// Format v4 validation: corruption in any form is rejected without a
// crash and without touching the destination trace.

/** A small but non-trivial trace exercising every serialized field. */
SharingTrace
sampleTrace()
{
    SharingTrace tr("sample", 16);
    tr.meta().maxStaticStoresPerNode = 12;
    tr.meta().blocksTouched = 99;
    tr.meta().totalOps = 12345;
    tr.meta().invalidationsSent = 7;
    for (int i = 0; i < 3; ++i) {
        CoherenceEvent ev = makeEvent(i, 0x400 + 4 * i, 10 + i,
                                      0b1010 >> i);
        ev.invalidated = SharingBitmap(0b0100);
        ev.prevWriterPid = 2;
        ev.prevWriterPc = 0x43c;
        ev.hasPrevWriter = i > 0;
        ev.prevEvent = i > 0 ? i - 1 : trace::noEvent;
        tr.append(ev);
    }
    return tr;
}

std::string
serialized(const SharingTrace &tr)
{
    std::stringstream ss;
    EXPECT_TRUE(tr.save(ss));
    return ss.str();
}

/** A destination pre-filled with sentinel state, to detect partial
 *  writes by a failing load. */
SharingTrace
sentinelTrace()
{
    SharingTrace tr("sentinel", 8);
    tr.meta().totalOps = 777;
    tr.append(makeEvent(5, 0x999, 42, 0b1));
    return tr;
}

void
expectUnchangedSentinel(const SharingTrace &tr)
{
    EXPECT_EQ(tr.name(), "sentinel");
    EXPECT_EQ(tr.nNodes(), 8u);
    EXPECT_EQ(tr.meta().totalOps, 777u);
    ASSERT_EQ(tr.events().size(), 1u);
    EXPECT_EQ(tr.events()[0].block, 42u);
}

/** load() from raw bytes. */
bool
loadBytes(SharingTrace &tr, const std::string &bytes)
{
    std::stringstream ss(bytes);
    return tr.load(ss);
}

TEST(TraceFormatV4, HeaderGeometry)
{
    EXPECT_EQ(sizeof(trace::TraceHeader), 64u);
    EXPECT_EQ(sizeof(trace::PackedEvent), 64u);
    const std::string bytes = serialized(sampleTrace());
    EXPECT_EQ(bytes.size(), sizeof(trace::TraceHeader) +
                                trace::traceMetaBytes + 3 * 64 +
                                std::strlen("sample"));
}

TEST(TraceFormatV4, RejectsTruncationAtEveryBoundary)
{
    const std::string whole = serialized(sampleTrace());
    // Every header byte, every section boundary, every event record
    // boundary, a mid-record cut, and one-byte-short.
    std::vector<std::size_t> cuts;
    for (std::size_t i = 0; i < sizeof(trace::TraceHeader); ++i)
        cuts.push_back(i);
    const std::size_t payload = sizeof(trace::TraceHeader);
    cuts.push_back(payload);                         // before meta
    cuts.push_back(payload + trace::traceMetaBytes); // before events
    for (std::size_t e = 0; e <= 3; ++e)
        cuts.push_back(payload + trace::traceMetaBytes + e * 64);
    cuts.push_back(payload + trace::traceMetaBytes + 64 + 13);
    cuts.push_back(whole.size() - 1); // inside the name
    for (std::size_t cut : cuts) {
        ASSERT_LT(cut, whole.size());
        SharingTrace dst = sentinelTrace();
        EXPECT_FALSE(loadBytes(dst, whole.substr(0, cut)))
            << "cut at " << cut;
        expectUnchangedSentinel(dst);
    }
}

TEST(TraceFormatV4, RejectsEverySingleFlippedByte)
{
    const std::string whole = serialized(sampleTrace());
    for (std::size_t i = 0; i < whole.size(); ++i) {
        std::string bad = whole;
        bad[i] = static_cast<char>(bad[i] ^ 0x40);
        SharingTrace dst = sentinelTrace();
        EXPECT_FALSE(loadBytes(dst, bad)) << "flip at byte " << i;
        expectUnchangedSentinel(dst);
    }
}

TEST(TraceFormatV4, RejectsBadMagicAndOldVersions)
{
    const std::string whole = serialized(sampleTrace());
    {
        std::string bad = whole;
        bad[0] = 'X';
        SharingTrace dst;
        EXPECT_FALSE(loadBytes(dst, bad));
    }
    // Every other version number, notably v3, is rejected — stale
    // caches regenerate instead of misparsing.
    for (std::uint32_t v : {0u, 1u, 2u, 3u, 5u, 0xffffffffu}) {
        std::string bad = whole;
        std::memcpy(bad.data() + 4, &v, sizeof(v));
        SharingTrace dst;
        EXPECT_FALSE(loadBytes(dst, bad)) << "version " << v;
    }
}

TEST(TraceFormatV4, RejectsOversizedEventCount)
{
    const std::string whole = serialized(sampleTrace());
    // Huge count with stale payloadBytes: inconsistent header.
    {
        std::string bad = whole;
        const std::uint64_t huge = std::uint64_t(1) << 62;
        std::memcpy(bad.data() + 16, &huge, sizeof(huge));
        SharingTrace dst;
        EXPECT_FALSE(loadBytes(dst, bad));
    }
    // Consistent huge count + payloadBytes: must be bounded by the
    // actual remaining bytes before any allocation happens.
    {
        std::string bad = whole;
        const std::uint64_t count = std::uint64_t(1) << 32;
        const std::uint64_t payload =
            trace::expectedPayloadBytes(count, 6);
        ASSERT_NE(payload, 0u);
        std::memcpy(bad.data() + 16, &count, sizeof(count));
        std::memcpy(bad.data() + 24, &payload, sizeof(payload));
        SharingTrace dst;
        EXPECT_FALSE(loadBytes(dst, bad));
    }
}

TEST(TraceFormatV4, RejectsBadNodeCounts)
{
    const std::string whole = serialized(sampleTrace());
    for (std::uint32_t nodes : {0u, 65u, 1000u}) {
        std::string bad = whole;
        std::memcpy(bad.data() + 8, &nodes, sizeof(nodes));
        SharingTrace dst = sentinelTrace();
        EXPECT_FALSE(loadBytes(dst, bad)) << "nNodes " << nodes;
        expectUnchangedSentinel(dst);
    }
}

TEST(TraceFormatV4, SaveRejectsUnrepresentableNodeCounts)
{
    std::stringstream ss;
    EXPECT_FALSE(SharingTrace("x", 0).save(ss));
    EXPECT_FALSE(SharingTrace("x", 65).save(ss));
    EXPECT_TRUE(SharingTrace("x", 64).save(ss));
}

TEST(TraceFormatV4, MappedLoadMatchesStreamLoad)
{
    SharingTrace tr = sampleTrace();
    const std::string path =
        ::testing::TempDir() + "/ccp_trace_mmap_eq.trace";
    ASSERT_TRUE(tr.saveFile(path));

    SharingTrace via_stream, via_map;
    ASSERT_TRUE(via_stream.loadFileStream(path));
    ASSERT_TRUE(via_map.loadFileMapped(path));
    std::remove(path.c_str());

    EXPECT_EQ(via_map.name(), via_stream.name());
    EXPECT_EQ(via_map.nNodes(), via_stream.nNodes());
    EXPECT_EQ(via_map.meta().totalOps, via_stream.meta().totalOps);
    EXPECT_EQ(via_map.meta().invalidationsSent,
              via_stream.meta().invalidationsSent);
    ASSERT_EQ(via_map.events().size(), via_stream.events().size());
    for (std::size_t i = 0; i < via_map.events().size(); ++i) {
        const auto &a = via_map.events()[i];
        const auto &b = via_stream.events()[i];
        EXPECT_EQ(a.pid, b.pid);
        EXPECT_EQ(a.dir, b.dir);
        EXPECT_EQ(a.pc, b.pc);
        EXPECT_EQ(a.block, b.block);
        EXPECT_EQ(a.invalidated.raw(), b.invalidated.raw());
        EXPECT_EQ(a.readers.raw(), b.readers.raw());
        EXPECT_EQ(a.prevWriterPc, b.prevWriterPc);
        EXPECT_EQ(a.prevWriterPid, b.prevWriterPid);
        EXPECT_EQ(a.hasPrevWriter, b.hasPrevWriter);
        EXPECT_EQ(a.prevEvent, b.prevEvent);
    }
}

TEST(TraceFormatV4, MappedLoadRejectsCorruptFiles)
{
    const std::string whole = serialized(sampleTrace());
    const std::string path =
        ::testing::TempDir() + "/ccp_trace_mmap_bad.trace";

    auto write_file = [&](const std::string &bytes) {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        os.write(bytes.data(),
                 static_cast<std::streamsize>(bytes.size()));
    };

    // Flipped byte, truncation, and trailing garbage all rejected.
    std::string flipped = whole;
    flipped[100] = static_cast<char>(flipped[100] ^ 0x01);
    for (const std::string &bytes :
         {flipped, whole.substr(0, whole.size() / 2),
          whole + "junk"}) {
        write_file(bytes);
        SharingTrace dst = sentinelTrace();
        EXPECT_FALSE(dst.loadFileMapped(path));
        expectUnchangedSentinel(dst);
    }
    write_file(whole);
    SharingTrace ok;
    EXPECT_TRUE(ok.loadFileMapped(path));
    EXPECT_EQ(ok.events().size(), 3u);
    std::remove(path.c_str());
}

TEST(TraceFormatV4, LoadFileUsesMappedPathTransparently)
{
    SharingTrace tr = sampleTrace();
    const std::string path =
        ::testing::TempDir() + "/ccp_trace_loadfile.trace";
    ASSERT_TRUE(tr.saveFile(path));
    SharingTrace back;
    ASSERT_TRUE(back.loadFile(path));
    EXPECT_EQ(back.name(), "sample");
    EXPECT_EQ(back.events().size(), 3u);
    std::remove(path.c_str());
}

TEST(TraceFormatV4, EmptyTraceRoundTripsWithChecksum)
{
    SharingTrace tr("empty", 4);
    std::stringstream ss;
    ASSERT_TRUE(tr.save(ss));
    SharingTrace back;
    ASSERT_TRUE(back.load(ss));
    EXPECT_EQ(back.name(), "empty");
    EXPECT_EQ(back.nNodes(), 4u);
    EXPECT_TRUE(back.events().empty());
}

} // namespace
