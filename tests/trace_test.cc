/**
 * @file
 * Tests for SharingTrace: statistics and binary round-tripping.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "trace/trace.hh"

namespace {

using namespace ccp;
using trace::CoherenceEvent;
using trace::SharingTrace;

CoherenceEvent
makeEvent(NodeId pid, Pc pc, Addr block, std::uint64_t readers_raw)
{
    CoherenceEvent ev;
    ev.pid = pid;
    ev.pc = pc;
    ev.dir = pid;
    ev.block = block;
    ev.readers = SharingBitmap(readers_raw);
    return ev;
}

TEST(SharingTrace, EmptyTrace)
{
    SharingTrace tr("x", 16);
    EXPECT_EQ(tr.storeMisses(), 0u);
    EXPECT_EQ(tr.decisions(), 0u);
    EXPECT_EQ(tr.sharingEvents(), 0u);
    EXPECT_EQ(tr.prevalence(), 0.0);
}

TEST(SharingTrace, AppendReturnsSequence)
{
    SharingTrace tr("x", 16);
    EXPECT_EQ(tr.append(makeEvent(0, 0x400, 1, 0)), 0u);
    EXPECT_EQ(tr.append(makeEvent(1, 0x404, 2, 0)), 1u);
    EXPECT_EQ(tr.storeMisses(), 2u);
}

TEST(SharingTrace, DecisionsAreNodesTimesEvents)
{
    SharingTrace tr("x", 16);
    for (int i = 0; i < 5; ++i)
        tr.append(makeEvent(0, 0x400, i, 0));
    EXPECT_EQ(tr.decisions(), 80u); // Table 6: 16 x store misses
}

TEST(SharingTrace, PrevalenceMatchesTableSixArithmetic)
{
    SharingTrace tr("x", 16);
    tr.append(makeEvent(0, 0x400, 1, 0b0110)); // 2 readers
    tr.append(makeEvent(1, 0x404, 2, 0b0001)); // 1 reader
    tr.append(makeEvent(2, 0x408, 3, 0));      // none
    EXPECT_EQ(tr.sharingEvents(), 3u);
    EXPECT_DOUBLE_EQ(tr.prevalence(), 3.0 / 48.0);
}

TEST(SharingTrace, StreamRoundTrip)
{
    SharingTrace tr("bench", 16);
    tr.meta().maxStaticStoresPerNode = 12;
    tr.meta().maxPredictedStoresPerNode = 7;
    tr.meta().blocksTouched = 99;
    tr.meta().totalOps = 12345;

    CoherenceEvent ev = makeEvent(3, 0x440, 77, 0b1010);
    ev.invalidated = SharingBitmap(0b0100);
    ev.prevWriterPid = 2;
    ev.prevWriterPc = 0x43c;
    ev.hasPrevWriter = true;
    ev.prevEvent = 0;
    tr.append(makeEvent(2, 0x43c, 77, 0b0100));
    tr.append(ev);

    std::stringstream ss;
    ASSERT_TRUE(tr.save(ss));

    SharingTrace back;
    ASSERT_TRUE(back.load(ss));
    EXPECT_EQ(back.name(), "bench");
    EXPECT_EQ(back.nNodes(), 16u);
    EXPECT_EQ(back.meta().maxStaticStoresPerNode, 12u);
    EXPECT_EQ(back.meta().maxPredictedStoresPerNode, 7u);
    EXPECT_EQ(back.meta().blocksTouched, 99u);
    EXPECT_EQ(back.meta().totalOps, 12345u);
    ASSERT_EQ(back.events().size(), 2u);

    const auto &e = back.events()[1];
    EXPECT_EQ(e.pid, 3u);
    EXPECT_EQ(e.pc, 0x440u);
    EXPECT_EQ(e.block, 77u);
    EXPECT_EQ(e.readers.raw(), 0b1010u);
    EXPECT_EQ(e.invalidated.raw(), 0b0100u);
    EXPECT_TRUE(e.hasPrevWriter);
    EXPECT_EQ(e.prevWriterPid, 2u);
    EXPECT_EQ(e.prevWriterPc, 0x43cu);
    EXPECT_EQ(e.prevEvent, 0u);
}

TEST(SharingTrace, LoadRejectsGarbage)
{
    std::stringstream ss("this is not a trace file");
    SharingTrace tr;
    EXPECT_FALSE(tr.load(ss));
}

TEST(SharingTrace, LoadRejectsTruncation)
{
    SharingTrace tr("bench", 16);
    tr.append(makeEvent(0, 0x400, 1, 0));
    std::stringstream ss;
    ASSERT_TRUE(tr.save(ss));
    std::string whole = ss.str();
    std::stringstream cut(whole.substr(0, whole.size() / 2));
    SharingTrace back;
    EXPECT_FALSE(back.load(cut));
}

TEST(SharingTrace, FileRoundTrip)
{
    SharingTrace tr("filetest", 8);
    tr.append(makeEvent(1, 0x400, 5, 0b11));

    std::string path = ::testing::TempDir() + "/ccp_trace_test.bin";
    ASSERT_TRUE(tr.saveFile(path));
    SharingTrace back;
    ASSERT_TRUE(back.loadFile(path));
    EXPECT_EQ(back.name(), "filetest");
    EXPECT_EQ(back.nNodes(), 8u);
    ASSERT_EQ(back.events().size(), 1u);
    EXPECT_EQ(back.events()[0].readers.raw(), 0b11u);
    std::remove(path.c_str());
}

TEST(SharingTrace, LoadMissingFileFails)
{
    SharingTrace tr;
    EXPECT_FALSE(tr.loadFile("/nonexistent/path/trace.bin"));
}

} // namespace
