/**
 * @file
 * Tests for the set-associative cache and the two-level NodeCache.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"

namespace {

using namespace ccp;
using mem::CacheGeometry;
using mem::CacheLine;
using mem::CacheState;
using mem::NodeCache;
using mem::SetAssocCache;

/** A tiny 4-set, 2-way cache (512 bytes) for precise eviction tests. */
constexpr CacheGeometry tiny{512, 2};

TEST(SetAssocCache, GeometryDerivation)
{
    SetAssocCache c(tiny);
    EXPECT_EQ(c.geometry().lines(), 8u);
    EXPECT_EQ(c.geometry().sets(), 4u);
}

TEST(SetAssocCache, MissThenHit)
{
    SetAssocCache c(tiny);
    EXPECT_EQ(c.find(5), nullptr);
    c.insert(5, CacheState::Shared, 1);
    ASSERT_NE(c.find(5), nullptr);
    EXPECT_EQ(c.find(5)->state, CacheState::Shared);
    EXPECT_EQ(c.find(5)->version, 1u);
}

TEST(SetAssocCache, InsertWithoutConflictEvictsNothing)
{
    SetAssocCache c(tiny);
    EXPECT_FALSE(c.insert(0, CacheState::Shared, 1).has_value());
    EXPECT_FALSE(c.insert(4, CacheState::Shared, 1).has_value());
    EXPECT_EQ(c.validLines(), 2u);
}

TEST(SetAssocCache, LruEviction)
{
    SetAssocCache c(tiny);
    // Blocks 0, 4, 8 all map to set 0 of a 4-set cache (2 ways).
    c.insert(0, CacheState::Shared, 1);
    c.insert(4, CacheState::Shared, 1);
    auto victim = c.insert(8, CacheState::Shared, 1);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->block, 0u); // 0 was least recently used
    EXPECT_EQ(c.find(0), nullptr);
    EXPECT_NE(c.find(4), nullptr);
    EXPECT_NE(c.find(8), nullptr);
}

TEST(SetAssocCache, TouchProtectsFromEviction)
{
    SetAssocCache c(tiny);
    c.insert(0, CacheState::Shared, 1);
    c.insert(4, CacheState::Shared, 1);
    c.touch(0); // now 4 is LRU
    auto victim = c.insert(8, CacheState::Shared, 1);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->block, 4u);
}

TEST(SetAssocCache, ReinsertUpdatesInPlace)
{
    SetAssocCache c(tiny);
    c.insert(0, CacheState::Shared, 1);
    auto victim = c.insert(0, CacheState::Modified, 2);
    EXPECT_FALSE(victim.has_value());
    EXPECT_EQ(c.find(0)->state, CacheState::Modified);
    EXPECT_EQ(c.find(0)->version, 2u);
    EXPECT_EQ(c.validLines(), 1u);
}

TEST(SetAssocCache, InvalidateReturnsOldLine)
{
    SetAssocCache c(tiny);
    c.insert(3, CacheState::Modified, 7);
    auto old = c.invalidate(3);
    ASSERT_TRUE(old.has_value());
    EXPECT_EQ(old->state, CacheState::Modified);
    EXPECT_EQ(old->version, 7u);
    EXPECT_EQ(c.find(3), nullptr);
    EXPECT_FALSE(c.invalidate(3).has_value());
}

TEST(SetAssocCache, InvalidWaysReusedBeforeEviction)
{
    SetAssocCache c(tiny);
    c.insert(0, CacheState::Shared, 1);
    c.insert(4, CacheState::Shared, 1);
    c.invalidate(0);
    auto victim = c.insert(8, CacheState::Shared, 1);
    EXPECT_FALSE(victim.has_value());
    EXPECT_NE(c.find(4), nullptr);
}

TEST(SetAssocCache, FlushClearsEverything)
{
    SetAssocCache c(tiny);
    c.insert(1, CacheState::Shared, 1);
    c.insert(2, CacheState::Modified, 1);
    c.flush();
    EXPECT_EQ(c.validLines(), 0u);
    EXPECT_EQ(c.find(1), nullptr);
}

TEST(SetAssocCache, DirectMappedConflicts)
{
    SetAssocCache c({256, 1}); // 4 sets, 1 way
    c.insert(0, CacheState::Shared, 1);
    auto victim = c.insert(4, CacheState::Shared, 1);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->block, 0u);
}

// ---------------------------------------------------------------------
// NodeCache (two-level, inclusive).

/** Small two-level hierarchy: 512B DM L1, 2KB 2-way L2. */
NodeCache
smallNode()
{
    return NodeCache({512, 1}, {2048, 2});
}

TEST(NodeCache, FillMakesStateVisible)
{
    NodeCache nc = smallNode();
    EXPECT_EQ(nc.state(10), CacheState::Invalid);
    nc.fill(10, CacheState::Shared, 3);
    EXPECT_EQ(nc.state(10), CacheState::Shared);
    EXPECT_EQ(nc.version(10), 3u);
}

TEST(NodeCache, AccessCountsL1AndL2Hits)
{
    NodeCache nc = smallNode();
    nc.fill(10, CacheState::Shared, 1);
    EXPECT_TRUE(nc.access(10)); // L1 hit right after fill
    EXPECT_EQ(nc.stats().l1Hits, 1u);

    // Conflict 10 out of the (8-line) L1 but not the L2: blocks 10
    // and 18 share an L1 set; L2 has 16 sets so no L2 conflict.
    nc.fill(18, CacheState::Shared, 1);
    EXPECT_FALSE(nc.access(10)); // L1 miss, L2 hit
    EXPECT_EQ(nc.stats().l2Hits, 1u);
    EXPECT_TRUE(nc.access(10)); // refilled into L1
}

TEST(NodeCache, UpgradeToModified)
{
    NodeCache nc = smallNode();
    nc.fill(5, CacheState::Shared, 1);
    nc.upgrade(5, 2);
    EXPECT_EQ(nc.state(5), CacheState::Modified);
    EXPECT_EQ(nc.version(5), 2u);
    EXPECT_EQ(nc.stats().upgrades, 1u);
}

TEST(NodeCache, UpgradeNonSharedDies)
{
    NodeCache nc = smallNode();
    EXPECT_DEATH(nc.upgrade(5, 1), "non-shared");
    nc.fill(5, CacheState::Modified, 1);
    EXPECT_DEATH(nc.upgrade(5, 2), "non-shared");
}

TEST(NodeCache, DowngradeKeepsData)
{
    NodeCache nc = smallNode();
    nc.fill(5, CacheState::Modified, 4);
    nc.downgrade(5);
    EXPECT_EQ(nc.state(5), CacheState::Shared);
    EXPECT_EQ(nc.version(5), 4u);
}

TEST(NodeCache, InvalidateReportsPriorLine)
{
    NodeCache nc = smallNode();
    nc.fill(5, CacheState::Modified, 1);
    auto old = nc.invalidate(5);
    ASSERT_TRUE(old.has_value());
    EXPECT_EQ(old->state, CacheState::Modified);
    EXPECT_EQ(nc.state(5), CacheState::Invalid);
    EXPECT_FALSE(nc.invalidate(5).has_value());
}

TEST(NodeCache, ForwardedFillTracksAccessBit)
{
    NodeCache nc = smallNode();
    nc.fill(5, CacheState::Shared, 1, /*forwarded=*/true);
    // The first touch consumes the forwarded bit exactly once.
    EXPECT_TRUE(nc.consumeForwardedTouch(5));
    EXPECT_FALSE(nc.consumeForwardedTouch(5));
    // A demand fill never reports a forwarded touch.
    nc.fill(6, CacheState::Shared, 1);
    EXPECT_FALSE(nc.consumeForwardedTouch(6));
    // Invalidation reports the flags.
    nc.fill(7, CacheState::Shared, 1, /*forwarded=*/true);
    auto line = nc.invalidate(7);
    ASSERT_TRUE(line.has_value());
    EXPECT_TRUE(line->forwarded);
    EXPECT_FALSE(line->accessed);
}

TEST(NodeCache, UpgradeClearsTheForwardedFlag)
{
    NodeCache nc = smallNode();
    nc.fill(5, CacheState::Shared, 1, /*forwarded=*/true);
    nc.upgrade(5, 2);
    auto line = nc.invalidate(5);
    ASSERT_TRUE(line.has_value());
    EXPECT_FALSE(line->forwarded);
}

TEST(NodeCache, L2EvictionBackInvalidatesL1)
{
    // L2: 2KB 2-way = 16 sets.  Blocks 0, 16, 32 share L2 set 0.
    NodeCache nc = smallNode();
    nc.fill(0, CacheState::Modified, 1);
    nc.fill(16, CacheState::Shared, 1);
    auto victim = nc.fill(32, CacheState::Shared, 1);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->block, 0u);
    EXPECT_EQ(victim->state, CacheState::Modified);
    // Inclusion: the block must be gone at both levels.
    EXPECT_EQ(nc.state(0), CacheState::Invalid);
    EXPECT_FALSE(nc.access(0));
    EXPECT_EQ(nc.stats().l2Evictions, 1u);
    EXPECT_EQ(nc.stats().writebacks, 1u);
}

TEST(NodeCache, PaperGeometryDefaults)
{
    NodeCache nc; // 16KB DM L1, 512KB 4-way L2
    // Fill more than the L1 (256 lines) but less than the L2.
    for (Addr b = 0; b < 1024; ++b)
        nc.fill(b, CacheState::Shared, 1);
    // Everything still resides in the L2.
    for (Addr b = 0; b < 1024; ++b)
        EXPECT_NE(nc.state(b), CacheState::Invalid) << b;
    EXPECT_EQ(nc.stats().l2Evictions, 0u);
}

} // namespace
