/**
 * @file
 * Tests for the deterministic xoshiro256** generator.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/rng.hh"

namespace {

using ccp::Rng;

TEST(Rng, DeterministicForSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a() == b();
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowOneAlwaysZero)
{
    Rng rng(9);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform)
{
    Rng rng(11);
    constexpr int buckets = 8, draws = 80000;
    std::vector<int> counts(buckets, 0);
    for (int i = 0; i < draws; ++i)
        ++counts[rng.below(buckets)];
    for (int c : counts) {
        EXPECT_GT(c, draws / buckets * 0.9);
        EXPECT_LT(c, draws / buckets * 1.1);
    }
}

TEST(Rng, RangeInclusive)
{
    Rng rng(13);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(17);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(19);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(21);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, GeometricRespectsCap)
{
    Rng rng(23);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LE(rng.geometric(0.9, 5), 5u);
}

TEST(Rng, ShuffleIsAPermutation)
{
    Rng rng(25);
    std::vector<int> v(100);
    std::iota(v.begin(), v.end(), 0);
    auto orig = v;
    rng.shuffle(v);
    EXPECT_NE(v, orig); // astronomically unlikely to be identity
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

TEST(Rng, ForkedStreamsAreIndependentAndDeterministic)
{
    Rng base(31);
    Rng f1 = base.fork(1);
    Rng f2 = base.fork(2);
    Rng f1_again = Rng(31).fork(1);

    int same12 = 0;
    for (int i = 0; i < 100; ++i) {
        auto v1 = f1();
        EXPECT_EQ(v1, f1_again());
        same12 += v1 == f2();
    }
    EXPECT_LT(same12, 3);
}

TEST(Rng, BelowZeroDies)
{
    Rng rng(1);
    EXPECT_DEATH(rng.below(0), "below");
}

} // namespace
