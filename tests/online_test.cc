/**
 * @file
 * Tests for the closed-loop online forwarder: forwarded copies turn
 * remote read misses into hits, the writer yields permission, wasted
 * forwards and pollution are accounted, and the access-bit mechanism
 * keeps feedback truthful despite speculative sharer pollution.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "forward/online.hh"
#include "sweep/name.hh"
#include "workloads/registry.hh"

namespace {

using namespace ccp;
using forward::OnlineForwarder;
using mem::CoherenceController;
using mem::MachineConfig;
using trace::SharingTrace;

MachineConfig
smallConfig()
{
    MachineConfig cfg;
    cfg.nNodes = 4;
    cfg.l1 = {512, 1};
    cfg.l2 = {4096, 2};
    cfg.torusWidth = 2;
    return cfg;
}

predict::SchemeSpec
lastAddr()
{
    return sweep::parseScheme("last(add8)1")->scheme;
}

struct Rig
{
    Rig() : trace("online", 4), ctl(smallConfig(), &trace),
            fwd(lastAddr(), 4)
    {
        fwd.attach(ctl);
    }

    SharingTrace trace;
    CoherenceController ctl;
    OnlineForwarder fwd;
};

TEST(Online, StablePatternConvertsMissesToForwardHits)
{
    Rig rig;
    Addr a = blockBase(10);
    // Train: writer 0 produces, reader 2 consumes, repeatedly.
    for (int i = 0; i < 10; ++i) {
        rig.ctl.write(0, a, 0x400);
        rig.ctl.read(2, a);
        rig.ctl.checkInvariants();
    }
    // After the second write the predictor knows {2}: subsequent
    // reads by 2 hit on forwarded copies.
    EXPECT_GE(rig.ctl.stats().forwardsSent, 8u);
    EXPECT_GE(rig.ctl.stats().forwardHits, 8u);
    EXPECT_EQ(rig.ctl.stats().wastedForwards, 0u);
    // Reader 2's misses stop after warmup.
    EXPECT_LE(rig.ctl.cacheStats(2).misses, 2u);
}

TEST(Online, WriterYieldsPermissionAfterForwarding)
{
    Rig rig;
    Addr a = blockBase(10);
    rig.ctl.write(0, a, 0x400);
    rig.ctl.read(2, a);
    rig.ctl.write(0, a, 0x400); // trains entry; forwards to {2}
    // The writer's copy is now Shared (it yielded permission), so
    // its next store is a write fault, not a silent hit.
    auto faults_before = rig.ctl.stats().writeFaults;
    rig.ctl.write(0, a, 0x400);
    EXPECT_GT(rig.ctl.stats().writeFaults, faults_before);
    rig.ctl.checkInvariants();
}

TEST(Online, WrongPredictionsAreCountedWasted)
{
    Rig rig;
    Addr a = blockBase(10);
    rig.ctl.write(0, a, 0x400);
    rig.ctl.read(2, a); // version 1 read by 2
    // Retrain toward {2}, but from now on only node 3 reads.
    for (int i = 0; i < 5; ++i) {
        rig.ctl.write(0, a, 0x400); // forwards to stale readers
        rig.ctl.read(3, a);
        rig.ctl.checkInvariants();
    }
    EXPECT_GT(rig.ctl.stats().wastedForwards, 0u);
}

TEST(Online, AccessBitsKeepFeedbackTruthful)
{
    Rig rig;
    Addr a = blockBase(10);
    rig.ctl.write(0, a, 0x400);
    rig.ctl.read(2, a);
    rig.ctl.write(0, a, 0x400); // forwards to {2}
    // 2 never touches the forwarded copy; 3 demand-reads instead.
    rig.ctl.read(3, a);
    rig.ctl.write(0, a, 0x400);
    // The feedback of that last event must contain the true reader 3
    // but NOT the polluted sharer 2.
    const auto &ev = rig.trace.events().back();
    EXPECT_TRUE(ev.invalidated.test(3));
    EXPECT_FALSE(ev.invalidated.test(2));
}

TEST(Online, ForwardedTouchMakesTheReaderATrueReader)
{
    Rig rig;
    Addr a = blockBase(10);
    rig.ctl.write(0, a, 0x400);
    rig.ctl.read(2, a);
    rig.ctl.write(0, a, 0x400); // forwards to {2}
    rig.ctl.read(2, a);         // hits the forwarded copy
    rig.ctl.write(0, a, 0x400);
    // 2 read version 2 through the forward: it must appear both in
    // the outcome of event 2 and in the feedback of event 3.
    EXPECT_TRUE(rig.trace.events()[1].readers.test(2));
    EXPECT_TRUE(rig.trace.events()[2].invalidated.test(2));
}

TEST(Online, WholeWorkloadRunsKeepInvariants)
{
    // A full kernel with forwarding enabled: the protocol must stay
    // coherent and the trace well-formed.
    workloads::WorkloadParams params;
    params.scale = 0.05;
    mem::MachineConfig cfg; // 16 nodes, paper caches
    sim::Machine machine(cfg, "mp3d", 123);
    OnlineForwarder fwd(sweep::parseScheme("union(pid+add8)2")->scheme,
                        16);
    fwd.attach(machine.controller());
    auto wl = workloads::makeWorkload("mp3d", params);
    wl->run(machine);
    machine.controller().checkInvariants();
    EXPECT_GT(machine.controller().stats().forwardsSent, 100u);
    EXPECT_GT(machine.controller().stats().forwardHits, 5u);
    auto tr = machine.finish();
    for (const auto &ev : tr.events())
        ASSERT_FALSE(ev.invalidated.test(ev.pid));
}

TEST(Online, ForwardingReducesLatencyOnFriendlyPatterns)
{
    // em3d's static producer-consumer pattern is the paper's ideal
    // use case: online forwarding must cut modelled latency.
    workloads::WorkloadParams params;
    params.scale = 0.05;
    mem::MachineConfig cfg;

    sim::Machine plain(cfg, "em3d", 9);
    workloads::makeWorkload("em3d", params)->run(plain);
    Cycles base = plain.controller().stats().latency;

    sim::Machine assisted(cfg, "em3d", 9);
    OnlineForwarder fwd(sweep::parseScheme("last(add12)1")->scheme, 16);
    fwd.attach(assisted.controller());
    workloads::makeWorkload("em3d", params)->run(assisted);
    Cycles with_fwd = assisted.controller().stats().latency;

    EXPECT_LT(with_fwd, base);
}

} // namespace
