/**
 * @file
 * Tests for the one-shot child-process runner (common/subprocess.hh):
 * exit classification (clean / drained / failed / signaled), the
 * deadline with SIGTERM→SIGKILL escalation, the liveness probe that
 * re-arms it, stderr tail capture and truncation, environment
 * overrides, stdout redirection, and structured spawn errors.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>

#include <signal.h>

#include "common/subprocess.hh"

namespace {

using namespace ccp;

SubprocessResult
runShell(const std::string &script,
         const std::function<void(SubprocessSpec &)> &tweak = {})
{
    SubprocessSpec spec;
    spec.argv = {"/bin/sh", "-c", script};
    if (tweak)
        tweak(spec);
    return runSubprocess(spec);
}

TEST(SubprocessTest, CleanExitIsClean)
{
    const auto res = runShell("exit 0");
    EXPECT_EQ(res.status, SubprocessStatus::Clean);
    EXPECT_EQ(res.exitCode, 0);
    EXPECT_TRUE(res.stderrTail.empty());
}

TEST(SubprocessTest, NonzeroExitIsFailedWithTheCode)
{
    const auto res = runShell("exit 7");
    EXPECT_EQ(res.status, SubprocessStatus::Failed);
    EXPECT_EQ(res.exitCode, 7);
}

TEST(SubprocessTest, ExitSeventyFiveIsTheDrainConvention)
{
    const auto res = runShell("exit 75");
    EXPECT_EQ(res.status, SubprocessStatus::Drained);
    EXPECT_EQ(res.exitCode, 75);
}

TEST(SubprocessTest, ForeignSignalIsSignaledNotTimeout)
{
    const auto res = runShell("kill -USR2 $$");
    EXPECT_EQ(res.status, SubprocessStatus::Signaled);
    EXPECT_EQ(res.signalNo, SIGUSR2);
}

TEST(SubprocessTest, DeadlineTermsACooperativeChild)
{
    const auto res = runShell("sleep 30", [](SubprocessSpec &s) {
        s.deadlineSec = 0.3;
        s.termGraceSec = 5.0;
    });
    EXPECT_EQ(res.status, SubprocessStatus::Timeout);
    EXPECT_EQ(res.signalNo, SIGTERM);
    EXPECT_LT(res.wallSec, 10.0);
}

TEST(SubprocessTest, DeadlineEscalatesToKillWhenTermIsIgnored)
{
    // The child shields itself from SIGTERM; only the SIGKILL
    // escalation after termGraceSec can end it.
    const auto res =
        runShell("trap '' TERM; sleep 30", [](SubprocessSpec &s) {
            s.deadlineSec = 0.3;
            s.termGraceSec = 0.3;
        });
    EXPECT_EQ(res.status, SubprocessStatus::Timeout);
    EXPECT_EQ(res.signalNo, SIGKILL);
    EXPECT_LT(res.wallSec, 10.0);
}

TEST(SubprocessTest, ProgressProbeReArmsTheDeadline)
{
    // The child outlives the 0.4 s deadline several times over, but a
    // probe that keeps reporting progress must keep it alive.
    const auto res = runShell("sleep 1", [](SubprocessSpec &s) {
        s.deadlineSec = 0.4;
        s.progressProbe = [] { return true; };
    });
    EXPECT_EQ(res.status, SubprocessStatus::Clean);
    EXPECT_GE(res.wallSec, 0.9);
}

TEST(SubprocessTest, StderrTailIsCaptured)
{
    const auto res = runShell("echo boom >&2; exit 3");
    EXPECT_EQ(res.status, SubprocessStatus::Failed);
    EXPECT_EQ(res.stderrTail, "boom\n");
}

TEST(SubprocessTest, StderrTailKeepsOnlyTheLastBytes)
{
    const auto res = runShell(
        "i=0; while [ $i -lt 200 ]; do echo line$i >&2; "
        "i=$((i+1)); done; echo LAST >&2; exit 1",
        [](SubprocessSpec &s) { s.stderrTailMax = 64; });
    EXPECT_EQ(res.status, SubprocessStatus::Failed);
    EXPECT_LE(res.stderrTail.size(), 64u);
    EXPECT_NE(res.stderrTail.find("LAST"), std::string::npos);
    EXPECT_EQ(res.stderrTail.find("line0\n"), std::string::npos);
}

TEST(SubprocessTest, EnvSetAndUnsetShapeTheChildEnvironment)
{
    ::setenv("CCP_SUBPROC_DROP", "present", 1);
    const auto res = runShell(
        "printf '%s|%s' \"$CCP_SUBPROC_ADD\" \"$CCP_SUBPROC_DROP\" "
        ">&2; exit 1",
        [](SubprocessSpec &s) {
            s.envSet.push_back({"CCP_SUBPROC_ADD", "added"});
            s.envUnset.push_back("CCP_SUBPROC_DROP");
        });
    ::unsetenv("CCP_SUBPROC_DROP");
    EXPECT_EQ(res.stderrTail, "added|");
}

TEST(SubprocessTest, StdoutRedirectionWritesTheFile)
{
    const std::string path =
        ::testing::TempDir() + "subproc_stdout.txt";
    std::remove(path.c_str());
    const auto res =
        runShell("echo to-file", [&](SubprocessSpec &s) {
            s.stdoutPath = path;
        });
    EXPECT_EQ(res.status, SubprocessStatus::Clean);
    std::ifstream in(path);
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, "to-file");
    std::remove(path.c_str());
}

TEST(SubprocessTest, MissingBinaryIsAStructuredSpawnError)
{
    SubprocessSpec spec;
    spec.argv = {"/nonexistent/ccp-no-such-binary"};
    const auto res = runSubprocess(spec);
    EXPECT_EQ(res.status, SubprocessStatus::SpawnError);
    EXPECT_FALSE(res.spawnError.empty());
}

} // namespace
