/**
 * @file
 * Tests for the sticky-spatial predictor (footnote-2 extension).
 */

#include <gtest/gtest.h>

#include <unordered_map>

#include "common/rng.hh"
#include "predict/spatial.hh"

namespace {

using namespace ccp;
using predict::evaluateStickySpatial;
using predict::StickySpatialParams;
using predict::StickySpatialPredictor;
using trace::CoherenceEvent;
using trace::SharingTrace;

StickySpatialParams
params(unsigned addr_bits = 8, unsigned reach = 1, bool sticky = true)
{
    StickySpatialParams p;
    p.addrBits = addr_bits;
    p.spatialReach = reach;
    p.sticky = sticky;
    return p;
}

TEST(StickySpatial, ColdTablePredictsNothing)
{
    StickySpatialPredictor pred(params(), 16);
    EXPECT_TRUE(pred.predict(42).empty());
}

TEST(StickySpatial, LearnsOwnEntry)
{
    StickySpatialPredictor pred(params(), 16);
    pred.update(10, SharingBitmap(0b0110));
    EXPECT_EQ(pred.predict(10).raw(), 0b0110u);
}

TEST(StickySpatial, NeighboursContributeSpatially)
{
    StickySpatialPredictor pred(params(), 16);
    pred.update(10, SharingBitmap(0b0001));
    pred.update(11, SharingBitmap(0b0010));
    pred.update(9, SharingBitmap(0b0100));
    // Block 10's prediction unions its own and both neighbours'.
    EXPECT_EQ(pred.predict(10).raw(), 0b0111u);
    // Block 12 only sees 11 (reach 1).
    EXPECT_EQ(pred.predict(12).raw(), 0b0010u);
}

TEST(StickySpatial, ReachTwoReachesFurther)
{
    StickySpatialPredictor pred(params(8, 2), 16);
    pred.update(10, SharingBitmap(0b0001));
    EXPECT_EQ(pred.predict(12).raw(), 0b0001u);
    EXPECT_TRUE(pred.predict(13).empty());
}

TEST(StickySpatial, StickyBitsAccumulate)
{
    StickySpatialPredictor pred(params(), 16);
    pred.update(10, SharingBitmap(0b0001));
    pred.update(10, SharingBitmap(0b0010));
    EXPECT_EQ(pred.predict(10).raw(), 0b0011u);
}

TEST(StickySpatial, NonStickyReplacesInstead)
{
    StickySpatialPredictor pred(params(8, 1, false), 16);
    pred.update(10, SharingBitmap(0b0001));
    pred.update(10, SharingBitmap(0b0010));
    EXPECT_EQ(pred.predict(10).raw(), 0b0010u);
}

TEST(StickySpatial, TwoEmptyObservationsClearAStickyEntry)
{
    StickySpatialPredictor pred(params(), 16);
    pred.update(10, SharingBitmap(0b0001));
    pred.update(10, SharingBitmap());
    EXPECT_EQ(pred.predict(10).raw(), 0b0001u); // one miss: still set
    pred.update(10, SharingBitmap());
    EXPECT_TRUE(pred.predict(10).empty()); // second miss clears
}

TEST(StickySpatial, AliasingWrapsTheTable)
{
    StickySpatialPredictor pred(params(4), 16);
    pred.update(0, SharingBitmap(0b1));
    EXPECT_EQ(pred.predict(16).raw(), 0b1u); // 16 aliases 0 at 4 bits
}

TEST(StickySpatial, SizeBitsAccounting)
{
    StickySpatialPredictor pred(params(8), 16);
    EXPECT_EQ(pred.sizeBits(), 256u * 18u);
}

TEST(StickySpatial, ClearResets)
{
    StickySpatialPredictor pred(params(), 16);
    pred.update(10, SharingBitmap(0b1));
    pred.clear();
    EXPECT_TRUE(pred.predict(10).empty());
}

TEST(StickySpatial, SpatialUnionLiftsSensitivityOnRegionalSharing)
{
    // A region of consecutive blocks with one common remote reader,
    // streamed block by block: each block is written twice (training
    // its own entry on the second write) before the walk advances.
    // When a *cold* block is first written, its own entry is empty
    // but its already-trained neighbour carries the regional reader —
    // only the spatial union can predict it.
    SharingTrace tr("region", 16);
    for (unsigned b = 0; b < 32; ++b) {
        CoherenceEvent first;
        first.pid = 0;
        first.pc = 0x400;
        first.dir = 0;
        first.block = 100 + b;
        first.readers = SharingBitmap(0b10);
        tr.append(first);

        CoherenceEvent second = first;
        second.invalidated = first.readers;
        second.prevWriterPid = first.pid;
        second.prevWriterPc = first.pc;
        second.hasPrevWriter = true;
        tr.append(second);
    }

    StickySpatialPredictor spatial(params(10, 1), 16);
    auto with_spatial = evaluateStickySpatial(tr, spatial);

    StickySpatialPredictor no_spatial(params(10, 0), 16);
    auto without = evaluateStickySpatial(tr, no_spatial);

    EXPECT_GT(with_spatial.sensitivity(), without.sensitivity());
    EXPECT_EQ(with_spatial.fp, 0u); // the region is homogeneous
}

TEST(StickySpatial, EvaluatorIsDeterministic)
{
    Rng rng(4);
    SharingTrace tr("r", 16);
    std::unordered_map<Addr, CoherenceEvent> last;
    for (int i = 0; i < 1000; ++i) {
        CoherenceEvent ev;
        ev.pid = static_cast<NodeId>(rng.below(16));
        ev.pc = 0x400;
        ev.dir = 0;
        ev.block = rng.below(64);
        ev.readers =
            SharingBitmap(rng() & 0xffff & ~(1ull << ev.pid));
        auto it = last.find(ev.block);
        if (it != last.end()) {
            ev.invalidated = it->second.readers;
            ev.prevWriterPid = it->second.pid;
            ev.prevWriterPc = it->second.pc;
            ev.hasPrevWriter = true;
        }
        last[ev.block] = ev;
        tr.append(ev);
    }
    StickySpatialPredictor a(params(), 16), b(params(), 16);
    EXPECT_EQ(evaluateStickySpatial(tr, a),
              evaluateStickySpatial(tr, b));
}

} // namespace
