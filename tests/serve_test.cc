/**
 * @file
 * Tests for the predictd serve layer: the SPSC ring (including a
 * threaded producer/consumer run meant for the TSan CI leg), Session
 * parity against predict::evaluateTrace (the offline oracle the
 * online path must match bit for bit), the sliding-window stats,
 * session and server snapshot round-trips — in particular that a
 * server killed mid-stream restores byte-identical predictor state at
 * ANY agent count — and the full submit/drain/poll pipeline.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "predict/evaluator.hh"
#include "serve/server.hh"
#include "serve/session.hh"
#include "serve/spsc.hh"
#include "sweep/checkpoint.hh"
#include "sweep/name.hh"
#include "trace/trace.hh"

namespace {

using namespace ccp;
using predict::UpdateMode;
using serve::PredictServer;
using serve::Prediction;
using serve::ServeOptions;
using serve::Session;
using serve::SessionConfig;
using serve::SessionStats;
using serve::SpscRing;

constexpr unsigned kNodes = 8;

/**
 * A small but honest stream: per-block writer history so
 * hasPrevWriter / prevWriter* / invalidated chain the way real traces
 * do, with readers drawn from a mixing hash.  @p salt decorrelates
 * the per-session streams.
 */
trace::SharingTrace
makeTrace(const char *name, unsigned salt, unsigned n_events = 400)
{
    trace::SharingTrace tr(name, kNodes);
    struct Last
    {
        NodeId pid;
        Pc pc;
        SharingBitmap readers;
    };
    std::unordered_map<Addr, Last> last;
    std::uint64_t x = 0x9e3779b97f4a7c15ull * (salt + 1);
    for (unsigned i = 0; i < n_events; ++i) {
        x ^= x >> 27;
        x *= 0x2545f4914f6cdd1dull;
        trace::CoherenceEvent ev;
        ev.pid = static_cast<NodeId>(x % kNodes);
        ev.pc = 0x400 + 4 * ((x >> 8) % 6);
        ev.block = (x >> 16) % 12;
        ev.dir = static_cast<NodeId>(ev.block % kNodes);
        for (unsigned b = 0; b < kNodes; ++b)
            if ((x >> (24 + b)) & 1 && b != ev.pid)
                ev.readers.set(b);
        auto it = last.find(ev.block);
        if (it != last.end()) {
            ev.hasPrevWriter = true;
            ev.prevWriterPid = it->second.pid;
            ev.prevWriterPc = it->second.pc;
            ev.invalidated = it->second.readers;
        }
        last[ev.block] = {ev.pid, ev.pc, ev.readers};
        tr.append(ev);
    }
    return tr;
}

SessionConfig
makeConfig(const char *scheme_text, std::size_t window = 4096)
{
    auto parsed = sweep::parseScheme(scheme_text);
    SessionConfig cfg;
    cfg.scheme = parsed.value().scheme; // throws on a bad literal
    cfg.mode = parsed->mode.value_or(UpdateMode::Direct);
    cfg.windowEvents = window;
    return cfg;
}

bool
sameConfusion(const predict::Confusion &a, const predict::Confusion &b)
{
    return a.tp == b.tp && a.fp == b.fp && a.tn == b.tn &&
           a.fn == b.fn;
}

// ---------------------------------------------------------------------
// SPSC ring

TEST(SpscRing, PushPopPreservesFifoOrder)
{
    SpscRing<int> ring(4);
    int v = -1;
    EXPECT_TRUE(ring.empty());
    EXPECT_FALSE(ring.pop(v));
    EXPECT_TRUE(ring.push(10));
    EXPECT_TRUE(ring.push(11));
    EXPECT_TRUE(ring.push(12));
    ASSERT_TRUE(ring.pop(v));
    EXPECT_EQ(v, 10);
    EXPECT_TRUE(ring.push(13));
    for (int want : {11, 12, 13}) {
        ASSERT_TRUE(ring.pop(v));
        EXPECT_EQ(v, want);
    }
    EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, CapacityRoundsToPowerOfTwoMinusOne)
{
    // One slot is sacrificed to distinguish full from empty.
    EXPECT_EQ(SpscRing<int>(4).capacity(), 3u);
    EXPECT_EQ(SpscRing<int>(5).capacity(), 7u);
    EXPECT_EQ(SpscRing<int>(1).capacity(), 1u);
    EXPECT_EQ(SpscRing<int>(0).capacity(), 1u);
}

TEST(SpscRing, FullRingRefusesWithoutOverwriting)
{
    SpscRing<int> ring(4); // capacity 3
    EXPECT_TRUE(ring.push(1));
    EXPECT_TRUE(ring.push(2));
    EXPECT_TRUE(ring.push(3));
    EXPECT_FALSE(ring.push(4));
    int v = -1;
    ASSERT_TRUE(ring.pop(v));
    EXPECT_EQ(v, 1);
    EXPECT_TRUE(ring.push(4));
    for (int want : {2, 3, 4}) {
        ASSERT_TRUE(ring.pop(v));
        EXPECT_EQ(v, want);
    }
}

/** The concurrency contract, sized for the TSan CI leg: one producer,
 *  one consumer, a deliberately tiny ring so both full and empty
 *  transitions are exercised constantly. */
TEST(SpscRing, ConcurrentProducerConsumerDeliversEverythingInOrder)
{
    constexpr std::uint64_t kItems = 200000;
    SpscRing<std::uint64_t> ring(8);
    std::thread producer([&ring] {
        for (std::uint64_t i = 0; i < kItems; ++i)
            while (!ring.push(i))
                std::this_thread::yield();
    });
    std::uint64_t next = 0;
    while (next < kItems) {
        std::uint64_t v = 0;
        if (!ring.pop(v)) {
            std::this_thread::yield();
            continue;
        }
        ASSERT_EQ(v, next);
        ++next;
    }
    producer.join();
    EXPECT_TRUE(ring.empty());
}

// ---------------------------------------------------------------------
// Session vs the offline oracle

TEST(Session, MatchesEvaluateTraceDirect)
{
    const auto tr = makeTrace("direct", 3);
    const SessionConfig cfg = makeConfig("inter(pid+pc4)2");

    Session session(0, cfg, kNodes);
    for (const auto &ev : tr.events())
        session.onEvent(ev);

    const predict::Confusion oracle =
        evaluateTrace(tr, cfg.scheme, UpdateMode::Direct);
    const SessionStats s = session.stats();
    EXPECT_EQ(s.events, tr.events().size());
    EXPECT_TRUE(sameConfusion(s.total, oracle));
    // Window >= stream length: the window IS the whole run.
    EXPECT_TRUE(sameConfusion(s.window, oracle));
}

TEST(Session, MatchesEvaluateTraceForwarded)
{
    const auto tr = makeTrace("fwd", 11);
    const SessionConfig cfg = makeConfig("last(pid+pc4)1[forwarded]");
    ASSERT_EQ(cfg.mode, UpdateMode::Forwarded);

    Session session(0, cfg, kNodes);
    for (const auto &ev : tr.events())
        session.onEvent(ev);

    const predict::Confusion oracle =
        evaluateTrace(tr, cfg.scheme, UpdateMode::Forwarded);
    EXPECT_TRUE(sameConfusion(session.stats().total, oracle));
}

TEST(Session, SlidingWindowCoversExactlyTheLastNEvents)
{
    const auto tr = makeTrace("window", 7);
    constexpr std::size_t kWindow = 64;
    const SessionConfig cfg = makeConfig("inter(pid+pc4)2", kWindow);

    // Oracle: replay the same online loop against the raw table and
    // keep every per-event confusion, then sum the last kWindow.
    predict::PredictorTable table = cfg.scheme.makeTable(kNodes);
    std::vector<predict::Confusion> per_event;
    for (const auto &ev : tr.events()) {
        if (ev.hasPrevWriter)
            table.update(ev.pid, ev.pc, ev.dir, ev.block,
                         ev.invalidated);
        const SharingBitmap pred =
            table.predict(ev.pid, ev.pc, ev.dir, ev.block);
        predict::Confusion c;
        c.add(pred, ev.readers, kNodes);
        per_event.push_back(c);
    }

    Session session(0, cfg, kNodes);
    for (std::size_t i = 0; i < tr.events().size(); ++i) {
        session.onEvent(tr.events()[i]);
        if (i % 97 != 0 && i + 1 != tr.events().size())
            continue;
        predict::Confusion want;
        const std::size_t n = i + 1;
        for (std::size_t j = n - std::min(n, kWindow); j < n; ++j)
            want.merge(per_event[j]);
        EXPECT_TRUE(sameConfusion(session.stats().window, want))
            << "after event " << i;
    }
}

// ---------------------------------------------------------------------
// Session snapshot encode/decode

TEST(Session, EncodeDecodeRoundTripsAndResumesIdentically)
{
    const auto tr = makeTrace("snap", 19);
    const SessionConfig cfg = makeConfig("inter(pid+pc4)2", 32);
    const std::size_t cut = tr.events().size() / 2;

    Session a(5, cfg, kNodes);
    for (std::size_t i = 0; i < cut; ++i)
        a.onEvent(tr.events()[i]);

    std::vector<char> blob;
    a.encode(blob);

    Session b(5, cfg, kNodes);
    const char *p = blob.data();
    ASSERT_TRUE(b.decode(p, blob.data() + blob.size()));
    EXPECT_EQ(p, blob.data() + blob.size());
    EXPECT_EQ(b.table().rawState(), a.table().rawState());

    // The restored session is not merely equal now — it stays equal
    // through the rest of the stream (window ring position included).
    for (std::size_t i = cut; i < tr.events().size(); ++i) {
        a.onEvent(tr.events()[i]);
        b.onEvent(tr.events()[i]);
    }
    EXPECT_EQ(b.table().rawState(), a.table().rawState());
    const SessionStats sa = a.stats(), sb = b.stats();
    EXPECT_EQ(sb.events, sa.events);
    EXPECT_TRUE(sameConfusion(sb.total, sa.total));
    EXPECT_TRUE(sameConfusion(sb.window, sa.window));
}

TEST(Session, DecodeRejectsMismatchedOrDamagedState)
{
    const auto tr = makeTrace("reject", 23);
    const SessionConfig cfg = makeConfig("inter(pid+pc4)2", 32);
    Session a(1, cfg, kNodes);
    for (const auto &ev : tr.events())
        a.onEvent(ev);
    std::vector<char> blob;
    a.encode(blob);

    // Wrong session id.
    {
        Session b(2, cfg, kNodes);
        const char *p = blob.data();
        EXPECT_FALSE(b.decode(p, blob.data() + blob.size()));
    }
    // Wrong geometry: a different scheme has a different state size.
    {
        Session b(1, makeConfig("last(pid+pc2)1", 32), kNodes);
        const char *p = blob.data();
        EXPECT_FALSE(b.decode(p, blob.data() + blob.size()));
    }
    // Wrong window capacity.
    {
        Session b(1, makeConfig("inter(pid+pc4)2", 16), kNodes);
        const char *p = blob.data();
        EXPECT_FALSE(b.decode(p, blob.data() + blob.size()));
    }
    // Truncation anywhere must fail, never read past end.
    for (std::size_t len :
         {std::size_t(0), std::size_t(7), std::size_t(40),
          blob.size() - 1}) {
        Session b(1, cfg, kNodes);
        const char *p = blob.data();
        EXPECT_FALSE(b.decode(p, blob.data() + len)) << len;
    }
}

// ---------------------------------------------------------------------
// PredictServer pipeline

std::vector<trace::SharingTrace>
makeStreams(unsigned n)
{
    std::vector<trace::SharingTrace> streams;
    for (unsigned i = 0; i < n; ++i) {
        char name[16];
        std::snprintf(name, sizeof(name), "s%u", i);
        streams.push_back(makeTrace(name, 31 + i));
    }
    return streams;
}

/** Inline oracle sessions for @p streams. */
std::vector<Session>
inlineSessions(const std::vector<trace::SharingTrace> &streams,
               const SessionConfig &cfg)
{
    std::vector<Session> sessions;
    for (unsigned i = 0; i < streams.size(); ++i) {
        sessions.emplace_back(i, cfg, kNodes);
        for (const auto &ev : streams[i].events())
            sessions[i].onEvent(ev);
    }
    return sessions;
}

/** Feed every stream through @p server from one producer thread per
 *  session, polling responses; @return per-session response count. */
std::vector<std::uint64_t>
driveServer(PredictServer &server,
            const std::vector<trace::SharingTrace> &streams,
            std::size_t from = 0, std::size_t to = ~std::size_t(0))
{
    std::vector<std::uint64_t> received(streams.size(), 0);
    std::vector<std::thread> producers;
    for (unsigned c = 0; c < streams.size(); ++c) {
        producers.emplace_back([&, c] {
            const auto &events = streams[c].events();
            const std::size_t hi = std::min(to, events.size());
            std::vector<Prediction> preds;
            for (std::size_t i = from; i < hi; ++i) {
                while (!server.submit(c, events[i]))
                    std::this_thread::yield();
                preds.clear();
                received[c] += server.pollPredictions(c, preds, 64);
            }
        });
    }
    for (auto &t : producers)
        t.join();
    return received;
}

TEST(PredictServer, ServesEveryStreamIdenticallyToInlineAtAnyAgentCount)
{
    const SessionConfig cfg = makeConfig("inter(pid+pc4)2", 64);
    const auto streams = makeStreams(5);
    const auto oracle = inlineSessions(streams, cfg);

    for (unsigned agents : {1u, 2u, 4u, 8u}) {
        ServeOptions opts;
        opts.session = cfg;
        opts.nNodes = kNodes;
        opts.sessions = 5;
        opts.agents = agents;
        opts.ringCapacity = 64; // small: exercise backpressure
        PredictServer server(opts);
        ASSERT_TRUE(server.start());
        driveServer(server, streams);
        server.stop();

        for (unsigned c = 0; c < streams.size(); ++c) {
            const SessionStats got = server.stats(c);
            const SessionStats want = oracle[c].stats();
            EXPECT_EQ(got.events, want.events) << agents << "/" << c;
            EXPECT_TRUE(sameConfusion(got.total, want.total))
                << agents << "/" << c;
            EXPECT_TRUE(sameConfusion(got.window, want.window))
                << agents << "/" << c;
        }
    }
}

TEST(PredictServer, DeliversOnePredictionPerEventInSubmitOrder)
{
    const SessionConfig cfg = makeConfig("inter(pid+pc4)2", 64);
    const auto streams = makeStreams(2);
    ServeOptions opts;
    opts.session = cfg;
    opts.nNodes = kNodes;
    opts.sessions = 2;
    opts.agents = 2;
    // Response ring >= stream length: nothing can be dropped, so the
    // full seq sequence must come back 0,1,2,...
    opts.responseCapacity = 1024;
    PredictServer server(opts);
    ASSERT_TRUE(server.start());

    std::vector<Prediction> all;
    const auto &events = streams[0].events();
    for (std::size_t i = 0; i < events.size(); ++i) {
        while (!server.submit(0, events[i]))
            std::this_thread::yield();
        server.pollPredictions(0, all, 16);
    }
    server.stop();
    server.pollPredictions(0, all, ~std::size_t(0));

    EXPECT_EQ(server.responsesDropped(), 0u);
    ASSERT_EQ(all.size(), events.size());
    Session oracle(0, cfg, kNodes);
    for (std::size_t i = 0; i < all.size(); ++i) {
        EXPECT_EQ(all[i].seq, i);
        EXPECT_EQ(all[i].predicted, oracle.onEvent(events[i]))
            << "event " << i;
    }
}

TEST(PredictServer, RefusesSubmitsWhenNotRunning)
{
    const SessionConfig cfg = makeConfig("inter(pid+pc4)2");
    ServeOptions opts;
    opts.session = cfg;
    opts.nNodes = kNodes;
    opts.sessions = 1;
    PredictServer server(opts);
    trace::CoherenceEvent ev;
    EXPECT_FALSE(server.submit(0, ev));
    ASSERT_TRUE(server.start());
    EXPECT_FALSE(server.start()) << "double start";
    server.stop();
    EXPECT_FALSE(server.submit(0, ev));
}

TEST(PredictServer, StatsAreMonotoneWhileServing)
{
    const SessionConfig cfg = makeConfig("inter(pid+pc4)2", 32);
    const auto streams = makeStreams(1);
    ServeOptions opts;
    opts.session = cfg;
    opts.nNodes = kNodes;
    opts.sessions = 1;
    opts.agents = 1;
    PredictServer server(opts);
    ASSERT_TRUE(server.start());

    std::uint64_t last_events = 0;
    const auto &events = streams[0].events();
    for (std::size_t i = 0; i < events.size(); ++i) {
        while (!server.submit(0, events[i]))
            std::this_thread::yield();
        if (i % 37 != 0)
            continue;
        const SessionStats s = server.stats(0);
        EXPECT_GE(s.events, last_events);
        // Every processed event scores exactly nNodes decisions.
        EXPECT_EQ(s.total.decisions(), s.events * kNodes);
        last_events = s.events;
    }
    server.stop();
    EXPECT_EQ(server.stats(0).events, events.size());
    EXPECT_EQ(server.submitted(0), events.size());
}

// ---------------------------------------------------------------------
// Kill-and-restore

class ServerSnapshotTest : public ::testing::Test
{
  protected:
    std::string
    snapPath() const
    {
        return ::testing::TempDir() + "serve_snapshot.ccps";
    }

    std::vector<char>
    snapBytes() const
    {
        std::ifstream is(snapPath(), std::ios::binary);
        EXPECT_TRUE(is.good());
        return std::vector<char>(std::istreambuf_iterator<char>(is),
                                 std::istreambuf_iterator<char>());
    }

    void
    SetUp() override
    {
        std::remove(snapPath().c_str());
    }
};

TEST_F(ServerSnapshotTest, KilledMidStreamRestoresByteIdentical)
{
    const SessionConfig cfg = makeConfig("inter(pid+pc4)2", 32);
    const auto streams = makeStreams(3);
    const std::size_t cut = streams[0].events().size() / 2;

    // Inline oracle over the first half.
    std::vector<Session> half;
    for (unsigned i = 0; i < streams.size(); ++i) {
        half.emplace_back(i, cfg, kNodes);
        for (std::size_t j = 0; j < cut; ++j)
            half[i].onEvent(streams[i].events()[j]);
    }

    ServeOptions opts;
    opts.session = cfg;
    opts.nNodes = kNodes;
    opts.sessions = 3;
    opts.agents = 2;
    opts.snapshotPath = snapPath();
    opts.snapshotIntervalSec = 0; // only stop()'s final snapshot
    {
        PredictServer server(opts);
        ASSERT_TRUE(server.start());
        driveServer(server, streams, 0, cut);
        server.stop(); // the "kill": nothing after the snapshot
    }
    const std::vector<char> first_image = snapBytes();

    // A restore followed by an event-free stop must re-emit the
    // snapshot byte for byte — the strongest restore-fidelity check
    // the container offers (key, payload, checksum all identical).
    {
        PredictServer copy(opts);
        ASSERT_EQ(copy.restore(), sweep::CheckpointLoad::Ok);
        ASSERT_TRUE(copy.start());
        copy.stop();
        EXPECT_EQ(snapBytes(), first_image);
    }

    // Restart at a DIFFERENT agent count; restored state must equal
    // the inline oracle word for word.
    opts.agents = 7;
    PredictServer revived(opts);
    ASSERT_EQ(revived.restore(), sweep::CheckpointLoad::Ok);
    ASSERT_TRUE(revived.start());
    // (restore state checked after the full stream below; stats()
    // equality here already pins the confusion counts.)
    for (unsigned c = 0; c < streams.size(); ++c) {
        const SessionStats got = revived.stats(c);
        const SessionStats want = half[c].stats();
        EXPECT_EQ(got.events, want.events);
        EXPECT_TRUE(sameConfusion(got.total, want.total));
        EXPECT_TRUE(sameConfusion(got.window, want.window));
    }

    // Serve the second half on the revived server: the final state
    // must equal an uninterrupted inline run of the whole stream.
    driveServer(revived, streams, cut);
    revived.stop();
    const auto full = inlineSessions(streams, cfg);
    for (unsigned c = 0; c < streams.size(); ++c) {
        const SessionStats got = revived.stats(c);
        const SessionStats want = full[c].stats();
        EXPECT_EQ(got.events, want.events) << c;
        EXPECT_TRUE(sameConfusion(got.total, want.total)) << c;
        EXPECT_TRUE(sameConfusion(got.window, want.window)) << c;
    }
}

TEST_F(ServerSnapshotTest, PerceptronRestoresByteIdenticalAtAnyAgentCount)
{
    // The perceptron's packed state — histories, int8 weight lanes,
    // the Bloom word — rides the same CCPS snapshot as every other
    // family, and must restore byte-identically at a different agent
    // count; the blob additionally carries the perceptron feature
    // bit, so a legacy-feature decoder refuses it with structure.
    const SessionConfig cfg =
        makeConfig("perceptron(hash:pid+pc4)2w5t2b16", 32);
    const auto streams = makeStreams(3);
    const std::size_t cut = streams[0].events().size() / 2;

    std::vector<Session> half;
    for (unsigned i = 0; i < streams.size(); ++i) {
        half.emplace_back(i, cfg, kNodes);
        for (std::size_t j = 0; j < cut; ++j)
            half[i].onEvent(streams[i].events()[j]);
    }

    ServeOptions opts;
    opts.session = cfg;
    opts.nNodes = kNodes;
    opts.sessions = 3;
    opts.agents = 2;
    opts.snapshotPath = snapPath();
    opts.snapshotIntervalSec = 0;
    {
        PredictServer server(opts);
        ASSERT_TRUE(server.start());
        driveServer(server, streams, 0, cut);
        server.stop();
    }
    const std::vector<char> first_image = snapBytes();

    // The snapshot must be marked as carrying perceptron state: a
    // decoder restricted to the legacy feature set rejects it with
    // UnsupportedKind (not a crash, not a silent mis-decode).
    {
        std::vector<char> payload;
        EXPECT_EQ(sweep::loadStateBlob(snapPath(), 0, payload,
                                       /*supported_features=*/0),
                  sweep::CheckpointLoad::UnsupportedKind);
        EXPECT_TRUE(payload.empty());
    }

    // Restore + event-free stop re-emits the snapshot byte for byte.
    {
        PredictServer copy(opts);
        ASSERT_EQ(copy.restore(), sweep::CheckpointLoad::Ok);
        ASSERT_TRUE(copy.start());
        copy.stop();
        EXPECT_EQ(snapBytes(), first_image);
    }

    // Restart at a DIFFERENT agent count; the restored sessions must
    // match the inline oracle, and the full stream must land exactly
    // where an uninterrupted run does.
    opts.agents = 5;
    PredictServer revived(opts);
    ASSERT_EQ(revived.restore(), sweep::CheckpointLoad::Ok);
    ASSERT_TRUE(revived.start());
    for (unsigned c = 0; c < streams.size(); ++c) {
        const SessionStats got = revived.stats(c);
        const SessionStats want = half[c].stats();
        EXPECT_EQ(got.events, want.events);
        EXPECT_TRUE(sameConfusion(got.total, want.total));
        EXPECT_TRUE(sameConfusion(got.window, want.window));
    }
    driveServer(revived, streams, cut);
    revived.stop();
    const auto full = inlineSessions(streams, cfg);
    for (unsigned c = 0; c < streams.size(); ++c) {
        const SessionStats got = revived.stats(c);
        const SessionStats want = full[c].stats();
        EXPECT_EQ(got.events, want.events) << c;
        EXPECT_TRUE(sameConfusion(got.total, want.total)) << c;
        EXPECT_TRUE(sameConfusion(got.window, want.window)) << c;
    }
}

TEST_F(ServerSnapshotTest, SnapshotNowWhileServingIsRestorable)
{
    const SessionConfig cfg = makeConfig("inter(pid+pc4)2", 32);
    const auto streams = makeStreams(2);
    ServeOptions opts;
    opts.session = cfg;
    opts.nNodes = kNodes;
    opts.sessions = 2;
    opts.agents = 2;
    opts.snapshotPath = snapPath();
    opts.snapshotIntervalSec = 0;
    PredictServer server(opts);
    ASSERT_TRUE(server.start());
    std::thread snapshotter([&server] {
        for (int i = 0; i < 20; ++i)
            EXPECT_TRUE(server.snapshotNow());
    });
    driveServer(server, streams);
    snapshotter.join();
    server.stop();

    // Whatever instant the last snapshot caught, it must restore into
    // a server whose event counts are consistent (decode succeeded).
    PredictServer revived(opts);
    ASSERT_EQ(revived.restore(), sweep::CheckpointLoad::Ok);
    for (unsigned c = 0; c < 2; ++c) {
        const SessionStats s = revived.stats(c);
        EXPECT_EQ(s.total.decisions(), s.events * kNodes);
    }
}

TEST_F(ServerSnapshotTest, RestoreRejectsForeignLayout)
{
    const SessionConfig cfg = makeConfig("inter(pid+pc4)2", 32);
    ServeOptions opts;
    opts.session = cfg;
    opts.nNodes = kNodes;
    opts.sessions = 2;
    opts.snapshotPath = snapPath();
    {
        PredictServer server(opts);
        ASSERT_TRUE(server.start());
        server.stop(); // writes an (empty-stream) snapshot
    }

    // Missing file on a fresh path: a fresh start, not an error.
    {
        ServeOptions fresh = opts;
        fresh.snapshotPath = snapPath() + ".absent";
        PredictServer server(fresh);
        EXPECT_EQ(server.restore(), sweep::CheckpointLoad::Missing);
    }
    // A server with a different layout must refuse the blob: session
    // count, scheme, and window all feed the snapshot key.
    {
        ServeOptions other = opts;
        other.sessions = 3;
        PredictServer server(other);
        EXPECT_EQ(server.restore(),
                  sweep::CheckpointLoad::KeyMismatch);
    }
    {
        ServeOptions other = opts;
        other.session = makeConfig("last(pid+pc2)1", 32);
        PredictServer server(other);
        EXPECT_EQ(server.restore(),
                  sweep::CheckpointLoad::KeyMismatch);
    }
    {
        ServeOptions other = opts;
        other.session.windowEvents = 64;
        PredictServer server(other);
        EXPECT_EQ(server.restore(),
                  sweep::CheckpointLoad::KeyMismatch);
    }
}

} // namespace
