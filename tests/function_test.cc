/**
 * @file
 * Tests for the prediction functions: window (last/union/inter) and
 * two-level PAs, including the algebraic properties the paper relies
 * on (last == depth-1 window; union/inter containment; depth
 * monotonicity).
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "predict/function.hh"

namespace {

using namespace ccp;
using predict::FunctionKind;
using predict::makeFunction;
using predict::PAsFunction;
using predict::PredictionFunction;
using predict::WindowFunction;

std::vector<std::uint64_t>
freshState(const PredictionFunction &fn)
{
    return std::vector<std::uint64_t>(fn.entryWords(), 0);
}

TEST(WindowFunction, EmptyHistoryPredictsNothing)
{
    WindowFunction u(FunctionKind::Union, 3);
    auto st = freshState(u);
    EXPECT_TRUE(u.predict(st.data()).empty());
}

TEST(WindowFunction, DepthOneIsLastPrediction)
{
    WindowFunction u(FunctionKind::Union, 1);
    WindowFunction i(FunctionKind::Inter, 1);
    auto su = freshState(u), si = freshState(i);

    for (std::uint64_t fb : {0b0110ull, 0b1000ull, 0b0011ull}) {
        u.update(su.data(), SharingBitmap(fb));
        i.update(si.data(), SharingBitmap(fb));
        EXPECT_EQ(u.predict(su.data()).raw(), fb);
        EXPECT_EQ(i.predict(si.data()).raw(), fb);
    }
}

TEST(WindowFunction, UnionAccumulates)
{
    WindowFunction u(FunctionKind::Union, 3);
    auto st = freshState(u);
    u.update(st.data(), SharingBitmap(0b0001));
    u.update(st.data(), SharingBitmap(0b0010));
    EXPECT_EQ(u.predict(st.data()).raw(), 0b0011u);
    u.update(st.data(), SharingBitmap(0b0100));
    EXPECT_EQ(u.predict(st.data()).raw(), 0b0111u);
}

TEST(WindowFunction, InterRequiresStability)
{
    WindowFunction i(FunctionKind::Inter, 2);
    auto st = freshState(i);
    i.update(st.data(), SharingBitmap(0b0110));
    i.update(st.data(), SharingBitmap(0b0011));
    EXPECT_EQ(i.predict(st.data()).raw(), 0b0010u);
}

TEST(WindowFunction, WindowEvictsOldestBitmap)
{
    WindowFunction u(FunctionKind::Union, 2);
    auto st = freshState(u);
    u.update(st.data(), SharingBitmap(0b0001));
    u.update(st.data(), SharingBitmap(0b0010));
    u.update(st.data(), SharingBitmap(0b0100)); // evicts 0b0001
    EXPECT_EQ(u.predict(st.data()).raw(), 0b0110u);
}

TEST(WindowFunction, PartialWindowUsesOnlyValidSlots)
{
    WindowFunction i(FunctionKind::Inter, 4);
    auto st = freshState(i);
    i.update(st.data(), SharingBitmap(0b1111));
    // With one bitmap recorded, inter predicts it verbatim (zero
    // slots must not be intersected in).
    EXPECT_EQ(i.predict(st.data()).raw(), 0b1111u);
}

TEST(WindowFunction, EntryBitsFollowPaperAccounting)
{
    EXPECT_EQ(WindowFunction(FunctionKind::Union, 1).entryBits(16), 16u);
    EXPECT_EQ(WindowFunction(FunctionKind::Inter, 4).entryBits(16), 64u);
    EXPECT_EQ(WindowFunction(FunctionKind::Union, 2).entryBits(32), 64u);
}

TEST(WindowFunction, UnionContainsInterAlways)
{
    WindowFunction u(FunctionKind::Union, 3);
    WindowFunction i(FunctionKind::Inter, 3);
    auto su = freshState(u), si = freshState(i);
    Rng rng(42);
    for (int k = 0; k < 500; ++k) {
        SharingBitmap fb(rng() & 0xffff);
        u.update(su.data(), fb);
        i.update(si.data(), fb);
        EXPECT_TRUE(i.predict(si.data()).subsetOf(u.predict(su.data())));
    }
}

TEST(WindowFunction, DepthMonotonicity)
{
    // On any feedback stream: deeper union predicts a superset of a
    // shallower union; deeper inter predicts a subset.
    WindowFunction u2(FunctionKind::Union, 2), u4(FunctionKind::Union, 4);
    WindowFunction i2(FunctionKind::Inter, 2), i4(FunctionKind::Inter, 4);
    auto s2 = freshState(u2), s4 = freshState(u4);
    auto t2 = freshState(i2), t4 = freshState(i4);
    Rng rng(7);
    for (int k = 0; k < 500; ++k) {
        SharingBitmap fb(rng() & 0xffff);
        u2.update(s2.data(), fb);
        u4.update(s4.data(), fb);
        i2.update(t2.data(), fb);
        i4.update(t4.data(), fb);
        EXPECT_TRUE(
            u2.predict(s2.data()).subsetOf(u4.predict(s4.data())));
        EXPECT_TRUE(
            i4.predict(t4.data()).subsetOf(i2.predict(t2.data())));
    }
}

TEST(PAs, ColdEntryPredictsNotShared)
{
    PAsFunction pas(2, 16);
    auto st = freshState(pas);
    EXPECT_TRUE(pas.predict(st.data()).empty());
}

TEST(PAs, LearnsAConstantPattern)
{
    PAsFunction pas(2, 16);
    auto st = freshState(pas);
    SharingBitmap fb(0b0101);
    for (int k = 0; k < 8; ++k)
        pas.update(st.data(), fb);
    EXPECT_EQ(pas.predict(st.data()).raw(), 0b0101u);
}

TEST(PAs, LearnsAnAlternatingPattern)
{
    // Node 0 reads every other time: a 2-bit history PAs predictor
    // should learn both phases of the alternation.
    PAsFunction pas(2, 4);
    auto st = freshState(pas);
    for (int k = 0; k < 40; ++k)
        pas.update(st.data(),
                   SharingBitmap(k % 2 == 0 ? 0b0001 : 0b0000));
    // After history "01" (last was read), predict not-read; after
    // "10", predict read.
    pas.update(st.data(), SharingBitmap(0b0001));
    EXPECT_FALSE(pas.predict(st.data()).test(0));
    pas.update(st.data(), SharingBitmap(0b0000));
    EXPECT_TRUE(pas.predict(st.data()).test(0));
}

TEST(PAs, CountersSaturate)
{
    PAsFunction pas(1, 2);
    auto st = freshState(pas);
    for (int k = 0; k < 100; ++k)
        pas.update(st.data(), SharingBitmap(0b01));
    // One contrary observation must not flip the saturated
    // read-after-read counter: after one more read the entry again
    // predicts read.
    pas.update(st.data(), SharingBitmap(0b00));
    pas.update(st.data(), SharingBitmap(0b01));
    EXPECT_TRUE(pas.predict(st.data()).test(0));
    // But repeated contrary evidence eventually flips it.
    for (int k = 0; k < 6; ++k)
        pas.update(st.data(), SharingBitmap(0b00));
    EXPECT_FALSE(pas.predict(st.data()).test(0));
}

TEST(PAs, NodesAreIndependent)
{
    PAsFunction pas(2, 16);
    auto st = freshState(pas);
    for (int k = 0; k < 10; ++k)
        pas.update(st.data(), SharingBitmap(1ull << 7));
    SharingBitmap pred = pas.predict(st.data());
    EXPECT_TRUE(pred.test(7));
    EXPECT_EQ(pred.popcount(), 1u);
}

TEST(PAs, EntryBitsFollowPaperAccounting)
{
    // N x (depth + 2 * 2^depth).
    EXPECT_EQ(PAsFunction(2, 16).entryBits(16), 16u * (2 + 8));
    EXPECT_EQ(PAsFunction(4, 16).entryBits(16), 16u * (4 + 32));
    EXPECT_EQ(PAsFunction(1, 16).entryBits(16), 16u * (1 + 4));
}

TEST(PAs, DeepHistoryStateLayoutIsSound)
{
    // 64 nodes at depth 8 stresses the packed-bit layout, including
    // histories straddling word boundaries.
    PAsFunction pas(8, 64);
    auto st = freshState(pas);
    Rng rng(3);
    for (int k = 0; k < 200; ++k) {
        SharingBitmap fb(rng());
        pas.update(st.data(), fb);
    }
    // Train node 63 solid-read; it must predict read regardless of
    // what the other nodes did.
    for (int k = 0; k < 10; ++k)
        pas.update(st.data(), SharingBitmap(1ull << 63));
    EXPECT_TRUE(pas.predict(st.data()).test(63));
}

TEST(Functions, FactoryDispatch)
{
    EXPECT_EQ(makeFunction(FunctionKind::Union, 2, 16)->kind(),
              FunctionKind::Union);
    EXPECT_EQ(makeFunction(FunctionKind::Inter, 2, 16)->kind(),
              FunctionKind::Inter);
    EXPECT_EQ(makeFunction(FunctionKind::PAs, 2, 16)->kind(),
              FunctionKind::PAs);
    EXPECT_EQ(makeFunction(FunctionKind::PAs, 2, 16)->depth(), 2u);
}

TEST(Functions, KindNames)
{
    EXPECT_STREQ(predict::functionKindName(FunctionKind::Union),
                 "union");
    EXPECT_STREQ(predict::functionKindName(FunctionKind::Inter),
                 "inter");
    EXPECT_STREQ(predict::functionKindName(FunctionKind::PAs), "pas");
}

} // namespace

namespace {

using ccp::predict::OverlapLastFunction;

TEST(OverlapLast, ColdEntryAbstains)
{
    OverlapLastFunction f;
    auto st = freshState(f);
    EXPECT_TRUE(f.predict(st.data()).empty());
    f.update(st.data(), SharingBitmap(0b01));
    // One observation is not enough to check overlap.
    EXPECT_TRUE(f.predict(st.data()).empty());
}

TEST(OverlapLast, PredictsOnOverlapOnly)
{
    OverlapLastFunction f;
    auto st = freshState(f);
    f.update(st.data(), SharingBitmap(0b011));
    f.update(st.data(), SharingBitmap(0b110)); // overlaps on bit 1
    EXPECT_EQ(f.predict(st.data()).raw(), 0b110u);
    f.update(st.data(), SharingBitmap(0b001)); // disjoint from 0b110
    EXPECT_TRUE(f.predict(st.data()).empty());
}

TEST(OverlapLast, StableHistoryBehavesLikeLast)
{
    OverlapLastFunction f;
    WindowFunction last(FunctionKind::Union, 1);
    auto sf = freshState(f), sl = freshState(last);
    for (int i = 0; i < 10; ++i) {
        f.update(sf.data(), SharingBitmap(0b0110));
        last.update(sl.data(), SharingBitmap(0b0110));
    }
    EXPECT_EQ(f.predict(sf.data()).raw(), last.predict(sl.data()).raw());
}

TEST(OverlapLast, NeverPredictsMoreThanLast)
{
    // Property: overlap-last's prediction is either the last bitmap
    // or empty — a filtered subset of last-prediction.
    OverlapLastFunction f;
    WindowFunction last(FunctionKind::Union, 1);
    auto sf = freshState(f), sl = freshState(last);
    Rng rng(11);
    for (int i = 0; i < 500; ++i) {
        SharingBitmap fb(rng() & 0xffff);
        f.update(sf.data(), fb);
        last.update(sl.data(), fb);
        EXPECT_TRUE(
            f.predict(sf.data()).subsetOf(last.predict(sl.data())));
    }
}

TEST(OverlapLast, CostCountsTwoBitmaps)
{
    OverlapLastFunction f;
    EXPECT_EQ(f.entryBits(16), 32u);
}

TEST(OverlapLast, FactoryAndName)
{
    auto fn = makeFunction(FunctionKind::OverlapLast, 1, 16);
    EXPECT_EQ(fn->kind(), FunctionKind::OverlapLast);
    EXPECT_STREQ(predict::functionKindName(FunctionKind::OverlapLast),
                 "overlap-last");
}

} // namespace
