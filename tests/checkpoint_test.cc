/**
 * @file
 * Tests for the sweep checkpoint container (sweep/checkpoint.hh):
 * round-tripping, key derivation, and — the heart of the file — a
 * corruption matrix proving every damaged or stale checkpoint is
 * rejected (truncation, flipped checksum word, foreign key, version
 * skew, out-of-range or unsorted entries) rather than resumed into
 * wrong results.  Also locks down the checkpoint.torn_write fault
 * point, the deterministic stand-in for a crash mid-write.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/fault.hh"
#include "obs/registry.hh"
#include "predict/evaluator.hh"
#include "sweep/checkpoint.hh"
#include "sweep/space.hh"
#include "trace/format.hh"
#include "trace/trace.hh"

namespace {

using namespace ccp;
using predict::Confusion;
using predict::SchemeSpec;
using predict::UpdateMode;
using sweep::CheckpointEntry;
using sweep::CheckpointKey;
using sweep::CheckpointLoad;
using sweep::SweepKernel;

// Header byte offsets (static_asserted to 96 bytes total).
constexpr std::size_t offVersion = 4;
constexpr std::size_t offSchemeSetHash = 24;
constexpr std::size_t offChecksum = 64;
constexpr std::size_t headerBytes = 96;

trace::SharingTrace
tinyTrace(const char *name, unsigned salt)
{
    trace::SharingTrace tr(name, 8);
    for (unsigned i = 0; i < 40; ++i) {
        trace::CoherenceEvent ev;
        ev.pid = static_cast<NodeId>((i + salt) % 8);
        ev.pc = 0x1000 + 4 * ((i + salt) % 4);
        ev.block = i % 6;
        ev.dir = i % 8;
        ev.readers = SharingBitmap::single((i + salt + 1) % 8);
        tr.append(ev);
    }
    return tr;
}

std::vector<trace::SharingTrace>
tinySuite()
{
    std::vector<trace::SharingTrace> suite;
    suite.push_back(tinyTrace("alpha", 1));
    suite.push_back(tinyTrace("beta", 5));
    return suite;
}

std::vector<SchemeSpec>
tinySpace()
{
    sweep::SpaceSpec spec;
    spec.maxBits = std::uint64_t(1) << 10;
    spec.pcBitsGrid = {0, 2};
    spec.addrBitsGrid = {0, 2};
    spec.pasDepths = {1};
    return enumerateSchemes(spec);
}

CheckpointKey
tinyKey(const std::vector<trace::SharingTrace> &suite,
        const std::vector<SchemeSpec> &schemes)
{
    return makeCheckpointKey(suite, schemes, UpdateMode::Direct,
                             SweepKernel::Batched);
}

std::vector<CheckpointEntry>
someEntries(std::size_t n_traces)
{
    std::vector<CheckpointEntry> entries;
    // Deliberately unsorted: saveCheckpoint must canonicalize.
    for (std::uint64_t idx : {4u, 0u, 2u}) {
        CheckpointEntry e;
        e.schemeIndex = idx;
        for (std::size_t t = 0; t < n_traces; ++t) {
            Confusion c;
            c.tp = 100 * idx + t;
            c.fp = 7 + idx;
            c.tn = 1000 + t;
            c.fn = idx;
            e.perTrace.push_back(c);
        }
        entries.push_back(e);
    }
    return entries;
}

std::string
tempPath(const char *name)
{
    return ::testing::TempDir() + name;
}

std::vector<char>
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.good()) << path;
    return std::vector<char>(std::istreambuf_iterator<char>(is),
                             std::istreambuf_iterator<char>());
}

void
writeFile(const std::string &path, const std::vector<char> &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(os.good()) << path;
}

std::uint64_t
getWord(const std::vector<char> &buf, std::size_t off)
{
    std::uint64_t v;
    std::memcpy(&v, buf.data() + off, 8);
    return v;
}

void
putWord(std::vector<char> &buf, std::size_t off, std::uint64_t v)
{
    std::memcpy(buf.data() + off, &v, 8);
}

/** Recompute the whole-file checksum after a deliberate header edit,
 *  so the loader's rejection is specific to the edited field and not
 *  just a checksum side effect. */
void
resealChecksum(std::vector<char> &buf)
{
    putWord(buf, offChecksum, 0);
    trace::Fnv1a sum;
    sum.update(buf.data(), buf.size());
    putWord(buf, offChecksum, sum.digest());
}

class CheckpointTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ::unsetenv("CCP_FAULT_INJECT");
        fault::reinit();
    }

    void
    TearDown() override
    {
        ::unsetenv("CCP_FAULT_INJECT");
        fault::reinit();
    }
};

TEST_F(CheckpointTest, RoundTripsEntriesSortedByScheme)
{
    auto suite = tinySuite();
    auto schemes = tinySpace();
    ASSERT_GE(schemes.size(), 5u);
    const CheckpointKey key = tinyKey(suite, schemes);
    const std::string path = tempPath("roundtrip.ckpt");

    ASSERT_TRUE(saveCheckpoint(path, key, someEntries(suite.size())));

    std::vector<CheckpointEntry> loaded;
    ASSERT_EQ(loadCheckpoint(path, key, loaded), CheckpointLoad::Ok);
    ASSERT_EQ(loaded.size(), 3u);
    EXPECT_EQ(loaded[0].schemeIndex, 0u);
    EXPECT_EQ(loaded[1].schemeIndex, 2u);
    EXPECT_EQ(loaded[2].schemeIndex, 4u);
    for (const auto &e : loaded) {
        ASSERT_EQ(e.perTrace.size(), suite.size());
        for (std::size_t t = 0; t < suite.size(); ++t) {
            EXPECT_EQ(e.perTrace[t].tp, 100 * e.schemeIndex + t);
            EXPECT_EQ(e.perTrace[t].fp, 7 + e.schemeIndex);
            EXPECT_EQ(e.perTrace[t].tn, 1000 + t);
            EXPECT_EQ(e.perTrace[t].fn, e.schemeIndex);
        }
    }
}

TEST_F(CheckpointTest, MissingFileIsMissingNotInvalid)
{
    auto suite = tinySuite();
    auto schemes = tinySpace();
    std::vector<CheckpointEntry> loaded;
    EXPECT_EQ(loadCheckpoint(tempPath("no-such.ckpt"),
                             tinyKey(suite, schemes), loaded),
              CheckpointLoad::Missing);
    EXPECT_TRUE(loaded.empty());
}

TEST_F(CheckpointTest, KeyChangesWithEveryInput)
{
    auto suite = tinySuite();
    auto schemes = tinySpace();
    const CheckpointKey base = tinyKey(suite, schemes);

    // Different trace contents.
    auto other_suite = tinySuite();
    other_suite[1] = tinyTrace("beta", 6);
    EXPECT_NE(makeCheckpointKey(other_suite, schemes,
                                UpdateMode::Direct,
                                SweepKernel::Batched)
                  .traceSetHash,
              base.traceSetHash);

    // Different scheme list (drop one).
    auto fewer = schemes;
    fewer.pop_back();
    EXPECT_NE(makeCheckpointKey(suite, fewer, UpdateMode::Direct,
                                SweepKernel::Batched)
                  .schemeSetHash,
              base.schemeSetHash);

    // Different update mode.
    EXPECT_NE(makeCheckpointKey(suite, schemes,
                                UpdateMode::Forwarded,
                                SweepKernel::Batched)
                  .schemeSetHash,
              base.schemeSetHash);

    // Different kernel.
    EXPECT_NE(makeCheckpointKey(suite, schemes, UpdateMode::Direct,
                                SweepKernel::Reference)
                  .kernel,
              base.kernel);
}

// ---------------------------------------------------------------------
// Corruption matrix: every damaged file must be rejected.

TEST_F(CheckpointTest, TruncatedFileIsRejected)
{
    auto suite = tinySuite();
    auto schemes = tinySpace();
    const CheckpointKey key = tinyKey(suite, schemes);
    const std::string path = tempPath("trunc.ckpt");
    ASSERT_TRUE(saveCheckpoint(path, key, someEntries(suite.size())));

    auto bytes = readFile(path);
    ASSERT_GT(bytes.size(), headerBytes);
    std::vector<CheckpointEntry> loaded;

    // Mid-payload, mid-header, and empty truncations.
    for (std::size_t keep :
         {bytes.size() - 8, headerBytes + 3, headerBytes - 40,
          std::size_t(0)}) {
        std::vector<char> cut(bytes.begin(),
                              bytes.begin() +
                                  static_cast<std::ptrdiff_t>(keep));
        writeFile(path, cut);
        EXPECT_EQ(loadCheckpoint(path, key, loaded),
                  CheckpointLoad::Invalid)
            << "kept " << keep << " bytes";
        EXPECT_TRUE(loaded.empty());
    }
}

TEST_F(CheckpointTest, FlippedChecksumWordIsRejected)
{
    auto suite = tinySuite();
    auto schemes = tinySpace();
    const CheckpointKey key = tinyKey(suite, schemes);
    const std::string path = tempPath("flip.ckpt");
    ASSERT_TRUE(saveCheckpoint(path, key, someEntries(suite.size())));

    auto bytes = readFile(path);
    putWord(bytes, offChecksum, getWord(bytes, offChecksum) ^ 1);
    writeFile(path, bytes);

    std::vector<CheckpointEntry> loaded;
    EXPECT_EQ(loadCheckpoint(path, key, loaded),
              CheckpointLoad::Invalid);
}

TEST_F(CheckpointTest, FlippedPayloadBitIsRejected)
{
    auto suite = tinySuite();
    auto schemes = tinySpace();
    const CheckpointKey key = tinyKey(suite, schemes);
    const std::string path = tempPath("flip-payload.ckpt");
    ASSERT_TRUE(saveCheckpoint(path, key, someEntries(suite.size())));

    auto bytes = readFile(path);
    bytes[headerBytes + 17] ^= 0x10; // a confusion count byte
    writeFile(path, bytes);

    std::vector<CheckpointEntry> loaded;
    EXPECT_EQ(loadCheckpoint(path, key, loaded),
              CheckpointLoad::Invalid);
}

TEST_F(CheckpointTest, ForeignSchemeSetIsAKeyMismatch)
{
    auto suite = tinySuite();
    auto schemes = tinySpace();
    const CheckpointKey key = tinyKey(suite, schemes);
    const std::string path = tempPath("foreign.ckpt");

    // An intact checkpoint written for a *different* scheme set: the
    // container validates, the identity does not — KeyMismatch, so
    // the caller rewrites instead of resuming wrong results.
    auto fewer = schemes;
    fewer.pop_back();
    ASSERT_TRUE(saveCheckpoint(path, tinyKey(suite, fewer),
                               someEntries(suite.size())));

    std::vector<CheckpointEntry> loaded;
    EXPECT_EQ(loadCheckpoint(path, key, loaded),
              CheckpointLoad::KeyMismatch);
    EXPECT_TRUE(loaded.empty());
}

TEST_F(CheckpointTest, TamperedSchemeSetHashFailsTheChecksum)
{
    auto suite = tinySuite();
    auto schemes = tinySpace();
    const CheckpointKey key = tinyKey(suite, schemes);
    const std::string path = tempPath("tamper-hash.ckpt");
    ASSERT_TRUE(saveCheckpoint(path, key, someEntries(suite.size())));

    // Flip the stored scheme-set hash without resealing: the header
    // is covered by the checksum, so this is Invalid (corruption),
    // not a mere mismatch.
    auto bytes = readFile(path);
    putWord(bytes, offSchemeSetHash,
            getWord(bytes, offSchemeSetHash) ^ 0xdead);
    writeFile(path, bytes);
    std::vector<CheckpointEntry> loaded;
    EXPECT_EQ(loadCheckpoint(path, key, loaded),
              CheckpointLoad::Invalid);

    // Reseal the checksum over the tampered hash: the container is
    // now self-consistent but belongs to another sweep — KeyMismatch.
    resealChecksum(bytes);
    writeFile(path, bytes);
    EXPECT_EQ(loadCheckpoint(path, key, loaded),
              CheckpointLoad::KeyMismatch);
}

TEST_F(CheckpointTest, VersionSkewIsRejectedEvenWithAValidChecksum)
{
    auto suite = tinySuite();
    auto schemes = tinySpace();
    const CheckpointKey key = tinyKey(suite, schemes);
    const std::string path = tempPath("skew.ckpt");
    ASSERT_TRUE(saveCheckpoint(path, key, someEntries(suite.size())));

    auto bytes = readFile(path);
    std::uint32_t v = sweep::checkpointFormatVersion + 1;
    std::memcpy(bytes.data() + offVersion, &v, 4);
    resealChecksum(bytes); // version check, not a checksum artifact
    writeFile(path, bytes);

    std::vector<CheckpointEntry> loaded;
    EXPECT_EQ(loadCheckpoint(path, key, loaded),
              CheckpointLoad::Invalid);
}

TEST_F(CheckpointTest, OutOfRangeSchemeIndexIsRejected)
{
    auto suite = tinySuite();
    auto schemes = tinySpace();
    const CheckpointKey key = tinyKey(suite, schemes);
    const std::string path = tempPath("range.ckpt");
    ASSERT_TRUE(saveCheckpoint(path, key, someEntries(suite.size())));

    auto bytes = readFile(path);
    putWord(bytes, headerBytes, schemes.size() + 5); // first index
    resealChecksum(bytes);
    writeFile(path, bytes);

    std::vector<CheckpointEntry> loaded;
    EXPECT_EQ(loadCheckpoint(path, key, loaded),
              CheckpointLoad::Invalid);
}

TEST_F(CheckpointTest, DuplicateSchemeIndexIsRejected)
{
    auto suite = tinySuite();
    auto schemes = tinySpace();
    const CheckpointKey key = tinyKey(suite, schemes);
    const std::string path = tempPath("dup.ckpt");
    ASSERT_TRUE(saveCheckpoint(path, key, someEntries(suite.size())));

    // Second entry gets the first entry's index: sorted-strictly-
    // increasing validation must refuse it.
    auto bytes = readFile(path);
    const std::uint64_t entry_bytes =
        sweep::checkpointEntryBytes(
            static_cast<std::uint32_t>(suite.size()));
    putWord(bytes, headerBytes + entry_bytes,
            getWord(bytes, headerBytes));
    resealChecksum(bytes);
    writeFile(path, bytes);

    std::vector<CheckpointEntry> loaded;
    EXPECT_EQ(loadCheckpoint(path, key, loaded),
              CheckpointLoad::Invalid);
}

// ---------------------------------------------------------------------
// Torn writes (deterministic crash-mid-write stand-in)

TEST_F(CheckpointTest, TornWriteIsRejectedThenRegenerable)
{
    auto suite = tinySuite();
    auto schemes = tinySpace();
    const CheckpointKey key = tinyKey(suite, schemes);
    const std::string path = tempPath("torn.ckpt");

    // Arm: the very next checkpoint write persists only 100 bytes.
    ::setenv("CCP_FAULT_INJECT", "checkpoint.torn_write=100", 1);
    fault::reinit();
    ASSERT_TRUE(saveCheckpoint(path, key, someEntries(suite.size())));

    std::vector<CheckpointEntry> loaded;
    EXPECT_EQ(loadCheckpoint(path, key, loaded),
              CheckpointLoad::Invalid);

    // The fault fires once: rewriting regenerates a valid checkpoint
    // — the recovery story for a real torn write.
    ASSERT_TRUE(saveCheckpoint(path, key, someEntries(suite.size())));
    EXPECT_EQ(loadCheckpoint(path, key, loaded), CheckpointLoad::Ok);
    EXPECT_EQ(loaded.size(), 3u);
}

TEST_F(CheckpointTest, FailedWriteLeavesThePreviousCheckpointIntact)
{
    auto suite = tinySuite();
    auto schemes = tinySpace();
    const CheckpointKey key = tinyKey(suite, schemes);
    const std::string path =
        tempPath("no-such-dir/atomic.ckpt"); // unwritable target

    EXPECT_FALSE(
        saveCheckpoint(path, key, someEntries(suite.size())));
}

// ---------------------------------------------------------------------
// Write durability (fsync before rename, and the fault hook that
// turns the fsyncs off to model a crash losing the page cache)

TEST_F(CheckpointTest, SaveFsyncsTheDataFileAndItsDirectory)
{
    auto suite = tinySuite();
    auto schemes = tinySpace();
    const CheckpointKey key = tinyKey(suite, schemes);
    const std::string path = tempPath("durable.ckpt");

    obs::StatsRegistry reg;
    std::uint64_t fsyncs = 0;
    {
        obs::ScopedRegistry scoped(reg);
        ASSERT_TRUE(
            saveCheckpoint(path, key, someEntries(suite.size())));
        const auto *c = reg.findCounter("checkpoint.fsyncs");
        ASSERT_NE(c, nullptr)
            << "save must fsync: a rename alone only orders the "
               "name, not the bytes, and a crash can publish a "
               "checkpoint whose content never reached disk";
        fsyncs = c->value;
    }
    // One for the data file, one for the directory entry.
    EXPECT_GE(fsyncs, 2u);

    obs::StatsRegistry quiet;
    {
        obs::ScopedRegistry scoped(quiet);
        EXPECT_EQ(quiet.findCounter("checkpoint.fsyncs_skipped"),
                  nullptr);
    }
}

TEST_F(CheckpointTest, SkipFsyncFaultDropsEveryFsync)
{
    auto suite = tinySuite();
    auto schemes = tinySpace();
    const CheckpointKey key = tinyKey(suite, schemes);
    const std::string path = tempPath("undurable.ckpt");

    // This hook is the pre-fix behaviour made reproducible: the write
    // path runs identically but no fsync reaches the kernel, which is
    // exactly the window where a power cut loses a checkpoint that
    // rename() already published.  Non-consuming, so it covers every
    // write of the run.
    ::setenv("CCP_FAULT_INJECT", "checkpoint.skip_fsync=1", 1);
    fault::reinit();

    obs::StatsRegistry reg;
    {
        obs::ScopedRegistry scoped(reg);
        ASSERT_TRUE(
            saveCheckpoint(path, key, someEntries(suite.size())));
        ASSERT_TRUE(
            saveCheckpoint(path, key, someEntries(suite.size())));
    }
    EXPECT_EQ(reg.findCounter("checkpoint.fsyncs"), nullptr);
    const auto *skipped =
        reg.findCounter("checkpoint.fsyncs_skipped");
    ASSERT_NE(skipped, nullptr);
    EXPECT_GE(skipped->value, 4u);

    // The blob path honours the same hook.
    obs::StatsRegistry blobReg;
    {
        obs::ScopedRegistry scoped(blobReg);
        ASSERT_TRUE(sweep::saveStateBlob(tempPath("undurable.ccps"), 7,
                                  {'x', 'y'}));
    }
    EXPECT_EQ(blobReg.findCounter("checkpoint.fsyncs"), nullptr);
    ASSERT_NE(blobReg.findCounter("checkpoint.fsyncs_skipped"),
              nullptr);
}

// ---------------------------------------------------------------------
// The generic CCPS state-blob container (serve snapshots ride on it)

std::vector<char>
someBlob()
{
    std::vector<char> payload;
    for (int i = 0; i < 300; ++i)
        payload.push_back(static_cast<char>(i * 7));
    return payload;
}

TEST_F(CheckpointTest, StateBlobRoundTrips)
{
    const std::string path = tempPath("blob.ccps");
    const auto payload = someBlob();
    ASSERT_TRUE(sweep::saveStateBlob(path, 0xabcd, payload));

    std::vector<char> loaded;
    EXPECT_EQ(sweep::loadStateBlob(path, 0xabcd, loaded),
              CheckpointLoad::Ok);
    EXPECT_EQ(loaded, payload);

    // An empty payload is legal (a server with zero sessions).
    ASSERT_TRUE(sweep::saveStateBlob(path, 0xabcd, {}));
    EXPECT_EQ(sweep::loadStateBlob(path, 0xabcd, loaded),
              CheckpointLoad::Ok);
    EXPECT_TRUE(loaded.empty());
}

TEST_F(CheckpointTest, StateBlobMissingFileIsAFreshStart)
{
    std::vector<char> loaded;
    EXPECT_EQ(sweep::loadStateBlob(tempPath("absent.ccps"), 1, loaded),
              CheckpointLoad::Missing);
    EXPECT_TRUE(loaded.empty());
}

TEST_F(CheckpointTest, StateBlobRejectsForeignKey)
{
    const std::string path = tempPath("blob-key.ccps");
    ASSERT_TRUE(sweep::saveStateBlob(path, 0xabcd, someBlob()));

    std::vector<char> loaded;
    EXPECT_EQ(sweep::loadStateBlob(path, 0xabce, loaded),
              CheckpointLoad::KeyMismatch);
    EXPECT_TRUE(loaded.empty());
}

TEST_F(CheckpointTest, StateBlobRejectsCorruption)
{
    const std::string path = tempPath("blob-corrupt.ccps");
    ASSERT_TRUE(sweep::saveStateBlob(path, 0xabcd, someBlob()));
    const auto pristine = readFile(path);
    ASSERT_EQ(pristine.size(),
              sizeof(sweep::StateBlobHeader) + someBlob().size());
    std::vector<char> loaded;

    // Truncated mid-payload.
    writeFile(path, std::vector<char>(pristine.begin(),
                                      pristine.end() - 10));
    EXPECT_EQ(sweep::loadStateBlob(path, 0xabcd, loaded),
              CheckpointLoad::Invalid);

    // Shorter than the header.
    writeFile(path, std::vector<char>(pristine.begin(),
                                      pristine.begin() + 20));
    EXPECT_EQ(sweep::loadStateBlob(path, 0xabcd, loaded),
              CheckpointLoad::Invalid);

    // One payload byte flipped: the whole-file checksum must notice.
    auto flipped = pristine;
    flipped[sizeof(sweep::StateBlobHeader) + 100] ^= 0x01;
    writeFile(path, flipped);
    EXPECT_EQ(sweep::loadStateBlob(path, 0xabcd, loaded),
              CheckpointLoad::Invalid);

    // Bad magic.
    auto bad_magic = pristine;
    bad_magic[0] ^= 0x01;
    writeFile(path, bad_magic);
    EXPECT_EQ(sweep::loadStateBlob(path, 0xabcd, loaded),
              CheckpointLoad::Invalid);

    EXPECT_TRUE(loaded.empty());

    // And the pristine bytes still load, so the rejections above were
    // the edits' doing.
    writeFile(path, pristine);
    EXPECT_EQ(sweep::loadStateBlob(path, 0xabcd, loaded),
              CheckpointLoad::Ok);
}

TEST_F(CheckpointTest, StateBlobTornWriteIsRejectedThenRegenerable)
{
    const std::string path = tempPath("blob-torn.ccps");

    ::setenv("CCP_FAULT_INJECT", "checkpoint.torn_write=30", 1);
    fault::reinit();
    ASSERT_TRUE(sweep::saveStateBlob(path, 9, someBlob()));

    std::vector<char> loaded;
    EXPECT_EQ(sweep::loadStateBlob(path, 9, loaded),
              CheckpointLoad::Invalid);

    ASSERT_TRUE(sweep::saveStateBlob(path, 9, someBlob()));
    EXPECT_EQ(sweep::loadStateBlob(path, 9, loaded), CheckpointLoad::Ok);
    EXPECT_EQ(loaded, someBlob());
}

// ---------------------------------------------------------------------
// Extension-kind gating: files carrying function kinds (or blob
// features) this binary does not implement are rejected with the
// structured UnsupportedKind status — never decoded blind, never
// silently skipped.

// Byte offsets of the extension masks (both headers static_asserted).
constexpr std::size_t offExtensionKinds = 44; // CheckpointHeader
constexpr std::size_t offBlobFeatures = 32;   // StateBlobHeader
constexpr std::size_t offBlobChecksum = 24;

void
putU32(std::vector<char> &buf, std::size_t off, std::uint32_t v)
{
    std::memcpy(buf.data() + off, &v, 4);
}

std::uint32_t
getU32(const std::vector<char> &buf, std::size_t off)
{
    std::uint32_t v;
    std::memcpy(&v, buf.data() + off, 4);
    return v;
}

/** Reseal a CCPS blob's whole-file checksum after a header edit. */
void
resealBlobChecksum(std::vector<char> &buf)
{
    putWord(buf, offBlobChecksum, 0);
    trace::Fnv1a sum;
    sum.update(buf.data(), buf.size());
    putWord(buf, offBlobChecksum, sum.digest());
}

/** A scheme space with no extension kinds in it. */
std::vector<SchemeSpec>
legacySpace()
{
    sweep::SpaceSpec spec;
    spec.maxBits = std::uint64_t(1) << 10;
    spec.pcBitsGrid = {0, 2};
    spec.addrBitsGrid = {0, 2};
    spec.pasDepths = {1};
    spec.percDepths = {};
    return enumerateSchemes(spec);
}

TEST_F(CheckpointTest, ExtensionKindsMaskTracksTheSchemeSet)
{
    const auto legacy = legacySpace();
    ASSERT_FALSE(legacy.empty());
    EXPECT_EQ(sweep::extensionKindsOf(legacy), 0u);

    // tinySpace enumerates perceptrons (the default grids include
    // them), so its mask carries exactly the perceptron bit.
    const auto with_perc = tinySpace();
    bool has_perc = false;
    for (const auto &s : with_perc)
        has_perc |= s.kind == predict::FunctionKind::Perceptron;
    ASSERT_TRUE(has_perc);
    EXPECT_EQ(sweep::extensionKindsOf(with_perc),
              sweep::checkpointKindPerceptron);
}

TEST_F(CheckpointTest, LegacySchemeSetWritesAZeroExtensionMask)
{
    // Legacy-only files stay byte-compatible with pre-extension
    // binaries, which required these header bytes to be zero.
    auto suite = tinySuite();
    const auto schemes = legacySpace();
    const CheckpointKey key = tinyKey(suite, schemes);
    const std::string path = tempPath("legacy-mask.ckpt");
    ASSERT_TRUE(saveCheckpoint(path, key, someEntries(suite.size())));

    EXPECT_EQ(getU32(readFile(path), offExtensionKinds), 0u);
    std::vector<CheckpointEntry> loaded;
    EXPECT_EQ(loadCheckpoint(path, key, loaded), CheckpointLoad::Ok);
}

TEST_F(CheckpointTest, PerceptronSchemeSetRoundTripsWithItsKindBit)
{
    auto suite = tinySuite();
    const auto schemes = tinySpace();
    const CheckpointKey key = tinyKey(suite, schemes);
    ASSERT_EQ(key.extensionKinds, sweep::checkpointKindPerceptron);
    const std::string path = tempPath("perc-mask.ckpt");
    ASSERT_TRUE(saveCheckpoint(path, key, someEntries(suite.size())));

    EXPECT_EQ(getU32(readFile(path), offExtensionKinds),
              sweep::checkpointKindPerceptron);
    std::vector<CheckpointEntry> loaded;
    ASSERT_EQ(loadCheckpoint(path, key, loaded), CheckpointLoad::Ok);
    EXPECT_EQ(loaded.size(), 3u);
}

TEST_F(CheckpointTest, UnknownExtensionKindIsRejectedWithStructure)
{
    auto suite = tinySuite();
    const auto schemes = tinySpace();
    const CheckpointKey key = tinyKey(suite, schemes);
    const std::string path = tempPath("future-kind.ckpt");
    ASSERT_TRUE(saveCheckpoint(path, key, someEntries(suite.size())));

    // A "newer binary" stamps a kind bit this one does not know.
    auto bytes = readFile(path);
    putU32(bytes, offExtensionKinds,
           getU32(bytes, offExtensionKinds) | (1u << 31));
    resealChecksum(bytes); // kind gate, not a checksum artifact
    writeFile(path, bytes);

    // UnsupportedKind, not Invalid (the container is intact) and not
    // KeyMismatch (the gate fires before any key comparison).
    std::vector<CheckpointEntry> loaded;
    EXPECT_EQ(loadCheckpoint(path, key, loaded),
              CheckpointLoad::UnsupportedKind);
    EXPECT_TRUE(loaded.empty());

    // Without the reseal the checksum still rules: Invalid.
    auto torn = readFile(path);
    putU32(torn, offExtensionKinds, 1u << 30);
    writeFile(path, torn);
    EXPECT_EQ(loadCheckpoint(path, key, loaded),
              CheckpointLoad::Invalid);
}

TEST_F(CheckpointTest, StateBlobUnknownFeatureBitIsRejected)
{
    const std::string path = tempPath("blob-future.ccps");
    ASSERT_TRUE(sweep::saveStateBlob(path, 0xabcd, someBlob(),
                                     sweep::stateBlobFeaturePerceptron));

    // The supported feature set loads...
    std::vector<char> loaded;
    EXPECT_EQ(sweep::loadStateBlob(path, 0xabcd, loaded),
              CheckpointLoad::Ok);
    EXPECT_EQ(loaded, someBlob());

    // ...a decoder restricted to the legacy feature set refuses it,
    // and the gate fires before the key compare (wrong key, same
    // status).
    EXPECT_EQ(sweep::loadStateBlob(path, 0xabcd, loaded,
                                   /*supported_features=*/0),
              CheckpointLoad::UnsupportedKind);
    EXPECT_EQ(sweep::loadStateBlob(path, 0xffff, loaded,
                                   /*supported_features=*/0),
              CheckpointLoad::UnsupportedKind);
    EXPECT_TRUE(loaded.empty());

    // A genuinely unknown future bit is refused even by this binary.
    auto bytes = readFile(path);
    putU32(bytes, offBlobFeatures,
           getU32(bytes, offBlobFeatures) | (1u << 17));
    resealBlobChecksum(bytes);
    writeFile(path, bytes);
    EXPECT_EQ(sweep::loadStateBlob(path, 0xabcd, loaded),
              CheckpointLoad::UnsupportedKind);
    EXPECT_TRUE(loaded.empty());
}

TEST_F(CheckpointTest, LoadStatusNamesAreStable)
{
    EXPECT_STREQ(sweep::checkpointLoadName(CheckpointLoad::Ok), "ok");
    EXPECT_STREQ(sweep::checkpointLoadName(CheckpointLoad::Missing),
                 "missing");
    EXPECT_STREQ(sweep::checkpointLoadName(CheckpointLoad::Invalid),
                 "invalid");
    EXPECT_STREQ(sweep::checkpointLoadName(CheckpointLoad::KeyMismatch),
                 "key-mismatch");
    EXPECT_STREQ(
        sweep::checkpointLoadName(CheckpointLoad::UnsupportedKind),
        "unsupported-kind");
}

} // namespace
