/**
 * @file
 * Tests for the sharing-pattern analysis: classification of synthetic
 * per-pattern traces and the invalidation-degree histogram.
 */

#include <gtest/gtest.h>

#include <unordered_map>

#include "analysis/patterns.hh"
#include "workloads/registry.hh"

namespace {

using namespace ccp;
using analysis::analyzeTrace;
using analysis::SharingPattern;
using analysis::TraceAnalysis;
using trace::CoherenceEvent;
using trace::SharingTrace;

/** Append a self-consistent event chain to a trace. */
class ChainBuilder
{
  public:
    explicit ChainBuilder(SharingTrace &tr) : tr_(tr) {}

    void
    event(NodeId pid, Addr block, std::uint64_t readers)
    {
        CoherenceEvent ev;
        ev.pid = pid;
        ev.pc = 0x400;
        ev.dir = 0;
        ev.block = block;
        ev.readers = SharingBitmap(readers);
        auto it = last_.find(block);
        if (it != last_.end()) {
            ev.invalidated = it->second.readers.minus(
                SharingBitmap::single(pid));
            ev.prevWriterPid = it->second.pid;
            ev.prevWriterPc = it->second.pc;
            ev.hasPrevWriter = true;
            ev.prevEvent = seq_[block];
        }
        seq_[block] = tr_.append(ev);
        last_[block] = ev;
    }

  private:
    SharingTrace &tr_;
    std::unordered_map<Addr, CoherenceEvent> last_;
    std::unordered_map<Addr, EventSeq> seq_;
};

TEST(Patterns, UnsharedBlock)
{
    SharingTrace tr("t", 16);
    ChainBuilder b(tr);
    for (int i = 0; i < 5; ++i)
        b.event(0, 1, 0); // written, never read
    auto a = analyzeTrace(tr);
    EXPECT_EQ(a.blocks[size_t(SharingPattern::Unshared)], 1u);
    EXPECT_EQ(a.totalBlocks(), 1u);
    EXPECT_EQ(a.totalEvents(), 5u);
}

TEST(Patterns, ProducerConsumerBlock)
{
    SharingTrace tr("t", 16);
    ChainBuilder b(tr);
    for (int i = 0; i < 10; ++i)
        b.event(0, 1, 0b0110); // stable reader set {1,2}
    auto a = analyzeTrace(tr);
    EXPECT_EQ(a.blocks[size_t(SharingPattern::ProducerConsumer)], 1u);
    EXPECT_DOUBLE_EQ(a.eventFraction(SharingPattern::ProducerConsumer),
                     1.0);
}

TEST(Patterns, MigratoryBlock)
{
    SharingTrace tr("t", 16);
    ChainBuilder b(tr);
    // Ownership chases the single reader around the machine.
    for (int i = 0; i < 12; ++i) {
        NodeId writer = static_cast<NodeId>(i % 16);
        NodeId next = static_cast<NodeId>((i + 1) % 16);
        b.event(writer, 1, 1ull << next);
    }
    auto a = analyzeTrace(tr);
    EXPECT_EQ(a.blocks[size_t(SharingPattern::Migratory)], 1u);
}

TEST(Patterns, WideSharedBlock)
{
    SharingTrace tr("t", 16);
    ChainBuilder b(tr);
    for (int i = 0; i < 6; ++i)
        b.event(0, 1, 0xfffe); // 15 readers
    auto a = analyzeTrace(tr);
    EXPECT_EQ(a.blocks[size_t(SharingPattern::WideShared)], 1u);
}

TEST(Patterns, IrregularBlock)
{
    SharingTrace tr("t", 16);
    ChainBuilder b(tr);
    // Readers change wildly (disjoint pairs), writers alternate: not
    // migratory (2 readers), not stable, not wide.
    std::uint64_t sets[] = {0b0110, 0b11000, 0b1100000, 0b110000000};
    for (int i = 0; i < 12; ++i)
        b.event(static_cast<NodeId>(i % 2), 1, sets[i % 4]);
    auto a = analyzeTrace(tr);
    EXPECT_EQ(a.blocks[size_t(SharingPattern::Irregular)], 1u);
}

TEST(Patterns, ColdSingleEventBlockIsUnshared)
{
    SharingTrace tr("t", 16);
    ChainBuilder b(tr);
    b.event(0, 1, 0b10);
    auto a = analyzeTrace(tr);
    EXPECT_EQ(a.blocks[size_t(SharingPattern::Unshared)], 1u);
}

TEST(Patterns, MixedBlocksAreCountedSeparately)
{
    SharingTrace tr("t", 16);
    ChainBuilder b(tr);
    for (int i = 0; i < 8; ++i) {
        b.event(0, 1, 0b0110);  // producer-consumer
        b.event(0, 2, 0);       // unshared
        b.event(0, 3, 0xfffe);  // wide
    }
    auto a = analyzeTrace(tr);
    EXPECT_EQ(a.totalBlocks(), 3u);
    EXPECT_EQ(a.blocks[size_t(SharingPattern::ProducerConsumer)], 1u);
    EXPECT_EQ(a.blocks[size_t(SharingPattern::Unshared)], 1u);
    EXPECT_EQ(a.blocks[size_t(SharingPattern::WideShared)], 1u);
}

TEST(Patterns, InvalidationDegreeHistogram)
{
    SharingTrace tr("t", 16);
    ChainBuilder b(tr);
    b.event(0, 1, 0);
    b.event(0, 2, 0b10);
    b.event(0, 3, 0b110);
    b.event(0, 4, 0b110);
    auto a = analyzeTrace(tr);
    EXPECT_EQ(a.invalidationDegree.bucket(0), 1u);
    EXPECT_EQ(a.invalidationDegree.bucket(1), 1u);
    EXPECT_EQ(a.invalidationDegree.bucket(2), 2u);
    EXPECT_DOUBLE_EQ(a.readersPerEvent.mean(), 5.0 / 4.0);
}

TEST(Patterns, ReadersPerEventMatchesPrevalence)
{
    SharingTrace tr("t", 16);
    ChainBuilder b(tr);
    for (int i = 0; i < 50; ++i)
        b.event(0, i % 5, (i % 3) == 0 ? 0b10 : 0);
    auto a = analyzeTrace(tr);
    EXPECT_DOUBLE_EQ(a.readersPerEvent.mean(),
                     16.0 * tr.prevalence());
}

TEST(Patterns, CustomRulesChangeClassification)
{
    SharingTrace tr("t", 16);
    ChainBuilder b(tr);
    for (int i = 0; i < 10; ++i)
        b.event(0, 1, 0b111100); // 4 readers = 25% of machine
    analysis::PatternRules strict;
    strict.wideFraction = 0.5; // demand 8+ readers for "wide"
    auto a_loose = analyzeTrace(tr);
    auto a_strict = analyzeTrace(tr, strict);
    EXPECT_EQ(a_loose.blocks[size_t(SharingPattern::WideShared)], 1u);
    EXPECT_EQ(a_strict.blocks[size_t(SharingPattern::WideShared)], 0u);
    EXPECT_EQ(
        a_strict.blocks[size_t(SharingPattern::ProducerConsumer)], 1u);
}

// ---------------------------------------------------------------------
// On the real kernels: the designed-in dominant pattern must surface.

TEST(PatternsOnKernels, Mp3dIsMigratoryHeavy)
{
    workloads::WorkloadParams p;
    p.scale = 0.1;
    auto tr = workloads::generateTrace("mp3d", p);
    auto a = analyzeTrace(tr);
    double migratory = a.eventFraction(SharingPattern::Migratory) +
                       a.eventFraction(SharingPattern::Irregular);
    EXPECT_GT(migratory,
              a.eventFraction(SharingPattern::WideShared));
    EXPECT_GT(migratory, 0.3);
}

TEST(PatternsOnKernels, Em3dIsProducerConsumerPlusUnshared)
{
    workloads::WorkloadParams p;
    p.scale = 0.1;
    auto tr = workloads::generateTrace("em3d", p);
    auto a = analyzeTrace(tr);
    EXPECT_GT(a.eventFraction(SharingPattern::ProducerConsumer) +
                  a.eventFraction(SharingPattern::Unshared),
              0.6);
    EXPECT_LT(a.eventFraction(SharingPattern::WideShared), 0.1);
}

TEST(PatternsOnKernels, OceanIsMostlyUnshared)
{
    workloads::WorkloadParams p;
    p.scale = 0.1;
    auto tr = workloads::generateTrace("ocean", p);
    auto a = analyzeTrace(tr);
    EXPECT_GT(a.eventFraction(SharingPattern::Unshared), 0.4);
}

TEST(PatternsOnKernels, BarnesHasAWideComponent)
{
    workloads::WorkloadParams p;
    p.scale = 0.1;
    auto tr = workloads::generateTrace("barnes", p);
    auto a = analyzeTrace(tr);
    EXPECT_GT(a.blocks[size_t(SharingPattern::WideShared)], 10u);
}

} // namespace
